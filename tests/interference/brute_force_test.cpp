// Brute-force O(E^2) reference for the interference kernels. The grid path
// (edge-length-sized cells, single-emission pair discovery, count-only
// sizes) must reproduce the reference exactly — same sets, same sizes, in
// ascending edge-id order — on random instances across the guard-zone
// sweep, on degenerate layouts (coincident nodes, collinear clusters), and
// for every pool size.

#include <gtest/gtest.h>

#include <vector>

#include "common/parallel.h"
#include "interference/model.h"
#include "topology/distributions.h"
#include "topology/transmission_graph.h"

namespace thetanet::interf {
namespace {

std::vector<std::vector<graph::EdgeId>> brute_sets(const graph::Graph& g,
                                                   const topo::Deployment& d,
                                                   const InterferenceModel& m) {
  const auto ne = static_cast<graph::EdgeId>(g.num_edges());
  std::vector<std::vector<graph::EdgeId>> sets(ne);
  for (graph::EdgeId a = 0; a < ne; ++a) {
    const graph::Edge& ea = g.edge(a);
    for (graph::EdgeId b = a + 1; b < ne; ++b) {
      const graph::Edge& eb = g.edge(b);
      if (m.in_interference_set(d.positions[ea.u], d.positions[ea.v],
                                d.positions[eb.u], d.positions[eb.v])) {
        sets[a].push_back(b);
        sets[b].push_back(a);
      }
    }
  }
  return sets;  // b ascends in both loops => sets come out sorted
}

void expect_grid_matches_brute(const graph::Graph& g,
                               const topo::Deployment& d, double delta) {
  const InterferenceModel m{delta};
  const auto expect = brute_sets(g, d, m);
  const int saved = tn::num_threads();
  for (const int threads : {1, 2, 7}) {
    tn::set_num_threads(threads);
    const auto sets = interference_sets(g, d, m);
    const auto sizes = interference_set_sizes(g, d, m);
    tn::set_num_threads(saved);
    ASSERT_EQ(sets.size(), expect.size()) << "threads=" << threads;
    ASSERT_EQ(sizes.size(), expect.size()) << "threads=" << threads;
    for (graph::EdgeId e = 0; e < expect.size(); ++e) {
      ASSERT_EQ(sets[e], expect[e])
          << "edge " << e << " delta=" << delta << " threads=" << threads;
      ASSERT_EQ(sizes[e], expect[e].size())
          << "edge " << e << " delta=" << delta << " threads=" << threads;
    }
  }
}

class BruteForceSweep : public ::testing::TestWithParam<double> {};

TEST_P(BruteForceSweep, RandomInstancesMatch) {
  for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
    geom::Rng rng(seed);
    topo::Deployment d;
    d.positions = topo::uniform_square(48, 1.0, rng);
    d.max_range = 0.3;
    d.kappa = 2.0;
    const graph::Graph g = topo::build_transmission_graph(d);
    ASSERT_GT(g.num_edges(), 0u);
    expect_grid_matches_brute(g, d, GetParam());
  }
}

TEST_P(BruteForceSweep, CoincidentNodesMatch) {
  // Three stacks of coincident nodes plus a few loose ones: zero-length
  // edges (empty interference region of their own) that still sit inside
  // every longer edge's region, and a grid whose median edge length is 0.
  geom::Rng rng(21);
  topo::Deployment d;
  d.positions = topo::uniform_square(12, 1.0, rng);
  for (int s = 0; s < 3; ++s) {
    const geom::Vec2 p{0.2 + 0.3 * s, 0.5};
    for (int k = 0; k < 4; ++k) d.positions.push_back(p);
  }
  d.max_range = 0.45;
  d.kappa = 2.0;
  const graph::Graph g = topo::build_transmission_graph(d);
  ASSERT_GT(g.num_edges(), 0u);
  expect_grid_matches_brute(g, d, GetParam());
}

TEST_P(BruteForceSweep, CollinearClustersMatch) {
  // Tight clusters spread along a line: a degenerate (height ~ 0) bounding
  // box and a bimodal edge-length distribution (intra- vs inter-cluster).
  geom::Rng rng(22);
  topo::Deployment d;
  for (int c = 0; c < 5; ++c)
    for (int k = 0; k < 6; ++k)
      d.positions.push_back({0.5 * c + rng.uniform(0.0, 0.02), 0.0});
  d.max_range = 0.6;
  d.kappa = 2.0;
  const graph::Graph g = topo::build_transmission_graph(d);
  ASSERT_GT(g.num_edges(), 0u);
  expect_grid_matches_brute(g, d, GetParam());
}

INSTANTIATE_TEST_SUITE_P(DeltaSweep, BruteForceSweep,
                         ::testing::Values(0.5, 1.0, 2.0));

TEST(BruteForce, EmptyAndSingleEdgeGraphs) {
  topo::Deployment d;
  d.positions = {{0.0, 0.0}, {0.1, 0.0}};
  d.max_range = 0.2;
  const InterferenceModel m{1.0};
  graph::Graph empty(2);
  EXPECT_TRUE(interference_sets(empty, d, m).empty());
  EXPECT_TRUE(interference_set_sizes(empty, d, m).empty());
  const graph::Graph g = topo::build_transmission_graph(d);
  ASSERT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(interference_set_sizes(g, d, m), std::vector<std::uint32_t>{0});
  EXPECT_EQ(interference_number(g, d, m), 0u);
}

}  // namespace
}  // namespace thetanet::interf
