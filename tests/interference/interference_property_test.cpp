// Property suite for the interference model: set membership must agree with
// the pairwise predicate, the interference number must be monotone in the
// guard zone Delta, and conflict resolution must agree with the sets.

#include <gtest/gtest.h>

#include "interference/model.h"
#include "topology/distributions.h"
#include "topology/transmission_graph.h"

namespace thetanet::interf {
namespace {

struct Instance {
  topo::Deployment d;
  graph::Graph g;
};

Instance make_instance(std::uint64_t seed, std::size_t n, double range) {
  geom::Rng rng(seed);
  Instance inst;
  inst.d.positions = topo::uniform_square(n, 1.0, rng);
  inst.d.max_range = range;
  inst.d.kappa = 2.0;
  inst.g = topo::build_transmission_graph(inst.d);
  return inst;
}

class InterferenceProperty : public ::testing::TestWithParam<double> {};

TEST_P(InterferenceProperty, SetsAgreeWithPairwisePredicate) {
  const double delta = GetParam();
  const Instance inst = make_instance(91, 50, 0.3);
  const InterferenceModel m{delta};
  const auto sets = interference_sets(inst.g, inst.d, m);
  for (graph::EdgeId a = 0; a < inst.g.num_edges(); ++a) {
    for (graph::EdgeId b = 0; b < inst.g.num_edges(); ++b) {
      if (a == b) continue;
      const graph::Edge& ea = inst.g.edge(a);
      const graph::Edge& eb = inst.g.edge(b);
      const bool in_set = std::binary_search(sets[a].begin(), sets[a].end(), b);
      const bool predicate = m.in_interference_set(
          inst.d.positions[ea.u], inst.d.positions[ea.v],
          inst.d.positions[eb.u], inst.d.positions[eb.v]);
      ASSERT_EQ(in_set, predicate) << "edges " << a << "," << b;
    }
  }
}

TEST_P(InterferenceProperty, ResolveAgreesWithSets) {
  const double delta = GetParam();
  const Instance inst = make_instance(92, 60, 0.25);
  const InterferenceModel m{delta};
  const auto sets = interference_sets(inst.g, inst.d, m);
  geom::Rng rng(93);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<graph::EdgeId> chosen;
    for (graph::EdgeId e = 0; e < inst.g.num_edges(); ++e)
      if (rng.bernoulli(0.05)) chosen.push_back(e);
    const auto failed = failed_transmissions(chosen, inst.g, inst.d, m);
    for (std::size_t i = 0; i < chosen.size(); ++i) {
      // A transmission fails iff some other chosen edge *interferes with*
      // it (directed). Interference sets are the symmetric closure, so
      // compute the directed predicate directly.
      bool expect_fail = false;
      const graph::Edge& ei = inst.g.edge(chosen[i]);
      for (std::size_t j = 0; j < chosen.size() && !expect_fail; ++j) {
        if (i == j) continue;
        const graph::Edge& ej = inst.g.edge(chosen[j]);
        expect_fail = m.interferes(
            inst.d.positions[ej.u], inst.d.positions[ej.v],
            inst.d.positions[ei.u], inst.d.positions[ei.v]);
      }
      ASSERT_EQ(failed[i], expect_fail);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(DeltaSweep, InterferenceProperty,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0));

TEST(InterferenceMonotonicity, NumberGrowsWithDelta) {
  const Instance inst = make_instance(94, 100, 0.2);
  std::uint32_t prev = 0;
  for (const double delta : {0.1, 0.5, 1.0, 2.0, 4.0}) {
    const std::uint32_t i_n =
        interference_number(inst.g, inst.d, InterferenceModel{delta});
    EXPECT_GE(i_n, prev) << "delta " << delta;
    prev = i_n;
  }
}

TEST(InterferenceMonotonicity, SubgraphHasSmallerNumber) {
  const Instance inst = make_instance(95, 80, 0.3);
  const InterferenceModel m{1.0};
  // Keep every other edge.
  graph::Graph sub(inst.g.num_nodes());
  for (graph::EdgeId e = 0; e < inst.g.num_edges(); e += 2) {
    const graph::Edge& edge = inst.g.edge(e);
    sub.add_edge(edge.u, edge.v, edge.length, edge.cost);
  }
  EXPECT_LE(interference_number(sub, inst.d, m),
            interference_number(inst.g, inst.d, m));
}

}  // namespace
}  // namespace thetanet::interf
