#include "interference/model.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "topology/distributions.h"
#include "topology/transmission_graph.h"

namespace thetanet::interf {
namespace {

using geom::Vec2;

TEST(InterferenceModel, GuardRadiusScalesWithLength) {
  const InterferenceModel m{0.5};
  EXPECT_DOUBLE_EQ(m.guard_radius(2.0), 3.0);
  EXPECT_DOUBLE_EQ(m.guard_radius(0.0), 0.0);
}

TEST(InterferenceModel, RegionCoversUnionOfDisks) {
  const InterferenceModel m{1.0};  // guard radius 2 * len
  const Vec2 a{0, 0}, b{1, 0};     // len 1 -> disks of radius 2 at both ends
  EXPECT_TRUE(m.region_covers(a, b, {-1.5, 0}));  // near a
  EXPECT_TRUE(m.region_covers(a, b, {2.5, 0}));   // near b
  EXPECT_FALSE(m.region_covers(a, b, {4.0, 0}));  // beyond both
  EXPECT_FALSE(m.region_covers(a, b, {-2.0, 0})); // open disk: boundary out
}

TEST(InterferenceModel, DirectedInterference) {
  const InterferenceModel m{0.5};
  // Long edge e' interferes with a far short edge, but not vice versa.
  const Vec2 x1{0, 0}, x2{10, 0};   // guard radius 15
  const Vec2 y1{12, 0}, y2{12.5, 0};  // guard radius 0.75
  EXPECT_TRUE(m.interferes(x1, x2, y1, y2));
  EXPECT_FALSE(m.interferes(y1, y2, x1, x2));
  EXPECT_TRUE(m.in_interference_set(x1, x2, y1, y2));
  EXPECT_TRUE(m.in_interference_set(y1, y2, x1, x2));  // symmetric closure
}

TEST(InterferenceModel, DisjointFarEdgesDoNotInterfere) {
  const InterferenceModel m{0.5};
  EXPECT_FALSE(m.in_interference_set({0, 0}, {1, 0}, {100, 0}, {101, 0}));
}

graph::Graph brute_sets(const graph::Graph& g, const topo::Deployment& d,
                        const InterferenceModel& m,
                        std::vector<std::vector<graph::EdgeId>>* out) {
  out->assign(g.num_edges(), {});
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e)
    for (graph::EdgeId f = 0; f < g.num_edges(); ++f) {
      if (e == f) continue;
      const auto& ee = g.edge(e);
      const auto& ff = g.edge(f);
      if (m.in_interference_set(d.positions[ee.u], d.positions[ee.v],
                                d.positions[ff.u], d.positions[ff.v]))
        (*out)[e].push_back(f);
    }
  return g;
}

TEST(InterferenceSets, MatchBruteForce) {
  geom::Rng rng(51);
  topo::Deployment d;
  d.positions = topo::uniform_square(60, 1.0, rng);
  d.max_range = 0.25;
  d.kappa = 2.0;
  const graph::Graph g = topo::build_transmission_graph(d);
  const InterferenceModel m{0.5};
  const auto sets = interference_sets(g, d, m);
  std::vector<std::vector<graph::EdgeId>> expect;
  brute_sets(g, d, m, &expect);
  ASSERT_EQ(sets.size(), expect.size());
  for (graph::EdgeId e = 0; e < sets.size(); ++e)
    ASSERT_EQ(sets[e], expect[e]) << "edge " << e;
}

TEST(InterferenceSets, SizesAndNumberAgree) {
  geom::Rng rng(52);
  topo::Deployment d;
  d.positions = topo::uniform_square(80, 1.0, rng);
  d.max_range = 0.2;
  d.kappa = 2.0;
  const graph::Graph g = topo::build_transmission_graph(d);
  const InterferenceModel m{1.0};
  const auto sets = interference_sets(g, d, m);
  const auto sizes = interference_set_sizes(g, d, m);
  std::uint32_t max_size = 0;
  for (graph::EdgeId e = 0; e < sets.size(); ++e) {
    ASSERT_EQ(sizes[e], sets[e].size());
    max_size = std::max(max_size, sizes[e]);
  }
  EXPECT_EQ(interference_number(g, d, m), max_size);
}

TEST(InterferenceSets, SymmetricMembership) {
  geom::Rng rng(53);
  topo::Deployment d;
  d.positions = topo::uniform_square(50, 1.0, rng);
  d.max_range = 0.3;
  d.kappa = 2.0;
  const graph::Graph g = topo::build_transmission_graph(d);
  const auto sets = interference_sets(g, d, InterferenceModel{0.75});
  for (graph::EdgeId e = 0; e < sets.size(); ++e)
    for (const graph::EdgeId f : sets[e]) {
      ASSERT_TRUE(std::binary_search(sets[f].begin(), sets[f].end(), e))
          << e << " in I(" << f << ")?";
    }
}

TEST(InterferenceSets, AdjacentEdgesAlwaysInterfere) {
  // Edges sharing a node are within each other's guard region by definition
  // (the shared endpoint is inside both open disks).
  geom::Rng rng(54);
  topo::Deployment d;
  d.positions = topo::uniform_square(60, 1.0, rng);
  d.max_range = 0.3;
  d.kappa = 2.0;
  const graph::Graph g = topo::build_transmission_graph(d);
  const auto sets = interference_sets(g, d, InterferenceModel{0.5});
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i)
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        ASSERT_TRUE(std::binary_search(sets[nbrs[i].edge].begin(),
                                       sets[nbrs[i].edge].end(),
                                       nbrs[j].edge));
      }
  }
}

TEST(FailedTransmissions, PairwiseOutcomes) {
  topo::Deployment d;
  d.positions = {{0, 0}, {1, 0}, {10, 0}, {11, 0}, {1.5, 0}, {2.5, 0}};
  d.max_range = 1.5;
  d.kappa = 2.0;
  graph::Graph g(6);
  const graph::EdgeId e01 = g.add_edge(0, 1, 1.0, 1.0);
  const graph::EdgeId e23 = g.add_edge(2, 3, 1.0, 1.0);
  const graph::EdgeId e45 = g.add_edge(4, 5, 1.0, 1.0);
  const InterferenceModel m{0.5};  // guard radius 1.5 per unit edge

  // Far apart: both succeed.
  {
    const std::vector<graph::EdgeId> chosen{e01, e23};
    const auto failed = failed_transmissions(chosen, g, d, m);
    EXPECT_FALSE(failed[0]);
    EXPECT_FALSE(failed[1]);
  }
  // Overlapping neighbourhoods: both fail (node 4 is within 1.5 of node 1
  // and vice versa).
  {
    const std::vector<graph::EdgeId> chosen{e01, e45};
    const auto failed = failed_transmissions(chosen, g, d, m);
    EXPECT_TRUE(failed[0]);
    EXPECT_TRUE(failed[1]);
  }
  // Single transmission never fails.
  {
    const std::vector<graph::EdgeId> chosen{e01};
    EXPECT_FALSE(failed_transmissions(chosen, g, d, m)[0]);
  }
  // Empty set.
  EXPECT_TRUE(failed_transmissions({}, g, d, m).empty());
}

}  // namespace
}  // namespace thetanet::interf
