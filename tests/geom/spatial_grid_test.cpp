#include "geom/spatial_grid.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <limits>

#include "geom/rng.h"
#include "obs/metrics.h"

namespace thetanet::geom {
namespace {

std::vector<Vec2> random_points(std::size_t n, Rng& rng, double side = 1.0) {
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  return pts;
}

std::vector<std::uint32_t> brute_within(const std::vector<Vec2>& pts,
                                        Vec2 center, double radius,
                                        std::uint32_t exclude) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < pts.size(); ++i)
    if (i != exclude && dist_sq(pts[i], center) <= radius * radius)
      out.push_back(i);
  return out;
}

TEST(SpatialGrid, EmptyPointSet) {
  const std::vector<Vec2> pts;
  const SpatialGrid grid(pts, 1.0);
  EXPECT_EQ(grid.size(), 0U);
  EXPECT_TRUE(grid.within({0, 0}, 10.0).empty());
  EXPECT_EQ(grid.nearest({0, 0}), SpatialGrid::kNone);
}

TEST(SpatialGrid, SinglePoint) {
  const std::vector<Vec2> pts{{0.5, 0.5}};
  const SpatialGrid grid(pts, 0.1);
  EXPECT_EQ(grid.nearest({0, 0}), 0U);
  EXPECT_EQ(grid.within({0.5, 0.5}, 0.01), std::vector<std::uint32_t>{0});
  EXPECT_EQ(grid.nearest({0.5, 0.5}, /*exclude=*/0), SpatialGrid::kNone);
}

TEST(SpatialGrid, WithinMatchesBruteForce) {
  Rng rng(101);
  const std::vector<Vec2> pts = random_points(300, rng);
  const SpatialGrid grid(pts, 0.15);
  for (int q = 0; q < 200; ++q) {
    const Vec2 c{rng.uniform(-0.2, 1.2), rng.uniform(-0.2, 1.2)};
    const double r = rng.uniform(0.01, 0.5);
    const auto expect = brute_within(pts, c, r, SpatialGrid::kNone);
    const auto got = grid.within(c, r);
    ASSERT_EQ(got, expect) << "query " << q;
  }
}

TEST(SpatialGrid, WithinRespectsExclude) {
  Rng rng(102);
  const std::vector<Vec2> pts = random_points(100, rng);
  const SpatialGrid grid(pts, 0.2);
  const auto got = grid.within(pts[17], 0.3, 17);
  EXPECT_EQ(std::count(got.begin(), got.end(), 17U), 0);
  EXPECT_EQ(got, brute_within(pts, pts[17], 0.3, 17));
}

TEST(SpatialGrid, NearestMatchesBruteForce) {
  Rng rng(103);
  const std::vector<Vec2> pts = random_points(250, rng);
  const SpatialGrid grid(pts, 0.07);
  for (int q = 0; q < 300; ++q) {
    const Vec2 c{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)};
    std::uint32_t best = SpatialGrid::kNone;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::uint32_t i = 0; i < pts.size(); ++i) {
      const double d = dist_sq(pts[i], c);
      if (d < best_d || (d == best_d && i < best)) {
        best_d = d;
        best = i;
      }
    }
    ASSERT_EQ(grid.nearest(c), best) << "query " << q;
  }
}

TEST(SpatialGrid, NearestWithExcludeMatchesBruteForce) {
  Rng rng(104);
  const std::vector<Vec2> pts = random_points(150, rng);
  const SpatialGrid grid(pts, 0.25);
  for (std::uint32_t e = 0; e < 50; ++e) {
    std::uint32_t best = SpatialGrid::kNone;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::uint32_t i = 0; i < pts.size(); ++i) {
      if (i == e) continue;
      const double d = dist_sq(pts[i], pts[e]);
      if (d < best_d || (d == best_d && i < best)) {
        best_d = d;
        best = i;
      }
    }
    ASSERT_EQ(grid.nearest(pts[e], e), best);
  }
}

TEST(SpatialGrid, ForEachWithinVisitsSameSetAsWithin) {
  Rng rng(105);
  const std::vector<Vec2> pts = random_points(120, rng);
  const SpatialGrid grid(pts, 0.3);
  std::vector<std::uint32_t> visited;
  grid.for_each_within({0.5, 0.5}, 0.4,
                       [&](std::uint32_t id) { visited.push_back(id); });
  std::sort(visited.begin(), visited.end());
  EXPECT_EQ(visited, grid.within({0.5, 0.5}, 0.4));
}

TEST(SpatialGrid, CoincidentPointsAllReturned) {
  const std::vector<Vec2> pts{{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}};
  const SpatialGrid grid(pts, 0.1);
  EXPECT_EQ(grid.within({0.5, 0.5}, 0.001).size(), 3U);
  // Nearest tie broken towards the smallest id.
  EXPECT_EQ(grid.nearest({0.5, 0.5}, 0), 1U);
}

TEST(SpatialGrid, QueryRadiusLargerThanDomain) {
  Rng rng(106);
  const std::vector<Vec2> pts = random_points(64, rng);
  const SpatialGrid grid(pts, 0.05);
  EXPECT_EQ(grid.within({0.5, 0.5}, 10.0).size(), 64U);
}

TEST(SpatialGrid, TemplateAndFunctionOverloadsAgree) {
  Rng rng(107);
  const std::vector<Vec2> pts = random_points(150, rng);
  const SpatialGrid grid(pts, 0.12);
  for (int q = 0; q < 50; ++q) {
    const Vec2 c{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)};
    const double r = rng.uniform(0.02, 0.4);
    std::vector<std::uint32_t> from_template;
    grid.for_each_within(c, r, [&](std::uint32_t id) {
      from_template.push_back(id);  // lambda argument -> template fast path
    });
    std::vector<std::uint32_t> from_function;
    const std::function<void(std::uint32_t)> fn = [&](std::uint32_t id) {
      from_function.push_back(id);
    };
    grid.for_each_within(c, r, fn);  // std::function lvalue -> ABI wrapper
    ASSERT_EQ(from_template, from_function) << "query " << q;
  }
}

TEST(SpatialGrid, ForEachWithinTwoMatchesUnionOfDisks) {
  Rng rng(111);
  const std::vector<Vec2> pts = random_points(200, rng);
  const SpatialGrid grid(pts, 0.08);
  for (int q = 0; q < 100; ++q) {
    const Vec2 c1{rng.uniform(-0.1, 1.1), rng.uniform(-0.1, 1.1)};
    // Mix overlapping (nearby centers) and disjoint (far centers) disks.
    const double dx = rng.uniform(-0.6, 0.6), dy = rng.uniform(-0.6, 0.6);
    const Vec2 c2{c1.x + dx, c1.y + dy};
    const double r = rng.uniform(0.02, 0.4);
    std::vector<std::uint32_t> got;
    grid.for_each_within_two(
        c1, c2, r, [&](std::uint32_t id, double d1, double d2) {
          EXPECT_TRUE(d1 <= r * r || d2 <= r * r);
          got.push_back(id);
        });
    std::sort(got.begin(), got.end());
    // Exactly once per id: the single scan never repeats a point.
    ASSERT_TRUE(std::adjacent_find(got.begin(), got.end()) == got.end());
    std::vector<std::uint32_t> expect = brute_within(pts, c1, r, SpatialGrid::kNone);
    for (std::uint32_t id : brute_within(pts, c2, r, SpatialGrid::kNone))
      expect.push_back(id);
    std::sort(expect.begin(), expect.end());
    expect.erase(std::unique(expect.begin(), expect.end()), expect.end());
    ASSERT_EQ(got, expect) << "query " << q;
  }
}

TEST(SpatialGrid, ForEachWithinTwoCoincidentCentersEqualsSingleDisk) {
  Rng rng(112);
  const std::vector<Vec2> pts = random_points(80, rng);
  const SpatialGrid grid(pts, 0.15);
  std::vector<std::uint32_t> got;
  grid.for_each_within_two(
      {0.4, 0.6}, {0.4, 0.6}, 0.25,
      [&](std::uint32_t id, double, double) { got.push_back(id); });
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, grid.within({0.4, 0.6}, 0.25));
}

TEST(SpatialGrid, ForEachWithinUntilStopsEarlyOnTemplatePath) {
  Rng rng(108);
  const std::vector<Vec2> pts = random_points(200, rng);
  const SpatialGrid grid(pts, 0.1);
  int visits = 0;
  const bool completed =
      grid.for_each_within_until({0.5, 0.5}, 0.5, [&](std::uint32_t) {
        ++visits;
        return visits < 3;
      });
  EXPECT_FALSE(completed);
  EXPECT_EQ(visits, 3);
  // A visitor that never stops must see the whole disk.
  std::vector<std::uint32_t> all;
  EXPECT_TRUE(grid.for_each_within_until({0.5, 0.5}, 0.5, [&](std::uint32_t id) {
    all.push_back(id);
    return true;
  }));
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, grid.within({0.5, 0.5}, 0.5));
}

TEST(SpatialGrid, CellCountCappedOnDegenerateInput) {
  // Near-coincident cluster plus one far outlier: a cell sized for the
  // cluster spacing would need ~1e16 cells across the bounding box. The
  // constructor must grow the cell instead of allocating that table, and
  // queries must stay exact.
  std::vector<Vec2> pts;
  Rng rng(109);
  for (int i = 0; i < 100; ++i)
    pts.push_back({rng.uniform(0.0, 1e-4), rng.uniform(0.0, 1e-4)});
  pts.push_back({1e4, 1e4});
  const SpatialGrid grid(pts, 1e-6);
  EXPECT_GT(grid.cell_size(), 1e-6);  // cap engaged
  EXPECT_EQ(grid.within({0.0, 0.0}, 1.0).size(), 100U);
  EXPECT_EQ(grid.within({1e4, 1e4}, 1.0), std::vector<std::uint32_t>{100});
  for (int q = 0; q < 40; ++q) {
    const Vec2 c{rng.uniform(0.0, 1e-4), rng.uniform(0.0, 1e-4)};
    const double r = rng.uniform(1e-6, 2e-4);
    ASSERT_EQ(grid.within(c, r), brute_within(pts, c, r, SpatialGrid::kNone));
  }
}

TEST(SpatialGrid, ScanTelemetryCountsQueriesAndPoints) {
  if (!obs::kTelemetryCompiled) GTEST_SKIP() << "telemetry compiled out";
  Rng rng(110);
  const std::vector<Vec2> pts = random_points(80, rng);
  const SpatialGrid grid(pts, 0.2);
  auto& reg = obs::MetricsRegistry::global();

  // Recording off: counters must not move.
  obs::set_recording(false);
  reg.reset();
  grid.within({0.5, 0.5}, 0.3);
  EXPECT_EQ(reg.counter_value("grid.queries"), 0U);

  obs::set_recording(true);
  reg.reset();
  const auto hits = grid.within({0.5, 0.5}, 0.3);
  grid.for_each_within({0.2, 0.2}, 0.1, [](std::uint32_t) {});
  EXPECT_EQ(reg.counter_value("grid.queries"), 2U);
  EXPECT_GE(reg.counter_value("grid.points_examined"),
            reg.counter_value("grid.reported"));  // examined >= accepted
  EXPECT_GE(reg.counter_value("grid.reported"), hits.size());
  EXPECT_GE(reg.counter_value("grid.cells_scanned"), 1U);
}

}  // namespace
}  // namespace thetanet::geom
