#include "geom/spatial_grid.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "geom/rng.h"

namespace thetanet::geom {
namespace {

std::vector<Vec2> random_points(std::size_t n, Rng& rng, double side = 1.0) {
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  return pts;
}

std::vector<std::uint32_t> brute_within(const std::vector<Vec2>& pts,
                                        Vec2 center, double radius,
                                        std::uint32_t exclude) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < pts.size(); ++i)
    if (i != exclude && dist_sq(pts[i], center) <= radius * radius)
      out.push_back(i);
  return out;
}

TEST(SpatialGrid, EmptyPointSet) {
  const std::vector<Vec2> pts;
  const SpatialGrid grid(pts, 1.0);
  EXPECT_EQ(grid.size(), 0U);
  EXPECT_TRUE(grid.within({0, 0}, 10.0).empty());
  EXPECT_EQ(grid.nearest({0, 0}), SpatialGrid::kNone);
}

TEST(SpatialGrid, SinglePoint) {
  const std::vector<Vec2> pts{{0.5, 0.5}};
  const SpatialGrid grid(pts, 0.1);
  EXPECT_EQ(grid.nearest({0, 0}), 0U);
  EXPECT_EQ(grid.within({0.5, 0.5}, 0.01), std::vector<std::uint32_t>{0});
  EXPECT_EQ(grid.nearest({0.5, 0.5}, /*exclude=*/0), SpatialGrid::kNone);
}

TEST(SpatialGrid, WithinMatchesBruteForce) {
  Rng rng(101);
  const std::vector<Vec2> pts = random_points(300, rng);
  const SpatialGrid grid(pts, 0.15);
  for (int q = 0; q < 200; ++q) {
    const Vec2 c{rng.uniform(-0.2, 1.2), rng.uniform(-0.2, 1.2)};
    const double r = rng.uniform(0.01, 0.5);
    const auto expect = brute_within(pts, c, r, SpatialGrid::kNone);
    const auto got = grid.within(c, r);
    ASSERT_EQ(got, expect) << "query " << q;
  }
}

TEST(SpatialGrid, WithinRespectsExclude) {
  Rng rng(102);
  const std::vector<Vec2> pts = random_points(100, rng);
  const SpatialGrid grid(pts, 0.2);
  const auto got = grid.within(pts[17], 0.3, 17);
  EXPECT_EQ(std::count(got.begin(), got.end(), 17U), 0);
  EXPECT_EQ(got, brute_within(pts, pts[17], 0.3, 17));
}

TEST(SpatialGrid, NearestMatchesBruteForce) {
  Rng rng(103);
  const std::vector<Vec2> pts = random_points(250, rng);
  const SpatialGrid grid(pts, 0.07);
  for (int q = 0; q < 300; ++q) {
    const Vec2 c{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)};
    std::uint32_t best = SpatialGrid::kNone;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::uint32_t i = 0; i < pts.size(); ++i) {
      const double d = dist_sq(pts[i], c);
      if (d < best_d || (d == best_d && i < best)) {
        best_d = d;
        best = i;
      }
    }
    ASSERT_EQ(grid.nearest(c), best) << "query " << q;
  }
}

TEST(SpatialGrid, NearestWithExcludeMatchesBruteForce) {
  Rng rng(104);
  const std::vector<Vec2> pts = random_points(150, rng);
  const SpatialGrid grid(pts, 0.25);
  for (std::uint32_t e = 0; e < 50; ++e) {
    std::uint32_t best = SpatialGrid::kNone;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::uint32_t i = 0; i < pts.size(); ++i) {
      if (i == e) continue;
      const double d = dist_sq(pts[i], pts[e]);
      if (d < best_d || (d == best_d && i < best)) {
        best_d = d;
        best = i;
      }
    }
    ASSERT_EQ(grid.nearest(pts[e], e), best);
  }
}

TEST(SpatialGrid, ForEachWithinVisitsSameSetAsWithin) {
  Rng rng(105);
  const std::vector<Vec2> pts = random_points(120, rng);
  const SpatialGrid grid(pts, 0.3);
  std::vector<std::uint32_t> visited;
  grid.for_each_within({0.5, 0.5}, 0.4,
                       [&](std::uint32_t id) { visited.push_back(id); });
  std::sort(visited.begin(), visited.end());
  EXPECT_EQ(visited, grid.within({0.5, 0.5}, 0.4));
}

TEST(SpatialGrid, CoincidentPointsAllReturned) {
  const std::vector<Vec2> pts{{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}};
  const SpatialGrid grid(pts, 0.1);
  EXPECT_EQ(grid.within({0.5, 0.5}, 0.001).size(), 3U);
  // Nearest tie broken towards the smallest id.
  EXPECT_EQ(grid.nearest({0.5, 0.5}, 0), 1U);
}

TEST(SpatialGrid, QueryRadiusLargerThanDomain) {
  Rng rng(106);
  const std::vector<Vec2> pts = random_points(64, rng);
  const SpatialGrid grid(pts, 0.05);
  EXPECT_EQ(grid.within({0.5, 0.5}, 10.0).size(), 64U);
}

}  // namespace
}  // namespace thetanet::geom
