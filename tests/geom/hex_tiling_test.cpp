#include "geom/hex_tiling.h"

#include <gtest/gtest.h>

#include <set>

#include "geom/rng.h"

namespace thetanet::geom {
namespace {

TEST(HexTiling, SideAndDerivedQuantities) {
  const HexTiling t(2.0);
  EXPECT_DOUBLE_EQ(t.side(), 2.0);
  EXPECT_DOUBLE_EQ(t.diameter(), 4.0);
  EXPECT_NEAR(t.inradius(), 2.0 * 0.8660254037844386, 1e-12);
  EXPECT_DOUBLE_EQ(t.max_intra_cell_distance(), 4.0);
}

TEST(HexTiling, PaperCellSizeForGuardZone) {
  // Section 3.4: hexagons of side 3 + 2*Delta, diameter 2*(3 + 2*Delta).
  const double delta = 0.75;
  const HexTiling t(3.0 + 2.0 * delta);
  EXPECT_DOUBLE_EQ(t.side(), 4.5);
  EXPECT_DOUBLE_EQ(t.diameter(), 9.0);
}

TEST(HexTiling, CenterRoundTrips) {
  const HexTiling t(1.3);
  for (std::int32_t q = -5; q <= 5; ++q)
    for (std::int32_t r = -5; r <= 5; ++r) {
      const HexCell c{q, r};
      EXPECT_EQ(t.cell_of(t.center(c)), c) << q << "," << r;
    }
}

TEST(HexTiling, EveryPointWithinDiameterOfItsCenter) {
  const HexTiling t(2.5);
  Rng rng(41);
  for (int i = 0; i < 20000; ++i) {
    const Vec2 p{rng.uniform(-30.0, 30.0), rng.uniform(-30.0, 30.0)};
    const HexCell c = t.cell_of(p);
    // A point lies within the circumradius (= side) of its cell centre.
    ASSERT_LE(dist(p, t.center(c)), t.side() + 1e-9);
  }
}

TEST(HexTiling, NearestCenterIsOwnCell) {
  // cell_of must agree with "closest centre" (the Voronoi property of a
  // hexagonal lattice).
  const HexTiling t(1.0);
  Rng rng(42);
  for (int i = 0; i < 5000; ++i) {
    const Vec2 p{rng.uniform(-10.0, 10.0), rng.uniform(-10.0, 10.0)};
    const HexCell own = t.cell_of(p);
    const double d_own = dist(p, t.center(own));
    HexTiling::for_each_neighbor(own, [&](HexCell nb) {
      ASSERT_LE(d_own, dist(p, t.center(nb)) + 1e-9);
    });
  }
}

TEST(HexTiling, NeighborCentersAtLatticeDistance) {
  const HexTiling t(2.0);
  const HexCell c{3, -2};
  // Adjacent hexagon centres are 2 * inradius apart.
  const double expect = 2.0 * t.inradius();
  int count = 0;
  HexTiling::for_each_neighbor(c, [&](HexCell nb) {
    ++count;
    EXPECT_NEAR(dist(t.center(c), t.center(nb)), expect, 1e-9);
  });
  EXPECT_EQ(count, 6);
}

TEST(HexTiling, NeighborsAreDistinctAndExcludeSelf) {
  const HexCell c{0, 0};
  std::set<std::pair<std::int32_t, std::int32_t>> seen;
  HexTiling::for_each_neighbor(c, [&](HexCell nb) {
    EXPECT_FALSE(nb == c);
    seen.insert({nb.q, nb.r});
  });
  EXPECT_EQ(seen.size(), 6U);
}

TEST(HexTiling, HashIsConsistent) {
  const HexCellHash h;
  EXPECT_EQ(h({1, 2}), h({1, 2}));
  EXPECT_NE(h({1, 2}), h({2, 1}));  // extremely likely for splitmix64
}

TEST(HexTiling, PointsInSameCellAreWithinDiameter) {
  const HexTiling t(1.7);
  Rng rng(43);
  std::vector<std::pair<HexCell, Vec2>> samples;
  for (int i = 0; i < 3000; ++i) {
    const Vec2 p{rng.uniform(-15.0, 15.0), rng.uniform(-15.0, 15.0)};
    samples.push_back({t.cell_of(p), p});
  }
  for (std::size_t i = 0; i < samples.size(); i += 37) {
    for (std::size_t j = i + 1; j < samples.size(); ++j) {
      if (samples[i].first == samples[j].first)
        ASSERT_LE(dist(samples[i].second, samples[j].second),
                  t.max_intra_cell_distance() + 1e-9);
    }
  }
}

}  // namespace
}  // namespace thetanet::geom
