#include "geom/angles.h"

#include <gtest/gtest.h>

#include <numbers>

#include "geom/rng.h"

namespace thetanet::geom {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Angles, NormalizeIntoRange) {
  EXPECT_DOUBLE_EQ(normalize_angle(0.0), 0.0);
  EXPECT_DOUBLE_EQ(normalize_angle(kTwoPi), 0.0);
  EXPECT_DOUBLE_EQ(normalize_angle(-kPi / 2.0), 1.5 * kPi);
  EXPECT_DOUBLE_EQ(normalize_angle(5.0 * kTwoPi + 1.0), 1.0);
  EXPECT_NEAR(normalize_angle(-7.0 * kTwoPi - 0.25), kTwoPi - 0.25, 1e-9);
}

TEST(Angles, NormalizeAlwaysInHalfOpenInterval) {
  Rng rng(123);
  for (int i = 0; i < 10000; ++i) {
    const double a = normalize_angle(rng.uniform(-100.0, 100.0));
    ASSERT_GE(a, 0.0);
    ASSERT_LT(a, kTwoPi);
  }
}

TEST(Angles, AngleOfCardinalDirections) {
  EXPECT_DOUBLE_EQ(angle_of({1.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(angle_of({0.0, 1.0}), kPi / 2.0);
  EXPECT_DOUBLE_EQ(angle_of({-1.0, 0.0}), kPi);
  EXPECT_DOUBLE_EQ(angle_of({0.0, -1.0}), 1.5 * kPi);
  EXPECT_DOUBLE_EQ(angle_of({0.0, 0.0}), 0.0);
}

TEST(Angles, BearingMatchesAngleOfDifference) {
  const Vec2 u{2.0, 3.0};
  const Vec2 v{5.0, 7.0};
  EXPECT_DOUBLE_EQ(bearing(u, v), angle_of(v - u));
}

TEST(Angles, CcwDeltaAndAngleBetween) {
  EXPECT_DOUBLE_EQ(ccw_delta(0.0, kPi / 2.0), kPi / 2.0);
  EXPECT_DOUBLE_EQ(ccw_delta(kPi / 2.0, 0.0), 1.5 * kPi);
  EXPECT_DOUBLE_EQ(angle_between(0.0, kPi / 2.0), kPi / 2.0);
  EXPECT_DOUBLE_EQ(angle_between(kPi / 2.0, 0.0), kPi / 2.0);
  EXPECT_NEAR(angle_between(0.1, kTwoPi - 0.1), 0.2, 1e-12);
}

TEST(Angles, InteriorAngleOfRightTriangle) {
  // Right angle at the origin between the axes.
  EXPECT_NEAR(interior_angle({0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}), kPi / 2.0,
              1e-12);
  // Equilateral triangle: all interior angles pi/3.
  const Vec2 a{0.0, 0.0}, b{1.0, 0.0}, c{0.5, std::sqrt(3.0) / 2.0};
  EXPECT_NEAR(interior_angle(a, b, c), kPi / 3.0, 1e-12);
  EXPECT_NEAR(interior_angle(b, a, c), kPi / 3.0, 1e-12);
  EXPECT_NEAR(interior_angle(c, a, b), kPi / 3.0, 1e-12);
}

TEST(Angles, SectorCountCeils) {
  EXPECT_EQ(sector_count(kPi / 3.0), 6);
  EXPECT_EQ(sector_count(kPi / 6.0), 12);
  EXPECT_EQ(sector_count(1.0), 7);  // ceil(2*pi)
}

class SectorIndexProperty : public ::testing::TestWithParam<double> {};

TEST_P(SectorIndexProperty, IndexInRangeAndConsistentWithSpan) {
  const double theta = GetParam();
  const int k = sector_count(theta);
  Rng rng(7);
  const Vec2 u{0.5, -0.25};
  for (int i = 0; i < 2000; ++i) {
    const Vec2 v{u.x + rng.uniform(-1.0, 1.0), u.y + rng.uniform(-1.0, 1.0)};
    if (v == u) continue;
    const int s = sector_index(u, v, theta);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, k);
    const SectorSpan span = sector_span(s, theta);
    const double b = bearing(u, v);
    ASSERT_GE(b, span.lo - 1e-12);
    ASSERT_LT(b, span.hi + 1e-12);
  }
}

TEST_P(SectorIndexProperty, SectorsPartitionTheCircle) {
  const double theta = GetParam();
  const int k = sector_count(theta);
  double covered = 0.0;
  for (int s = 0; s < k; ++s) {
    const SectorSpan span = sector_span(s, theta);
    covered += span.hi - span.lo;
    if (s > 0) {
      EXPECT_DOUBLE_EQ(span.lo, sector_span(s - 1, theta).hi);
    }
  }
  EXPECT_NEAR(covered, kTwoPi, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(ThetaSweep, SectorIndexProperty,
                         ::testing::Values(kPi / 3.0, kPi / 4.0, kPi / 6.0,
                                           kPi / 9.0, kPi / 12.0, kPi / 60.0));

}  // namespace
}  // namespace thetanet::geom
