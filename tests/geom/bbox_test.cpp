#include "geom/bbox.h"

#include <gtest/gtest.h>

#include <vector>

namespace thetanet::geom {
namespace {

TEST(BBox, DefaultIsEmpty) {
  const BBox b;
  EXPECT_TRUE(b.empty());
  EXPECT_DOUBLE_EQ(b.width(), 0.0);
  EXPECT_DOUBLE_EQ(b.height(), 0.0);
}

TEST(BBox, ExpandAndContain) {
  BBox b;
  b.expand({1.0, 2.0});
  EXPECT_FALSE(b.empty());
  EXPECT_TRUE(b.contains({1.0, 2.0}));
  b.expand({-1.0, 4.0});
  EXPECT_TRUE(b.contains({0.0, 3.0}));
  EXPECT_FALSE(b.contains({0.0, 5.0}));
  EXPECT_DOUBLE_EQ(b.width(), 2.0);
  EXPECT_DOUBLE_EQ(b.height(), 2.0);
  EXPECT_EQ(b.center(), (Vec2{0.0, 3.0}));
}

TEST(BBox, OfPointSpan) {
  const std::vector<Vec2> pts{{0, 0}, {2, 1}, {1, 3}};
  const BBox b = BBox::of(pts);
  EXPECT_EQ(b.lo, (Vec2{0.0, 0.0}));
  EXPECT_EQ(b.hi, (Vec2{2.0, 3.0}));
}

TEST(BBox, Inflated) {
  BBox b;
  b.expand({0, 0});
  b.expand({1, 1});
  const BBox big = b.inflated(0.5);
  EXPECT_EQ(big.lo, (Vec2{-0.5, -0.5}));
  EXPECT_EQ(big.hi, (Vec2{1.5, 1.5}));
}

TEST(BBox, DistSqToPoints) {
  BBox b;
  b.expand({0, 0});
  b.expand({2, 2});
  EXPECT_DOUBLE_EQ(b.dist_sq_to({1, 1}), 0.0);   // inside
  EXPECT_DOUBLE_EQ(b.dist_sq_to({3, 1}), 1.0);   // right of the box
  EXPECT_DOUBLE_EQ(b.dist_sq_to({3, 3}), 2.0);   // diagonal corner
  EXPECT_DOUBLE_EQ(b.dist_sq_to({-2, 1}), 4.0);  // left
}

}  // namespace
}  // namespace thetanet::geom
