#include "geom/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace thetanet::geom {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a() == b()) ? 1 : 0;
  EXPECT_LT(equal, 5);
}

TEST(Rng, ReseedRestartsTheStream) {
  Rng a(99);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a());
  a.reseed(99);
  for (int i = 0; i < 16; ++i) ASSERT_EQ(a(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  double lo = 1.0, hi = 0.0, sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    sum += u;
  }
  EXPECT_LT(lo, 0.001);
  EXPECT_GT(hi, 0.999);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 7.0);
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7U);
  EXPECT_EQ(*seen.begin(), 0U);
  EXPECT_EQ(*seen.rbegin(), 6U);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(6);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5U);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(7);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerateProbabilities) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(9);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(10);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(11);
  Rng child = parent.fork();
  // Child stream differs from the parent continuation.
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (parent() == child()) ? 1 : 0;
  EXPECT_LT(equal, 5);
}

}  // namespace
}  // namespace thetanet::geom
