// Morton key construction (geom/morton.h) and the SpatialOrder id-remap
// layer (geom/spatial_order.h): bit-interleave correctness, quantization
// edge cases, permutation validity, bit-identical coordinate copies, and the
// TN_MORTON-style enable toggle.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "geom/morton.h"
#include "geom/rng.h"
#include "geom/spatial_order.h"

namespace thetanet::geom {
namespace {

class OrderToggleRestorer {
 public:
  OrderToggleRestorer() : saved_(spatial_order_enabled()) {}
  ~OrderToggleRestorer() { set_spatial_order_enabled(saved_); }

 private:
  bool saved_;
};

TEST(Morton, SpreadPlacesBitAtTwiceItsPosition) {
  EXPECT_EQ(morton_spread(0u), 0u);
  EXPECT_EQ(morton_spread(1u), 1u);
  EXPECT_EQ(morton_spread(0b11u), 0b101u);
  EXPECT_EQ(morton_spread(0x80000000u), 1ull << 62);
  EXPECT_EQ(morton_spread(0xffffffffu), 0x5555555555555555ull);
  // Each input bit independently: spread(1<<i) == 1 << (2i).
  for (int i = 0; i < 32; ++i)
    ASSERT_EQ(morton_spread(1u << i), 1ull << (2 * i)) << "bit " << i;
}

TEST(Morton, InterleaveIsExhaustiveOverBothInputs) {
  EXPECT_EQ(morton_interleave(0, 0), 0u);
  EXPECT_EQ(morton_interleave(1, 0), 0b01u);
  EXPECT_EQ(morton_interleave(0, 1), 0b10u);
  EXPECT_EQ(morton_interleave(0b11, 0b11), 0b1111u);
  EXPECT_EQ(morton_interleave(0xffffffffu, 0xffffffffu), ~0ull);
  // x fills even bits, y odd bits; they never collide.
  EXPECT_EQ(morton_interleave(0xffffffffu, 0), 0x5555555555555555ull);
  EXPECT_EQ(morton_interleave(0, 0xffffffffu), 0xaaaaaaaaaaaaaaaaull);
}

TEST(Morton, QuantizeHandlesDegenerateAndBoundaryInputs) {
  EXPECT_EQ(morton_quantize(0.0, 1.0), 0u);
  EXPECT_EQ(morton_quantize(1.0, 1.0), 0xffffffffu);
  EXPECT_EQ(morton_quantize(0.5, 1.0), 0x7fffffffu);
  // Degenerate extent (all points share the axis value): everything maps to
  // cell 0 instead of dividing by zero.
  EXPECT_EQ(morton_quantize(0.0, 0.0), 0u);
  EXPECT_EQ(morton_quantize(5.0, 0.0), 0u);
  // Monotone: a larger offset never gets a smaller lattice cell.
  std::uint32_t prev = 0;
  for (int i = 0; i <= 1000; ++i) {
    const std::uint32_t q = morton_quantize(i / 1000.0, 1.0);
    ASSERT_GE(q, prev);
    prev = q;
  }
}

TEST(Morton, KeyOrdersQuadrantsInZOrder) {
  BBox box;
  box.expand({0.0, 0.0});
  box.expand({1.0, 1.0});
  // Z-order visits quadrants: lower-left, lower-right, upper-left,
  // upper-right (x in even bits, y in odd bits).
  const std::uint64_t ll = morton_key({0.1, 0.1}, box);
  const std::uint64_t lr = morton_key({0.9, 0.1}, box);
  const std::uint64_t ul = morton_key({0.1, 0.9}, box);
  const std::uint64_t ur = morton_key({0.9, 0.9}, box);
  EXPECT_LT(ll, lr);
  EXPECT_LT(lr, ul);
  EXPECT_LT(ul, ur);
}

std::vector<Vec2> random_points(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec2> pts(n);
  for (Vec2& p : pts) p = {rng.uniform(), rng.uniform()};
  return pts;
}

TEST(SpatialOrder, IsAPermutationWithBitIdenticalCoordinates) {
  OrderToggleRestorer restore;
  set_spatial_order_enabled(true);
  const std::vector<Vec2> pts = random_points(2000, 0x5ee1);
  const SpatialOrder ord(pts);
  ASSERT_EQ(ord.size(), pts.size());

  std::vector<bool> hit(pts.size(), false);
  for (std::uint32_t s = 0; s < pts.size(); ++s) {
    const std::uint32_t o = ord.to_orig(s);
    ASSERT_LT(o, pts.size());
    ASSERT_FALSE(hit[o]) << "duplicate original id in permutation";
    hit[o] = true;
    ASSERT_EQ(ord.to_sorted(o), s) << "to_sorted must invert to_orig";
    // Bit-identical copy, not almost-equal.
    ASSERT_EQ(ord.points()[s].x, pts[o].x);
    ASSERT_EQ(ord.points()[s].y, pts[o].y);
  }
  // A random cloud should actually get reordered.
  EXPECT_FALSE(ord.identity());
}

TEST(SpatialOrder, IsDeterministic) {
  OrderToggleRestorer restore;
  set_spatial_order_enabled(true);
  const std::vector<Vec2> pts = random_points(1500, 0xabcd);
  const SpatialOrder a(pts);
  const SpatialOrder b(pts);
  for (std::uint32_t s = 0; s < pts.size(); ++s)
    ASSERT_EQ(a.to_orig(s), b.to_orig(s));
}

TEST(SpatialOrder, CoincidentPointsTieBreakById) {
  OrderToggleRestorer restore;
  set_spatial_order_enabled(true);
  const std::vector<Vec2> pts(17, Vec2{0.25, 0.75});
  const SpatialOrder ord(pts);
  // All keys collide; (key, id) ordering degenerates to the identity.
  for (std::uint32_t s = 0; s < pts.size(); ++s)
    ASSERT_EQ(ord.to_orig(s), s);
  EXPECT_TRUE(ord.identity());
}

TEST(SpatialOrder, DisabledToggleYieldsIdentity) {
  OrderToggleRestorer restore;
  set_spatial_order_enabled(false);
  const std::vector<Vec2> pts = random_points(500, 0x0ff);
  const SpatialOrder ord(pts);
  EXPECT_TRUE(ord.identity());
  for (std::uint32_t s = 0; s < pts.size(); ++s) {
    ASSERT_EQ(ord.to_orig(s), s);
    ASSERT_EQ(ord.to_sorted(s), s);
    ASSERT_EQ(ord.points()[s].x, pts[s].x);
    ASSERT_EQ(ord.points()[s].y, pts[s].y);
  }
}

TEST(SpatialOrder, SortedNeighborsAreSpatiallyLocal) {
  // The point of the exercise: consecutive sorted points should usually be
  // close. Compare the mean adjacent-pair distance in sorted order against
  // original (random) order — Z-order should win by a wide margin.
  OrderToggleRestorer restore;
  set_spatial_order_enabled(true);
  const std::vector<Vec2> pts = random_points(4000, 0x10ca1);
  const SpatialOrder ord(pts);
  auto mean_adjacent = [](std::span<const Vec2> v) {
    double sum = 0.0;
    for (std::size_t i = 1; i < v.size(); ++i)
      sum += dist(v[i - 1], v[i]);
    return sum / static_cast<double>(v.size() - 1);
  };
  EXPECT_LT(mean_adjacent(ord.points()), 0.25 * mean_adjacent(pts));
}

TEST(SpatialOrder, HandlesTrivialSizes) {
  OrderToggleRestorer restore;
  set_spatial_order_enabled(true);
  const SpatialOrder empty{std::span<const Vec2>{}};
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(empty.identity());

  const std::vector<Vec2> one{{0.5, 0.5}};
  const SpatialOrder single(one);
  EXPECT_EQ(single.size(), 1u);
  EXPECT_EQ(single.to_orig(0), 0u);
  EXPECT_TRUE(single.identity());
}

}  // namespace
}  // namespace thetanet::geom
