#include "geom/delaunay.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "geom/predicates.h"
#include "geom/rng.h"

namespace thetanet::geom {
namespace {

using EdgeList = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

std::vector<Vec2> random_points(std::size_t n, Rng& rng) {
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)});
  return pts;
}

TEST(Delaunay, TrivialInputs) {
  EXPECT_TRUE(delaunay_edges(std::vector<Vec2>{}).empty());
  EXPECT_TRUE(delaunay_edges(std::vector<Vec2>{{0, 0}}).empty());
  EXPECT_EQ(delaunay_edges(std::vector<Vec2>{{0, 0}, {1, 1}}),
            (EdgeList{{0, 1}}));
}

TEST(Delaunay, TriangleIsItsOwnTriangulation) {
  const std::vector<Vec2> pts{{0, 0}, {1, 0}, {0.5, 1.0}};
  EXPECT_EQ(delaunay_edges(pts), (EdgeList{{0, 1}, {0, 2}, {1, 2}}));
}

TEST(Delaunay, SquareUsesShorterDiagonalRegion) {
  // A near-square quadrilateral: the triangulation has 5 edges (4 sides +
  // one diagonal).
  const std::vector<Vec2> pts{{0, 0}, {1, 0}, {1, 1.01}, {0, 1}};
  const EdgeList edges = delaunay_edges(pts);
  EXPECT_EQ(edges.size(), 5U);
}

TEST(Delaunay, EdgeCountIsLinear) {
  Rng rng(301);
  const std::vector<Vec2> pts = random_points(300, rng);
  const EdgeList edges = delaunay_edges(pts);
  // Euler: a triangulation of n points has at most 3n - 6 edges.
  EXPECT_LE(edges.size(), 3 * pts.size() - 6);
  EXPECT_GE(edges.size(), pts.size() - 1);  // at least a connected graph
}

TEST(Delaunay, ContainsTheNearestNeighborGraph) {
  // Classic property: each point's nearest neighbour is a Delaunay neighbour.
  Rng rng(302);
  const std::vector<Vec2> pts = random_points(120, rng);
  const EdgeList edges = delaunay_edges(pts);
  std::set<std::pair<std::uint32_t, std::uint32_t>> set(edges.begin(),
                                                        edges.end());
  for (std::uint32_t i = 0; i < pts.size(); ++i) {
    std::uint32_t nn = 0;
    double best = -1.0;
    for (std::uint32_t j = 0; j < pts.size(); ++j) {
      if (j == i) continue;
      const double d = dist_sq(pts[i], pts[j]);
      if (best < 0.0 || d < best) {
        best = d;
        nn = j;
      }
    }
    const auto key = std::minmax(i, nn);
    EXPECT_TRUE(set.count({key.first, key.second}))
        << "nearest-neighbour edge (" << i << "," << nn << ") missing";
  }
}

TEST(Delaunay, LocalDelaunayProperty) {
  // For every Delaunay edge there exists an empty circumcircle through its
  // endpoints. We verify the weaker (but sufficient at random instances)
  // check: the triangulation contains no edge whose diametral circle
  // contains a point that is also a shared Delaunay neighbour forming a
  // blocked pair. Instead of reconstructing triangles we spot-check the
  // standard witness: for each edge, *some* circle through (u, v) — we use
  // the smallest, the diametral circle — either is empty or the edge is
  // still locally Delaunay through a bigger circle; in that case flipping
  // would be required only if both shared neighbours lie inside each other's
  // circumcircles. A cheap, exact variant: the Gabriel subset (empty
  // diametral circle) must always be present in the Delaunay edge set.
  Rng rng(303);
  const std::vector<Vec2> pts = random_points(100, rng);
  const EdgeList edges = delaunay_edges(pts);
  std::set<std::pair<std::uint32_t, std::uint32_t>> set(edges.begin(),
                                                        edges.end());
  for (std::uint32_t u = 0; u < pts.size(); ++u) {
    for (std::uint32_t v = u + 1; v < pts.size(); ++v) {
      bool gabriel = true;
      for (std::uint32_t w = 0; w < pts.size() && gabriel; ++w) {
        if (w == u || w == v) continue;
        if (in_gabriel_disk(pts[u], pts[v], pts[w])) gabriel = false;
      }
      if (gabriel)
        EXPECT_TRUE(set.count({u, v}))
            << "Gabriel edge (" << u << "," << v << ") missing from Delaunay";
    }
  }
}

TEST(Delaunay, DeterministicOutput) {
  Rng rng(304);
  const std::vector<Vec2> pts = random_points(80, rng);
  EXPECT_EQ(delaunay_edges(pts), delaunay_edges(pts));
}

TEST(Delaunay, GridOfPoints) {
  // Jittered grid (exact grids have cocircular quadruples; the jitter keeps
  // the instance in general position, which is the library's assumption).
  Rng rng(305);
  std::vector<Vec2> pts;
  for (int y = 0; y < 6; ++y)
    for (int x = 0; x < 6; ++x)
      pts.push_back({x + rng.uniform(-0.01, 0.01), y + rng.uniform(-0.01, 0.01)});
  const EdgeList edges = delaunay_edges(pts);
  EXPECT_LE(edges.size(), 3 * pts.size() - 6);
  // All unit grid neighbours must be connected.
  std::set<std::pair<std::uint32_t, std::uint32_t>> set(edges.begin(),
                                                        edges.end());
  for (std::uint32_t i = 0; i < pts.size(); ++i) {
    if (i % 6 != 5) EXPECT_TRUE(set.count({i, i + 1}));
    if (i + 6 < pts.size()) EXPECT_TRUE(set.count({i, i + 6}));
  }
}

}  // namespace
}  // namespace thetanet::geom
