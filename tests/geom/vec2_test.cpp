#include "geom/vec2.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace thetanet::geom {
namespace {

constexpr double kEps = 1e-12;

TEST(Vec2, ArithmeticOperators) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{-3.0, 0.5};
  EXPECT_EQ((a + b), (Vec2{-2.0, 2.5}));
  EXPECT_EQ((a - b), (Vec2{4.0, 1.5}));
  EXPECT_EQ((2.0 * a), (Vec2{2.0, 4.0}));
  EXPECT_EQ((a * 2.0), (Vec2{2.0, 4.0}));
  EXPECT_EQ((a / 2.0), (Vec2{0.5, 1.0}));
  EXPECT_EQ(-a, (Vec2{-1.0, -2.0}));
}

TEST(Vec2, CompoundAssignment) {
  Vec2 v{1.0, 1.0};
  v += {2.0, 3.0};
  EXPECT_EQ(v, (Vec2{3.0, 4.0}));
  v -= {1.0, 1.0};
  EXPECT_EQ(v, (Vec2{2.0, 3.0}));
  v *= 0.5;
  EXPECT_EQ(v, (Vec2{1.0, 1.5}));
}

TEST(Vec2, DotAndCross) {
  EXPECT_DOUBLE_EQ(dot({1.0, 0.0}, {0.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(dot({2.0, 3.0}, {4.0, 5.0}), 23.0);
  // cross > 0 when the second vector is counter-clockwise of the first.
  EXPECT_GT(cross({1.0, 0.0}, {0.0, 1.0}), 0.0);
  EXPECT_LT(cross({0.0, 1.0}, {1.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(cross({2.0, 2.0}, {4.0, 4.0}), 0.0);
}

TEST(Vec2, NormsAndDistances) {
  EXPECT_DOUBLE_EQ(norm_sq({3.0, 4.0}), 25.0);
  EXPECT_DOUBLE_EQ(norm({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(dist({1.0, 1.0}, {4.0, 5.0}), 5.0);
  EXPECT_DOUBLE_EQ(dist_sq({1.0, 1.0}, {4.0, 5.0}), 25.0);
}

TEST(Vec2, NormalizedHandlesZeroVector) {
  EXPECT_EQ(normalized({0.0, 0.0}), (Vec2{0.0, 0.0}));
  const Vec2 u = normalized({3.0, 4.0});
  EXPECT_NEAR(norm(u), 1.0, kEps);
  EXPECT_NEAR(u.x, 0.6, kEps);
  EXPECT_NEAR(u.y, 0.8, kEps);
}

TEST(Vec2, RotationQuarterTurn) {
  const Vec2 r = rotated({1.0, 0.0}, std::numbers::pi / 2.0);
  EXPECT_NEAR(r.x, 0.0, kEps);
  EXPECT_NEAR(r.y, 1.0, kEps);
}

TEST(Vec2, RotationPreservesNorm) {
  const Vec2 v{2.5, -1.25};
  for (int k = 0; k < 16; ++k) {
    const double angle = 2.0 * std::numbers::pi * k / 16.0;
    EXPECT_NEAR(norm(rotated(v, angle)), norm(v), 1e-9) << "angle " << angle;
  }
}

TEST(Vec2, Midpoint) {
  EXPECT_EQ(midpoint({0.0, 0.0}, {2.0, 4.0}), (Vec2{1.0, 2.0}));
  EXPECT_EQ(midpoint({-1.0, -1.0}, {1.0, 1.0}), (Vec2{0.0, 0.0}));
}

}  // namespace
}  // namespace thetanet::geom
