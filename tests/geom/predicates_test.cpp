#include "geom/predicates.h"

#include <gtest/gtest.h>

#include "geom/rng.h"

namespace thetanet::geom {
namespace {

TEST(Predicates, Orient2dSign) {
  EXPECT_GT(orient2d({0, 0}, {1, 0}, {0, 1}), 0.0);  // ccw
  EXPECT_LT(orient2d({0, 0}, {0, 1}, {1, 0}), 0.0);  // cw
  EXPECT_DOUBLE_EQ(orient2d({0, 0}, {1, 1}, {2, 2}), 0.0);
}

TEST(Predicates, OrientationClassification) {
  EXPECT_EQ(orientation({0, 0}, {1, 0}, {0, 1}), Orientation::kCounterClockwise);
  EXPECT_EQ(orientation({0, 0}, {0, 1}, {1, 0}), Orientation::kClockwise);
  EXPECT_EQ(orientation({0, 0}, {1, 1}, {3, 3}), Orientation::kCollinear);
}

TEST(Predicates, InCircumcircleUnitTriangle) {
  // ccw triangle on the unit circle.
  const Vec2 a{1, 0}, b{0, 1}, c{-1, 0};
  EXPECT_TRUE(in_circumcircle(a, b, c, {0.0, 0.0}));
  EXPECT_TRUE(in_circumcircle(a, b, c, {0.5, -0.5}));
  EXPECT_FALSE(in_circumcircle(a, b, c, {2.0, 0.0}));
  EXPECT_FALSE(in_circumcircle(a, b, c, {0.0, -1.5}));
}

TEST(Predicates, InCircumcircleBoundaryIsOutside) {
  const Vec2 a{1, 0}, b{0, 1}, c{-1, 0};
  // (0, -1) lies exactly on the circle: strict test must say "not inside".
  EXPECT_FALSE(in_circumcircle(a, b, c, {0.0, -1.0}));
}

TEST(Predicates, OpenAndClosedDisks) {
  EXPECT_TRUE(in_open_disk({0, 0}, 1.0, {0.5, 0.0}));
  EXPECT_FALSE(in_open_disk({0, 0}, 1.0, {1.0, 0.0}));  // boundary excluded
  EXPECT_TRUE(in_closed_disk({0, 0}, 1.0, {1.0, 0.0}));
  EXPECT_FALSE(in_closed_disk({0, 0}, 1.0, {1.0001, 0.0}));
}

TEST(Predicates, GabrielDisk) {
  const Vec2 u{0, 0}, v{2, 0};
  EXPECT_TRUE(in_gabriel_disk(u, v, {1.0, 0.5}));    // inside diameter disk
  EXPECT_TRUE(in_gabriel_disk(u, v, {1.0, 1.0}));    // on the boundary (closed)
  EXPECT_FALSE(in_gabriel_disk(u, v, {1.0, 1.01}));  // just outside
  EXPECT_FALSE(in_gabriel_disk(u, v, {-0.5, 0.0}));
}

TEST(Predicates, RngLune) {
  const Vec2 u{0, 0}, v{2, 0};
  // Lune = points closer to both endpoints than |uv| = 2.
  EXPECT_TRUE(in_rng_lune(u, v, {1.0, 0.5}));
  EXPECT_FALSE(in_rng_lune(u, v, {-0.5, 0.0}));  // too far from v
  EXPECT_FALSE(in_rng_lune(u, v, {1.0, 2.0}));   // too far from both
  // A Gabriel-disk point is always a lune point (disk subset of lune)...
  EXPECT_TRUE(in_rng_lune(u, v, {1.0, 0.99}));
  // ...but not conversely.
  EXPECT_TRUE(in_rng_lune(u, v, {1.0, 1.2}));
  EXPECT_FALSE(in_gabriel_disk(u, v, {1.0, 1.2}));
}

TEST(Predicates, GabrielDiskSubsetOfLuneProperty) {
  Rng rng(77);
  const Vec2 u{0, 0}, v{1, 0};
  for (int i = 0; i < 5000; ++i) {
    const Vec2 w{rng.uniform(-1.0, 2.0), rng.uniform(-1.5, 1.5)};
    if (in_gabriel_disk(u, v, w) && w != u && w != v) {
      // Strict-interior Gabriel points are lune points except the endpoints'
      // boundary degeneracies.
      if (dist_sq(u, w) > 0 && dist_sq(v, w) > 0 &&
          in_open_disk(midpoint(u, v), dist(u, v) / 2.0, w)) {
        ASSERT_TRUE(in_rng_lune(u, v, w)) << w.x << "," << w.y;
      }
    }
  }
}

}  // namespace
}  // namespace thetanet::geom
