// Property suite: the two spatial indexes (uniform grid, k-d tree) must
// answer every query identically — they are interchangeable backends for
// neighbour discovery.

#include <gtest/gtest.h>

#include <tuple>

#include "geom/kdtree.h"
#include "geom/rng.h"
#include "geom/spatial_grid.h"

namespace thetanet::geom {
namespace {

class IndexEquivalence
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(IndexEquivalence, WithinQueriesAgree) {
  const auto [n, cell] = GetParam();
  Rng rng(1000 + n);
  std::vector<Vec2> pts;
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)});
  const SpatialGrid grid(pts, cell);
  const KdTree tree(pts);
  for (int q = 0; q < 100; ++q) {
    const Vec2 c{rng.uniform(-0.1, 1.1), rng.uniform(-0.1, 1.1)};
    const double r = rng.uniform(0.02, 0.7);
    ASSERT_EQ(grid.within(c, r), tree.within(c, r)) << "n=" << n;
  }
}

TEST_P(IndexEquivalence, NearestQueriesAgree) {
  const auto [n, cell] = GetParam();
  Rng rng(2000 + n);
  std::vector<Vec2> pts;
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)});
  const SpatialGrid grid(pts, cell);
  const KdTree tree(pts);
  for (int q = 0; q < 200; ++q) {
    const Vec2 c{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)};
    ASSERT_EQ(grid.nearest(c), tree.nearest(c)) << "n=" << n;
  }
}

TEST_P(IndexEquivalence, ExcludedNearestAgrees) {
  const auto [n, cell] = GetParam();
  if (n < 2) GTEST_SKIP();
  Rng rng(3000 + n);
  std::vector<Vec2> pts;
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)});
  const SpatialGrid grid(pts, cell);
  const KdTree tree(pts);
  for (std::uint32_t e = 0; e < std::min<std::size_t>(n, 50); ++e)
    ASSERT_EQ(grid.nearest(pts[e], e), tree.nearest(pts[e], e));
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndCells, IndexEquivalence,
    ::testing::Combine(::testing::Values(1UL, 2UL, 17UL, 100UL, 500UL),
                       ::testing::Values(0.05, 0.2, 1.5)));

}  // namespace
}  // namespace thetanet::geom
