#include "geom/kdtree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "geom/rng.h"

namespace thetanet::geom {
namespace {

std::vector<Vec2> random_points(std::size_t n, Rng& rng) {
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)});
  return pts;
}

std::vector<std::uint32_t> brute_knn(const std::vector<Vec2>& pts, Vec2 q,
                                     std::size_t k, std::uint32_t exclude) {
  std::vector<std::uint32_t> ids;
  for (std::uint32_t i = 0; i < pts.size(); ++i)
    if (i != exclude) ids.push_back(i);
  std::sort(ids.begin(), ids.end(), [&](std::uint32_t a, std::uint32_t b) {
    const double da = dist_sq(pts[a], q), db = dist_sq(pts[b], q);
    return da < db || (da == db && a < b);
  });
  if (ids.size() > k) ids.resize(k);
  return ids;
}

TEST(KdTree, EmptyTree) {
  const std::vector<Vec2> pts;
  const KdTree tree(pts);
  EXPECT_EQ(tree.nearest({0, 0}), KdTree::kNone);
  EXPECT_TRUE(tree.k_nearest({0, 0}, 3).empty());
  EXPECT_TRUE(tree.within({0, 0}, 1.0).empty());
}

TEST(KdTree, NearestMatchesBruteForce) {
  Rng rng(201);
  const std::vector<Vec2> pts = random_points(400, rng);
  const KdTree tree(pts);
  for (int q = 0; q < 300; ++q) {
    const Vec2 c{rng.uniform(-0.2, 1.2), rng.uniform(-0.2, 1.2)};
    ASSERT_EQ(tree.nearest(c), brute_knn(pts, c, 1, KdTree::kNone).front());
  }
}

TEST(KdTree, KNearestMatchesBruteForce) {
  Rng rng(202);
  const std::vector<Vec2> pts = random_points(200, rng);
  const KdTree tree(pts);
  for (const std::size_t k : {1U, 2U, 5U, 16U, 199U, 200U, 300U}) {
    for (int q = 0; q < 50; ++q) {
      const Vec2 c{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)};
      ASSERT_EQ(tree.k_nearest(c, k), brute_knn(pts, c, k, KdTree::kNone))
          << "k=" << k;
    }
  }
}

TEST(KdTree, KNearestOrderedByDistance) {
  Rng rng(203);
  const std::vector<Vec2> pts = random_points(150, rng);
  const KdTree tree(pts);
  const Vec2 c{0.5, 0.5};
  const auto knn = tree.k_nearest(c, 20);
  for (std::size_t i = 1; i < knn.size(); ++i)
    ASSERT_LE(dist_sq(pts[knn[i - 1]], c), dist_sq(pts[knn[i]], c));
}

TEST(KdTree, KNearestExcludesSelf) {
  Rng rng(204);
  const std::vector<Vec2> pts = random_points(100, rng);
  const KdTree tree(pts);
  for (std::uint32_t e = 0; e < 30; ++e) {
    const auto knn = tree.k_nearest(pts[e], 10, e);
    EXPECT_EQ(std::count(knn.begin(), knn.end(), e), 0);
    EXPECT_EQ(knn, brute_knn(pts, pts[e], 10, e));
  }
}

TEST(KdTree, WithinMatchesBruteForce) {
  Rng rng(205);
  const std::vector<Vec2> pts = random_points(250, rng);
  const KdTree tree(pts);
  for (int q = 0; q < 100; ++q) {
    const Vec2 c{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)};
    const double r = rng.uniform(0.05, 0.6);
    std::vector<std::uint32_t> expect;
    for (std::uint32_t i = 0; i < pts.size(); ++i)
      if (dist_sq(pts[i], c) <= r * r) expect.push_back(i);
    ASSERT_EQ(tree.within(c, r), expect);
  }
}

TEST(KdTree, DuplicatePointsAreAllFound) {
  const std::vector<Vec2> pts{{0.1, 0.1}, {0.1, 0.1}, {0.9, 0.9}};
  const KdTree tree(pts);
  const auto knn = tree.k_nearest({0.1, 0.1}, 2);
  EXPECT_EQ(knn, (std::vector<std::uint32_t>{0, 1}));
}

TEST(KdTree, CollinearPoints) {
  std::vector<Vec2> pts;
  for (int i = 0; i < 50; ++i) pts.push_back({static_cast<double>(i), 0.0});
  const KdTree tree(pts);
  EXPECT_EQ(tree.nearest({25.2, 0.0}), 25U);
  EXPECT_EQ(tree.within({10.0, 0.0}, 2.0),
            (std::vector<std::uint32_t>{8, 9, 10, 11, 12}));
}

}  // namespace
}  // namespace thetanet::geom
