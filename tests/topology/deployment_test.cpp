#include "topology/deployment.h"

#include <gtest/gtest.h>

namespace thetanet::topo {
namespace {

Deployment square_corners(double kappa = 2.0) {
  Deployment d;
  d.positions = {{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  d.max_range = 1.5;
  d.kappa = kappa;
  return d;
}

TEST(Deployment, DistancesAndRange) {
  const Deployment d = square_corners();
  EXPECT_DOUBLE_EQ(d.distance(0, 1), 1.0);
  EXPECT_NEAR(d.distance(0, 2), std::sqrt(2.0), 1e-12);
  EXPECT_TRUE(d.in_range(0, 1));
  EXPECT_TRUE(d.in_range(0, 2));  // sqrt(2) < 1.5
  Deployment tight = d;
  tight.max_range = 1.2;
  EXPECT_FALSE(tight.in_range(0, 2));
}

TEST(Deployment, EnergyFollowsPowerLaw) {
  const Deployment d2 = square_corners(2.0);
  EXPECT_DOUBLE_EQ(d2.energy(0, 1), 1.0);
  EXPECT_NEAR(d2.energy(0, 2), 2.0, 1e-12);  // (sqrt 2)^2
  const Deployment d4 = square_corners(4.0);
  EXPECT_NEAR(d4.energy(0, 2), 4.0, 1e-12);  // (sqrt 2)^4
}

TEST(Deployment, CostOfLengthMonotone) {
  const Deployment d = square_corners(3.0);
  EXPECT_LT(d.cost_of_length(0.5), d.cost_of_length(0.6));
  EXPECT_DOUBLE_EQ(d.cost_of_length(2.0), 8.0);
}

TEST(Deployment, MinMaxPairwiseDistance) {
  const Deployment d = square_corners();
  const auto [lo, hi] = min_max_pairwise_distance(d);
  EXPECT_DOUBLE_EQ(lo, 1.0);
  EXPECT_NEAR(hi, std::sqrt(2.0), 1e-12);
}

TEST(Deployment, CivilityIsMinSeparationOverRange) {
  Deployment d = square_corners();
  d.max_range = 2.0;
  EXPECT_DOUBLE_EQ(civility(d), 0.5);
  Deployment tiny;
  tiny.positions = {{0, 0}};
  EXPECT_DOUBLE_EQ(civility(tiny), 1.0);  // degenerate: vacuously civilized
}

TEST(Deployment, EmptyDeployment) {
  const Deployment d;
  EXPECT_EQ(d.size(), 0U);
  const auto [lo, hi] = min_max_pairwise_distance(d);
  EXPECT_DOUBLE_EQ(lo, 0.0);
  EXPECT_DOUBLE_EQ(hi, 0.0);
}

}  // namespace
}  // namespace thetanet::topo
