// Property tests for the Morton reorder layer (geom/spatial_order.h): the
// permutation is an internal layout detail, so every construction kernel
// must produce byte-identical outputs — edges, sector tables, interference
// sets, and stable telemetry counters — with the reorder ON or OFF and for
// any thread count. The baseline configuration is Morton OFF with one
// thread (the pre-reorder serial layout); every other (morton, threads)
// combination is compared against it field-for-field.

#include <gtest/gtest.h>

#include <cstring>
#include <numbers>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "core/theta_topology.h"
#include "geom/spatial_order.h"
#include "interference/model.h"
#include "obs/metrics.h"
#include "topology/distributions.h"
#include "topology/proximity.h"
#include "topology/transmission_graph.h"
#include "topology/yao.h"

namespace thetanet {
namespace {

constexpr double kTheta = std::numbers::pi / 9.0;

topo::Deployment make_deployment(std::size_t n, std::uint64_t seed) {
  geom::Rng rng(seed);
  topo::Deployment d;
  d.positions = topo::uniform_square(n, 1.0, rng);
  d.max_range = 1.6 * std::sqrt(std::log(static_cast<double>(n)) /
                                static_cast<double>(n));
  d.kappa = 2.0;
  return d;
}

std::uint64_t double_bits(double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

// Everything a configuration produces, flattened to exact integers (float
// fields are compared as raw bits — "byte-identical" means exactly that,
// not approximate equality).
struct PipelineOutput {
  std::vector<std::uint64_t> blob;
  std::vector<std::pair<std::string, std::uint64_t>> stable_counters;

  bool operator==(const PipelineOutput&) const = default;

  void add_graph(const graph::Graph& g) {
    blob.push_back(g.num_edges());
    for (const graph::Edge& e : g.edges()) {
      blob.push_back(e.u);
      blob.push_back(e.v);
      blob.push_back(double_bits(e.length));
    }
  }
};

PipelineOutput run_pipeline(const topo::Deployment& d, bool morton,
                            int threads) {
  geom::set_spatial_order_enabled(morton);
  tn::set_num_threads(threads);
  obs::MetricsRegistry::global().reset();

  PipelineOutput out;
  const topo::SectorTable st = topo::compute_sector_table(d, kTheta);
  for (graph::NodeId u = 0; u < d.size(); ++u)
    for (int s = 0; s < st.sectors(); ++s) out.blob.push_back(st.nearest(u, s));

  const core::ThetaTopology tt(d, kTheta);
  out.add_graph(tt.graph());
  out.add_graph(topo::build_transmission_graph(d));
  out.add_graph(topo::gabriel_graph(d));

  const interf::InterferenceModel m{1.0};
  for (const std::uint32_t s :
       interf::interference_set_sizes(tt.graph(), d, m))
    out.blob.push_back(s);
  for (const auto& set : interf::interference_sets(tt.graph(), d, m)) {
    out.blob.push_back(set.size());
    for (const graph::EdgeId e : set) out.blob.push_back(e);
  }

  // Only kStable counters participate: timing-class metrics are allowed to
  // depend on scheduling by contract.
  for (const obs::CounterSnapshot& c :
       obs::MetricsRegistry::global().snapshot().counters)
    if (c.stability == obs::Stability::kStable)
      out.stable_counters.emplace_back(c.name, c.value);

  geom::set_spatial_order_enabled(true);
  tn::set_num_threads(1);
  return out;
}

TEST(SpatialOrder, PipelineInvariantUnderMortonAndThreads) {
  const topo::Deployment d = make_deployment(2000, 0xa11ce);
  const PipelineOutput baseline =
      run_pipeline(d, /*morton=*/false, /*threads=*/1);
  ASSERT_FALSE(baseline.blob.empty());
  ASSERT_FALSE(baseline.stable_counters.empty());

  for (const bool morton : {false, true}) {
    for (const int threads : {1, 2, 4}) {
      SCOPED_TRACE(::testing::Message()
                   << "morton=" << morton << " threads=" << threads);
      const PipelineOutput got = run_pipeline(d, morton, threads);
      EXPECT_EQ(got.blob, baseline.blob);
      EXPECT_EQ(got.stable_counters, baseline.stable_counters);
    }
  }
}

TEST(SpatialOrder, PermutationIsABitExactInverseCopy) {
  const topo::Deployment d = make_deployment(1500, 0xfeed);
  geom::set_spatial_order_enabled(true);
  const geom::SpatialOrder ord(d.positions);
  ASSERT_EQ(ord.size(), d.positions.size());
  std::vector<bool> seen(ord.size(), false);
  for (std::uint32_t s = 0; s < ord.size(); ++s) {
    const std::uint32_t o = ord.to_orig(s);
    ASSERT_LT(o, ord.size());
    EXPECT_FALSE(seen[o]);
    seen[o] = true;
    EXPECT_EQ(ord.to_sorted(o), s);
    // Copied coordinates must be the same bits, not just the same values.
    EXPECT_EQ(double_bits(ord.points()[s].x), double_bits(d.positions[o].x));
    EXPECT_EQ(double_bits(ord.points()[s].y), double_bits(d.positions[o].y));
  }
}

TEST(SpatialOrder, DisabledOrderIsIdentity) {
  const topo::Deployment d = make_deployment(300, 0xbeef);
  geom::set_spatial_order_enabled(false);
  const geom::SpatialOrder ord(d.positions);
  geom::set_spatial_order_enabled(true);
  EXPECT_TRUE(ord.identity());
  for (std::uint32_t s = 0; s < ord.size(); ++s) EXPECT_EQ(ord.to_orig(s), s);
}

}  // namespace
}  // namespace thetanet
