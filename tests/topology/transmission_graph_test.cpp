#include "topology/transmission_graph.h"

#include <gtest/gtest.h>

#include <cmath>

#include "topology/distributions.h"

namespace thetanet::topo {
namespace {

TEST(TransmissionGraph, SmallHandCase) {
  Deployment d;
  d.positions = {{0, 0}, {1, 0}, {3, 0}};
  d.max_range = 1.5;
  d.kappa = 2.0;
  const graph::Graph g = build_transmission_graph(d);
  EXPECT_EQ(g.num_edges(), 1U);  // only (0,1); (1,2) is 2.0 > 1.5
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 2));
}

TEST(TransmissionGraph, EdgeWeightsMatchModel) {
  Deployment d;
  d.positions = {{0, 0}, {0.5, 0}};
  d.max_range = 1.0;
  d.kappa = 3.0;
  const graph::Graph g = build_transmission_graph(d);
  ASSERT_EQ(g.num_edges(), 1U);
  EXPECT_DOUBLE_EQ(g.edge(0).length, 0.5);
  EXPECT_DOUBLE_EQ(g.edge(0).cost, 0.125);
}

TEST(TransmissionGraph, MatchesBruteForceOnRandomInstances) {
  geom::Rng rng(21);
  for (int trial = 0; trial < 5; ++trial) {
    Deployment d;
    d.positions = uniform_square(150, 1.0, rng);
    d.max_range = rng.uniform(0.1, 0.4);
    d.kappa = 2.0;
    const graph::Graph g = build_transmission_graph(d);
    std::size_t expect = 0;
    for (std::uint32_t u = 0; u < d.size(); ++u)
      for (std::uint32_t v = u + 1; v < d.size(); ++v)
        if (d.distance(u, v) <= d.max_range) {
          ++expect;
          ASSERT_TRUE(g.has_edge(u, v)) << u << "," << v;
        }
    ASSERT_EQ(g.num_edges(), expect);
  }
}

TEST(TransmissionGraph, BoundaryDistanceIncluded) {
  Deployment d;
  d.positions = {{0, 0}, {1, 0}};
  d.max_range = 1.0;  // exactly at range: edge exists (<= D)
  EXPECT_EQ(build_transmission_graph(d).num_edges(), 1U);
}

TEST(TransmissionGraph, DeterministicEdgeIds) {
  geom::Rng rng(22);
  Deployment d;
  d.positions = uniform_square(100, 1.0, rng);
  d.max_range = 0.3;
  const graph::Graph a = build_transmission_graph(d);
  const graph::Graph b = build_transmission_graph(d);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (graph::EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e).u, b.edge(e).u);
    EXPECT_EQ(a.edge(e).v, b.edge(e).v);
  }
}

TEST(TransmissionGraph, TrivialSizes) {
  Deployment d;
  EXPECT_EQ(build_transmission_graph(d).num_nodes(), 0U);
  d.positions = {{0, 0}};
  EXPECT_EQ(build_transmission_graph(d).num_edges(), 0U);
}

}  // namespace
}  // namespace thetanet::topo
