#include "topology/yao.h"

#include <gtest/gtest.h>

#include <numbers>

#include "geom/angles.h"
#include "graph/connectivity.h"
#include "graph/stretch.h"
#include "topology/distributions.h"
#include "topology/transmission_graph.h"

namespace thetanet::topo {
namespace {

constexpr double kPi = std::numbers::pi;

Deployment random_deployment(std::size_t n, double range, geom::Rng& rng) {
  Deployment d;
  d.positions = uniform_square(n, 1.0, rng);
  d.max_range = range;
  d.kappa = 2.0;
  return d;
}

TEST(SectorTable, MatchesBruteForce) {
  geom::Rng rng(31);
  const double theta = kPi / 6.0;
  const Deployment d = random_deployment(120, 0.4, rng);
  const SectorTable table = compute_sector_table(d, theta);
  const int k = table.sectors();
  for (graph::NodeId u = 0; u < d.size(); ++u) {
    for (int s = 0; s < k; ++s) {
      // Brute force: nearest in-range node of u in sector s.
      graph::NodeId best = graph::kInvalidNode;
      for (graph::NodeId v = 0; v < d.size(); ++v) {
        if (v == u || !d.in_range(u, v)) continue;
        if (geom::sector_index(d.positions[u], d.positions[v], theta) != s)
          continue;
        if (nearer(d, u, v, best)) best = v;
      }
      ASSERT_EQ(table.nearest(u, s), best) << "node " << u << " sector " << s;
    }
  }
}

TEST(SectorTable, SelectsAgreesWithNearest) {
  geom::Rng rng(32);
  const double theta = kPi / 9.0;
  const Deployment d = random_deployment(80, 0.5, rng);
  const SectorTable table = compute_sector_table(d, theta);
  for (graph::NodeId u = 0; u < d.size(); ++u)
    for (int s = 0; s < table.sectors(); ++s) {
      const graph::NodeId v = table.nearest(u, s);
      if (v != graph::kInvalidNode) EXPECT_TRUE(table.selects(u, v, d, theta));
    }
}

TEST(SectorTable, ThetaAbovePiOver3Rejected) {
  geom::Rng rng(33);
  const Deployment d = random_deployment(10, 0.5, rng);
  EXPECT_DEATH(compute_sector_table(d, kPi / 2.0), "theta");
}

TEST(Nearer, LexicographicTieBreak) {
  Deployment d;
  d.positions = {{0, 0}, {1, 0}, {-1, 0}};  // nodes 1 and 2 equidistant from 0
  d.max_range = 2.0;
  EXPECT_TRUE(nearer(d, 0, 1, 2));
  EXPECT_FALSE(nearer(d, 0, 2, 1));
  EXPECT_TRUE(nearer(d, 0, 1, graph::kInvalidNode));
  EXPECT_FALSE(nearer(d, 0, graph::kInvalidNode, 1));
}

TEST(YaoGraph, OutDegreeBoundedBySectors) {
  geom::Rng rng(34);
  const double theta = kPi / 6.0;
  const Deployment d = random_deployment(200, 0.3, rng);
  const SectorTable table = compute_sector_table(d, theta);
  // Directed out-degree (selections) is at most the sector count.
  for (graph::NodeId u = 0; u < d.size(); ++u) {
    int out = 0;
    for (int s = 0; s < table.sectors(); ++s)
      out += table.nearest(u, s) != graph::kInvalidNode ? 1 : 0;
    ASSERT_LE(out, table.sectors());
  }
}

TEST(YaoGraph, IsConnectedWhenGStarIs) {
  geom::Rng rng(35);
  for (int trial = 0; trial < 5; ++trial) {
    const Deployment d = random_deployment(150, 0.25, rng);
    const graph::Graph gstar = build_transmission_graph(d);
    if (!graph::is_connected(gstar)) continue;
    const graph::Graph n1 = yao_graph(d, kPi / 6.0);
    EXPECT_TRUE(graph::is_connected(n1)) << "trial " << trial;
  }
}

TEST(YaoGraph, IsSubgraphOfGStar) {
  geom::Rng rng(36);
  const Deployment d = random_deployment(100, 0.35, rng);
  const graph::Graph gstar = build_transmission_graph(d);
  const graph::Graph n1 = yao_graph(d, kPi / 6.0);
  for (const graph::Edge& e : n1.edges()) {
    EXPECT_TRUE(gstar.has_edge(e.u, e.v));
    EXPECT_LE(e.length, d.max_range);
  }
}

TEST(YaoGraph, SpannerStretchSmallOnRandomInstances) {
  // N_1 is a spanner: its distance-stretch against G* stays below the
  // classical 1/(1 - 2 sin(theta/2)) bound.
  geom::Rng rng(37);
  const double theta = kPi / 6.0;
  const double bound = 1.0 / (1.0 - 2.0 * std::sin(theta / 2.0));
  const Deployment d = random_deployment(150, 0.35, rng);
  const graph::Graph gstar = build_transmission_graph(d);
  const graph::Graph n1 = yao_graph(d, theta);
  const graph::StretchStats s =
      graph::edge_stretch(n1, gstar, graph::Weight::kLength);
  EXPECT_FALSE(s.disconnected);
  EXPECT_LE(s.max, bound);
}

TEST(YaoGraph, HubRingInDegreeIsLinear) {
  // The adversarial construction: every rim node selects the hub, so the
  // hub's Yao degree is n - 1 (the weakness phase 2 of ThetaALG fixes).
  geom::Rng rng(38);
  const std::size_t n = 64;
  Deployment d;
  d.positions = hub_ring(n, 1.0, rng);
  d.max_range = 1.2;  // rim-to-hub in range; rim-to-antipode out of range
  d.kappa = 2.0;
  const graph::Graph n1 = yao_graph(d, kPi / 6.0);
  EXPECT_EQ(n1.degree(0), n - 1);
}

TEST(YaoGraph, PrecomputedTableGivesSameGraph) {
  geom::Rng rng(39);
  const Deployment d = random_deployment(90, 0.3, rng);
  const double theta = kPi / 9.0;
  const SectorTable table = compute_sector_table(d, theta);
  const graph::Graph a = yao_graph(d, theta);
  const graph::Graph b = yao_graph(d, theta, table);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (graph::EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e).u, b.edge(e).u);
    EXPECT_EQ(a.edge(e).v, b.edge(e).v);
  }
}

}  // namespace
}  // namespace thetanet::topo
