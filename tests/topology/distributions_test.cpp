#include "topology/distributions.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/angles.h"
#include "topology/deployment.h"

namespace thetanet::topo {
namespace {

using geom::Rng;
using geom::Vec2;

double min_pairwise(const std::vector<Vec2>& pts) {
  double lo = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < pts.size(); ++i)
    for (std::size_t j = i + 1; j < pts.size(); ++j)
      lo = std::min(lo, geom::dist(pts[i], pts[j]));
  return lo;
}

TEST(Distributions, UniformSquareBounds) {
  Rng rng(1);
  const auto pts = uniform_square(500, 2.5, rng);
  ASSERT_EQ(pts.size(), 500U);
  for (const Vec2 p : pts) {
    ASSERT_GE(p.x, 0.0);
    ASSERT_LT(p.x, 2.5);
    ASSERT_GE(p.y, 0.0);
    ASSERT_LT(p.y, 2.5);
  }
}

TEST(Distributions, UniformSquareIsDeterministicPerSeed) {
  Rng a(9), b(9);
  EXPECT_EQ(uniform_square(50, 1.0, a), uniform_square(50, 1.0, b));
}

TEST(Distributions, ClusteredStaysInSquareAndClusters) {
  Rng rng(2);
  const double side = 1.0, sigma = 0.02;
  const auto pts = clustered(400, 4, sigma, side, rng);
  ASSERT_EQ(pts.size(), 400U);
  for (const Vec2 p : pts) {
    ASSERT_GE(p.x, 0.0);
    ASSERT_LE(p.x, side);
    ASSERT_GE(p.y, 0.0);
    ASSERT_LE(p.y, side);
  }
  // Clustering: the average nearest-neighbour distance should be far below
  // the uniform expectation (~ 0.5 / sqrt(n)).
  double sum_nn = 0.0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    double nn = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < pts.size(); ++j)
      if (i != j) nn = std::min(nn, geom::dist(pts[i], pts[j]));
    sum_nn += nn;
  }
  EXPECT_LT(sum_nn / static_cast<double>(pts.size()),
            0.5 / std::sqrt(400.0));
}

TEST(Distributions, GridJitterCountAndSpacing) {
  Rng rng(3);
  const auto pts = grid_jitter(100, 1.0, 0.001, rng);
  ASSERT_EQ(pts.size(), 100U);
  // With tiny jitter on a 10x10 grid, min separation ~ grid step 0.1.
  EXPECT_GT(min_pairwise(pts), 0.09);
}

TEST(Distributions, GridJitterNonSquareCount) {
  Rng rng(4);
  EXPECT_EQ(grid_jitter(37, 1.0, 0.01, rng).size(), 37U);
}

TEST(Distributions, CivilizedRespectsMinSeparation) {
  Rng rng(5);
  const double min_sep = 0.04;
  const auto pts = civilized(200, 1.0, min_sep, rng);
  ASSERT_EQ(pts.size(), 200U);
  EXPECT_GE(min_pairwise(pts), min_sep);
}

TEST(Distributions, CivilizedLambdaPrecisionWitness) {
  Rng rng(6);
  Deployment d;
  d.positions = civilized(150, 1.0, 0.05, rng);
  d.max_range = 0.25;
  EXPECT_GE(civility(d), 0.05 / 0.25 - 1e-12);
}

TEST(Distributions, HubRingGeometry) {
  Rng rng(7);
  const auto pts = hub_ring(64, 1.0, rng);
  ASSERT_EQ(pts.size(), 64U);
  EXPECT_EQ(pts[0], (Vec2{0.0, 0.0}));
  for (std::size_t i = 1; i < pts.size(); ++i) {
    const double r = geom::norm(pts[i]);
    ASSERT_GE(r, 1.0);
    ASSERT_LE(r, 1.001);
  }
  // Rim nodes must be closer to the hub than to any antipodal rim node,
  // so that the hub is the in-sector nearest neighbour for everyone.
  EXPECT_GT(min_pairwise(pts), 0.0);
}

TEST(Distributions, HubRingDistancesUnique) {
  Rng rng(8);
  const auto pts = hub_ring(32, 1.0, rng);
  std::vector<double> dists;
  for (std::size_t i = 0; i < pts.size(); ++i)
    for (std::size_t j = i + 1; j < pts.size(); ++j)
      dists.push_back(geom::dist_sq(pts[i], pts[j]));
  std::sort(dists.begin(), dists.end());
  for (std::size_t i = 1; i < dists.size(); ++i)
    ASSERT_NE(dists[i - 1], dists[i]);
}

TEST(Distributions, ExponentialChainGapsGrow) {
  Rng rng(9);
  const auto pts = exponential_chain(10, 1.0, 2.0, rng);
  ASSERT_EQ(pts.size(), 10U);
  for (std::size_t i = 2; i < pts.size(); ++i) {
    const double prev = pts[i - 1].x - pts[i - 2].x;
    const double cur = pts[i].x - pts[i - 1].x;
    EXPECT_NEAR(cur / prev, 2.0, 1e-9);
  }
}

TEST(Distributions, NestedClustersSpanScales) {
  Rng rng(11);
  const auto pts = nested_clusters(400, 4, 8.0, 1.0, rng);
  ASSERT_EQ(pts.size(), 400U);
  // Pairwise distances must span several orders of magnitude: that is the
  // generator's purpose (non-civilized instances).
  double lo = std::numeric_limits<double>::infinity(), hi = 0.0;
  for (std::size_t i = 0; i < pts.size(); ++i)
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      const double d = geom::dist(pts[i], pts[j]);
      lo = std::min(lo, d);
      hi = std::max(hi, d);
    }
  EXPECT_GT(lo, 0.0);
  EXPECT_GT(hi / lo, 1e3);
}

TEST(Distributions, NestedClustersDeterministic) {
  Rng a(3), b(3);
  EXPECT_EQ(nested_clusters(64, 3, 8.0, 1.0, a),
            nested_clusters(64, 3, 8.0, 1.0, b));
}

TEST(Distributions, PerturbStaysWithinEps) {
  Rng rng(10);
  auto pts = grid_jitter(64, 1.0, 0.0, rng);
  const auto orig = pts;
  perturb(pts, 0.01, rng);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_LE(std::abs(pts[i].x - orig[i].x), 0.01);
    EXPECT_LE(std::abs(pts[i].y - orig[i].y), 0.01);
  }
}

}  // namespace
}  // namespace thetanet::topo
