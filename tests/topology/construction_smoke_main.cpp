// CI smoke driver for the large-n construction path (see tests/CMakeLists
// "construction_smoke_*"): builds one n=1e5-scale deployment, runs the
// parallelized construction kernels (sector table, ThetaALG, transmission
// graph, Gabriel graph, interference set sizes), and
//
//   1. fails if the process peak RSS exceeds --max-rss-mb — the memory
//      budget that pins the SoA/Morton layout's footprint in CI, and
//   2. writes the deterministic telemetry dump to --out, which ctest
//      byte-compares across TN_NUM_THREADS values (same contract as the
//      fuzz-driver telemetry diffs, exercised here at smoke scale on the
//      real construction pipeline).
//
// usage: construction_smoke_main --out DUMP.json [--n N] [--max-rss-mb MB]

#include <cmath>
#include <cstdio>
#include <cstring>
#include <numbers>
#include <string>

#if defined(__linux__)
#include <sys/resource.h>
#endif

#include "core/theta_topology.h"
#include "geom/rng.h"
#include "interference/model.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timeseries.h"
#include "obs/trace_sink.h"
#include "topology/distributions.h"
#include "topology/proximity.h"
#include "topology/transmission_graph.h"
#include "topology/yao.h"

namespace {

double peak_rss_mb() {
#if defined(__linux__)
  rusage u{};
  getrusage(RUSAGE_SELF, &u);
  return static_cast<double>(u.ru_maxrss) / 1024.0;  // ru_maxrss is KiB
#else
  return 0.0;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  using namespace thetanet;

  std::string out_path;
  std::size_t n = 100000;
  double max_rss_mb = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      n = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--max-rss-mb") == 0 && i + 1 < argc) {
      max_rss_mb = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: construction_smoke_main --out DUMP.json [--n N] "
                   "[--max-rss-mb MB]\n");
      return 2;
    }
  }
  if (out_path.empty()) {
    std::fprintf(stderr, "construction_smoke_main: --out is required\n");
    return 2;
  }

  obs::set_recording(true);
  obs::MetricsRegistry::global().reset();
  obs::SeriesRegistry::global().reset();
  obs::reset_spans();

  geom::Rng rng(0xbe9c4 + n);
  topo::Deployment d;
  d.positions = topo::uniform_square(n, 1.0, rng);
  d.max_range = 1.6 * std::sqrt(std::log(static_cast<double>(n)) /
                                static_cast<double>(n));
  d.kappa = 2.0;

  constexpr double kTheta = std::numbers::pi / 9.0;
  std::uint64_t sink = 0;
  {
    const topo::SectorTable st = topo::compute_sector_table(d, kTheta);
    sink ^= static_cast<std::uint64_t>(st.sectors());
  }
  const core::ThetaTopology tt(d, kTheta);
  sink ^= tt.graph().num_edges();
  sink ^= topo::build_transmission_graph(d).num_edges();
  sink ^= topo::gabriel_graph(d).num_edges();
  const interf::InterferenceModel m{1.0};
  for (const std::uint32_t s : interf::interference_set_sizes(tt.graph(), d, m))
    sink += s;

  const double rss = peak_rss_mb();
  std::printf("construction_smoke: n=%zu sink=%llu peak_rss=%.1f MB\n", n,
              static_cast<unsigned long long>(sink), rss);
  if (!obs::write_telemetry_json(out_path, /*include_timing=*/false)) {
    std::fprintf(stderr, "construction_smoke: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  if (max_rss_mb > 0.0 && rss > max_rss_mb) {
    std::fprintf(stderr,
                 "construction_smoke: peak RSS %.1f MB exceeds the %.1f MB "
                 "budget\n",
                 rss, max_rss_mb);
    return 1;
  }
  return 0;
}
