#include "topology/proximity.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "geom/angles.h"
#include "geom/predicates.h"
#include "graph/connectivity.h"
#include "graph/stretch.h"
#include "topology/distributions.h"
#include "topology/metrics.h"
#include "topology/transmission_graph.h"

namespace thetanet::topo {
namespace {

Deployment random_deployment(std::size_t n, double range, geom::Rng& rng) {
  Deployment d;
  d.positions = uniform_square(n, 1.0, rng);
  d.max_range = range;
  d.kappa = 2.0;
  return d;
}

std::set<std::pair<graph::NodeId, graph::NodeId>> edge_set(
    const graph::Graph& g) {
  std::set<std::pair<graph::NodeId, graph::NodeId>> s;
  for (const graph::Edge& e : g.edges()) s.insert(std::minmax(e.u, e.v));
  return s;
}

TEST(Proximity, GabrielMatchesBruteForce) {
  geom::Rng rng(41);
  const Deployment d = random_deployment(80, 0.5, rng);
  const graph::Graph gg = gabriel_graph(d);
  for (graph::NodeId u = 0; u < d.size(); ++u)
    for (graph::NodeId v = u + 1; v < d.size(); ++v) {
      if (d.distance(u, v) > d.max_range) {
        ASSERT_FALSE(gg.has_edge(u, v));
        continue;
      }
      bool empty = true;
      for (graph::NodeId w = 0; w < d.size() && empty; ++w) {
        if (w == u || w == v) continue;
        if (geom::in_gabriel_disk(d.positions[u], d.positions[v],
                                  d.positions[w]))
          empty = false;
      }
      ASSERT_EQ(gg.has_edge(u, v), empty) << u << "," << v;
    }
}

TEST(Proximity, RngIsSubgraphOfGabriel) {
  geom::Rng rng(42);
  const Deployment d = random_deployment(150, 0.4, rng);
  const auto gabriel = edge_set(gabriel_graph(d));
  const auto rngg = edge_set(relative_neighborhood_graph(d));
  for (const auto& e : rngg) EXPECT_TRUE(gabriel.count(e));
  EXPECT_LT(rngg.size(), gabriel.size());
}

TEST(Proximity, MstIsSubgraphOfRng) {
  geom::Rng rng(43);
  const Deployment d = random_deployment(120, 0.5, rng);
  const auto rngg = edge_set(relative_neighborhood_graph(d));
  const auto mst = edge_set(euclidean_mst(d));
  for (const auto& e : mst) EXPECT_TRUE(rngg.count(e));
}

TEST(Proximity, GabrielIsSubgraphOfRestrictedDelaunay) {
  geom::Rng rng(44);
  const Deployment d = random_deployment(100, 0.5, rng);
  const auto rdg = edge_set(restricted_delaunay_graph(d));
  const auto gabriel = edge_set(gabriel_graph(d));
  for (const auto& e : gabriel) EXPECT_TRUE(rdg.count(e));
}

TEST(Proximity, GabrielHasOptimalEnergyPaths) {
  // For kappa >= 2, the Gabriel graph contains a minimum-energy path between
  // every pair — its energy-stretch against G* is exactly 1.
  geom::Rng rng(45);
  const Deployment d = random_deployment(100, 0.45, rng);
  const graph::Graph gstar = build_transmission_graph(d);
  if (!graph::is_connected(gstar)) GTEST_SKIP();
  const graph::Graph gg = gabriel_graph(d);
  const graph::StretchStats s =
      graph::pairwise_stretch(gg, gstar, graph::Weight::kCost);
  EXPECT_FALSE(s.disconnected);
  EXPECT_NEAR(s.max, 1.0, 1e-9);
}

TEST(Proximity, RestrictedDelaunayOmitsLongEdges) {
  geom::Rng rng(46);
  const Deployment d = random_deployment(150, 0.2, rng);
  const graph::Graph rdg = restricted_delaunay_graph(d);
  for (const graph::Edge& e : rdg.edges()) EXPECT_LE(e.length, d.max_range);
}

TEST(Proximity, KnnGraphDegreeAndSymmetry) {
  geom::Rng rng(47);
  const Deployment d = random_deployment(150, 0.5, rng);
  const std::size_t k = 4;
  const graph::Graph g = knn_graph(d, k);
  // Symmetric closure: degree can exceed k (nodes chosen by many others)
  // but each node contributes at most k outgoing choices.
  EXPECT_LE(g.num_edges(), k * d.size());
  for (const graph::Edge& e : g.edges()) EXPECT_LE(e.length, d.max_range);
}

TEST(Proximity, KnnGraphCanBeDisconnected) {
  // Two distant tight clusters: 2-NN edges never cross the gap even though
  // G* (with a big range) would connect them — the intro's observation that
  // k-nearest neighbours do not guarantee connectivity.
  Deployment d;
  d.positions = {{0, 0},    {0.1, 0}, {0, 0.1},
                 {5, 5},    {5.1, 5}, {5, 5.1}};
  d.max_range = 10.0;
  d.kappa = 2.0;
  const graph::Graph g = knn_graph(d, 2);
  EXPECT_FALSE(graph::is_connected(g));
  EXPECT_TRUE(graph::is_connected(build_transmission_graph(d)));
}

TEST(Proximity, GabrielDegreeCanBeLinear) {
  // A star: center with rim nodes placed so every diametral disk is empty.
  // Gabriel keeps all spokes -> Omega(n) degree (the paper's objection).
  Deployment d;
  d.positions.push_back({0, 0});
  const std::size_t rim = 24;
  for (std::size_t i = 0; i < rim; ++i) {
    const double a = geom::kTwoPi * static_cast<double>(i) /
                     static_cast<double>(rim);
    d.positions.push_back({std::cos(a), std::sin(a)});
  }
  d.max_range = 1.1;
  d.kappa = 2.0;
  const graph::Graph g = gabriel_graph(d);
  EXPECT_EQ(g.degree(0), rim);
}

TEST(Proximity, MstIsTreeWhenConnected) {
  geom::Rng rng(48);
  const Deployment d = random_deployment(100, 0.4, rng);
  const graph::Graph gstar = build_transmission_graph(d);
  if (!graph::is_connected(gstar)) GTEST_SKIP();
  const graph::Graph mst = euclidean_mst(d);
  EXPECT_EQ(mst.num_edges(), d.size() - 1);
  EXPECT_TRUE(graph::is_connected(mst));
}

TEST(Metrics, DegreeStats) {
  graph::Graph g(4);
  g.add_edge(0, 1, 1.0, 1.0);
  g.add_edge(0, 2, 1.0, 1.0);
  g.add_edge(0, 3, 1.0, 1.0);
  const DegreeStats s = degree_stats(g);
  EXPECT_EQ(s.max, 3U);
  EXPECT_DOUBLE_EQ(s.mean, 1.5);
  ASSERT_EQ(s.histogram.size(), 4U);
  EXPECT_EQ(s.histogram[1], 3U);
  EXPECT_EQ(s.histogram[3], 1U);
}

TEST(Metrics, EdgeLengthStats) {
  graph::Graph g(3);
  g.add_edge(0, 1, 1.0, 1.0);
  g.add_edge(1, 2, 3.0, 9.0);
  const EdgeLengthStats s = edge_length_stats(g);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.total, 4.0);
}

}  // namespace
}  // namespace thetanet::topo
