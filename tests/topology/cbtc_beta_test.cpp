#include <gtest/gtest.h>

#include <numbers>
#include <set>

#include "geom/angles.h"
#include "graph/connectivity.h"
#include "graph/stretch.h"
#include "topology/cbtc.h"
#include "topology/distributions.h"
#include "topology/proximity.h"
#include "topology/transmission_graph.h"

namespace thetanet::topo {
namespace {

constexpr double kPi = std::numbers::pi;

Deployment random_deployment(std::size_t n, double range, std::uint64_t seed) {
  geom::Rng rng(seed);
  Deployment d;
  d.positions = uniform_square(n, 1.0, rng);
  d.max_range = range;
  d.kappa = 2.0;
  return d;
}

std::set<std::pair<graph::NodeId, graph::NodeId>> edge_set(
    const graph::Graph& g) {
  std::set<std::pair<graph::NodeId, graph::NodeId>> s;
  for (const graph::Edge& e : g.edges()) s.insert(std::minmax(e.u, e.v));
  return s;
}

TEST(Cbtc, RadiiCoverEveryCone) {
  const Deployment d = random_deployment(120, 0.4, 61);
  const double alpha = 2.0 * kPi / 3.0;
  const auto radii = cbtc_radii(d, alpha);
  ASSERT_EQ(radii.size(), d.size());
  for (graph::NodeId u = 0; u < d.size(); ++u) {
    ASSERT_LE(radii[u], d.max_range);
    if (radii[u] >= d.max_range) continue;  // boundary node, gave up
    // Verify: neighbours within radii[u] leave no angular gap >= alpha.
    std::vector<double> bearings;
    for (graph::NodeId v = 0; v < d.size(); ++v) {
      if (v == u || d.distance(u, v) > radii[u] + 1e-12) continue;
      bearings.push_back(geom::bearing(d.positions[u], d.positions[v]));
    }
    ASSERT_FALSE(bearings.empty());
    std::sort(bearings.begin(), bearings.end());
    double max_gap = bearings.front() + geom::kTwoPi - bearings.back();
    for (std::size_t i = 1; i < bearings.size(); ++i)
      max_gap = std::max(max_gap, bearings[i] - bearings[i - 1]);
    EXPECT_LT(max_gap, alpha) << "node " << u;
  }
}

TEST(Cbtc, RadiiAreMinimal) {
  // Shrinking any node's radius below the chosen one must break coverage.
  const Deployment d = random_deployment(80, 0.5, 62);
  const double alpha = 2.0 * kPi / 3.0;
  const auto radii = cbtc_radii(d, alpha);
  for (graph::NodeId u = 0; u < d.size(); ++u) {
    if (radii[u] >= d.max_range) continue;
    std::vector<double> bearings;
    for (graph::NodeId v = 0; v < d.size(); ++v) {
      if (v == u) continue;
      // Strictly closer than the chosen radius (exclude the radius-setting
      // neighbour itself).
      if (d.distance(u, v) < radii[u] - 1e-12)
        bearings.push_back(geom::bearing(d.positions[u], d.positions[v]));
    }
    std::sort(bearings.begin(), bearings.end());
    bool covered = !bearings.empty();
    if (covered) {
      double max_gap = bearings.front() + geom::kTwoPi - bearings.back();
      for (std::size_t i = 1; i < bearings.size(); ++i)
        max_gap = std::max(max_gap, bearings[i] - bearings[i - 1]);
      covered = max_gap < alpha;
    }
    EXPECT_FALSE(covered) << "node " << u << " radius not minimal";
  }
}

TEST(Cbtc, ConnectedAtTwoPiOverThree) {
  for (const std::uint64_t seed : {63ULL, 64ULL, 65ULL}) {
    const Deployment d = random_deployment(150, 0.25, seed);
    const graph::Graph gstar = build_transmission_graph(d);
    if (!graph::is_connected(gstar)) continue;
    const graph::Graph g = cbtc_graph(d, 2.0 * kPi / 3.0);
    EXPECT_TRUE(graph::is_connected(g)) << "seed " << seed;
  }
}

TEST(Cbtc, SubgraphOfGStarAndSparser) {
  const Deployment d = random_deployment(150, 0.35, 66);
  const graph::Graph gstar = build_transmission_graph(d);
  const graph::Graph g = cbtc_graph(d, 2.0 * kPi / 3.0);
  EXPECT_LT(g.num_edges(), gstar.num_edges());
  for (const graph::Edge& e : g.edges()) EXPECT_TRUE(gstar.has_edge(e.u, e.v));
}

TEST(Cbtc, SmallerAlphaKeepsMoreEdges) {
  const Deployment d = random_deployment(120, 0.4, 67);
  const graph::Graph wide = cbtc_graph(d, 2.0 * kPi / 3.0);
  const graph::Graph narrow = cbtc_graph(d, kPi / 3.0);
  // Smaller cones require more neighbours -> larger radii -> more edges.
  EXPECT_GE(narrow.num_edges(), wide.num_edges());
}

TEST(BetaSkeleton, BetaOneMatchesGabrielModuloBoundary) {
  const Deployment d = random_deployment(100, 0.5, 68);
  const auto gabriel = edge_set(gabriel_graph(d));
  const auto beta1 = edge_set(beta_skeleton(d, 1.0));
  // Open vs closed disk: beta-skeleton(1) keeps every Gabriel edge; random
  // instances have no boundary coincidences, so the sets are equal.
  EXPECT_EQ(beta1, gabriel);
}

TEST(BetaSkeleton, BetaTwoMatchesRng) {
  const Deployment d = random_deployment(100, 0.5, 69);
  EXPECT_EQ(edge_set(beta_skeleton(d, 2.0)),
            edge_set(relative_neighborhood_graph(d)));
}

TEST(BetaSkeleton, MonotoneInBeta) {
  // Larger beta -> larger empty region required -> fewer edges.
  const Deployment d = random_deployment(120, 0.45, 70);
  const auto b05 = beta_skeleton(d, 0.5);
  const auto b1 = beta_skeleton(d, 1.0);
  const auto b2 = beta_skeleton(d, 2.0);
  EXPECT_GE(b05.num_edges(), b1.num_edges());
  EXPECT_GE(b1.num_edges(), b2.num_edges());
  // Subset chain: every b2 edge is a b1 edge is a b05 edge.
  const auto s05 = edge_set(b05), s1 = edge_set(b1), s2 = edge_set(b2);
  for (const auto& e : s2) EXPECT_TRUE(s1.count(e));
  for (const auto& e : s1) EXPECT_TRUE(s05.count(e));
}

TEST(BetaSkeleton, SmallBetaHasOptimalEnergyPaths) {
  // beta < 1 skeletons contain the Gabriel graph, hence minimum-energy
  // paths (the property the paper cites in Section 2.2).
  const Deployment d = random_deployment(90, 0.5, 71);
  const graph::Graph gstar = build_transmission_graph(d);
  if (!graph::is_connected(gstar)) GTEST_SKIP();
  const graph::Graph b = beta_skeleton(d, 0.8);
  const auto s = graph::pairwise_stretch(b, gstar, graph::Weight::kCost);
  EXPECT_FALSE(s.disconnected);
  EXPECT_NEAR(s.max, 1.0, 1e-9);
}

}  // namespace
}  // namespace thetanet::topo
