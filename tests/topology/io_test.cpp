#include "topology/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "topology/distributions.h"
#include "topology/transmission_graph.h"

namespace thetanet::topo {
namespace {

TEST(DeploymentIo, RoundTripsExactly) {
  geom::Rng rng(1);
  Deployment d;
  d.positions = uniform_square(64, 1.0, rng);
  d.max_range = 0.3141592653589793;
  d.kappa = 2.5;

  std::stringstream ss;
  save_deployment(ss, d);
  const auto back = load_deployment(ss);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), d.size());
  EXPECT_EQ(back->max_range, d.max_range);  // bit-exact
  EXPECT_EQ(back->kappa, d.kappa);
  for (std::size_t i = 0; i < d.size(); ++i)
    EXPECT_EQ(back->positions[i], d.positions[i]) << i;
}

TEST(DeploymentIo, RejectsMalformedInput) {
  const auto check_bad = [](const std::string& text) {
    std::stringstream ss(text);
    EXPECT_FALSE(load_deployment(ss).has_value()) << text;
  };
  check_bad("");
  check_bad("graph v1 2 1\n0 1 1 1\n");            // wrong tag
  check_bad("deployment v2 1 1.0 2.0\n0 0\n");     // wrong version
  check_bad("deployment v1 2 1.0 2.0\n0 0\n");     // missing point
  check_bad("deployment v1 1 -1.0 2.0\n0 0\n");    // bad range
  check_bad("deployment v1 1 1.0 0.5\n0 0\n");     // kappa < 1
  check_bad("deployment v1 1 1.0 2.0\nx y\n");     // non-numeric
}

TEST(DeploymentIo, FileRoundTrip) {
  geom::Rng rng(2);
  Deployment d;
  d.positions = uniform_square(10, 1.0, rng);
  d.max_range = 0.5;
  d.kappa = 2.0;
  const std::string path = "/tmp/thetanet_io_test_deployment.tsv";
  ASSERT_TRUE(save_deployment(path, d));
  const auto back = load_deployment(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->size(), 10U);
  EXPECT_FALSE(load_deployment("/nonexistent/nope.tsv").has_value());
}

TEST(GraphIo, RoundTripsExactly) {
  geom::Rng rng(3);
  Deployment d;
  d.positions = uniform_square(50, 1.0, rng);
  d.max_range = 0.4;
  d.kappa = 2.0;
  const graph::Graph g = build_transmission_graph(d);
  ASSERT_GT(g.num_edges(), 0U);

  std::stringstream ss;
  save_graph(ss, g);
  const auto back = load_graph(ss);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->num_nodes(), g.num_nodes());
  ASSERT_EQ(back->num_edges(), g.num_edges());
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(back->edge(e).u, g.edge(e).u);
    EXPECT_EQ(back->edge(e).v, g.edge(e).v);
    EXPECT_EQ(back->edge(e).length, g.edge(e).length);  // bit-exact
    EXPECT_EQ(back->edge(e).cost, g.edge(e).cost);
  }
}

TEST(GraphIo, RejectsMalformedInput) {
  const auto check_bad = [](const std::string& text) {
    std::stringstream ss(text);
    EXPECT_FALSE(load_graph(ss).has_value()) << text;
  };
  check_bad("");
  check_bad("graph v1 2 1\n0 2 1 1\n");   // node id out of range
  check_bad("graph v1 2 1\n0 0 1 1\n");   // self loop
  check_bad("graph v1 2 1\n0 1 -1 1\n");  // negative length
  check_bad("graph v1 2 2\n0 1 1 1\n");   // missing edge line
}

TEST(GraphIo, EmptyGraph) {
  std::stringstream ss;
  save_graph(ss, graph::Graph(5));
  const auto back = load_graph(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->num_nodes(), 5U);
  EXPECT_EQ(back->num_edges(), 0U);
}

}  // namespace
}  // namespace thetanet::topo
