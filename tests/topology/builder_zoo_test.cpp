// The topology zoo (topology/builder.h): registry integrity, the shared
// normalize_edges() edge-list contract across every builder and input
// family, byte-identical builds across Morton on/off and thread counts
// (the spatial_order_test pattern applied to the whole registry), and the
// structural expectations of the three literature competitors (Theta-Theta,
// Θ₄, hierarchical neighbor graphs).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <numbers>
#include <set>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "core/theta_topology.h"
#include "geom/rng.h"
#include "geom/spatial_order.h"
#include "topology/builder.h"
#include "topology/cones.h"
#include "topology/distributions.h"
#include "topology/hng.h"
#include "topology/normalize.h"
#include "topology/proximity.h"
#include "topology/theta_graphs.h"
#include "topology/transmission_graph.h"

namespace thetanet {
namespace {

using topo::EdgePair;

topo::Deployment uniform_deployment(std::size_t n, std::uint64_t seed,
                                    double range) {
  geom::Rng rng(seed);
  topo::Deployment d;
  d.positions = topo::uniform_square(n, 1.0, rng);
  d.max_range = range;
  d.kappa = 2.0;
  return d;
}

/// Input families the edge-list contract must survive: generic, coincident
/// points, exact collinearity, tiny n.
std::vector<topo::Deployment> contract_families() {
  std::vector<topo::Deployment> out;
  out.push_back(uniform_deployment(48, 0xbade, 0.35));
  topo::Deployment coincident;
  coincident.positions.assign(7, {0.5, 0.5});
  coincident.positions.push_back({0.6, 0.5});
  coincident.max_range = 1.0;
  coincident.kappa = 2.0;
  out.push_back(coincident);
  topo::Deployment collinear;
  for (int i = 0; i < 9; ++i)
    collinear.positions.push_back({0.05 + 0.09 * i, 0.4});
  collinear.max_range = 0.3;
  collinear.kappa = 3.0;
  out.push_back(collinear);
  for (const std::size_t n : {0u, 1u, 2u})
    out.push_back(uniform_deployment(n, 0x51 + n, 0.5));
  return out;
}

std::uint64_t double_bits(double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

std::vector<std::uint64_t> graph_blob(const graph::Graph& g) {
  std::vector<std::uint64_t> blob;
  blob.push_back(g.num_edges());
  for (const graph::Edge& e : g.edges()) {
    blob.push_back(e.u);
    blob.push_back(e.v);
    blob.push_back(double_bits(e.length));
    blob.push_back(double_bits(e.cost));
  }
  return blob;
}

TEST(BuilderRegistry, LookupAndCoverage) {
  const auto& reg = topo::builder_registry();
  ASSERT_GE(reg.size(), 12u);
  EXPECT_EQ(reg.front().name, "theta");  // the paper's ALG leads
  EXPECT_EQ(reg.back().name, "gstar");   // the reference closes
  const std::string names = topo::builder_names();
  std::set<std::string> seen;
  for (const auto& b : reg) {
    EXPECT_TRUE(seen.insert(b.name).second) << "duplicate " << b.name;
    EXPECT_NE(names.find(b.name), std::string::npos);
    const topo::TopologyBuilder* found = topo::find_builder(b.name);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->name, b.name);
  }
  for (const char* competitor : {"theta-theta", "theta4", "hng"})
    EXPECT_NE(topo::find_builder(competitor), nullptr) << competitor;
  EXPECT_EQ(topo::find_builder("no-such-structure"), nullptr);
}

TEST(BuilderZoo, NormalizeEdgesCanonicalizesAnyInput) {
  // Raw collections with reversed pairs, duplicates (in both orientations),
  // and self-loops — normalize_edges must canonicalize all of it.
  std::vector<EdgePair> pairs = {{3, 1}, {1, 3}, {2, 2}, {0, 4},
                                 {4, 0}, {1, 2}, {2, 1}, {0, 4}};
  topo::normalize_edges(pairs);
  const std::vector<EdgePair> want = {{0, 4}, {1, 2}, {1, 3}};
  EXPECT_EQ(pairs, want);

  geom::Rng rng(0xabc);
  std::vector<EdgePair> fuzz;
  for (int i = 0; i < 500; ++i)
    fuzz.emplace_back(static_cast<graph::NodeId>(rng.uniform_index(20)),
                      static_cast<graph::NodeId>(rng.uniform_index(20)));
  topo::normalize_edges(fuzz);
  for (std::size_t i = 0; i < fuzz.size(); ++i) {
    EXPECT_LT(fuzz[i].first, fuzz[i].second);
    if (i > 0) {
      EXPECT_LT(fuzz[i - 1], fuzz[i]);  // strict: sorted + unique
    }
  }
}

TEST(BuilderZoo, EveryBuilderHonoursTheEdgeListContract) {
  for (const topo::Deployment& d : contract_families()) {
    const graph::Graph gstar = topo::build_transmission_graph(d);
    for (const topo::TopologyBuilder& b : topo::builder_registry()) {
      SCOPED_TRACE(b.name + " on n=" + std::to_string(d.size()));
      const graph::Graph g = b.build(d);
      ASSERT_EQ(g.num_nodes(), d.size());
      for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
        const graph::Edge ed = g.edge(e);
        ASSERT_LT(ed.u, ed.v);
        if (e > 0) {
          const graph::Edge prev = g.edge(e - 1);
          ASSERT_TRUE(prev.u < ed.u || (prev.u == ed.u && prev.v < ed.v))
              << "edge " << e << " breaks lexicographic order";
        }
        ASSERT_LE(ed.length, d.max_range + 1e-12);
        ASSERT_EQ(double_bits(ed.length), double_bits(d.distance(ed.u, ed.v)));
        ASSERT_NE(gstar.find_edge(ed.u, ed.v), graph::kInvalidEdge)
            << "edge outside G*";
      }
    }
  }
}

TEST(BuilderZoo, MstEdgesAreLexicographicallyNormalized) {
  // Regression: mst_subgraph emits Kruskal acceptance order; the builder
  // must renormalize (caught by the zoo structure check on first run).
  const topo::Deployment d = uniform_deployment(64, 0x357, 0.4);
  const graph::Graph mst = topo::euclidean_mst(d);
  ASSERT_GT(mst.num_edges(), 0u);
  for (graph::EdgeId e = 1; e < mst.num_edges(); ++e) {
    const graph::Edge a = mst.edge(e - 1), b = mst.edge(e);
    EXPECT_TRUE(a.u < b.u || (a.u == b.u && a.v < b.v));
  }
}

TEST(BuilderZoo, RestrictedDelaunayKeepsGabrielOnDegenerateChains) {
  // Regression: the fp Bowyer-Watson kernel dropped edges on exponential
  // chains, disconnecting the RDG where G* wasn't. Gabriel edges are
  // unioned back in, restoring the subset property that carries the
  // connectivity and stretch claims.
  geom::Rng rng(0xcade);
  topo::Deployment d;
  d.positions = topo::exponential_chain(160, 0.01, 1.15, rng);
  d.max_range = 1.0;
  d.kappa = 2.0;
  const graph::Graph rdg = topo::restricted_delaunay_graph(d);
  const graph::Graph gg = topo::gabriel_graph(d);
  for (graph::EdgeId e = 0; e < gg.num_edges(); ++e)
    EXPECT_NE(rdg.find_edge(gg.edge(e).u, gg.edge(e).v), graph::kInvalidEdge);
}

TEST(BuilderZoo, ThetaRegistryEntryMatchesThetaTopology) {
  const topo::Deployment d = uniform_deployment(96, 0x7e7a, 0.3);
  const topo::TopologyBuilder* b = topo::find_builder("theta");
  ASSERT_NE(b, nullptr);
  const core::ThetaTopology tt(d, std::numbers::pi / 9.0);
  EXPECT_EQ(graph_blob(b->build(d)), graph_blob(tt.graph()));
}

TEST(ThetaTheta, DegreeBoundAndSubsetOfThetaGraph) {
  const topo::ConeScheme scheme{12, 0.0};
  for (const std::uint64_t seed : {2ULL, 5ULL}) {
    const topo::Deployment d = uniform_deployment(80, seed, 0.5);
    const graph::Graph theta = topo::theta_graph(d, scheme);
    const graph::Graph tt = topo::theta_theta_graph(d, scheme);
    // Phase 2 prunes incoming edges per cone: Theta-Theta ⊆ Θ-graph, and
    // each node keeps <= k outgoing selections + k surviving incoming.
    for (graph::EdgeId e = 0; e < tt.num_edges(); ++e)
      EXPECT_NE(theta.find_edge(tt.edge(e).u, tt.edge(e).v),
                graph::kInvalidEdge);
    EXPECT_LE(tt.max_degree(), 2u * 12u);
  }
}

TEST(Theta4, FourConesCentredOnAxes) {
  const topo::ConeScheme s = topo::theta4_scheme();
  EXPECT_EQ(s.k, 4);
  // Cone boundaries along y = ±x: the +x axis direction is strictly inside
  // a cone, as are the other three axis directions, all distinct cones.
  std::set<int> cones;
  const geom::Vec2 o{0.0, 0.0};
  for (const geom::Vec2 dir :
       {geom::Vec2{1.0, 0.0}, {0.0, 1.0}, {-1.0, 0.0}, {0.0, -1.0}})
    cones.insert(s.cone_of(o, dir));
  EXPECT_EQ(cones.size(), 4u);

  const topo::Deployment d = uniform_deployment(60, 0x44, 1.5);
  const graph::Graph t4 = topo::theta4_graph(d);
  ASSERT_GT(t4.num_edges(), 0u);
  // <= 4 outgoing selections per node: at most 4n/... edges total.
  EXPECT_LE(t4.num_edges(), 4 * d.size());
}

TEST(Hng, LevelsAreDeterministicAndGeometric) {
  const topo::HngParams p;
  std::size_t ones = 0, n = 4096;
  for (std::size_t u = 0; u < n; ++u) {
    const int l = topo::hng_level(static_cast<graph::NodeId>(u), p);
    ASSERT_GE(l, 1);
    ASSERT_LE(l, p.max_level);
    EXPECT_EQ(topo::hng_level(static_cast<graph::NodeId>(u), p), l);
    if (l == 1) ++ones;
  }
  // Geometric(1/2): about half the nodes stay at level 1.
  EXPECT_NEAR(static_cast<double>(ones) / static_cast<double>(n), 0.5, 0.05);
}

TEST(Hng, ConnectedOnCompleteInstances) {
  for (const std::uint64_t seed : {3ULL, 9ULL, 27ULL}) {
    const topo::Deployment d = uniform_deployment(64, seed, 1.5);
    const graph::Graph g = topo::hng_graph(d);
    // Every node of level l links to one strictly-higher-level node per
    // slot; max-level nodes are chained — connected whenever G* is
    // complete (the registry's connected_complete claim).
    std::vector<graph::NodeId> parent(d.size());
    for (graph::NodeId u = 0; u < d.size(); ++u) parent[u] = u;
    const auto find = [&](graph::NodeId u) {
      while (parent[u] != u) u = parent[u] = parent[parent[u]];
      return u;
    };
    for (const graph::Edge& e : g.edges()) parent[find(e.u)] = find(e.v);
    std::set<graph::NodeId> roots;
    for (graph::NodeId u = 0; u < d.size(); ++u) roots.insert(find(u));
    EXPECT_EQ(roots.size(), 1u) << "seed " << seed;
  }
}

TEST(BuilderZoo, BuildsAreInvariantUnderMortonAndThreads) {
  const topo::Deployment d = uniform_deployment(400, 0x2004, 0.2);
  for (const topo::TopologyBuilder& b : topo::builder_registry()) {
    SCOPED_TRACE(b.name);
    geom::set_spatial_order_enabled(false);
    tn::set_num_threads(1);
    const std::vector<std::uint64_t> baseline = graph_blob(b.build(d));
    for (const bool morton : {false, true}) {
      for (const int threads : {1, 2, 4}) {
        geom::set_spatial_order_enabled(morton);
        tn::set_num_threads(threads);
        EXPECT_EQ(graph_blob(b.build(d)), baseline)
            << "morton=" << morton << " threads=" << threads;
      }
    }
    geom::set_spatial_order_enabled(true);
    tn::set_num_threads(1);
  }
}

}  // namespace
}  // namespace thetanet
