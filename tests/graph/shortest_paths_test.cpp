#include "graph/shortest_paths.h"

#include <gtest/gtest.h>

#include <vector>

#include "geom/rng.h"

namespace thetanet::graph {
namespace {

/// A small weighted graph with known shortest paths:
///
///   0 --1-- 1 --1-- 2
///    \             /
///     ----5-------
Graph triangle() {
  Graph g(3);
  g.add_edge(0, 1, 1.0, 1.0);
  g.add_edge(1, 2, 1.0, 1.0);
  g.add_edge(0, 2, 5.0, 25.0);
  return g;
}

TEST(Dijkstra, PicksTheCheaperTwoHopPath) {
  const Graph g = triangle();
  const ShortestPathTree t = dijkstra(g, 0, Weight::kLength);
  EXPECT_DOUBLE_EQ(t.dist[0], 0.0);
  EXPECT_DOUBLE_EQ(t.dist[1], 1.0);
  EXPECT_DOUBLE_EQ(t.dist[2], 2.0);
  EXPECT_EQ(t.path_to(2), (std::vector<NodeId>{0, 1, 2}));
}

TEST(Dijkstra, WeightKindChangesTheAnswer) {
  Graph g(3);
  g.add_edge(0, 1, 2.0, 4.0);
  g.add_edge(1, 2, 2.0, 4.0);
  g.add_edge(0, 2, 3.0, 9.0);
  // By length: direct edge 3 < 4.
  EXPECT_DOUBLE_EQ(dijkstra(g, 0, Weight::kLength).dist[2], 3.0);
  // By cost (kappa = 2): relaying 8 < 9 — the energy-relaying effect the
  // paper's cost model creates.
  EXPECT_DOUBLE_EQ(dijkstra(g, 0, Weight::kCost).dist[2], 8.0);
  // By hops: direct edge wins.
  EXPECT_DOUBLE_EQ(dijkstra(g, 0, Weight::kHops).dist[2], 1.0);
}

TEST(Dijkstra, UnreachableNodesAreInfinity) {
  Graph g(4);
  g.add_edge(0, 1, 1.0, 1.0);
  const ShortestPathTree t = dijkstra(g, 0, Weight::kLength);
  EXPECT_EQ(t.dist[2], kUnreachable);
  EXPECT_EQ(t.dist[3], kUnreachable);
  EXPECT_TRUE(t.path_to(3).empty());
}

TEST(Dijkstra, PathToSourceIsTrivial) {
  const Graph g = triangle();
  const ShortestPathTree t = dijkstra(g, 1, Weight::kLength);
  EXPECT_EQ(t.path_to(1), (std::vector<NodeId>{1}));
  EXPECT_EQ(t.parent[1], kInvalidNode);
}

TEST(Dijkstra, ViaEdgeReconstructsUsableEdges) {
  const Graph g = triangle();
  const ShortestPathTree t = dijkstra(g, 0, Weight::kLength);
  const EdgeId via = t.via_edge[2];
  ASSERT_NE(via, kInvalidEdge);
  EXPECT_EQ(g.edge(via).u, 1U);
  EXPECT_EQ(g.edge(via).v, 2U);
}

TEST(Dijkstra, MatchesBellmanFordOnRandomGraphs) {
  geom::Rng rng(71);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 30;
    Graph g(n);
    for (NodeId u = 0; u < n; ++u)
      for (NodeId v = u + 1; v < n; ++v)
        if (rng.bernoulli(0.15)) {
          const double len = rng.uniform(0.1, 2.0);
          g.add_edge(u, v, len, len * len);
        }
    const ShortestPathTree t = dijkstra(g, 0, Weight::kLength);
    // Bellman-Ford reference.
    std::vector<double> dist(n, kUnreachable);
    dist[0] = 0.0;
    for (std::size_t round = 0; round < n; ++round)
      for (const Edge& e : g.edges()) {
        if (dist[e.u] + e.length < dist[e.v]) dist[e.v] = dist[e.u] + e.length;
        if (dist[e.v] + e.length < dist[e.u]) dist[e.u] = dist[e.v] + e.length;
      }
    for (NodeId v = 0; v < n; ++v) {
      if (dist[v] == kUnreachable) {
        ASSERT_EQ(t.dist[v], kUnreachable) << "node " << v;
      } else {
        ASSERT_NEAR(t.dist[v], dist[v], 1e-9) << "node " << v;
      }
    }
  }
}

TEST(Dijkstra, StopAfterSettledTruncatesSearch) {
  // Path graph 0-1-2-3-4: settling 2 nodes leaves the far end unreached.
  Graph g(5);
  for (NodeId i = 0; i + 1 < 5; ++i) g.add_edge(i, i + 1, 1.0, 1.0);
  const ShortestPathTree t = dijkstra(g, 0, Weight::kLength, 2);
  EXPECT_DOUBLE_EQ(t.dist[1], 1.0);
  // Node 2 was relaxed but nodes beyond were not.
  EXPECT_EQ(t.dist[4], kUnreachable);
}

TEST(BfsHops, CountsEdges) {
  const Graph g = triangle();
  const std::vector<double> hops = bfs_hops(g, 0);
  EXPECT_DOUBLE_EQ(hops[0], 0.0);
  EXPECT_DOUBLE_EQ(hops[1], 1.0);
  EXPECT_DOUBLE_EQ(hops[2], 1.0);  // direct edge exists regardless of weight
}

TEST(BfsHops, DisconnectedComponent) {
  Graph g(3);
  g.add_edge(0, 1, 1.0, 1.0);
  const std::vector<double> hops = bfs_hops(g, 0);
  EXPECT_EQ(hops[2], kUnreachable);
}

TEST(PairDistance, Convenience) {
  const Graph g = triangle();
  EXPECT_DOUBLE_EQ(pair_distance(g, 0, 2, Weight::kLength), 2.0);
  EXPECT_DOUBLE_EQ(pair_distance(g, 0, 2, Weight::kCost), 2.0);
}

}  // namespace
}  // namespace thetanet::graph
