#include <gtest/gtest.h>

#include <algorithm>

#include "geom/rng.h"
#include "graph/connectivity.h"
#include "graph/mst.h"
#include "graph/shortest_paths.h"

namespace thetanet::graph {
namespace {

TEST(Connectivity, EmptyAndSingleton) {
  EXPECT_TRUE(is_connected(Graph{}));
  EXPECT_TRUE(is_connected(Graph{1}));
  EXPECT_EQ(num_components(Graph{}), 0U);
  EXPECT_EQ(num_components(Graph{1}), 1U);
}

TEST(Connectivity, TwoComponents) {
  Graph g(4);
  g.add_edge(0, 1, 1.0, 1.0);
  g.add_edge(2, 3, 1.0, 1.0);
  EXPECT_FALSE(is_connected(g));
  EXPECT_EQ(num_components(g), 2U);
  const auto labels = component_labels(g);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[2], labels[3]);
  EXPECT_NE(labels[0], labels[2]);
}

TEST(Connectivity, LabelsAreDense) {
  Graph g(5);
  g.add_edge(1, 3, 1.0, 1.0);
  const auto labels = component_labels(g);
  const std::uint32_t max_label = *std::max_element(labels.begin(), labels.end());
  EXPECT_EQ(max_label + 1, num_components(g));
}

TEST(Mst, PathGraphKeepsEverything) {
  Graph g(4);
  for (NodeId i = 0; i + 1 < 4; ++i) g.add_edge(i, i + 1, 1.0, 1.0);
  EXPECT_EQ(mst_edges(g, Weight::kLength).size(), 3U);
}

TEST(Mst, DropsTheHeaviestCycleEdge) {
  Graph g(3);
  g.add_edge(0, 1, 1.0, 1.0);
  g.add_edge(1, 2, 2.0, 4.0);
  const EdgeId heavy = g.add_edge(0, 2, 3.0, 9.0);
  const auto edges = mst_edges(g, Weight::kLength);
  EXPECT_EQ(edges.size(), 2U);
  EXPECT_EQ(std::count(edges.begin(), edges.end(), heavy), 0);
}

TEST(Mst, WeightKindMatters) {
  // length order: e02 (2.9) < e01 (2.0 + 1.1 via cost trick)... build edges
  // where length order and cost order differ.
  Graph g(3);
  const EdgeId e01 = g.add_edge(0, 1, 2.0, 1.0);  // long but cheap
  const EdgeId e12 = g.add_edge(1, 2, 2.0, 1.0);
  const EdgeId e02 = g.add_edge(0, 2, 1.0, 9.0);  // short but expensive
  const auto by_len = mst_edges(g, Weight::kLength);
  EXPECT_TRUE(std::count(by_len.begin(), by_len.end(), e02) == 1);
  const auto by_cost = mst_edges(g, Weight::kCost);
  EXPECT_TRUE(std::count(by_cost.begin(), by_cost.end(), e02) == 0);
  EXPECT_TRUE(std::count(by_cost.begin(), by_cost.end(), e01) == 1);
  EXPECT_TRUE(std::count(by_cost.begin(), by_cost.end(), e12) == 1);
}

TEST(Mst, SpanningForestOnDisconnectedGraph) {
  Graph g(5);
  g.add_edge(0, 1, 1.0, 1.0);
  g.add_edge(1, 2, 1.0, 1.0);
  g.add_edge(3, 4, 1.0, 1.0);
  EXPECT_EQ(mst_edges(g, Weight::kLength).size(), 3U);  // n - #components
}

TEST(Mst, SubgraphPreservesConnectivityAndWeight) {
  geom::Rng rng(55);
  Graph g(40);
  for (NodeId u = 0; u < 40; ++u)
    for (NodeId v = u + 1; v < 40; ++v)
      if (rng.bernoulli(0.2)) {
        const double len = rng.uniform(0.1, 1.0);
        g.add_edge(u, v, len, len * len);
      }
    // (random graph at p=0.2 and n=40 is connected with overwhelming prob.)
  ASSERT_TRUE(is_connected(g));
  const Graph t = mst_subgraph(g, Weight::kLength);
  EXPECT_TRUE(is_connected(t));
  EXPECT_EQ(t.num_edges(), 39U);
  // Cut property spot-check: total MST length minimal vs 50 random spanning
  // trees obtained by Kruskal on shuffled weights would be involved; instead
  // verify the standard cycle property: every non-tree edge is at least as
  // long as every tree edge on the path between its endpoints.
  for (const Edge& e : g.edges()) {
    if (t.find_edge(e.u, e.v) != kInvalidEdge) continue;
    // Path in tree between u and v.
    const auto tree_path = [&]() {
      const auto tr = dijkstra(t, e.u, Weight::kHops);
      return tr.path_to(e.v);
    }();
    ASSERT_GE(tree_path.size(), 2U);
    for (std::size_t i = 0; i + 1 < tree_path.size(); ++i) {
      const EdgeId te = t.find_edge(tree_path[i], tree_path[i + 1]);
      ASSERT_NE(te, kInvalidEdge);
      EXPECT_LE(t.edge(te).length, e.length + 1e-12);
    }
  }
}

}  // namespace
}  // namespace thetanet::graph
