#include "graph/graph.h"

#include <gtest/gtest.h>

namespace thetanet::graph {
namespace {

TEST(Graph, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.num_nodes(), 0U);
  EXPECT_EQ(g.num_edges(), 0U);
  EXPECT_EQ(g.max_degree(), 0U);
}

TEST(Graph, AddEdgeBasics) {
  Graph g(4);
  const EdgeId e = g.add_edge(0, 2, 1.5, 2.25);
  EXPECT_EQ(e, 0U);
  EXPECT_EQ(g.num_edges(), 1U);
  EXPECT_EQ(g.degree(0), 1U);
  EXPECT_EQ(g.degree(2), 1U);
  EXPECT_EQ(g.degree(1), 0U);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_DOUBLE_EQ(g.edge(e).length, 1.5);
  EXPECT_DOUBLE_EQ(g.edge(e).cost, 2.25);
}

TEST(Graph, EdgeOther) {
  Graph g(3);
  const EdgeId e = g.add_edge(1, 2, 1.0, 1.0);
  EXPECT_EQ(g.edge(e).other(1), 2U);
  EXPECT_EQ(g.edge(e).other(2), 1U);
}

TEST(Graph, FindEdge) {
  Graph g(5);
  g.add_edge(0, 1, 1.0, 1.0);
  const EdgeId e = g.add_edge(1, 3, 2.0, 4.0);
  EXPECT_EQ(g.find_edge(1, 3), e);
  EXPECT_EQ(g.find_edge(3, 1), e);
  EXPECT_EQ(g.find_edge(0, 3), kInvalidEdge);
}

TEST(Graph, NeighborsSeeBothEndpoints) {
  Graph g(3);
  g.add_edge(0, 1, 1.0, 1.0);
  g.add_edge(0, 2, 2.0, 4.0);
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 2U);
  EXPECT_EQ(nbrs[0].to, 1U);
  EXPECT_EQ(nbrs[1].to, 2U);
  EXPECT_EQ(g.neighbors(1).size(), 1U);
  EXPECT_EQ(g.neighbors(1)[0].to, 0U);
}

TEST(Graph, MaxDegreeAndTotals) {
  Graph g(4);
  g.add_edge(0, 1, 1.0, 1.0);
  g.add_edge(0, 2, 2.0, 4.0);
  g.add_edge(0, 3, 3.0, 9.0);
  EXPECT_EQ(g.max_degree(), 3U);
  EXPECT_DOUBLE_EQ(g.total_length(), 6.0);
  EXPECT_DOUBLE_EQ(g.total_cost(), 14.0);
}

TEST(Graph, EdgeWeightSelector) {
  const Edge e{0, 1, 3.0, 9.0};
  EXPECT_DOUBLE_EQ(edge_weight(e, Weight::kLength), 3.0);
  EXPECT_DOUBLE_EQ(edge_weight(e, Weight::kCost), 9.0);
  EXPECT_DOUBLE_EQ(edge_weight(e, Weight::kHops), 1.0);
}

}  // namespace
}  // namespace thetanet::graph
