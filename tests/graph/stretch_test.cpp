#include "graph/stretch.h"

#include <gtest/gtest.h>

#include "geom/rng.h"
#include "graph/shortest_paths.h"

namespace thetanet::graph {
namespace {

Graph random_geometric(std::size_t n, double radius, double kappa,
                       geom::Rng& rng, std::vector<double>* xs = nullptr) {
  std::vector<double> px(n), py(n);
  for (std::size_t i = 0; i < n; ++i) {
    px[i] = rng.uniform(0.0, 1.0);
    py[i] = rng.uniform(0.0, 1.0);
  }
  if (xs != nullptr) *xs = px;
  Graph g(n);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) {
      const double dx = px[u] - px[v], dy = py[u] - py[v];
      const double len = std::sqrt(dx * dx + dy * dy);
      if (len <= radius) g.add_edge(u, v, len, std::pow(len, kappa));
    }
  return g;
}

TEST(Stretch, GraphAgainstItselfIsOne) {
  geom::Rng rng(81);
  const Graph g = random_geometric(60, 0.4, 2.0, rng);
  const StretchStats s = edge_stretch(g, g, Weight::kLength);
  EXPECT_LE(s.max, 1.0 + 1e-12);
  EXPECT_FALSE(s.disconnected);
  const StretchStats p = pairwise_stretch(g, g, Weight::kLength);
  EXPECT_NEAR(p.max, 1.0, 1e-12);
  EXPECT_NEAR(p.mean, 1.0, 1e-12);
}

TEST(Stretch, RemovingAnEdgeCreatesStretch) {
  // Triangle with one long edge; removing a short edge forces a detour.
  Graph base(3);
  base.add_edge(0, 1, 1.0, 1.0);
  base.add_edge(1, 2, 1.0, 1.0);
  base.add_edge(0, 2, 1.5, 2.25);
  Graph h(3);
  h.add_edge(0, 1, 1.0, 1.0);
  h.add_edge(1, 2, 1.0, 1.0);
  const StretchStats s = edge_stretch(h, base, Weight::kLength);
  // Pair (0,2): detour 2.0 vs direct 1.5.
  EXPECT_NEAR(s.max, 2.0 / 1.5, 1e-12);
  EXPECT_EQ(s.argmax_u, 0U);
  EXPECT_EQ(s.argmax_v, 2U);
}

TEST(Stretch, DisconnectedSubgraphIsFlagged) {
  Graph base(3);
  base.add_edge(0, 1, 1.0, 1.0);
  base.add_edge(1, 2, 1.0, 1.0);
  Graph h(3);
  h.add_edge(0, 1, 1.0, 1.0);
  EXPECT_TRUE(edge_stretch(h, base, Weight::kLength).disconnected);
  EXPECT_TRUE(pairwise_stretch(h, base, Weight::kLength).disconnected);
}

TEST(Stretch, EdgeStretchBoundsPairwiseStretch) {
  // The decomposition lemma: max pairwise stretch <= max edge stretch.
  geom::Rng rng(82);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph base = random_geometric(50, 0.5, 2.0, rng);
    // H = base with every other edge deleted (by parity of id).
    Graph h(base.num_nodes());
    for (EdgeId e = 0; e < base.num_edges(); ++e)
      if (e % 2 == 0) {
        const Edge& edge = base.edge(e);
        h.add_edge(edge.u, edge.v, edge.length, edge.cost);
      }
    const StretchStats se = edge_stretch(h, base, Weight::kLength);
    const StretchStats sp = pairwise_stretch(h, base, Weight::kLength);
    if (se.disconnected || sp.disconnected) continue;
    EXPECT_LE(sp.max, se.max + 1e-9) << "trial " << trial;
  }
}

TEST(Stretch, CostWeightUsesEnergy) {
  // Two-hop relay is cheaper in energy than the direct edge (kappa = 2):
  // the energy edge-stretch of the pruned graph can be < 1 for that edge.
  Graph base(3);
  base.add_edge(0, 1, 1.0, 1.0);
  base.add_edge(1, 2, 1.0, 1.0);
  base.add_edge(0, 2, 2.0, 4.0);
  Graph h(3);
  h.add_edge(0, 1, 1.0, 1.0);
  h.add_edge(1, 2, 1.0, 1.0);
  const StretchStats s = edge_stretch(h, base, Weight::kCost);
  // For base edge (0,2): relay cost 2 vs direct 4 -> ratio 0.5; edges (0,1)
  // and (1,2) are present in h -> ratio 1. Max is 1.
  EXPECT_NEAR(s.max, 1.0, 1e-12);
  const StretchStats sl = edge_stretch(h, base, Weight::kLength);
  EXPECT_NEAR(sl.max, 1.0, 1e-12);  // 2.0 / 2.0 for pair (0,2)
}

TEST(Stretch, StatsAggregatesArePlausible) {
  geom::Rng rng(83);
  const Graph base = random_geometric(80, 0.35, 2.0, rng);
  Graph h(base.num_nodes());
  for (EdgeId e = 0; e < base.num_edges(); ++e)
    if (e % 3 != 0) {
      const Edge& edge = base.edge(e);
      h.add_edge(edge.u, edge.v, edge.length, edge.cost);
    }
  const StretchStats s = edge_stretch(h, base, Weight::kLength);
  if (s.disconnected) GTEST_SKIP() << "random instance disconnected";
  EXPECT_GT(s.pairs, 0U);
  EXPECT_GE(s.max, s.p99);
  EXPECT_GE(s.p99, 0.0);
  EXPECT_GT(s.mean, 0.0);
  EXPECT_LE(s.mean, s.max);
}

}  // namespace
}  // namespace thetanet::graph
