// Randomized differential test of the Graph container against a trivial
// adjacency-matrix reference.

#include <gtest/gtest.h>

#include <vector>

#include "geom/rng.h"
#include "graph/graph.h"

namespace thetanet::graph {
namespace {

class GraphFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GraphFuzz, MatchesAdjacencyMatrixReference) {
  geom::Rng rng(GetParam());
  const std::size_t n = 2 + rng.uniform_index(30);
  Graph g(n);
  std::vector<std::vector<double>> ref(n, std::vector<double>(n, -1.0));
  std::size_t edges = 0;

  for (int op = 0; op < 200; ++op) {
    const auto u = static_cast<NodeId>(rng.uniform_index(n));
    auto v = static_cast<NodeId>(rng.uniform_index(n - 1));
    if (v >= u) ++v;
    if (ref[u][v] >= 0.0) continue;  // no parallel edges
    const double len = rng.uniform(0.1, 2.0);
    g.add_edge(u, v, len, len * len);
    ref[u][v] = ref[v][u] = len;
    ++edges;
  }

  EXPECT_EQ(g.num_edges(), edges);
  double total_len = 0.0;
  std::size_t max_deg = 0;
  for (NodeId u = 0; u < n; ++u) {
    std::size_t deg = 0;
    for (NodeId v = 0; v < n; ++v) {
      const bool expect = ref[u][v] >= 0.0;
      ASSERT_EQ(g.has_edge(u, v), expect) << u << "," << v;
      if (expect) {
        ++deg;
        const EdgeId e = g.find_edge(u, v);
        ASSERT_NE(e, kInvalidEdge);
        ASSERT_DOUBLE_EQ(g.edge(e).length, ref[u][v]);
        ASSERT_EQ(g.edge(e).other(u), v);
        if (u < v) total_len += ref[u][v];
      } else {
        ASSERT_EQ(g.find_edge(u, v), kInvalidEdge);
      }
    }
    ASSERT_EQ(g.degree(u), deg);
    max_deg = std::max(max_deg, deg);
    // Adjacency list agrees with the matrix row.
    std::size_t seen = 0;
    for (const Half& h : g.neighbors(u)) {
      ASSERT_GE(ref[u][h.to], 0.0);
      ++seen;
    }
    ASSERT_EQ(seen, deg);
  }
  EXPECT_EQ(g.max_degree(), max_deg);
  EXPECT_NEAR(g.total_length(), total_len, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphFuzz,
                         ::testing::Range<std::uint64_t>(100, 115));

}  // namespace
}  // namespace thetanet::graph
