#include "graph/union_find.h"

#include <gtest/gtest.h>

namespace thetanet::graph {
namespace {

TEST(UnionFind, InitiallyAllSeparate) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_components(), 5U);
  for (std::uint32_t i = 0; i < 5; ++i)
    for (std::uint32_t j = i + 1; j < 5; ++j)
      EXPECT_FALSE(uf.connected(i, j));
}

TEST(UnionFind, UniteMergesAndReportsNovelty) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));  // already together
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_EQ(uf.num_components(), 2U);
  EXPECT_TRUE(uf.unite(0, 3));
  EXPECT_EQ(uf.num_components(), 1U);
  EXPECT_TRUE(uf.connected(1, 2));
}

TEST(UnionFind, TransitiveConnectivityChain) {
  UnionFind uf(100);
  for (std::uint32_t i = 0; i + 1 < 100; ++i) uf.unite(i, i + 1);
  EXPECT_EQ(uf.num_components(), 1U);
  EXPECT_TRUE(uf.connected(0, 99));
}

TEST(UnionFind, FindIsStableWithinComponent) {
  UnionFind uf(6);
  uf.unite(0, 1);
  uf.unite(2, 1);
  const std::uint32_t root = uf.find(0);
  EXPECT_EQ(uf.find(1), root);
  EXPECT_EQ(uf.find(2), root);
  EXPECT_NE(uf.find(3), root);
}

}  // namespace
}  // namespace thetanet::graph
