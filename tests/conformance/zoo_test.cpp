// Zoo conformance harness (verify/zoo.h): green on healthy instances,
// loud on coverage gaps (unknown builder in `only`), and able to catch
// and ddmin-shrink the planted compass tie-break mutation down to a
// <= 12-node reproducer — the mutation-test contract of the
// conformance_zoo_mutation ctest entry.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "geom/rng.h"
#include "topology/builder.h"
#include "topology/distributions.h"
#include "verify/scenario.h"
#include "verify/zoo.h"

namespace thetanet {
namespace {

topo::Deployment uniform_deployment(std::size_t n, std::uint64_t seed,
                                    double range) {
  geom::Rng rng(seed);
  topo::Deployment d;
  d.positions = topo::uniform_square(n, 1.0, rng);
  d.max_range = range;
  d.kappa = 2.0;
  return d;
}

/// A scenario-family collinear chain (the exact-angle-tie regime).
topo::Deployment collinear_deployment(std::size_t n, std::uint64_t seed) {
  verify::ScenarioSpec spec;
  spec.dist = verify::Distribution::kCollinearChain;
  spec.n = n;
  spec.seed = seed;
  return verify::build_scenario_deployment(spec);
}

TEST(ZooConformance, WholeRegistryPassesOnUniformInstance) {
  const topo::Deployment d = uniform_deployment(72, 0x200, 0.35);
  verify::ZooOptions opt;
  const verify::ConformanceReport rep = verify::run_zoo_conformance(d, opt);
  EXPECT_TRUE(rep.pass()) << rep.to_string();
  // Every registered builder was audited: at least one check per builder
  // plus the trailing coverage check.
  const auto& reg = topo::builder_registry();
  for (const auto& b : reg) {
    const bool seen = std::any_of(
        rep.checks.begin(), rep.checks.end(), [&](const auto& c) {
          return c.checker.rfind(b.name + "/", 0) == 0;
        });
    EXPECT_TRUE(seen) << "no audit for " << b.name;
  }
  ASSERT_FALSE(rep.checks.empty());
  EXPECT_EQ(rep.checks.back().checker, "zoo/coverage");
}

TEST(ZooConformance, UnknownBuilderIsACoverageViolationNotASilentSkip) {
  const topo::Deployment d = uniform_deployment(24, 0x201, 0.5);
  verify::ZooOptions opt;
  opt.only = {"gstar", "no-such-structure"};
  const verify::ConformanceReport rep = verify::run_zoo_conformance(d, opt);
  EXPECT_FALSE(rep.pass());
  bool flagged = false;
  for (const auto& c : rep.checks)
    for (const auto& v : c.violations)
      flagged |= v.rule == "zoo/unknown-builder";
  EXPECT_TRUE(flagged) << rep.to_string();
}

TEST(ZooConformance, PlantedTieBreakIsCaughtAndShrinksToTinyReproducer) {
  // The planted mutation only bites on exact angle ties; the collinear
  // scenario family exists to provide them. Healthy run green, planted run
  // red, and ddmin lands at <= 12 nodes (the committed corpus trio is the
  // 3-node floor of the same failure).
  const topo::Deployment d = collinear_deployment(40, 5);
  verify::ZooOptions opt;
  opt.only = {"gstar"};
  ASSERT_TRUE(verify::run_zoo_conformance(d, opt).pass());

  opt.plant_routing_bug = true;
  const verify::ConformanceReport planted = verify::run_zoo_conformance(d, opt);
  ASSERT_FALSE(planted.pass());
  bool compass_violation = false;
  for (const auto& c : planted.checks)
    for (const auto& v : c.violations)
      compass_violation |= v.rule.find("compass") != std::string::npos;
  EXPECT_TRUE(compass_violation) << planted.to_string();

  const verify::ShrinkResult shrunk = verify::shrink_zoo_deployment(d, opt);
  EXPECT_LE(shrunk.reproducer.size(), 12u);
  EXPECT_GE(shrunk.reproducer.size(), 2u);
  EXPECT_FALSE(verify::run_zoo_conformance(shrunk.reproducer, opt).pass());
}

}  // namespace
}  // namespace thetanet
