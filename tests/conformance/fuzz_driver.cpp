// Conformance fuzzer: seeded scenario sweep running every paper-guarantee
// checker (src/verify) per instance, with greedy shrinking of failures to
// minimal reproducers. Exits 0 iff every scenario conforms.
//
//   fuzz_driver [--scenarios N] [--seed S] [--long] [--churn] [--zoo]
//               [--plant-churn-bug] [--plant-routing-bug]
//               [--report-out FILE] [--corpus-out DIR]
//               [--replay DIR] [--telemetry FILE]
//
// --zoo switches to zoo-wide conformance: each scenario audits *every*
// registered TopologyBuilder (verify/zoo.h) against exactly the guarantees
// it claims, plus the O(1)-memory routing checks (compass ratio-1 on
// G*-adjacent pairs; the Bose et al. 17x routing-ratio bound for Θ₄ on
// complete instances). A coverage check fails loudly if any registered
// builder was silently skipped. Failures ddmin-shrink over the node set.
// --plant-routing-bug flips the compass tie-break to prefer the *farther*
// neighbor on exact angle ties (collinear chains) — the mutation test
// proving the compass ratio-1 oracle catches real routing rot; the sweep
// is restricted to the G* oracle rows so every failure is attributable.
//
// --churn switches to temporal conformance: each scenario drives a seeded
// event schedule (join/leave/crash/sleep/wake/regional failure, plus
// duty-cycled variants) through the incremental ThetaMaintainer and re-runs
// the checkers after every round. Failures ddmin-shrink over both the node
// set and the event list. --plant-churn-bug injects the stale-wake
// maintainer bug (skipped neighbor recomputes on wake) — the mutation test
// proving the temporal harness catches real maintenance rot.
// --replay DIR re-runs every committed corpus case instead of fuzzing
// (regression mode: shrunk reproducers of fixed bugs must stay green);
// v2 (temporal) cases replay through run_churn_conformance.
// The report written by --report-out is bit-deterministic: for a fixed
// command line it is byte-identical for any TN_NUM_THREADS, which the ctest
// determinism job diffs directly. --telemetry FILE writes the deterministic
// telemetry JSON (stable metrics + span counts, no wall time) under the
// same contract — the telemetry_determinism ctest diffs these dumps across
// thread counts too.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/theta_topology.h"
#include "interference/model.h"
#include "obs/trace_sink.h"
#include "topology/transmission_graph.h"
#include "verify/conformance.h"
#include "verify/invariants.h"
#include "verify/scenario.h"
#include "verify/zoo.h"

namespace {

using namespace thetanet;

/// Lemma 2.10 ceiling: I(N) <= this * log2(n) on the constant-density
/// uniform sweep. Calibrated over seeds {1,11,21,31,41} at n in 128..2048:
/// observed I/log2(n) stays in 7.4..12.9 with no upward drift; 18 leaves
/// seed-variance slack while still failing any super-logarithmic regime
/// within one octave of growth.
constexpr double kGrowthBoundPerLog2N = 18.0;

struct Options {
  std::size_t scenarios = 200;
  std::uint64_t seed = 1;
  bool long_mode = false;
  bool churn = false;
  bool zoo = false;
  bool plant_churn_bug = false;
  bool plant_routing_bug = false;
  std::string report_out;
  std::string corpus_out;
  std::string replay_dir;
  std::string emit_dir;
  std::string telemetry_out;
};

[[noreturn]] void usage_and_exit(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--scenarios N] [--seed S] [--long] [--churn] [--zoo]"
               " [--plant-churn-bug] [--plant-routing-bug]"
               " [--report-out FILE]"
               " [--corpus-out DIR] [--replay DIR] [--emit-corpus DIR]"
               " [--telemetry FILE]\n";
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_and_exit(argv[0]);
      return argv[++i];
    };
    if (a == "--scenarios")
      o.scenarios = static_cast<std::size_t>(std::stoull(value()));
    else if (a == "--seed")
      o.seed = static_cast<std::uint64_t>(std::stoull(value()));
    else if (a == "--long")
      o.long_mode = true;
    else if (a == "--churn")
      o.churn = true;
    else if (a == "--zoo")
      o.zoo = true;
    else if (a == "--plant-churn-bug")
      o.plant_churn_bug = true;
    else if (a == "--plant-routing-bug")
      o.plant_routing_bug = true;
    else if (a == "--report-out")
      o.report_out = value();
    else if (a == "--corpus-out")
      o.corpus_out = value();
    else if (a == "--replay")
      o.replay_dir = value();
    else if (a == "--emit-corpus")
      o.emit_dir = value();
    else if (a == "--telemetry")
      o.telemetry_out = value();
    else
      usage_and_exit(argv[0]);
  }
  return o;
}

/// The i-th scenario of a sweep: cycles all distribution families, a ladder
/// of sizes (including the degenerate n in {0, 1, 2}), the paper's kappa
/// range, and an occasional mobility warp.
verify::ScenarioSpec spec_for(std::size_t i, const Options& o) {
  static constexpr std::size_t kSmokeSizes[] = {0, 1, 2, 3, 6, 12, 24, 40};
  static constexpr std::size_t kLongSizes[] = {0, 1, 2, 5, 16, 48, 96, 160};
  verify::ScenarioSpec spec;
  const std::size_t ndists = std::size(verify::kAllDistributions);
  spec.dist = verify::kAllDistributions[i % ndists];
  spec.n = o.long_mode ? kLongSizes[(i / ndists) % std::size(kLongSizes)]
                       : kSmokeSizes[(i / ndists) % std::size(kSmokeSizes)];
  spec.seed = o.seed + i;
  spec.kappa = static_cast<double>(2 + (i / 3) % 3);
  spec.mobility_steps = (i % 7 == 6) ? 3 : 0;
  return spec;
}

/// The i-th churn scenario: cycles the same distribution families over a
/// smaller size ladder (temporal runs re-audit every round, so per-scenario
/// cost is rounds x the static cost), alternating duty-cycled and regional-
/// failure variants so every event kind gets continuous coverage.
verify::ChurnSpec churn_spec_for(std::size_t i, const Options& o) {
  static constexpr std::size_t kSmokeSizes[] = {2, 4, 6, 9, 12, 16, 20, 24};
  static constexpr std::size_t kLongSizes[] = {4, 8, 16, 24, 40, 64, 96, 128};
  verify::ChurnSpec spec;
  const std::size_t ndists = std::size(verify::kAllDistributions);
  spec.base.dist = verify::kAllDistributions[i % ndists];
  spec.base.n = o.long_mode
                    ? kLongSizes[(i / ndists) % std::size(kLongSizes)]
                    : kSmokeSizes[(i / ndists) % std::size(kSmokeSizes)];
  spec.base.seed = o.seed + i;
  spec.base.kappa = static_cast<double>(2 + (i / 3) % 3);
  spec.rounds = o.long_mode ? 24 : 10;
  spec.events_per_round = o.long_mode ? 2.5 : 1.5;
  spec.duty_cycle = i % 3 == 1;
  spec.regional_weight = (i % 5 == 4) ? 0.3 : 0.0;
  return spec;
}

verify::ZooOptions zoo_options_for(std::uint64_t trace_seed,
                                   const Options& o) {
  verify::ZooOptions zopt;
  zopt.checks.trace_seed = trace_seed;
  zopt.plant_routing_bug = o.plant_routing_bug;
  // The planted tie-break only manifests through the compass ratio-1
  // oracle, which runs on the G* row; restricting the sweep keeps every
  // failure attributable to the mutation (and the mutation run fast).
  if (o.plant_routing_bug) zopt.only = {"gstar"};
  // Bose et al.'s 17x is a theorem for their Θ₄-specific routing
  // algorithm; this harness drives plain theta-routing, for which 17x is
  // an empirical ceiling that holds through the smoke ladder (n <= 40,
  // observed max 2.9 at seed 1) but not at long-mode sizes (hub rings at
  // n=160 reach 30.1). Calibrated like kGrowthBoundPerLog2N: 48 leaves
  // seed-variance slack while still catching an unbounded-spiral regime.
  if (o.long_mode) zopt.theta4_routing_ratio_bound = 48.0;
  return zopt;
}

verify::ChurnOptions churn_options_for(const verify::ChurnSpec& spec,
                                       const Options& o) {
  verify::ChurnOptions copt;
  copt.checks.trace_seed = spec.base.seed;
  copt.dynamics_seed = spec.base.seed;
  copt.rounds = spec.rounds;
  if (spec.duty_cycle) copt.dynamics.duty = verify::churn_duty_config();
  copt.dynamics.test_skip_wake_neighbor_recompute = o.plant_churn_bug;
  return copt;
}

/// Lemma 2.10 n-sweep: interference number of ThetaALG topologies on uniform
/// deployments must scale like O(log n). The lemma's regime is constant
/// density (range ~ 1/sqrt(n), so a guard disk holds O(1) expected nodes and
/// the max over n disks concentrates at Theta(log n)); at the
/// connectivity-threshold range the guard disks cover a constant fraction of
/// the unit square for any feasible n and I(N) tracks the edge count instead.
verify::CheckReport growth_sweep(const Options& o) {
  const std::vector<std::size_t> ns =
      o.long_mode ? std::vector<std::size_t>{128, 256, 512, 1024, 2048}
                  : std::vector<std::size_t>{128, 256, 512, 1024};
  std::vector<verify::InterferenceSample> samples;
  const interf::InterferenceModel model{1.0};
  for (const std::size_t n : ns) {
    verify::ScenarioSpec spec;
    spec.dist = verify::Distribution::kUniform;
    spec.n = n;
    spec.seed = o.seed + 7919 * n;
    topo::Deployment d = verify::build_scenario_deployment(spec);
    d.max_range = 1.2 / std::sqrt(static_cast<double>(n));
    const core::ThetaTopology tt(d, 0.3490658503988659);
    samples.push_back(
        {n, interf::interference_number(tt.graph(), d, model)});
  }
  return verify::check_interference_growth(samples, kGrowthBoundPerLog2N);
}

/// Write the canonical nasty-input regression scenarios as corpus cases.
/// These are the committed contents of tests/conformance/corpus/: inputs
/// that stress past construction bugs' failure modes (hub concentration,
/// coincident points, exponential gaps, multi-scale clusters) and must stay
/// green under replay forever.
int run_emit(const Options& o, std::ostream& report) {
  struct Pick {
    verify::Distribution dist;
    std::size_t n;
    std::uint64_t seed;
  };
  static constexpr Pick kPicks[] = {
      {verify::Distribution::kHubRing, 12, 2},
      {verify::Distribution::kCoincident, 8, 1},
      {verify::Distribution::kExponentialChain, 16, 3},
      {verify::Distribution::kNestedClusters, 12, 4},
      {verify::Distribution::kGridJitter, 9, 5},
  };
  std::filesystem::create_directories(o.emit_dir);
  for (const Pick& p : kPicks) {
    verify::ScenarioSpec spec;
    spec.dist = p.dist;
    spec.n = p.n;
    spec.seed = p.seed;
    verify::CorpusCase c;
    c.name = verify::scenario_name(spec);
    c.seed = spec.seed;
    c.deployment = verify::build_scenario_deployment(spec);
    const std::string path = o.emit_dir + "/" + c.name + ".case";
    if (!verify::save_corpus_case(path, c)) {
      report << "emit: failed to write " << path << "\n";
      return 1;
    }
    report << "emit: " << path << "\n";
  }

  // The temporal regression case: the minimal stale-wake reproducer the
  // churn mutation test shrinks to. v and w share u's theta-sector with v
  // nearer, while u and v land in different sectors seen from w — so a wake
  // of v that skips neighbour-row recomputes (the planted maintainer bug)
  // leaves u's stale selection of w alive through phase-2 admission. With a
  // healthy maintainer the sleep/wake pair must stay a no-op forever.
  verify::CorpusCase churn;
  churn.name = "churn-stale-wake-trio";
  churn.seed = 37;
  churn.deployment.positions = {
      {0.1, 0.1}, {0.29924, 0.11743}, {0.58296, 0.22941}};
  churn.deployment.max_range = 0.7;
  churn.deployment.kappa = 2.0;
  sim::DynEvent sleep_mid;
  sleep_mid.round = 0;
  sleep_mid.kind = sim::DynEventKind::kSleep;
  sleep_mid.node = 1;
  sim::DynEvent wake_mid = sleep_mid;
  wake_mid.round = 1;
  wake_mid.kind = sim::DynEventKind::kWake;
  churn.events = {sleep_mid, wake_mid};
  churn.dynamics_seed = 37;
  churn.rounds = 2;
  const std::string churn_path = o.emit_dir + "/" + churn.name + ".case";
  if (!verify::save_corpus_case(churn_path, churn)) {
    report << "emit: failed to write " << churn_path << "\n";
    return 1;
  }
  report << "emit: " << churn_path << "\n";

  // The routing regression case: the minimal reproducer the
  // --plant-routing-bug mutation shrinks to. s, t, w sit on one horizontal
  // line with w beyond t, all mutually in range, so from s both t and w
  // are *exact* angle-0 compass candidates (identical atan2 bearings). The
  // correct nearest-first tie-break delivers s -> t in one hop at ratio
  // exactly 1; the planted farthest-first tie-break overshoots to w, and
  // from w both s and t tie at angle 0 again, so it bounces w -> s -> w
  // forever and never delivers. Replayed (bug off, --zoo) it must stay
  // green forever.
  verify::CorpusCase trio;
  trio.name = "routing-compass-collinear-trio";
  trio.seed = 1;
  trio.deployment.positions = {{0.1, 0.5}, {0.6, 0.5}, {0.85, 0.5}};
  trio.deployment.max_range = 0.8;
  trio.deployment.kappa = 2.0;
  const std::string trio_path = o.emit_dir + "/" + trio.name + ".case";
  if (!verify::save_corpus_case(trio_path, trio)) {
    report << "emit: failed to write " << trio_path << "\n";
    return 1;
  }
  report << "emit: " << trio_path << "\n";
  return 0;
}

int run_replay(const Options& o, std::ostream& report) {
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(o.replay_dir))
    if (entry.path().extension() == ".case") files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    report << "replay: no .case files in " << o.replay_dir << "\n";
    return 0;
  }
  int failures = 0;
  for (const auto& f : files) {
    const std::optional<verify::CorpusCase> c =
        verify::load_corpus_case(f.string());
    if (!c) {
      report << "replay " << f.filename().string() << ": PARSE ERROR\n";
      ++failures;
      continue;
    }
    verify::ConformanceReport r;
    if (c->events.empty() && o.zoo) {
      // Zoo replay: static reproducers (including the shrunk compass
      // tie-break case) re-audit the whole builder registry plus the
      // routing oracles, with no bug planted — they must stay green.
      verify::ZooOptions zopt = zoo_options_for(c->seed, o);
      zopt.checks.theta = c->theta;
      zopt.checks.delta = c->delta;
      r = verify::run_zoo_conformance(c->deployment, zopt);
    } else if (c->events.empty()) {
      verify::ConformanceOptions copt;
      copt.theta = c->theta;
      copt.delta = c->delta;
      r = verify::run_conformance(c->deployment, copt);
    } else {
      // Temporal case: replay the recorded schedule with duty cycling off
      // (the schedule already encodes every sleep/wake that mattered).
      verify::ChurnOptions copt;
      copt.checks.theta = c->theta;
      copt.checks.delta = c->delta;
      copt.dynamics_seed = c->dynamics_seed;
      copt.rounds = c->rounds;
      r = verify::run_churn_conformance(c->deployment, c->events, copt);
    }
    r.scenario = c->name;
    report << r.to_string();
    if (!r.pass()) ++failures;
  }
  return failures == 0 ? 0 : 1;
}

int run_churn_fuzz(const Options& o, std::ostream& report) {
  int failures = 0;
  for (std::size_t i = 0; i < o.scenarios; ++i) {
    const verify::ChurnSpec spec = churn_spec_for(i, o);
    const topo::Deployment d = verify::build_scenario_deployment(spec.base);
    const std::vector<sim::DynEvent> schedule =
        verify::build_churn_schedule(spec, d.size());
    const verify::ChurnOptions copt = churn_options_for(spec, o);
    verify::ConformanceReport r =
        verify::run_churn_conformance(d, schedule, copt);
    r.scenario = verify::churn_scenario_name(spec);
    report << r.to_string();
    if (r.pass()) continue;
    ++failures;
    verify::ChurnShrinkResult shrunk =
        verify::shrink_churn(d, schedule, copt);
    report << "shrunk " << r.scenario << ": " << d.size() << " -> "
           << shrunk.reproducer.size() << " nodes, " << schedule.size()
           << " -> " << shrunk.events.size() << " events ("
           << shrunk.evaluations << " evaluations)\n";
    if (!o.corpus_out.empty()) {
      std::filesystem::create_directories(o.corpus_out);
      verify::CorpusCase c;
      c.name = r.scenario;
      c.seed = spec.base.seed;
      c.theta = copt.checks.theta;
      c.delta = copt.checks.delta;
      c.deployment = shrunk.reproducer;
      c.events = shrunk.events;
      c.dynamics_seed = copt.dynamics_seed;
      c.rounds = spec.rounds;
      const std::string path = o.corpus_out + "/" + r.scenario + ".case";
      if (verify::save_corpus_case(path, c))
        report << "reproducer written to " << path << "\n";
    }
  }
  report << "churn-fuzz: " << o.scenarios << " scenarios, " << failures
         << " failing\n";
  return failures == 0 ? 0 : 1;
}

int run_zoo_fuzz(const Options& o, std::ostream& report) {
  int failures = 0;
  for (std::size_t i = 0; i < o.scenarios; ++i) {
    const verify::ScenarioSpec spec = spec_for(i, o);
    const topo::Deployment d = verify::build_scenario_deployment(spec);
    const verify::ZooOptions zopt = zoo_options_for(spec.seed, o);
    verify::ConformanceReport r = verify::run_zoo_conformance(d, zopt);
    r.scenario = "zoo-" + verify::scenario_name(spec);
    report << r.to_string();
    if (r.pass()) continue;
    ++failures;
    verify::ShrinkResult shrunk = verify::shrink_zoo_deployment(d, zopt);
    report << "shrunk " << r.scenario << ": " << d.size() << " -> "
           << shrunk.reproducer.size() << " nodes (" << shrunk.evaluations
           << " evaluations)\n";
    if (!o.corpus_out.empty()) {
      std::filesystem::create_directories(o.corpus_out);
      verify::CorpusCase c;
      c.name = r.scenario;
      c.seed = spec.seed;
      c.deployment = shrunk.reproducer;
      const std::string path = o.corpus_out + "/" + r.scenario + ".case";
      if (verify::save_corpus_case(path, c))
        report << "reproducer written to " << path << "\n";
    }
  }
  report << "zoo-fuzz: " << o.scenarios << " scenarios, " << failures
         << " failing\n";
  return failures == 0 ? 0 : 1;
}

int run_fuzz(const Options& o, std::ostream& report) {
  int failures = 0;
  for (std::size_t i = 0; i < o.scenarios; ++i) {
    const verify::ScenarioSpec spec = spec_for(i, o);
    const topo::Deployment d = verify::build_scenario_deployment(spec);
    verify::ConformanceOptions copt;
    copt.trace_seed = spec.seed;
    verify::ConformanceReport r = verify::run_conformance(d, copt);
    r.scenario = verify::scenario_name(spec);
    report << r.to_string();
    if (r.pass()) continue;
    ++failures;
    verify::ShrinkResult shrunk = verify::shrink_deployment(d, copt);
    report << "shrunk " << r.scenario << ": " << d.size() << " -> "
           << shrunk.reproducer.size() << " nodes ("
           << shrunk.evaluations << " evaluations)\n";
    if (!o.corpus_out.empty()) {
      std::filesystem::create_directories(o.corpus_out);
      verify::CorpusCase c;
      c.name = r.scenario;
      c.seed = spec.seed;
      c.theta = copt.theta;
      c.delta = copt.delta;
      c.deployment = shrunk.reproducer;
      const std::string path = o.corpus_out + "/" + r.scenario + ".case";
      if (verify::save_corpus_case(path, c))
        report << "reproducer written to " << path << "\n";
    }
  }

  verify::ConformanceReport growth;
  growth.scenario = "interference-growth-sweep";
  growth.checks.push_back(growth_sweep(o));
  report << growth.to_string();
  if (!growth.pass()) ++failures;

  report << "fuzz: " << o.scenarios << " scenarios, " << failures
         << " failing\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse_args(argc, argv);

  std::ostringstream report;
  int rc = 0;
  if (!o.emit_dir.empty())
    rc = run_emit(o, report);
  else if (!o.replay_dir.empty())
    rc = run_replay(o, report);
  else if (o.churn)
    rc = run_churn_fuzz(o, report);
  else if (o.zoo)
    rc = run_zoo_fuzz(o, report);
  else
    rc = run_fuzz(o, report);
  std::cout << report.str();
  if (!o.report_out.empty()) {
    std::ofstream out(o.report_out);
    out << report.str();
    if (!out) {
      std::cerr << "failed to write " << o.report_out << "\n";
      return 2;
    }
  }
  if (!o.telemetry_out.empty()) {
    // Deterministic dump: stable metrics + span structure/counts only, so
    // the file is byte-identical for any TN_NUM_THREADS on a fixed command
    // line (the telemetry_determinism ctest relies on this).
    if (!thetanet::obs::write_telemetry_json(o.telemetry_out,
                                             /*include_timing=*/false)) {
      std::cerr << "failed to write " << o.telemetry_out << "\n";
      return 2;
    }
  }
  return rc;
}
