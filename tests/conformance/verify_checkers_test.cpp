// Unit tests for the paper-guarantee checkers (src/verify/invariants.h):
// each checker passes on a genuine ThetaALG construction and reports a
// structured violation on a corrupted one.

#include <gtest/gtest.h>

#include <sstream>
#include <utility>

#include "core/theta_topology.h"
#include "interference/model.h"
#include "topology/transmission_graph.h"
#include "verify/conformance.h"
#include "verify/invariants.h"
#include "verify/report.h"
#include "verify/scenario.h"

namespace thetanet {
namespace {

constexpr double kTheta = 0.3490658503988659;  // pi/9

verify::ScenarioSpec uniform_spec(std::size_t n, std::uint64_t seed) {
  verify::ScenarioSpec spec;
  spec.dist = verify::Distribution::kUniform;
  spec.n = n;
  spec.seed = seed;
  return spec;
}

/// Rebuild g without edge `victim` (Graph has no removal).
graph::Graph without_edge(const graph::Graph& g, graph::EdgeId victim) {
  graph::Graph out(g.num_nodes());
  for (graph::EdgeId e = 0; e < static_cast<graph::EdgeId>(g.num_edges()); ++e)
    if (e != victim) {
      const graph::Edge& ed = g.edge(e);
      out.add_edge(ed.u, ed.v, ed.length, ed.cost);
    }
  return out;
}

TEST(ThetaInvariantChecker, PassesOnGenuineConstruction) {
  const topo::Deployment d =
      verify::build_scenario_deployment(uniform_spec(32, 5));
  const graph::Graph gstar = topo::build_transmission_graph(d);
  const core::ThetaTopology tt(d, kTheta);
  const verify::CheckReport r =
      verify::check_theta_invariants(tt.graph(), d, kTheta, gstar, &tt);
  EXPECT_TRUE(r.pass()) << r.to_string();
  EXPECT_GT(r.checks, 0u);
}

TEST(ThetaInvariantChecker, FlagsDeletedAdmittedEdge) {
  const topo::Deployment d =
      verify::build_scenario_deployment(uniform_spec(32, 5));
  const graph::Graph gstar = topo::build_transmission_graph(d);
  const core::ThetaTopology tt(d, kTheta);
  ASSERT_GT(tt.graph().num_edges(), 0u);
  const graph::Graph mutated = without_edge(tt.graph(), 0);
  const verify::CheckReport r =
      verify::check_theta_invariants(mutated, d, kTheta, gstar, &tt);
  EXPECT_FALSE(r.pass());
  bool saw_materialized = false;
  for (const verify::Violation& v : r.violations)
    if (v.rule == "phase2/admitted-edge-materialized") saw_materialized = true;
  EXPECT_TRUE(saw_materialized) << r.to_string();
}

TEST(ThetaInvariantChecker, FlagsForeignEdge) {
  const topo::Deployment d =
      verify::build_scenario_deployment(uniform_spec(32, 6));
  const graph::Graph gstar = topo::build_transmission_graph(d);
  const core::ThetaTopology tt(d, kTheta);
  graph::Graph mutated = tt.graph();
  // An out-of-range fabricated edge violates range, G*-membership, and the
  // stored-weight consistency rules at once.
  mutated.add_edge(0, static_cast<graph::NodeId>(d.size() - 1), 99.0, 99.0);
  const verify::CheckReport r =
      verify::check_theta_invariants(mutated, d, kTheta, gstar, &tt);
  EXPECT_FALSE(r.pass());
}

TEST(EnergyStretchChecker, PassesOnGenuineConstruction) {
  const topo::Deployment d =
      verify::build_scenario_deployment(uniform_spec(32, 7));
  const graph::Graph gstar = topo::build_transmission_graph(d);
  const core::ThetaTopology tt(d, kTheta);
  const verify::CheckReport r =
      verify::check_energy_stretch(tt.graph(), d, gstar);
  EXPECT_TRUE(r.pass()) << r.to_string();
}

TEST(EnergyStretchChecker, FlagsImpossibleBound) {
  const topo::Deployment d =
      verify::build_scenario_deployment(uniform_spec(32, 7));
  const graph::Graph gstar = topo::build_transmission_graph(d);
  const core::ThetaTopology tt(d, kTheta);
  ASSERT_GT(gstar.num_edges(), 0u);
  // True stretch is always >= 1, so a bound of 0.5 must report a violation.
  const verify::CheckReport r =
      verify::check_energy_stretch(tt.graph(), d, gstar, 0.5);
  EXPECT_FALSE(r.pass());
  ASSERT_FALSE(r.violations.empty());
  EXPECT_EQ(r.violations.front().rule, "theorem2.2/energy-stretch");
}

TEST(ReplacementReuseChecker, PassesWithinLemmaBound) {
  const topo::Deployment d =
      verify::build_scenario_deployment(uniform_spec(40, 11));
  const graph::Graph gstar = topo::build_transmission_graph(d);
  const core::ThetaTopology tt(d, kTheta);
  const interf::InterferenceModel model{1.0};
  const verify::CheckReport r =
      verify::check_replacement_reuse(tt, gstar, model);
  EXPECT_TRUE(r.pass()) << r.to_string();
}

TEST(ReplacementReuseChecker, FlagsZeroReuseBound) {
  const topo::Deployment d =
      verify::build_scenario_deployment(uniform_spec(24, 11));
  const graph::Graph gstar = topo::build_transmission_graph(d);
  ASSERT_GT(gstar.num_edges(), 0u);
  const core::ThetaTopology tt(d, kTheta);
  const interf::InterferenceModel model{1.0};
  // Any nonempty replacement path uses >= 1 edge, so max_reuse = 0 fails.
  const verify::CheckReport r =
      verify::check_replacement_reuse(tt, gstar, model, 0);
  EXPECT_FALSE(r.pass());
  bool saw_bound = false;
  for (const verify::Violation& v : r.violations)
    if (v.rule == "lemma2.9/reuse-bound") saw_bound = true;
  EXPECT_TRUE(saw_bound) << r.to_string();
}

TEST(InterferenceGrowthChecker, PassesOnLogarithmicSamples) {
  const verify::InterferenceSample samples[] = {
      {64, 10}, {128, 11}, {256, 13}};
  const verify::CheckReport r =
      verify::check_interference_growth(samples, 8.0);
  EXPECT_TRUE(r.pass()) << r.to_string();
}

TEST(InterferenceGrowthChecker, FlagsLinearGrowth) {
  const verify::InterferenceSample samples[] = {
      {64, 10}, {128, 40}, {256, 160}};
  const verify::CheckReport r =
      verify::check_interference_growth(samples, 8.0);
  EXPECT_FALSE(r.pass());
  bool saw_log = false, saw_growth = false;
  for (const verify::Violation& v : r.violations) {
    if (v.rule == "lemma2.10/log-bound") saw_log = true;
    if (v.rule == "lemma2.10/growth") saw_growth = true;
  }
  EXPECT_TRUE(saw_log && saw_growth) << r.to_string();
}

TEST(RouterBoundsChecker, FlagsBrokenConservation) {
  route::AdversaryTrace trace;
  core::BalancingParams params;
  sim::ScenarioResult result;
  result.metrics.injected_offered = 5;
  result.metrics.injected_accepted = 3;
  result.metrics.dropped_at_injection = 1;  // 3 + 1 != 5
  result.metrics.leftover_packets = 3;
  const verify::CheckReport r =
      verify::check_router_bounds(trace, params, result);
  EXPECT_FALSE(r.pass());
  ASSERT_FALSE(r.violations.empty());
  EXPECT_EQ(r.violations.front().rule, "conservation/injection");
}

TEST(Conformance, FullRunPassesOnUniformInstance) {
  const topo::Deployment d =
      verify::build_scenario_deployment(uniform_spec(24, 3));
  const verify::ConformanceReport r =
      verify::run_conformance(d, verify::ConformanceOptions{});
  EXPECT_TRUE(r.pass()) << r.to_string();
  EXPECT_EQ(r.checks.size(), 4u);  // theta, stretch, replacement, router
}

TEST(Conformance, TrivialAndDegenerateInputs) {
  for (const std::size_t n : {0u, 1u}) {
    verify::ScenarioSpec spec = uniform_spec(n, 1);
    const topo::Deployment d = verify::build_scenario_deployment(spec);
    const verify::ConformanceReport r =
        verify::run_conformance(d, verify::ConformanceOptions{});
    EXPECT_TRUE(r.pass()) << r.to_string();
  }
  // All-coincident points: construction must survive, the replacement
  // checker must skip itself, everything else must pass.
  verify::ScenarioSpec spec;
  spec.dist = verify::Distribution::kCoincident;
  spec.n = 8;
  const topo::Deployment d = verify::build_scenario_deployment(spec);
  const verify::ConformanceReport r =
      verify::run_conformance(d, verify::ConformanceOptions{});
  EXPECT_TRUE(r.pass()) << r.to_string();
}

TEST(Conformance, ReportIsDeterministic) {
  const verify::ScenarioSpec spec = uniform_spec(20, 9);
  const topo::Deployment d = verify::build_scenario_deployment(spec);
  verify::ConformanceReport a =
      verify::run_conformance(d, verify::ConformanceOptions{});
  verify::ConformanceReport b =
      verify::run_conformance(d, verify::ConformanceOptions{});
  EXPECT_EQ(a.to_string(), b.to_string());
}

TEST(CorpusCase, RoundTripsThroughStream) {
  verify::CorpusCase c;
  c.name = "uniform-n8-seed3-k2-m0";
  c.seed = 3;
  c.theta = kTheta;
  c.delta = 1.5;
  c.deployment = verify::build_scenario_deployment(uniform_spec(8, 3));
  std::stringstream ss;
  verify::save_corpus_case(ss, c);
  const std::optional<verify::CorpusCase> back =
      verify::load_corpus_case(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->name, c.name);
  EXPECT_EQ(back->seed, c.seed);
  EXPECT_EQ(back->theta, c.theta);
  EXPECT_EQ(back->delta, c.delta);
  ASSERT_EQ(back->deployment.size(), c.deployment.size());
  for (std::size_t i = 0; i < c.deployment.size(); ++i) {
    EXPECT_EQ(back->deployment.positions[i].x, c.deployment.positions[i].x);
    EXPECT_EQ(back->deployment.positions[i].y, c.deployment.positions[i].y);
  }
}

TEST(CorpusCase, RejectsMalformedHeader) {
  std::stringstream ss("conformance v2 name 1\ntheta 0.3 delta 1\n");
  EXPECT_FALSE(verify::load_corpus_case(ss).has_value());
}

}  // namespace
}  // namespace thetanet
