// The acceptance test for the shrinker: a deliberately buggy topology
// mutator (drops the longest edge of N before auditing) makes every
// non-trivial instance fail conformance, and the greedy node-removal shrink
// must reduce a 40-node failing instance to a minimal reproducer of at most
// 12 nodes (in practice: 2).

#include <gtest/gtest.h>

#include <filesystem>
#include <utility>

#include "verify/conformance.h"
#include "verify/scenario.h"

namespace thetanet {
namespace {

/// The injected bug: audit a copy of N with its longest edge removed.
void drop_longest_edge(graph::Graph& g, const topo::Deployment& d) {
  (void)d;
  if (g.num_edges() == 0) return;
  graph::EdgeId longest = 0;
  for (graph::EdgeId e = 1; e < static_cast<graph::EdgeId>(g.num_edges()); ++e)
    if (g.edge(e).length > g.edge(longest).length) longest = e;
  graph::Graph out(g.num_nodes());
  for (graph::EdgeId e = 0; e < static_cast<graph::EdgeId>(g.num_edges()); ++e)
    if (e != longest) {
      const graph::Edge& ed = g.edge(e);
      out.add_edge(ed.u, ed.v, ed.length, ed.cost);
    }
  g = std::move(out);
}

verify::ConformanceOptions fast_options() {
  verify::ConformanceOptions opt;
  // The theta-invariant checker alone detects the mutation; skipping the
  // heavier checkers keeps each shrink evaluation cheap.
  opt.run_stretch = false;
  opt.run_replacement = false;
  opt.run_router = false;
  return opt;
}

TEST(Shrinker, ReducesInjectedBugToMinimalReproducer) {
  verify::ScenarioSpec spec;
  spec.dist = verify::Distribution::kUniform;
  spec.n = 40;
  spec.seed = 17;
  const topo::Deployment d = verify::build_scenario_deployment(spec);
  const verify::ConformanceOptions opt = fast_options();

  const verify::ConformanceReport full =
      verify::run_conformance(d, opt, drop_longest_edge);
  ASSERT_FALSE(full.pass());

  const verify::ShrinkResult shrunk =
      verify::shrink_deployment(d, opt, drop_longest_edge);
  EXPECT_FALSE(shrunk.report.pass());
  EXPECT_LE(shrunk.reproducer.size(), 12u);
  EXPECT_GE(shrunk.reproducer.size(), 2u);
  EXPECT_GT(shrunk.evaluations, 1u);

  // The reproducer must fail standalone, not only within the shrink loop.
  const verify::ConformanceReport again =
      verify::run_conformance(shrunk.reproducer, opt, drop_longest_edge);
  EXPECT_FALSE(again.pass());
}

TEST(Shrinker, ShrunkCaseSurvivesCorpusRoundTrip) {
  verify::ScenarioSpec spec;
  spec.dist = verify::Distribution::kUniform;
  spec.n = 24;
  spec.seed = 23;
  const topo::Deployment d = verify::build_scenario_deployment(spec);
  const verify::ConformanceOptions opt = fast_options();
  const verify::ShrinkResult shrunk =
      verify::shrink_deployment(d, opt, drop_longest_edge);

  verify::CorpusCase c;
  c.name = "shrink-roundtrip";
  c.seed = spec.seed;
  c.theta = opt.theta;
  c.delta = opt.delta;
  c.deployment = shrunk.reproducer;
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "shrunk.case").string();
  ASSERT_TRUE(verify::save_corpus_case(path, c));
  const std::optional<verify::CorpusCase> back =
      verify::load_corpus_case(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->deployment.size(), shrunk.reproducer.size());
  // Replaying the loaded case against the same mutator still fails — the
  // reproducer is faithful after serialization.
  const verify::ConformanceReport replay =
      verify::run_conformance(back->deployment, opt, drop_longest_edge);
  EXPECT_FALSE(replay.pass());
}

TEST(Shrinker, RequiresNoShrinkWhenAlreadyMinimal) {
  // A 2-node in-range instance is already minimal: the mutator deletes its
  // only edge, conformance fails, and shrinking cannot remove anything.
  topo::Deployment d;
  d.positions = {{0.25, 0.5}, {0.75, 0.5}};
  d.max_range = 1.0;
  const verify::ConformanceOptions opt = fast_options();
  const verify::ShrinkResult shrunk =
      verify::shrink_deployment(d, opt, drop_longest_edge);
  EXPECT_EQ(shrunk.reproducer.size(), 2u);
  EXPECT_FALSE(shrunk.report.pass());
}

}  // namespace
}  // namespace thetanet
