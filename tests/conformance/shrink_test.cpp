// The acceptance tests for the shrinkers: a deliberately buggy topology
// mutator (drops the longest edge of N before auditing) makes every
// non-trivial instance fail conformance, and the greedy node-removal shrink
// must reduce a 40-node failing instance to a minimal reproducer of at most
// 12 nodes (in practice: 2). The temporal variant plants the stale-wake
// maintainer bug and must ddmin a churn scenario down along both dimensions:
// at most 12 nodes AND at most 8 events.

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <utility>
#include <vector>

#include "verify/conformance.h"
#include "verify/scenario.h"

namespace thetanet {
namespace {

/// The injected bug: audit a copy of N with its longest edge removed.
void drop_longest_edge(graph::Graph& g, const topo::Deployment& d) {
  (void)d;
  if (g.num_edges() == 0) return;
  graph::EdgeId longest = 0;
  for (graph::EdgeId e = 1; e < static_cast<graph::EdgeId>(g.num_edges()); ++e)
    if (g.edge(e).length > g.edge(longest).length) longest = e;
  graph::Graph out(g.num_nodes());
  for (graph::EdgeId e = 0; e < static_cast<graph::EdgeId>(g.num_edges()); ++e)
    if (e != longest) {
      const graph::Edge& ed = g.edge(e);
      out.add_edge(ed.u, ed.v, ed.length, ed.cost);
    }
  g = std::move(out);
}

verify::ConformanceOptions fast_options() {
  verify::ConformanceOptions opt;
  // The theta-invariant checker alone detects the mutation; skipping the
  // heavier checkers keeps each shrink evaluation cheap.
  opt.run_stretch = false;
  opt.run_replacement = false;
  opt.run_router = false;
  return opt;
}

TEST(Shrinker, ReducesInjectedBugToMinimalReproducer) {
  verify::ScenarioSpec spec;
  spec.dist = verify::Distribution::kUniform;
  spec.n = 40;
  spec.seed = 17;
  const topo::Deployment d = verify::build_scenario_deployment(spec);
  const verify::ConformanceOptions opt = fast_options();

  const verify::ConformanceReport full =
      verify::run_conformance(d, opt, drop_longest_edge);
  ASSERT_FALSE(full.pass());

  const verify::ShrinkResult shrunk =
      verify::shrink_deployment(d, opt, drop_longest_edge);
  EXPECT_FALSE(shrunk.report.pass());
  EXPECT_LE(shrunk.reproducer.size(), 12u);
  EXPECT_GE(shrunk.reproducer.size(), 2u);
  EXPECT_GT(shrunk.evaluations, 1u);

  // The reproducer must fail standalone, not only within the shrink loop.
  const verify::ConformanceReport again =
      verify::run_conformance(shrunk.reproducer, opt, drop_longest_edge);
  EXPECT_FALSE(again.pass());
}

TEST(Shrinker, ShrunkCaseSurvivesCorpusRoundTrip) {
  verify::ScenarioSpec spec;
  spec.dist = verify::Distribution::kUniform;
  spec.n = 24;
  spec.seed = 23;
  const topo::Deployment d = verify::build_scenario_deployment(spec);
  const verify::ConformanceOptions opt = fast_options();
  const verify::ShrinkResult shrunk =
      verify::shrink_deployment(d, opt, drop_longest_edge);

  verify::CorpusCase c;
  c.name = "shrink-roundtrip";
  c.seed = spec.seed;
  c.theta = opt.theta;
  c.delta = opt.delta;
  c.deployment = shrunk.reproducer;
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "shrunk.case").string();
  ASSERT_TRUE(verify::save_corpus_case(path, c));
  const std::optional<verify::CorpusCase> back =
      verify::load_corpus_case(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->deployment.size(), shrunk.reproducer.size());
  // Replaying the loaded case against the same mutator still fails — the
  // reproducer is faithful after serialization.
  const verify::ConformanceReport replay =
      verify::run_conformance(back->deployment, opt, drop_longest_edge);
  EXPECT_FALSE(replay.pass());
}

// --- Temporal (churn) shrinking ---------------------------------------------

verify::ChurnOptions buggy_churn_options(std::uint64_t seed) {
  verify::ChurnOptions opt;
  opt.checks = fast_options();
  opt.checks.trace_seed = seed;
  opt.dynamics_seed = seed;
  // The planted maintenance bug: wakes skip neighbour-row recomputes, so
  // sleep/wake pairs leave stale sector tables behind.
  opt.dynamics.test_skip_wake_neighbor_recompute = true;
  return opt;
}

TEST(ChurnShrinker, PlantedWakeBugReducesToTinyScenario) {
  // A 24-node scenario with a generous schedule: the mutation test of the
  // temporal harness. The 2-D ddmin must land at <= 12 nodes and <= 8
  // events (in practice far fewer — one sleep/wake pair on a bad geometry).
  verify::ChurnSpec spec;
  spec.base.dist = verify::Distribution::kUniform;
  spec.base.n = 24;
  spec.base.seed = 33;
  spec.rounds = 12;
  spec.events_per_round = 2.0;
  const topo::Deployment d = verify::build_scenario_deployment(spec.base);
  const std::vector<sim::DynEvent> schedule =
      verify::build_churn_schedule(spec, d.size());
  const verify::ChurnOptions opt = buggy_churn_options(spec.base.seed);

  const verify::ConformanceReport full =
      verify::run_churn_conformance(d, schedule, opt);
  ASSERT_FALSE(full.pass());

  const verify::ChurnShrinkResult shrunk =
      verify::shrink_churn(d, schedule, opt);
  EXPECT_FALSE(shrunk.report.pass());
  EXPECT_LE(shrunk.reproducer.size(), 12u);
  EXPECT_LE(shrunk.events.size(), 8u);
  EXPECT_GT(shrunk.evaluations, 1u);

  // The reproducer must fail standalone, not only within the shrink loop.
  const verify::ConformanceReport again =
      verify::run_churn_conformance(shrunk.reproducer, shrunk.events, opt);
  EXPECT_FALSE(again.pass());

  // And the same deployment + schedule with a HEALTHY maintainer passes —
  // the failure is the planted bug, not the scenario.
  verify::ChurnOptions healthy = opt;
  healthy.dynamics.test_skip_wake_neighbor_recompute = false;
  EXPECT_TRUE(
      verify::run_churn_conformance(shrunk.reproducer, shrunk.events, healthy)
          .pass());
}

/// The deterministic stale-wake trigger (same geometry as the maintainer
/// unit test): v and w share u's theta-sector with v nearer, while u and v
/// fall in different sectors seen from w — so after a buggy wake of v, u's
/// stale selection of w survives phase-2 admission as an extra edge.
topo::Deployment stale_wake_geometry(std::size_t decoys) {
  topo::Deployment d;
  d.positions = {{0.1, 0.1}, {0.29924, 0.11743}, {0.58296, 0.22941}};
  for (std::size_t i = 0; i < decoys; ++i)
    d.positions.push_back(
        {0.1 + 0.07 * static_cast<double>(i), 0.9});  // far from the trio
  d.max_range = 0.7;
  d.kappa = 2.0;
  return d;
}

TEST(ChurnShrinker, TemporalCaseSurvivesCorpusRoundTrip) {
  const topo::Deployment d = stale_wake_geometry(9);
  std::vector<sim::DynEvent> schedule;
  const auto push = [&schedule](std::uint32_t round, sim::DynEventKind kind,
                                graph::NodeId node) {
    sim::DynEvent e;
    e.round = round;
    e.kind = kind;
    e.node = node;
    schedule.push_back(e);
  };
  push(0, sim::DynEventKind::kSleep, 5);  // decoy churn
  push(0, sim::DynEventKind::kSleep, 1);  // the trigger pair...
  push(1, sim::DynEventKind::kWake, 5);
  push(1, sim::DynEventKind::kWake, 1);  // ...buggy wake -> stale tables
  push(2, sim::DynEventKind::kSleep, 7);
  push(3, sim::DynEventKind::kWake, 7);
  const verify::ChurnOptions opt = buggy_churn_options(37);
  ASSERT_FALSE(verify::run_churn_conformance(d, schedule, opt).pass());
  const verify::ChurnShrinkResult shrunk =
      verify::shrink_churn(d, schedule, opt);

  verify::CorpusCase c;
  c.name = "churn-shrink-roundtrip";
  c.seed = 37;
  c.theta = opt.checks.theta;
  c.delta = opt.checks.delta;
  c.deployment = shrunk.reproducer;
  c.events = shrunk.events;
  c.dynamics_seed = opt.dynamics_seed;
  c.rounds = 4;
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "churn_shrunk.case")
          .string();
  ASSERT_TRUE(verify::save_corpus_case(path, c));
  const std::optional<verify::CorpusCase> back =
      verify::load_corpus_case(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->deployment.size(), shrunk.reproducer.size());
  ASSERT_EQ(back->events.size(), shrunk.events.size());
  for (std::size_t i = 0; i < back->events.size(); ++i) {
    EXPECT_EQ(back->events[i].round, shrunk.events[i].round);
    EXPECT_EQ(back->events[i].kind, shrunk.events[i].kind);
    EXPECT_EQ(back->events[i].node, shrunk.events[i].node);
    EXPECT_EQ(back->events[i].pos.x, shrunk.events[i].pos.x);
    EXPECT_EQ(back->events[i].pos.y, shrunk.events[i].pos.y);
    EXPECT_EQ(back->events[i].radius, shrunk.events[i].radius);
  }
  EXPECT_EQ(back->dynamics_seed, opt.dynamics_seed);
  EXPECT_EQ(back->rounds, 4u);
  // Replaying the loaded case against the planted bug still fails — the
  // temporal reproducer is faithful after serialization.
  const verify::ConformanceReport replay =
      verify::run_churn_conformance(back->deployment, back->events, opt);
  EXPECT_FALSE(replay.pass());
}

TEST(ChurnShrinker, EventFreeCaseStaysFormatV1) {
  // The corpus version bump is opt-in: cases without events must serialize
  // exactly as before, keeping the committed v1 corpus byte-stable.
  verify::CorpusCase c;
  c.name = "static-case";
  c.seed = 7;
  c.deployment.positions = {{0.25, 0.5}, {0.75, 0.5}};
  c.deployment.max_range = 1.0;
  std::ostringstream os;
  verify::save_corpus_case(os, c);
  EXPECT_EQ(os.str().substr(0, 15), "conformance v1 ");
  EXPECT_EQ(os.str().find("dynamics"), std::string::npos);
  EXPECT_EQ(os.str().find("events"), std::string::npos);
}

TEST(Shrinker, RequiresNoShrinkWhenAlreadyMinimal) {
  // A 2-node in-range instance is already minimal: the mutator deletes its
  // only edge, conformance fails, and shrinking cannot remove anything.
  topo::Deployment d;
  d.positions = {{0.25, 0.5}, {0.75, 0.5}};
  d.max_range = 1.0;
  const verify::ConformanceOptions opt = fast_options();
  const verify::ShrinkResult shrunk =
      verify::shrink_deployment(d, opt, drop_longest_edge);
  EXPECT_EQ(shrunk.reproducer.size(), 2u);
  EXPECT_FALSE(shrunk.report.pass());
}

}  // namespace
}  // namespace thetanet
