// Cross-structure scoreboard (sim/scoreboard.h): one row per registered
// builder, deterministic rows across thread counts, the `only` filter, and
// the thetanet-scoreboard/1 JSON schema consumed by tools/bench_compare.py.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "common/parallel.h"
#include "geom/rng.h"
#include "sim/scoreboard.h"
#include "topology/builder.h"
#include "topology/distributions.h"

namespace thetanet {
namespace {

topo::Deployment uniform_deployment(std::size_t n, std::uint64_t seed,
                                    double range) {
  geom::Rng rng(seed);
  topo::Deployment d;
  d.positions = topo::uniform_square(n, 1.0, rng);
  d.max_range = range;
  d.kappa = 2.0;
  return d;
}

std::string table_string(const sim::Scoreboard& sb) {
  std::ostringstream os;
  sim::scoreboard_table(sb).print(os);
  return os.str();
}

std::string json_string(const sim::Scoreboard& sb,
                        const sim::ScoreboardMeta& meta) {
  std::ostringstream os;
  sim::write_scoreboard_json(os, meta, sb);
  return os.str();
}

sim::ScoreboardOptions fast_options() {
  sim::ScoreboardOptions opt;
  opt.run_router = false;  // the router leg is the CLI ctest's business
  opt.routing_pairs = 64;
  return opt;
}

TEST(Scoreboard, OneRowPerRegisteredBuilder) {
  const topo::Deployment d = uniform_deployment(40, 9, 0.4);
  const sim::Scoreboard sb = sim::run_scoreboard(d, fast_options());
  const auto& reg = topo::builder_registry();
  ASSERT_EQ(sb.rows.size(), reg.size());
  for (std::size_t i = 0; i < reg.size(); ++i)
    EXPECT_EQ(sb.rows[i].builder, reg[i].name);
  // The reference structure G* dominates edge count; ALG bounds degree.
  const auto gstar = std::find_if(sb.rows.begin(), sb.rows.end(),
                                  [](const auto& r) {
                                    return r.builder == "gstar";
                                  });
  ASSERT_NE(gstar, sb.rows.end());
  for (const sim::ScoreboardRow& r : sb.rows)
    EXPECT_LE(r.edges, gstar->edges) << r.builder;
}

TEST(Scoreboard, OnlyFilterSelectsAndOrdersByRegistry) {
  const topo::Deployment d = uniform_deployment(30, 9, 0.4);
  sim::ScoreboardOptions opt = fast_options();
  opt.only = {"gstar", "theta4"};  // registry order wins, not request order
  const sim::Scoreboard sb = sim::run_scoreboard(d, opt);
  ASSERT_EQ(sb.rows.size(), 2u);
  EXPECT_EQ(sb.rows[0].builder, "theta4");
  EXPECT_EQ(sb.rows[1].builder, "gstar");
}

TEST(Scoreboard, TableAndJsonAreDeterministicAcrossThreads) {
  const topo::Deployment d = uniform_deployment(64, 11, 0.35);
  const sim::ScoreboardMeta meta{42, "uniform"};
  tn::set_num_threads(1);
  const sim::Scoreboard base = sim::run_scoreboard(d, fast_options());
  const std::string base_table = table_string(base);
  const std::string base_json = json_string(base, meta);
  EXPECT_NE(base_json.find("\"schema\": \"thetanet-scoreboard/1\""),
            std::string::npos);
  EXPECT_NE(base_table.find("theta"), std::string::npos);
  for (const int threads : {2, 4}) {
    tn::set_num_threads(threads);
    const sim::Scoreboard got = sim::run_scoreboard(d, fast_options());
    EXPECT_EQ(table_string(got), base_table) << "tn=" << threads;
    EXPECT_EQ(json_string(got, meta), base_json) << "tn=" << threads;
  }
  tn::set_num_threads(1);
}

TEST(Scoreboard, DisconnectedStructuresReportInfiniteStretch) {
  // A tight chain whose range only reaches adjacent nodes: hng isolates any
  // level-1 node with no higher-level node in range (no worst-case
  // connectivity guarantee on sparse G* — the gap the scoreboard makes
  // visible), and its stretch columns must render "inf", not junk. G*
  // itself stays connected, so the reference row keeps finite stretch.
  topo::Deployment d;
  for (int i = 0; i < 32; ++i) d.positions.push_back({0.1 * i, 0.2});
  d.max_range = 0.15;
  d.kappa = 2.0;
  const sim::Scoreboard sb = sim::run_scoreboard(d, fast_options());
  const auto row = [&](const std::string& name) {
    return std::find_if(sb.rows.begin(), sb.rows.end(),
                        [&](const auto& r) { return r.builder == name; });
  };
  const auto gstar = row("gstar");
  ASSERT_NE(gstar, sb.rows.end());
  EXPECT_EQ(gstar->components, 1u);
  EXPECT_FALSE(gstar->stretch_disconnected);
  const auto hng = row("hng");
  ASSERT_NE(hng, sb.rows.end());
  EXPECT_GE(hng->components, 2u);
  EXPECT_TRUE(hng->stretch_disconnected);
  EXPECT_NE(table_string(sb).find("inf"), std::string::npos);
}

}  // namespace
}  // namespace thetanet
