#include "sim/dynamics.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/parallel.h"
#include "geom/bbox.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timeseries.h"
#include "obs/trace_sink.h"
#include "sim/mobility.h"
#include "topology/distributions.h"

namespace thetanet::sim {
namespace {

constexpr double kTheta = 0.3490658503988659;  // pi/9

topo::Deployment make_deployment(std::size_t n, double range,
                                 std::uint64_t seed) {
  geom::Rng rng(seed);
  topo::Deployment d;
  d.positions = topo::uniform_square(n, 1.0, rng);
  d.max_range = range;
  d.kappa = 2.0;
  return d;
}

DynEvent ev(std::uint32_t round, DynEventKind kind,
            graph::NodeId node = graph::kInvalidNode) {
  DynEvent e;
  e.round = round;
  e.kind = kind;
  e.node = node;
  return e;
}

TEST(DynEventKind, NamesRoundTrip) {
  for (const DynEventKind k :
       {DynEventKind::kJoin, DynEventKind::kLeave, DynEventKind::kCrash,
        DynEventKind::kSleep, DynEventKind::kWake, DynEventKind::kRegional}) {
    const std::optional<DynEventKind> back =
        parse_dyn_event_kind(dyn_event_kind_name(k));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, k);
  }
  EXPECT_FALSE(parse_dyn_event_kind("meteor").has_value());
}

TEST(DynamicsEngine, EventsChangeMaintainerState) {
  core::ThetaMaintainer m(make_deployment(10, 0.5, 41), kTheta);
  DynamicsEngine engine(m, {}, 1);

  std::vector<DynEvent> round0 = {ev(0, DynEventKind::kSleep, 3),
                                  ev(0, DynEventKind::kCrash, 7)};
  DynEvent join = ev(0, DynEventKind::kJoin);
  join.pos = {0.5, 0.5};
  round0.push_back(join);
  const auto s = engine.step(round0);
  EXPECT_EQ(s.applied, 3u);
  EXPECT_EQ(s.skipped, 0u);
  EXPECT_EQ(s.sleeps, 1u);
  EXPECT_EQ(s.crashes, 1u);
  EXPECT_EQ(s.joins, 1u);
  EXPECT_EQ(engine.state(3), NodeState::kAsleep);
  EXPECT_EQ(engine.state(7), NodeState::kDead);
  EXPECT_EQ(engine.state(10), NodeState::kAwake);
  EXPECT_EQ(engine.awake_count(), 9u);  // 10 - sleep - crash + join
  EXPECT_TRUE(m.matches_full_rebuild());

  const auto s1 = engine.step(std::vector<DynEvent>{
      ev(1, DynEventKind::kWake, 3), ev(1, DynEventKind::kLeave, 0)});
  EXPECT_EQ(s1.wakes, 1u);
  EXPECT_EQ(s1.leaves, 1u);
  EXPECT_EQ(engine.state(3), NodeState::kAwake);
  EXPECT_EQ(engine.awake_count(), 9u);
  EXPECT_TRUE(m.matches_full_rebuild());
}

TEST(DynamicsEngine, InvalidOrStaleEventsAreCountedNoOps) {
  core::ThetaMaintainer m(make_deployment(5, 0.5, 42), kTheta);
  DynamicsEngine engine(m, {}, 1);
  const auto s = engine.step(std::vector<DynEvent>{
      ev(0, DynEventKind::kWake, 2),     // already awake
      ev(0, DynEventKind::kSleep, 99),   // out of range
      ev(0, DynEventKind::kCrash, 1000)  // out of range
  });
  EXPECT_EQ(s.applied, 0u);
  EXPECT_EQ(s.skipped, 3u);
  EXPECT_EQ(engine.awake_count(), 5u);

  engine.step(std::vector<DynEvent>{ev(1, DynEventKind::kCrash, 2)});
  const auto s2 = engine.step(std::vector<DynEvent>{
      ev(2, DynEventKind::kCrash, 2),  // already dead
      ev(2, DynEventKind::kWake, 2)    // dead nodes never wake
  });
  EXPECT_EQ(s2.applied, 0u);
  EXPECT_EQ(s2.skipped, 2u);
  EXPECT_TRUE(m.matches_full_rebuild());
}

TEST(DynamicsEngine, RegionalFailureKillsExactlyTheDisk) {
  topo::Deployment d;
  d.positions = {{0.1, 0.1}, {0.15, 0.1}, {0.2, 0.15}, {0.8, 0.8}, {0.9, 0.9}};
  d.max_range = 1.5;
  d.kappa = 2.0;
  core::ThetaMaintainer m(d, kTheta);
  DynamicsEngine engine(m, {}, 1);

  DynEvent blast = ev(0, DynEventKind::kRegional);
  blast.pos = {0.15, 0.1};
  blast.radius = 0.12;
  const auto s = engine.step(std::span<const DynEvent>(&blast, 1));
  EXPECT_EQ(s.applied, 1u);
  EXPECT_EQ(s.crashes, 3u);
  EXPECT_EQ(engine.state(0), NodeState::kDead);
  EXPECT_EQ(engine.state(1), NodeState::kDead);
  EXPECT_EQ(engine.state(2), NodeState::kDead);
  EXPECT_EQ(engine.state(3), NodeState::kAwake);
  EXPECT_EQ(engine.state(4), NodeState::kAwake);
  EXPECT_TRUE(m.matches_full_rebuild());
}

TEST(DynamicsEngine, DutyCycleSleepsAndWakes) {
  DynamicsConfig cfg;
  cfg.duty.initial_battery = 20;
  cfg.duty.awake_drain = 6;
  cfg.duty.harvest = 8;
  cfg.duty.sleep_below = 8;
  cfg.duty.wake_above = 16;
  core::ThetaMaintainer m(make_deployment(6, 0.6, 43), kTheta);
  DynamicsEngine engine(m, cfg, 1);

  // 20 -> 14 -> 8 (doze) -> 16 (wake) -> 10 -> ... every node in lockstep.
  auto s = engine.step({});
  EXPECT_EQ(s.sleeps, 0u);
  s = engine.step({});
  EXPECT_EQ(s.sleeps, 6u);
  EXPECT_EQ(engine.awake_count(), 0u);
  s = engine.step({});
  EXPECT_EQ(s.wakes, 6u);
  EXPECT_EQ(engine.awake_count(), 6u);
  EXPECT_TRUE(m.matches_full_rebuild());
}

TEST(DynamicsEngine, BatteryExhaustionIsACrash) {
  DynamicsConfig cfg;
  cfg.duty.initial_battery = 10;
  cfg.duty.awake_drain = 6;
  cfg.duty.harvest = 0;  // no recovery: drain to death
  cfg.duty.sleep_below = 0;
  cfg.duty.wake_above = 1000;
  core::ThetaMaintainer m(make_deployment(4, 0.6, 44), kTheta);
  DynamicsEngine engine(m, cfg, 1);

  auto s = engine.step({});  // 10 -> 4
  EXPECT_EQ(s.crashes, 0u);
  s = engine.step({});  // 4 <= 6: exhausted
  EXPECT_EQ(s.crashes, 4u);
  EXPECT_EQ(engine.awake_count(), 0u);
  for (graph::NodeId v = 0; v < 4; ++v)
    EXPECT_EQ(engine.state(v), NodeState::kDead);
  // The ledger closed every account.
  EXPECT_EQ(engine.energy_remaining(), 0u);
  EXPECT_EQ(engine.energy_granted() + engine.energy_harvested(),
            engine.energy_drained() + engine.energy_remaining());
}

TEST(DynamicsEngine, EnergyLedgerConservesExactly) {
  DynamicsConfig cfg;
  cfg.duty = DutyCycleConfig{64, 9, 16, 28, 56};
  cfg.range_factor_min = 0.8;
  cfg.range_factor_max = 1.6;  // heterogeneous drains via factor^kappa
  core::ThetaMaintainer m(make_deployment(24, 0.4, 45), kTheta);
  DynamicsEngine engine(m, cfg, 7);

  geom::Rng rng(46);
  std::vector<DynEvent> schedule;
  for (std::uint32_t r = 0; r < 30; ++r) {
    DynEvent e;
    e.round = r;
    switch (rng.uniform_index(4)) {
      case 0:
        e.kind = DynEventKind::kJoin;
        e.pos = {rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)};
        break;
      case 1:
        e.kind = DynEventKind::kCrash;
        e.node = static_cast<graph::NodeId>(rng.uniform_index(24));
        break;
      case 2:
        e.kind = DynEventKind::kSleep;
        e.node = static_cast<graph::NodeId>(rng.uniform_index(24));
        break;
      default:
        e.kind = DynEventKind::kWake;
        e.node = static_cast<graph::NodeId>(rng.uniform_index(24));
        break;
    }
    schedule.push_back(e);
  }
  engine.run(schedule, 40);
  // Exact u64 identity — not an epsilon comparison.
  EXPECT_EQ(engine.energy_granted() + engine.energy_harvested(),
            engine.energy_drained() + engine.energy_remaining());
  EXPECT_GT(engine.energy_drained(), 0u);
  EXPECT_GT(engine.energy_harvested(), 0u);
  EXPECT_TRUE(m.matches_full_rebuild());
}

TEST(DynamicsEngine, HeterogeneousRangeFactorsStayInBounds) {
  DynamicsConfig cfg;
  cfg.range_factor_min = 0.5;
  cfg.range_factor_max = 2.0;
  core::ThetaMaintainer m(make_deployment(50, 0.4, 47), kTheta);
  DynamicsEngine engine(m, cfg, 3);
  bool varied = false;
  for (graph::NodeId v = 0; v < 50; ++v) {
    EXPECT_GE(engine.range_factor(v), 0.5);
    EXPECT_LE(engine.range_factor(v), 2.0);
    if (engine.range_factor(v) != engine.range_factor(0)) varied = true;
  }
  EXPECT_TRUE(varied);
}

TEST(DynamicsEngine, FirstPartitionRoundIsTheSleepRound) {
  // A 3-node chain u - v - w with the ends out of range of each other:
  // sleeping the middle node partitions the awake overlay.
  topo::Deployment d;
  d.positions = {{0.1, 0.5}, {0.5, 0.5}, {0.9, 0.5}};
  d.max_range = 0.45;
  d.kappa = 2.0;
  core::ThetaMaintainer m(d, kTheta);
  DynamicsEngine engine(m, {}, 1);

  engine.step({});  // round 0: intact
  EXPECT_FALSE(engine.first_partition_round().has_value());
  engine.step(std::vector<DynEvent>{ev(1, DynEventKind::kSleep, 1)});
  ASSERT_TRUE(engine.first_partition_round().has_value());
  EXPECT_EQ(*engine.first_partition_round(), 2u);  // 1-based: after round 1

  // The watermark never moves, even if the overlay heals.
  engine.step(std::vector<DynEvent>{ev(2, DynEventKind::kWake, 1)});
  EXPECT_TRUE(engine.awake_overlay_connected());
  EXPECT_EQ(*engine.first_partition_round(), 2u);
}

// --- Determinism contracts --------------------------------------------------

TEST(DynamicsDeterminism, MobilityDrawSequenceIsUnperturbed) {
  // The engine owns its Rng: running dynamics beside a mobility model must
  // leave the mobility positions bit-identical to a run without dynamics.
  const auto run_mobility = [](bool with_dynamics) {
    geom::Rng rng(48);
    topo::Deployment d = make_deployment(30, 0.4, 49);
    const geom::BBox arena{{0.0, 0.0}, {1.0, 1.0}};
    RandomWaypoint rw(arena, d.size(), 0.05, 0.25, rng);

    core::ThetaMaintainer m(d, kTheta);
    DynamicsConfig cfg;
    cfg.duty = DutyCycleConfig{64, 9, 16, 28, 56};
    cfg.range_factor_min = 0.7;
    cfg.range_factor_max = 1.4;
    std::optional<DynamicsEngine> engine;
    if (with_dynamics) engine.emplace(m, cfg, 5);

    for (std::uint32_t r = 0; r < 20; ++r) {
      rw.step(0.1, d, rng);
      if (engine) {
        std::vector<DynEvent> batch;
        if (r % 3 == 1) batch.push_back(ev(r, DynEventKind::kSleep, r % 30));
        if (r % 3 == 2) batch.push_back(ev(r, DynEventKind::kWake, (r - 1) % 30));
        engine->step(batch);
      }
    }
    return d.positions;
  };
  const std::vector<geom::Vec2> without = run_mobility(false);
  const std::vector<geom::Vec2> with = run_mobility(true);
  ASSERT_EQ(without.size(), with.size());
  for (std::size_t i = 0; i < without.size(); ++i) {
    EXPECT_EQ(without[i].x, with[i].x) << "node " << i;
    EXPECT_EQ(without[i].y, with[i].y) << "node " << i;
  }
}

class DynamicsTelemetry : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::MetricsRegistry::global().reset();
    obs::SeriesRegistry::global().reset();
    obs::reset_spans();
    tn::set_num_threads(1);
  }
  void TearDown() override {
    tn::set_num_threads(1);
    obs::MetricsRegistry::global().reset();
    obs::SeriesRegistry::global().reset();
    obs::reset_spans();
  }

  /// One full churn scenario; returns the deterministic telemetry dump.
  static std::string run_and_dump() {
    core::ThetaMaintainer m(make_deployment(20, 0.4, 50), kTheta);
    DynamicsConfig cfg;
    cfg.duty = DutyCycleConfig{64, 9, 16, 28, 56};
    DynamicsEngine engine(m, cfg, 11);
    std::vector<DynEvent> schedule;
    DynEvent join = ev(2, DynEventKind::kJoin);
    join.pos = {0.4, 0.6};
    schedule.push_back(join);
    schedule.push_back(ev(3, DynEventKind::kCrash, 4));
    schedule.push_back(ev(5, DynEventKind::kLeave, 9));
    DynEvent blast = ev(7, DynEventKind::kRegional);
    blast.pos = {0.5, 0.5};
    blast.radius = 0.2;
    schedule.push_back(blast);
    engine.run(schedule, 12);
    return obs::to_json(obs::capture_telemetry(),
                        /*include_timing=*/false);
  }
};

TEST_F(DynamicsTelemetry, EmitsTheDynamicsSeries) {
  const std::string dump = run_and_dump();
  for (const char* name :
       {"dynamics.nodes_awake", "dynamics.crashes", "dynamics.joins",
        "dynamics.leaves", "dynamics.events_applied",
        "maintenance.edge_churn"})
    EXPECT_NE(dump.find(name), std::string::npos) << name << "\n" << dump;
}

TEST_F(DynamicsTelemetry, DumpIsByteIdenticalAcrossThreadCounts) {
  std::vector<std::string> dumps;
  for (const int threads : {1, 2, 4}) {
    obs::MetricsRegistry::global().reset();
    obs::SeriesRegistry::global().reset();
    obs::reset_spans();
    tn::set_num_threads(threads);
    dumps.push_back(run_and_dump());
  }
  EXPECT_EQ(dumps[0], dumps[1]);
  EXPECT_EQ(dumps[0], dumps[2]);
}

TEST_F(DynamicsTelemetry, LifetimeCounterEmittedOnceAtFirstPartition) {
  topo::Deployment d;
  d.positions = {{0.1, 0.5}, {0.5, 0.5}, {0.9, 0.5}};
  d.max_range = 0.45;
  d.kappa = 2.0;
  core::ThetaMaintainer m(d, kTheta);
  DynamicsEngine engine(m, {}, 1);
  engine.step({});
  engine.step(std::vector<DynEvent>{ev(1, DynEventKind::kSleep, 1)});
  engine.step(std::vector<DynEvent>{ev(2, DynEventKind::kWake, 1)});
  engine.step(std::vector<DynEvent>{ev(3, DynEventKind::kSleep, 1)});  // again
  EXPECT_EQ(obs::MetricsRegistry::global().counter_value(
                "dynamics.lifetime_to_first_partition"),
            2u);
}

}  // namespace
}  // namespace thetanet::sim
