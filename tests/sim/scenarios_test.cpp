// Integration tests: the full stack (topology control + MAC + balancing
// routing) against certified adversaries, checking the *shape* of the
// competitive guarantees at test-sized instances. The bench harness sweeps
// the same scenarios at larger scale.

#include "sim/scenarios.h"

#include <gtest/gtest.h>

#include <numbers>

#include "core/theta_topology.h"
#include "graph/connectivity.h"
#include "topology/distributions.h"
#include "topology/transmission_graph.h"

namespace thetanet::sim {
namespace {

constexpr double kPi = std::numbers::pi;

struct Net {
  topo::Deployment d;
  graph::Graph topo;

  Net(std::uint64_t seed, std::size_t n, double range) {
    geom::Rng rng(seed);
    d.positions = topo::uniform_square(n, 1.0, rng);
    d.max_range = range;
    d.kappa = 2.0;
    topo = topo::build_transmission_graph(d);
  }
};

route::AdversaryTrace concentrated_trace(const graph::Graph& topo,
                                         geom::Rng& rng, route::Time horizon,
                                         double rate = 2.0) {
  route::TraceParams p;
  p.horizon = horizon;
  p.drain = 0;
  p.injections_per_step = rate;
  p.max_schedule_slack = 64;
  p.num_sources = 6;
  p.num_destinations = 2;
  return route::make_certified_trace(topo, p, rng);
}

TEST(MacGivenScenario, DeliversMostPacketsWithTheoremParams) {
  geom::Rng rng(111);
  const Net net(1, 48, 0.5);
  ASSERT_TRUE(graph::is_connected(net.topo));
  const auto trace = concentrated_trace(net.topo, rng, 60000, 3.0);
  ASSERT_GT(trace.opt.deliveries, 10000U);
  const auto params = core::theorem31_params(trace.opt, 0.25, 4.0);
  const auto res = run_mac_given(trace, params, 20000);
  // Converging towards 1 - eps; at this horizon past 60% and rising (the
  // bench sweeps the full convergence curve).
  EXPECT_GT(res.throughput_ratio(), 0.6);
  // Average cost within the theorem's 1 + 2/eps factor.
  EXPECT_LT(res.cost_ratio(), 1.0 + 2.0 / 0.25);
  // With T >= B + 2(delta-1), in-transit packets are never dropped.
  EXPECT_EQ(res.metrics.dropped_in_transit, 0U);
  // Conservation.
  EXPECT_EQ(res.metrics.injected_accepted,
            res.metrics.deliveries + res.metrics.leftover_packets +
                res.metrics.dropped_in_transit);
}

TEST(MacGivenScenario, ThroughputImprovesWithHorizon) {
  // The additive slack r is constant, so the delivered fraction must grow
  // towards 1 - eps as the horizon grows.
  geom::Rng rng_a(112), rng_b(112);
  const Net net(2, 48, 0.5);
  const auto short_trace = concentrated_trace(net.topo, rng_a, 4000, 3.0);
  const auto long_trace = concentrated_trace(net.topo, rng_b, 32000, 3.0);
  const auto p_short = core::theorem31_params(short_trace.opt, 0.25, 4.0);
  const auto p_long = core::theorem31_params(long_trace.opt, 0.25, 4.0);
  const double r_short =
      run_mac_given(short_trace, p_short, 2000).throughput_ratio();
  const double r_long =
      run_mac_given(long_trace, p_long, 8000).throughput_ratio();
  EXPECT_GT(r_long, r_short);
}

TEST(MacGivenScenario, CostAwareBeatsCostBlindOnEnergy) {
  // gamma = 0 ablation on a crafted instance: source 0 and destination 3
  // connected by a cheap three-hop path (cost 1 per hop) and an expensive
  // direct edge (cost 100). All edges are always active. The theorem's
  // gamma makes the direct edge's benefit unreachable; the cost-blind
  // variant happily burns 100 units on it.
  graph::Graph topo(4);
  topo.add_edge(0, 1, 1.0, 1.0);
  topo.add_edge(1, 2, 1.0, 1.0);
  topo.add_edge(2, 3, 1.0, 1.0);
  topo.add_edge(0, 3, 10.0, 100.0);

  route::AdversaryTrace trace;
  trace.topology = &topo;
  const route::Time horizon = 3000;
  trace.steps.resize(horizon);
  // Pipeline one packet per step along the cheap path (conflict-free).
  for (route::Time t = 0; t + 4 < horizon; ++t) {
    route::Injection inj;
    inj.packet = route::Packet{t + 1, 0, 3, t, 0.0, 0};
    inj.schedule.t0 = t;
    inj.schedule.hops = {{0, t + 1}, {1, t + 2}, {2, t + 3}};
    trace.steps[t].injections.push_back(inj);
  }
  for (route::Time t = 0; t < horizon; ++t)
    trace.steps[t].active = {0, 1, 2, 3};
  trace.opt = route::replay_schedules(trace);
  ASSERT_GT(trace.opt.deliveries, 1000U);

  core::BalancingParams params{/*T=*/3.0, /*gamma=*/0.0, /*H=*/256};
  const auto no_gamma = run_mac_given(trace, params, 1000);
  params.gamma = 1.0;  // gamma * 100 puts the direct edge out of reach
  const auto with_gamma = run_mac_given(trace, params, 1000);
  ASSERT_GT(with_gamma.metrics.deliveries, 100U);
  ASSERT_GT(no_gamma.metrics.deliveries, 100U);
  EXPECT_LT(with_gamma.metrics.avg_cost_per_delivery(),
            no_gamma.metrics.avg_cost_per_delivery());
  // The cost-aware run never uses the expensive edge: per-delivery cost is
  // (asymptotically) the 3-unit path cost.
  EXPECT_LT(with_gamma.metrics.avg_delivered_cost(), 3.5);
  EXPECT_GT(no_gamma.metrics.avg_delivered_cost(), 3.5);
}

TEST(RandomizedMacScenario, RespectsTheoremFloor) {
  geom::Rng rng(114);
  topo::Deployment d;
  d.positions = topo::uniform_square(64, 1.0, rng);
  d.max_range = 0.35;
  d.kappa = 2.0;
  const core::ThetaTopology tt(d, kPi / 6.0);
  ASSERT_TRUE(graph::is_connected(tt.graph()));
  const interf::InterferenceModel model{0.5};
  const core::RandomizedMac mac(tt.graph(), d, model);

  route::TraceParams tp;
  tp.horizon = 8000;
  tp.injections_per_step = 0.05;  // light load: OPT far below capacity
  tp.max_schedule_slack = 200;
  tp.num_sources = 6;
  tp.num_destinations = 2;
  const auto trace = route::make_certified_trace(tt.graph(), tp, rng);
  ASSERT_GT(trace.opt.deliveries, 100U);
  const auto params = core::theorem33_params(trace.opt, 0.25);
  const auto res = run_randomized_mac(trace, tt.graph(), mac, params, rng,
                                      /*extra_drain=*/30000);
  // Theorem 3.3 floor: (1 - eps) / (8I) of OPT.
  const double floor = (1.0 - 0.25) /
                       (8.0 * static_cast<double>(mac.interference_bound()));
  EXPECT_GT(res.throughput_ratio(), floor);
  // Collision rate among actual transmissions stays below 1/2 (Lemma 3.2).
  if (res.metrics.attempted_tx > 100) {
    EXPECT_LE(static_cast<double>(res.metrics.failed_tx) /
                  static_cast<double>(res.metrics.attempted_tx),
              0.5);
  }
}

TEST(HoneycombScenario, ConstantFactorThroughput) {
  geom::Rng rng(115);
  topo::Deployment d;
  d.positions = topo::uniform_square(100, 5.0, rng);
  d.max_range = 1.0;  // fixed strength
  d.kappa = 2.0;
  const graph::Graph unit = topo::build_transmission_graph(d);
  if (!graph::is_connected(unit)) GTEST_SKIP() << "instance disconnected";
  const core::HoneycombMac mac(d, unit, core::HoneycombParams{0.5, 1.0 / 6.0});

  route::TraceParams tp;
  tp.horizon = 12000;
  tp.injections_per_step = 0.15;
  tp.max_schedule_slack = 300;
  tp.num_sources = 2;
  tp.num_destinations = 1;
  const auto trace = route::make_certified_trace(unit, tp, rng);
  ASSERT_GT(trace.opt.deliveries, 100U);
  const auto params = core::theorem33_params(trace.opt, 0.25);
  HoneycombRunStats hs;
  const auto res =
      run_honeycomb(trace, unit, mac, params, rng, /*extra_drain=*/40000, &hs);
  EXPECT_GT(res.throughput_ratio(), 0.05);  // far above 1/(8I)-style floors
  // Lemma 3.7: collision fraction at most 1/2.
  if (hs.transmissions_total > 100) {
    EXPECT_LE(static_cast<double>(hs.collisions_total) /
                  static_cast<double>(hs.transmissions_total),
              0.5);
  }
  EXPECT_GT(hs.contestants_total, 0U);
}

TEST(FullStack, ThetaPlusMacCompetesAgainstGStarOpt) {
  // Corollary 3.4's setting: OPT certified on G*, online runs on N with the
  // randomized MAC — the end-to-end stack a deployment would actually use.
  geom::Rng rng(116);
  topo::Deployment d;
  d.positions = topo::uniform_square(64, 1.0, rng);
  d.max_range = 0.35;
  d.kappa = 2.0;
  const graph::Graph gstar = topo::build_transmission_graph(d);
  ASSERT_TRUE(graph::is_connected(gstar));
  const core::ThetaTopology tt(d, kPi / 6.0);
  const core::RandomizedMac mac(tt.graph(), d, interf::InterferenceModel{0.5});

  route::TraceParams tp;
  tp.horizon = 10000;
  tp.injections_per_step = 0.15;
  tp.max_schedule_slack = 100;
  tp.num_sources = 2;
  tp.num_destinations = 1;
  const auto trace = route::make_certified_trace(gstar, tp, rng);
  ASSERT_GT(trace.opt.deliveries, 50U);
  const auto params = core::theorem33_params(trace.opt, 0.5);
  const auto res = run_randomized_mac(trace, tt.graph(), mac, params, rng,
                                      /*extra_drain=*/30000);
  EXPECT_GT(res.metrics.deliveries, 0U);
  EXPECT_GT(res.throughput_ratio(), 0.02);  // O(1/I) scale on this instance
}

}  // namespace
}  // namespace thetanet::sim
