#include "sim/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace thetanet::sim {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t("demo", {"n", "value"});
  t.row({"1", "10.5"}).row({"1000", "2.25"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("1000"), std::string::npos);
  EXPECT_NE(out.find("value"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t("demo", {"a", "b"});
  t.row({"1", "2"}).row({"3", "4"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
}

TEST(Table, RowWidthMismatchDies) {
  Table t("demo", {"a", "b"});
  EXPECT_DEATH(t.row({"only-one"}), "width");
}

TEST(Table, NumRows) {
  Table t("demo", {"x"});
  EXPECT_EQ(t.num_rows(), 0U);
  t.row({"1"});
  EXPECT_EQ(t.num_rows(), 1U);
}

TEST(Fmt, Doubles) {
  EXPECT_EQ(fmt(1.23456, 3), "1.235");
  EXPECT_EQ(fmt(1.0, 2), "1.00");
  EXPECT_EQ(fmt(-0.5, 1), "-0.5");
}

TEST(Fmt, Integers) {
  EXPECT_EQ(fmt(std::size_t{42}), "42");
  EXPECT_EQ(fmt(std::uint32_t{7}), "7");
  EXPECT_EQ(fmt(-3), "-3");
}

}  // namespace
}  // namespace thetanet::sim
