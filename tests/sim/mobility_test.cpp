#include "sim/mobility.h"

#include <gtest/gtest.h>

#include "topology/distributions.h"

namespace thetanet::sim {
namespace {

geom::BBox unit_arena() {
  geom::BBox b;
  b.expand({0, 0});
  b.expand({1, 1});
  return b;
}

TEST(RandomWaypoint, NodesStayInsideArena) {
  geom::Rng rng(91);
  const geom::BBox arena = unit_arena();
  topo::Deployment d;
  d.positions = topo::uniform_square(50, 1.0, rng);
  d.max_range = 0.3;
  RandomWaypoint model(arena, d.size(), 0.01, 0.05, rng);
  for (int step = 0; step < 500; ++step) {
    model.step(1.0, d, rng);
    for (const geom::Vec2 p : d.positions) {
      ASSERT_GE(p.x, -1e-9);
      ASSERT_LE(p.x, 1.0 + 1e-9);
      ASSERT_GE(p.y, -1e-9);
      ASSERT_LE(p.y, 1.0 + 1e-9);
    }
  }
}

TEST(RandomWaypoint, SpeedBoundsDisplacementPerStep) {
  geom::Rng rng(92);
  const geom::BBox arena = unit_arena();
  topo::Deployment d;
  d.positions = topo::uniform_square(30, 1.0, rng);
  const double vmax = 0.04;
  RandomWaypoint model(arena, d.size(), 0.01, vmax, rng);
  for (int step = 0; step < 100; ++step) {
    const auto before = d.positions;
    model.step(1.0, d, rng);
    for (std::size_t i = 0; i < d.size(); ++i)
      ASSERT_LE(geom::dist(before[i], d.positions[i]), vmax + 1e-9);
  }
}

TEST(RandomWaypoint, NodesActuallyMove) {
  geom::Rng rng(93);
  topo::Deployment d;
  d.positions = topo::uniform_square(20, 1.0, rng);
  const auto before = d.positions;
  RandomWaypoint model(unit_arena(), d.size(), 0.05, 0.1, rng);
  for (int step = 0; step < 50; ++step) model.step(1.0, d, rng);
  double moved = 0.0;
  for (std::size_t i = 0; i < d.size(); ++i)
    moved += geom::dist(before[i], d.positions[i]);
  EXPECT_GT(moved / static_cast<double>(d.size()), 0.05);
}

TEST(GroupDrift, WrapsAroundArena) {
  geom::Rng rng(94);
  topo::Deployment d;
  d.positions = topo::uniform_square(40, 1.0, rng);
  GroupDrift model(unit_arena(), 0.2, 0.001);
  for (int step = 0; step < 200; ++step) {
    model.step(1.0, d, rng);
    for (const geom::Vec2 p : d.positions) {
      ASSERT_GE(p.x, -1e-9);
      ASSERT_LE(p.x, 1.0 + 1e-9);
      ASSERT_GE(p.y, -1e-9);
      ASSERT_LE(p.y, 1.0 + 1e-9);
    }
  }
}

TEST(GroupDrift, PreservesRelativeStructureApproximately) {
  // With zero jitter the convoy moves rigidly (modulo wrap): pairwise
  // distances of nearby nodes are preserved.
  geom::Rng rng(95);
  topo::Deployment d;
  d.positions = {{0.4, 0.4}, {0.45, 0.45}, {0.42, 0.47}};
  GroupDrift model(unit_arena(), 0.01, 0.0);
  const double d01 = geom::dist(d.positions[0], d.positions[1]);
  for (int step = 0; step < 20; ++step) model.step(1.0, d, rng);
  EXPECT_NEAR(geom::dist(d.positions[0], d.positions[1]), d01, 1e-9);
}

}  // namespace
}  // namespace thetanet::sim
