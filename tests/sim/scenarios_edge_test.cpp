// Edge-case coverage for the scenario drivers: cost-override accounting,
// drain-cycling semantics, custom-MAC hooks, the ratio helpers, and tiny-n /
// degenerate inputs for every conformance scenario builder.

#include <gtest/gtest.h>

#include <cmath>

#include "sim/scenarios.h"
#include "verify/conformance.h"
#include "verify/scenario.h"

namespace thetanet::sim {
namespace {

using route::AdversaryTrace;
using route::Injection;
using route::Packet;
using route::StepSpec;
using route::Time;

/// Two-node, one-edge world with a single packet.
struct Tiny {
  graph::Graph g{2};
  AdversaryTrace trace;

  explicit Tiny(Time horizon = 4) {
    g.add_edge(0, 1, 1.0, 2.0);  // base cost 2
    trace.topology = &g;
    trace.steps.resize(horizon);
    for (auto& s : trace.steps) s.active = {0};
    Injection inj;
    inj.packet = Packet{1, 0, 1, 0, 0.0, 0};
    inj.schedule.t0 = 0;
    inj.schedule.hops = {{0, 1}};
    trace.steps[0].injections.push_back(inj);
    trace.opt = route::replay_schedules(trace);
  }
};

TEST(ScenarioEdge, CostOverrideIsChargedAndRestored) {
  Tiny w;
  // Override the edge cost to 10 in step 1 (when the packet moves: injected
  // at step 0 end, transmitted at step 1).
  w.trace.steps[1].cost_overrides.push_back({0, 10.0});
  w.trace.opt = route::replay_schedules(w.trace);  // re-audit with override
  const core::BalancingParams params{0.5, 0.0, 8};
  const auto res = run_mac_given(w.trace, params, 0);
  ASSERT_EQ(res.metrics.deliveries, 1U);
  EXPECT_DOUBLE_EQ(res.metrics.delivered_cost, 10.0);  // the override applied
  // OPT replay also uses the override (same step).
  EXPECT_DOUBLE_EQ(res.opt.total_cost, 10.0);
}

TEST(ScenarioEdge, BaseCostUsedWithoutOverride) {
  Tiny w;
  const core::BalancingParams params{0.5, 0.0, 8};
  const auto res = run_mac_given(w.trace, params, 0);
  ASSERT_EQ(res.metrics.deliveries, 1U);
  EXPECT_DOUBLE_EQ(res.metrics.delivered_cost, 2.0);
}

TEST(ScenarioEdge, DrainCyclesTheActivationPattern) {
  // Edge active ONLY in step 1 of a 2-step trace; the packet is injected at
  // the end of step 1, so it can move only during drain steps whose cycled
  // pattern re-activates the edge (odd steps). Delivery therefore requires
  // the drain to cycle activations.
  graph::Graph g(2);
  g.add_edge(0, 1, 1.0, 1.0);
  AdversaryTrace trace;
  trace.topology = &g;
  trace.steps.resize(2);
  trace.steps[1].active = {0};
  Injection inj;
  inj.packet = Packet{1, 0, 1, 1, 0.0, 0};
  inj.schedule.t0 = 1;
  // No certified schedule needed for this mechanical test; set opt by hand.
  inj.schedule.hops = {};  // replay not invoked
  trace.steps[1].injections.push_back(inj);
  trace.opt.deliveries = 1;

  const core::BalancingParams params{0.5, 0.0, 8};
  const auto blocked = run_mac_given(trace, params, /*extra_drain=*/0);
  EXPECT_EQ(blocked.metrics.deliveries, 0U);
  const auto drained = run_mac_given(trace, params, /*extra_drain=*/4);
  EXPECT_EQ(drained.metrics.deliveries, 1U);
}

TEST(ScenarioEdge, CustomMacHooksDriveTheRun) {
  Tiny w(8);
  // A hook MAC that activates the edge only on even steps and fails every
  // second transmission.
  int resolve_calls = 0;
  Time step = 0;
  MacHooks hooks;
  hooks.activate = [&step](geom::Rng&) {
    const bool on = (step % 2) == 0;
    ++step;
    return on ? std::vector<graph::EdgeId>{0} : std::vector<graph::EdgeId>{};
  };
  hooks.resolve = [&resolve_calls](std::span<const core::PlannedTx> txs) {
    std::vector<bool> failed(txs.size(), false);
    if (!txs.empty() && (++resolve_calls % 2) == 1) failed[0] = true;
    return failed;
  };
  geom::Rng rng(1);
  const core::BalancingParams params{0.5, 0.0, 8};
  const auto res = run_custom_mac(w.trace, w.g, hooks, params, rng, 8);
  EXPECT_EQ(res.metrics.deliveries, 1U);
  EXPECT_GE(res.metrics.failed_tx, 1U);  // the first attempt collided
  EXPECT_GT(res.metrics.wasted_energy, 0.0);
}

TEST(ScenarioEdge, EmptyTraceIsANoOp) {
  graph::Graph g(2);
  g.add_edge(0, 1, 1.0, 1.0);
  AdversaryTrace trace;
  trace.topology = &g;  // zero steps
  const core::BalancingParams params{0.5, 0.0, 8};
  const auto res = run_mac_given(trace, params, /*extra_drain=*/100);
  EXPECT_EQ(res.metrics.deliveries, 0U);
  EXPECT_EQ(res.metrics.attempted_tx, 0U);
}

TEST(ScenarioEdge, RatioHelpersHandleZeroOpt) {
  ScenarioResult res;
  res.opt = route::OptStats{};  // zero deliveries / cost / buffer
  EXPECT_DOUBLE_EQ(res.throughput_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(res.cost_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(res.buffer_ratio(), 0.0);
}

TEST(ScenarioEdge, MetricsAverageHelpers) {
  route::RunMetrics m;
  EXPECT_DOUBLE_EQ(m.avg_cost_per_delivery(), 0.0);
  EXPECT_DOUBLE_EQ(m.avg_latency(), 0.0);
  EXPECT_DOUBLE_EQ(m.avg_hops(), 0.0);
  m.deliveries = 2;
  m.total_energy = 6.0;
  m.wasted_energy = 2.0;
  m.delivered_cost = 5.0;
  m.sum_latency = 10;
  m.total_hops_delivered = 7;
  EXPECT_DOUBLE_EQ(m.avg_cost_per_delivery(), 4.0);
  EXPECT_DOUBLE_EQ(m.avg_delivered_cost(), 2.5);
  EXPECT_DOUBLE_EQ(m.avg_latency(), 5.0);
  EXPECT_DOUBLE_EQ(m.avg_hops(), 3.5);
}

// --- Tiny-n and degenerate inputs for every scenario builder ----------------
// Every distribution family must be a total function of its spec: n in
// {0, 1, 2} builds exactly n finite points (no assert, no hang), and the
// degenerate all-coincident family survives the full conformance run.

TEST(ScenarioBuilderEdge, TinyNBuildsExactlyNPoints) {
  for (const verify::Distribution dist : verify::kAllDistributions) {
    for (const std::size_t n : {0u, 1u, 2u}) {
      verify::ScenarioSpec spec;
      spec.dist = dist;
      spec.n = n;
      spec.seed = 42 + n;
      const topo::Deployment d = verify::build_scenario_deployment(spec);
      ASSERT_EQ(d.size(), n) << verify::scenario_name(spec);
      EXPECT_GT(d.max_range, 0.0) << verify::scenario_name(spec);
      for (const geom::Vec2 p : d.positions) {
        EXPECT_TRUE(std::isfinite(p.x) && std::isfinite(p.y))
            << verify::scenario_name(spec);
      }
    }
  }
}

TEST(ScenarioBuilderEdge, TinyNPassesConformance) {
  for (const verify::Distribution dist : verify::kAllDistributions) {
    for (const std::size_t n : {0u, 1u, 2u}) {
      verify::ScenarioSpec spec;
      spec.dist = dist;
      spec.n = n;
      spec.seed = 7 + n;
      const topo::Deployment d = verify::build_scenario_deployment(spec);
      const verify::ConformanceReport r =
          verify::run_conformance(d, verify::ConformanceOptions{});
      EXPECT_TRUE(r.pass())
          << verify::scenario_name(spec) << "\n" << r.to_string();
    }
  }
}

TEST(ScenarioBuilderEdge, MobilityStepsKeepTinyNWellFormed) {
  for (const std::size_t n : {0u, 1u, 2u}) {
    verify::ScenarioSpec spec;
    spec.dist = verify::Distribution::kUniform;
    spec.n = n;
    spec.seed = 11;
    spec.mobility_steps = 5;
    const topo::Deployment d = verify::build_scenario_deployment(spec);
    ASSERT_EQ(d.size(), n);
    for (const geom::Vec2 p : d.positions)
      EXPECT_TRUE(std::isfinite(p.x) && std::isfinite(p.y));
  }
}

TEST(ScenarioBuilderEdge, CoincidentFamilySurvivesAllSizes) {
  for (const std::size_t n : {0u, 1u, 2u, 5u, 16u}) {
    verify::ScenarioSpec spec;
    spec.dist = verify::Distribution::kCoincident;
    spec.n = n;
    const topo::Deployment d = verify::build_scenario_deployment(spec);
    ASSERT_EQ(d.size(), n);
    const verify::ConformanceReport r =
        verify::run_conformance(d, verify::ConformanceOptions{});
    EXPECT_TRUE(r.pass()) << "n=" << n << "\n" << r.to_string();
  }
}

}  // namespace
}  // namespace thetanet::sim
