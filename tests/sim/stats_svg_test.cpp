#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "geom/rng.h"
#include "sim/stats.h"
#include "sim/svg.h"
#include "topology/distributions.h"
#include "topology/transmission_graph.h"

namespace thetanet::sim {
namespace {

TEST(Accumulator, EmptyIsZero) {
  const Accumulator a;
  EXPECT_EQ(a.count(), 0U);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.sem(), 0.0);
}

TEST(Accumulator, KnownMoments) {
  Accumulator a;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_EQ(a.count(), 8U);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
}

TEST(Accumulator, SingleSample) {
  Accumulator a;
  a.add(3.5);
  EXPECT_DOUBLE_EQ(a.mean(), 3.5);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 3.5);
  EXPECT_DOUBLE_EQ(a.max(), 3.5);
}

TEST(Accumulator, MatchesTwoPassOnRandomData) {
  geom::Rng rng(5);
  Accumulator a;
  std::vector<double> xs;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.normal(10.0, 3.0);
    xs.push_back(x);
    a.add(x);
  }
  double sum = 0.0;
  for (const double x : xs) sum += x;
  const double mean = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (const double x : xs) ss += (x - mean) * (x - mean);
  EXPECT_NEAR(a.mean(), mean, 1e-9);
  EXPECT_NEAR(a.variance(), ss / static_cast<double>(xs.size() - 1), 1e-6);
}

TEST(Accumulator, Ci95Shrinks) {
  geom::Rng rng(6);
  Accumulator small, big;
  for (int i = 0; i < 10; ++i) small.add(rng.normal());
  for (int i = 0; i < 1000; ++i) big.add(rng.normal());
  EXPECT_GT(small.ci95(), big.ci95());
}

TEST(Percentile, NearestRank) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(FmtMeanSd, Format) {
  Accumulator a;
  a.add(1.0);
  a.add(2.0);
  EXPECT_EQ(fmt_mean_sd(a, 2), "1.50+-0.71");
}

TEST(Svg, DocumentStructureAndCounts) {
  geom::Rng rng(7);
  topo::Deployment d;
  d.positions = topo::uniform_square(20, 1.0, rng);
  d.max_range = 0.5;
  d.kappa = 2.0;
  const graph::Graph g = topo::build_transmission_graph(d);

  SvgCanvas canvas(d, 400.0);
  canvas.add_edges(g, "#888");
  canvas.add_nodes("black");
  canvas.add_marker(0, "red");
  canvas.add_path({0, 1, 2}, "blue");
  const std::string svg = canvas.str();

  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One <line> per edge, one filled <circle> per node plus the marker.
  std::size_t lines = 0, circles = 0, polylines = 0;
  for (std::size_t pos = 0; (pos = svg.find("<line", pos)) != std::string::npos;
       ++pos)
    ++lines;
  for (std::size_t pos = 0;
       (pos = svg.find("<circle", pos)) != std::string::npos; ++pos)
    ++circles;
  for (std::size_t pos = 0;
       (pos = svg.find("<polyline", pos)) != std::string::npos; ++pos)
    ++polylines;
  EXPECT_EQ(lines, g.num_edges());
  EXPECT_EQ(circles, d.size() + 1);
  EXPECT_EQ(polylines, 1U);
}

TEST(Svg, WritesFile) {
  topo::Deployment d;
  d.positions = {{0, 0}, {1, 1}};
  d.max_range = 2.0;
  d.kappa = 2.0;
  SvgCanvas canvas(d);
  canvas.add_nodes("black");
  const std::string path = "/tmp/thetanet_svg_test.svg";
  ASSERT_TRUE(canvas.write(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
}

TEST(Svg, DegenerateDeployment) {
  topo::Deployment d;  // empty
  SvgCanvas canvas(d);
  EXPECT_NE(canvas.str().find("<svg"), std::string::npos);
}

}  // namespace
}  // namespace thetanet::sim
