#include "core/schedule_transform.h"

#include <gtest/gtest.h>

#include <numbers>
#include <set>

#include "topology/distributions.h"
#include "topology/transmission_graph.h"

namespace thetanet::core {
namespace {

struct Fixture {
  topo::Deployment d;
  graph::Graph gstar;
  interf::InterferenceModel model{0.5};

  explicit Fixture(std::uint64_t seed, std::size_t n = 120) {
    geom::Rng rng(seed);
    d.positions = topo::uniform_square(n, 1.0, rng);
    d.max_range = 0.3;
    d.kappa = 2.0;
    gstar = topo::build_transmission_graph(d);
  }
};

TEST(RandomSchedule, StepsArePairwiseNonInterfering) {
  const Fixture f(1);
  geom::Rng rng(2);
  const auto schedule =
      random_noninterfering_schedule(f.gstar, f.d, f.model, 10, rng);
  ASSERT_EQ(schedule.size(), 10U);
  for (const auto& step : schedule) {
    EXPECT_FALSE(step.empty());
    for (std::size_t i = 0; i < step.size(); ++i)
      for (std::size_t j = i + 1; j < step.size(); ++j) {
        const graph::Edge& a = f.gstar.edge(step[i]);
        const graph::Edge& b = f.gstar.edge(step[j]);
        EXPECT_FALSE(f.model.in_interference_set(
            f.d.positions[a.u], f.d.positions[a.v], f.d.positions[b.u],
            f.d.positions[b.v]))
            << "edges " << step[i] << "," << step[j];
      }
  }
}

TEST(RandomSchedule, StepsAreMaximal) {
  // No edge outside a step can be added without interfering: maximality of
  // the greedy independent set.
  const Fixture f(3, 60);
  geom::Rng rng(4);
  const auto schedule =
      random_noninterfering_schedule(f.gstar, f.d, f.model, 3, rng);
  const auto sets = interf::interference_sets(f.gstar, f.d, f.model);
  for (const auto& step : schedule) {
    const std::set<graph::EdgeId> in(step.begin(), step.end());
    for (graph::EdgeId e = 0; e < f.gstar.num_edges(); ++e) {
      if (in.count(e)) continue;
      bool conflicts = false;
      for (const graph::EdgeId other : sets[e])
        if (in.count(other)) {
          conflicts = true;
          break;
        }
      EXPECT_TRUE(conflicts) << "edge " << e << " could have been added";
    }
  }
}

TEST(TransformSchedule, OutputIsConflictFreeOnN) {
  const Fixture f(5);
  const ThetaTopology tt(f.d, std::numbers::pi / 9.0);
  geom::Rng rng(6);
  const auto schedule =
      random_noninterfering_schedule(f.gstar, f.d, f.model, 8, rng);
  const TransformResult res =
      transform_schedule(tt, f.gstar, schedule, f.model);
  ASSERT_GT(res.n_steps, 0U);
  ASSERT_EQ(res.n_schedule.size(), res.n_steps);
  const auto sets = interf::interference_sets(tt.graph(), f.d, f.model);
  std::size_t total = 0;
  for (const auto& step : res.n_schedule) {
    total += step.size();
    const std::set<graph::EdgeId> in(step.begin(), step.end());
    for (const graph::EdgeId e : step) {
      for (const graph::EdgeId other : sets[e])
        ASSERT_FALSE(in.count(other))
            << "interfering pair scheduled together";
    }
  }
  EXPECT_EQ(total, res.transmissions);
}

TEST(TransformSchedule, EveryGStarEdgeBecomesItsThetaPathInOrder) {
  const Fixture f(7, 80);
  const ThetaTopology tt(f.d, std::numbers::pi / 9.0);
  // Single-step schedule with one edge: the N schedule must contain exactly
  // the replacement path hops, in causal (store-and-forward) order.
  const graph::Edge& ge =
      f.gstar.edge(static_cast<graph::EdgeId>(f.gstar.num_edges() / 2));
  const std::vector<GStarStep> schedule{{f.gstar.find_edge(ge.u, ge.v)}};
  const TransformResult res =
      transform_schedule(tt, f.gstar, schedule, f.model);
  const auto path = tt.replacement_path(ge.u, ge.v);
  EXPECT_EQ(res.transmissions, path.size());
  // Hop k appears strictly after hop k-1.
  std::vector<std::size_t> when(path.size(), 0);
  for (std::size_t s = 0; s < res.n_schedule.size(); ++s)
    for (const graph::EdgeId e : res.n_schedule[s])
      for (std::size_t k = 0; k < path.size(); ++k)
        if (path[k] == e) when[k] = s;
  for (std::size_t k = 1; k < path.size(); ++k)
    if (path[k] != path[k - 1]) EXPECT_GT(when[k], when[k - 1]) << "hop " << k;
}

TEST(TransformSchedule, CausalityBarrierBetweenGStarSteps) {
  // All hops spawned by G* step k are scheduled strictly after every hop of
  // step k-1 finished. We verify via a 2-step schedule of the same edge.
  const Fixture f(8, 80);
  const ThetaTopology tt(f.d, std::numbers::pi / 9.0);
  const graph::EdgeId e = 0;
  const std::vector<GStarStep> schedule{{e}, {e}};
  const TransformResult res =
      transform_schedule(tt, f.gstar, schedule, f.model);
  const auto path =
      tt.replacement_path(f.gstar.edge(e).u, f.gstar.edge(e).v);
  // Two repetitions of the path, second entirely after the first.
  EXPECT_EQ(res.transmissions, 2 * path.size());
  EXPECT_GE(res.n_steps, 2 * path.size());
}

TEST(TransformSchedule, SlowdownWithinTheoremBudget) {
  const Fixture f(9, 150);
  const ThetaTopology tt(f.d, std::numbers::pi / 9.0);
  geom::Rng rng(10);
  const auto schedule =
      random_noninterfering_schedule(f.gstar, f.d, f.model, 16, rng);
  const TransformResult res =
      transform_schedule(tt, f.gstar, schedule, f.model);
  EXPECT_EQ(res.gstar_steps, 16U);
  // Theorem 2.8 budget: O(t*I + n^2). Our constant must be far below 1x.
  const double budget =
      static_cast<double>(res.gstar_steps) *
          static_cast<double>(res.interference_number) +
      static_cast<double>(f.d.size()) * static_cast<double>(f.d.size());
  EXPECT_LT(static_cast<double>(res.n_steps), budget);
  EXPECT_GT(res.slowdown(), 0.99);  // at least one N step per G* step
}

TEST(TransformSchedule, EmptySchedule) {
  const Fixture f(11, 40);
  const ThetaTopology tt(f.d, std::numbers::pi / 9.0);
  const TransformResult res = transform_schedule(tt, f.gstar, {}, f.model);
  EXPECT_EQ(res.n_steps, 0U);
  EXPECT_EQ(res.transmissions, 0U);
  EXPECT_DOUBLE_EQ(res.slowdown(), 0.0);
}

}  // namespace
}  // namespace thetanet::core
