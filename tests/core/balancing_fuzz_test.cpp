// Randomized stress of the balancing router: arbitrary topologies, random
// active sets, random MAC failure vectors and random injections must never
// violate the core invariants — packet conservation, buffer caps, energy
// accounting consistency.

#include <gtest/gtest.h>

#include "core/balancing_router.h"
#include "geom/rng.h"

namespace thetanet::core {
namespace {

graph::Graph random_graph(std::size_t n, double p, geom::Rng& rng) {
  graph::Graph g(n);
  for (graph::NodeId u = 0; u < n; ++u)
    for (graph::NodeId v = u + 1; v < n; ++v)
      if (rng.bernoulli(p)) {
        const double len = rng.uniform(0.1, 1.0);
        g.add_edge(u, v, len, len * len);
      }
  return g;
}

class BalancingFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BalancingFuzz, InvariantsSurviveRandomAbuse) {
  geom::Rng rng(GetParam());
  const std::size_t n = 2 + rng.uniform_index(20);
  const graph::Graph g = random_graph(n, rng.uniform(0.1, 0.6), rng);
  const BalancingParams params{rng.uniform(0.0, 4.0), rng.uniform(0.0, 2.0),
                               1 + rng.uniform_index(16)};
  BalancingRouter router(n, params);
  route::RunMetrics m;
  std::vector<double> costs(g.num_edges());
  for (graph::EdgeId e = 0; e < costs.size(); ++e) costs[e] = g.edge(e).cost;

  std::uint64_t next_id = 1;
  for (route::Time t = 0; t < 400; ++t) {
    // Random active subset.
    std::vector<graph::EdgeId> active;
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e)
      if (rng.bernoulli(0.4)) active.push_back(e);
    const auto txs = router.plan(g, active, costs);
    // Random MAC failures.
    std::vector<bool> failed(txs.size());
    for (std::size_t i = 0; i < txs.size(); ++i) failed[i] = rng.bernoulli(0.3);
    router.execute(txs, failed, costs, t, m);
    // Random injections.
    const std::size_t injections = rng.uniform_index(4);
    for (std::size_t i = 0; i < injections && n >= 2; ++i) {
      const auto src = static_cast<graph::NodeId>(rng.uniform_index(n));
      auto dst = static_cast<graph::NodeId>(rng.uniform_index(n - 1));
      if (dst >= src) ++dst;
      router.inject(route::Packet{next_id++, src, dst, t, 0.0, 0}, m);
    }
    router.end_step(m);

    // Invariants, every step:
    ASSERT_LE(router.buffers().peak_height(), params.max_height);
    ASSERT_EQ(m.injected_offered,
              m.injected_accepted + m.dropped_at_injection);
    ASSERT_EQ(m.injected_accepted, m.deliveries + router.packets_in_flight() +
                                       m.dropped_in_transit);
    ASSERT_GE(m.total_energy, m.delivered_cost - 1e-9);
    ASSERT_GE(m.attempted_tx, m.failed_tx);
  }
  // Plans never exceed one transmission per offered edge.
  std::vector<graph::EdgeId> all(g.num_edges());
  for (graph::EdgeId e = 0; e < all.size(); ++e) all[e] = e;
  const auto txs = router.plan(g, all, costs);
  std::vector<int> per_edge(g.num_edges(), 0);
  for (const PlannedTx& tx : txs) {
    ASSERT_LT(tx.edge, g.num_edges());
    ASSERT_EQ(++per_edge[tx.edge], 1);
    ASSERT_GT(tx.benefit, params.threshold);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BalancingFuzz,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace thetanet::core
