#include "core/theta_topology.h"

#include <gtest/gtest.h>

#include <numbers>

#include "geom/angles.h"
#include "graph/connectivity.h"
#include "interference/model.h"
#include "graph/stretch.h"
#include "topology/distributions.h"
#include "topology/transmission_graph.h"

namespace thetanet::core {
namespace {

constexpr double kPi = std::numbers::pi;

struct Generator {
  const char* name;
  std::vector<geom::Vec2> (*make)(std::size_t, geom::Rng&);
  double range;
};

std::vector<geom::Vec2> gen_uniform(std::size_t n, geom::Rng& rng) {
  return topo::uniform_square(n, 1.0, rng);
}
std::vector<geom::Vec2> gen_clustered(std::size_t n, geom::Rng& rng) {
  return topo::clustered(n, 5, 0.05, 1.0, rng);
}
std::vector<geom::Vec2> gen_grid(std::size_t n, geom::Rng& rng) {
  return topo::grid_jitter(n, 1.0, 0.02, rng);
}
std::vector<geom::Vec2> gen_civilized(std::size_t n, geom::Rng& rng) {
  return topo::civilized(n, 1.0, 0.03, rng);
}
std::vector<geom::Vec2> gen_ring(std::size_t n, geom::Rng& rng) {
  return topo::hub_ring(n, 0.3, rng);
}

const Generator kGenerators[] = {
    {"uniform", gen_uniform, 0.3},   {"clustered", gen_clustered, 0.3},
    {"grid", gen_grid, 0.3},         {"civilized", gen_civilized, 0.3},
    {"hub_ring", gen_ring, 0.7},
};

class ThetaAcrossGenerators
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

// Lemma 2.1: N is connected (when G* is) and max degree <= 4*pi/theta.
TEST_P(ThetaAcrossGenerators, Lemma21DegreeBoundAndConnectivity) {
  const auto [gen_idx, theta] = GetParam();
  const Generator& gen = kGenerators[gen_idx];
  geom::Rng rng(1000 + static_cast<std::uint64_t>(gen_idx));
  for (int trial = 0; trial < 3; ++trial) {
    topo::Deployment d;
    d.positions = gen.make(128, rng);
    d.max_range = gen.range;
    d.kappa = 2.0;
    const graph::Graph gstar = topo::build_transmission_graph(d);
    if (!graph::is_connected(gstar)) continue;
    const ThetaTopology tt(d, theta);
    EXPECT_TRUE(graph::is_connected(tt.graph()))
        << gen.name << " trial " << trial;
    EXPECT_LE(static_cast<double>(tt.graph().max_degree()), 4.0 * kPi / theta)
        << gen.name << " trial " << trial;
  }
}

// Theorem 2.2: O(1) energy-stretch for arbitrary node distributions. The
// empirical constant must stay below a fixed bound across all generators.
TEST_P(ThetaAcrossGenerators, Theorem22EnergyStretchBounded) {
  const auto [gen_idx, theta] = GetParam();
  const Generator& gen = kGenerators[gen_idx];
  geom::Rng rng(2000 + static_cast<std::uint64_t>(gen_idx));
  topo::Deployment d;
  d.positions = gen.make(128, rng);
  d.max_range = gen.range;
  d.kappa = 2.0;
  const graph::Graph gstar = topo::build_transmission_graph(d);
  if (!graph::is_connected(gstar)) GTEST_SKIP();
  const ThetaTopology tt(d, theta);
  const graph::StretchStats s =
      graph::edge_stretch(tt.graph(), gstar, graph::Weight::kCost);
  EXPECT_FALSE(s.disconnected) << gen.name;
  // Theta <= pi/6 gives a small constant in practice; 6.0 is a generous
  // fixed ceiling that a super-constant stretch would blow through.
  EXPECT_LE(s.max, 6.0) << gen.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllGeneratorsAndThetas, ThetaAcrossGenerators,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values(kPi / 6.0, kPi / 9.0, kPi / 12.0)));

TEST(ThetaTopology, SubgraphOfYaoWhichIsSubgraphOfGStar) {
  geom::Rng rng(3);
  topo::Deployment d;
  d.positions = topo::uniform_square(150, 1.0, rng);
  d.max_range = 0.3;
  d.kappa = 2.0;
  const ThetaTopology tt(d, kPi / 6.0);
  const graph::Graph n1 = tt.yao_graph();
  const graph::Graph gstar = topo::build_transmission_graph(d);
  for (const graph::Edge& e : tt.graph().edges()) {
    EXPECT_TRUE(n1.has_edge(e.u, e.v)) << e.u << "," << e.v;
    EXPECT_TRUE(gstar.has_edge(e.u, e.v));
  }
}

TEST(ThetaTopology, HubRingPhase2CapsTheHubDegree) {
  // The construction where the Yao graph has in-degree n-1 at the hub:
  // phase 2 brings it down to <= 2 * sectors (Lemma 2.1's point).
  geom::Rng rng(4);
  const std::size_t n = 96;
  topo::Deployment d;
  d.positions = topo::hub_ring(n, 1.0, rng);
  d.max_range = 1.2;
  d.kappa = 2.0;
  const double theta = kPi / 6.0;
  const ThetaTopology tt(d, theta);
  const graph::Graph n1 = tt.yao_graph();
  EXPECT_EQ(n1.degree(0), n - 1);  // Yao failure mode
  EXPECT_LE(static_cast<double>(tt.graph().degree(0)), 4.0 * kPi / theta);
  EXPECT_TRUE(graph::is_connected(tt.graph()));
}

TEST(ThetaTopology, AdmittedEdgesExistAndAreShortestSelectors) {
  geom::Rng rng(5);
  topo::Deployment d;
  d.positions = topo::uniform_square(100, 1.0, rng);
  d.max_range = 0.4;
  d.kappa = 2.0;
  const double theta = kPi / 6.0;
  const ThetaTopology tt(d, theta);
  for (graph::NodeId v = 0; v < d.size(); ++v) {
    for (int s = 0; s < tt.sectors(); ++s) {
      const graph::NodeId w = tt.admitted(v, s);
      if (w == graph::kInvalidNode) continue;
      // The admitted edge is materialized in N.
      EXPECT_NE(tt.graph().find_edge(v, w), graph::kInvalidEdge);
      // w selected v in phase 1.
      EXPECT_TRUE(tt.selects(w, v));
      // w lies in sector s of v.
      EXPECT_EQ(geom::sector_index(d.positions[v], d.positions[w], theta), s);
      // No closer selector of v exists in this sector.
      for (graph::NodeId u = 0; u < d.size(); ++u) {
        if (u == v || u == w || !d.in_range(u, v)) continue;
        if (geom::sector_index(d.positions[v], d.positions[u], theta) != s)
          continue;
        if (tt.selects(u, v))
          EXPECT_TRUE(topo::nearer(d, v, w, u))
              << "admitted " << w << " not nearest selector at " << v;
      }
    }
  }
}

TEST(ThetaTopology, EveryEdgeOfNWasAdmittedBySomeSide) {
  geom::Rng rng(6);
  topo::Deployment d;
  d.positions = topo::uniform_square(80, 1.0, rng);
  d.max_range = 0.4;
  d.kappa = 2.0;
  const double theta = kPi / 9.0;
  const ThetaTopology tt(d, theta);
  for (const graph::Edge& e : tt.graph().edges()) {
    const int su = geom::sector_index(d.positions[e.u], d.positions[e.v], theta);
    const int sv = geom::sector_index(d.positions[e.v], d.positions[e.u], theta);
    EXPECT_TRUE(tt.admitted(e.u, su) == e.v || tt.admitted(e.v, sv) == e.u);
  }
}

// Theorem 2.7: distance-stretch on civilized deployments is O(1).
TEST(ThetaTopology, Theorem27CivilizedDistanceStretch) {
  geom::Rng rng(7);
  for (int trial = 0; trial < 3; ++trial) {
    topo::Deployment d;
    d.positions = topo::civilized(200, 1.0, 0.04, rng);
    d.max_range = 0.2;  // lambda = 0.2
    d.kappa = 2.0;
    const graph::Graph gstar = topo::build_transmission_graph(d);
    if (!graph::is_connected(gstar)) continue;
    const ThetaTopology tt(d, kPi / 12.0);
    const graph::StretchStats s =
        graph::edge_stretch(tt.graph(), gstar, graph::Weight::kLength);
    EXPECT_FALSE(s.disconnected);
    EXPECT_LE(s.max, 8.0) << "trial " << trial;
  }
}

TEST(ThetaTopology, ReplacementPathsConnectTheirEndpoints) {
  geom::Rng rng(8);
  topo::Deployment d;
  d.positions = topo::uniform_square(120, 1.0, rng);
  d.max_range = 0.35;
  d.kappa = 2.0;
  const ThetaTopology tt(d, kPi / 6.0);
  const graph::Graph gstar = topo::build_transmission_graph(d);
  for (graph::EdgeId e = 0; e < gstar.num_edges(); e += 7) {
    const graph::Edge& ge = gstar.edge(e);
    const auto path = tt.replacement_path(ge.u, ge.v);
    ASSERT_FALSE(path.empty());
    // Walk the path: consecutive edges share endpoints, u -> ... -> v.
    graph::NodeId at = ge.u;
    for (const graph::EdgeId pe : path) {
      const graph::Edge& edge = tt.graph().edge(pe);
      ASSERT_TRUE(edge.u == at || edge.v == at) << "disconnected theta-path";
      at = edge.other(at);
    }
    EXPECT_EQ(at, ge.v);
  }
}

// Lemma 2.9: over any set of *non-interfering* G* edges, each N edge is
// reused by at most a constant number of replacement paths (paper: 6).
TEST(ThetaTopology, Lemma29BoundedReplacementReuse) {
  geom::Rng rng(9);
  topo::Deployment d;
  d.positions = topo::uniform_square(200, 1.0, rng);
  d.max_range = 0.3;
  d.kappa = 2.0;
  const ThetaTopology tt(d, kPi / 6.0);
  const graph::Graph gstar = topo::build_transmission_graph(d);
  const interf::InterferenceModel m{0.5};

  // Build a maximal non-interfering edge set T greedily.
  std::vector<std::pair<graph::NodeId, graph::NodeId>> matching;
  std::vector<graph::EdgeId> chosen;
  for (graph::EdgeId e = 0; e < gstar.num_edges(); ++e) {
    const graph::Edge& ge = gstar.edge(e);
    bool ok = true;
    for (const graph::EdgeId f : chosen) {
      const graph::Edge& fe = gstar.edge(f);
      if (m.in_interference_set(d.positions[ge.u], d.positions[ge.v],
                                d.positions[fe.u], d.positions[fe.v])) {
        ok = false;
        break;
      }
    }
    if (ok) {
      chosen.push_back(e);
      matching.push_back({ge.u, ge.v});
    }
  }
  ASSERT_GT(matching.size(), 3U);
  EXPECT_LE(tt.max_replacement_reuse(matching), 6U);
}

TEST(ThetaTopology, DeterministicConstruction) {
  geom::Rng rng(10);
  topo::Deployment d;
  d.positions = topo::uniform_square(100, 1.0, rng);
  d.max_range = 0.3;
  d.kappa = 2.0;
  const ThetaTopology a(d, kPi / 6.0);
  const ThetaTopology b(d, kPi / 6.0);
  ASSERT_EQ(a.graph().num_edges(), b.graph().num_edges());
  for (graph::EdgeId e = 0; e < a.graph().num_edges(); ++e) {
    EXPECT_EQ(a.graph().edge(e).u, b.graph().edge(e).u);
    EXPECT_EQ(a.graph().edge(e).v, b.graph().edge(e).v);
  }
}

TEST(ThetaTopology, KappaSweepKeepsStretchBounded) {
  geom::Rng rng(11);
  topo::Deployment base;
  base.positions = topo::uniform_square(100, 1.0, rng);
  base.max_range = 0.35;
  for (const double kappa : {2.0, 3.0, 4.0}) {
    topo::Deployment d = base;
    d.kappa = kappa;
    const graph::Graph gstar = topo::build_transmission_graph(d);
    if (!graph::is_connected(gstar)) continue;
    const ThetaTopology tt(d, kPi / 9.0);
    const graph::StretchStats s =
        graph::edge_stretch(tt.graph(), gstar, graph::Weight::kCost);
    EXPECT_LE(s.max, 6.0) << "kappa " << kappa;
  }
}

TEST(ThetaTopology, TwoNodes) {
  topo::Deployment d;
  d.positions = {{0, 0}, {0.1, 0.1}};
  d.max_range = 1.0;
  d.kappa = 2.0;
  const ThetaTopology tt(d, kPi / 6.0);
  EXPECT_EQ(tt.graph().num_edges(), 1U);
  EXPECT_EQ(tt.replacement_path(0, 1).size(), 1U);
}

}  // namespace
}  // namespace thetanet::core
