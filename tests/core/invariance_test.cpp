// Structural invariance properties of ThetaALG: node relabeling must yield
// the isomorphic topology (no hidden id-order bias beyond the documented
// tie-break, which random inputs never trigger), and rigid motions of the
// plane (translation, rotation) must not change the combinatorial result
// beyond sector-boundary effects — verified via stretch equality for
// translations, which preserve every node's sector frame exactly.

#include <gtest/gtest.h>

#include <numbers>
#include <set>

#include "core/theta_topology.h"
#include "topology/distributions.h"
#include "topology/io.h"
#include "topology/transmission_graph.h"

namespace thetanet::core {
namespace {

using EdgeSet = std::set<std::pair<graph::NodeId, graph::NodeId>>;

EdgeSet edge_set(const graph::Graph& g) {
  EdgeSet s;
  for (const graph::Edge& e : g.edges()) s.insert(std::minmax(e.u, e.v));
  return s;
}

TEST(ThetaInvariance, NodeRelabelingYieldsIsomorphicTopology) {
  geom::Rng rng(71);
  for (int trial = 0; trial < 5; ++trial) {
    topo::Deployment d;
    d.positions = topo::uniform_square(80, 1.0, rng);
    d.max_range = 0.35;
    d.kappa = 2.0;
    // Random permutation pi; d2.positions[pi[i]] = d.positions[i].
    std::vector<graph::NodeId> pi(d.size());
    for (graph::NodeId i = 0; i < d.size(); ++i) pi[i] = i;
    for (std::size_t i = pi.size(); i > 1; --i)
      std::swap(pi[i - 1], pi[rng.uniform_index(i)]);
    topo::Deployment d2 = d;
    for (graph::NodeId i = 0; i < d.size(); ++i)
      d2.positions[pi[i]] = d.positions[i];

    const double theta = std::numbers::pi / 9.0;
    const EdgeSet a = edge_set(ThetaTopology(d, theta).graph());
    const EdgeSet b = edge_set(ThetaTopology(d2, theta).graph());
    EdgeSet a_mapped;
    for (const auto& [u, v] : a) a_mapped.insert(std::minmax(pi[u], pi[v]));
    EXPECT_EQ(a_mapped, b) << "trial " << trial;
  }
}

TEST(ThetaInvariance, TranslationPreservesTheTopologyExactly) {
  geom::Rng rng(72);
  topo::Deployment d;
  d.positions = topo::uniform_square(100, 1.0, rng);
  d.max_range = 0.3;
  d.kappa = 2.0;
  topo::Deployment shifted = d;
  for (geom::Vec2& p : shifted.positions) p += {123.5, -42.25};
  const double theta = std::numbers::pi / 6.0;
  EXPECT_EQ(edge_set(ThetaTopology(d, theta).graph()),
            edge_set(ThetaTopology(shifted, theta).graph()));
}

TEST(ThetaInvariance, UniformScalingPreservesTheTopology) {
  // Scaling positions and range together changes lengths but not the
  // sector-nearest structure.
  geom::Rng rng(73);
  topo::Deployment d;
  d.positions = topo::uniform_square(90, 1.0, rng);
  d.max_range = 0.35;
  d.kappa = 2.0;
  topo::Deployment scaled = d;
  for (geom::Vec2& p : scaled.positions) p *= 37.0;
  scaled.max_range *= 37.0;
  const double theta = std::numbers::pi / 9.0;
  EXPECT_EQ(edge_set(ThetaTopology(d, theta).graph()),
            edge_set(ThetaTopology(scaled, theta).graph()));
}

TEST(ThetaInvariance, IoRoundTripReproducesTheTopologyBitForBit) {
  // Full pipeline integration: deployment -> save -> load -> ThetaALG must
  // give the identical edge list (the TSV format round-trips doubles
  // exactly, so even tie-breaks are preserved).
  geom::Rng rng(74);
  topo::Deployment d;
  d.positions = topo::uniform_square(120, 1.0, rng);
  d.max_range = 0.3;
  d.kappa = 3.0;
  std::stringstream ss;
  topo::save_deployment(ss, d);
  const auto back = topo::load_deployment(ss);
  ASSERT_TRUE(back.has_value());
  const double theta = std::numbers::pi / 12.0;
  const ThetaTopology a(d, theta);
  const ThetaTopology b(*back, theta);
  ASSERT_EQ(a.graph().num_edges(), b.graph().num_edges());
  for (graph::EdgeId e = 0; e < a.graph().num_edges(); ++e) {
    EXPECT_EQ(a.graph().edge(e).u, b.graph().edge(e).u);
    EXPECT_EQ(a.graph().edge(e).v, b.graph().edge(e).v);
    EXPECT_EQ(a.graph().edge(e).cost, b.graph().edge(e).cost);
  }
}

}  // namespace
}  // namespace thetanet::core
