#include "core/quantized_router.h"

#include <gtest/gtest.h>

#include "routing/adversary.h"
#include "topology/distributions.h"
#include "topology/transmission_graph.h"

namespace thetanet::core {
namespace {

graph::Graph path3() {
  graph::Graph g(3);
  g.add_edge(0, 1, 1.0, 1.0);
  g.add_edge(1, 2, 1.0, 1.0);
  return g;
}

std::vector<double> costs_of(const graph::Graph& g) {
  std::vector<double> c(g.num_edges());
  for (graph::EdgeId e = 0; e < c.size(); ++e) c[e] = g.edge(e).cost;
  return c;
}

route::Packet mk(std::uint64_t id, graph::NodeId s, graph::NodeId t) {
  return route::Packet{id, s, t, 0, 0.0, 0};
}

TEST(QuantizedRouter, QuantumOneAdvertisesEveryChange) {
  const graph::Graph g = path3();
  QuantizedHeightRouter r(3, {0.5, 0.0, 16}, 1);
  route::RunMetrics m;
  r.inject(mk(1, 0, 2), m);
  r.end_step(m);
  EXPECT_EQ(r.control_messages(), 1U);  // height 0 -> 1 advertised
  r.inject(mk(2, 0, 2), m);
  r.end_step(m);
  EXPECT_EQ(r.control_messages(), 2U);  // height 1 -> 2 advertised
  r.end_step(m);
  EXPECT_EQ(r.control_messages(), 2U);  // no change, no message
}

TEST(QuantizedRouter, LargerQuantumSuppressesMessages) {
  const graph::Graph g = path3();
  QuantizedHeightRouter r(3, {10.0, 0.0, 64}, 4);
  route::RunMetrics m;
  for (std::uint64_t i = 0; i < 3; ++i) {
    r.inject(mk(i + 1, 0, 2), m);
    r.end_step(m);
  }
  EXPECT_EQ(r.control_messages(), 0U);  // drift 3 < quantum 4
  r.inject(mk(9, 0, 2), m);
  r.end_step(m);
  EXPECT_EQ(r.control_messages(), 1U);  // drift 4 -> advertise
}

TEST(QuantizedRouter, ControlBytesFollowTheWireModel) {
  const graph::Graph g = path3();
  QuantizedHeightRouter r(3, {0.5, 0.0, 16}, 1);
  route::RunMetrics m;
  EXPECT_EQ(r.control_bytes(), 0U);
  r.inject(mk(1, 0, 2), m);
  r.end_step(m);
  // One advertisement (header, dest, height).
  EXPECT_EQ(r.control_bytes(), QuantizedHeightRouter::kAdvertiseBytes);
  r.inject(mk(2, 0, 2), m);
  r.end_step(m);
  EXPECT_EQ(r.control_bytes(), 2 * QuantizedHeightRouter::kAdvertiseBytes);
  r.end_step(m);  // no drift, no bytes
  EXPECT_EQ(r.control_bytes(), 2 * QuantizedHeightRouter::kAdvertiseBytes);
}

TEST(QuantizedRouter, RetirementCostsRetireBytes) {
  // Single edge so the one packet cannot oscillate: 0 -> 1 is a delivery.
  graph::Graph g(2);
  g.add_edge(0, 1, 1.0, 1.0);
  const auto costs = costs_of(g);
  QuantizedHeightRouter r(2, {0.5, 0.0, 16}, 1);
  route::RunMetrics m;
  r.inject(mk(1, 0, 1), m);
  r.end_step(m);  // advertise Q_{0,1} = 1
  const std::uint64_t after_adv = r.control_bytes();
  EXPECT_EQ(after_adv, QuantizedHeightRouter::kAdvertiseBytes);
  std::vector<PlannedTx> txs;
  const std::vector<graph::EdgeId> all{0};
  r.plan_into(g, all, costs, txs);
  ASSERT_EQ(txs.size(), 1U);
  r.execute(txs, {}, costs, 0, m);
  r.end_step(m);  // drained buffer: the advertisement is retired
  EXPECT_EQ(m.deliveries, 1U);
  EXPECT_EQ(r.control_messages(), 2U);  // one advertise + one retire
  EXPECT_EQ(r.control_bytes(), QuantizedHeightRouter::kAdvertiseBytes +
                                   QuantizedHeightRouter::kRetireBytes);
}

TEST(QuantizedRouter, PlanUsesStaleRemoteHeights) {
  const graph::Graph g = path3();
  // Quantum 8: node 1's height never gets advertised at these volumes.
  QuantizedHeightRouter r(3, {0.5, 0.0, 64}, 8);
  route::RunMetrics m;
  const auto costs = costs_of(g);
  // Preload node 1 with 3 packets for dest 2 (below quantum -> invisible).
  for (std::uint64_t i = 0; i < 3; ++i) r.inject(mk(i + 1, 1, 2), m);
  r.end_step(m);
  // Node 0 holds 2 packets for dest 2. True heights: h(0)=2, h(1)=3 — the
  // live rule would send 1 -> 0 with benefit 3 - 2 = 1. Under staleness both
  // remote views are 0, so the router sees benefit 2 for 0 -> 1 and benefit
  // 3 for 1 -> 0 and picks the latter — with the *stale* benefit 3, not the
  // live 1.
  r.inject(mk(10, 0, 2), m);
  r.inject(mk(11, 0, 2), m);
  const auto txs = r.plan(g, std::vector<graph::EdgeId>{0}, costs);
  ASSERT_EQ(txs.size(), 1U);
  EXPECT_EQ(txs[0].from, 1U);
  EXPECT_EQ(txs[0].to, 0U);
  EXPECT_DOUBLE_EQ(txs[0].benefit, 3.0);
}

TEST(QuantizedRouter, DrainedBufferAdvertisementIsWithdrawn) {
  const graph::Graph g = path3();
  QuantizedHeightRouter r(3, {0.0, 0.0, 16}, 1);
  route::RunMetrics m;
  const auto costs = costs_of(g);
  r.inject(mk(1, 0, 2), m);
  r.end_step(m);  // advertise height 1
  const auto msgs_after_fill = r.control_messages();
  // Move the packet out: node 0's buffer drains to zero.
  const auto txs = r.plan(g, std::vector<graph::EdgeId>{0}, costs);
  ASSERT_EQ(txs.size(), 1U);
  r.execute(txs, {}, costs, 1, m);
  r.end_step(m);
  // The withdrawal (height back to 0) costs one more control message, and
  // node 1's new height-1 buffer costs another.
  EXPECT_GE(r.control_messages(), msgs_after_fill + 2);
}

TEST(QuantizedRouter, EndToEndRunStaysConservative) {
  geom::Rng rng(81);
  topo::Deployment d;
  d.positions = topo::uniform_square(40, 1.0, rng);
  d.max_range = 0.5;
  d.kappa = 2.0;
  const graph::Graph topo = topo::build_transmission_graph(d);
  route::TraceParams tp;
  tp.horizon = 4000;
  tp.injections_per_step = 1.0;
  tp.max_schedule_slack = 16;
  tp.num_sources = 4;
  tp.num_destinations = 1;
  const auto trace = route::make_certified_trace(topo, tp, rng);
  const auto params = theorem31_params(trace.opt, 0.25);

  QuantizedHeightRouter r(topo.num_nodes(), params, 2);
  route::RunMetrics m;
  const auto costs = costs_of(topo);
  for (route::Time t = 0; t < 8000; ++t) {
    const auto& step = trace.steps[t % trace.horizon()];
    const auto txs = r.plan(topo, step.active, costs);
    r.execute(txs, {}, costs, t, m);
    if (t < trace.horizon())
      for (const auto& inj : step.injections) r.inject(inj.packet, m);
    r.end_step(m);
  }
  // Conservation with the inner router's accounting.
  EXPECT_EQ(m.injected_accepted,
            m.deliveries + r.packets_in_flight() + m.dropped_in_transit);
  EXPECT_GT(m.deliveries, 0U);
  EXPECT_GT(r.control_messages(), 0U);
}

}  // namespace
}  // namespace thetanet::core
