#include "core/local_protocol.h"

#include <gtest/gtest.h>

#include <numbers>

#include "geom/angles.h"
#include "topology/distributions.h"

namespace thetanet::core {
namespace {

constexpr double kPi = std::numbers::pi;

topo::Deployment make_deployment(std::size_t n, double range, std::uint64_t seed) {
  geom::Rng rng(seed);
  topo::Deployment d;
  d.positions = topo::uniform_square(n, 1.0, rng);
  d.max_range = range;
  d.kappa = 2.0;
  return d;
}

TEST(LocalProtocol, MatchesCentralizedConstruction) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    const topo::Deployment d = make_deployment(150, 0.3, seed);
    const ProtocolStats s = run_local_protocol(d, kPi / 6.0);
    EXPECT_TRUE(s.matches_centralized) << "seed " << seed;
    EXPECT_GT(s.edges, 0U);
  }
}

TEST(LocalProtocol, MessageComplexityIsLocal) {
  const std::size_t n = 200;
  const topo::Deployment d = make_deployment(n, 0.3, 9);
  const double theta = kPi / 6.0;
  const ProtocolStats s = run_local_protocol(d, theta);
  const auto sectors = static_cast<std::uint64_t>(geom::sector_count(theta));
  // Round 1: exactly one broadcast per node.
  EXPECT_EQ(s.position_msgs, n);
  // Rounds 2 and 3: at most one unicast per (node, sector).
  EXPECT_LE(s.neighborhood_msgs, n * sectors);
  EXPECT_LE(s.connection_msgs, n * sectors);
  // Phase-2 admissions can only shrink the phase-1 selection set.
  EXPECT_LE(s.connection_msgs, s.neighborhood_msgs);
  // Each edge required at least one connection message.
  EXPECT_LE(s.edges, s.connection_msgs);
}

TEST(LocalProtocol, SmallAndDegenerateInputs) {
  topo::Deployment d;
  d.max_range = 1.0;
  d.kappa = 2.0;
  // Two nodes in range: a single edge, 2 messages per round at most.
  d.positions = {{0, 0}, {0.5, 0}};
  ProtocolStats s = run_local_protocol(d, kPi / 6.0);
  EXPECT_TRUE(s.matches_centralized);
  EXPECT_EQ(s.edges, 1U);
  EXPECT_EQ(s.position_msgs, 2U);
  EXPECT_EQ(s.neighborhood_msgs, 2U);
  EXPECT_EQ(s.connection_msgs, 2U);
  // Out-of-range pair: empty topology.
  d.positions = {{0, 0}, {5, 0}};
  s = run_local_protocol(d, kPi / 6.0);
  EXPECT_TRUE(s.matches_centralized);
  EXPECT_EQ(s.edges, 0U);
  EXPECT_EQ(s.neighborhood_msgs, 0U);
}

TEST(LocalProtocol, AgreesAcrossThetaValues) {
  const topo::Deployment d = make_deployment(100, 0.35, 12);
  for (const double theta : {kPi / 3.0, kPi / 6.0, kPi / 12.0}) {
    const ProtocolStats s = run_local_protocol(d, theta);
    EXPECT_TRUE(s.matches_centralized) << "theta " << theta;
  }
}

}  // namespace
}  // namespace thetanet::core
