// Monte-Carlo validation of the technical geometry lemmas behind Theorem 2.2
// (Lemmas 2.3-2.6) and fixtures reproducing the proof's case analysis
// (Figures 1-4 of the paper). These are the paper's "figures" — proof
// illustrations — turned into executable checks.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <optional>

#include "geom/angles.h"
#include "geom/vec2.h"
#include "geom/rng.h"

namespace thetanet::core {
namespace {

using geom::Vec2;
constexpr double kPi = std::numbers::pi;

// Lemma 2.3: in triangle ABC with |AC| <= |BC| and angle ACB <= pi/3,
//   c*|AB|^2 + |AC|^2 <= c*|BC|^2   for c >= 1 / (2*cos(angle ACB) - 1).
TEST(ProofLemmas, Lemma23) {
  geom::Rng rng(23);
  int checked = 0;
  for (int i = 0; i < 200000 && checked < 20000; ++i) {
    const Vec2 c{0, 0};
    const Vec2 a{rng.uniform(0.1, 2.0), 0.0};
    const double ang = rng.uniform(0.0, kPi / 3.0 - 1e-6);
    const double rb = rng.uniform(geom::norm(a), 3.0);  // |BC| >= |AC|
    const Vec2 b = geom::rotated({rb, 0.0}, ang);
    const double cos_acb = std::cos(geom::interior_angle(c, a, b));
    if (2.0 * cos_acb - 1.0 <= 1e-9) continue;  // angle too close to pi/3
    const double cc = 1.0 / (2.0 * cos_acb - 1.0);
    const double lhs = cc * geom::dist_sq(a, b) + geom::dist_sq(a, c);
    const double rhs = cc * geom::dist_sq(b, c);
    ASSERT_LE(lhs, rhs + 1e-9 * rhs)
        << "AC=" << geom::norm(a) << " BC=" << rb << " ang=" << ang;
    ++checked;
  }
  EXPECT_GE(checked, 10000);
}

// Lemma 2.4: |BC| <= |AC| <= |AB| and angle BAC <= pi/6 implies
//   |BC| <= |AB| / (2*cos(angle BAC)).
TEST(ProofLemmas, Lemma24) {
  geom::Rng rng(24);
  int checked = 0;
  for (int i = 0; i < 200000 && checked < 20000; ++i) {
    // Triangle anchored at A = origin along the x-axis.
    const Vec2 b{rng.uniform(0.5, 2.0), 0.0};
    const double ang = rng.uniform(0.0, kPi / 6.0);
    const double rc = rng.uniform(0.0, geom::norm(b));  // |AC| <= |AB|
    const Vec2 cpt = geom::rotated({rc, 0.0}, ang);
    if (!(geom::dist(b, cpt) <= rc)) continue;  // require |BC| <= |AC|
    const double bound = geom::norm(b) / (2.0 * std::cos(ang));
    ASSERT_LE(geom::dist(b, cpt), bound + 1e-12) << "ang=" << ang;
    ++checked;
  }
  EXPECT_GE(checked, 1000);
}

// Lemma 2.5: points A_1..A_k with decreasing distance from A and consecutive
// angular gaps in [0, theta]; if the total angle is alpha then
//   sum |A_i A_{i+1}|^2 <= (|AA_1| - |AA_k|)^2 + 2|AA_1|^2 (alpha/theta)(1 - cos theta).
TEST(ProofLemmas, Lemma25) {
  geom::Rng rng(25);
  for (int trial = 0; trial < 5000; ++trial) {
    const double theta = rng.uniform(0.05, kPi / 3.0);
    const int k = static_cast<int>(rng.uniform_int(2, 12));
    double r = rng.uniform(0.5, 2.0);
    double phi = 0.0;
    std::vector<Vec2> pts;
    const double r1 = r;
    double alpha = 0.0;  // total angle spanned A_1 -> A_k (sum of ccw gaps)
    for (int i = 0; i < k; ++i) {
      pts.push_back(geom::rotated({r, 0.0}, phi));
      const double gap = rng.uniform(0.0, theta);
      if (i + 1 < k) alpha += gap;
      phi += gap;
      r *= rng.uniform(0.5, 1.0);  // non-increasing distances from A = origin
    }
    double lhs = 0.0;
    for (std::size_t i = 0; i + 1 < pts.size(); ++i)
      lhs += geom::dist_sq(pts[i], pts[i + 1]);
    const double rk = geom::norm(pts.back());
    const double rhs = (r1 - rk) * (r1 - rk) +
                       2.0 * r1 * r1 * (alpha / theta) * (1.0 - std::cos(theta));
    ASSERT_LE(lhs, rhs + 1e-9 + 1e-9 * rhs) << "trial " << trial;
  }
}

std::optional<Vec2> segment_circle_intersection_near(Vec2 from, Vec2 to,
                                                     Vec2 center, double r,
                                                     bool nearest_to_to) {
  // Solve |from + t*(to-from) - center|^2 = r^2 for t in [0, 1].
  const Vec2 d = to - from;
  const Vec2 f = from - center;
  const double aa = geom::dot(d, d);
  const double bb = 2.0 * geom::dot(f, d);
  const double cc = geom::dot(f, f) - r * r;
  const double disc = bb * bb - 4.0 * aa * cc;
  if (disc < 0.0 || aa == 0.0) return std::nullopt;
  const double sq = std::sqrt(disc);
  const double t1 = (-bb - sq) / (2.0 * aa);
  const double t2 = (-bb + sq) / (2.0 * aa);
  std::optional<double> best;
  for (const double t : {t1, t2}) {
    if (t < -1e-12 || t > 1.0 + 1e-12) continue;
    if (!best || (nearest_to_to ? t > *best : t < *best)) best = t;
  }
  if (!best) return std::nullopt;
  return from + *best * d;
}

// Lemma 2.6 (Figure setup): A, B; O the midpoint; D with |BD| = |AB| and
// angle DBA = pi/6; C outside circle C(O,|OA|) with |AC| <= |AB|, angle
// CAB < pi/12, C and D on the same side of (A,B). E = intersection of
// segment (C,D) with the circle. Then angle EAB <= 2 * angle CAB.
TEST(ProofLemmas, Lemma26) {
  geom::Rng rng(26);
  int checked = 0;
  for (int i = 0; i < 400000 && checked < 5000; ++i) {
    const Vec2 a{0, 0}, b{1, 0};
    const Vec2 o = geom::midpoint(a, b);
    const double r = 0.5;
    // D above the x-axis: rotate A around B by -pi/6 scaled to |BD| = |AB|.
    const Vec2 d_pt = b + geom::rotated(a - b, -kPi / 6.0);
    ASSERT_GT(d_pt.y, 0.0);
    // Random C above the axis satisfying the preconditions.
    const double ang = rng.uniform(0.0, kPi / 12.0 - 1e-9);
    const double rc = rng.uniform(0.0, 1.0);  // |AC| <= |AB| = 1
    const Vec2 c_pt = geom::rotated({rc, 0.0}, ang);
    if (geom::dist(c_pt, o) <= r) continue;  // must be outside the circle
    const auto e =
        segment_circle_intersection_near(c_pt, d_pt, o, r, /*to D*/ false);
    if (!e) continue;  // segment misses the circle; lemma precondition void
    const double ang_eab = geom::interior_angle(a, *e, b);
    ASSERT_LE(ang_eab, 2.0 * ang + 1e-9)
        << "C=(" << c_pt.x << "," << c_pt.y << ") ang=" << ang;
    ++checked;
  }
  EXPECT_GE(checked, 1000);
}

// Figure-1/2 fixture: the Case-1 geometry of Theorem 2.2's proof — when u
// selects v but the edge is displaced by a nearer selector w in S(v, u),
// the detour (u..w) + (w, v) is energy-bounded: c|uw|^2 + |wv|^2 <= c|uv|^2
// via Lemma 2.3 with the roles (A,B,C) = (w, u, v).
TEST(ProofCases, Case1DetourIsEnergyBounded) {
  geom::Rng rng(27);
  const double theta = kPi / 9.0;
  const double c = 1.0 / (2.0 * std::cos(theta) - 1.0);
  for (int trial = 0; trial < 20000; ++trial) {
    const Vec2 v{0, 0};
    const Vec2 u{rng.uniform(0.2, 1.0), 0.0};
    // w in the sector of v containing u (angle <= theta) and |vw| <= |vu|.
    const double ang = rng.uniform(0.0, theta);
    const double rw = rng.uniform(0.0, geom::norm(u));
    const Vec2 w = geom::rotated({rw, 0.0}, ang);
    const double lhs = c * geom::dist_sq(u, w) + geom::dist_sq(w, v);
    const double rhs = c * geom::dist_sq(u, v);
    ASSERT_LE(lhs, rhs + 1e-9 * std::max(1.0, rhs)) << "trial " << trial;
  }
}

}  // namespace
}  // namespace thetanet::core
