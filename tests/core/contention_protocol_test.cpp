#include "core/contention_protocol.h"

#include <gtest/gtest.h>

#include <numbers>

#include "topology/distributions.h"

namespace thetanet::core {
namespace {

constexpr double kPi = std::numbers::pi;

topo::Deployment make_deployment(std::size_t n, double range,
                                 std::uint64_t seed) {
  geom::Rng rng(seed);
  topo::Deployment d;
  d.positions = topo::uniform_square(n, 1.0, rng);
  d.max_range = range;
  d.kappa = 2.0;
  return d;
}

TEST(ContentionProtocol, CompletesAndMatchesCentralized) {
  const topo::Deployment d = make_deployment(80, 0.3, 1);
  geom::Rng rng(2);
  const ContentionStats s =
      run_contention_protocol(d, kPi / 6.0, /*p=*/0.05, rng);
  EXPECT_TRUE(s.matches_centralized);
  EXPECT_GT(s.slots_round1, 0U);
  EXPECT_GT(s.slots_round2, 0U);
  EXPECT_GT(s.slots_round3, 0U);
  EXPECT_GT(s.transmissions, 0U);
}

TEST(ContentionProtocol, CollisionsActuallyHappen) {
  // At aggressive p in a dense network, receiver-side collisions must be
  // observed (that is the phenomenon the paper's remark is about).
  const topo::Deployment d = make_deployment(100, 0.4, 3);
  geom::Rng rng(4);
  const ContentionStats s = run_contention_protocol(d, kPi / 6.0, 0.5, rng);
  EXPECT_GT(s.collisions, 0U);
}

TEST(ContentionProtocol, ModerateVsAggressiveProbability) {
  // p near 1 in a dense neighbourhood collides constantly and takes longer
  // than a moderate p (the classic ALOHA throughput curve).
  const topo::Deployment d = make_deployment(90, 0.4, 5);
  geom::Rng rng_a(6), rng_b(6);
  const ContentionStats mod =
      run_contention_protocol(d, kPi / 6.0, 0.05, rng_a);
  const ContentionStats agg =
      run_contention_protocol(d, kPi / 6.0, 0.9, rng_b, 400000);
  ASSERT_TRUE(mod.matches_centralized);
  if (agg.matches_centralized) {
    EXPECT_GT(agg.total_slots(), mod.total_slots());
  } else {
    SUCCEED() << "aggressive p failed to complete within the cap";
  }
}

TEST(ContentionProtocol, TruncationIsReported) {
  const topo::Deployment d = make_deployment(60, 0.4, 7);
  geom::Rng rng(8);
  const ContentionStats s = run_contention_protocol(d, kPi / 6.0, 0.05, rng,
                                                    /*max_slots_per_round=*/1);
  EXPECT_FALSE(s.matches_centralized);
}

TEST(ContentionProtocol, TrivialDeployments) {
  topo::Deployment d;
  d.max_range = 1.0;
  d.kappa = 2.0;
  geom::Rng rng(9);
  EXPECT_TRUE(run_contention_protocol(d, kPi / 6.0, 0.1, rng)
                  .matches_centralized);
  d.positions = {{0, 0}};
  EXPECT_TRUE(run_contention_protocol(d, kPi / 6.0, 0.1, rng)
                  .matches_centralized);
  // Two isolated nodes: no messages to deliver, rounds are empty.
  d.positions = {{0, 0}, {5, 5}};
  const ContentionStats s = run_contention_protocol(d, kPi / 6.0, 0.1, rng);
  EXPECT_TRUE(s.matches_centralized);
  EXPECT_EQ(s.transmissions, 0U);
}

}  // namespace
}  // namespace thetanet::core
