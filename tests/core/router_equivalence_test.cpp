// Oracle equivalence for the SoA routing hot path: the production
// BalancingRouter (dense plan, sparse active-node plan, parallel edge scan)
// must plan the exact same transmissions, round for round, as the
// brute-force map-based ReferenceRouter — across workloads, gamma settings
// and TN_NUM_THREADS in {1, 2, 4} (the PR 1 bit-identity contract).

#include <gtest/gtest.h>

#include <vector>

#include "common/parallel.h"
#include "core/balancing_router.h"
#include "geom/rng.h"
#include "routing/injection.h"
#include "routing/reference_router.h"

namespace thetanet::core {
namespace {

graph::Graph random_graph(std::size_t n, double p, geom::Rng& rng) {
  graph::Graph g(n);
  for (graph::NodeId u = 0; u < n; ++u)
    for (graph::NodeId v = u + 1; v < n; ++v)
      if (rng.bernoulli(p)) {
        const double len = rng.uniform(0.1, 1.0);
        g.add_edge(u, v, len, len * len);
      }
  return g;
}

std::vector<double> costs_of(const graph::Graph& g) {
  std::vector<double> costs(g.num_edges());
  for (graph::EdgeId e = 0; e < costs.size(); ++e) costs[e] = g.edge(e).cost;
  return costs;
}

struct Workload {
  const char* name;
  route::InjectionSpec spec;
  BalancingParams params;
};

struct FastResult {
  std::vector<PlannedTx> txs;  // concatenated over all rounds
  route::RunMetrics m;
};

FastResult run_fast(const graph::Graph& g, std::span<const double> costs,
                    const Workload& w, route::Time rounds, bool sparse) {
  BalancingRouter router(g.num_nodes(), w.params);
  route::InjectionEngine engine(g, w.spec);
  FastResult r;
  std::vector<graph::EdgeId> all(g.num_edges());
  for (graph::EdgeId e = 0; e < all.size(); ++e) all[e] = e;
  std::vector<PlannedTx> txs;
  std::vector<route::Packet> arrivals;
  const std::vector<bool> no_failures;
  for (route::Time t = 0; t < rounds; ++t) {
    if (sparse) {
      router.plan_all_edges_into(g, costs, txs);
    } else {
      router.plan_into(g, all, costs, txs);
    }
    router.execute(txs, no_failures, costs, t, r.m);
    engine.step(t, r.m, arrivals);
    for (const route::Packet& p : arrivals) router.inject(p, r.m);
    router.end_step(r.m);
    r.txs.insert(r.txs.end(), txs.begin(), txs.end());
  }
  r.m.leftover_packets = router.packets_in_flight();
  return r;
}

struct RefResult {
  std::vector<route::ReferenceTx> txs;
  route::RunMetrics m;
};

RefResult run_reference(const graph::Graph& g, std::span<const double> costs,
                        const Workload& w, route::Time rounds) {
  route::ReferenceRouter router(g.num_nodes(), w.params.threshold,
                                w.params.gamma, w.params.max_height);
  route::InjectionEngine engine(g, w.spec);
  RefResult r;
  std::vector<graph::EdgeId> all(g.num_edges());
  for (graph::EdgeId e = 0; e < all.size(); ++e) all[e] = e;
  std::vector<route::Packet> arrivals;
  const std::vector<bool> no_failures;
  for (route::Time t = 0; t < rounds; ++t) {
    const std::vector<route::ReferenceTx> txs = router.plan(g, all, costs);
    router.execute(txs, no_failures, costs, t, r.m);
    engine.step(t, r.m, arrivals);
    for (const route::Packet& p : arrivals) router.inject(p, r.m);
    router.end_step(r.m);
    r.txs.insert(r.txs.end(), txs.begin(), txs.end());
  }
  r.m.leftover_packets = router.packets_in_flight();
  return r;
}

void expect_same_plan(const std::vector<route::ReferenceTx>& ref,
                      const std::vector<PlannedTx>& fast) {
  ASSERT_EQ(ref.size(), fast.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i].edge, fast[i].edge) << "tx " << i;
    EXPECT_EQ(ref[i].from, fast[i].from) << "tx " << i;
    EXPECT_EQ(ref[i].to, fast[i].to) << "tx " << i;
    EXPECT_EQ(ref[i].dest, fast[i].dest) << "tx " << i;
    EXPECT_EQ(ref[i].benefit, fast[i].benefit) << "tx " << i;  // bit-exact
  }
}

void expect_identical(const FastResult& a, const FastResult& b) {
  ASSERT_EQ(a.txs.size(), b.txs.size());
  for (std::size_t i = 0; i < a.txs.size(); ++i) {
    EXPECT_EQ(a.txs[i].edge, b.txs[i].edge) << "tx " << i;
    EXPECT_EQ(a.txs[i].from, b.txs[i].from) << "tx " << i;
    EXPECT_EQ(a.txs[i].dest, b.txs[i].dest) << "tx " << i;
    EXPECT_EQ(a.txs[i].benefit, b.txs[i].benefit) << "tx " << i;
  }
  EXPECT_EQ(a.m.deliveries, b.m.deliveries);
  EXPECT_EQ(a.m.attempted_tx, b.m.attempted_tx);
  EXPECT_EQ(a.m.injected_accepted, b.m.injected_accepted);
  EXPECT_EQ(a.m.leftover_packets, b.m.leftover_packets);
  EXPECT_EQ(a.m.peak_buffer, b.m.peak_buffer);
  EXPECT_EQ(a.m.total_energy, b.m.total_energy);  // same accumulation order
}

void expect_same_metrics(const route::RunMetrics& ref,
                         const route::RunMetrics& fast) {
  EXPECT_EQ(ref.injected_offered, fast.injected_offered);
  EXPECT_EQ(ref.injected_accepted, fast.injected_accepted);
  EXPECT_EQ(ref.dropped_at_injection, fast.dropped_at_injection);
  EXPECT_EQ(ref.deliveries, fast.deliveries);
  EXPECT_EQ(ref.total_hops_delivered, fast.total_hops_delivered);
  EXPECT_EQ(ref.sum_latency, fast.sum_latency);
  EXPECT_EQ(ref.delivered_cost, fast.delivered_cost);
  EXPECT_EQ(ref.total_energy, fast.total_energy);
  EXPECT_EQ(ref.attempted_tx, fast.attempted_tx);
  EXPECT_EQ(ref.skipped_tx, fast.skipped_tx);
  EXPECT_EQ(ref.dropped_in_transit, fast.dropped_in_transit);
  EXPECT_EQ(ref.peak_buffer, fast.peak_buffer);
  EXPECT_EQ(ref.leftover_packets, fast.leftover_packets);
}

std::vector<Workload> workloads() {
  std::vector<Workload> ws;
  {
    Workload w{"poisson", {}, {0.5, 0.0, 8}};
    w.spec.process = route::InjectionSpec::Process::kPoisson;
    w.spec.rate = 3.0;
    w.spec.seed = 11;
    ws.push_back(w);
  }
  {
    Workload w{"hotspot_gamma", {}, {1.0, 0.8, 6}};
    w.spec.process = route::InjectionSpec::Process::kHotspot;
    w.spec.rate = 4.0;
    w.spec.num_destinations = 3;
    w.spec.seed = 12;
    ws.push_back(w);
  }
  {
    Workload w{"bursty_closed", {}, {0.5, 0.2, 4}};
    w.spec.process = route::InjectionSpec::Process::kBursty;
    w.spec.rate = 2.0;
    w.spec.burst_len = 16;
    w.spec.gap_len = 48;
    w.spec.window = 64;
    w.spec.seed = 13;
    ws.push_back(w);
  }
  {
    Workload w{"adversarial", {}, {1.0, 0.0, 8}};
    w.spec.process = route::InjectionSpec::Process::kAdversarialCut;
    w.spec.rate = 0.4;
    w.spec.seed = 14;
    ws.push_back(w);
  }
  return ws;
}

TEST(RouterEquivalence, SmallGraphOracleAndThreads) {
  geom::Rng rng(0x5eed);
  const graph::Graph g = random_graph(48, 0.25, rng);
  const std::vector<double> costs = costs_of(g);
  constexpr route::Time kRounds = 300;
  const int saved = tn::num_threads();
  for (const Workload& w : workloads()) {
    SCOPED_TRACE(w.name);
    const RefResult ref = run_reference(g, costs, w, kRounds);
    FastResult base;
    bool have_base = false;
    for (const int threads : {1, 2, 4}) {
      SCOPED_TRACE(threads);
      tn::set_num_threads(threads);
      const FastResult dense = run_fast(g, costs, w, kRounds, false);
      const FastResult sparse = run_fast(g, costs, w, kRounds, true);
      expect_same_plan(ref.txs, dense.txs);
      expect_same_metrics(ref.m, dense.m);
      expect_identical(dense, sparse);
      if (!have_base) {
        base = dense;
        have_base = true;
      } else {
        expect_identical(base, dense);
      }
    }
  }
  tn::set_num_threads(saved);
}

// Dense enough that plan_into's edge scan actually crosses the parallel
// threshold (>= 4096 active edges), so the multi-thread runs exercise the
// pool rather than the serial fallback.
TEST(RouterEquivalence, ParallelPlanPathBitIdentical) {
  geom::Rng rng(0xfeed);
  const graph::Graph g = random_graph(160, 0.45, rng);
  ASSERT_GE(g.num_edges(), 4096U);
  const std::vector<double> costs = costs_of(g);
  constexpr route::Time kRounds = 60;
  Workload w{"poisson_dense", {}, {0.5, 0.1, 6}};
  w.spec.process = route::InjectionSpec::Process::kPoisson;
  w.spec.rate = 24.0;
  w.spec.seed = 21;

  const int saved = tn::num_threads();
  const RefResult ref = run_reference(g, costs, w, kRounds);
  FastResult base;
  bool have_base = false;
  for (const int threads : {1, 2, 4}) {
    SCOPED_TRACE(threads);
    tn::set_num_threads(threads);
    const FastResult dense = run_fast(g, costs, w, kRounds, false);
    const FastResult sparse = run_fast(g, costs, w, kRounds, true);
    expect_same_plan(ref.txs, dense.txs);
    expect_same_metrics(ref.m, dense.m);
    expect_identical(dense, sparse);
    if (!have_base) {
      base = dense;
      have_base = true;
    } else {
      expect_identical(base, dense);
    }
  }
  tn::set_num_threads(saved);
}

}  // namespace
}  // namespace thetanet::core
