// Property suite for the theta-path machinery across generators and theta
// values: every transmission-graph edge must map to a valid N path whose
// energy stays within the Theorem 2.2 constant, and random non-interfering
// matchings must respect Lemma 2.9's reuse bound.

#include <gtest/gtest.h>

#include <numbers>
#include <tuple>

#include "core/theta_topology.h"
#include "graph/connectivity.h"
#include "interference/model.h"
#include "topology/distributions.h"
#include "topology/transmission_graph.h"

namespace thetanet::core {
namespace {

constexpr double kPi = std::numbers::pi;

topo::Deployment make(int gen, std::size_t n, geom::Rng& rng) {
  topo::Deployment d;
  d.kappa = 2.0;
  switch (gen) {
    case 0:
      d.positions = topo::uniform_square(n, 1.0, rng);
      d.max_range = 0.3;
      break;
    case 1:
      d.positions = topo::clustered(n, 5, 0.05, 1.0, rng);
      d.max_range = 0.4;
      break;
    case 2:
      d.positions = topo::hub_ring(n, 0.5, rng);
      d.max_range = 0.8;
      break;
    default:
      d.positions = topo::nested_clusters(n, 3, 6.0, 1.0, rng);
      d.max_range = 2.0;
      break;
  }
  return d;
}

class ReplacementPathProperty
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(ReplacementPathProperty, AllGStarEdgesHaveValidPaths) {
  const auto [gen, theta] = GetParam();
  geom::Rng rng(4000 + static_cast<std::uint64_t>(gen));
  const topo::Deployment d = make(gen, 100, rng);
  const graph::Graph gstar = topo::build_transmission_graph(d);
  const ThetaTopology tt(d, theta);
  for (graph::EdgeId e = 0; e < gstar.num_edges(); e += 3) {
    const graph::Edge& ge = gstar.edge(e);
    const auto path = tt.replacement_path(ge.u, ge.v);
    ASSERT_FALSE(path.empty());
    graph::NodeId at = ge.u;
    double energy = 0.0;
    for (const graph::EdgeId pe : path) {
      const graph::Edge& ne = tt.graph().edge(pe);
      ASSERT_TRUE(ne.u == at || ne.v == at);
      at = ne.other(at);
      energy += ne.cost;
      // Every hop respects the transmission range.
      ASSERT_LE(ne.length, d.max_range + 1e-12);
    }
    ASSERT_EQ(at, ge.v);
    // Theorem 2.2 constant: generous fixed ceiling.
    EXPECT_LE(energy, 8.0 * ge.cost + 1e-12) << "edge " << e;
  }
}

TEST_P(ReplacementPathProperty, ReuseBoundHolds) {
  const auto [gen, theta] = GetParam();
  geom::Rng rng(5000 + static_cast<std::uint64_t>(gen));
  const topo::Deployment d = make(gen, 120, rng);
  const graph::Graph gstar = topo::build_transmission_graph(d);
  const ThetaTopology tt(d, theta);
  const interf::InterferenceModel m{0.25};
  // Greedy maximal non-interfering matching in random order.
  std::vector<graph::EdgeId> order(gstar.num_edges());
  for (graph::EdgeId e = 0; e < order.size(); ++e) order[e] = e;
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng.uniform_index(i)]);
  std::vector<std::pair<graph::NodeId, graph::NodeId>> matching;
  std::vector<graph::EdgeId> chosen;
  for (const graph::EdgeId e : order) {
    const graph::Edge& ge = gstar.edge(e);
    bool ok = true;
    for (const graph::EdgeId f : chosen) {
      const graph::Edge& fe = gstar.edge(f);
      if (m.in_interference_set(d.positions[ge.u], d.positions[ge.v],
                                d.positions[fe.u], d.positions[fe.v])) {
        ok = false;
        break;
      }
    }
    if (ok) {
      chosen.push_back(e);
      matching.push_back({ge.u, ge.v});
    }
  }
  if (matching.empty()) GTEST_SKIP();
  EXPECT_LE(tt.max_replacement_reuse(matching), 6U);
}

INSTANTIATE_TEST_SUITE_P(
    GeneratorsAndThetas, ReplacementPathProperty,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::Values(kPi / 6.0, kPi / 12.0)));

}  // namespace
}  // namespace thetanet::core
