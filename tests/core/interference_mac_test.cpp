#include "core/interference_mac.h"

#include <gtest/gtest.h>

#include <numbers>

#include "core/theta_topology.h"
#include "topology/distributions.h"

namespace thetanet::core {
namespace {

struct MacFixture {
  topo::Deployment d;
  graph::Graph topo;
  interf::InterferenceModel model{1.0};

  explicit MacFixture(std::uint64_t seed, std::size_t n = 150,
                      double range = 0.18) {
    geom::Rng rng(seed);
    d.positions = topo::uniform_square(n, 1.0, rng);
    d.max_range = range;
    d.kappa = 2.0;
    topo = ThetaTopology(d, std::numbers::pi / 6.0).graph();
  }
};

TEST(RandomizedMac, BoundsDominatePerEdgeSetSizes) {
  const MacFixture f(71);
  const RandomizedMac mac(f.topo, f.d, f.model);
  const auto sets = interf::interference_sets(f.topo, f.d, f.model);
  std::uint32_t max_size = 0;
  for (graph::EdgeId e = 0; e < f.topo.num_edges(); ++e) {
    // I_e >= |I(e')| for every e' in I(e) (and >= |I(e)| itself via e in
    // I(e')); in particular I_e >= |I(e)|.
    const double p = mac.activation_prob(e);
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, 0.5);
    EXPECT_LE(sets[e].size(), 1.0 / (2.0 * p) + 1e-9);
    max_size = std::max(max_size, static_cast<std::uint32_t>(sets[e].size()));
  }
  EXPECT_GE(mac.interference_bound(), max_size);
}

TEST(RandomizedMac, ActivationFrequencyMatchesProbability) {
  const MacFixture f(72, 80, 0.22);
  const RandomizedMac mac(f.topo, f.d, f.model);
  ASSERT_GT(f.topo.num_edges(), 0U);
  geom::Rng rng(99);
  std::vector<std::size_t> activations(f.topo.num_edges(), 0);
  const int rounds = 20000;
  for (int i = 0; i < rounds; ++i)
    for (const graph::EdgeId e : mac.activate(rng)) ++activations[e];
  for (graph::EdgeId e = 0; e < f.topo.num_edges(); e += 5) {
    const double expected = mac.activation_prob(e);
    const double observed =
        static_cast<double>(activations[e]) / static_cast<double>(rounds);
    EXPECT_NEAR(observed, expected, 5.0 * std::sqrt(expected / rounds) + 1e-3)
        << "edge " << e;
  }
}

// Lemma 3.2: an active edge interferes with other *active* edges with
// probability at most 1/2.
TEST(RandomizedMac, Lemma32CollisionProbabilityAtMostHalf) {
  const MacFixture f(73);
  const RandomizedMac mac(f.topo, f.d, f.model);
  const auto sets = interf::interference_sets(f.topo, f.d, f.model);
  geom::Rng rng(7);
  std::vector<std::size_t> active_count(f.topo.num_edges(), 0);
  std::vector<std::size_t> collided(f.topo.num_edges(), 0);
  const int rounds = 30000;
  std::vector<bool> is_active(f.topo.num_edges());
  for (int round = 0; round < rounds; ++round) {
    const auto active = mac.activate(rng);
    std::fill(is_active.begin(), is_active.end(), false);
    for (const graph::EdgeId e : active) is_active[e] = true;
    for (const graph::EdgeId e : active) {
      ++active_count[e];
      for (const graph::EdgeId ep : sets[e])
        if (is_active[ep]) {
          ++collided[e];
          break;
        }
    }
  }
  // Aggregate check (per-edge samples are small for rarely-active edges).
  std::size_t total_active = 0, total_collided = 0;
  for (graph::EdgeId e = 0; e < f.topo.num_edges(); ++e) {
    total_active += active_count[e];
    total_collided += collided[e];
    if (active_count[e] >= 200) {
      EXPECT_LE(static_cast<double>(collided[e]) /
                    static_cast<double>(active_count[e]),
                0.55)
          << "edge " << e;
    }
  }
  ASSERT_GT(total_active, 0U);
  EXPECT_LE(static_cast<double>(total_collided) /
                static_cast<double>(total_active),
            0.5);
}

TEST(RandomizedMac, ResolveFlagsInterferingPlannedTransmissions) {
  topo::Deployment d;
  d.positions = {{0, 0}, {0.5, 0}, {0.7, 0}, {1.2, 0}, {10, 0}, {10.5, 0}};
  d.max_range = 0.6;
  d.kappa = 2.0;
  graph::Graph g(6);
  g.add_edge(0, 1, 0.5, 0.25);
  g.add_edge(2, 3, 0.5, 0.25);
  g.add_edge(4, 5, 0.5, 0.25);
  const RandomizedMac mac(g, d, interf::InterferenceModel{1.0});
  std::vector<PlannedTx> txs(3);
  txs[0] = {0, 0, 1, 5, 1.0};
  txs[1] = {1, 2, 3, 5, 1.0};
  txs[2] = {2, 4, 5, 0, 1.0};
  const auto failed = mac.resolve(txs);
  EXPECT_TRUE(failed[0]);   // edges 0 and 1 are 0.2 apart: mutual kill
  EXPECT_TRUE(failed[1]);
  EXPECT_FALSE(failed[2]);  // edge 2 is 9 units away
}

TEST(SlottedAloha, ActivationFrequencyMatchesP) {
  const MacFixture f(74, 60, 0.25);
  const SlottedAlohaMac mac(f.topo, f.d, f.model, 0.1);
  geom::Rng rng(1);
  std::size_t total = 0;
  const int rounds = 20000;
  for (int i = 0; i < rounds; ++i) total += mac.activate(rng).size();
  const double per_edge = static_cast<double>(total) /
                          (static_cast<double>(rounds) *
                           static_cast<double>(f.topo.num_edges()));
  EXPECT_NEAR(per_edge, 0.1, 0.01);
}

TEST(SlottedAloha, ResolveUsesSameInterferenceModel) {
  const MacFixture f(75, 60, 0.25);
  const SlottedAlohaMac amac(f.topo, f.d, f.model, 0.5);
  const RandomizedMac imac(f.topo, f.d, f.model);
  // Same planned transmissions must fail identically under both MACs (the
  // collision physics is shared; only activation policy differs).
  std::vector<PlannedTx> txs;
  for (graph::EdgeId e = 0;
       e < std::min<graph::EdgeId>(
               10, static_cast<graph::EdgeId>(f.topo.num_edges()));
       ++e)
    txs.push_back({e, f.topo.edge(e).u, f.topo.edge(e).v, 0, 1.0});
  EXPECT_EQ(amac.resolve(txs), imac.resolve(txs));
}

TEST(SlottedAloha, FullProbabilityActivatesEverything) {
  const MacFixture f(76, 40, 0.3);
  const SlottedAlohaMac mac(f.topo, f.d, f.model, 1.0);
  geom::Rng rng(2);
  EXPECT_EQ(mac.activate(rng).size(), f.topo.num_edges());
}

TEST(RandomizedMac, DegenerateSingleEdge) {
  topo::Deployment d;
  d.positions = {{0, 0}, {0.5, 0}};
  d.max_range = 1.0;
  d.kappa = 2.0;
  graph::Graph g(2);
  g.add_edge(0, 1, 0.5, 0.25);
  const RandomizedMac mac(g, d, interf::InterferenceModel{1.0});
  EXPECT_EQ(mac.interference_bound(), 1U);  // floor of 1, never divides by 0
  EXPECT_DOUBLE_EQ(mac.activation_prob(0), 0.5);
}

}  // namespace
}  // namespace thetanet::core
