#include "core/theta_maintenance.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numbers>
#include <thread>
#include <tuple>
#include <vector>

#include "common/parallel.h"
#include "graph/connectivity.h"
#include "sim/mobility.h"
#include "topology/distributions.h"
#include "topology/transmission_graph.h"
#include "verify/invariants.h"

namespace thetanet::core {
namespace {

constexpr double kTheta = std::numbers::pi / 9.0;

topo::Deployment make_deployment(std::size_t n, double range,
                                 std::uint64_t seed) {
  geom::Rng rng(seed);
  topo::Deployment d;
  d.positions = topo::uniform_square(n, 1.0, rng);
  d.max_range = range;
  d.kappa = 2.0;
  return d;
}

TEST(ThetaMaintainer, InitialStateMatchesFullBuild) {
  const topo::Deployment d = make_deployment(100, 0.3, 1);
  const ThetaMaintainer maintainer(d, kTheta);
  EXPECT_TRUE(maintainer.matches_full_rebuild());
  const ThetaTopology fresh(d, kTheta);
  EXPECT_EQ(maintainer.graph().num_edges(), fresh.graph().num_edges());
}

TEST(ThetaMaintainer, SingleMovesStayCorrect) {
  ThetaMaintainer maintainer(make_deployment(120, 0.3, 2), kTheta);
  geom::Rng rng(3);
  for (int move = 0; move < 30; ++move) {
    const auto v = static_cast<graph::NodeId>(rng.uniform_index(120));
    const geom::Vec2 p{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)};
    maintainer.move_node(v, p);
    ASSERT_TRUE(maintainer.matches_full_rebuild()) << "move " << move;
  }
}

TEST(ThetaMaintainer, SmallMovesTouchOnlyTheNeighbourhood) {
  const std::size_t n = 400;
  ThetaMaintainer maintainer(make_deployment(n, 0.15, 4), kTheta);
  geom::Rng rng(5);
  for (int move = 0; move < 10; ++move) {
    const auto v = static_cast<graph::NodeId>(rng.uniform_index(n));
    // Nudge within a fraction of the range: the affected set is ~ one
    // neighbourhood, far below n.
    geom::Vec2 p = maintainer.deployment().positions[v];
    p.x = std::clamp(p.x + rng.uniform(-0.03, 0.03), 0.0, 1.0);
    p.y = std::clamp(p.y + rng.uniform(-0.03, 0.03), 0.0, 1.0);
    const std::size_t touched = maintainer.move_node(v, p);
    EXPECT_LT(touched, n / 4) << "move " << move;
    ASSERT_TRUE(maintainer.matches_full_rebuild());
  }
}

TEST(ThetaMaintainer, LongJumpStillCorrect) {
  ThetaMaintainer maintainer(make_deployment(150, 0.25, 6), kTheta);
  // Teleport a node across the arena (old and new neighbourhoods disjoint).
  maintainer.move_node(7, {0.98, 0.97});
  EXPECT_TRUE(maintainer.matches_full_rebuild());
  maintainer.move_node(7, {0.02, 0.01});
  EXPECT_TRUE(maintainer.matches_full_rebuild());
}

TEST(ThetaMaintainer, SustainedMobilityEpoch) {
  // A random-waypoint burst of moves, applied one node at a time, must end
  // in exactly the topology a full rebuild of the final deployment gives.
  const std::size_t n = 80;
  ThetaMaintainer maintainer(make_deployment(n, 0.3, 7), kTheta);
  geom::Rng rng(8);
  for (int step = 0; step < 100; ++step) {
    const auto v = static_cast<graph::NodeId>(rng.uniform_index(n));
    geom::Vec2 p = maintainer.deployment().positions[v];
    p.x = std::clamp(p.x + rng.normal(0.0, 0.02), 0.0, 1.0);
    p.y = std::clamp(p.y + rng.normal(0.0, 0.02), 0.0, 1.0);
    maintainer.move_node(v, p);
  }
  EXPECT_TRUE(maintainer.matches_full_rebuild());
  EXPECT_TRUE(graph::is_connected(maintainer.graph()));
}

// --- Direct incremental-vs-from-scratch equivalence ------------------------
// The tests above trust the class's own matches_full_rebuild() audit; these
// compare the maintained graph edge-by-edge against an independently
// constructed ThetaTopology, so a bug in the audit itself cannot hide one in
// the maintenance.

using EdgeKey = std::tuple<graph::NodeId, graph::NodeId, double, double>;

std::vector<EdgeKey> edge_keys(const graph::Graph& g) {
  std::vector<EdgeKey> keys;
  keys.reserve(g.num_edges());
  for (const graph::Edge& e : g.edges())
    keys.emplace_back(std::min(e.u, e.v), std::max(e.u, e.v), e.length,
                      e.cost);
  std::sort(keys.begin(), keys.end());
  return keys;
}

TEST(ThetaMaintainerDirect, EdgeSetMatchesFreshTopologyAfterMoves) {
  const std::size_t n = 90;
  ThetaMaintainer maintainer(make_deployment(n, 0.3, 11), kTheta);
  geom::Rng rng(12);
  for (int move = 0; move < 25; ++move) {
    const auto v = static_cast<graph::NodeId>(rng.uniform_index(n));
    const geom::Vec2 p{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)};
    maintainer.move_node(v, p);
    const ThetaTopology fresh(maintainer.deployment(), kTheta);
    ASSERT_EQ(edge_keys(maintainer.graph()), edge_keys(fresh.graph()))
        << "divergence after move " << move;
  }
}

TEST(ThetaMaintainerDirect, AuditAgreesWithDirectComparison) {
  const std::size_t n = 70;
  ThetaMaintainer maintainer(make_deployment(n, 0.35, 13), kTheta);
  geom::Rng rng(14);
  for (int move = 0; move < 20; ++move) {
    const auto v = static_cast<graph::NodeId>(rng.uniform_index(n));
    geom::Vec2 p = maintainer.deployment().positions[v];
    p.x = std::clamp(p.x + rng.normal(0.0, 0.05), 0.0, 1.0);
    p.y = std::clamp(p.y + rng.normal(0.0, 0.05), 0.0, 1.0);
    maintainer.move_node(v, p);
    const ThetaTopology fresh(maintainer.deployment(), kTheta);
    const bool direct_equal =
        edge_keys(maintainer.graph()) == edge_keys(fresh.graph());
    ASSERT_EQ(maintainer.matches_full_rebuild(), direct_equal)
        << "audit disagrees with the direct comparison after move " << move;
    ASSERT_TRUE(direct_equal);
  }
}

TEST(ThetaMaintainerDirect, MaintainedGraphPassesPaperInvariants) {
  const std::size_t n = 60;
  ThetaMaintainer maintainer(make_deployment(n, 0.35, 15), kTheta);
  geom::Rng rng(16);
  for (int move = 0; move < 12; ++move) {
    const auto v = static_cast<graph::NodeId>(rng.uniform_index(n));
    maintainer.move_node(v, {rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)});
  }
  // The maintained topology must satisfy Lemma 2.1 for the *current*
  // deployment, checked through the conformance layer.
  const topo::Deployment& d = maintainer.deployment();
  const graph::Graph gstar = topo::build_transmission_graph(d);
  const verify::CheckReport r =
      verify::check_theta_invariants(maintainer.graph(), d, kTheta, gstar);
  EXPECT_TRUE(r.pass()) << r.to_string();
}

// --- Membership churn -------------------------------------------------------
// Joins, departures, crashes, and sleep/wake flips must leave the maintained
// overlay edge-identical to a from-scratch ThetaALG build on the *surviving*
// node set — the §2.4 self-maintenance claim the temporal conformance
// fuzzer re-checks per round. These tests exercise the maintainer directly,
// without the dynamics engine in between.

/// Edge keys of the fresh build of the active sub-deployment, mapped back to
/// original ids (ids ascend, so min/max order is preserved).
std::vector<EdgeKey> fresh_survivor_edge_keys(const ThetaMaintainer& m) {
  std::vector<graph::NodeId> ids;
  const topo::Deployment compact = m.active_deployment(&ids);
  std::vector<EdgeKey> keys;
  if (compact.size() < 2) return keys;
  const ThetaTopology fresh(compact, kTheta);
  keys.reserve(fresh.graph().num_edges());
  for (const graph::Edge& e : fresh.graph().edges())
    keys.emplace_back(std::min(ids[e.u], ids[e.v]),
                      std::max(ids[e.u], ids[e.v]), e.length, e.cost);
  std::sort(keys.begin(), keys.end());
  return keys;
}

TEST(ThetaMaintainerChurn, JoinsMatchFreshBuild) {
  ThetaMaintainer maintainer(make_deployment(20, 0.4, 21), kTheta);
  geom::Rng rng(22);
  for (int i = 0; i < 15; ++i) {
    const graph::NodeId v =
        maintainer.add_node({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)});
    ASSERT_EQ(v, 20u + static_cast<graph::NodeId>(i));
    ASSERT_TRUE(maintainer.active(v));
    ASSERT_EQ(edge_keys(maintainer.graph()),
              fresh_survivor_edge_keys(maintainer))
        << "divergence after join " << i;
  }
  EXPECT_EQ(maintainer.num_active(), 35u);
}

TEST(ThetaMaintainerChurn, DeactivateIsolatesTheNode) {
  ThetaMaintainer maintainer(make_deployment(50, 0.4, 23), kTheta);
  maintainer.deactivate_node(17);
  EXPECT_FALSE(maintainer.active(17));
  EXPECT_EQ(maintainer.num_active(), 49u);
  EXPECT_EQ(maintainer.graph().degree(17), 0u);
  for (const graph::Edge& e : maintainer.graph().edges()) {
    EXPECT_NE(e.u, 17u);
    EXPECT_NE(e.v, 17u);
  }
  EXPECT_TRUE(maintainer.matches_full_rebuild());
  // Repeated deactivation is a no-op.
  EXPECT_EQ(maintainer.deactivate_node(17), 0u);
  EXPECT_EQ(maintainer.num_active(), 49u);
}

TEST(ThetaMaintainerChurn, SleepWakeRoundTripRestoresTopology) {
  ThetaMaintainer maintainer(make_deployment(60, 0.35, 24), kTheta);
  const std::vector<EdgeKey> before = edge_keys(maintainer.graph());
  maintainer.deactivate_node(5);
  maintainer.deactivate_node(31);
  EXPECT_TRUE(maintainer.matches_full_rebuild());
  maintainer.activate_node(31);
  maintainer.activate_node(5);
  EXPECT_TRUE(maintainer.matches_full_rebuild());
  EXPECT_EQ(edge_keys(maintainer.graph()), before);
}

TEST(ThetaMaintainerChurn, ArbitraryChurnSequenceMatchesFreshBuild) {
  const std::size_t n0 = 30;
  ThetaMaintainer maintainer(make_deployment(n0, 0.4, 25), kTheta);
  geom::Rng rng(26);
  for (int step = 0; step < 80; ++step) {
    const std::size_t n = maintainer.deployment().size();
    const double pick = rng.uniform(0.0, 1.0);
    if (pick < 0.2) {
      maintainer.add_node({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)});
    } else if (pick < 0.5) {
      maintainer.deactivate_node(
          static_cast<graph::NodeId>(rng.uniform_index(n)));
    } else if (pick < 0.8) {
      maintainer.activate_node(
          static_cast<graph::NodeId>(rng.uniform_index(n)));
    } else {
      maintainer.move_node(static_cast<graph::NodeId>(rng.uniform_index(n)),
                           {rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)});
    }
    ASSERT_EQ(edge_keys(maintainer.graph()),
              fresh_survivor_edge_keys(maintainer))
        << "divergence after step " << step;
    ASSERT_TRUE(maintainer.matches_full_rebuild());
  }
}

TEST(ThetaMaintainerChurn, ChurnLocalityStaysBelowFullRebuild) {
  const std::size_t n = 500;
  ThetaMaintainer maintainer(make_deployment(n, 0.12, 27), kTheta);
  geom::Rng rng(28);
  for (int step = 0; step < 10; ++step) {
    const auto v = static_cast<graph::NodeId>(rng.uniform_index(n));
    const std::size_t down = maintainer.deactivate_node(v);
    EXPECT_LT(down, n / 4) << "deactivate step " << step;
    const std::size_t up = maintainer.activate_node(v);
    EXPECT_LT(up, n / 4) << "activate step " << step;
  }
  EXPECT_TRUE(maintainer.matches_full_rebuild());
}

TEST(ThetaMaintainerChurn, PlantedStaleWakeBugIsDetectable) {
  // activate_node(v, /*recompute_neighbors=*/false) is the deliberate
  // maintenance bug of the conformance-under-churn mutation test: the woken
  // node's neighbours keep stale sector rows. Geometry chosen so the stale
  // selection survives phase-2 admission (where a same-sector woken node
  // would mask it): v and w share u's sector 0 (bearings 5 and 15 degrees,
  // v nearer), but seen from w, u (bearing 195) and v (bearing ~201.5) fall
  // in different 20-degree sectors. After v's buggy wake, u's stale row
  // still selects w, and at w that candidate has no competitor — the extra
  // edge (u, w) survives into N, diverging from a fresh build.
  topo::Deployment d;
  d.positions = {{0.1, 0.1}, {0.29924, 0.11743}, {0.58296, 0.22941}};
  d.max_range = 0.7;
  d.kappa = 2.0;
  ThetaMaintainer maintainer(d, kTheta);
  maintainer.deactivate_node(1);
  EXPECT_TRUE(maintainer.matches_full_rebuild());
  maintainer.activate_node(1, /*recompute_neighbors=*/false);
  EXPECT_FALSE(maintainer.matches_full_rebuild());
  EXPECT_NE(edge_keys(maintainer.graph()),
            fresh_survivor_edge_keys(maintainer));
  // A healthy wake repairs it.
  maintainer.deactivate_node(1);
  maintainer.activate_node(1);
  EXPECT_TRUE(maintainer.matches_full_rebuild());
}

TEST(ThetaMaintainerChurn, ChurnResultIdenticalAcrossThreadCounts) {
  // The same churn sequence under TN_NUM_THREADS in {1, 2, 4} must yield
  // identical edge sets (the repo-wide determinism contract; construction
  // kernels inside recomputes are parallel).
  std::vector<std::vector<EdgeKey>> per_thread_count;
  for (const int threads : {1, 2, 4}) {
    tn::set_num_threads(threads);
    ThetaMaintainer maintainer(make_deployment(64, 0.3, 29), kTheta);
    geom::Rng rng(30);
    for (int step = 0; step < 40; ++step) {
      const std::size_t n = maintainer.deployment().size();
      const double pick = rng.uniform(0.0, 1.0);
      if (pick < 0.25)
        maintainer.add_node({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)});
      else if (pick < 0.55)
        maintainer.deactivate_node(
            static_cast<graph::NodeId>(rng.uniform_index(n)));
      else
        maintainer.activate_node(
            static_cast<graph::NodeId>(rng.uniform_index(n)));
    }
    per_thread_count.push_back(edge_keys(maintainer.graph()));
  }
  tn::set_num_threads(1);
  EXPECT_EQ(per_thread_count[0], per_thread_count[1]);
  EXPECT_EQ(per_thread_count[0], per_thread_count[2]);
}

TEST(ThetaMaintainerChurn, ConcurrentCheckerEvaluation) {
  // Concurrent read-only audits over one maintainer must be race-free: the
  // ctest TSAN variant (theta_maintenance_churn_tsan) runs this under
  // -fsanitize=thread. finalize() the graph first — lazy adjacency builds
  // are documented as not-thread-safe, audits after that are pure reads.
  ThetaMaintainer maintainer(make_deployment(48, 0.35, 31), kTheta);
  geom::Rng rng(32);
  for (int step = 0; step < 10; ++step) {
    const auto v = static_cast<graph::NodeId>(rng.uniform_index(48));
    if (step % 2 == 0)
      maintainer.deactivate_node(v);
    else
      maintainer.activate_node(v);
  }
  maintainer.graph().finalize();
  std::vector<std::thread> workers;
  std::vector<int> ok(4, 0);
  for (int t = 0; t < 4; ++t)
    workers.emplace_back([&maintainer, &ok, t] {
      bool all = true;
      for (int rep = 0; rep < 8; ++rep) {
        all = all && maintainer.matches_full_rebuild();
        std::vector<graph::NodeId> ids;
        const topo::Deployment compact = maintainer.active_deployment(&ids);
        all = all && compact.size() == ids.size();
        all = all && compact.size() == maintainer.num_active();
      }
      ok[t] = all ? 1 : 0;
    });
  for (std::thread& w : workers) w.join();
  for (int t = 0; t < 4; ++t) EXPECT_EQ(ok[t], 1) << "worker " << t;
}

}  // namespace
}  // namespace thetanet::core
