#include "core/theta_maintenance.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numbers>
#include <tuple>
#include <vector>

#include "graph/connectivity.h"
#include "sim/mobility.h"
#include "topology/distributions.h"
#include "topology/transmission_graph.h"
#include "verify/invariants.h"

namespace thetanet::core {
namespace {

constexpr double kTheta = std::numbers::pi / 9.0;

topo::Deployment make_deployment(std::size_t n, double range,
                                 std::uint64_t seed) {
  geom::Rng rng(seed);
  topo::Deployment d;
  d.positions = topo::uniform_square(n, 1.0, rng);
  d.max_range = range;
  d.kappa = 2.0;
  return d;
}

TEST(ThetaMaintainer, InitialStateMatchesFullBuild) {
  const topo::Deployment d = make_deployment(100, 0.3, 1);
  const ThetaMaintainer maintainer(d, kTheta);
  EXPECT_TRUE(maintainer.matches_full_rebuild());
  const ThetaTopology fresh(d, kTheta);
  EXPECT_EQ(maintainer.graph().num_edges(), fresh.graph().num_edges());
}

TEST(ThetaMaintainer, SingleMovesStayCorrect) {
  ThetaMaintainer maintainer(make_deployment(120, 0.3, 2), kTheta);
  geom::Rng rng(3);
  for (int move = 0; move < 30; ++move) {
    const auto v = static_cast<graph::NodeId>(rng.uniform_index(120));
    const geom::Vec2 p{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)};
    maintainer.move_node(v, p);
    ASSERT_TRUE(maintainer.matches_full_rebuild()) << "move " << move;
  }
}

TEST(ThetaMaintainer, SmallMovesTouchOnlyTheNeighbourhood) {
  const std::size_t n = 400;
  ThetaMaintainer maintainer(make_deployment(n, 0.15, 4), kTheta);
  geom::Rng rng(5);
  for (int move = 0; move < 10; ++move) {
    const auto v = static_cast<graph::NodeId>(rng.uniform_index(n));
    // Nudge within a fraction of the range: the affected set is ~ one
    // neighbourhood, far below n.
    geom::Vec2 p = maintainer.deployment().positions[v];
    p.x = std::clamp(p.x + rng.uniform(-0.03, 0.03), 0.0, 1.0);
    p.y = std::clamp(p.y + rng.uniform(-0.03, 0.03), 0.0, 1.0);
    const std::size_t touched = maintainer.move_node(v, p);
    EXPECT_LT(touched, n / 4) << "move " << move;
    ASSERT_TRUE(maintainer.matches_full_rebuild());
  }
}

TEST(ThetaMaintainer, LongJumpStillCorrect) {
  ThetaMaintainer maintainer(make_deployment(150, 0.25, 6), kTheta);
  // Teleport a node across the arena (old and new neighbourhoods disjoint).
  maintainer.move_node(7, {0.98, 0.97});
  EXPECT_TRUE(maintainer.matches_full_rebuild());
  maintainer.move_node(7, {0.02, 0.01});
  EXPECT_TRUE(maintainer.matches_full_rebuild());
}

TEST(ThetaMaintainer, SustainedMobilityEpoch) {
  // A random-waypoint burst of moves, applied one node at a time, must end
  // in exactly the topology a full rebuild of the final deployment gives.
  const std::size_t n = 80;
  ThetaMaintainer maintainer(make_deployment(n, 0.3, 7), kTheta);
  geom::Rng rng(8);
  for (int step = 0; step < 100; ++step) {
    const auto v = static_cast<graph::NodeId>(rng.uniform_index(n));
    geom::Vec2 p = maintainer.deployment().positions[v];
    p.x = std::clamp(p.x + rng.normal(0.0, 0.02), 0.0, 1.0);
    p.y = std::clamp(p.y + rng.normal(0.0, 0.02), 0.0, 1.0);
    maintainer.move_node(v, p);
  }
  EXPECT_TRUE(maintainer.matches_full_rebuild());
  EXPECT_TRUE(graph::is_connected(maintainer.graph()));
}

// --- Direct incremental-vs-from-scratch equivalence ------------------------
// The tests above trust the class's own matches_full_rebuild() audit; these
// compare the maintained graph edge-by-edge against an independently
// constructed ThetaTopology, so a bug in the audit itself cannot hide one in
// the maintenance.

using EdgeKey = std::tuple<graph::NodeId, graph::NodeId, double, double>;

std::vector<EdgeKey> edge_keys(const graph::Graph& g) {
  std::vector<EdgeKey> keys;
  keys.reserve(g.num_edges());
  for (const graph::Edge& e : g.edges())
    keys.emplace_back(std::min(e.u, e.v), std::max(e.u, e.v), e.length,
                      e.cost);
  std::sort(keys.begin(), keys.end());
  return keys;
}

TEST(ThetaMaintainerDirect, EdgeSetMatchesFreshTopologyAfterMoves) {
  const std::size_t n = 90;
  ThetaMaintainer maintainer(make_deployment(n, 0.3, 11), kTheta);
  geom::Rng rng(12);
  for (int move = 0; move < 25; ++move) {
    const auto v = static_cast<graph::NodeId>(rng.uniform_index(n));
    const geom::Vec2 p{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)};
    maintainer.move_node(v, p);
    const ThetaTopology fresh(maintainer.deployment(), kTheta);
    ASSERT_EQ(edge_keys(maintainer.graph()), edge_keys(fresh.graph()))
        << "divergence after move " << move;
  }
}

TEST(ThetaMaintainerDirect, AuditAgreesWithDirectComparison) {
  const std::size_t n = 70;
  ThetaMaintainer maintainer(make_deployment(n, 0.35, 13), kTheta);
  geom::Rng rng(14);
  for (int move = 0; move < 20; ++move) {
    const auto v = static_cast<graph::NodeId>(rng.uniform_index(n));
    geom::Vec2 p = maintainer.deployment().positions[v];
    p.x = std::clamp(p.x + rng.normal(0.0, 0.05), 0.0, 1.0);
    p.y = std::clamp(p.y + rng.normal(0.0, 0.05), 0.0, 1.0);
    maintainer.move_node(v, p);
    const ThetaTopology fresh(maintainer.deployment(), kTheta);
    const bool direct_equal =
        edge_keys(maintainer.graph()) == edge_keys(fresh.graph());
    ASSERT_EQ(maintainer.matches_full_rebuild(), direct_equal)
        << "audit disagrees with the direct comparison after move " << move;
    ASSERT_TRUE(direct_equal);
  }
}

TEST(ThetaMaintainerDirect, MaintainedGraphPassesPaperInvariants) {
  const std::size_t n = 60;
  ThetaMaintainer maintainer(make_deployment(n, 0.35, 15), kTheta);
  geom::Rng rng(16);
  for (int move = 0; move < 12; ++move) {
    const auto v = static_cast<graph::NodeId>(rng.uniform_index(n));
    maintainer.move_node(v, {rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)});
  }
  // The maintained topology must satisfy Lemma 2.1 for the *current*
  // deployment, checked through the conformance layer.
  const topo::Deployment& d = maintainer.deployment();
  const graph::Graph gstar = topo::build_transmission_graph(d);
  const verify::CheckReport r =
      verify::check_theta_invariants(maintainer.graph(), d, kTheta, gstar);
  EXPECT_TRUE(r.pass()) << r.to_string();
}

}  // namespace
}  // namespace thetanet::core
