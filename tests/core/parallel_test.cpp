// Unit tests for the shared parallel-execution layer (common/parallel.h):
// range coverage, empty ranges, grain > n, serial fallback, nesting, and
// exception propagation.

#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace thetanet {
namespace {

// Restores the configured thread count after each test so the ambient
// TN_NUM_THREADS (e.g. the ctest TN_NUM_THREADS=4 registration) still
// governs the rest of the binary.
class ParallelTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = tn::num_threads(); }
  void TearDown() override { tn::set_num_threads(saved_); }
  int saved_ = 1;
};

TEST_F(ParallelTest, ThreadCountIsAtLeastOne) {
  EXPECT_GE(tn::num_threads(), 1);
  EXPECT_GE(tn::hardware_threads(), 1);
}

TEST_F(ParallelTest, ForCoversEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 7}) {
    tn::set_num_threads(threads);
    std::vector<std::atomic<int>> hits(1000);
    tn::parallel_for(hits.size(), 13, [&](std::size_t b, std::size_t e) {
      ASSERT_LE(b, e);
      ASSERT_LE(e, hits.size());
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST_F(ParallelTest, ForEmptyRangeNeverInvokesBody) {
  for (const int threads : {1, 4}) {
    tn::set_num_threads(threads);
    bool called = false;
    tn::parallel_for(0, 8, [&](std::size_t, std::size_t) { called = true; });
    EXPECT_FALSE(called);
  }
}

TEST_F(ParallelTest, GrainLargerThanRangeIsOneChunk) {
  tn::set_num_threads(4);
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  tn::parallel_for(5, 1000, [&](std::size_t b, std::size_t e) {
    chunks.emplace_back(b, e);  // single chunk => no concurrent writers
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], (std::pair<std::size_t, std::size_t>{0, 5}));
}

TEST_F(ParallelTest, OneThreadRunsInlineOnCaller) {
  tn::set_num_threads(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen;
  tn::parallel_for(100, 10, [&](std::size_t, std::size_t) {
    seen.push_back(std::this_thread::get_id());
  });
  ASSERT_EQ(seen.size(), 10u);
  for (const auto id : seen) EXPECT_EQ(id, caller);
}

TEST_F(ParallelTest, ReduceEmptyRangeReturnsIdentity) {
  tn::set_num_threads(4);
  const int r = tn::parallel_reduce(
      0, 8, 42, [](std::size_t, std::size_t) { return 7; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(r, 42);
}

TEST_F(ParallelTest, ReduceSumsMatchSerialForAnyThreadCount) {
  const std::size_t n = 12345;
  std::vector<std::uint64_t> values(n);
  std::iota(values.begin(), values.end(), 1);
  const std::uint64_t expected =
      std::accumulate(values.begin(), values.end(), std::uint64_t{0});
  for (const int threads : {1, 2, 3, 8}) {
    tn::set_num_threads(threads);
    const std::uint64_t sum = tn::parallel_reduce(
        n, 100, std::uint64_t{0},
        [&](std::size_t b, std::size_t e) {
          std::uint64_t s = 0;
          for (std::size_t i = b; i < e; ++i) s += values[i];
          return s;
        },
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
    EXPECT_EQ(sum, expected) << "threads=" << threads;
  }
}

TEST_F(ParallelTest, ReduceConcatenatesInChunkOrder) {
  // The determinism contract: partials combine in ascending chunk order,
  // so a concatenation yields exactly [0, n) for any thread count.
  for (const int threads : {1, 2, 7}) {
    tn::set_num_threads(threads);
    const std::vector<std::size_t> out = tn::parallel_reduce(
        1000, 7, std::vector<std::size_t>{},
        [](std::size_t b, std::size_t e) {
          std::vector<std::size_t> v;
          for (std::size_t i = b; i < e; ++i) v.push_back(i);
          return v;
        },
        [](std::vector<std::size_t> a, std::vector<std::size_t> b) {
          a.insert(a.end(), b.begin(), b.end());
          return a;
        });
    ASSERT_EQ(out.size(), 1000u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i);
  }
}

TEST_F(ParallelTest, ExceptionPropagatesToCaller) {
  for (const int threads : {1, 4}) {
    tn::set_num_threads(threads);
    EXPECT_THROW(
        tn::parallel_for(100, 5,
                         [&](std::size_t b, std::size_t) {
                           if (b >= 50) throw std::runtime_error("chunk boom");
                         }),
        std::runtime_error);
    // The pool must stay usable after an exception.
    std::atomic<std::size_t> count{0};
    tn::parallel_for(64, 8, [&](std::size_t b, std::size_t e) {
      count.fetch_add(e - b);
    });
    EXPECT_EQ(count.load(), 64u);
  }
}

TEST_F(ParallelTest, NestedCallsRunInlineWithoutDeadlock) {
  tn::set_num_threads(4);
  std::vector<std::atomic<int>> hits(64 * 64);
  tn::parallel_for(64, 4, [&](std::size_t ob, std::size_t oe) {
    for (std::size_t i = ob; i < oe; ++i) {
      tn::parallel_for(64, 4, [&](std::size_t ib, std::size_t ie) {
        for (std::size_t j = ib; j < ie; ++j) hits[i * 64 + j].fetch_add(1);
      });
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace thetanet
