// Unit tests for the bump-pointer scratch arena (common/arena.h): alignment
// of raw and typed allocations, reset() page reuse, high-water accounting,
// and the thread-local scratch_arena()/ScratchScope pairing used by the
// construction kernels.

#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace thetanet {
namespace {

bool aligned_to(const void* p, std::size_t align) {
  return reinterpret_cast<std::uintptr_t>(p) % align == 0;
}

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  tn::Arena arena;
  void* a = arena.allocate(3, 1);
  void* b = arena.allocate(8, 8);
  void* c = arena.allocate(1, 64);
  void* d = arena.allocate(256, 256);
  EXPECT_TRUE(aligned_to(b, 8));
  EXPECT_TRUE(aligned_to(c, 64));
  EXPECT_TRUE(aligned_to(d, 256));

  // Byte-disjoint: writing through each pointer must not clobber another.
  std::memset(a, 0xa1, 3);
  std::memset(b, 0xb2, 8);
  std::memset(c, 0xc3, 1);
  std::memset(d, 0xd4, 256);
  EXPECT_EQ(static_cast<std::byte*>(a)[0], std::byte{0xa1});
  EXPECT_EQ(static_cast<std::byte*>(b)[7], std::byte{0xb2});
  EXPECT_EQ(static_cast<std::byte*>(c)[0], std::byte{0xc3});
  EXPECT_EQ(static_cast<std::byte*>(d)[255], std::byte{0xd4});
}

TEST(Arena, TypedSpansAreUsable) {
  tn::Arena arena;
  std::span<std::uint32_t> s = arena.alloc_span<std::uint32_t>(1000);
  ASSERT_EQ(s.size(), 1000u);
  EXPECT_TRUE(aligned_to(s.data(), alignof(std::uint32_t)));
  for (std::size_t i = 0; i < s.size(); ++i) s[i] = std::uint32_t(i * 7);
  for (std::size_t i = 0; i < s.size(); ++i) ASSERT_EQ(s[i], i * 7);

  std::span<double> z = arena.alloc_zeroed<double>(257);
  EXPECT_TRUE(aligned_to(z.data(), alignof(double)));
  for (double v : z) ASSERT_EQ(v, 0.0);
}

TEST(Arena, ZeroByteAllocationIsValid) {
  tn::Arena arena;
  EXPECT_NE(arena.allocate(0, 1), nullptr);
  EXPECT_EQ(arena.alloc_span<int>(0).size(), 0u);
}

TEST(Arena, GrowsAcrossBlocksWithoutInvalidatingEarlierAllocations) {
  tn::Arena arena;
  // Force several block transitions: first block is 64 KiB, so a sequence
  // of 48 KiB requests straddles block boundaries repeatedly.
  std::vector<std::span<std::uint8_t>> spans;
  for (std::size_t i = 0; i < 16; ++i) {
    auto s = arena.alloc_span<std::uint8_t>(48 * 1024);
    std::memset(s.data(), static_cast<int>(i + 1), s.size());
    spans.push_back(s);
  }
  for (std::size_t i = 0; i < 16; ++i) {
    ASSERT_EQ(spans[i].front(), i + 1) << "block " << i << " clobbered";
    ASSERT_EQ(spans[i].back(), i + 1) << "block " << i << " clobbered";
  }
  EXPECT_GE(arena.bytes_reserved(), 16u * 48 * 1024);
}

TEST(Arena, OversizedRequestGetsItsOwnBlock) {
  tn::Arena arena;
  auto s = arena.alloc_span<std::uint64_t>(1 << 20);  // 8 MiB > any block yet
  s.front() = 1;
  s.back() = 2;
  EXPECT_EQ(s.front(), 1u);
  EXPECT_EQ(s.back(), 2u);
}

TEST(Arena, ResetReusesMemoryWithoutNewReservation) {
  tn::Arena arena;
  (void)arena.alloc_span<std::uint8_t>(100 * 1024);
  const std::size_t reserved = arena.bytes_reserved();
  void* first = arena.allocate(0, 1);
  arena.reset();
  EXPECT_EQ(arena.bytes_in_use(), 0u);

  // Same request pattern after reset: identical addresses, no growth.
  (void)arena.alloc_span<std::uint8_t>(100 * 1024);
  EXPECT_EQ(arena.allocate(0, 1), first);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(Arena, HighWaterTracksPeakAcrossResets) {
  tn::Arena arena;
  (void)arena.allocate(1000, 1);
  EXPECT_EQ(arena.bytes_in_use(), 1000u);
  EXPECT_EQ(arena.high_water(), 1000u);

  arena.reset();
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  EXPECT_EQ(arena.high_water(), 1000u) << "reset must not clear the peak";

  (void)arena.allocate(400, 1);
  EXPECT_EQ(arena.high_water(), 1000u) << "smaller phase keeps old peak";
  (void)arena.allocate(2000, 1);
  EXPECT_GE(arena.high_water(), 2400u) << "larger phase raises the peak";
}

TEST(Arena, ReleaseFreesBlocks) {
  tn::Arena arena;
  (void)arena.allocate(1 << 20, 8);
  EXPECT_GT(arena.bytes_reserved(), 0u);
  arena.release();
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  // Still usable after release.
  auto s = arena.alloc_zeroed<int>(10);
  EXPECT_EQ(s[9], 0);
}

TEST(Arena, ReserveAvoidsMidPhaseGrowth) {
  tn::Arena arena;
  arena.reserve(1 << 20);
  const std::size_t reserved = arena.bytes_reserved();
  (void)arena.alloc_span<std::uint8_t>(1 << 20);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(Arena, ScratchArenaIsPerThread) {
  tn::Arena* main_arena = &tn::scratch_arena();
  tn::Arena* worker_arena = nullptr;
  std::thread t([&] { worker_arena = &tn::scratch_arena(); });
  t.join();
  EXPECT_NE(main_arena, worker_arena);
  EXPECT_EQ(main_arena, &tn::scratch_arena()) << "stable within a thread";
}

TEST(Arena, MarkRewindDropsOnlyLaterAllocations) {
  tn::Arena arena;
  auto keep = arena.alloc_span<std::uint32_t>(100);
  keep[0] = 7;
  keep[99] = 9;
  const tn::Arena::Marker m = arena.mark();
  const std::size_t before = arena.bytes_in_use();
  (void)arena.alloc_span<std::uint8_t>(1 << 20);  // spills to a new block
  arena.rewind(m);
  EXPECT_EQ(arena.bytes_in_use(), before);
  EXPECT_EQ(keep[0], 7u);
  EXPECT_EQ(keep[99], 9u);
  // Post-rewind allocation lands where the dropped one started.
  void* a = arena.allocate(8, 8);
  arena.rewind(m);
  EXPECT_EQ(arena.allocate(8, 8), a);
}

TEST(Arena, ScratchScopesNest) {
  tn::Arena& arena = tn::scratch_arena();
  arena.reset();
  tn::ScratchScope outer;
  auto held = outer.arena().alloc_span<std::uint64_t>(64);
  for (std::size_t i = 0; i < held.size(); ++i) held[i] = i;
  const std::size_t outer_use = arena.bytes_in_use();
  {
    tn::ScratchScope inner;
    (void)inner.arena().alloc_span<std::uint64_t>(4096);
  }
  EXPECT_EQ(arena.bytes_in_use(), outer_use)
      << "inner scope must rewind to its own entry point";
  for (std::size_t i = 0; i < held.size(); ++i)
    ASSERT_EQ(held[i], i) << "outer allocation survived the inner scope";
}

TEST(Arena, ScratchScopeResetsOnExit) {
  tn::Arena& arena = tn::scratch_arena();
  arena.reset();
  {
    tn::ScratchScope scope(64 * 1024);
    auto s = scope.arena().alloc_span<std::uint32_t>(1024);
    s[0] = 42;
    EXPECT_GE(arena.bytes_in_use(), 1024u * sizeof(std::uint32_t));
  }
  EXPECT_EQ(arena.bytes_in_use(), 0u);
}

}  // namespace
}  // namespace thetanet
