#include "core/honeycomb.h"

#include <gtest/gtest.h>

#include <map>

#include "topology/distributions.h"
#include "topology/transmission_graph.h"

namespace thetanet::core {
namespace {

struct HcFixture {
  topo::Deployment d;
  graph::Graph unit;

  explicit HcFixture(std::uint64_t seed, std::size_t n = 120,
                     double side = 5.0) {
    geom::Rng rng(seed);
    d.positions = topo::uniform_square(n, side, rng);
    d.max_range = 1.0;  // fixed transmission strength (Section 3.4)
    d.kappa = 2.0;
    unit = topo::build_transmission_graph(d);
  }

  std::vector<double> costs() const {
    std::vector<double> c(unit.num_edges());
    for (graph::EdgeId e = 0; e < c.size(); ++e) c[e] = unit.edge(e).cost;
    return c;
  }
};

TEST(Honeycomb, TilingSideMatchesPaper) {
  const HcFixture f(81);
  const HoneycombParams p{0.75, 1.0 / 6.0};
  const HoneycombMac mac(f.d, f.unit, p);
  EXPECT_DOUBLE_EQ(mac.tiling().side(), 3.0 + 2.0 * 0.75);
  EXPECT_DOUBLE_EQ(mac.tiling().diameter(), 2.0 * (3.0 + 2.0 * 0.75));
}

TEST(Honeycomb, RejectsInvalidParameters) {
  const HcFixture f(82);
  EXPECT_DEATH(HoneycombMac(f.d, f.unit, HoneycombParams{0.0, 1.0 / 6.0}),
               "Delta");
  EXPECT_DEATH(HoneycombMac(f.d, f.unit, HoneycombParams{0.5, 0.5}), "p_t");
}

TEST(Honeycomb, AtMostOneContestantPerHexagon) {
  const HcFixture f(83);
  const HoneycombParams p{0.5, 1.0 / 6.0};
  const HoneycombMac mac(f.d, f.unit, p);
  BalancingRouter router(f.d.size(), {0.5, 0.0, 64});
  route::RunMetrics m;
  geom::Rng rng(1);
  // Load several buffers to create many candidate pairs.
  for (std::uint64_t i = 0; i < 200; ++i) {
    const auto s = static_cast<graph::NodeId>(rng.uniform_index(f.d.size()));
    auto t = static_cast<graph::NodeId>(rng.uniform_index(f.d.size() - 1));
    if (t >= s) ++t;
    router.inject(route::Packet{i, s, t, 0, 0.0, 0}, m);
  }
  // With p_t forced to its max, selected contestants are still one per cell.
  for (int round = 0; round < 50; ++round) {
    const auto chosen = mac.select(router, f.costs(), rng);
    std::map<std::pair<std::int32_t, std::int32_t>, int> per_cell;
    for (const PlannedTx& tx : chosen) {
      const geom::HexCell c = mac.tiling().cell_of(f.d.positions[tx.from]);
      const int count = ++per_cell[std::pair{c.q, c.r}];
      ASSERT_EQ(count, 1) << "two contestants in one hexagon";
    }
  }
}

TEST(Honeycomb, SelectionRespectsThreshold) {
  const HcFixture f(84);
  const HoneycombMac mac(f.d, f.unit, HoneycombParams{0.5, 1.0 / 6.0});
  // Threshold higher than any height difference -> no contestants ever.
  BalancingRouter router(f.d.size(), {100.0, 0.0, 64});
  route::RunMetrics m;
  geom::Rng rng(2);
  for (std::uint64_t i = 0; i < 50; ++i) {
    const auto s = static_cast<graph::NodeId>(rng.uniform_index(f.d.size()));
    auto t = static_cast<graph::NodeId>(rng.uniform_index(f.d.size() - 1));
    if (t >= s) ++t;
    router.inject(route::Packet{i, s, t, 0, 0.0, 0}, m);
  }
  HoneycombMac::SelectionStats stats;
  const auto chosen = mac.select(router, f.costs(), rng, &stats);
  EXPECT_TRUE(chosen.empty());
  EXPECT_EQ(stats.contestants, 0U);
  EXPECT_EQ(stats.candidate_pairs, 0U);
}

TEST(Honeycomb, TransmissionRateMatchesPt) {
  const HcFixture f(85);
  const double pt = 1.0 / 6.0;
  const HoneycombMac mac(f.d, f.unit, HoneycombParams{0.5, pt});
  BalancingRouter router(f.d.size(), {0.5, 0.0, 512});
  route::RunMetrics m;
  geom::Rng rng(3);
  for (std::uint64_t i = 0; i < 500; ++i) {
    const auto s = static_cast<graph::NodeId>(rng.uniform_index(f.d.size()));
    auto t = static_cast<graph::NodeId>(rng.uniform_index(f.d.size() - 1));
    if (t >= s) ++t;
    router.inject(route::Packet{i, s, t, 0, 0.0, 0}, m);
  }
  std::size_t contestants = 0, transmissions = 0;
  for (int round = 0; round < 3000; ++round) {
    HoneycombMac::SelectionStats stats;
    const auto chosen = mac.select(router, f.costs(), rng, &stats);
    contestants += stats.contestants;
    transmissions += chosen.size();
  }
  ASSERT_GT(contestants, 1000U);
  const double rate =
      static_cast<double>(transmissions) / static_cast<double>(contestants);
  EXPECT_NEAR(rate, pt, 0.02);
}

// Lemma 3.7 (empirical): with p_t <= 1/6, each selected contestant survives
// interference with probability at least 1/2.
TEST(Honeycomb, Lemma37CollisionProbabilityAtMostHalf) {
  const HcFixture f(86, 200, 6.0);
  const HoneycombMac mac(f.d, f.unit, HoneycombParams{0.5, 1.0 / 6.0});
  BalancingRouter router(f.d.size(), {0.5, 0.0, 512});
  route::RunMetrics m;
  geom::Rng rng(4);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const auto s = static_cast<graph::NodeId>(rng.uniform_index(f.d.size()));
    auto t = static_cast<graph::NodeId>(rng.uniform_index(f.d.size() - 1));
    if (t >= s) ++t;
    router.inject(route::Packet{i, s, t, 0, 0.0, 0}, m);
  }
  std::size_t chosen_total = 0, failed_total = 0;
  for (int round = 0; round < 4000; ++round) {
    const auto chosen = mac.select(router, f.costs(), rng);
    const auto failed = mac.resolve(chosen);
    chosen_total += chosen.size();
    for (const bool b : failed) failed_total += b ? 1 : 0;
  }
  ASSERT_GT(chosen_total, 500U);
  EXPECT_LE(static_cast<double>(failed_total) /
                static_cast<double>(chosen_total),
            0.5);
}

TEST(Honeycomb, ResolveUsesFixedGuardDistance) {
  topo::Deployment d;
  // Two pairs separated by slightly more than 1 + Delta = 1.5: independent.
  d.positions = {{0, 0}, {1, 0}, {2.51, 0}, {3.51, 0}};
  d.max_range = 1.0;
  d.kappa = 2.0;
  graph::Graph g(4);
  g.add_edge(0, 1, 1.0, 1.0);
  g.add_edge(2, 3, 1.0, 1.0);
  const HoneycombMac mac(d, g, HoneycombParams{0.5, 1.0 / 6.0});
  std::vector<PlannedTx> txs(2);
  txs[0] = {0, 0, 1, 3, 1.0};
  txs[1] = {1, 2, 3, 0, 1.0};
  auto failed = mac.resolve(txs);
  EXPECT_FALSE(failed[0]);
  EXPECT_FALSE(failed[1]);
  // Move the second pair closer: receiver 1 within 1.5 of sender 2 -> kill.
  topo::Deployment d2 = d;
  d2.positions[2] = {2.4, 0};
  const HoneycombMac mac2(d2, g, HoneycombParams{0.5, 1.0 / 6.0});
  failed = mac2.resolve(txs);
  EXPECT_TRUE(failed[0]);
  EXPECT_TRUE(failed[1]);
}

}  // namespace
}  // namespace thetanet::core
