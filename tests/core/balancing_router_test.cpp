#include "core/balancing_router.h"

#include <gtest/gtest.h>

#include <vector>

namespace thetanet::core {
namespace {

using route::Packet;
using route::RunMetrics;

Packet mk(std::uint64_t id, graph::NodeId src, graph::NodeId dst,
          route::Time t = 0) {
  return Packet{id, src, dst, t, 0.0, 0};
}

/// Path graph 0 - 1 - 2 with unit lengths/costs.
graph::Graph path3() {
  graph::Graph g(3);
  g.add_edge(0, 1, 1.0, 1.0);
  g.add_edge(1, 2, 1.0, 1.0);
  return g;
}

std::vector<double> costs_of(const graph::Graph& g) {
  std::vector<double> c(g.num_edges());
  for (graph::EdgeId e = 0; e < c.size(); ++e) c[e] = g.edge(e).cost;
  return c;
}

TEST(BalancingRouter, NoTrafficNoPlan) {
  const graph::Graph g = path3();
  BalancingRouter r(3, {1.0, 0.0, 8});
  const std::vector<graph::EdgeId> active{0, 1};
  EXPECT_TRUE(r.plan(g, active, costs_of(g)).empty());
}

TEST(BalancingRouter, BenefitMustExceedThreshold) {
  const graph::Graph g = path3();
  RunMetrics m;
  // T = 2: two packets queued gives benefit 2 (== T, not >) -> no send.
  BalancingRouter r(3, {2.0, 0.0, 8});
  r.inject(mk(1, 0, 2), m);
  r.inject(mk(2, 0, 2), m);
  const std::vector<graph::EdgeId> active{0};
  EXPECT_TRUE(r.plan(g, active, costs_of(g)).empty());
  // A third packet pushes the difference to 3 > T.
  r.inject(mk(3, 0, 2), m);
  const auto txs = r.plan(g, active, costs_of(g));
  ASSERT_EQ(txs.size(), 1U);
  EXPECT_EQ(txs[0].from, 0U);
  EXPECT_EQ(txs[0].to, 1U);
  EXPECT_EQ(txs[0].dest, 2U);
  EXPECT_DOUBLE_EQ(txs[0].benefit, 3.0);
}

TEST(BalancingRouter, GammaPenalizesExpensiveEdges) {
  // Same heights; with gamma > 0 the costlier edge needs a higher gradient.
  graph::Graph g(3);
  g.add_edge(0, 1, 1.0, 1.0);   // cheap
  g.add_edge(0, 2, 2.0, 10.0);  // expensive
  RunMetrics m;
  BalancingRouter r(3, {1.0, 0.5, 16});  // gamma = 0.5
  for (int i = 0; i < 4; ++i) r.inject(mk(static_cast<std::uint64_t>(i), 0, 2), m);
  // Benefit over edge (0,1) towards dest 2: 4 - 0 - 0.5*1 = 3.5 > T.
  // Benefit over edge (0,2): 4 - 0 - 0.5*10 = -1 < T.
  const std::vector<graph::EdgeId> active{0, 1};
  const auto txs = r.plan(g, active, costs_of(g));
  ASSERT_EQ(txs.size(), 1U);
  EXPECT_EQ(txs[0].edge, 0U);
  EXPECT_DOUBLE_EQ(txs[0].benefit, 3.5);
}

TEST(BalancingRouter, PicksDestinationWithMaxBenefit) {
  const graph::Graph g = path3();
  RunMetrics m;
  BalancingRouter r(3, {0.5, 0.0, 16});
  r.inject(mk(1, 0, 1), m);
  for (int i = 0; i < 3; ++i) r.inject(mk(static_cast<std::uint64_t>(10 + i), 0, 2), m);
  const std::vector<graph::EdgeId> active{0};
  const auto txs = r.plan(g, active, costs_of(g));
  ASSERT_EQ(txs.size(), 1U);
  EXPECT_EQ(txs[0].dest, 2U);  // height 3 beats height 1
}

TEST(BalancingRouter, DirectionWithHigherBenefitWins) {
  const graph::Graph g = path3();
  RunMetrics m;
  BalancingRouter r(3, {0.5, 0.0, 16});
  // 2 packets at node 0 for dest 2; 5 packets at node 1 for dest 0.
  r.inject(mk(1, 0, 2), m);
  r.inject(mk(2, 0, 2), m);
  for (int i = 0; i < 5; ++i) r.inject(mk(static_cast<std::uint64_t>(10 + i), 1, 0), m);
  const std::vector<graph::EdgeId> active{0};
  const auto txs = r.plan(g, active, costs_of(g));
  ASSERT_EQ(txs.size(), 1U);
  EXPECT_EQ(txs[0].from, 1U);  // gradient 5 towards node 0
  EXPECT_EQ(txs[0].dest, 0U);
}

TEST(BalancingRouter, ExecuteMovesAndDelivers) {
  const graph::Graph g = path3();
  RunMetrics m;
  BalancingRouter r(3, {0.5, 0.0, 16});
  r.inject(mk(1, 1, 2), m);  // one hop from its destination
  const std::vector<graph::EdgeId> active{1};
  const auto txs = r.plan(g, active, costs_of(g));
  ASSERT_EQ(txs.size(), 1U);
  r.execute(txs, {}, costs_of(g), /*now=*/5, m);
  EXPECT_EQ(m.deliveries, 1U);
  EXPECT_EQ(m.total_hops_delivered, 1U);
  EXPECT_DOUBLE_EQ(m.delivered_cost, 1.0);
  EXPECT_EQ(m.sum_latency, 5U);
  EXPECT_EQ(r.packets_in_flight(), 0U);
}

TEST(BalancingRouter, FailedTransmissionKeepsPacketAndWastesEnergy) {
  const graph::Graph g = path3();
  RunMetrics m;
  BalancingRouter r(3, {0.5, 0.0, 16});
  r.inject(mk(1, 1, 2), m);
  const std::vector<graph::EdgeId> active{1};
  const auto txs = r.plan(g, active, costs_of(g));
  const std::vector<bool> failed{true};
  r.execute(txs, failed, costs_of(g), 0, m);
  EXPECT_EQ(m.deliveries, 0U);
  EXPECT_EQ(m.failed_tx, 1U);
  EXPECT_DOUBLE_EQ(m.wasted_energy, 1.0);
  EXPECT_EQ(r.packets_in_flight(), 1U);
  EXPECT_EQ(r.buffers().height(1, 2), 1U);
}

TEST(BalancingRouter, InjectionOverflowIsDeleted) {
  RunMetrics m;
  BalancingRouter r(2, {0.5, 0.0, 2});  // H = 2
  r.inject(mk(1, 0, 1), m);
  r.inject(mk(2, 0, 1), m);
  r.inject(mk(3, 0, 1), m);  // buffer full -> deleted
  EXPECT_EQ(m.injected_offered, 3U);
  EXPECT_EQ(m.injected_accepted, 2U);
  EXPECT_EQ(m.dropped_at_injection, 1U);
}

TEST(BalancingRouter, SkipsWhenEarlierTxDrainedTheBuffer) {
  // Node 0 has one packet but two active edges both plan to move it.
  graph::Graph g(3);
  g.add_edge(0, 1, 1.0, 1.0);
  g.add_edge(0, 2, 1.0, 1.0);
  RunMetrics m;
  BalancingRouter r(3, {0.0, 0.0, 16});  // T = 0: any positive gradient sends
  // One packet at node 0 for destination 1. Both active edges see a
  // positive gradient for dest 1 (over (0,2): h(0,1) - h(2,1) = 1 > 0), so
  // both plan to move the same single packet.
  r.inject(mk(1, 0, 1), m);
  const std::vector<graph::EdgeId> active{0, 1};
  const auto txs = r.plan(g, active, costs_of(g));
  ASSERT_EQ(txs.size(), 2U);
  r.execute(txs, {}, costs_of(g), 0, m);
  // One transmission moved the packet (and delivered it at node 1), the
  // other found the buffer empty and was skipped.
  EXPECT_EQ(m.skipped_tx + m.deliveries + m.dropped_in_transit, 2U);
  EXPECT_EQ(m.skipped_tx, 1U);
}

TEST(BalancingRouter, ConservationInvariant) {
  // injected_accepted = deliveries + in-flight + dropped_in_transit.
  const graph::Graph g = path3();
  RunMetrics m;
  BalancingRouter r(3, {0.5, 0.0, 4});
  geom::Rng rng(5);
  std::uint64_t id = 0;
  const auto costs = costs_of(g);
  for (route::Time t = 0; t < 200; ++t) {
    const std::vector<graph::EdgeId> active{0, 1};
    const auto txs = r.plan(g, active, costs);
    r.execute(txs, {}, costs, t, m);
    if (rng.bernoulli(0.7)) {
      const auto src = static_cast<graph::NodeId>(rng.uniform_index(2));
      r.inject(mk(++id, src, 2), m);
    }
    r.end_step(m);
  }
  EXPECT_EQ(m.injected_accepted,
            m.deliveries + r.packets_in_flight() + m.dropped_in_transit);
  EXPECT_GT(m.deliveries, 0U);
  EXPECT_LE(m.peak_buffer, 4U);
}

TEST(TheoremParams, RecipesMatchFormulas) {
  route::OptStats opt;
  opt.max_buffer = 4;
  opt.avg_path_length = 5.0;
  opt.avg_cost = 2.0;
  const BalancingParams p31 = theorem31_params(opt, 0.5, 2.0);
  EXPECT_DOUBLE_EQ(p31.threshold, 4.0 + 2.0);                 // B + 2(delta-1)
  EXPECT_DOUBLE_EQ(p31.gamma, (6.0 + 4.0 + 2.0) * 5.0 / 2.0); // (T+B+d)L/C
  const BalancingParams p33 = theorem33_params(opt, 0.5);
  EXPECT_DOUBLE_EQ(p33.threshold, 9.0);                       // 2B + 1
  EXPECT_DOUBLE_EQ(p33.gamma, (9.0 + 4.0) * 5.0 / 2.0);
  EXPECT_GT(p33.max_height, opt.max_buffer);
}

}  // namespace
}  // namespace thetanet::core
