// Cross-thread-count determinism: every parallelized construction kernel
// must produce bit-identical output for TN_NUM_THREADS in {1, 2, 7} — the
// hard requirement of the shared parallel layer (common/parallel.h). Run
// over both a uniform and a clustered deployment so grid occupancy is both
// balanced and skewed.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "core/theta_topology.h"
#include "graph/stretch.h"
#include "interference/model.h"
#include "topology/distributions.h"
#include "topology/proximity.h"
#include "topology/transmission_graph.h"
#include "topology/yao.h"
#include "verify/conformance.h"
#include "verify/scenario.h"

namespace thetanet {
namespace {

constexpr double kTheta = std::numbers::pi / 9.0;

topo::Deployment uniform_deployment(std::size_t n) {
  geom::Rng rng(0xd37e);
  topo::Deployment d;
  d.positions = topo::uniform_square(n, 1.0, rng);
  d.max_range = 1.6 * std::sqrt(std::log(static_cast<double>(n)) /
                                static_cast<double>(n));
  d.kappa = 2.0;
  return d;
}

topo::Deployment clustered_deployment(std::size_t n) {
  geom::Rng rng(0xc1a5);
  topo::Deployment d;
  d.positions = topo::clustered(n, 12, 0.03, 1.0, rng);
  topo::perturb(d.positions, 1e-7, rng);
  d.max_range = 2.2 * std::sqrt(std::log(static_cast<double>(n)) /
                                static_cast<double>(n));
  d.kappa = 2.0;
  return d;
}

void expect_identical(const graph::Graph& a, const graph::Graph& b,
                      const char* what, int threads) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes()) << what << " threads=" << threads;
  ASSERT_EQ(a.num_edges(), b.num_edges()) << what << " threads=" << threads;
  for (graph::EdgeId e = 0; e < a.num_edges(); ++e) {
    ASSERT_EQ(a.edge(e).u, b.edge(e).u) << what << " e=" << e;
    ASSERT_EQ(a.edge(e).v, b.edge(e).v) << what << " e=" << e;
    // Bit-exact doubles, not almost-equal: same inputs, same order.
    ASSERT_EQ(a.edge(e).length, b.edge(e).length) << what << " e=" << e;
    ASSERT_EQ(a.edge(e).cost, b.edge(e).cost) << what << " e=" << e;
  }
}

class ThreadCountRestorer {
 public:
  ThreadCountRestorer() : saved_(tn::num_threads()) {}
  ~ThreadCountRestorer() { tn::set_num_threads(saved_); }

 private:
  int saved_;
};

void check_deployment(const topo::Deployment& d) {
  ThreadCountRestorer restore;
  const interf::InterferenceModel model{1.0};

  tn::set_num_threads(1);
  const topo::SectorTable table1 = topo::compute_sector_table(d, kTheta);
  const core::ThetaTopology theta1(d, kTheta);
  const graph::Graph yao1 = topo::yao_graph(d, kTheta, table1);
  const graph::Graph gstar1 = topo::build_transmission_graph(d);
  const graph::Graph gabriel1 = topo::gabriel_graph(d);
  const std::vector<std::uint32_t> isizes1 =
      interf::interference_set_sizes(theta1.graph(), d, model);
  const auto isets1 = interf::interference_sets(theta1.graph(), d, model);
  const graph::StretchStats stretch1 =
      graph::edge_stretch(theta1.graph(), gstar1, graph::Weight::kCost);

  for (const int threads : {2, 7}) {
    tn::set_num_threads(threads);

    const topo::SectorTable table = topo::compute_sector_table(d, kTheta);
    ASSERT_EQ(table.sectors(), table1.sectors());
    for (graph::NodeId u = 0; u < d.size(); ++u)
      for (int s = 0; s < table.sectors(); ++s)
        ASSERT_EQ(table.nearest(u, s), table1.nearest(u, s))
            << "u=" << u << " s=" << s << " threads=" << threads;

    const core::ThetaTopology theta(d, kTheta);
    expect_identical(theta.graph(), theta1.graph(), "theta", threads);
    expect_identical(topo::yao_graph(d, kTheta, table), yao1, "yao", threads);
    expect_identical(topo::build_transmission_graph(d), gstar1, "gstar",
                     threads);
    expect_identical(topo::gabriel_graph(d), gabriel1, "gabriel", threads);

    ASSERT_EQ(interf::interference_set_sizes(theta.graph(), d, model),
              isizes1)
        << "interference sizes, threads=" << threads;
    ASSERT_EQ(interf::interference_sets(theta.graph(), d, model), isets1)
        << "interference sets, threads=" << threads;

    const graph::StretchStats stretch =
        graph::edge_stretch(theta.graph(), gstar1, graph::Weight::kCost);
    // Bit-identical floats: the reduce combines partials in chunk order.
    ASSERT_EQ(stretch.max, stretch1.max);
    ASSERT_EQ(stretch.mean, stretch1.mean);
    ASSERT_EQ(stretch.p99, stretch1.p99);
    ASSERT_EQ(stretch.pairs, stretch1.pairs);
    ASSERT_EQ(stretch.argmax_u, stretch1.argmax_u);
    ASSERT_EQ(stretch.argmax_v, stretch1.argmax_v);
  }
}

TEST(Determinism, UniformDeploymentBitIdenticalAcrossThreadCounts) {
  check_deployment(uniform_deployment(3000));
}

TEST(Determinism, ClusteredDeploymentBitIdenticalAcrossThreadCounts) {
  check_deployment(clustered_deployment(3000));
}

TEST(Determinism, ConformanceReportsByteIdenticalAcrossThreadCounts) {
  // The verify layer's rendered reports feed a byte-for-byte ctest diff
  // (conformance_report_thread_diff); guard the same property in-process for
  // a mix of scenario families, including a degenerate one.
  ThreadCountRestorer restore;
  std::vector<verify::ScenarioSpec> specs(4);
  specs[0].dist = verify::Distribution::kUniform;
  specs[0].n = 48;
  specs[0].seed = 3;
  specs[1].dist = verify::Distribution::kClustered;
  specs[1].n = 40;
  specs[1].seed = 4;
  specs[2].dist = verify::Distribution::kHubRing;
  specs[2].n = 24;
  specs[2].seed = 5;
  specs[3].dist = verify::Distribution::kCoincident;
  specs[3].n = 6;
  specs[3].seed = 6;

  std::vector<std::string> base;
  tn::set_num_threads(1);
  for (const verify::ScenarioSpec& spec : specs) {
    const topo::Deployment d = verify::build_scenario_deployment(spec);
    base.push_back(
        verify::run_conformance(d, verify::ConformanceOptions{}).to_string());
  }
  for (const int threads : {2, 7}) {
    tn::set_num_threads(threads);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const topo::Deployment d = verify::build_scenario_deployment(specs[i]);
      const std::string report =
          verify::run_conformance(d, verify::ConformanceOptions{}).to_string();
      ASSERT_EQ(report, base[i])
          << "report for scenario " << verify::scenario_name(specs[i])
          << " differs at threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace thetanet
