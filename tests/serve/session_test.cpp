// ServeSession protocol tests: command grammar, topology lifecycle, route
// queries, and the telemetry subscription — including that the frames
// interleaved into the session output form a valid, foldable
// thetanet-telemetry-stream/1 stream.

#include "serve/session.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/stream.h"
#include "obs/telemetry_reader.h"
#include "obs/timeseries.h"

namespace thetanet::serve {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override { reset_telemetry(); }
  void TearDown() override { reset_telemetry(); }

  static void reset_telemetry() {
    obs::MetricsRegistry::global().reset();
    obs::SeriesRegistry::global().reset();
    obs::reset_spans();
  }

  /// Run one command, returning everything it wrote.
  std::string run(const std::string& line) {
    std::ostringstream out;
    session_.handle_line(line, out);
    return out.str();
  }

  /// First line of a response (without the newline).
  static std::string first_line(const std::string& s) {
    return s.substr(0, s.find('\n'));
  }

  /// Everything after the first line — the frame block, when one rode
  /// along with the response.
  static std::string after_first_line(const std::string& s) {
    const auto nl = s.find('\n');
    return nl == std::string::npos ? std::string() : s.substr(nl + 1);
  }

  ServeSession session_;
};

TEST_F(SessionTest, VersionNamesBothSchemas) {
  EXPECT_EQ(run("version"),
            "ok thetanet-serve/1 telemetry thetanet-telemetry-stream/1\n");
}

TEST_F(SessionTest, BlankLinesAreIgnored) {
  EXPECT_EQ(run(""), "");
  EXPECT_EQ(run("   \t "), "");
  EXPECT_EQ(session_.commands_handled(), 0u);
}

TEST_F(SessionTest, TopologyLifecycle) {
  EXPECT_EQ(first_line(run("gen 48 7")).substr(0, 8), "ok n=48 ");
  // Joins report the new id (ids append after the initial n).
  EXPECT_EQ(first_line(run("add 0.5 0.5")).substr(0, 8), "ok id=48");
  EXPECT_EQ(first_line(run("move 3 0.25 0.25")).substr(0, 14),
            "ok recomputed=");
  const std::string left = first_line(run("leave 4"));
  EXPECT_NE(left.find("active=48"), std::string::npos) << left;
  const std::string woke = first_line(run("wake 4"));
  EXPECT_NE(woke.find("active=49"), std::string::npos) << woke;
  const std::string stats = first_line(run("stats"));
  EXPECT_NE(stats.find("nodes=49"), std::string::npos) << stats;
  EXPECT_NE(stats.find("ops=4"), std::string::npos) << stats;
}

TEST_F(SessionTest, RouteDeliversOnGeneratedOverlay) {
  run("gen 64 7");
  const std::string compass = first_line(run("route 0 5 compass"));
  EXPECT_EQ(compass.substr(0, 15), "ok delivered=1 ") << compass;
  const std::string theta = first_line(run("route 0 5 theta"));
  EXPECT_EQ(theta.substr(0, 15), "ok delivered=1 ") << theta;
}

TEST_F(SessionTest, ErrorsAreReportedAndSessionSurvives) {
  EXPECT_EQ(run("bogus"), "err unknown command (try `help`)\n");
  EXPECT_EQ(first_line(run("route 0 1")),
            "err no topology (run `gen` first)");
  EXPECT_EQ(first_line(run("gen 1 7")), "err usage: gen <n>=2.. <seed> [cones>=7]");
  run("gen 32 7");
  EXPECT_EQ(first_line(run("move 99 0 0")), "err usage: move <id> <x> <y>");
  EXPECT_EQ(first_line(run("route 0 99")),
            "err route endpoints must be active node ids");
  run("leave 5");
  EXPECT_EQ(first_line(run("route 0 5")),
            "err route endpoints must be active node ids");
  // The session still works after every error.
  EXPECT_EQ(first_line(run("route 0 4")).substr(0, 15), "ok delivered=1 ");
}

TEST_F(SessionTest, SubscriptionFramesFoldIntoTheDump) {
  run("gen 48 7");
  std::string stream;
  // interval 1: every later command carries a frame. The subscribe command
  // itself emits the baseline frame (everything recorded so far).
  std::string r = run("subscribe telemetry 1");
  EXPECT_EQ(first_line(r), "ok subscribed interval=1");
  stream += after_first_line(r);
  for (const char* cmd :
       {"move 3 0.2 0.2", "leave 4", "wake 4", "route 0 5 compass",
        "stats"}) {
    r = run(cmd);
    EXPECT_EQ(first_line(r).substr(0, 3), "ok ") << r;
    stream += after_first_line(r);
  }

  std::string err;
  const auto frames = obs::parse_telemetry_stream(stream, &err);
  ASSERT_TRUE(frames.has_value()) << err;
  ASSERT_EQ(frames->size(), 6u);
  obs::StreamFolder folder;
  for (const auto& f : *frames) ASSERT_TRUE(folder.fold(f, &err)) << err;

  // The fold must byte-equal the one-shot dump of the same state.
  EXPECT_EQ(folder.to_dump_json(), obs::to_json(obs::capture_telemetry(),
                                                /*include_timing=*/false));
}

TEST_F(SessionTest, UnsubscribeStopsFrames) {
  run("gen 32 7");
  run("subscribe telemetry 1");
  EXPECT_EQ(run("unsubscribe telemetry"), "ok unsubscribed\n");
  EXPECT_EQ(run("stats").substr(0, 3), "ok ");
  EXPECT_EQ(run("stats").find("FRAME"), std::string::npos);
}

TEST_F(SessionTest, IntervalCountsCommandsNotLines) {
  run("gen 32 7");
  std::string r = run("subscribe telemetry 3");
  EXPECT_NE(r.find("FRAME 0 "), std::string::npos);  // baseline frame
  EXPECT_EQ(run("stats").find("FRAME"), std::string::npos);
  EXPECT_EQ(run("stats").find("FRAME"), std::string::npos);
  EXPECT_NE(run("stats").find("FRAME 1 "), std::string::npos);
}

TEST_F(SessionTest, QuitEndsSessionAndRunServeCountsCommands) {
  std::istringstream in("version\ngen 32 7\nquit\nstats\n");
  std::ostringstream out;
  // `stats` after `quit` must never run.
  EXPECT_EQ(run_serve(in, out), 3u);
  EXPECT_NE(out.str().find("ok bye\n"), std::string::npos);
  EXPECT_EQ(out.str().find("nodes="), std::string::npos);
}

}  // namespace
}  // namespace thetanet::serve
