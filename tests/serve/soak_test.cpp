// run_soak integration tests at miniature scale: stream validity, the
// fold-equals-dump law end to end, run-to-run determinism, and the planted
// leak changing memory but never behaviour.

#include "serve/soak.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace thetanet::serve {
namespace {

SoakSpec tiny_spec() {
  SoakSpec spec;
  spec.n = 48;
  spec.topo_seed = 7;
  spec.rounds = 600;
  spec.interval = 100;
  spec.shards = 2;
  spec.quantum = 2;
  spec.inject.rate = 0.3;
  spec.inject.window = 64;
  spec.inject.seed = 11;
  spec.fold_check = true;
  // 600 rounds never leave closed-loop ramp-up, so the control-plane rate
  // legitimately climbs; the trend check itself is watchdog_test's job.
  spec.watchdog.rate_slack_per_round = 64.0;
  return spec;
}

TEST(SoakTest, TinySoakPassesAndFoldEqualsDump) {
  std::ostringstream frames;
  const SoakResult r = run_soak(tiny_spec(), frames);
  EXPECT_TRUE(r.fold_ok);
  for (const std::string& v : r.violations) ADD_FAILURE() << v;
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.frames, 6u);  // 600 rounds / interval 100
  EXPECT_EQ(r.rounds, 600u);
  EXPECT_GT(r.injected_accepted, 0u);
  EXPECT_NE(frames.str().find("FRAME 0 "), std::string::npos);
  EXPECT_NE(frames.str().find("FRAME 5 "), std::string::npos);
  EXPECT_NE(r.final_dump.find("thetanet-telemetry/2"), std::string::npos);
}

TEST(SoakTest, SameSpecIsByteDeterministic) {
  std::ostringstream a, b;
  const SoakResult ra = run_soak(tiny_spec(), a);
  const SoakResult rb = run_soak(tiny_spec(), b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_EQ(ra.checksum, rb.checksum);
  EXPECT_EQ(ra.final_dump, rb.final_dump);
}

TEST(SoakTest, PlantedLeakNeverChangesBehaviour) {
  SoakSpec leaky = tiny_spec();
  leaky.plant_leak = true;
  // Allowance stays at the default 48 MiB: a 600-round leak is far too
  // small to trip — the mutation ctest drives it for real. What must hold
  // here is that the leak is *pure* memory: same stream, same checksum.
  std::ostringstream clean_out, leaky_out;
  const SoakResult clean = run_soak(tiny_spec(), clean_out);
  const SoakResult leaked = run_soak(leaky, leaky_out);
  EXPECT_EQ(clean_out.str(), leaky_out.str());
  EXPECT_EQ(clean.checksum, leaked.checksum);
  EXPECT_EQ(clean.final_dump, leaked.final_dump);
}

TEST(SoakTest, BalancingRouterPathWorksWithoutControlLedger) {
  SoakSpec spec = tiny_spec();
  spec.quantum = 0;  // plain BalancingRouter: no control counters at all
  std::ostringstream frames;
  const SoakResult r = run_soak(spec, frames);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.fold_ok);
  // The plain router never touches the control ledger. Registration
  // outlives MetricsRegistry::reset(), so when another test in this
  // process already ran the quantized path the counter may still appear —
  // but only at zero.
  const bool absent =
      r.final_dump.find("router.control_bytes") == std::string::npos;
  const bool zero =
      r.final_dump.find("\"router.control_bytes\": 0") != std::string::npos;
  EXPECT_TRUE(absent || zero) << r.final_dump;
}

TEST(SoakTest, QuantizedPathCarriesControlLedger) {
  std::ostringstream frames;
  const SoakResult r = run_soak(tiny_spec(), frames);
  EXPECT_NE(r.final_dump.find("router.control_messages"), std::string::npos);
  EXPECT_NE(r.final_dump.find("router.control_bytes"), std::string::npos);
}

}  // namespace
}  // namespace thetanet::serve
