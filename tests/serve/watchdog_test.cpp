// DriftWatchdog unit tests: the three soak invariants (flat memory,
// same-seed determinism, flat control-plane rate) tripped and not tripped.

#include "serve/watchdog.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "obs/metrics.h"

namespace thetanet::serve {
namespace {

class WatchdogTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::MetricsRegistry::global().reset(); }
  void TearDown() override { obs::MetricsRegistry::global().reset(); }

  static WatchdogConfig config_for(const std::string& counter) {
    WatchdogConfig cfg;
    cfg.rate_counters = {counter};
    cfg.rate_slack_per_round = 0.0;  // tests control the rates exactly
    return cfg;
  }
};

TEST_F(WatchdogTest, QuietRunPassesAllChecks) {
  DriftWatchdog w(config_for("wd.flat"), 1000);
  const std::vector<std::uint64_t> sums = {7, 7, 7};
  for (std::uint64_t r = 100; r <= 1000; r += 100) {
    TN_OBS_COUNT("wd.flat", 500);  // 5/round, every window
    w.sample(r, 20.0, sums);
  }
  w.finish();
  EXPECT_FALSE(w.tripped()) << w.violations()[0];
}

TEST_F(WatchdogTest, RssBeyondEnvelopeTrips) {
  WatchdogConfig cfg = config_for("wd.rss");
  cfg.rss_allowance_mb = 4.0;
  cfg.rss_growth_frac = 0.10;
  DriftWatchdog w(cfg, 1000);
  const std::vector<std::uint64_t> sums = {1};
  w.sample(250, 40.0, sums);  // warm-up sample arms the envelope at 40 MiB
  w.sample(500, 43.0, sums);  // inside 40 + max(4, 4) = 44
  EXPECT_FALSE(w.tripped());
  w.sample(750, 80.0, sums);  // way outside
  ASSERT_TRUE(w.tripped());
  EXPECT_NE(w.violations()[0].find("flat-memory envelope"), std::string::npos);
  EXPECT_DOUBLE_EQ(w.warm_rss_mb(), 40.0);
}

TEST_F(WatchdogTest, RssGrowthInsideWarmupIsFree) {
  WatchdogConfig cfg = config_for("wd.warm");
  cfg.rss_allowance_mb = 1.0;
  cfg.rss_growth_frac = 0.0;
  DriftWatchdog w(cfg, 1000);
  const std::vector<std::uint64_t> sums = {1};
  w.sample(100, 10.0, sums);   // pre-warm-up: pool growth is expected
  w.sample(200, 90.0, sums);   // still pre-warm-up (warmup = 250 rounds)
  w.sample(300, 90.5, sums);   // arms at 90.5
  w.sample(1000, 91.0, sums);  // inside 90.5 + 1.0
  w.finish();
  EXPECT_FALSE(w.tripped()) << w.violations()[0];
}

TEST_F(WatchdogTest, ShardChecksumDivergenceNamesRoundAndShard) {
  DriftWatchdog w(config_for("wd.drift"), 1000);
  w.sample(250, 10.0, std::vector<std::uint64_t>{5, 5, 5});
  EXPECT_FALSE(w.tripped());
  w.sample(500, 10.0, std::vector<std::uint64_t>{5, 5, 9});
  ASSERT_TRUE(w.tripped());
  const std::string& v = w.violations()[0];
  EXPECT_NE(v.find("determinism drift at round 500"), std::string::npos) << v;
  EXPECT_NE(v.find("shard 2"), std::string::npos) << v;
  // Later divergent samples must not flood the list.
  w.sample(750, 10.0, std::vector<std::uint64_t>{5, 5, 9});
  EXPECT_EQ(w.violations().size(), 1u);
}

TEST_F(WatchdogTest, GrowingCounterRateTripsAtFinish) {
  DriftWatchdog w(config_for("wd.grow"), 1000);
  const std::vector<std::uint64_t> sums = {1};
  std::uint64_t add = 100;
  for (std::uint64_t r = 100; r <= 1000; r += 100) {
    TN_OBS_COUNT("wd.grow", add);
    add += 100;  // rate climbs every window: 1, 2, 3, ... per round
    w.sample(r, 10.0, sums);
  }
  EXPECT_FALSE(w.tripped());  // trend is judged at finish, not per sample
  w.finish();
  ASSERT_TRUE(w.tripped());
  EXPECT_NE(w.violations()[0].find("wd.grow rate grew"), std::string::npos)
      << w.violations()[0];
}

TEST_F(WatchdogTest, SlackForgivesNearSilentCounters) {
  WatchdogConfig cfg = config_for("wd.silent");
  cfg.rate_slack_per_round = 1.0;
  DriftWatchdog w(cfg, 1000);
  const std::vector<std::uint64_t> sums = {1};
  for (std::uint64_t r = 100; r <= 1000; r += 100) {
    // 0/round early, 0.5/round late: 8x relative growth but tiny absolute.
    if (r > 500) TN_OBS_COUNT("wd.silent", 50);
    w.sample(r, 10.0, sums);
  }
  w.finish();
  EXPECT_FALSE(w.tripped()) << w.violations()[0];
}

TEST_F(WatchdogTest, MissingCounterReadsZeroAndNeverTrips) {
  DriftWatchdog w(config_for("wd.never_registered"), 1000);
  const std::vector<std::uint64_t> sums = {1};
  for (std::uint64_t r = 100; r <= 1000; r += 100) w.sample(r, 10.0, sums);
  w.finish();
  EXPECT_FALSE(w.tripped());
}

TEST_F(WatchdogTest, FnvIsOrderSensitiveAndDeterministic) {
  Fnv a, b, c;
  a.mix(1);
  a.mix(2);
  b.mix(1);
  b.mix(2);
  c.mix(2);
  c.mix(1);
  EXPECT_EQ(a.h, b.h);
  EXPECT_NE(a.h, c.h);
  Fnv d, e;
  d.mix_double(0.5);
  e.mix_double(-0.5);
  EXPECT_NE(d.h, e.h);
}

}  // namespace
}  // namespace thetanet::serve
