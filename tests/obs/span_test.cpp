#include "obs/span.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/parallel.h"
#include "obs/metrics.h"

namespace thetanet::obs {
namespace {

class SpanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_recording(true);
    reset_spans();
  }
};

const SpanSnapshot* find(const std::vector<SpanSnapshot>& nodes,
                         std::string_view name) {
  for (const SpanSnapshot& s : nodes)
    if (s.name == name) return &s;
  return nullptr;
}

TEST_F(SpanTest, NestingBuildsATree) {
  {
    Span outer("outer");
    { Span inner("inner"); }
    { Span inner("inner"); }
  }
  { Span other("other"); }
  const auto roots = span_snapshot();
  ASSERT_EQ(roots.size(), 2U);
  const SpanSnapshot* outer = find(roots, "outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 1U);
  ASSERT_EQ(outer->children.size(), 1U);
  EXPECT_EQ(outer->children[0].name, "inner");
  EXPECT_EQ(outer->children[0].count, 2U);
  const SpanSnapshot* other = find(roots, "other");
  ASSERT_NE(other, nullptr);
  EXPECT_TRUE(other->children.empty());
}

TEST_F(SpanTest, RepeatedPhasesAggregateIntoOneNode) {
  for (int i = 0; i < 5; ++i) {
    Span s("phase");
  }
  const auto roots = span_snapshot();
  ASSERT_EQ(roots.size(), 1U);
  EXPECT_EQ(roots[0].count, 5U);
}

TEST_F(SpanTest, ChildrenAreSortedByName) {
  {
    Span outer("outer");
    { Span b("b"); }
    { Span a("a"); }
    { Span c("c"); }
  }
  const auto roots = span_snapshot();
  ASSERT_EQ(roots.size(), 1U);
  ASSERT_EQ(roots[0].children.size(), 3U);
  EXPECT_EQ(roots[0].children[0].name, "a");
  EXPECT_EQ(roots[0].children[1].name, "b");
  EXPECT_EQ(roots[0].children[2].name, "c");
}

TEST_F(SpanTest, WallTimeAccumulatesOnClose) {
  {
    Span s("timed");
  }
  const auto roots = span_snapshot();
  ASSERT_EQ(roots.size(), 1U);
  // steady_clock on every supported platform resolves an open/close pair.
  EXPECT_GT(roots[0].wall_ns, 0U);
}

TEST_F(SpanTest, RecordingOffSkipsSpans) {
  set_recording(false);
  {
    Span s("invisible");
  }
  set_recording(true);
  EXPECT_TRUE(span_snapshot().empty());
}

TEST_F(SpanTest, ResetDropsTheTree) {
  {
    Span s("gone");
  }
  reset_spans();
  EXPECT_TRUE(span_snapshot().empty());
}

TEST_F(SpanTest, ContextScopePropagatesAcrossThreadBoundaries) {
  // Simulates what the pool does: hand the dispatcher's context to another
  // thread, which opens a child span there.
  SpanNode* ctx = nullptr;
  {
    Span outer("dispatcher");
    ctx = current_span();
    ASSERT_NE(ctx, nullptr);
    std::thread worker([&] {
      SpanContextScope scope(ctx);
      Span child("worker_phase");
    });
    worker.join();
  }
  const auto roots = span_snapshot();
  ASSERT_EQ(roots.size(), 1U);
  EXPECT_EQ(roots[0].name, "dispatcher");
  ASSERT_EQ(roots[0].children.size(), 1U);
  EXPECT_EQ(roots[0].children[0].name, "worker_phase");
}

TEST_F(SpanTest, PoolJobsInheritTheDispatchersSpan) {
  // A span opened around a parallel loop must parent any span the chunks
  // open, for every thread count — this is the tree-structure half of the
  // determinism contract.
  for (const int threads : {1, 4}) {
    reset_spans();
    tn::set_num_threads(threads);
    {
      Span phase("phase");
      tn::parallel_for(64, 1, [](std::size_t, std::size_t) {
        Span leaf("leaf");
      });
    }
    const auto roots = span_snapshot();
    ASSERT_EQ(roots.size(), 1U) << "threads=" << threads;
    EXPECT_EQ(roots[0].name, "phase");
    ASSERT_EQ(roots[0].children.size(), 1U) << "threads=" << threads;
    EXPECT_EQ(roots[0].children[0].name, "leaf");
    EXPECT_EQ(roots[0].children[0].count, 64U) << "threads=" << threads;
  }
  tn::set_num_threads(1);
}

}  // namespace
}  // namespace thetanet::obs
