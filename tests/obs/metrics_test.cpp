#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

namespace thetanet::obs {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_recording(true);
    MetricsRegistry::global().reset();
  }
};

const CounterSnapshot* find_counter(const MetricsSnapshot& s,
                                    std::string_view name) {
  for (const CounterSnapshot& c : s.counters)
    if (c.name == name) return &c;
  return nullptr;
}

const DistributionSnapshot* find_dist(const MetricsSnapshot& s,
                                      std::string_view name) {
  for (const DistributionSnapshot& d : s.distributions)
    if (d.name == name) return &d;
  return nullptr;
}

TEST_F(MetricsTest, CounterAccumulatesAndResets) {
  const Counter c("test.counter_a");
  c.add();
  c.add(41);
  EXPECT_EQ(MetricsRegistry::global().counter_value("test.counter_a"), 42U);
  MetricsRegistry::global().reset();
  EXPECT_EQ(MetricsRegistry::global().counter_value("test.counter_a"), 0U);
}

TEST_F(MetricsTest, UnknownCounterReadsZero) {
  EXPECT_EQ(MetricsRegistry::global().counter_value("test.never_registered"),
            0U);
}

TEST_F(MetricsTest, ReRegistrationSharesTheSlot) {
  const Counter a("test.shared");
  const Counter b("test.shared");
  a.add(1);
  b.add(2);
  EXPECT_EQ(MetricsRegistry::global().counter_value("test.shared"), 3U);
}

TEST_F(MetricsTest, MacrosRecordIntoTheRegistry) {
  TN_OBS_COUNT("test.macro_counter", 5);
  TN_OBS_COUNT("test.macro_counter", 7);
  TN_OBS_RECORD("test.macro_dist", 3);
  const MetricsSnapshot s = MetricsRegistry::global().snapshot();
  if (!kTelemetryCompiled) {
    EXPECT_EQ(find_counter(s, "test.macro_counter"), nullptr);
    return;
  }
  ASSERT_NE(find_counter(s, "test.macro_counter"), nullptr);
  EXPECT_EQ(find_counter(s, "test.macro_counter")->value, 12U);
  ASSERT_NE(find_dist(s, "test.macro_dist"), nullptr);
  EXPECT_EQ(find_dist(s, "test.macro_dist")->count, 1U);
}

TEST_F(MetricsTest, RecordingToggleGatesUpdates) {
  const Counter c("test.gated");
  set_recording(false);
  c.add(100);
  set_recording(true);
  c.add(1);
  EXPECT_EQ(MetricsRegistry::global().counter_value("test.gated"), 1U);
}

TEST_F(MetricsTest, DistributionStatsAreExactForCountMinMaxSum) {
  const Distribution d("test.dist_exact");
  for (const std::uint64_t v : {5ull, 1ull, 9ull, 3ull}) d.record(v);
  const MetricsSnapshot s = MetricsRegistry::global().snapshot();
  const DistributionSnapshot* ds = find_dist(s, "test.dist_exact");
  ASSERT_NE(ds, nullptr);
  EXPECT_EQ(ds->count, 4U);
  EXPECT_EQ(ds->min, 1U);
  EXPECT_EQ(ds->max, 9U);
  EXPECT_EQ(ds->sum, 18U);
}

TEST_F(MetricsTest, EmptyDistributionReportsZeros) {
  const Distribution d("test.dist_empty");
  const DistributionSnapshot* ds =
      find_dist(MetricsRegistry::global().snapshot(), "test.dist_empty");
  ASSERT_NE(ds, nullptr);
  EXPECT_EQ(ds->count, 0U);
  EXPECT_EQ(ds->min, 0U);
  EXPECT_EQ(ds->max, 0U);
  EXPECT_EQ(ds->p50, 0U);
  EXPECT_EQ(ds->p99, 0U);
}

TEST_F(MetricsTest, QuantilesAreBucketUpperBounds) {
  const Distribution d("test.dist_q");
  // 99 samples of 1 and one of 1000: p50 lands in the bit_width(1)=1 bucket
  // (upper bound 1); p99 has rank ceil(0.99*100)=99, still in the 1-bucket.
  for (int i = 0; i < 99; ++i) d.record(1);
  d.record(1000);
  const DistributionSnapshot* ds =
      find_dist(MetricsRegistry::global().snapshot(), "test.dist_q");
  ASSERT_NE(ds, nullptr);
  EXPECT_EQ(ds->p50, 1U);
  EXPECT_EQ(ds->p99, 1U);
  EXPECT_EQ(ds->max, 1000U);

  // All mass on one value: every quantile reports that value's bucket
  // upper bound — for 1000 (bit_width 10) that is 1023.
  MetricsRegistry::global().reset();
  for (int i = 0; i < 10; ++i) d.record(1000);
  ds = find_dist(MetricsRegistry::global().snapshot(), "test.dist_q");
  EXPECT_EQ(ds->p50, 1023U);
  EXPECT_EQ(ds->p99, 1023U);
}

TEST_F(MetricsTest, ZeroValueSamplesLandInTheZeroBucket) {
  const Distribution d("test.dist_zero");
  d.record(0);
  d.record(0);
  const DistributionSnapshot* ds =
      find_dist(MetricsRegistry::global().snapshot(), "test.dist_zero");
  ASSERT_NE(ds, nullptr);
  EXPECT_EQ(ds->min, 0U);
  EXPECT_EQ(ds->p50, 0U);
  EXPECT_EQ(ds->p99, 0U);
}

TEST_F(MetricsTest, SnapshotIsSortedByName) {
  const Counter b("test.sort_b");
  const Counter a("test.sort_a");
  b.add(1);
  a.add(1);
  const MetricsSnapshot s = MetricsRegistry::global().snapshot();
  EXPECT_TRUE(std::is_sorted(
      s.counters.begin(), s.counters.end(),
      [](const auto& x, const auto& y) { return x.name < y.name; }));
  EXPECT_TRUE(std::is_sorted(
      s.distributions.begin(), s.distributions.end(),
      [](const auto& x, const auto& y) { return x.name < y.name; }));
}

TEST_F(MetricsTest, StabilityClassIsCarriedIntoSnapshots) {
  const Counter t("test.timing_counter", Stability::kTiming);
  t.add(1);
  const CounterSnapshot* cs = find_counter(
      MetricsRegistry::global().snapshot(), "test.timing_counter");
  ASSERT_NE(cs, nullptr);
  EXPECT_EQ(cs->stability, Stability::kTiming);
}

TEST_F(MetricsTest, CrossThreadCountsMergeExactly) {
  const Counter c("test.cross_thread");
  const Distribution d("test.cross_thread_dist");
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.add(1);
        d.record(i % 7);
      }
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(MetricsRegistry::global().counter_value("test.cross_thread"),
            kThreads * kPerThread);
  const DistributionSnapshot* ds = find_dist(
      MetricsRegistry::global().snapshot(), "test.cross_thread_dist");
  ASSERT_NE(ds, nullptr);
  EXPECT_EQ(ds->count, kThreads * kPerThread);
}

}  // namespace
}  // namespace thetanet::obs
