#include "obs/telemetry_reader.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "obs/trace_sink.h"

namespace thetanet::obs {
namespace {

/// The reader's contract is round-tripping whatever the sink writes, so the
/// primary fixture is a real to_json document, not a hand-written one.
TelemetrySnapshot sink_snapshot() {
  TelemetrySnapshot snap;
  snap.metrics.counters.push_back({"router.injected", Stability::kStable, 42});
  snap.metrics.counters.push_back({"grid.queries", Stability::kStable, 7});
  DistributionSnapshot d;
  d.name = "router.round_peak_buffer";
  d.stability = Stability::kStable;
  d.count = 10;
  d.min = 0;
  d.max = 6;
  d.sum = 23;
  d.p50 = 2;
  d.p99 = 6;
  snap.metrics.distributions.push_back(d);
  SeriesSnapshot u;
  u.name = "router.peak_buffer";
  u.agg = SeriesAgg::kMax;
  u.kind = SeriesKind::kU64;
  u.stride = 4;
  u.rounds = 10;
  u.upoints = {2, 6, 3};
  snap.series.push_back(u);
  SeriesSnapshot f;
  f.name = "mobility.displacement";
  f.agg = SeriesAgg::kSum;
  f.kind = SeriesKind::kF64;
  f.rounds = 2;
  f.fpoints = {0.5, 1.25};
  snap.series.push_back(f);
  SpanSnapshot child;
  child.name = "theta.phase1";
  child.count = 3;
  SpanSnapshot root;
  root.name = "theta.build";
  root.count = 1;
  root.children.push_back(child);
  snap.spans.push_back(root);
  return snap;
}

TEST(TelemetryReader, RoundTripsTheSinkOutput) {
  const std::string doc = to_json(sink_snapshot(), /*include_timing=*/true);
  std::string err;
  const auto parsed = parse_telemetry_json(doc, &err);
  ASSERT_TRUE(parsed.has_value()) << err;

  EXPECT_EQ(parsed->schema, "thetanet-telemetry/2");
  ASSERT_EQ(parsed->counters.size(), 2U);
  EXPECT_EQ(parsed->counters.at("router.injected"), 42U);
  EXPECT_EQ(parsed->counters.at("grid.queries"), 7U);

  ASSERT_EQ(parsed->distributions.size(), 1U);
  const ParsedDistribution& d =
      parsed->distributions.at("router.round_peak_buffer");
  EXPECT_EQ(d.count, 10U);
  EXPECT_EQ(d.min, 0U);
  EXPECT_EQ(d.max, 6U);
  EXPECT_EQ(d.sum, 23U);
  EXPECT_EQ(d.p50, 2U);
  EXPECT_EQ(d.p99, 6U);

  ASSERT_EQ(parsed->series.size(), 2U);
  const ParsedSeries& u = parsed->series.at("router.peak_buffer");
  EXPECT_EQ(u.agg, "max");
  EXPECT_EQ(u.kind, "u64");
  EXPECT_EQ(u.stride, 4U);
  EXPECT_EQ(u.rounds, 10U);
  EXPECT_EQ(u.points, (std::vector<double>{2, 6, 3}));
  const ParsedSeries& f = parsed->series.at("mobility.displacement");
  EXPECT_EQ(f.agg, "sum");
  EXPECT_EQ(f.kind, "f64");
  EXPECT_EQ(f.points, (std::vector<double>{0.5, 1.25}));

  ASSERT_EQ(parsed->spans.size(), 1U);
  EXPECT_EQ(parsed->spans[0].name, "theta.build");
  EXPECT_EQ(parsed->spans[0].count, 1U);
  ASSERT_EQ(parsed->spans[0].children.size(), 1U);
  EXPECT_EQ(parsed->spans[0].children[0].name, "theta.phase1");
}

TEST(TelemetryReader, AcceptsSchemaV1WithoutSeries) {
  const std::string doc = R"({
  "counters": {"a": 1},
  "distributions": {},
  "schema": "thetanet-telemetry/1",
  "spans": []
}
)";
  std::string err;
  const auto parsed = parse_telemetry_json(doc, &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->schema, "thetanet-telemetry/1");
  EXPECT_TRUE(parsed->series.empty());
  EXPECT_EQ(parsed->counters.at("a"), 1U);
}

TEST(TelemetryReader, EscapedNamesRoundTrip) {
  TelemetrySnapshot snap;
  snap.metrics.counters.push_back(
      {"weird\"name\\with\nstuff", Stability::kStable, 5});
  const std::string doc = to_json(snap);
  std::string err;
  const auto parsed = parse_telemetry_json(doc, &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->counters.at("weird\"name\\with\nstuff"), 5U);
}

TEST(TelemetryReader, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",                         // empty
      "{not json",                // bare token
      "[1, 2, 3]",                // root must be an object
      "{\"schema\": \"x\"}",      // unknown schema
      R"({"counters": [], "distributions": {}, "schema": "thetanet-telemetry/1", "spans": []})",  // counters not an object
      R"({"counters": {}, "distributions": {}, "schema": "thetanet-telemetry/2", "series": {"s": {"agg": "sum", "kind": "u64"}}, "spans": []})",  // series without points
      R"({"counters": {}, "distributions": {}, "schema": "thetanet-telemetry/1", "spans": []} trailing)",
      R"({"counters": {"a": "nope"}, "distributions": {}, "schema": "thetanet-telemetry/1", "spans": []})",
  };
  for (const char* doc : bad) {
    std::string err;
    EXPECT_FALSE(parse_telemetry_json(doc, &err).has_value())
        << "accepted: " << doc;
    EXPECT_FALSE(err.empty()) << "no diagnostic for: " << doc;
  }
}

TEST(TelemetryReader, RejectsRunawayNesting) {
  std::string doc = R"({"counters": {}, "distributions": {}, "schema": "thetanet-telemetry/1", "spans": )";
  doc += std::string(256, '[');
  doc += std::string(256, ']');
  doc += "}";
  std::string err;
  EXPECT_FALSE(parse_telemetry_json(doc, &err).has_value());
  EXPECT_FALSE(err.empty());
}

TEST(TelemetryReader, ToleratesUnknownKeys) {
  // Future schema additions must stay readable by today's tools.
  const std::string doc = R"({
  "counters": {"a": 1},
  "distributions": {},
  "future_section": {"x": [1, {"y": null}], "z": true},
  "schema": "thetanet-telemetry/2",
  "series": {"s": {"agg": "sum", "kind": "u64", "points": [1], "rounds": 1, "stride": 1, "new_field": 3}},
  "spans": []
}
)";
  std::string err;
  const auto parsed = parse_telemetry_json(doc, &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->series.at("s").points, (std::vector<double>{1}));
}

TEST(TelemetryReader, LoadTelemetryFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "/reader_roundtrip.json";
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << to_json(sink_snapshot());
  }
  std::string err;
  const auto parsed = load_telemetry_file(path, &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->counters.at("router.injected"), 42U);
}

TEST(TelemetryReader, LoadMissingFileFails) {
  std::string err;
  EXPECT_FALSE(
      load_telemetry_file("/nonexistent-dir/never/x.json", &err).has_value());
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace thetanet::obs
