// Compiled with THETANET_TELEMETRY_DISABLED (see tests/CMakeLists.txt): the
// TN_OBS_* macros must expand to no-ops that still swallow their arguments,
// header-only instrumentation (SpatialGrid::record_scan) must compile out of
// this TU, and the binary must link against the always-compiled obs library
// plus telemetry-ON object files from the rest of the build. Exits 0 on
// success.

#include <cstdio>
#include <string>
#include <vector>

#include "geom/spatial_grid.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timeseries.h"
#include "obs/trace_sink.h"

int main() {
  using namespace thetanet;
  static_assert(!obs::kTelemetryCompiled,
                "this target must build with THETANET_TELEMETRY_DISABLED");

  obs::set_recording(true);

  // Mixed-build link check: the geom library objects were compiled with
  // telemetry ON and may record freely — only code in THIS translation unit
  // has the macros disabled.
  const std::vector<geom::Vec2> pts = {{0.1, 0.1}, {0.2, 0.2}, {0.9, 0.9}};
  const geom::SpatialGrid grid(pts, 0.25);
  const auto hits = grid.within({0.15, 0.15}, 0.2);

  int rc = 0;
  if (hits.size() != 2) {
    std::fprintf(stderr, "grid query broken under telemetry-off: %zu hits\n",
                 hits.size());
    rc = 1;
  }

  // From here on, everything recorded would come from this TU's macros —
  // which are compiled out.
  obs::MetricsRegistry::global().reset();
  obs::SeriesRegistry::global().reset();
  obs::reset_spans();
  TN_OBS_SPAN("off.phase");
  TN_OBS_COUNT("off.counter", 3);
  TN_OBS_COUNT_TIMING("off.timing", 1);
  TN_OBS_RECORD("off.dist", 42);
  TN_OBS_RECORD_TIMING("off.dist_timing", 7);
  TN_OBS_SERIES_ADD("off.series_add", 0, 5);
  TN_OBS_SERIES_MAX("off.series_max", 1, 9);
  TN_OBS_SERIES_ADD_F64("off.series_f64", 2, 1.5);

  if (obs::MetricsRegistry::global().counter_value("off.counter") != 0) {
    std::fprintf(stderr, "disabled macros still recorded counters\n");
    rc = 1;
  }
  if (!obs::span_snapshot().empty()) {
    std::fprintf(stderr, "disabled TN_OBS_SPAN still recorded a span\n");
    rc = 1;
  }
  // The disabled series macros must not have registered or recorded
  // anything (reset() keeps registrations, so an accidental registration
  // would show up in the snapshot).
  if (!obs::SeriesRegistry::global().snapshot().empty()) {
    std::fprintf(stderr, "disabled TN_OBS_SERIES_* still recorded series\n");
    rc = 1;
  }
  // The runtime API itself stays linkable and functional.
  const std::string doc = obs::to_json(obs::capture_telemetry());
  if (doc.find("thetanet-telemetry/2") == std::string::npos) {
    std::fprintf(stderr, "trace sink schema missing from dump\n");
    rc = 1;
  }
  if (doc.find("\"series\": {}") == std::string::npos) {
    std::fprintf(stderr, "empty series section missing from dump\n");
    rc = 1;
  }
  return rc;
}
