// Golden-telemetry fixture driver (see tests/CMakeLists.txt): runs a fixed-
// seed workload — a parallel theta build + interference kernels, then a
// (T, gamma)-balancing router episode — and writes the deterministic
// telemetry dump and the deterministic Chrome trace. CTest runs this under
// TN_NUM_THREADS in {1, 2, 4} plus a same-seed rerun and byte-compares every
// output against the committed golden in tests/obs/golden/, so any change to
// the dump format, the metric catalogue, or the merge algebra shows up as a
// reviewable golden diff.
//
// Exits non-zero if the run itself violates the headline series contract:
// max over the router.peak_buffer series must equal RunMetrics::peak_buffer.
//
// usage: golden_telemetry_main --out DUMP.json [--trace TRACE.json]

#include <cstdio>
#include <cstring>
#include <numbers>
#include <string>
#include <vector>

#include "core/theta_topology.h"
#include "geom/rng.h"
#include "interference/model.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timeseries.h"
#include "obs/trace_event.h"
#include "obs/trace_sink.h"
#include "sim/scenarios.h"
#include "topology/distributions.h"
#include "topology/transmission_graph.h"

int main(int argc, char** argv) {
  using namespace thetanet;

  std::string out_path;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: golden_telemetry_main --out DUMP.json "
                   "[--trace TRACE.json]\n");
      return 2;
    }
  }
  if (out_path.empty()) {
    std::fprintf(stderr, "golden_telemetry_main: --out is required\n");
    return 2;
  }

  obs::set_recording(true);
  obs::MetricsRegistry::global().reset();
  obs::SeriesRegistry::global().reset();
  obs::reset_spans();

  // Phase 1: the parallel construction kernels — spans, grid counters.
  {
    geom::Rng rng(29);
    topo::Deployment d;
    d.positions = topo::uniform_square(400, 1.0, rng);
    d.max_range = 0.15;
    d.kappa = 2.0;
    const core::ThetaTopology tt(d, std::numbers::pi / 9.0);
    const interf::InterferenceModel model{1.0};
    (void)interf::interference_set_sizes(tt.graph(), d, model);
  }

  // Phase 2: a certified adversary trace through the Section 3.2 router —
  // the per-round series this fixture exists for.
  geom::Rng rng(7);
  topo::Deployment d;
  d.positions = topo::uniform_square(40, 1.0, rng);
  d.max_range = 0.5;
  d.kappa = 2.0;
  const graph::Graph topo = topo::build_transmission_graph(d);
  route::TraceParams tp;
  tp.horizon = 600;
  tp.injections_per_step = 2.0;
  tp.num_sources = 4;
  tp.num_destinations = 2;
  const route::AdversaryTrace trace = route::make_certified_trace(topo, tp, rng);
  const core::BalancingParams params =
      core::theorem31_params(trace.opt, 0.25, 4.0);
  const sim::ScenarioResult res = sim::run_mac_given(trace, params, 200);

  // The headline contract: the downsampled series still carries the exact
  // Theorem 3.1 peak the invariant checker consumed.
  std::uint64_t series_max = 0;
  bool found = false;
  for (const obs::SeriesSnapshot& s : obs::SeriesRegistry::global().snapshot()) {
    if (s.name != "router.peak_buffer") continue;
    found = true;
    for (const std::uint64_t v : s.upoints)
      series_max = series_max < v ? v : series_max;
  }
  if (!found) {
    std::fprintf(stderr, "router.peak_buffer series missing from the run\n");
    return 1;
  }
  if (series_max != res.metrics.peak_buffer) {
    std::fprintf(stderr,
                 "series max %llu != RunMetrics::peak_buffer %llu\n",
                 static_cast<unsigned long long>(series_max),
                 static_cast<unsigned long long>(res.metrics.peak_buffer));
    return 1;
  }

  if (!obs::write_telemetry_json(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  if (!trace_path.empty() && !obs::write_trace_event_json(trace_path)) {
    std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
    return 1;
  }
  return 0;
}
