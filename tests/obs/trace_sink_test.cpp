#include "obs/trace_sink.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace thetanet::obs {
namespace {

/// A hand-built snapshot exercising sorting, stability filtering, nesting,
/// and escaping — the golden JSON below is the schema contract.
TelemetrySnapshot sample_snapshot() {
  TelemetrySnapshot snap;
  snap.metrics.counters.push_back({"alpha.count", Stability::kStable, 3});
  snap.metrics.counters.push_back({"beta.count", Stability::kTiming, 9});
  DistributionSnapshot d;
  d.name = "alpha.dist";
  d.stability = Stability::kStable;
  d.count = 4;
  d.min = 1;
  d.max = 9;
  d.sum = 18;
  d.p50 = 3;
  d.p99 = 15;
  snap.metrics.distributions.push_back(d);
  SeriesSnapshot s;
  s.name = "alpha.series";
  s.agg = SeriesAgg::kMax;
  s.kind = SeriesKind::kU64;
  s.stride = 2;
  s.rounds = 6;
  s.upoints = {1, 7, 4};
  snap.series.push_back(s);
  SeriesSnapshot t;
  t.name = "beta.series";
  t.agg = SeriesAgg::kSum;
  t.kind = SeriesKind::kF64;
  t.stability = Stability::kTiming;
  t.rounds = 2;
  t.fpoints = {0.5, 1.25};
  snap.series.push_back(t);
  SpanSnapshot child;
  child.name = "child";
  child.count = 2;
  child.wall_ns = 50;
  SpanSnapshot root;
  root.name = "root";
  root.count = 1;
  root.wall_ns = 100;
  root.children.push_back(child);
  snap.spans.push_back(root);
  return snap;
}

TEST(TraceSink, GoldenDeterministicJson) {
  // Byte-exact golden: deterministic mode drops kTiming metrics/series and
  // all wall_ns fields; keys at every level are sorted.
  const std::string expected = R"({
  "counters": {
    "alpha.count": 3
  },
  "distributions": {
    "alpha.dist": {"count": 4, "max": 9, "min": 1, "p50": 3, "p99": 15, "sum": 18}
  },
  "schema": "thetanet-telemetry/2",
  "series": {
    "alpha.series": {"agg": "max", "kind": "u64", "points": [1, 7, 4], "rounds": 6, "stride": 2}
  },
  "spans": [
    {
      "children": [
        {
          "children": [],
          "count": 2,
          "name": "child"
        }
      ],
      "count": 1,
      "name": "root"
    }
  ]
}
)";
  EXPECT_EQ(to_json(sample_snapshot(), /*include_timing=*/false), expected);
}

TEST(TraceSink, TimingModeAddsTimingMetricsAndWallTime) {
  const std::string doc = to_json(sample_snapshot(), /*include_timing=*/true);
  EXPECT_NE(doc.find("\"beta.count\": 9"), std::string::npos);
  EXPECT_NE(doc.find("\"wall_ns\": 100"), std::string::npos);
  EXPECT_NE(doc.find("\"wall_ns\": 50"), std::string::npos);
  // Timing-class series appear, f64 points in shortest round-trip form.
  EXPECT_NE(doc.find("\"beta.series\": {\"agg\": \"sum\", \"kind\": \"f64\", "
                     "\"points\": [0.5, 1.25]"),
            std::string::npos);
}

TEST(TraceSink, DeterministicModeExcludesWallTime) {
  const std::string doc = to_json(sample_snapshot(), /*include_timing=*/false);
  EXPECT_EQ(doc.find("wall_ns"), std::string::npos);
  EXPECT_EQ(doc.find("beta.count"), std::string::npos);
  EXPECT_EQ(doc.find("beta.series"), std::string::npos);
}

TEST(TraceSink, EmptySnapshotIsValidJson) {
  const TelemetrySnapshot empty;
  const std::string expected = R"({
  "counters": {},
  "distributions": {},
  "schema": "thetanet-telemetry/2",
  "series": {},
  "spans": []
}
)";
  EXPECT_EQ(to_json(empty), expected);
}

TEST(TraceSink, StringsAreEscaped) {
  TelemetrySnapshot snap;
  snap.metrics.counters.push_back({"weird\"name\\with\nstuff",
                                   Stability::kStable, 1});
  const std::string doc = to_json(snap);
  EXPECT_NE(doc.find(R"("weird\"name\\with\nstuff": 1)"), std::string::npos);
}

TEST(TraceSink, TextTableListsEverySection) {
  const std::string text = to_text(sample_snapshot());
  EXPECT_NE(text.find("counters"), std::string::npos);
  EXPECT_NE(text.find("alpha.count"), std::string::npos);
  EXPECT_NE(text.find("beta.count"), std::string::npos);
  EXPECT_NE(text.find("(timing)"), std::string::npos);
  EXPECT_NE(text.find("alpha.dist"), std::string::npos);
  EXPECT_NE(text.find("alpha.series"), std::string::npos);
  EXPECT_NE(text.find("beta.series"), std::string::npos);
  EXPECT_NE(text.find("root"), std::string::npos);
  EXPECT_NE(text.find("child"), std::string::npos);
}

TEST(TraceSink, WriteTelemetryJsonRoundTrips) {
  const std::string path =
      ::testing::TempDir() + "/trace_sink_roundtrip.json";
  ASSERT_TRUE(write_telemetry_json(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  const std::size_t got = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  ASSERT_GT(got, 0U);
  EXPECT_EQ(std::string(buf).substr(0, 2), "{\n");
}

TEST(TraceSink, WriteToUnwritablePathFails) {
  EXPECT_FALSE(write_telemetry_json("/nonexistent-dir/never/x.json"));
}

}  // namespace
}  // namespace thetanet::obs
