#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

namespace thetanet::obs {
namespace {

/// The registry is global; every test uses its own series names and resets
/// samples up front so ordering cannot leak state between tests.
class TimeseriesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_recording(true);
    SeriesRegistry::global().reset();
    saved_capacity_ = SeriesRegistry::global().capacity();
  }
  void TearDown() override {
    SeriesRegistry::global().set_capacity(saved_capacity_);
    SeriesRegistry::global().reset();
  }

  static const SeriesSnapshot* find(const std::vector<SeriesSnapshot>& all,
                                    std::string_view name) {
    for (const SeriesSnapshot& s : all)
      if (s.name == name) return &s;
    return nullptr;
  }

 private:
  std::size_t saved_capacity_ = 0;
};

TEST_F(TimeseriesTest, SumSeriesRecordsPerRound) {
  auto& reg = SeriesRegistry::global();
  const std::uint32_t id =
      reg.register_series("t.sum_basic", SeriesKind::kU64, SeriesAgg::kSum);
  reg.record_u64(id, 0, 2);
  reg.record_u64(id, 0, 3);  // same round folds
  reg.record_u64(id, 2, 7);  // round 1 left at the identity
  const auto all = reg.snapshot();
  const SeriesSnapshot* s = find(all, "t.sum_basic");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->stride, 1U);
  EXPECT_EQ(s->rounds, 3U);
  EXPECT_EQ(s->upoints, (std::vector<std::uint64_t>{5, 0, 7}));
}

TEST_F(TimeseriesTest, MaxSeriesKeepsPerRoundPeak) {
  auto& reg = SeriesRegistry::global();
  const std::uint32_t id =
      reg.register_series("t.max_basic", SeriesKind::kU64, SeriesAgg::kMax);
  reg.record_u64(id, 0, 4);
  reg.record_u64(id, 0, 9);
  reg.record_u64(id, 0, 2);
  const auto all = reg.snapshot();
  const SeriesSnapshot* s = find(all, "t.max_basic");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->upoints, (std::vector<std::uint64_t>{9}));
}

TEST_F(TimeseriesTest, ReRegisteringReturnsTheSameId) {
  auto& reg = SeriesRegistry::global();
  const std::uint32_t a =
      reg.register_series("t.reregister", SeriesKind::kU64, SeriesAgg::kSum);
  const std::uint32_t b =
      reg.register_series("t.reregister", SeriesKind::kU64, SeriesAgg::kSum);
  EXPECT_EQ(a, b);
}

TEST_F(TimeseriesTest, DownsamplingPreservesSumAndMaxExactly) {
  auto& reg = SeriesRegistry::global();
  reg.set_capacity(8);
  const std::uint32_t sum_id =
      reg.register_series("t.ds_sum", SeriesKind::kU64, SeriesAgg::kSum);
  const std::uint32_t max_id =
      reg.register_series("t.ds_max", SeriesKind::kU64, SeriesAgg::kMax);
  const std::uint64_t rounds = 1000;
  std::uint64_t expect_total = 0, expect_peak = 0;
  for (std::uint64_t r = 0; r < rounds; ++r) {
    const std::uint64_t v = (r * 37) % 101;
    reg.record_u64(sum_id, r, v);
    reg.record_u64(max_id, r, v);
    expect_total += v;
    expect_peak = std::max(expect_peak, v);
  }
  const auto all = reg.snapshot();
  const SeriesSnapshot* sum_s = find(all, "t.ds_sum");
  const SeriesSnapshot* max_s = find(all, "t.ds_max");
  ASSERT_NE(sum_s, nullptr);
  ASSERT_NE(max_s, nullptr);
  // Memory stayed within capacity; stride is the smallest power of two that
  // fits the rounds into it.
  EXPECT_LE(sum_s->upoints.size(), 8U);
  EXPECT_EQ(sum_s->stride, 128U);
  EXPECT_EQ(sum_s->rounds, rounds);
  // Sum-of-windows and max-of-windows survive downsampling losslessly.
  EXPECT_EQ(std::accumulate(sum_s->upoints.begin(), sum_s->upoints.end(),
                            std::uint64_t{0}),
            expect_total);
  EXPECT_EQ(*std::max_element(max_s->upoints.begin(), max_s->upoints.end()),
            expect_peak);
  // Each window holds exactly the fold of its rounds.
  for (std::size_t i = 0; i < sum_s->upoints.size(); ++i) {
    std::uint64_t want = 0;
    for (std::uint64_t r = i * sum_s->stride;
         r < std::min(rounds, (i + 1) * sum_s->stride); ++r)
      want += (r * 37) % 101;
    EXPECT_EQ(sum_s->upoints[i], want) << "window " << i;
  }
}

TEST_F(TimeseriesTest, CapacityHasAFloorOfTwo) {
  auto& reg = SeriesRegistry::global();
  reg.set_capacity(0);
  EXPECT_EQ(reg.capacity(), 2U);
  const std::uint32_t id =
      reg.register_series("t.cap_floor", SeriesKind::kU64, SeriesAgg::kSum);
  for (std::uint64_t r = 0; r < 100; ++r) reg.record_u64(id, r, 1);
  const auto all = reg.snapshot();
  const SeriesSnapshot* s = find(all, "t.cap_floor");
  ASSERT_NE(s, nullptr);
  EXPECT_LE(s->upoints.size(), 2U);
  EXPECT_EQ(std::accumulate(s->upoints.begin(), s->upoints.end(),
                            std::uint64_t{0}),
            100U);
}

TEST_F(TimeseriesTest, CrossThreadMergeMatchesSingleThreadRun) {
  // The same (round, value) multiset recorded by 4 threads must merge to
  // the exact snapshot a single-thread run produces — the in-process
  // version of the TN_NUM_THREADS golden-dump fixtures.
  auto& reg = SeriesRegistry::global();
  reg.set_capacity(16);
  const std::uint32_t sum_id =
      reg.register_series("t.mt_sum", SeriesKind::kU64, SeriesAgg::kSum);
  const std::uint32_t max_id =
      reg.register_series("t.mt_max", SeriesKind::kU64, SeriesAgg::kMax);
  const std::uint64_t rounds = 500;
  const auto value = [](std::uint64_t r) { return (r * 13) % 97; };

  std::vector<std::thread> workers;
  for (unsigned w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      for (std::uint64_t r = w; r < rounds; r += 4) {
        reg.record_u64(sum_id, r, value(r));
        reg.record_u64(max_id, r, value(r));
      }
    });
  }
  for (std::thread& t : workers) t.join();
  const auto threaded = reg.snapshot();

  reg.reset();
  for (std::uint64_t r = 0; r < rounds; ++r) {
    reg.record_u64(sum_id, r, value(r));
    reg.record_u64(max_id, r, value(r));
  }
  const auto single = reg.snapshot();

  for (const char* name : {"t.mt_sum", "t.mt_max"}) {
    const SeriesSnapshot* a = find(threaded, name);
    const SeriesSnapshot* b = find(single, name);
    ASSERT_NE(a, nullptr) << name;
    ASSERT_NE(b, nullptr) << name;
    EXPECT_EQ(a->stride, b->stride) << name;
    EXPECT_EQ(a->rounds, b->rounds) << name;
    EXPECT_EQ(a->upoints, b->upoints) << name;
  }
}

TEST_F(TimeseriesTest, F64SeriesRecordsAndSnapshots) {
  auto& reg = SeriesRegistry::global();
  const std::uint32_t id =
      reg.register_series("t.f64", SeriesKind::kF64, SeriesAgg::kSum);
  reg.record_f64(id, 0, 1.5);
  reg.record_f64(id, 1, 0.25);
  reg.record_f64(id, 1, 0.25);
  const auto all = reg.snapshot();
  const SeriesSnapshot* s = find(all, "t.f64");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->kind, SeriesKind::kF64);
  EXPECT_EQ(s->fpoints, (std::vector<double>{1.5, 0.5}));
  EXPECT_TRUE(s->upoints.empty());
}

TEST_F(TimeseriesTest, ResetDropsSamplesButKeepsRegistrations) {
  auto& reg = SeriesRegistry::global();
  const std::uint32_t id =
      reg.register_series("t.reset", SeriesKind::kU64, SeriesAgg::kSum);
  reg.record_u64(id, 5, 9);
  reg.reset();
  const auto all = reg.snapshot();
  const SeriesSnapshot* s = find(all, "t.reset");
  ASSERT_NE(s, nullptr);  // registration survives
  EXPECT_EQ(s->rounds, 0U);
  EXPECT_TRUE(s->upoints.empty());
}

TEST_F(TimeseriesTest, MacrosRecordWhenEnabledAndHonourRecordingSwitch) {
  TN_OBS_SERIES_ADD("t.macro_add", 0, 4);
  TN_OBS_SERIES_MAX("t.macro_max", 0, 7);
  TN_OBS_SERIES_ADD_F64("t.macro_f64", 0, 2.5);
  set_recording(false);
  TN_OBS_SERIES_ADD("t.macro_add", 1, 100);
  set_recording(true);

  const auto all = SeriesRegistry::global().snapshot();
  const SeriesSnapshot* add_s = find(all, "t.macro_add");
  ASSERT_NE(add_s, nullptr);
  if (kTelemetryCompiled) {
    EXPECT_EQ(add_s->upoints, (std::vector<std::uint64_t>{4}));
    const SeriesSnapshot* max_s = find(all, "t.macro_max");
    ASSERT_NE(max_s, nullptr);
    EXPECT_EQ(max_s->upoints, (std::vector<std::uint64_t>{7}));
    const SeriesSnapshot* f_s = find(all, "t.macro_f64");
    ASSERT_NE(f_s, nullptr);
    EXPECT_EQ(f_s->fpoints, (std::vector<double>{2.5}));
  }
}

TEST_F(TimeseriesTest, SnapshotIsSortedByName) {
  auto& reg = SeriesRegistry::global();
  reg.register_series("t.zzz", SeriesKind::kU64, SeriesAgg::kSum);
  reg.register_series("t.aaa", SeriesKind::kU64, SeriesAgg::kSum);
  const auto all = reg.snapshot();
  ASSERT_GE(all.size(), 2U);
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end(),
                             [](const SeriesSnapshot& a,
                                const SeriesSnapshot& b) {
                               return a.name < b.name;
                             }));
}

}  // namespace
}  // namespace thetanet::obs
