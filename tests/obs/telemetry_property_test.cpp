// Property tests for the telemetry wiring (ISSUE satellite 2): conservation
// identities between instrumented counters and the ground-truth RunMetrics /
// grid results they shadow, plus the cross-thread-count byte-identity of the
// deterministic JSON dump on a real workload.

#include <gtest/gtest.h>

#include <numbers>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "core/theta_topology.h"
#include "geom/rng.h"
#include "geom/spatial_grid.h"
#include "interference/model.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timeseries.h"
#include "obs/trace_sink.h"
#include "sim/scenarios.h"
#include "topology/distributions.h"
#include "topology/transmission_graph.h"

namespace thetanet {
namespace {

class TelemetryPropertyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::kTelemetryCompiled)
      GTEST_SKIP() << "telemetry compiled out (THETANET_TELEMETRY=OFF)";
    obs::set_recording(true);
    obs::MetricsRegistry::global().reset();
    obs::SeriesRegistry::global().reset();
    obs::reset_spans();
    tn::set_num_threads(1);
  }
  void TearDown() override { tn::set_num_threads(1); }
};

std::uint64_t counter(std::string_view name) {
  return obs::MetricsRegistry::global().counter_value(name);
}

const obs::DistributionSnapshot* find_dist(const obs::MetricsSnapshot& s,
                                           std::string_view name) {
  for (const obs::DistributionSnapshot& d : s.distributions)
    if (d.name == name) return &d;
  return nullptr;
}

TEST_F(TelemetryPropertyTest, GridExaminedDominatesReported) {
  // Over a spread of random deployments and query shapes, the prefilter can
  // only narrow: every reported point was first examined, and every examined
  // point lives in a scanned cell.
  for (const std::uint64_t seed : {1ull, 17ull, 92ull}) {
    geom::Rng rng(seed);
    const std::vector<geom::Vec2> pts = topo::uniform_square(200, 1.0, rng);
    const geom::SpatialGrid grid(pts, 0.08);
    obs::MetricsRegistry::global().reset();
    std::uint64_t reported_by_hand = 0;
    for (int q = 0; q < 32; ++q) {
      const geom::Vec2 c = pts[static_cast<std::size_t>(q * 6)];
      reported_by_hand += grid.within(c, 0.05 + 0.01 * (q % 4)).size();
    }
    EXPECT_EQ(counter("grid.queries"), 32U);
    EXPECT_EQ(counter("grid.reported"), reported_by_hand);
    EXPECT_GE(counter("grid.points_examined"), counter("grid.reported"));
    EXPECT_GE(counter("grid.cells_scanned"), counter("grid.queries"));
  }
}

TEST_F(TelemetryPropertyTest, RouterCountersConserveAgainstRunMetrics) {
  // The instrumented counters must reconcile exactly with the RunMetrics the
  // simulation itself reports — the telemetry is a shadow, not a second
  // bookkeeping path.
  geom::Rng rng(7);
  topo::Deployment d;
  d.positions = topo::uniform_square(40, 1.0, rng);
  d.max_range = 0.5;
  d.kappa = 2.0;
  const graph::Graph topo = topo::build_transmission_graph(d);
  route::TraceParams tp;
  tp.horizon = 600;
  tp.injections_per_step = 2.0;
  tp.num_sources = 4;
  tp.num_destinations = 2;
  const route::AdversaryTrace trace = route::make_certified_trace(topo, tp, rng);
  const core::BalancingParams params =
      core::theorem31_params(trace.opt, 0.25, 4.0);

  obs::MetricsRegistry::global().reset();
  obs::SeriesRegistry::global().reset();
  const sim::ScenarioResult res = sim::run_mac_given(trace, params, 200);
  const route::RunMetrics& m = res.metrics;

  // Injection split.
  EXPECT_EQ(counter("router.injected"), m.injected_offered);
  EXPECT_EQ(counter("router.accepted"), m.injected_accepted);
  EXPECT_EQ(counter("router.injected"),
            counter("router.accepted") + counter("router.dropped_at_injection"));

  // Packet conservation: everything accepted is delivered, dropped in
  // transit, or still in flight when the run ends.
  EXPECT_EQ(counter("router.accepted"),
            counter("router.delivered") + counter("router.dropped_in_transit") +
                m.leftover_packets);

  // Transmission ledger matches RunMetrics field by field.
  EXPECT_EQ(counter("router.attempted_tx"), m.attempted_tx);
  EXPECT_EQ(counter("router.failed_tx"), m.failed_tx);
  EXPECT_EQ(counter("router.skipped_tx"), m.skipped_tx);
  EXPECT_EQ(counter("router.delivered"), m.deliveries);

  // The per-round peak-height distribution is the §3 space-bound series: its
  // max is exactly the peak_buffer the invariant checker consumes, and one
  // sample was recorded per round.
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  const obs::DistributionSnapshot* peak =
      find_dist(snap, "router.round_peak_buffer");
  ASSERT_NE(peak, nullptr);
  EXPECT_EQ(peak->max, m.peak_buffer);
  EXPECT_EQ(peak->count, counter("router.rounds"));
  EXPECT_GT(counter("router.rounds"), 0U);

  // The per-round series shadow the same single bookkeeping path: the max
  // over the peak_buffer series IS RunMetrics::peak_buffer (downsampling
  // folds windows with max, so this holds at any retained resolution), and
  // the sum-series totals reconcile with the endpoint counters.
  const std::vector<obs::SeriesSnapshot> series =
      obs::SeriesRegistry::global().snapshot();
  const auto find_series =
      [&](std::string_view name) -> const obs::SeriesSnapshot* {
    for (const obs::SeriesSnapshot& s : series)
      if (s.name == name) return &s;
    return nullptr;
  };
  const obs::SeriesSnapshot* peak_series = find_series("router.peak_buffer");
  ASSERT_NE(peak_series, nullptr);
  std::uint64_t series_max = 0;
  for (const std::uint64_t v : peak_series->upoints)
    series_max = std::max(series_max, v);
  EXPECT_EQ(series_max, m.peak_buffer);
  EXPECT_EQ(peak_series->rounds, counter("router.rounds"));

  const auto series_total = [&](std::string_view name) {
    const obs::SeriesSnapshot* s = find_series(name);
    std::uint64_t total = 0;
    if (s != nullptr)
      for (const std::uint64_t v : s->upoints) total += v;
    return total;
  };
  EXPECT_EQ(series_total("router.injections"), m.injected_offered);
  EXPECT_EQ(series_total("router.tx_attempted"), m.attempted_tx);
  EXPECT_EQ(series_total("router.tx_failed"), m.failed_tx);
  EXPECT_EQ(series_total("router.tx_skipped"), m.skipped_tx);
  EXPECT_EQ(series_total("router.deliveries"), m.deliveries);
  EXPECT_EQ(series_total("router.dropped_in_transit"), m.dropped_in_transit);
}

TEST_F(TelemetryPropertyTest, SpanChildTimeIsBoundedByParentTime) {
  // Single-threaded, children are strictly nested inside their parent, so
  // summed child wall time cannot exceed the parent's.
  geom::Rng rng(3);
  topo::Deployment d;
  d.positions = topo::uniform_square(300, 1.0, rng);
  d.max_range = 0.2;
  d.kappa = 2.0;
  const core::ThetaTopology tt(d, std::numbers::pi / 9.0);
  const interf::InterferenceModel model{1.0};
  (void)interf::interference_set_sizes(tt.graph(), d, model);

  const std::vector<obs::SpanSnapshot> roots = obs::span_snapshot();
  ASSERT_FALSE(roots.empty());
  struct Checker {
    static void check(const obs::SpanSnapshot& node) {
      std::uint64_t child_total = 0;
      for (const obs::SpanSnapshot& c : node.children) {
        child_total += c.wall_ns;
        check(c);
      }
      EXPECT_LE(child_total, node.wall_ns) << "span " << node.name;
    }
  };
  for (const obs::SpanSnapshot& r : roots) Checker::check(r);

  // The theta build recorded its two phases under one parent.
  const obs::SpanSnapshot* build = nullptr;
  for (const obs::SpanSnapshot& r : roots)
    if (r.name == "theta.build") build = &r;
  ASSERT_NE(build, nullptr);
  ASSERT_EQ(build->children.size(), 2U);
  EXPECT_EQ(build->children[0].name, "theta.phase1");
  EXPECT_EQ(build->children[1].name, "theta.phase2");
}

TEST_F(TelemetryPropertyTest, DeterministicJsonIsByteIdenticalAcrossThreads) {
  // The same workload at 1, 2, and 4 threads must produce the same
  // deterministic dump — the in-process version of the ctest fixture diff.
  const auto run_workload = [] {
    geom::Rng rng(11);
    topo::Deployment d;
    d.positions = topo::uniform_square(400, 1.0, rng);
    d.max_range = 0.15;
    d.kappa = 2.0;
    const core::ThetaTopology tt(d, std::numbers::pi / 9.0);
    const interf::InterferenceModel model{1.0};
    (void)interf::interference_set_sizes(tt.graph(), d, model);
    (void)interf::interference_sets(tt.graph(), d, model);
  };
  std::vector<std::string> dumps;
  for (const int threads : {1, 2, 4}) {
    tn::set_num_threads(threads);
    obs::MetricsRegistry::global().reset();
    obs::reset_spans();
    run_workload();
    dumps.push_back(
        obs::to_json(obs::capture_telemetry(), /*include_timing=*/false));
  }
  EXPECT_EQ(dumps[0], dumps[1]);
  EXPECT_EQ(dumps[0], dumps[2]);
}

}  // namespace
}  // namespace thetanet
