#include "obs/stream.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/telemetry_reader.h"
#include "obs/timeseries.h"
#include "obs/trace_sink.h"

namespace thetanet::obs {
namespace {

/// Streaming tests drive the real global registries (the streamer captures
/// them), so every test resets all three stores up front. Registrations from
/// other suites survive a reset at value 0 — the fold contract covers them
/// like any other metric, so byte-equality checks stay valid.
class StreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_recording(true);
    MetricsRegistry::global().reset();
    SeriesRegistry::global().reset();
    reset_spans();
    saved_capacity_ = SeriesRegistry::global().capacity();
  }
  void TearDown() override {
    SeriesRegistry::global().set_capacity(saved_capacity_);
    MetricsRegistry::global().reset();
    SeriesRegistry::global().reset();
    reset_spans();
  }

  /// Fold a concatenated stream and return the reconstructed /2 document.
  static std::string fold_stream(const std::string& stream) {
    std::string err;
    const auto frames = parse_telemetry_stream(stream, &err);
    EXPECT_TRUE(frames.has_value()) << err;
    if (!frames) return {};
    StreamFolder folder;
    for (const ParsedFrame& f : *frames) {
      EXPECT_TRUE(folder.fold(f, &err)) << err;
    }
    return folder.to_dump_json();
  }

 private:
  std::size_t saved_capacity_ = 0;
};

TEST_F(StreamTest, FoldOfFramesByteEqualsOneShotDump) {
  SeriesRegistry::global().set_capacity(4);  // force stride growth mid-run
  auto& metrics = MetricsRegistry::global();
  auto& series = SeriesRegistry::global();
  const std::uint32_t c1 = metrics.register_counter("st.alpha",
                                                    Stability::kStable);
  const std::uint32_t d1 =
      metrics.register_distribution("st.dist", Stability::kStable);
  const std::uint32_t s_sum =
      series.register_series("st.sum", SeriesKind::kU64, SeriesAgg::kSum);
  const std::uint32_t s_max =
      series.register_series("st.max", SeriesKind::kU64, SeriesAgg::kMax);
  const std::uint32_t s_f64 =
      series.register_series("st.energy", SeriesKind::kF64, SeriesAgg::kSum);

  TelemetryStreamer streamer;
  std::string stream;
  Counter alpha_handle("st.alpha");
  (void)c1;
  (void)d1;
  Distribution dist_handle("st.dist");
  for (std::uint64_t round = 0; round < 24; ++round) {
    alpha_handle.add(round + 1);
    dist_handle.record(round * 3 + 1);
    series.record_u64(s_sum, round, round * 7 + 1);
    series.record_u64(s_max, round, (round * 13) % 31);
    series.record_f64(s_f64, round, 0.1 * static_cast<double>(round) + 0.01);
    if (round % 5 == 4) stream += streamer.next_frame();
    if (round == 10) {
      // A span subtree appearing mid-run must ride in exactly one frame.
      TN_OBS_SPAN("st.phase");
      TN_OBS_SPAN("st.inner");
    }
  }
  // A counter registered late must appear in the next frame even at zero.
  metrics.register_counter("st.late_zero", Stability::kStable);
  stream += streamer.next_frame();

  const std::string folded = fold_stream(stream);
  const std::string dump = to_json(capture_telemetry(), false);
  EXPECT_EQ(folded, dump);
  EXPECT_NE(dump.find("\"st.late_zero\": 0"), std::string::npos);
}

TEST_F(StreamTest, CountersCarryDeltasNotTotals) {
  Counter c("st.delta_counter");
  TelemetryStreamer streamer;
  c.add(5);
  const std::string f0 = streamer.next_frame();
  c.add(2);
  const std::string f1 = streamer.next_frame();
  std::string err;
  const auto frames = parse_telemetry_stream(f0 + f1, &err);
  ASSERT_TRUE(frames.has_value()) << err;
  ASSERT_EQ(frames->size(), 2U);
  EXPECT_EQ(frames->at(0).counters.at("st.delta_counter"), 5U);
  EXPECT_EQ(frames->at(1).counters.at("st.delta_counter"), 2U);
}

TEST_F(StreamTest, IdleIntervalYieldsEmptySectionsAndNoSpans) {
  TelemetryStreamer streamer;
  const std::string f0 = streamer.next_frame();
  const std::string f1 = streamer.next_frame();  // nothing happened
  std::string err;
  const auto frames = parse_telemetry_stream(f0 + f1, &err);
  ASSERT_TRUE(frames.has_value()) << err;
  const ParsedFrame& idle = frames->at(1);
  EXPECT_TRUE(idle.counters.empty());
  EXPECT_TRUE(idle.distributions.empty());
  EXPECT_TRUE(idle.series.empty());
  EXPECT_FALSE(idle.has_spans);
}

TEST_F(StreamTest, SeriesFramesAreSparse) {
  auto& series = SeriesRegistry::global();
  const std::uint32_t id =
      series.register_series("st.sparse", SeriesKind::kU64, SeriesAgg::kSum);
  TelemetryStreamer streamer;
  for (std::uint64_t r = 0; r < 8; ++r) series.record_u64(id, r, 1);
  const std::string f0 = streamer.next_frame();
  series.record_u64(id, 8, 3);  // only the new round's window changes
  const std::string f1 = streamer.next_frame();
  std::string err;
  const auto frames = parse_telemetry_stream(f0 + f1, &err);
  ASSERT_TRUE(frames.has_value()) << err;
  const ParsedSeriesDelta& delta = frames->at(1).series.at("st.sparse");
  ASSERT_EQ(delta.uwindows.size(), 1U);
  EXPECT_EQ(delta.uwindows[0].first, 8U);
  EXPECT_EQ(delta.uwindows[0].second, 3U);
  EXPECT_EQ(delta.rounds, 9U);
}

TEST_F(StreamTest, FolderRewindowsAcrossStrideGrowth) {
  SeriesRegistry::global().set_capacity(4);
  auto& series = SeriesRegistry::global();
  const std::uint32_t id =
      series.register_series("st.grow", SeriesKind::kU64, SeriesAgg::kMax);
  TelemetryStreamer streamer;
  std::string stream;
  for (std::uint64_t r = 0; r < 3; ++r) series.record_u64(id, r, r + 10);
  stream += streamer.next_frame();  // stride 1
  for (std::uint64_t r = 3; r < 16; ++r) series.record_u64(id, r, r + 10);
  stream += streamer.next_frame();  // stride grew to 4
  EXPECT_EQ(fold_stream(stream), to_json(capture_telemetry(), false));
}

TEST_F(StreamTest, FolderRejectsSequenceGap) {
  TelemetryStreamer streamer;
  (void)streamer.next_frame();
  const std::string f1 = streamer.next_frame();
  // Skip frame 0: the folder must refuse frame 1.
  const std::size_t body_at = f1.find('\n') + 1;
  std::string err;
  const auto frame = parse_stream_frame(f1.substr(body_at), &err);
  ASSERT_TRUE(frame.has_value()) << err;
  StreamFolder folder;
  EXPECT_FALSE(folder.fold(*frame, &err));
  EXPECT_NE(err.find("expected frame 0"), std::string::npos);
}

TEST_F(StreamTest, StreamParserValidatesFraming) {
  TelemetryStreamer streamer;
  const std::string f0 = streamer.next_frame();
  std::string err;
  // Truncated body.
  EXPECT_FALSE(
      parse_telemetry_stream(f0.substr(0, f0.size() - 2), &err).has_value());
  // Garbage header.
  EXPECT_FALSE(parse_telemetry_stream("FRAME x 10\n0123456789", &err));
  // Sequence starting at 1.
  std::string renumbered = f0;
  renumbered.replace(6, 1, "1");
  EXPECT_FALSE(parse_telemetry_stream(renumbered, &err).has_value());
  EXPECT_NE(err.find("sequence"), std::string::npos);
}

TEST_F(StreamTest, F64SeriesFoldBitExactly) {
  auto& series = SeriesRegistry::global();
  const std::uint32_t id =
      series.register_series("st.float", SeriesKind::kF64, SeriesAgg::kSum);
  TelemetryStreamer streamer;
  std::string stream;
  for (std::uint64_t r = 0; r < 6; ++r) {
    series.record_f64(id, r, 1.0 / static_cast<double>(r + 3));
    stream += streamer.next_frame();
  }
  EXPECT_EQ(fold_stream(stream), to_json(capture_telemetry(), false));
}

}  // namespace
}  // namespace thetanet::obs
