#include "obs/trace_event.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

namespace thetanet::obs {
namespace {

/// Span tree (root: two children) plus one stable and one timing series —
/// enough to pin the DFS layout, the virtual round-clock, and the
/// stability filter.
TelemetrySnapshot sample_snapshot() {
  SpanSnapshot a;
  a.name = "phase.a";
  a.count = 2;
  a.wall_ns = 3000;
  SpanSnapshot b;
  b.name = "phase.b";
  b.count = 1;
  b.wall_ns = 5000;
  SpanSnapshot root;
  root.name = "build";
  root.count = 1;
  root.wall_ns = 10000;
  root.children.push_back(a);
  root.children.push_back(b);
  TelemetrySnapshot snap;
  snap.spans.push_back(root);
  SeriesSnapshot s;
  s.name = "router.peak_buffer";
  s.agg = SeriesAgg::kMax;
  s.kind = SeriesKind::kU64;
  s.stride = 4;
  s.rounds = 12;
  s.upoints = {2, 6, 3};
  snap.series.push_back(s);
  SeriesSnapshot t;
  t.name = "timing.only";
  t.agg = SeriesAgg::kSum;
  t.kind = SeriesKind::kF64;
  t.stability = Stability::kTiming;
  t.rounds = 1;
  t.fpoints = {1.5};
  snap.series.push_back(t);
  return snap;
}

TEST(TraceEvent, DeterministicGolden) {
  // Byte-exact: virtual clock (each node 1us + children, DFS layout),
  // series points stamped at window starts (i * stride), kTiming series
  // excluded.
  const std::string expected = R"({
  "displayTimeUnit": "ms",
  "traceEvents": [
    {"args": {"count": 1}, "cat": "span", "dur": 3, "name": "build", "ph": "X", "pid": 1, "tid": 1, "ts": 0},
    {"args": {"count": 2}, "cat": "span", "dur": 1, "name": "phase.a", "ph": "X", "pid": 1, "tid": 1, "ts": 0},
    {"args": {"count": 1}, "cat": "span", "dur": 1, "name": "phase.b", "ph": "X", "pid": 1, "tid": 1, "ts": 1},
    {"args": {"value": 2}, "cat": "series", "name": "router.peak_buffer", "ph": "C", "pid": 2, "ts": 0},
    {"args": {"value": 6}, "cat": "series", "name": "router.peak_buffer", "ph": "C", "pid": 2, "ts": 4},
    {"args": {"value": 3}, "cat": "series", "name": "router.peak_buffer", "ph": "C", "pid": 2, "ts": 8}
  ]
}
)";
  EXPECT_EQ(to_trace_event_json(sample_snapshot(), /*include_timing=*/false),
            expected);
}

TEST(TraceEvent, TimingModeUsesWallClockAndKeepsTimingSeries) {
  const std::string doc =
      to_trace_event_json(sample_snapshot(), /*include_timing=*/true);
  // Root: 10000 ns -> 10 us, children 3 + 5 us laid out inside it.
  EXPECT_NE(doc.find("\"dur\": 10, \"name\": \"build\""), std::string::npos);
  EXPECT_NE(doc.find("\"dur\": 3, \"name\": \"phase.a\""), std::string::npos);
  EXPECT_NE(
      doc.find("\"dur\": 5, \"name\": \"phase.b\", \"ph\": \"X\", \"pid\": 1, "
               "\"tid\": 1, \"ts\": 3"),
      std::string::npos);
  EXPECT_NE(doc.find("\"name\": \"timing.only\""), std::string::npos);
  EXPECT_NE(doc.find("{\"args\": {\"value\": 1.5}"), std::string::npos);
}

TEST(TraceEvent, WallClockFlooredAtChildSpan) {
  // A parallel phase's children can out-sum the parent's wall time; the
  // layout floors the parent so nesting survives in the viewer.
  SpanSnapshot child;
  child.name = "c";
  child.wall_ns = 9000;
  SpanSnapshot root;
  root.name = "r";
  root.wall_ns = 4000;  // less than the child
  root.children.push_back(child);
  TelemetrySnapshot snap;
  snap.spans.push_back(root);
  const std::string doc = to_trace_event_json(snap, /*include_timing=*/true);
  EXPECT_NE(doc.find("\"dur\": 9, \"name\": \"r\""), std::string::npos);
  EXPECT_NE(doc.find("\"dur\": 9, \"name\": \"c\""), std::string::npos);
}

TEST(TraceEvent, EmptySnapshotIsAValidEnvelope) {
  const TelemetrySnapshot empty;
  const std::string expected = R"({
  "displayTimeUnit": "ms",
  "traceEvents": []
}
)";
  EXPECT_EQ(to_trace_event_json(empty), expected);
}

TEST(TraceEvent, WriteTraceEventJsonCreatesTheFile) {
  const std::string path = ::testing::TempDir() + "/trace_event_test.json";
  ASSERT_TRUE(write_trace_event_json(path));
  std::ifstream f(path, std::ios::binary);
  ASSERT_TRUE(f.good());
  std::ostringstream ss;
  ss << f.rdbuf();
  EXPECT_NE(ss.str().find("\"traceEvents\""), std::string::npos);
}

TEST(TraceEvent, WriteToUnwritablePathFails) {
  EXPECT_FALSE(write_trace_event_json("/nonexistent-dir/never/x.json"));
}

}  // namespace
}  // namespace thetanet::obs
