#include "routing/baselines.h"

#include <gtest/gtest.h>

#include <numbers>

#include "core/theta_topology.h"
#include "graph/connectivity.h"
#include "topology/distributions.h"
#include "topology/transmission_graph.h"

namespace thetanet::route {
namespace {

struct Fixture {
  topo::Deployment d;
  graph::Graph topo;

  explicit Fixture(std::uint64_t seed, std::size_t n = 60, double range = 0.4) {
    geom::Rng rng(seed);
    d.positions = topo::uniform_square(n, 1.0, rng);
    d.max_range = range;
    d.kappa = 2.0;
    topo = topo::build_transmission_graph(d);
  }
};

AdversaryTrace dense_trace(const graph::Graph& topo, geom::Rng& rng,
                           Time horizon = 3000, double rate = 1.0) {
  TraceParams p;
  p.horizon = horizon;
  p.injections_per_step = rate;
  p.max_schedule_slack = 32;
  p.num_sources = 4;
  p.num_destinations = 2;
  return make_certified_trace(topo, p, rng);
}

TEST(GreedyGeographic, DeliversOnDenseGraphWithAllEdgesActive) {
  // On a dense transmission graph greedy forwarding has no local minima for
  // most pairs; with all edges always active it should deliver the bulk.
  const Fixture f(21, 80, 0.5);
  ASSERT_TRUE(graph::is_connected(f.topo));
  geom::Rng rng(22);
  AdversaryTrace trace = dense_trace(f.topo, rng, 2000, 0.5);
  // Override: all edges active each step (dedicated MAC).
  for (auto& step : trace.steps) {
    step.active.resize(f.topo.num_edges());
    for (graph::EdgeId e = 0; e < f.topo.num_edges(); ++e) step.active[e] = e;
  }
  const BaselineResult res =
      run_greedy_geographic(trace, f.d, f.topo, 64, 2000);
  EXPECT_GT(res.metrics.deliveries, trace.opt.deliveries / 2);
  // Conservation: offered = delivered + dropped + leftover + local minima.
  EXPECT_EQ(res.metrics.injected_accepted,
            res.metrics.deliveries + res.metrics.dropped_in_transit +
                res.metrics.leftover_packets + res.local_minimum_drops);
}

TEST(GreedyGeographic, LocalMinimumDropsOnConcaveTopology) {
  // A "C"-shaped obstacle: the greedy next hop towards the destination dead-
  // ends. Nodes: source left, dest right, but the only path detours via the
  // top; the straight-line neighbour is a cul-de-sac closer to dest.
  topo::Deployment d;
  d.positions = {
      {0.0, 0.0},   // 0 source
      {0.4, 0.0},   // 1 cul-de-sac (closest to dest among 0's neighbours)
      {0.0, 0.45},  // 2 detour up
      {0.5, 0.45},  // 3 detour across
      {1.0, 0.1},   // 4 destination
  };
  d.max_range = 0.62;
  d.kappa = 2.0;
  graph::Graph g(5);
  g.add_edge(0, 1, 0.4, 0.16);    // dead end
  g.add_edge(0, 2, 0.45, 0.2025);
  g.add_edge(2, 3, 0.5, 0.25);
  g.add_edge(3, 4, 0.61, 0.37);
  AdversaryTrace trace;
  trace.topology = &g;
  trace.steps.resize(200);
  for (auto& s : trace.steps) s.active = {0, 1, 2, 3};
  // Inject 10 packets 0 -> 4 with dummy-but-valid schedules via the detour.
  for (Time t = 0; t < 10; ++t) {
    Injection inj;
    inj.packet = Packet{t + 1, 0, 4, t, 0.0, 0};
    inj.schedule.t0 = t;
    inj.schedule.hops = {{1, static_cast<Time>(20 * t + 1)},
                         {2, static_cast<Time>(20 * t + 2)},
                         {3, static_cast<Time>(20 * t + 3)}};
    trace.steps[t].injections.push_back(inj);
  }
  trace.opt = replay_schedules(trace);
  ASSERT_EQ(trace.opt.deliveries, 10U);

  const BaselineResult res = run_greedy_geographic(trace, d, g, 16, 0);
  // Greedy sends everything to node 1 (closest to dest) where it dies.
  EXPECT_EQ(res.metrics.deliveries, 0U);
  EXPECT_EQ(res.local_minimum_drops, 10U);
}

TEST(SourceRouting, DeliversEverythingOnItsOwnSchedulePattern) {
  // With the adversary's active sets following the certified schedules,
  // source routing along the same metric eventually delivers the packets
  // (it follows the same min-cost paths the trace generator booked).
  const Fixture f(23);
  ASSERT_TRUE(graph::is_connected(f.topo));
  geom::Rng rng(24);
  const AdversaryTrace trace = dense_trace(f.topo, rng, 4000, 0.5);
  const BaselineResult res =
      run_source_routing(trace, f.topo, graph::Weight::kCost, 4096, 8000);
  EXPECT_GT(res.throughput_ratio(), 0.9);
  EXPECT_EQ(res.metrics.injected_accepted,
            res.metrics.deliveries + res.metrics.dropped_in_transit +
                res.metrics.leftover_packets);
  // Source routing on min-cost paths has per-delivery cost ~ OPT's.
  EXPECT_LT(res.cost_ratio(), 1.5);
}

TEST(SourceRouting, QueueCapCausesTransitDrops) {
  const Fixture f(25);
  geom::Rng rng(26);
  const AdversaryTrace trace = dense_trace(f.topo, rng, 3000, 3.0);
  const BaselineResult tight =
      run_source_routing(trace, f.topo, graph::Weight::kCost, 1, 1000);
  const BaselineResult roomy =
      run_source_routing(trace, f.topo, graph::Weight::kCost, 4096, 1000);
  EXPECT_GT(tight.metrics.dropped_at_injection + tight.metrics.dropped_in_transit,
            roomy.metrics.dropped_at_injection + roomy.metrics.dropped_in_transit);
  EXPECT_LE(tight.metrics.peak_buffer, 1U);
}

TEST(SourceRouting, HopMetricTakesFewerHops) {
  const Fixture f(27, 80, 0.5);
  geom::Rng rng(28);
  AdversaryTrace trace = dense_trace(f.topo, rng, 2000, 0.5);
  for (auto& step : trace.steps) {
    step.active.resize(f.topo.num_edges());
    for (graph::EdgeId e = 0; e < f.topo.num_edges(); ++e) step.active[e] = e;
  }
  const BaselineResult by_hops =
      run_source_routing(trace, f.topo, graph::Weight::kHops, 4096, 4000);
  const BaselineResult by_cost =
      run_source_routing(trace, f.topo, graph::Weight::kCost, 4096, 4000);
  ASSERT_GT(by_hops.metrics.deliveries, 100U);
  ASSERT_GT(by_cost.metrics.deliveries, 100U);
  EXPECT_LT(by_hops.metrics.avg_hops(), by_cost.metrics.avg_hops() + 1e-9);
  EXPECT_LE(by_cost.metrics.avg_delivered_cost(),
            by_hops.metrics.avg_delivered_cost() + 1e-9);
}

}  // namespace
}  // namespace thetanet::route
