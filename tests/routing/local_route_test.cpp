// O(1)-memory local routing (routing/local_route.h): compass exactness on
// G*-adjacent pairs, the planted tie-break mutation's failure mode, the Θ₄
// empirical routing-ratio bound (Bose et al.'s 17x regime, pinned by the
// routing_ratio_bound ctest), and bit-determinism of measured ratios across
// thread counts.

#include <gtest/gtest.h>

#include <cmath>

#include "common/parallel.h"
#include "geom/rng.h"
#include "routing/local_route.h"
#include "topology/distributions.h"
#include "topology/theta_graphs.h"
#include "topology/transmission_graph.h"

namespace thetanet {
namespace {

topo::Deployment uniform_deployment(std::size_t n, std::uint64_t seed,
                                    double range) {
  geom::Rng rng(seed);
  topo::Deployment d;
  d.positions = topo::uniform_square(n, 1.0, rng);
  d.max_range = range;
  d.kappa = 2.0;
  return d;
}

/// Three collinear nodes with w beyond t: from s both t and w are exact
/// angle-0 compass candidates (identical bearings). The committed corpus
/// case routing-compass-collinear-trio is this deployment.
topo::Deployment collinear_trio() {
  topo::Deployment d;
  d.positions = {{0.1, 0.5}, {0.6, 0.5}, {0.85, 0.5}};
  d.max_range = 0.8;
  d.kappa = 2.0;
  return d;
}

TEST(LocalRoute, CompassDeliversCollinearTrioAtRatioOne) {
  const topo::Deployment d = collinear_trio();
  const graph::Graph g = topo::build_transmission_graph(d);
  ASSERT_EQ(g.num_edges(), 3u);  // complete
  route::LocalRouteOptions lr;
  lr.policy = route::LocalPolicy::kCompass;
  const route::LocalRouteResult r = route::local_route(g, d, 0, 1, lr);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.hops, 1u);  // nearest-first tie-break: t beats the farther w
  EXPECT_NEAR(r.length, d.distance(0, 1), 1e-12);
}

TEST(LocalRoute, PlantedTieBreakOvershootsAndNeverDelivers) {
  const topo::Deployment d = collinear_trio();
  const graph::Graph g = topo::build_transmission_graph(d);
  route::LocalRouteOptions lr;
  lr.policy = route::LocalPolicy::kCompass;
  lr.plant_wrong_tie_break = true;
  const route::LocalRouteResult r = route::local_route(g, d, 0, 1, lr);
  // Farthest-first overshoots s -> w, then bounces w -> s -> w forever:
  // the walk burns its whole budget without reaching t.
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.hops, 4 * d.size() + 16);
}

TEST(LocalRoute, CompassAdjacentPairsOnGstarHaveUnitRatio) {
  const topo::Deployment d = uniform_deployment(60, 0x10ca1, 0.35);
  const graph::Graph g = topo::build_transmission_graph(d);
  ASSERT_GT(g.num_edges(), 0u);
  route::LocalRouteOptions lr;
  lr.policy = route::LocalPolicy::kCompass;
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const graph::Edge ed = g.edge(e);
    for (const auto [s, t] : {std::pair(ed.u, ed.v), std::pair(ed.v, ed.u)}) {
      const route::LocalRouteResult r = route::local_route(g, d, s, t, lr);
      ASSERT_TRUE(r.delivered) << "pair " << s << "->" << t;
      EXPECT_LE(r.length / ed.length, 1.0 + 1e-9);
    }
  }
}

TEST(LocalRoute, HopBudgetBoundsBrokenWalks) {
  // Two components: a pair and an isolated far node — undeliverable.
  topo::Deployment d;
  d.positions = {{0.0, 0.0}, {0.1, 0.0}, {10.0, 0.0}};
  d.max_range = 0.5;
  d.kappa = 2.0;
  const graph::Graph g = topo::build_transmission_graph(d);
  const route::LocalRouteResult r = route::local_route(g, d, 0, 2);
  EXPECT_FALSE(r.delivered);
  EXPECT_LE(r.hops, 4 * d.size() + 16);
}

TEST(LocalRoute, Theta4StaysUnderSeventeenOnCompleteFamilies) {
  // Bose et al. prove 17x for Θ₄ (with their routing algorithm); here we
  // pin the *empirical* ratio of plain theta-routing on Θ₄ over the
  // fixed-seed complete instance families the acceptance criterion names.
  // The seeds below are the ctest contract — do not reseed casually.
  for (const std::uint64_t seed : {1ULL, 7ULL, 21ULL}) {
    for (const std::size_t n : {12u, 24u, 40u}) {
      const topo::Deployment d = uniform_deployment(n, seed, 1.5);
      const graph::Graph gstar = topo::build_transmission_graph(d);
      ASSERT_EQ(gstar.num_edges(), n * (n - 1) / 2);  // complete
      const graph::Graph t4 = topo::theta4_graph(d);
      route::LocalRouteOptions lr;
      lr.policy = route::LocalPolicy::kTheta;
      lr.scheme = topo::theta4_scheme();
      const route::RoutingRatioStats s =
          route::measure_routing_ratio(t4, d, lr, 4096, seed);
      EXPECT_EQ(s.delivered, s.pairs)
          << "seed " << seed << " n " << n;
      EXPECT_LE(s.max_ratio, 17.0) << "seed " << seed << " n " << n;
    }
  }
}

TEST(LocalRoute, MeasuredRatioIsThreadInvariant) {
  const topo::Deployment d = uniform_deployment(120, 0xdead, 0.3);
  const graph::Graph g = topo::build_transmission_graph(d);
  route::LocalRouteOptions lr;
  lr.policy = route::LocalPolicy::kTheta;
  tn::set_num_threads(1);
  const route::RoutingRatioStats base =
      route::measure_routing_ratio(g, d, lr, 512, 3);
  ASSERT_GT(base.pairs, 0u);
  for (const int threads : {2, 4}) {
    tn::set_num_threads(threads);
    const route::RoutingRatioStats got =
        route::measure_routing_ratio(g, d, lr, 512, 3);
    EXPECT_EQ(got.pairs, base.pairs);
    EXPECT_EQ(got.delivered, base.delivered);
    EXPECT_EQ(got.max_ratio, base.max_ratio);  // bit-equal, not approximate
    EXPECT_EQ(got.mean_ratio, base.mean_ratio);
  }
  tn::set_num_threads(1);
}

}  // namespace
}  // namespace thetanet
