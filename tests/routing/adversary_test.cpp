#include "routing/adversary.h"

#include <gtest/gtest.h>

#include <set>

#include "topology/distributions.h"
#include "topology/transmission_graph.h"

namespace thetanet::route {
namespace {

graph::Graph test_topology(geom::Rng& rng, std::size_t n = 60,
                           double range = 0.4) {
  topo::Deployment d;
  d.positions = topo::uniform_square(n, 1.0, rng);
  d.max_range = range;
  d.kappa = 2.0;
  return topo::build_transmission_graph(d);
}

TEST(CertifiedAdversary, EveryInjectionCarriesAValidSchedule) {
  geom::Rng rng(61);
  const graph::Graph topo = test_topology(rng);
  TraceParams p;
  p.horizon = 200;
  p.drain = 50;
  p.injections_per_step = 1.5;
  const AdversaryTrace trace = make_certified_trace(topo, p, rng);
  ASSERT_EQ(trace.steps.size(), 250U);

  std::size_t injections = 0;
  for (Time t = 0; t < trace.steps.size(); ++t) {
    for (const Injection& inj : trace.steps[t].injections) {
      ++injections;
      EXPECT_EQ(inj.schedule.t0, t);
      EXPECT_EQ(inj.packet.injected_at, t);
      ASSERT_FALSE(inj.schedule.hops.empty());
      // Times strictly increasing and edges active at their times.
      Time prev = inj.schedule.t0;
      graph::NodeId at = inj.packet.src;
      for (const auto& [e, ti] : inj.schedule.hops) {
        ASSERT_GT(ti, prev);
        prev = ti;
        const auto& active = trace.steps[ti].active;
        ASSERT_TRUE(std::binary_search(active.begin(), active.end(), e));
        const graph::Edge& edge = topo.edge(e);
        ASSERT_TRUE(edge.u == at || edge.v == at);
        at = edge.other(at);
      }
      EXPECT_EQ(at, inj.packet.dst);
    }
    // No injections during drain.
    if (t >= p.horizon) EXPECT_TRUE(trace.steps[t].injections.empty());
  }
  EXPECT_GT(injections, 0U);
  EXPECT_EQ(trace.opt.deliveries, injections);
}

TEST(CertifiedAdversary, SchedulesNeverShareAnEdgeSlot) {
  geom::Rng rng(62);
  const graph::Graph topo = test_topology(rng);
  TraceParams p;
  p.horizon = 300;
  p.injections_per_step = 3.0;
  const AdversaryTrace trace = make_certified_trace(topo, p, rng);
  std::set<std::pair<graph::EdgeId, Time>> used;
  for (const StepSpec& step : trace.steps)
    for (const Injection& inj : step.injections)
      for (const auto& [e, t] : inj.schedule.hops)
        ASSERT_TRUE(used.insert({e, t}).second)
            << "edge " << e << " reused at step " << t;
}

TEST(CertifiedAdversary, OptStatsMatchReplay) {
  geom::Rng rng(63);
  const graph::Graph topo = test_topology(rng);
  TraceParams p;
  p.horizon = 150;
  p.injections_per_step = 2.0;
  const AdversaryTrace trace = make_certified_trace(topo, p, rng);
  const OptStats replayed = replay_schedules(trace);
  EXPECT_EQ(trace.opt.deliveries, replayed.deliveries);
  EXPECT_DOUBLE_EQ(trace.opt.total_cost, replayed.total_cost);
  EXPECT_EQ(trace.opt.max_buffer, replayed.max_buffer);
  EXPECT_DOUBLE_EQ(trace.opt.avg_path_length, replayed.avg_path_length);
}

TEST(CertifiedAdversary, EndpointConcentrationRespected) {
  geom::Rng rng(64);
  const graph::Graph topo = test_topology(rng);
  TraceParams p;
  p.horizon = 200;
  p.injections_per_step = 2.0;
  p.num_sources = 3;
  p.num_destinations = 2;
  const AdversaryTrace trace = make_certified_trace(topo, p, rng);
  std::set<graph::NodeId> srcs, dsts;
  for (const StepSpec& step : trace.steps)
    for (const Injection& inj : step.injections) {
      srcs.insert(inj.packet.src);
      dsts.insert(inj.packet.dst);
    }
  EXPECT_LE(srcs.size(), 3U);
  EXPECT_LE(dsts.size(), 2U);
}

TEST(CertifiedAdversary, CostOverridesOnlyOnActiveEdges) {
  geom::Rng rng(65);
  const graph::Graph topo = test_topology(rng);
  TraceParams p;
  p.horizon = 100;
  p.injections_per_step = 1.0;
  p.cost_jitter_pct = 20;
  const AdversaryTrace trace = make_certified_trace(topo, p, rng);
  bool any_override = false;
  for (const StepSpec& step : trace.steps) {
    for (const auto& [e, c] : step.cost_overrides) {
      any_override = true;
      ASSERT_TRUE(std::binary_search(step.active.begin(), step.active.end(), e));
      // Within +-20% of base cost.
      const double base = topo.edge(e).cost;
      ASSERT_GE(c, base * 0.8 - 1e-12);
      ASSERT_LE(c, base * 1.2 + 1e-12);
    }
  }
  EXPECT_TRUE(any_override);
}

TEST(CertifiedAdversary, CostsAtAppliesOverrides) {
  geom::Rng rng(66);
  graph::Graph topo(3);
  topo.add_edge(0, 1, 1.0, 1.0);
  topo.add_edge(1, 2, 2.0, 4.0);
  AdversaryTrace trace;
  trace.topology = &topo;
  trace.steps.resize(2);
  trace.steps[1].cost_overrides.push_back({0, 9.0});
  const auto c0 = trace.costs_at(0);
  EXPECT_DOUBLE_EQ(c0[0], 1.0);
  EXPECT_DOUBLE_EQ(c0[1], 4.0);
  const auto c1 = trace.costs_at(1);
  EXPECT_DOUBLE_EQ(c1[0], 9.0);
  EXPECT_DOUBLE_EQ(c1[1], 4.0);
  // Past the horizon: base costs.
  EXPECT_DOUBLE_EQ(trace.costs_at(7)[0], 1.0);
}

TEST(CertifiedAdversary, NoiseEdgesExpandActiveSets) {
  geom::Rng rng(67);
  const graph::Graph topo = test_topology(rng);
  TraceParams base_p;
  base_p.horizon = 100;
  base_p.injections_per_step = 0.5;
  geom::Rng rng_a(99), rng_b(99);
  const AdversaryTrace plain = make_certified_trace(topo, base_p, rng_a);
  TraceParams noisy_p = base_p;
  noisy_p.extra_active_fraction = 0.2;
  const AdversaryTrace noisy = make_certified_trace(topo, noisy_p, rng_b);
  std::size_t plain_active = 0, noisy_active = 0;
  for (const StepSpec& s : plain.steps) plain_active += s.active.size();
  for (const StepSpec& s : noisy.steps) noisy_active += s.active.size();
  EXPECT_GT(noisy_active, plain_active);
}

TEST(CertifiedAdversary, MinHopRoutingOption) {
  geom::Rng rng(68);
  const graph::Graph topo = test_topology(rng);
  TraceParams p;
  p.horizon = 100;
  p.injections_per_step = 1.0;
  p.route_min_cost = false;  // min-hop schedules
  const AdversaryTrace trace = make_certified_trace(topo, p, rng);
  EXPECT_GT(trace.opt.deliveries, 0U);
  // Min-hop paths are shorter in hops than min-cost paths on average: just
  // sanity-check the value is sane.
  EXPECT_GE(trace.opt.avg_path_length, 1.0);
}

}  // namespace
}  // namespace thetanet::route
