// The sustained-load injection engine: deterministic streams, correct
// process shapes (Poisson mean, bursty duty cycle, hotspot/adversarial
// targeting) and the closed-loop window invariant that bounds steady-state
// memory.

#include "routing/injection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "geom/rng.h"

namespace thetanet::route {
namespace {

graph::Graph ring_graph(std::size_t n) {
  graph::Graph g(n);
  for (graph::NodeId u = 0; u < n; ++u) {
    const auto v = static_cast<graph::NodeId>((u + 1) % n);
    g.add_edge(u, v, 1.0, 1.0);
  }
  return g;
}

graph::Graph star_plus_ring(std::size_t n, graph::NodeId hub) {
  graph::Graph g = ring_graph(n);
  for (graph::NodeId v = 0; v < n; ++v)
    if (v != hub && v != (hub + 1) % n && (hub == 0 ? v != n - 1 : true))
      g.add_edge(hub, v, 1.0, 1.0);
  return g;
}

TEST(InjectionEngine, DeterministicStream) {
  const graph::Graph g = ring_graph(32);
  InjectionSpec spec;
  spec.rate = 2.5;
  spec.seed = 7;
  InjectionEngine a(g, spec);
  InjectionEngine b(g, spec);
  RunMetrics m;
  std::vector<Packet> pa, pb;
  for (Time t = 0; t < 500; ++t) {
    a.step(t, m, pa);
    b.step(t, m, pb);
    ASSERT_EQ(pa.size(), pb.size()) << "round " << t;
    for (std::size_t i = 0; i < pa.size(); ++i) {
      EXPECT_EQ(pa[i].id, pb[i].id);
      EXPECT_EQ(pa[i].src, pb[i].src);
      EXPECT_EQ(pa[i].dst, pb[i].dst);
      EXPECT_EQ(pa[i].injected_at, t);
      EXPECT_NE(pa[i].src, pa[i].dst);
    }
  }
  EXPECT_EQ(a.emitted(), b.emitted());
}

TEST(InjectionEngine, PoissonMeanMatchesRate) {
  const graph::Graph g = ring_graph(64);
  InjectionSpec spec;
  spec.rate = 3.0;
  spec.seed = 42;
  InjectionEngine eng(g, spec);
  RunMetrics m;
  std::vector<Packet> out;
  constexpr Time kRounds = 20000;
  for (Time t = 0; t < kRounds; ++t) eng.step(t, m, out);
  const double mean =
      static_cast<double>(eng.emitted()) / static_cast<double>(kRounds);
  EXPECT_NEAR(mean, spec.rate, 0.1);
}

TEST(InjectionEngine, BurstyDutyCycle) {
  const graph::Graph g = ring_graph(32);
  InjectionSpec spec;
  spec.process = InjectionSpec::Process::kBursty;
  spec.rate = 2.0;
  spec.burst_len = 10;
  spec.gap_len = 30;
  spec.burst_multiplier = 4.0;
  spec.seed = 9;
  InjectionEngine eng(g, spec);
  RunMetrics m;
  std::vector<Packet> out;
  std::uint64_t burst_arrivals = 0;
  std::uint64_t burst_rounds = 0;
  for (Time t = 0; t < 8000; ++t) {
    eng.step(t, m, out);
    const bool in_burst = t % (spec.burst_len + spec.gap_len) < spec.burst_len;
    if (in_burst) {
      burst_arrivals += out.size();
      ++burst_rounds;
    } else {
      ASSERT_TRUE(out.empty()) << "round " << t << " is in the gap";
    }
  }
  const double burst_mean = static_cast<double>(burst_arrivals) /
                            static_cast<double>(burst_rounds);
  EXPECT_NEAR(burst_mean, spec.rate * spec.burst_multiplier, 0.8);
}

TEST(InjectionEngine, HotspotTargetsSmallSet) {
  const graph::Graph g = ring_graph(64);
  InjectionSpec spec;
  spec.process = InjectionSpec::Process::kHotspot;
  spec.rate = 4.0;
  spec.num_destinations = 3;
  spec.seed = 5;
  InjectionEngine eng(g, spec);
  RunMetrics m;
  std::vector<Packet> out;
  std::set<DestId> seen;
  for (Time t = 0; t < 2000; ++t) {
    eng.step(t, m, out);
    for (const Packet& p : out) seen.insert(p.dst);
  }
  EXPECT_LE(seen.size(), 3U);
  EXPECT_GE(seen.size(), 2U);  // 2000 rounds at rate 4 hits >= 2 of 3 sinks
}

TEST(InjectionEngine, AdversarialCutConvergecastsOnMaxDegreeNode) {
  constexpr graph::NodeId kHub = 5;
  const graph::Graph g = star_plus_ring(24, kHub);
  InjectionSpec spec;
  spec.process = InjectionSpec::Process::kAdversarialCut;
  spec.rate = 0.1;  // per unit of cut capacity: 0.1 * deg(hub)
  spec.seed = 3;
  InjectionEngine eng(g, spec);
  EXPECT_EQ(eng.hot_target(), kHub);
  RunMetrics m;
  std::vector<Packet> out;
  std::uint64_t arrivals = 0;
  for (Time t = 0; t < 4000; ++t) {
    eng.step(t, m, out);
    for (const Packet& p : out) {
      EXPECT_EQ(p.dst, kHub);
      EXPECT_NE(p.src, kHub);
    }
    arrivals += out.size();
  }
  const double mean = static_cast<double>(arrivals) / 4000.0;
  const double expected = spec.rate * static_cast<double>(g.degree(kHub));
  EXPECT_NEAR(mean, expected, 0.25 * expected);
}

TEST(InjectionEngine, ClosedLoopWindowCapsOutstanding) {
  const graph::Graph g = ring_graph(16);
  InjectionSpec spec;
  spec.rate = 8.0;  // far above what the window admits
  spec.window = 12;
  spec.seed = 1;
  InjectionEngine eng(g, spec);
  RunMetrics m;
  std::vector<Packet> out;
  for (Time t = 0; t < 1000; ++t) {
    eng.step(t, m, out);
    // Pretend every arrival is accepted and nothing ever drains: the engine
    // must stop at the window.
    m.injected_accepted += out.size();
    const std::size_t outstanding =
        m.injected_accepted - m.deliveries - m.dropped_in_transit;
    ASSERT_LE(outstanding, spec.window);
    // Free some capacity and verify the engine refills it.
    if (t == 500) m.deliveries += 6;
  }
  const std::size_t outstanding =
      m.injected_accepted - m.deliveries - m.dropped_in_transit;
  EXPECT_EQ(outstanding, spec.window);  // loop runs pinned at the cap
}

}  // namespace
}  // namespace thetanet::route
