#include <gtest/gtest.h>

#include "graph/connectivity.h"
#include "graph/shortest_paths.h"
#include "routing/baselines.h"
#include "topology/distributions.h"
#include "topology/proximity.h"
#include "topology/transmission_graph.h"

namespace thetanet::route {
namespace {

/// All edges active every step; injections with trivially valid schedules.
AdversaryTrace all_active_trace(const graph::Graph& topo,
                                std::vector<Injection> injections,
                                Time horizon) {
  AdversaryTrace trace;
  trace.topology = &topo;
  trace.steps.resize(horizon);
  for (auto& step : trace.steps) {
    step.active.resize(topo.num_edges());
    for (graph::EdgeId e = 0; e < topo.num_edges(); ++e) step.active[e] = e;
  }
  for (auto& inj : injections)
    trace.steps[inj.schedule.t0].injections.push_back(std::move(inj));
  trace.opt = replay_schedules(trace);
  return trace;
}

TEST(Gpsr, RecoversFromTheConcaveTrapGreedyDiesIn) {
  // The exact topology of GreedyGeographic.LocalMinimumDropsOnConcaveTopology:
  // node 1 is a cul-de-sac closer to the destination. Pure greedy drops
  // everything there; GPSR's perimeter mode walks around and delivers.
  topo::Deployment d;
  d.positions = {
      {0.0, 0.0},   // 0 source
      {0.4, 0.0},   // 1 cul-de-sac
      {0.0, 0.45},  // 2 detour up
      {0.5, 0.45},  // 3 detour across
      {1.0, 0.1},   // 4 destination
  };
  d.max_range = 0.62;
  d.kappa = 2.0;
  graph::Graph g(5);
  g.add_edge(0, 1, 0.4, 0.16);
  g.add_edge(0, 2, 0.45, 0.2025);
  g.add_edge(2, 3, 0.5, 0.25);
  g.add_edge(3, 4, 0.61, 0.37);
  // g is planar (it is a tree) — use it as its own planarization.
  std::vector<Injection> inj;
  for (Time t = 0; t < 10; ++t) {
    Injection i;
    i.packet = Packet{t + 1, 0, 4, t, 0.0, 0};
    i.schedule.t0 = t;
    i.schedule.hops = {{1, static_cast<Time>(40 * t + 1)},
                       {2, static_cast<Time>(40 * t + 2)},
                       {3, static_cast<Time>(40 * t + 3)}};
    inj.push_back(std::move(i));
  }
  const AdversaryTrace trace = all_active_trace(g, std::move(inj), 420);
  const GpsrResult greedy_dead = run_gpsr(trace, d, g, g, 64, 200);
  EXPECT_EQ(greedy_dead.metrics.deliveries, 10U);
  EXPECT_GT(greedy_dead.perimeter_entries, 0U);
  EXPECT_GT(greedy_dead.perimeter_hops, 0U);
  EXPECT_EQ(greedy_dead.local_minimum_drops, 0U);
}

TEST(Gpsr, DeliversEverythingOnRandomGabrielPlanarization) {
  geom::Rng rng(51);
  topo::Deployment d;
  d.positions = topo::uniform_square(80, 1.0, rng);
  d.max_range = 0.3;
  d.kappa = 2.0;
  const graph::Graph gstar = topo::build_transmission_graph(d);
  if (!graph::is_connected(gstar)) GTEST_SKIP();
  const graph::Graph gabriel = topo::gabriel_graph(d);
  ASSERT_TRUE(graph::is_connected(gabriel));

  std::vector<Injection> inj;
  std::uint64_t id = 1;
  for (Time t = 0; t < 300; t += 3) {
    const auto s = static_cast<graph::NodeId>(rng.uniform_index(80));
    auto dd = static_cast<graph::NodeId>(rng.uniform_index(79));
    if (dd >= s) ++dd;
    Injection i;
    i.packet = Packet{id++, s, dd, t, 0.0, 0};
    i.schedule.t0 = t;
    // A trivially valid 1-hop-at-a-time schedule is hard to fabricate here;
    // instead make OPT equal the injection count by scheduling over a
    // dedicated fresh slot pattern: use the direct Dijkstra path with
    // widely spaced slots.
    const auto tree = graph::dijkstra(gstar, dd, graph::Weight::kHops);
    if (tree.dist[s] == graph::kUnreachable) continue;
    Time slot = t;
    for (graph::NodeId at = s; at != dd; at = tree.parent[at]) {
      slot += 400;  // huge spacing: conflict-free by construction
      i.schedule.hops.emplace_back(tree.via_edge[at], slot);
    }
    if (i.schedule.hops.empty()) continue;
    inj.push_back(std::move(i));
  }
  const std::size_t expected = inj.size();
  const AdversaryTrace trace =
      all_active_trace(gstar, std::move(inj), 300 + 400 * 40);
  const GpsrResult res = run_gpsr(trace, d, gstar, gabriel, 4096, 4000);
  // GPSR with a connected planar subgraph delivers everything.
  EXPECT_EQ(res.metrics.deliveries, expected);
  EXPECT_EQ(res.local_minimum_drops, 0U);
}

TEST(Gpsr, GreedyOnlyPathsNeverEnterPerimeter) {
  // A straight line towards the destination: greedy suffices everywhere.
  topo::Deployment d;
  for (int i = 0; i < 6; ++i)
    d.positions.push_back({0.2 * static_cast<double>(i), 0.0});
  d.max_range = 0.25;
  d.kappa = 2.0;
  const graph::Graph g = topo::build_transmission_graph(d);
  std::vector<Injection> inj;
  Injection i;
  i.packet = Packet{1, 0, 5, 0, 0.0, 0};
  i.schedule.t0 = 0;
  for (Time k = 0; k < 5; ++k)
    i.schedule.hops.emplace_back(g.find_edge(static_cast<graph::NodeId>(k),
                                             static_cast<graph::NodeId>(k + 1)),
                                 k + 1);
  inj.push_back(std::move(i));
  const AdversaryTrace trace = all_active_trace(g, std::move(inj), 20);
  const GpsrResult res = run_gpsr(trace, d, g, g, 16, 20);
  EXPECT_EQ(res.metrics.deliveries, 1U);
  EXPECT_EQ(res.perimeter_entries, 0U);
  EXPECT_EQ(res.perimeter_hops, 0U);
}

TEST(Gpsr, UnreachableDestinationIsDroppedNotLooped) {
  // Two components: packets to the far component must be dropped after the
  // face walk completes, not loop forever.
  topo::Deployment d;
  d.positions = {{0, 0}, {0.2, 0}, {0.1, 0.15}, {5, 5}};
  d.max_range = 0.3;
  d.kappa = 2.0;
  const graph::Graph g = topo::build_transmission_graph(d);
  ASSERT_FALSE(graph::is_connected(g));
  AdversaryTrace trace;
  trace.topology = &g;
  trace.steps.resize(200);
  for (auto& step : trace.steps) {
    step.active.resize(g.num_edges());
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e) step.active[e] = e;
  }
  Injection i;
  i.packet = Packet{1, 0, 3, 0, 0.0, 0};
  i.schedule.t0 = 0;
  // Fabricate a (never-replayed) schedule; bypass replay by setting opt
  // manually: this trace exists only to drive the router.
  trace.steps[0].injections.push_back(i);
  trace.opt.deliveries = 1;

  const GpsrResult res = run_gpsr(trace, d, g, g, 16, 0);
  EXPECT_EQ(res.metrics.deliveries, 0U);
  EXPECT_EQ(res.local_minimum_drops, 1U);
  EXPECT_EQ(res.metrics.leftover_packets, 0U);  // not stuck in a loop
}

}  // namespace
}  // namespace thetanet::route
