#include "routing/buffers.h"

#include <gtest/gtest.h>

namespace thetanet::route {
namespace {

Packet mk(std::uint64_t id, graph::NodeId src, DestId dst) {
  return Packet{id, src, dst, 0, 0.0, 0};
}

TEST(BufferBank, StartsEmpty) {
  const BufferBank b(4, 8);
  EXPECT_EQ(b.height(0, 1), 0U);
  EXPECT_EQ(b.total_packets(), 0U);
  EXPECT_EQ(b.peak_height(), 0U);
  EXPECT_TRUE(b.has_space(0, 1));
}

TEST(BufferBank, PushPopLifo) {
  BufferBank b(4, 8);
  EXPECT_TRUE(b.push(0, mk(1, 0, 3)));
  EXPECT_TRUE(b.push(0, mk(2, 0, 3)));
  EXPECT_EQ(b.height(0, 3), 2U);
  const auto p = b.pop(0, 3);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->id, 2U);  // LIFO
  EXPECT_EQ(b.height(0, 3), 1U);
}

TEST(BufferBank, PopEmptyReturnsNullopt) {
  BufferBank b(2, 4);
  EXPECT_FALSE(b.pop(0, 1).has_value());
  b.push(0, mk(1, 0, 1));
  b.pop(0, 1);
  EXPECT_FALSE(b.pop(0, 1).has_value());
}

TEST(BufferBank, CapacityEnforced) {
  BufferBank b(2, 2);
  EXPECT_TRUE(b.push(0, mk(1, 0, 1)));
  EXPECT_TRUE(b.push(0, mk(2, 0, 1)));
  EXPECT_FALSE(b.has_space(0, 1));
  EXPECT_FALSE(b.push(0, mk(3, 0, 1)));  // full: the "delete" of step 2
  EXPECT_EQ(b.height(0, 1), 2U);
}

TEST(BufferBank, PerDestinationIsolation) {
  BufferBank b(3, 2);
  EXPECT_TRUE(b.push(0, mk(1, 0, 1)));
  EXPECT_TRUE(b.push(0, mk(2, 0, 2)));
  EXPECT_TRUE(b.push(0, mk(3, 0, 1)));
  EXPECT_FALSE(b.push(0, mk(4, 0, 1)));  // dest-1 buffer full
  EXPECT_TRUE(b.push(0, mk(5, 0, 2)));   // dest-2 buffer still has room
  EXPECT_EQ(b.height(0, 1), 2U);
  EXPECT_EQ(b.height(0, 2), 2U);
}

TEST(BufferBank, DestinationsAtSortedAndLive) {
  BufferBank b(2, 8);
  b.push(0, mk(1, 0, 5));
  b.push(0, mk(2, 0, 1));
  b.push(0, mk(3, 0, 3));
  EXPECT_EQ(b.destinations_at(0), (std::vector<DestId>{1, 3, 5}));
  b.pop(0, 3);
  EXPECT_EQ(b.destinations_at(0), (std::vector<DestId>{1, 5}));
}

TEST(BufferBank, ForEachDestinationMatches) {
  BufferBank b(2, 8);
  b.push(1, mk(1, 1, 0));
  b.push(1, mk(2, 1, 0));
  b.push(1, mk(3, 1, 4));
  std::vector<std::pair<DestId, std::size_t>> seen;
  b.for_each_destination(1, [&](DestId d, std::size_t h) {
    seen.push_back({d, h});
  });
  ASSERT_EQ(seen.size(), 2U);
  EXPECT_EQ(seen[0], (std::pair<DestId, std::size_t>{0, 2}));
  EXPECT_EQ(seen[1], (std::pair<DestId, std::size_t>{4, 1}));
}

TEST(BufferBank, TotalsAndPeak) {
  BufferBank b(3, 8);
  b.push(0, mk(1, 0, 2));
  b.push(0, mk(2, 0, 2));
  b.push(1, mk(3, 1, 2));
  EXPECT_EQ(b.total_packets(), 3U);
  EXPECT_EQ(b.peak_height(), 2U);
}

}  // namespace
}  // namespace thetanet::route
