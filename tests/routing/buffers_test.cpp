#include "routing/buffers.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

namespace thetanet::route {
namespace {

Packet mk(std::uint64_t id, graph::NodeId src, DestId dst) {
  return Packet{id, src, dst, 0, 0.0, 0};
}

TEST(BufferBank, StartsEmpty) {
  const BufferBank b(4, 8);
  EXPECT_EQ(b.height(0, 1), 0U);
  EXPECT_EQ(b.total_packets(), 0U);
  EXPECT_EQ(b.peak_height(), 0U);
  EXPECT_TRUE(b.has_space(0, 1));
}

TEST(BufferBank, PushPopLifo) {
  BufferBank b(4, 8);
  EXPECT_TRUE(b.push(0, mk(1, 0, 3)));
  EXPECT_TRUE(b.push(0, mk(2, 0, 3)));
  EXPECT_EQ(b.height(0, 3), 2U);
  const auto p = b.pop(0, 3);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->id, 2U);  // LIFO
  EXPECT_EQ(b.height(0, 3), 1U);
}

TEST(BufferBank, PopEmptyReturnsNullopt) {
  BufferBank b(2, 4);
  EXPECT_FALSE(b.pop(0, 1).has_value());
  b.push(0, mk(1, 0, 1));
  b.pop(0, 1);
  EXPECT_FALSE(b.pop(0, 1).has_value());
}

TEST(BufferBank, CapacityEnforced) {
  BufferBank b(2, 2);
  EXPECT_TRUE(b.push(0, mk(1, 0, 1)));
  EXPECT_TRUE(b.push(0, mk(2, 0, 1)));
  EXPECT_FALSE(b.has_space(0, 1));
  EXPECT_FALSE(b.push(0, mk(3, 0, 1)));  // full: the "delete" of step 2
  EXPECT_EQ(b.height(0, 1), 2U);
}

TEST(BufferBank, PerDestinationIsolation) {
  BufferBank b(3, 2);
  EXPECT_TRUE(b.push(0, mk(1, 0, 1)));
  EXPECT_TRUE(b.push(0, mk(2, 0, 2)));
  EXPECT_TRUE(b.push(0, mk(3, 0, 1)));
  EXPECT_FALSE(b.push(0, mk(4, 0, 1)));  // dest-1 buffer full
  EXPECT_TRUE(b.push(0, mk(5, 0, 2)));   // dest-2 buffer still has room
  EXPECT_EQ(b.height(0, 1), 2U);
  EXPECT_EQ(b.height(0, 2), 2U);
}

std::vector<DestId> live_dests(const BufferBank& b, graph::NodeId v) {
  std::vector<DestId> out;
  b.for_each_destination(v, [&](DestId d, std::size_t) { out.push_back(d); });
  return out;
}

TEST(BufferBank, DestinationScanSortedAndLive) {
  BufferBank b(2, 8);
  b.push(0, mk(1, 0, 5));
  b.push(0, mk(2, 0, 1));
  b.push(0, mk(3, 0, 3));
  EXPECT_EQ(live_dests(b, 0), (std::vector<DestId>{1, 3, 5}));
  b.pop(0, 3);  // leaves a tombstone entry — scans must skip it
  EXPECT_EQ(live_dests(b, 0), (std::vector<DestId>{1, 5}));
  EXPECT_EQ(b.height(0, 3), 0U);
  EXPECT_EQ(b.live_destinations(0), 2U);
}

TEST(BufferBank, MergedPairScan) {
  BufferBank b(3, 8);
  b.push(0, mk(1, 0, 1));
  b.push(0, mk(2, 0, 1));
  b.push(0, mk(3, 0, 4));
  b.push(1, mk(4, 1, 2));
  b.push(1, mk(5, 1, 4));
  b.push(1, mk(6, 1, 4));
  b.push(1, mk(7, 1, 6));
  b.pop(1, 6);  // tombstone on the right side
  std::vector<std::tuple<DestId, std::uint32_t, std::uint32_t>> seen;
  b.for_each_pair(0, 1, [&](DestId d, std::uint32_t hf, std::uint32_t ht) {
    seen.push_back({d, hf, ht});
  });
  const std::vector<std::tuple<DestId, std::uint32_t, std::uint32_t>> want = {
      {1, 2, 0}, {2, 0, 1}, {4, 1, 2}};
  EXPECT_EQ(seen, want);
}

TEST(BufferBank, PeakTracksPops) {
  BufferBank b(2, 8);
  for (int i = 0; i < 5; ++i) b.push(0, mk(10 + i, 0, 1));
  b.push(0, mk(20, 0, 3));
  EXPECT_EQ(b.peak_height(), 5U);
  b.pop(0, 1);
  b.pop(0, 1);
  EXPECT_EQ(b.peak_height(), 3U);
  b.pop(0, 1);
  b.pop(0, 1);
  b.pop(0, 1);
  EXPECT_EQ(b.peak_height(), 1U);  // dest 3 still holds one packet
  b.pop(0, 3);
  EXPECT_EQ(b.peak_height(), 0U);
  EXPECT_EQ(b.total_packets(), 0U);
}

TEST(BufferBank, PoolRecyclesSlots) {
  BufferBank b(2, 64);
  // Churn one buffer: after warm-up, pushes must reuse freed slots, so the
  // bank's pool stays bounded by the live packet count, not the churn.
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 8; ++i)
      ASSERT_TRUE(b.push(0, mk(static_cast<std::uint64_t>(round * 8 + i), 0,
                               static_cast<DestId>(1 + (i % 3)))));
    for (int i = 0; i < 8; ++i) {
      const DestId d = static_cast<DestId>(1 + (i % 3));
      if (b.height(0, d) > 0) ASSERT_TRUE(b.pop(0, d).has_value());
    }
  }
  EXPECT_EQ(b.total_packets(), 0U);
  // LIFO identity survives recycling.
  ASSERT_TRUE(b.push(0, mk(9001, 0, 1)));
  ASSERT_TRUE(b.push(0, mk(9002, 0, 1)));
  EXPECT_EQ(b.pop(0, 1)->id, 9002U);
  EXPECT_EQ(b.pop(0, 1)->id, 9001U);
}

TEST(BufferBank, TombstoneCompaction) {
  BufferBank b(2, 4);
  // Fill many one-packet buffers, drain most of them: the node's entry
  // array must compact (observable via correct scans; heights stay exact).
  for (DestId d = 1; d <= 40; ++d) ASSERT_TRUE(b.push(0, mk(d, 0, d)));
  for (DestId d = 1; d <= 40; ++d)
    if (d % 10 != 0) ASSERT_TRUE(b.pop(0, d).has_value());
  EXPECT_EQ(live_dests(b, 0), (std::vector<DestId>{10, 20, 30, 40}));
  EXPECT_EQ(b.live_destinations(0), 4U);
  for (DestId d = 1; d <= 40; ++d)
    EXPECT_EQ(b.height(0, d), d % 10 == 0 ? 1U : 0U);
  // Re-inserting a compacted destination works.
  ASSERT_TRUE(b.push(0, mk(99, 0, 5)));
  EXPECT_EQ(b.height(0, 5), 1U);
  EXPECT_EQ(live_dests(b, 0), (std::vector<DestId>{5, 10, 20, 30, 40}));
}

TEST(BufferBank, ActiveNodeTracking) {
  BufferBank b(5, 4);
  b.push(3, mk(1, 3, 0));
  b.push(1, mk(2, 1, 0));
  std::vector<graph::NodeId> active;
  b.for_each_active_node([&](graph::NodeId v) { active.push_back(v); });
  std::sort(active.begin(), active.end());
  EXPECT_EQ(active, (std::vector<graph::NodeId>{1, 3}));
  b.pop(3, 0);
  active.clear();
  b.for_each_active_node([&](graph::NodeId v) { active.push_back(v); });
  EXPECT_EQ(active, (std::vector<graph::NodeId>{1}));
  // A drained node that refills is re-reported exactly once.
  b.push(3, mk(3, 3, 0));
  active.clear();
  b.for_each_active_node([&](graph::NodeId v) { active.push_back(v); });
  std::sort(active.begin(), active.end());
  EXPECT_EQ(active, (std::vector<graph::NodeId>{1, 3}));
}

TEST(BufferBank, ForEachDestinationMatches) {
  BufferBank b(2, 8);
  b.push(1, mk(1, 1, 0));
  b.push(1, mk(2, 1, 0));
  b.push(1, mk(3, 1, 4));
  std::vector<std::pair<DestId, std::size_t>> seen;
  b.for_each_destination(1, [&](DestId d, std::size_t h) {
    seen.push_back({d, h});
  });
  ASSERT_EQ(seen.size(), 2U);
  EXPECT_EQ(seen[0], (std::pair<DestId, std::size_t>{0, 2}));
  EXPECT_EQ(seen[1], (std::pair<DestId, std::size_t>{4, 1}));
}

TEST(BufferBank, TotalsAndPeak) {
  BufferBank b(3, 8);
  b.push(0, mk(1, 0, 2));
  b.push(0, mk(2, 0, 2));
  b.push(1, mk(3, 1, 2));
  EXPECT_EQ(b.total_packets(), 3U);
  EXPECT_EQ(b.peak_height(), 2U);
}

}  // namespace
}  // namespace thetanet::route
