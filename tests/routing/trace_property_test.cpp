// Property suite for the certified adversary across its parameter grid:
// schedule slack is honoured, realized injection volume tracks the nominal
// rate (minus booking rejections), and replay always agrees with the
// generator's own OptStats.

#include <gtest/gtest.h>

#include <tuple>

#include "routing/adversary.h"
#include "topology/distributions.h"
#include "topology/transmission_graph.h"

namespace thetanet::route {
namespace {

class TraceProperty
    : public ::testing::TestWithParam<std::tuple<double, Time, bool>> {};

TEST_P(TraceProperty, SlackAndRateAndReplay) {
  const auto [rate, slack, min_cost] = GetParam();
  geom::Rng rng(42);
  topo::Deployment d;
  d.positions = topo::uniform_square(60, 1.0, rng);
  d.max_range = 0.45;
  d.kappa = 2.0;
  const graph::Graph topo = topo::build_transmission_graph(d);

  TraceParams p;
  p.horizon = 600;
  p.injections_per_step = rate;
  p.max_schedule_slack = slack;
  p.route_min_cost = min_cost;
  geom::Rng trace_rng(43);
  const AdversaryTrace trace = make_certified_trace(topo, p, trace_rng);

  // Slack: no hop waits more than slack+1 steps after the previous one.
  std::size_t injections = 0;
  for (const StepSpec& step : trace.steps) {
    for (const Injection& inj : step.injections) {
      ++injections;
      Time prev = inj.schedule.t0;
      for (const auto& [e, t] : inj.schedule.hops) {
        ASSERT_LE(t, prev + 1 + slack);
        prev = t;
      }
    }
  }
  // Rate: realized injections cannot exceed the nominal budget, and unless
  // the network is saturated they land within 50% of it.
  const double nominal = rate * static_cast<double>(p.horizon);
  EXPECT_LE(static_cast<double>(injections), nominal + 3.0 * std::sqrt(nominal) + 1.0);
  if (rate <= 1.0)
    EXPECT_GE(static_cast<double>(injections), 0.5 * nominal);

  // Replay agreement.
  const OptStats replayed = replay_schedules(trace);
  EXPECT_EQ(replayed.deliveries, trace.opt.deliveries);
  EXPECT_EQ(replayed.max_buffer, trace.opt.max_buffer);
  EXPECT_DOUBLE_EQ(replayed.total_cost, trace.opt.total_cost);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TraceProperty,
    ::testing::Combine(::testing::Values(0.2, 1.0, 4.0),
                       ::testing::Values(Time{4}, Time{32}, Time{128}),
                       ::testing::Bool()));

TEST(TracePools, ExplicitPoolsAreHonoured) {
  geom::Rng rng(44);
  topo::Deployment d;
  d.positions = topo::uniform_square(40, 1.0, rng);
  d.max_range = 0.5;
  d.kappa = 2.0;
  const graph::Graph topo = topo::build_transmission_graph(d);
  TraceParams p;
  p.horizon = 300;
  p.injections_per_step = 1.0;
  p.source_pool = {3, 7, 11};
  p.dest_pool = {20};
  const AdversaryTrace trace = make_certified_trace(topo, p, rng);
  std::size_t count = 0;
  for (const StepSpec& step : trace.steps)
    for (const Injection& inj : step.injections) {
      ++count;
      EXPECT_TRUE(inj.packet.src == 3 || inj.packet.src == 7 ||
                  inj.packet.src == 11);
      EXPECT_EQ(inj.packet.dst, 20U);
    }
  EXPECT_GT(count, 0U);
}

}  // namespace
}  // namespace thetanet::route
