#include "routing/anycast.h"

#include <gtest/gtest.h>

#include <numbers>

#include "core/theta_topology.h"
#include "graph/connectivity.h"
#include "sim/scenarios.h"
#include "topology/distributions.h"
#include "topology/transmission_graph.h"

namespace thetanet::route {
namespace {

struct Net {
  topo::Deployment d;
  graph::Graph topo;

  explicit Net(std::uint64_t seed, std::size_t n = 60, double range = 0.45) {
    geom::Rng rng(seed);
    d.positions = topo::uniform_square(n, 1.0, rng);
    d.max_range = range;
    d.kappa = 2.0;
    topo = topo::build_transmission_graph(d);
  }
};

TEST(AnycastGroups, MembershipAndNormalization) {
  const AnycastGroups g({{3, 1, 3, 2}, {7}});
  EXPECT_EQ(g.size(), 2U);
  EXPECT_EQ(g.members(0).size(), 3U);  // deduplicated
  EXPECT_TRUE(g.contains(0, 1));
  EXPECT_TRUE(g.contains(0, 3));
  EXPECT_FALSE(g.contains(0, 7));
  EXPECT_TRUE(g.contains(1, 7));
}

TEST(AnycastTrace, SchedulesEndAtGroupMembers) {
  const Net net(31);
  ASSERT_TRUE(graph::is_connected(net.topo));
  const AnycastGroups groups({{0, 1, 2}, {10, 11}});
  TraceParams p;
  p.horizon = 500;
  p.injections_per_step = 1.0;
  geom::Rng rng(32);
  const AdversaryTrace trace = make_anycast_trace(net.topo, groups, p, rng);
  ASSERT_GT(trace.opt.deliveries, 100U);
  // replay_anycast_schedules asserts internally; re-run as an audit.
  const OptStats replayed = replay_anycast_schedules(trace, groups);
  EXPECT_EQ(replayed.deliveries, trace.opt.deliveries);
  // Every packet's dst is a valid group id and its source no member.
  for (const StepSpec& step : trace.steps)
    for (const Injection& inj : step.injections) {
      ASSERT_LT(inj.packet.dst, groups.size());
      ASSERT_FALSE(groups.contains(inj.packet.dst, inj.packet.src));
    }
}

TEST(AnycastTrace, PicksTheCheapestMember) {
  // Line topology 0-1-2-3-4; group {0, 4}; source 1 must be scheduled
  // towards 0 (1 hop), not 4 (3 hops).
  graph::Graph topo(5);
  for (graph::NodeId i = 0; i + 1 < 5; ++i) topo.add_edge(i, i + 1, 1.0, 1.0);
  const AnycastGroups groups({{0, 4}});
  TraceParams p;
  p.horizon = 50;
  p.injections_per_step = 1.0;
  p.source_pool = {1};
  geom::Rng rng(33);
  const AdversaryTrace trace = make_anycast_trace(topo, groups, p, rng);
  ASSERT_GT(trace.opt.deliveries, 10U);
  EXPECT_DOUBLE_EQ(trace.opt.avg_path_length, 1.0);
}

TEST(AnycastRouting, BalancingDeliversToAnyMember) {
  const Net net(34);
  ASSERT_TRUE(graph::is_connected(net.topo));
  // Three replicas spread over the field.
  const AnycastGroups groups({{5, 25, 45}});
  TraceParams p;
  p.horizon = 20000;
  p.injections_per_step = 1.0;
  p.max_schedule_slack = 16;
  p.num_sources = 4;
  geom::Rng rng(35);
  const AdversaryTrace trace = make_anycast_trace(net.topo, groups, p, rng);
  ASSERT_GT(trace.opt.deliveries, 5000U);

  const auto params = core::theorem31_params(trace.opt, 0.25);
  const auto res = sim::run_mac_given(
      trace, params, 10000,
      [&groups](graph::NodeId v, DestId d) { return groups.contains(d, v); });
  EXPECT_GT(res.throughput_ratio(), 0.5);
  EXPECT_EQ(res.metrics.dropped_in_transit, 0U);
  // Conservation still holds under anycast.
  EXPECT_EQ(res.metrics.injected_accepted,
            res.metrics.deliveries + res.metrics.leftover_packets +
                res.metrics.dropped_in_transit);
}

TEST(AnycastRouting, MoreReplicasNeverHurt) {
  // Same workload; a singleton group vs a 4-member group containing it.
  // Anycast to the superset delivers at least as much (gradients reach the
  // closest replica).
  const Net net(36);
  ASSERT_TRUE(graph::is_connected(net.topo));
  TraceParams p;
  p.horizon = 15000;
  p.injections_per_step = 1.0;
  p.max_schedule_slack = 16;
  p.num_sources = 4;

  geom::Rng rng_small(37);
  const AnycastGroups small(std::vector<std::vector<graph::NodeId>>{{20}});
  const auto trace_small =
      make_anycast_trace(net.topo, small, p, rng_small);
  geom::Rng rng_big(37);
  const AnycastGroups big(
      std::vector<std::vector<graph::NodeId>>{{20, 5, 40, 55}});
  const auto trace_big = make_anycast_trace(net.topo, big, p, rng_big);

  // OPT itself improves with replicas (shorter schedules).
  EXPECT_LE(trace_big.opt.avg_path_length, trace_small.opt.avg_path_length);

  const auto params_small = core::theorem31_params(trace_small.opt, 0.25);
  const auto params_big = core::theorem31_params(trace_big.opt, 0.25);
  const auto res_small = sim::run_mac_given(
      trace_small, params_small, 8000,
      [&small](graph::NodeId v, DestId d) { return small.contains(d, v); });
  const auto res_big = sim::run_mac_given(
      trace_big, params_big, 8000,
      [&big](graph::NodeId v, DestId d) { return big.contains(d, v); });
  EXPECT_GT(res_big.metrics.deliveries, 0U);
  EXPECT_GT(res_small.metrics.deliveries, 0U);
  // Average hop count per delivery shrinks with replicas.
  EXPECT_LE(res_big.metrics.avg_hops(), res_small.metrics.avg_hops() + 0.5);
}

}  // namespace
}  // namespace thetanet::route
