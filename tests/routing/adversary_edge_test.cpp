// Remaining edge cases of the adversarial substrate.

#include <gtest/gtest.h>

#include <algorithm>

#include "routing/anycast.h"
#include "topology/distributions.h"
#include "topology/transmission_graph.h"

namespace thetanet::route {
namespace {

graph::Graph test_topology(std::uint64_t seed, std::size_t n = 50) {
  geom::Rng rng(seed);
  topo::Deployment d;
  d.positions = topo::uniform_square(n, 1.0, rng);
  d.max_range = 0.45;
  d.kappa = 2.0;
  return topo::build_transmission_graph(d);
}

TEST(AdversaryEdge, ActiveSetsAreSortedAndDeduplicated) {
  const graph::Graph topo = test_topology(1);
  TraceParams p;
  p.horizon = 200;
  p.injections_per_step = 2.0;
  p.extra_active_fraction = 0.3;  // noise path also goes through the dedup
  geom::Rng rng(2);
  const AdversaryTrace trace = make_certified_trace(topo, p, rng);
  for (const StepSpec& step : trace.steps) {
    ASSERT_TRUE(std::is_sorted(step.active.begin(), step.active.end()));
    ASSERT_TRUE(std::adjacent_find(step.active.begin(), step.active.end()) ==
                step.active.end());
  }
}

TEST(AdversaryEdge, DrainStepsCarryNoInjections) {
  const graph::Graph topo = test_topology(3);
  TraceParams p;
  p.horizon = 100;
  p.drain = 50;
  p.injections_per_step = 2.0;
  geom::Rng rng(4);
  const AdversaryTrace trace = make_certified_trace(topo, p, rng);
  ASSERT_EQ(trace.steps.size(), 150U);
  for (Time t = 100; t < 150; ++t)
    EXPECT_TRUE(trace.steps[t].injections.empty()) << t;
}

TEST(AdversaryEdge, ZeroRateYieldsEmptyTrace) {
  const graph::Graph topo = test_topology(5);
  TraceParams p;
  p.horizon = 100;
  p.injections_per_step = 0.0;
  geom::Rng rng(6);
  const AdversaryTrace trace = make_certified_trace(topo, p, rng);
  EXPECT_EQ(trace.opt.deliveries, 0U);
  EXPECT_DOUBLE_EQ(trace.opt.avg_cost, 0.0);
}

TEST(AnycastEdge, GroupOfAllNodesInjectsNothing) {
  const graph::Graph topo = test_topology(7, 30);
  std::vector<graph::NodeId> everyone(30);
  for (graph::NodeId v = 0; v < 30; ++v) everyone[v] = v;
  const AnycastGroups groups({everyone});
  TraceParams p;
  p.horizon = 100;
  p.injections_per_step = 2.0;
  geom::Rng rng(8);
  const AdversaryTrace trace = make_anycast_trace(topo, groups, p, rng);
  // Every source is already a member: all attempts are skipped.
  EXPECT_EQ(trace.opt.deliveries, 0U);
}

TEST(AnycastEdge, SingletonGroupMatchesUnicastPathLengths) {
  const graph::Graph topo = test_topology(9);
  const graph::NodeId target = 11;
  const AnycastGroups groups(
      std::vector<std::vector<graph::NodeId>>{{target}});
  TraceParams pa;
  pa.horizon = 300;
  pa.injections_per_step = 1.0;
  pa.source_pool = {3};
  geom::Rng rng_a(10);
  const AdversaryTrace anycast = make_anycast_trace(topo, groups, pa, rng_a);

  TraceParams pu = pa;
  pu.dest_pool = {target};
  geom::Rng rng_b(10);
  const AdversaryTrace unicast = make_certified_trace(topo, pu, rng_b);

  ASSERT_GT(anycast.opt.deliveries, 0U);
  ASSERT_GT(unicast.opt.deliveries, 0U);
  // Same source/destination pair and metric: identical path lengths.
  EXPECT_DOUBLE_EQ(anycast.opt.avg_path_length, unicast.opt.avg_path_length);
}

}  // namespace
}  // namespace thetanet::route
