// Disaster relief — the fixed-transmission-strength scenario of Section 3.4.
// Response teams carry identical radios (fixed power, range normalized to
// 1) and cluster around incident sites; there is no infrastructure, so the
// honeycomb algorithm provides medium access: the plane is tiled by
// hexagons of side 3 + 2*Delta, each hexagon elects its max-benefit
// sender-receiver pair, and contestants transmit with probability 1/6 —
// Theorem 3.8 makes this constant-competitive.
//
// Run: ./disaster_relief [teams] [seed]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/balancing_router.h"
#include "core/honeycomb.h"
#include "graph/connectivity.h"
#include "routing/adversary.h"
#include "sim/scenarios.h"
#include "sim/table.h"
#include "topology/distributions.h"
#include "topology/transmission_graph.h"

int main(int argc, char** argv) {
  using namespace thetanet;
  const std::size_t teams = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 11;
  geom::Rng rng(seed);

  // Teams of responders around incident sites in a 6x6 km sector (unit =
  // radio range).
  const double side = 6.0;
  topo::Deployment d;
  d.positions = topo::clustered(teams * 30, teams, 0.8, side, rng);
  d.max_range = 1.0;  // identical radios: fixed transmission strength
  d.kappa = 2.0;
  const graph::Graph unit = topo::build_transmission_graph(d);
  if (!graph::is_connected(unit)) {
    std::printf("responders out of radio contact at this seed; re-roll\n");
    return 1;
  }

  const core::HoneycombParams hp{/*delta=*/0.5, /*p_t=*/1.0 / 6.0};
  const core::HoneycombMac mac(d, unit, hp);
  std::printf("sector %.0fx%.0f, %zu responders in %zu teams; hexagon side "
              "%.1f (diameter %.1f)\n\n",
              side, side, d.size(), teams, mac.tiling().side(),
              mac.tiling().diameter());

  // Situation reports flow to the incident commander (node nearest the
  // sector centre).
  graph::NodeId commander = 0;
  for (graph::NodeId v = 1; v < d.size(); ++v)
    if (geom::dist_sq(d.positions[v], {side / 2, side / 2}) <
        geom::dist_sq(d.positions[commander], {side / 2, side / 2}))
      commander = v;

  route::TraceParams tp;
  tp.horizon = 30000;
  tp.injections_per_step = 0.4;
  tp.max_schedule_slack = 100;
  tp.num_sources = 6;
  tp.dest_pool = {commander};
  const auto trace = route::make_certified_trace(unit, tp, rng);
  const auto params = core::theorem33_params(trace.opt, 0.25);

  sim::HoneycombRunStats hs;
  const auto res =
      sim::run_honeycomb(trace, unit, mac, params, rng, 120000, &hs);

  sim::Table table("situation-report delivery (honeycomb MAC + balancing)",
                   {"metric", "value"});
  table.row({"reports deliverable (OPT)", sim::fmt(trace.opt.deliveries)})
      .row({"reports delivered", sim::fmt(res.metrics.deliveries)})
      .row({"fraction of OPT", sim::fmt(res.throughput_ratio(), 3)})
      .row({"avg hops per report", sim::fmt(res.metrics.avg_hops(), 2)})
      .row({"contestants elected", sim::fmt(hs.contestants_total)})
      .row({"transmissions", sim::fmt(hs.transmissions_total)})
      .row({"collision rate",
            sim::fmt(hs.transmissions_total == 0
                         ? 0.0
                         : static_cast<double>(hs.collisions_total) /
                               static_cast<double>(hs.transmissions_total),
                     3)})
      .row({"still queued", sim::fmt(res.metrics.leftover_packets)});
  table.print(std::cout);
  std::printf("Lemma 3.7 in action: with p_t = 1/6 and hexagons of side\n"
              "3 + 2*Delta, the collision rate stays below 1/2 no matter how\n"
              "the teams bunch up — no channel planning needed.\n");
  return 0;
}
