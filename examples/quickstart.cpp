// Quickstart: the 60-second tour of thetanet.
//
//   1. Drop 200 wireless nodes uniformly at random into a unit square.
//   2. Run ThetaALG (the paper's local topology-control algorithm) to get a
//      constant-degree, energy-efficient topology N.
//   3. Wire up the (T, gamma)-balancing router and push some packets
//      through an adversarially-scheduled network.
//
// Build & run:  ./quickstart [seed]

#include <cstdio>
#include <cstdlib>
#include <numbers>

#include "core/balancing_router.h"
#include "core/theta_topology.h"
#include "graph/connectivity.h"
#include "graph/stretch.h"
#include "routing/adversary.h"
#include "sim/scenarios.h"
#include "sim/svg.h"
#include "topology/distributions.h"
#include "topology/transmission_graph.h"

int main(int argc, char** argv) {
  using namespace thetanet;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  geom::Rng rng(seed);

  // --- 1. Deployment -------------------------------------------------------
  topo::Deployment d;
  d.positions = topo::uniform_square(200, 1.0, rng);
  d.max_range = 0.25;  // maximum transmission range D
  d.kappa = 2.0;       // energy = |uv|^kappa
  const graph::Graph gstar = topo::build_transmission_graph(d);
  std::printf("deployment: %zu nodes, G* has %zu edges (connected: %s)\n",
              d.size(), gstar.num_edges(),
              graph::is_connected(gstar) ? "yes" : "no");

  // --- 2. Topology control (Section 2 of the paper) ------------------------
  const double theta = std::numbers::pi / 6.0;  // 12 sectors per node
  const core::ThetaTopology topology(d, theta);
  const graph::Graph& n_graph = topology.graph();
  const auto stretch =
      graph::edge_stretch(n_graph, gstar, graph::Weight::kCost);
  std::printf("ThetaALG: N has %zu edges, max degree %zu (bound %.0f), "
              "energy-stretch %.3f\n",
              n_graph.num_edges(), n_graph.max_degree(),
              4.0 * std::numbers::pi / theta, stretch.max);

  // --- 3. Routing (Section 3 of the paper) ---------------------------------
  // A certified adversary injects packets it knows to be deliverable, so the
  // optimal throughput of the trace is known exactly.
  route::TraceParams tp;
  tp.horizon = 40000;
  tp.injections_per_step = 1.0;
  tp.max_schedule_slack = 16;  // keeps OPT's buffer B small
  tp.num_sources = 4;
  tp.num_destinations = 1;
  const route::AdversaryTrace trace =
      route::make_certified_trace(n_graph, tp, rng);
  std::printf("adversary: %zu deliverable packets (OPT buffer B=%zu, "
              "avg path %.1f hops)\n",
              trace.opt.deliveries, trace.opt.max_buffer,
              trace.opt.avg_path_length);

  // Parameters straight from Theorem 3.1, targeting a (1 - eps) fraction of
  // the optimal throughput.
  const double eps = 0.25;
  const core::BalancingParams params = core::theorem31_params(trace.opt, eps);
  const sim::ScenarioResult res = sim::run_mac_given(trace, params, 20000);
  std::printf("(T=%.0f, gamma=%.1f)-balancing: delivered %zu/%zu (%.1f%% of "
              "OPT; target %.0f%% asymptotically)\n",
              params.threshold, params.gamma, res.metrics.deliveries,
              trace.opt.deliveries, 100.0 * res.throughput_ratio(),
              100.0 * (1.0 - eps));
  std::printf("energy: %.2fx OPT's average cost per delivery (bound %.0fx); "
              "%zu in-transit drops\n",
              res.cost_ratio(), 1.0 + 2.0 / eps,
              res.metrics.dropped_in_transit);

  // Bonus: draw the two topologies side by side conceptually — G* in grey,
  // N in blue on top.
  sim::SvgCanvas canvas(d);
  canvas.add_edges(gstar, "#cccccc", 0.5);
  canvas.add_edges(n_graph, "#1f77b4", 1.2);
  canvas.add_nodes("#222222");
  if (canvas.write("quickstart_topology.svg"))
    std::printf("wrote quickstart_topology.svg (G* grey, ThetaALG N blue)\n");
  return 0;
}
