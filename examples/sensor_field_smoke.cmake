# Smoke test for the sensor_field example: it must run end to end and emit
# the topology SVG (with the telemetry sparkline inset) and the
# deterministic telemetry dump. Invoked by CTest as
#   cmake -DEXE=<binary> -DWORKDIR=<scratch> -P sensor_field_smoke.cmake

if(NOT DEFINED EXE OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "EXE and WORKDIR must be defined")
endif()
file(MAKE_DIRECTORY ${WORKDIR})

execute_process(COMMAND ${EXE} 150 7
  WORKING_DIRECTORY ${WORKDIR}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sensor_field failed (${rc}):\n${out}\n${err}")
endif()

foreach(f sensor_field.svg sensor_field_telemetry.json)
  if(NOT EXISTS ${WORKDIR}/${f})
    message(FATAL_ERROR "expected output ${f} missing")
  endif()
endforeach()

file(READ ${WORKDIR}/sensor_field.svg svg)
if(NOT svg MATCHES "router.peak_buffer")
  message(FATAL_ERROR "sensor_field.svg is missing the sparkline inset")
endif()
file(READ ${WORKDIR}/sensor_field_telemetry.json dump)
if(NOT dump MATCHES "thetanet-telemetry/2")
  message(FATAL_ERROR "telemetry dump is missing the /2 schema marker")
endif()
if(NOT dump MATCHES "\"router.peak_buffer\": {\"agg\": \"max\"")
  message(FATAL_ERROR "telemetry dump is missing the peak_buffer series")
endif()

message(STATUS "sensor_field smoke OK")
