// Mobile convoy — the dynamic-topology story of the paper. A convoy of
// vehicles drifts across an arena; every epoch the nodes have moved, the
// transmission graph has changed, and ThetaALG recomputes N with three
// rounds of local messages (no global coordination — exactly why the paper
// insists on local control). The (T, gamma)-balancing router keeps routing
// through the churn: the adversarial model of Section 3 covers topology
// changes natively, so nothing special happens at an epoch boundary — the
// buffers simply carry over.
//
// Run: ./mobile_convoy [epochs] [seed]

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <numbers>

#include "core/balancing_router.h"
#include "core/local_protocol.h"
#include "core/theta_topology.h"
#include "graph/connectivity.h"
#include "sim/mobility.h"
#include "sim/table.h"
#include "topology/distributions.h"
#include "topology/transmission_graph.h"

int main(int argc, char** argv) {
  using namespace thetanet;
  const int epochs = argc > 1 ? std::atoi(argv[1]) : 12;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;
  geom::Rng rng(seed);

  const std::size_t n = 120;
  geom::BBox arena;
  arena.expand({0.0, 0.0});
  arena.expand({1.0, 1.0});
  topo::Deployment d;
  d.positions = topo::clustered(n, 4, 0.08, 1.0, rng);
  d.max_range = 0.3;
  d.kappa = 2.0;
  sim::GroupDrift mobility(arena, /*drift_speed=*/0.02, /*jitter=*/0.01);

  // One router lives across all epochs; packets in flight survive topology
  // changes (Section 3.1's model).
  core::BalancingRouter router(n, core::BalancingParams{4.0, 30.0, 512});
  route::RunMetrics metrics;
  geom::Rng traffic_rng = rng.fork();
  std::uint64_t next_packet = 1;
  const route::DestId convoy_lead = 0;

  sim::Table table("convoy epochs",
                   {"epoch", "G*_edges", "N_edges", "N_maxdeg", "connected",
                    "proto_msgs", "delivered_so_far", "in_flight"});
  const route::Time steps_per_epoch = 600;
  route::Time now = 0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    // Vehicles move, then the topology-control layer rebuilds N locally.
    mobility.step(1.0, d, rng);
    const graph::Graph gstar = topo::build_transmission_graph(d);
    const core::ThetaTopology tt(d, std::numbers::pi / 6.0);
    const core::ProtocolStats proto =
        core::run_local_protocol(d, std::numbers::pi / 6.0);

    // Per-step: all N edges usable (dedicated MAC assumed, Section 3.2);
    // a couple of status packets per step stream towards the convoy lead.
    std::vector<graph::EdgeId> active(tt.graph().num_edges());
    for (graph::EdgeId e = 0; e < active.size(); ++e) active[e] = e;
    std::vector<double> costs(tt.graph().num_edges());
    for (graph::EdgeId e = 0; e < costs.size(); ++e)
      costs[e] = tt.graph().edge(e).cost;

    for (route::Time s = 0; s < steps_per_epoch; ++s, ++now) {
      const auto txs = router.plan(tt.graph(), active, costs);
      router.execute(txs, {}, costs, now, metrics);
      if (traffic_rng.bernoulli(0.8)) {
        auto src = static_cast<graph::NodeId>(
            traffic_rng.uniform_index(n - 1) + 1);
        router.inject(route::Packet{next_packet++, src, convoy_lead, now, 0.0, 0},
                      metrics);
      }
      router.end_step(metrics);
    }

    table.row({sim::fmt(epoch), sim::fmt(gstar.num_edges()),
               sim::fmt(tt.graph().num_edges()),
               sim::fmt(tt.graph().max_degree()),
               sim::fmt(static_cast<int>(graph::is_connected(tt.graph()))),
               sim::fmt(proto.position_msgs + proto.neighborhood_msgs +
                        proto.connection_msgs),
               sim::fmt(metrics.deliveries),
               sim::fmt(router.packets_in_flight())});
  }
  table.print(std::cout);
  std::printf("%zu of %zu injected packets delivered across %d topology "
              "changes (avg %.1f hops, %.1f steps latency); %zu still in "
              "flight.\n",
              metrics.deliveries, metrics.injected_accepted, epochs,
              metrics.avg_hops(), metrics.avg_latency(),
              router.packets_in_flight());
  std::printf("proto_msgs is the total Position/Neighborhood/Connection "
              "messages ThetaALG needed per epoch — O(n), independent of "
              "the diameter.\n");
  return 0;
}
