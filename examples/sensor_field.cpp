// Sensor-field data collection — the "sensor networks" application from the
// paper's introduction. A field of battery-powered sensors reports readings
// to a sink. Energy is the scarce resource, so the example contrasts:
//
//   * topology quality: ThetaALG's N (constant degree) vs the Gabriel graph
//     (energy-optimal paths but unbounded degree) vs the Euclidean MST
//     (sparsest but fragile and stretch-heavy);
//   * routing energy: (T, gamma)-balancing with the cost-aware gamma of
//     Theorem 3.1 vs the cost-blind gamma = 0 variant.
//
// Run: ./sensor_field [n] [seed]

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <numbers>

#include <vector>

#include "core/balancing_router.h"
#include "core/theta_topology.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timeseries.h"
#include "obs/trace_sink.h"
#include "graph/connectivity.h"
#include "graph/shortest_paths.h"
#include "graph/stretch.h"
#include "routing/adversary.h"
#include "sim/scenarios.h"
#include "sim/svg.h"
#include "sim/table.h"
#include "topology/distributions.h"
#include "topology/metrics.h"
#include "topology/proximity.h"
#include "topology/transmission_graph.h"

int main(int argc, char** argv) {
  using namespace thetanet;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 300;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  geom::Rng rng(seed);

  // Sensors scattered over the field; the sink is the node nearest the
  // centre (where the base station was dropped).
  topo::Deployment d;
  d.positions = topo::uniform_square(n, 1.0, rng);
  d.max_range = 2.0 * std::sqrt(std::log(static_cast<double>(n)) /
                                static_cast<double>(n));
  d.kappa = 2.0;
  const graph::Graph gstar = topo::build_transmission_graph(d);
  if (!graph::is_connected(gstar)) {
    std::printf("field not connected at this density; try another seed\n");
    return 1;
  }
  graph::NodeId sink = 0;
  for (graph::NodeId v = 1; v < n; ++v)
    if (geom::dist_sq(d.positions[v], {0.5, 0.5}) <
        geom::dist_sq(d.positions[sink], {0.5, 0.5}))
      sink = v;
  std::printf("sensor field: %zu sensors, range %.3f, sink at node %u\n\n",
              n, d.max_range, sink);

  // --- Topology shoot-out ---------------------------------------------------
  const core::ThetaTopology tt(d, std::numbers::pi / 9.0);
  sim::Table topo_table("candidate topologies",
                        {"topology", "edges", "max_deg", "energy_stretch",
                         "total_edge_energy"});
  const auto add_row = [&](const char* name, const graph::Graph& g) {
    const auto s = graph::edge_stretch(g, gstar, graph::Weight::kCost);
    topo_table.row({name, sim::fmt(g.num_edges()), sim::fmt(g.max_degree()),
                    graph::is_connected(g) ? sim::fmt(s.max, 3)
                                           : std::string("inf"),
                    sim::fmt(g.total_cost(), 3)});
  };
  add_row("ThetaALG N", tt.graph());
  add_row("Gabriel", topo::gabriel_graph(d));
  add_row("EMST", topo::euclidean_mst(d));
  topo_table.print(std::cout);

  // --- Data collection runs --------------------------------------------------
  // Every sensor periodically reports to the sink: an all-to-one (convergecast)
  // workload over the chosen topology.
  route::TraceParams tp;
  tp.horizon = 60000;
  tp.injections_per_step = 1.0;
  tp.max_schedule_slack = 16;  // keeps OPT's buffer B small
  tp.num_sources = 8;          // one reporting cluster head per region
  tp.dest_pool = {sink};
  const auto trace = route::make_certified_trace(tt.graph(), tp, rng);
  std::printf("workload: %zu readings to collect (OPT avg cost %.4f, "
              "avg path %.1f hops)\n\n",
              trace.opt.deliveries, trace.opt.avg_cost,
              trace.opt.avg_path_length);

  sim::Table run_table("collection runs on ThetaALG N",
                       {"router", "delivered", "of_OPT", "energy/reading",
                        "vs_OPT_energy", "peak_buffer"});
  const double eps = 0.25;
  core::BalancingParams params = core::theorem31_params(trace.opt, eps);
  std::vector<double> peak_buffer_series;
  for (const bool cost_aware : {true, false}) {
    core::BalancingParams p = params;
    if (!cost_aware) p.gamma = 0.0;
    // Fresh telemetry per run, so the dump and the sparkline below describe
    // exactly one collection episode.
    obs::MetricsRegistry::global().reset();
    obs::SeriesRegistry::global().reset();
    obs::reset_spans();
    const auto res = sim::run_mac_given(trace, p, 30000);
    run_table.row({cost_aware ? "(T,gamma)-balancing" : "gamma=0 (cost-blind)",
                   sim::fmt(res.metrics.deliveries),
                   sim::fmt(res.throughput_ratio(), 3),
                   sim::fmt(res.metrics.avg_cost_per_delivery(), 4),
                   sim::fmt(res.cost_ratio(), 3),
                   sim::fmt(res.metrics.peak_buffer)});
    if (cost_aware) {
      for (const auto& s : obs::SeriesRegistry::global().snapshot())
        if (s.name == "router.peak_buffer")
          peak_buffer_series.assign(s.upoints.begin(), s.upoints.end());
      if (obs::write_telemetry_json("sensor_field_telemetry.json"))
        std::printf("wrote sensor_field_telemetry.json (deterministic dump; "
                    "render with: thetanet_cli report --in "
                    "sensor_field_telemetry.json)\n");
    }
  }
  run_table.print(std::cout);

  // Visualize the field: ThetaALG topology, sink highlighted, one example
  // min-cost route drawn on top.
  {
    sim::SvgCanvas canvas(d);
    canvas.add_edges(tt.graph(), "#1f77b4", 0.8);
    canvas.add_nodes("#222222");
    canvas.add_marker(sink, "#d62728");
    const auto tree = graph::dijkstra(tt.graph(), sink, graph::Weight::kCost);
    graph::NodeId far = 0;
    for (graph::NodeId v = 1; v < n; ++v)
      if (tree.dist[v] != graph::kUnreachable &&
          (tree.dist[far] == graph::kUnreachable || tree.dist[v] > tree.dist[far]))
        far = v;
    canvas.add_path(tree.path_to(far), "#d62728", 2.0);
    // Inset: the Theorem 3.1 buffer dynamics of the cost-aware run, so the
    // plot carries both the topology and how routing behaved on it.
    if (!peak_buffer_series.empty())
      canvas.add_sparkline(peak_buffer_series, 16.0, 16.0, 200.0, 48.0,
                           "#d62728", "router.peak_buffer");
    if (canvas.write("sensor_field.svg"))
      std::printf("wrote sensor_field.svg (topology, sink, one route, "
                  "peak-buffer sparkline)\n");
  }
  std::printf("Reading the table: both variants stay within the 1 + 2/eps\n"
              "energy bound of Theorem 3.1 — on ThetaALG's N the link costs\n"
              "are near-homogeneous, so gamma's conservatism costs a little\n"
              "throughput without buying energy here. On heterogeneous-cost\n"
              "links the picture flips: see bench_ablations (A3) and the\n"
              "CostAwareBeatsCostBlindOnEnergy test for a 30x energy gap.\n");
  return 0;
}
