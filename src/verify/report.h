#pragma once
// Structured violation reports for the paper-guarantee conformance harness.
// Every checker in verify/invariants.h returns a CheckReport instead of
// asserting, so the same code serves three consumers: gtest suites (assert
// on pass()), the randomized fuzz driver (shrink + corpus on failure), and
// the cross-thread determinism job (byte-for-byte report diffs). All
// formatting is deterministic: doubles print with max_digits10 precision and
// no locale, so bit-identical inputs yield byte-identical reports.

#include <cstddef>
#include <string>
#include <vector>

namespace thetanet::verify {

/// One failed assertion inside a checker.
struct Violation {
  std::string rule;    ///< stable id, e.g. "lemma2.1/degree"
  std::string detail;  ///< deterministic human-readable context

  bool operator==(const Violation&) const = default;
};

/// Outcome of one checker over one instance.
struct CheckReport {
  std::string checker;   ///< e.g. "theta_invariants"
  std::size_t checks = 0;  ///< individual assertions evaluated
  std::vector<Violation> violations;
  std::vector<std::string> notes;  ///< skipped sub-checks etc. (not failures)

  bool pass() const { return violations.empty(); }

  void add_violation(std::string rule, std::string detail) {
    violations.push_back({std::move(rule), std::move(detail)});
  }

  /// Deterministic multi-line rendering ("check <name>: PASS ..." header
  /// followed by one line per violation/note).
  std::string to_string() const;
};

/// All checker outcomes for one scenario / instance.
struct ConformanceReport {
  std::string scenario;  ///< label of the instance checked
  std::vector<CheckReport> checks;

  bool pass() const {
    for (const CheckReport& c : checks)
      if (!c.pass()) return false;
    return true;
  }

  std::size_t total_checks() const {
    std::size_t s = 0;
    for (const CheckReport& c : checks) s += c.checks;
    return s;
  }

  std::size_t total_violations() const {
    std::size_t s = 0;
    for (const CheckReport& c : checks) s += c.violations.size();
    return s;
  }

  std::string to_string() const;
};

/// Deterministic double formatting (%.17g, locale-free) shared by every
/// checker message.
std::string format_double(double v);

}  // namespace thetanet::verify
