#include "verify/invariants.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "geom/angles.h"
#include "graph/connectivity.h"
#include "graph/stretch.h"

namespace thetanet::verify {
namespace {

/// Keeps reports bounded on badly broken instances: the first
/// kMaxViolations are recorded verbatim, the rest are summarized.
constexpr std::size_t kMaxViolations = 32;

class Collector {
 public:
  explicit Collector(CheckReport& r) : r_(r) {}
  ~Collector() {
    if (suppressed_ > 0)
      r_.add_violation("report/truncated",
                       std::to_string(suppressed_) +
                           " further violations suppressed");
  }

  /// Evaluate one assertion; record a violation when `ok` is false.
  template <typename DetailFn>
  void expect(bool ok, const char* rule, const DetailFn& detail) {
    ++r_.checks;
    if (ok) return;
    if (r_.violations.size() < kMaxViolations)
      r_.add_violation(rule, detail());
    else
      ++suppressed_;
  }

 private:
  CheckReport& r_;
  std::size_t suppressed_ = 0;
};

std::string node_str(graph::NodeId v) { return std::to_string(v); }

std::string edge_str(const graph::Edge& e) {
  return "(" + node_str(e.u) + "," + node_str(e.v) + ")";
}

/// Rebuild a graph with costs |uv|^kappa (topology structure unchanged).
graph::Graph recost(const graph::Graph& g, double kappa) {
  graph::Graph out(g.num_nodes());
  for (const graph::Edge& e : g.edges())
    out.add_edge(e.u, e.v, e.length, std::pow(e.length, kappa));
  out.finalize();
  return out;
}

}  // namespace

CheckReport check_theta_invariants(const graph::Graph& n,
                                   const topo::Deployment& d, double theta,
                                   const graph::Graph& gstar,
                                   const core::ThetaTopology* tt,
                                   bool assume_unique_distances) {
  CheckReport report;
  report.checker = "theta_invariants";
  Collector c(report);

  c.expect(n.num_nodes() == d.size() && gstar.num_nodes() == d.size(),
           "structure/node-count", [&] {
             return "topology has " + std::to_string(n.num_nodes()) +
                    " nodes, G* has " + std::to_string(gstar.num_nodes()) +
                    ", deployment has " + std::to_string(d.size());
           });
  if (n.num_nodes() != d.size() || gstar.num_nodes() != d.size()) return report;

  // Lemma 2.1: max degree <= 4*pi/theta, per node.
  const double degree_bound = 4.0 * std::numbers::pi / theta;
  for (graph::NodeId v = 0; v < n.num_nodes(); ++v) {
    c.expect(static_cast<double>(n.degree(v)) <= degree_bound,
             "lemma2.1/degree", [&] {
               return "node " + node_str(v) + " has degree " +
                      std::to_string(n.degree(v)) + " > 4*pi/theta = " +
                      format_double(degree_bound);
             });
  }

  // N is a subgraph of G* with consistent weights.
  for (const graph::Edge& e : n.edges()) {
    const double len = d.distance(e.u, e.v);
    c.expect(len <= d.max_range, "structure/edge-in-range", [&] {
      return "edge " + edge_str(e) + " has length " + format_double(len) +
             " > max_range " + format_double(d.max_range);
    });
    c.expect(gstar.has_edge(e.u, e.v), "structure/subgraph-of-gstar", [&] {
      return "edge " + edge_str(e) + " missing from G*";
    });
    const double tol = 1e-12 * std::max(1.0, len);
    c.expect(std::abs(e.length - len) <= tol, "structure/edge-length", [&] {
      return "edge " + edge_str(e) + " stores length " +
             format_double(e.length) + ", deployment says " +
             format_double(len);
    });
    const double cost = d.cost_of_length(len);
    c.expect(std::abs(e.cost - cost) <= 1e-12 * std::max(1.0, cost),
             "structure/edge-cost", [&] {
               return "edge " + edge_str(e) + " stores cost " +
                      format_double(e.cost) + ", deployment says " +
                      format_double(cost);
             });
  }

  // Lemma 2.1 connectivity: N must preserve G*'s component structure (N is
  // connected whenever G* is; being a subgraph it can only split, never
  // merge, so component-count equality is the exact statement). The lemma
  // presupposes unique pairwise distances — with coincident points phase 2
  // can legitimately orphan duplicates, so the check is gated.
  if (assume_unique_distances) {
    const std::size_t comps_n = graph::num_components(n);
    const std::size_t comps_g = graph::num_components(gstar);
    c.expect(comps_n == comps_g, "lemma2.1/connectivity", [&] {
      return "N has " + std::to_string(comps_n) + " components, G* has " +
             std::to_string(comps_g);
    });
  } else {
    report.notes.push_back(
        "connectivity check skipped: duplicate points void Lemma 2.1's "
        "unique-distance assumption");
  }

  if (tt != nullptr) {
    // Phase-2 admission structure (the constructive core of Lemma 2.1).
    for (graph::NodeId v = 0; v < d.size(); ++v) {
      for (int s = 0; s < tt->sectors(); ++s) {
        const graph::NodeId w = tt->admitted(v, s);
        if (w == graph::kInvalidNode) continue;
        c.expect(n.find_edge(v, w) != graph::kInvalidEdge,
                 "phase2/admitted-edge-materialized", [&] {
                   return "admitted edge (" + node_str(v) + "," + node_str(w) +
                          ") at sector " + std::to_string(s) + " not in N";
                 });
        c.expect(
            geom::sector_index(d.positions[v], d.positions[w], theta) == s,
            "phase2/admitted-in-sector", [&] {
              return "admitted node " + node_str(w) + " not in sector " +
                     std::to_string(s) + " of node " + node_str(v);
            });
        c.expect(tt->selects(w, v), "phase2/admitted-was-selected", [&] {
          return "node " + node_str(v) + " admitted " + node_str(w) +
                 " which never selected it in phase 1";
        });
      }
    }
    for (const graph::Edge& e : n.edges()) {
      const int su =
          geom::sector_index(d.positions[e.u], d.positions[e.v], theta);
      const int sv =
          geom::sector_index(d.positions[e.v], d.positions[e.u], theta);
      c.expect(tt->admitted(e.u, su) == e.v || tt->admitted(e.v, sv) == e.u,
               "phase2/edge-was-admitted", [&] {
                 return "edge " + edge_str(e) +
                        " in N but admitted by neither endpoint";
               });
      c.expect(tt->selects(e.u, e.v) || tt->selects(e.v, e.u),
               "phase1/subgraph-of-yao", [&] {
                 return "edge " + edge_str(e) +
                        " in N but selected by neither endpoint in phase 1";
               });
    }
  }
  return report;
}

CheckReport check_energy_stretch(const graph::Graph& n,
                                 const topo::Deployment& d,
                                 const graph::Graph& gstar,
                                 double max_stretch) {
  CheckReport report;
  report.checker = "energy_stretch";
  Collector c(report);
  report.notes.push_back("deployment kappa=" + format_double(d.kappa) +
                         " (sweep checks kappa in {2,3,4})");

  if (n.num_nodes() != gstar.num_nodes()) {
    c.expect(false, "structure/node-count", [&] {
      return "topology has " + std::to_string(n.num_nodes()) +
             " nodes, G* has " + std::to_string(gstar.num_nodes());
    });
    return report;
  }

  // Coincident points produce zero-weight base edges for which a stretch
  // ratio is undefined; edge_stretch skips them, we note the condition.
  bool has_zero_edge = false;
  for (const graph::Edge& e : gstar.edges())
    if (e.length <= 0.0) has_zero_edge = true;
  if (has_zero_edge)
    report.notes.push_back("zero-length G* edges skipped (coincident points)");

  for (const double kappa : {2.0, 3.0, 4.0}) {
    const graph::Graph h = recost(n, kappa);
    const graph::Graph base = recost(gstar, kappa);
    const graph::StretchStats s =
        graph::edge_stretch(h, base, graph::Weight::kCost);
    c.expect(!s.disconnected, "theorem2.2/reachability", [&] {
      return "kappa=" + format_double(kappa) +
             ": some G* edge's endpoints are unreachable in N";
    });
    c.expect(s.max <= max_stretch, "theorem2.2/energy-stretch", [&] {
      return "kappa=" + format_double(kappa) + ": edge stretch " +
             format_double(s.max) + " > bound " + format_double(max_stretch) +
             " (argmax pair " + node_str(s.argmax_u) + "," +
             node_str(s.argmax_v) + ")";
    });
  }
  return report;
}

CheckReport check_replacement_reuse(const core::ThetaTopology& tt,
                                    const graph::Graph& gstar,
                                    const interf::InterferenceModel& m,
                                    std::uint32_t max_reuse) {
  CheckReport report;
  report.checker = "replacement_reuse";
  Collector c(report);
  const topo::Deployment& d = tt.deployment();

  // Greedy maximal non-interfering edge set T of G* (the universe Lemma 2.9
  // quantifies over is "any non-interfering set"; greedy maximal is the
  // densest stress the model admits).
  std::vector<std::pair<graph::NodeId, graph::NodeId>> matching;
  std::vector<graph::EdgeId> chosen;
  for (graph::EdgeId e = 0; e < gstar.num_edges(); ++e) {
    const graph::Edge& ge = gstar.edge(e);
    bool ok = true;
    for (const graph::EdgeId f : chosen) {
      const graph::Edge& fe = gstar.edge(f);
      if (m.in_interference_set(d.positions[ge.u], d.positions[ge.v],
                                d.positions[fe.u], d.positions[fe.v])) {
        ok = false;
        break;
      }
    }
    if (ok) {
      chosen.push_back(e);
      matching.push_back({ge.u, ge.v});
    }
  }
  report.notes.push_back("non-interfering set size " +
                         std::to_string(matching.size()));

  // Path validity: every replacement path is a connected u..v walk in N.
  std::vector<std::uint32_t> uses(tt.graph().num_edges(), 0);
  std::vector<bool> counted(tt.graph().num_edges(), false);
  std::uint32_t worst = 0;
  for (const auto& [u, v] : matching) {
    const std::vector<graph::EdgeId> path = tt.replacement_path(u, v);
    c.expect(!path.empty(), "lemma2.9/path-nonempty", [&] {
      return "replacement path for (" + node_str(u) + "," + node_str(v) +
             ") is empty";
    });
    graph::NodeId at = u;
    bool connected = true;
    for (const graph::EdgeId pe : path) {
      if (pe >= tt.graph().num_edges()) {
        connected = false;
        break;
      }
      const graph::Edge& edge = tt.graph().edge(pe);
      if (edge.u != at && edge.v != at) {
        connected = false;
        break;
      }
      at = edge.other(at);
    }
    c.expect(connected && at == v, "lemma2.9/path-connects", [&] {
      return "replacement path for (" + node_str(u) + "," + node_str(v) +
             ") is not a connected u..v walk";
    });
    if (!connected) continue;
    // Reuse accounting: a path counts once per distinct edge.
    std::fill(counted.begin(), counted.end(), false);
    for (const graph::EdgeId pe : path) {
      if (counted[pe]) continue;
      counted[pe] = true;
      worst = std::max(worst, ++uses[pe]);
    }
  }
  c.expect(worst <= max_reuse, "lemma2.9/reuse-bound", [&] {
    return "an N edge is shared by " + std::to_string(worst) +
           " replacement paths > bound " + std::to_string(max_reuse);
  });
  report.notes.push_back("max observed reuse " + std::to_string(worst));
  return report;
}

CheckReport check_interference_growth(
    std::span<const InterferenceSample> samples, double max_per_log_n,
    double growth_slack) {
  CheckReport report;
  report.checker = "interference_growth";
  Collector c(report);

  const InterferenceSample* first = nullptr;
  const InterferenceSample* last = nullptr;
  for (const InterferenceSample& s : samples) {
    if (s.n < 2) continue;
    const double log_n = std::log2(static_cast<double>(s.n));
    c.expect(static_cast<double>(s.interference) <= max_per_log_n * log_n,
             "lemma2.10/log-bound", [&] {
               return "n=" + std::to_string(s.n) + ": I(N)=" +
                      std::to_string(s.interference) + " > " +
                      format_double(max_per_log_n) + "*log2(n)=" +
                      format_double(max_per_log_n * log_n);
             });
    if (first == nullptr) first = &s;
    last = &s;
  }

  // Sweep shape: growth of I across the sweep must track growth of log n.
  if (first != nullptr && last != first && first->interference > 0) {
    const double i_growth = static_cast<double>(last->interference) /
                            static_cast<double>(first->interference);
    const double log_growth = std::log2(static_cast<double>(last->n)) /
                              std::log2(static_cast<double>(first->n));
    c.expect(i_growth <= growth_slack * log_growth, "lemma2.10/growth", [&] {
      return "I grew " + format_double(i_growth) + "x from n=" +
             std::to_string(first->n) + " to n=" + std::to_string(last->n) +
             ", allowed " + format_double(growth_slack * log_growth) + "x";
    });
  }
  return report;
}

CheckReport check_router_bounds(const route::AdversaryTrace& trace,
                                const core::BalancingParams& params,
                                const sim::ScenarioResult& result,
                                const RouterBoundsParams& bounds) {
  CheckReport report;
  report.checker = "router_bounds";
  Collector c(report);
  const route::RunMetrics& m = result.metrics;

  // Packet conservation across the run.
  c.expect(m.injected_offered == m.injected_accepted + m.dropped_at_injection,
           "conservation/injection", [&] {
             return "offered " + std::to_string(m.injected_offered) +
                    " != accepted " + std::to_string(m.injected_accepted) +
                    " + injection drops " +
                    std::to_string(m.dropped_at_injection);
           });
  c.expect(m.injected_accepted ==
               m.deliveries + m.dropped_in_transit + m.leftover_packets,
           "conservation/accepted", [&] {
             return "accepted " + std::to_string(m.injected_accepted) +
                    " != delivered " + std::to_string(m.deliveries) +
                    " + transit drops " + std::to_string(m.dropped_in_transit) +
                    " + leftover " + std::to_string(m.leftover_packets);
           });

  // Queue bound: no buffer ever exceeds H.
  c.expect(m.peak_buffer <= params.max_height, "section3/buffer-height", [&] {
    return "peak buffer " + std::to_string(m.peak_buffer) + " > H = " +
           std::to_string(params.max_height);
  });

  // The certified optimum is an upper bound on deliveries.
  c.expect(m.deliveries <= result.opt.deliveries, "section3/opt-upper-bound",
           [&] {
             return "delivered " + std::to_string(m.deliveries) +
                    " > certified OPT " + std::to_string(result.opt.deliveries);
           });

  // Theorem 3.1: with T >= B + 2*(delta-1), only newly injected packets are
  // ever deleted — an in-transit drop is a hard violation in that regime.
  const double t31_threshold =
      static_cast<double>(result.opt.max_buffer) +
      2.0 * (bounds.theorem31_delta - 1.0);
  if (params.threshold >= t31_threshold) {
    c.expect(m.dropped_in_transit == 0, "theorem3.1/no-transit-drops", [&] {
      return std::to_string(m.dropped_in_transit) +
             " in-transit drops with T=" + format_double(params.threshold) +
             " >= B + 2*(delta-1) = " + format_double(t31_threshold);
    });
  } else {
    report.notes.push_back("T below Theorem 3.1 regime; transit-drop check skipped");
  }

  if (bounds.expect_no_collisions) {
    c.expect(m.failed_tx == 0 && m.wasted_energy == 0.0,
             "scenario1/no-collisions", [&] {
               return "MAC-given run reports " + std::to_string(m.failed_tx) +
                      " collisions / wasted energy " +
                      format_double(m.wasted_energy);
             });
  }

  if (bounds.min_throughput_ratio > 0.0 && result.opt.deliveries > 0) {
    const double ratio = result.throughput_ratio();
    c.expect(ratio >= bounds.min_throughput_ratio, "section3/throughput", [&] {
      return "throughput ratio " + format_double(ratio) + " < floor " +
             format_double(bounds.min_throughput_ratio);
    });
  }

  // Energy accounting sanity.
  c.expect(m.delivered_cost <= m.total_energy + 1e-9 * std::max(1.0, m.total_energy),
           "energy/delivered-within-total", [&] {
             return "delivered cost " + format_double(m.delivered_cost) +
                    " exceeds total successful-transmission energy " +
                    format_double(m.total_energy);
           });
  (void)trace;
  return report;
}

}  // namespace thetanet::verify
