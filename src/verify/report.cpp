#include "verify/report.h"

#include <cstdio>

namespace thetanet::verify {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string CheckReport::to_string() const {
  std::string out = "check " + checker + ": ";
  out += pass() ? "PASS" : "FAIL";
  out += " (checks=" + std::to_string(checks) +
         ", violations=" + std::to_string(violations.size()) + ")\n";
  for (const Violation& v : violations)
    out += "  violation " + v.rule + ": " + v.detail + "\n";
  for (const std::string& n : notes) out += "  note: " + n + "\n";
  return out;
}

std::string ConformanceReport::to_string() const {
  std::string out = "scenario " + scenario + ": ";
  out += pass() ? "PASS" : "FAIL";
  out += " (checks=" + std::to_string(total_checks()) +
         ", violations=" + std::to_string(total_violations()) + ")\n";
  for (const CheckReport& c : checks) out += c.to_string();
  return out;
}

}  // namespace thetanet::verify
