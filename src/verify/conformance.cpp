#include "verify/conformance.h"

#include <algorithm>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/theta_maintenance.h"
#include "core/theta_topology.h"
#include "geom/rng.h"
#include "interference/model.h"
#include "sim/scenarios.h"
#include "topology/io.h"
#include "topology/transmission_graph.h"

namespace thetanet::verify {

namespace {

CheckReport skipped(const char* checker, std::string why) {
  CheckReport r;
  r.checker = checker;
  r.notes.push_back("skipped: " + std::move(why));
  return r;
}

topo::Deployment without_range(const topo::Deployment& d, std::size_t begin,
                               std::size_t end) {
  topo::Deployment out;
  out.max_range = d.max_range;
  out.kappa = d.kappa;
  out.positions.reserve(d.size() - (end - begin));
  for (std::size_t i = 0; i < d.size(); ++i)
    if (i < begin || i >= end) out.positions.push_back(d.positions[i]);
  return out;
}

}  // namespace

ConformanceReport run_conformance(const topo::Deployment& d,
                                  const ConformanceOptions& opt,
                                  const TopologyMutator& mutator) {
  ConformanceReport rep;
  rep.scenario = "deployment-n" + std::to_string(d.size());

  if (d.size() < 2) {
    CheckReport trivial;
    trivial.checker = "conformance";
    trivial.checks = 1;
    trivial.notes.push_back("n < 2: every guarantee holds vacuously");
    rep.checks.push_back(std::move(trivial));
    return rep;
  }

  const graph::Graph gstar = topo::build_transmission_graph(d);
  const core::ThetaTopology tt(d, opt.theta);

  // Duplicate points void the paper's unique-distance assumption; the
  // guarantees that presuppose it (connectivity, stretch, theta-paths) are
  // skipped on such inputs while the structural checks still run.
  const double min_dist = min_max_pairwise_distance(d).first;
  const bool unique_distances = min_dist > 0.0;

  graph::Graph n_audit = tt.graph();
  if (mutator) mutator(n_audit, d);

  // The audited copy is checked against the construction state even when a
  // mutator corrupted it — that mismatch is precisely what the shrinker
  // self-tests rely on detecting.
  rep.checks.push_back(check_theta_invariants(n_audit, d, opt.theta, gstar,
                                              &tt, unique_distances));

  if (!opt.run_stretch) {
    rep.checks.push_back(skipped("theorem2.2/energy-stretch", "disabled"));
  } else if (!unique_distances) {
    rep.checks.push_back(skipped(
        "theorem2.2/energy-stretch",
        "duplicate points void the unique-distance assumption"));
  } else {
    rep.checks.push_back(
        check_energy_stretch(n_audit, d, gstar, opt.max_energy_stretch));
  }

  // Lemma 2.9's theta-path recursion likewise assumes unique pairwise
  // distances; coincident points can cycle it.
  if (!opt.run_replacement) {
    rep.checks.push_back(skipped("lemma2.9/replacement-reuse", "disabled"));
  } else if (!unique_distances) {
    rep.checks.push_back(skipped("lemma2.9/replacement-reuse",
                                 "duplicate points break the theta-path "
                                 "recursion's distance ordering"));
  } else if (gstar.num_edges() == 0) {
    rep.checks.push_back(
        skipped("lemma2.9/replacement-reuse", "G* has no edges"));
  } else {
    const interf::InterferenceModel model{opt.delta};
    rep.checks.push_back(check_replacement_reuse(
        tt, gstar, model, opt.max_replacement_reuse));
  }

  if (!opt.run_router) {
    rep.checks.push_back(skipped("theorem3.1/router-bounds", "disabled"));
  } else if (n_audit.num_edges() == 0) {
    rep.checks.push_back(
        skipped("theorem3.1/router-bounds", "topology has no edges"));
  } else {
    route::TraceParams tp;
    tp.horizon = opt.trace_horizon;
    tp.drain = opt.trace_drain;
    tp.injections_per_step = 2.0;
    tp.num_destinations = 2;
    geom::Rng rng(opt.trace_seed * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL);
    const route::AdversaryTrace trace = make_certified_trace(n_audit, tp, rng);
    const core::BalancingParams params =
        core::theorem31_params(trace.opt, opt.router_eps, opt.delta);
    const sim::ScenarioResult result =
        sim::run_mac_given(trace, params, /*extra_drain=*/opt.trace_drain);
    RouterBoundsParams rb;
    rb.theorem31_delta = opt.delta;
    rb.expect_no_collisions = true;  // scenario 1: the MAC is given
    rep.checks.push_back(check_router_bounds(trace, params, result, rb));
  }

  return rep;
}

CheckReport check_maintenance_conformance(const core::ThetaMaintainer& m,
                                          const sim::DynamicsEngine* engine) {
  CheckReport r;
  r.checker = "maintenance/equivalence";

  // (a) Edge-identity with a from-scratch build on the surviving nodes.
  std::vector<graph::NodeId> ids;
  const topo::Deployment compact = m.active_deployment(&ids);
  ++r.checks;
  if (compact.size() >= 2) {
    const core::ThetaTopology fresh(compact, m.theta());
    // Map fresh's compact endpoints back to original ids (ids ascending, so
    // orientation and sort order survive), then diff against the maintained
    // edge list.
    std::vector<std::pair<graph::NodeId, graph::NodeId>> want;
    want.reserve(fresh.graph().num_edges());
    for (graph::EdgeId e = 0; e < fresh.graph().num_edges(); ++e)
      want.emplace_back(ids[fresh.graph().edge(e).u],
                        ids[fresh.graph().edge(e).v]);
    std::sort(want.begin(), want.end());
    std::vector<std::pair<graph::NodeId, graph::NodeId>> have;
    have.reserve(m.graph().num_edges());
    for (graph::EdgeId e = 0; e < m.graph().num_edges(); ++e)
      have.emplace_back(m.graph().edge(e).u, m.graph().edge(e).v);
    std::sort(have.begin(), have.end());
    if (want != have) {
      std::size_t reported = 0;
      for (const auto& [u, v] : want)
        if (!std::binary_search(have.begin(), have.end(), std::pair(u, v)) &&
            reported++ < 4)
          r.add_violation("maintenance/missing-edge",
                          "maintained N lacks fresh-build edge (" +
                              std::to_string(u) + ", " + std::to_string(v) +
                              ")");
      for (const auto& [u, v] : have)
        if (!std::binary_search(want.begin(), want.end(), std::pair(u, v)) &&
            reported++ < 8)
          r.add_violation("maintenance/extra-edge",
                          "maintained N carries edge (" + std::to_string(u) +
                              ", " + std::to_string(v) +
                              ") absent from a fresh build");
      if (reported == 0)
        r.add_violation("maintenance/equivalence",
                        "edge lists differ (count " +
                            std::to_string(have.size()) + " vs " +
                            std::to_string(want.size()) + ")");
    }
  } else if (m.graph().num_edges() != 0) {
    r.add_violation("maintenance/ghost-edges",
                    "fewer than 2 active nodes but the maintained overlay "
                    "has " + std::to_string(m.graph().num_edges()) + " edges");
  }

  // (b) No edge may touch an inactive (asleep/dead) node.
  ++r.checks;
  for (graph::EdgeId e = 0; e < m.graph().num_edges(); ++e) {
    const graph::Edge& ed = m.graph().edge(e);
    if (!m.active(ed.u) || !m.active(ed.v)) {
      r.add_violation("maintenance/inactive-endpoint",
                      "edge (" + std::to_string(ed.u) + ", " +
                          std::to_string(ed.v) +
                          ") touches an inactive node");
      break;
    }
  }

  // (c) Exact energy conservation of the duty-cycle ledger.
  if (engine) {
    ++r.checks;
    const std::uint64_t in =
        engine->energy_granted() + engine->energy_harvested();
    const std::uint64_t out =
        engine->energy_drained() + engine->energy_remaining();
    if (in != out)
      r.add_violation("dynamics/energy-conservation",
                      "granted+harvested = " + std::to_string(in) +
                          " but drained+remaining = " + std::to_string(out));
  }
  return r;
}

namespace {

/// The maintained overlay compacted to active ids — substituted for the
/// audited N inside run_conformance so the static checkers (Lemma 2.1,
/// Theorem 2.2, Lemma 2.9 reuse surface) judge the *maintained* topology,
/// not a fresh rebuild.
graph::Graph compact_maintained_graph(const core::ThetaMaintainer& m,
                                      const std::vector<graph::NodeId>& ids) {
  std::vector<graph::NodeId> to_compact(m.deployment().size(),
                                        graph::kInvalidNode);
  for (std::size_t i = 0; i < ids.size(); ++i)
    to_compact[ids[i]] = static_cast<graph::NodeId>(i);
  graph::Graph out(ids.size());
  for (graph::EdgeId e = 0; e < m.graph().num_edges(); ++e) {
    const graph::Edge& ed = m.graph().edge(e);
    TN_ASSERT(to_compact[ed.u] != graph::kInvalidNode &&
              to_compact[ed.v] != graph::kInvalidNode);
    out.add_edge(to_compact[ed.u], to_compact[ed.v], ed.length, ed.cost);
  }
  out.finalize();
  return out;
}

}  // namespace

ConformanceReport run_churn_conformance(const topo::Deployment& d0,
                                        std::span<const sim::DynEvent> events,
                                        const ChurnOptions& opt) {
  ConformanceReport rep;
  rep.scenario = "churn-deployment-n" + std::to_string(d0.size());

  core::ThetaMaintainer m(d0, opt.checks.theta);
  sim::DynamicsEngine engine(m, opt.dynamics, opt.dynamics_seed);

  std::uint64_t rounds = opt.rounds;
  for (const sim::DynEvent& e : events)
    rounds = std::max<std::uint64_t>(rounds, e.round + 1);
  if (rounds == 0) rounds = 1;  // audit the initial state at least once

  const auto audit = [&](std::uint64_t round, bool final_round) {
    const std::string prefix = "r" + std::to_string(round) + "/";
    CheckReport eq = check_maintenance_conformance(m, &engine);
    eq.checker = prefix + eq.checker;
    rep.checks.push_back(std::move(eq));

    std::vector<graph::NodeId> ids;
    const topo::Deployment compact = m.active_deployment(&ids);
    ConformanceOptions copt = opt.checks;
    if (opt.router_on_final_only && !final_round) copt.run_router = false;
    const graph::Graph maintained = compact_maintained_graph(m, ids);
    ConformanceReport batch = run_conformance(
        compact, copt,
        [&](graph::Graph& g, const topo::Deployment&) { g = maintained; });
    for (CheckReport& c : batch.checks) {
      c.checker = prefix + c.checker;
      rep.checks.push_back(std::move(c));
    }
  };

  std::size_t next = 0;
  for (std::uint64_t r = 0; r < rounds; ++r) {
    std::size_t end = next;
    while (end < events.size() && events[end].round == r) ++end;
    engine.step(events.subspan(next, end - next));
    next = end;
    const bool final_round = r + 1 == rounds;
    if (final_round || opt.check_every <= 1 ||
        r % opt.check_every == opt.check_every - 1)
      audit(r, final_round);
  }
  return rep;
}

namespace {

/// Greedy chunked subsequence removal over the event list (the second ddmin
/// dimension). Keeps any deletion under which the run still fails.
bool ddmin_events(ChurnShrinkResult& res, const ChurnOptions& opt,
                  std::size_t max_evaluations) {
  bool shrunk_any = false;
  std::size_t chunk = std::max<std::size_t>(1, res.events.size() / 2);
  while (chunk >= 1) {
    bool removed_any = false;
    std::size_t begin = 0;
    while (begin < res.events.size()) {
      if (res.evaluations >= max_evaluations) return shrunk_any;
      const std::size_t end = std::min(begin + chunk, res.events.size());
      std::vector<sim::DynEvent> candidate;
      candidate.reserve(res.events.size() - (end - begin));
      candidate.insert(candidate.end(), res.events.begin(),
                       res.events.begin() + static_cast<std::ptrdiff_t>(begin));
      candidate.insert(candidate.end(),
                       res.events.begin() + static_cast<std::ptrdiff_t>(end),
                       res.events.end());
      ConformanceReport r =
          run_churn_conformance(res.reproducer, candidate, opt);
      ++res.evaluations;
      if (!r.pass()) {
        res.events = std::move(candidate);
        res.report = std::move(r);
        removed_any = shrunk_any = true;
        // keep `begin`: the next block slid into this position
      } else {
        begin = end;
      }
    }
    if (chunk == 1 && !removed_any) break;
    chunk = removed_any ? chunk : chunk / 2;
  }
  return shrunk_any;
}

/// Dropping deployment nodes [begin, end) renumbers every id at or above
/// `end` (base nodes and later joins alike), so event targets must shift
/// with them. Targets inside the dropped block become kInvalidNode — the
/// engine counts those as no-ops, keeping any candidate well-formed.
std::vector<sim::DynEvent> remap_events_for_removal(
    const std::vector<sim::DynEvent>& events, std::size_t begin,
    std::size_t end) {
  std::vector<sim::DynEvent> out = events;
  const auto removed = static_cast<graph::NodeId>(end - begin);
  for (sim::DynEvent& e : out) {
    if (e.node == graph::kInvalidNode) continue;
    if (e.node >= end)
      e.node -= removed;
    else if (e.node >= begin)
      e.node = graph::kInvalidNode;
  }
  return out;
}

/// Greedy chunked node removal for temporal cases, with the event targets
/// remapped per candidate so the surviving schedule keeps addressing the
/// same surviving nodes.
bool ddmin_nodes(ChurnShrinkResult& res, const ChurnOptions& opt,
                 std::size_t max_evaluations) {
  bool shrunk_any = false;
  std::size_t chunk = std::max<std::size_t>(1, res.reproducer.size() / 2);
  while (chunk >= 1) {
    bool removed_any = false;
    std::size_t begin = 0;
    while (begin < res.reproducer.size()) {
      if (res.evaluations >= max_evaluations) return shrunk_any;
      const std::size_t end = std::min(begin + chunk, res.reproducer.size());
      if (end - begin == res.reproducer.size()) break;  // never empty it
      topo::Deployment candidate = without_range(res.reproducer, begin, end);
      std::vector<sim::DynEvent> cand_events =
          remap_events_for_removal(res.events, begin, end);
      ConformanceReport r = run_churn_conformance(candidate, cand_events, opt);
      ++res.evaluations;
      if (!r.pass()) {
        res.reproducer = std::move(candidate);
        res.events = std::move(cand_events);
        res.report = std::move(r);
        removed_any = shrunk_any = true;
      } else {
        begin = end;
      }
    }
    if (chunk == 1 && !removed_any) break;
    chunk = removed_any ? chunk : chunk / 2;
  }
  return shrunk_any;
}

}  // namespace

ChurnShrinkResult shrink_churn(const topo::Deployment& failing,
                               std::span<const sim::DynEvent> events,
                               const ChurnOptions& opt,
                               std::size_t max_evaluations) {
  ChurnShrinkResult res;
  res.reproducer = failing;
  res.events.assign(events.begin(), events.end());
  res.report = run_churn_conformance(failing, events, opt);
  res.evaluations = 1;
  TN_ASSERT_MSG(!res.report.pass(),
                "shrink_churn() needs a failing temporal case to shrink");

  // Alternate the two dimensions to a fixpoint: a smaller event list often
  // unlocks further node removals and vice versa.
  for (;;) {
    bool progress = ddmin_events(res, opt, max_evaluations);
    progress |= ddmin_nodes(res, opt, max_evaluations);
    if (!progress || res.evaluations >= max_evaluations) break;
  }
  return res;
}

ShrinkResult shrink_deployment(const topo::Deployment& failing,
                               const ConformanceOptions& opt,
                               const TopologyMutator& mutator,
                               std::size_t max_evaluations) {
  ShrinkResult res;
  res.reproducer = failing;
  res.report = run_conformance(failing, opt, mutator);
  res.evaluations = 1;
  TN_ASSERT_MSG(!res.report.pass(),
                "shrink_deployment() needs a failing instance to shrink");

  // Greedy chunked node removal (ddmin flavour): try to delete progressively
  // smaller contiguous blocks, keeping any deletion that still fails.
  std::size_t chunk = std::max<std::size_t>(1, res.reproducer.size() / 2);
  while (chunk >= 1) {
    bool removed_any = false;
    std::size_t begin = 0;
    while (begin < res.reproducer.size()) {
      if (res.evaluations >= max_evaluations) return res;
      const std::size_t end =
          std::min(begin + chunk, res.reproducer.size());
      if (end - begin == res.reproducer.size()) break;  // never empty it
      topo::Deployment candidate = without_range(res.reproducer, begin, end);
      ConformanceReport r = run_conformance(candidate, opt, mutator);
      ++res.evaluations;
      if (!r.pass()) {
        res.reproducer = std::move(candidate);
        res.report = std::move(r);
        removed_any = true;
        // keep `begin`: the next block slid into this position
      } else {
        begin = end;
      }
    }
    if (chunk == 1 && !removed_any) break;
    chunk = removed_any ? chunk : chunk / 2;
  }
  return res;
}

void save_corpus_case(std::ostream& os, const CorpusCase& c) {
  // Event-free cases keep emitting v1 so the existing corpus stays
  // byte-stable; only temporal cases pay the version bump.
  const bool temporal = !c.events.empty();
  os << "conformance " << (temporal ? "v2 " : "v1 ")
     << (c.name.empty() ? "unnamed" : c.name) << ' ' << c.seed << '\n';
  os << "theta " << format_double(c.theta) << " delta "
     << format_double(c.delta) << '\n';
  if (temporal)
    os << "dynamics seed " << c.dynamics_seed << " rounds " << c.rounds
       << '\n';
  topo::save_deployment(os, c.deployment);
  if (temporal) {
    os << "events v1 " << c.events.size() << '\n';
    for (const sim::DynEvent& e : c.events)
      os << e.round << ' ' << sim::dyn_event_kind_name(e.kind) << ' '
         << e.node << ' ' << format_double(e.pos.x) << ' '
         << format_double(e.pos.y) << ' ' << format_double(e.radius) << '\n';
  }
}

bool save_corpus_case(const std::string& path, const CorpusCase& c) {
  std::ofstream os(path);
  if (!os) return false;
  save_corpus_case(os, c);
  return static_cast<bool>(os);
}

std::optional<CorpusCase> load_corpus_case(std::istream& is) {
  std::string magic, version;
  CorpusCase c;
  if (!(is >> magic >> version >> c.name >> c.seed)) return std::nullopt;
  if (magic != "conformance" || (version != "v1" && version != "v2"))
    return std::nullopt;
  std::string kw_theta, kw_delta;
  if (!(is >> kw_theta >> c.theta >> kw_delta >> c.delta)) return std::nullopt;
  if (kw_theta != "theta" || kw_delta != "delta") return std::nullopt;
  if (version == "v2") {
    std::string kw_dyn, kw_seed, kw_rounds;
    if (!(is >> kw_dyn >> kw_seed >> c.dynamics_seed >> kw_rounds >> c.rounds))
      return std::nullopt;
    if (kw_dyn != "dynamics" || kw_seed != "seed" || kw_rounds != "rounds")
      return std::nullopt;
  }
  std::optional<topo::Deployment> d = topo::load_deployment(is);
  if (!d) return std::nullopt;
  c.deployment = std::move(*d);
  if (version == "v2") {
    std::string kw_events, ev_version;
    std::size_t count = 0;
    if (!(is >> kw_events >> ev_version >> count)) return std::nullopt;
    if (kw_events != "events" || ev_version != "v1") return std::nullopt;
    c.events.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      sim::DynEvent e;
      std::string kind;
      if (!(is >> e.round >> kind >> e.node >> e.pos.x >> e.pos.y >>
            e.radius))
        return std::nullopt;
      const std::optional<sim::DynEventKind> k = sim::parse_dyn_event_kind(kind);
      if (!k) return std::nullopt;
      e.kind = *k;
      c.events.push_back(e);
    }
  }
  return c;
}

std::optional<CorpusCase> load_corpus_case(const std::string& path) {
  std::ifstream is(path);
  if (!is) return std::nullopt;
  return load_corpus_case(is);
}

}  // namespace thetanet::verify
