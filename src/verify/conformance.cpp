#include "verify/conformance.h"

#include <algorithm>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/theta_topology.h"
#include "geom/rng.h"
#include "interference/model.h"
#include "sim/scenarios.h"
#include "topology/io.h"
#include "topology/transmission_graph.h"

namespace thetanet::verify {

namespace {

CheckReport skipped(const char* checker, std::string why) {
  CheckReport r;
  r.checker = checker;
  r.notes.push_back("skipped: " + std::move(why));
  return r;
}

}  // namespace

ConformanceReport run_conformance(const topo::Deployment& d,
                                  const ConformanceOptions& opt,
                                  const TopologyMutator& mutator) {
  ConformanceReport rep;
  rep.scenario = "deployment-n" + std::to_string(d.size());

  if (d.size() < 2) {
    CheckReport trivial;
    trivial.checker = "conformance";
    trivial.checks = 1;
    trivial.notes.push_back("n < 2: every guarantee holds vacuously");
    rep.checks.push_back(std::move(trivial));
    return rep;
  }

  const graph::Graph gstar = topo::build_transmission_graph(d);
  const core::ThetaTopology tt(d, opt.theta);

  // Duplicate points void the paper's unique-distance assumption; the
  // guarantees that presuppose it (connectivity, stretch, theta-paths) are
  // skipped on such inputs while the structural checks still run.
  const double min_dist = min_max_pairwise_distance(d).first;
  const bool unique_distances = min_dist > 0.0;

  graph::Graph n_audit = tt.graph();
  if (mutator) mutator(n_audit, d);

  // The audited copy is checked against the construction state even when a
  // mutator corrupted it — that mismatch is precisely what the shrinker
  // self-tests rely on detecting.
  rep.checks.push_back(check_theta_invariants(n_audit, d, opt.theta, gstar,
                                              &tt, unique_distances));

  if (!opt.run_stretch) {
    rep.checks.push_back(skipped("theorem2.2/energy-stretch", "disabled"));
  } else if (!unique_distances) {
    rep.checks.push_back(skipped(
        "theorem2.2/energy-stretch",
        "duplicate points void the unique-distance assumption"));
  } else {
    rep.checks.push_back(
        check_energy_stretch(n_audit, d, gstar, opt.max_energy_stretch));
  }

  // Lemma 2.9's theta-path recursion likewise assumes unique pairwise
  // distances; coincident points can cycle it.
  if (!opt.run_replacement) {
    rep.checks.push_back(skipped("lemma2.9/replacement-reuse", "disabled"));
  } else if (!unique_distances) {
    rep.checks.push_back(skipped("lemma2.9/replacement-reuse",
                                 "duplicate points break the theta-path "
                                 "recursion's distance ordering"));
  } else if (gstar.num_edges() == 0) {
    rep.checks.push_back(
        skipped("lemma2.9/replacement-reuse", "G* has no edges"));
  } else {
    const interf::InterferenceModel model{opt.delta};
    rep.checks.push_back(check_replacement_reuse(
        tt, gstar, model, opt.max_replacement_reuse));
  }

  if (!opt.run_router) {
    rep.checks.push_back(skipped("theorem3.1/router-bounds", "disabled"));
  } else if (n_audit.num_edges() == 0) {
    rep.checks.push_back(
        skipped("theorem3.1/router-bounds", "topology has no edges"));
  } else {
    route::TraceParams tp;
    tp.horizon = opt.trace_horizon;
    tp.drain = opt.trace_drain;
    tp.injections_per_step = 2.0;
    tp.num_destinations = 2;
    geom::Rng rng(opt.trace_seed * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL);
    const route::AdversaryTrace trace = make_certified_trace(n_audit, tp, rng);
    const core::BalancingParams params =
        core::theorem31_params(trace.opt, opt.router_eps, opt.delta);
    const sim::ScenarioResult result =
        sim::run_mac_given(trace, params, /*extra_drain=*/opt.trace_drain);
    RouterBoundsParams rb;
    rb.theorem31_delta = opt.delta;
    rb.expect_no_collisions = true;  // scenario 1: the MAC is given
    rep.checks.push_back(check_router_bounds(trace, params, result, rb));
  }

  return rep;
}

namespace {

topo::Deployment without_range(const topo::Deployment& d, std::size_t begin,
                               std::size_t end) {
  topo::Deployment out;
  out.max_range = d.max_range;
  out.kappa = d.kappa;
  out.positions.reserve(d.size() - (end - begin));
  for (std::size_t i = 0; i < d.size(); ++i)
    if (i < begin || i >= end) out.positions.push_back(d.positions[i]);
  return out;
}

}  // namespace

ShrinkResult shrink_deployment(const topo::Deployment& failing,
                               const ConformanceOptions& opt,
                               const TopologyMutator& mutator,
                               std::size_t max_evaluations) {
  ShrinkResult res;
  res.reproducer = failing;
  res.report = run_conformance(failing, opt, mutator);
  res.evaluations = 1;
  TN_ASSERT_MSG(!res.report.pass(),
                "shrink_deployment() needs a failing instance to shrink");

  // Greedy chunked node removal (ddmin flavour): try to delete progressively
  // smaller contiguous blocks, keeping any deletion that still fails.
  std::size_t chunk = std::max<std::size_t>(1, res.reproducer.size() / 2);
  while (chunk >= 1) {
    bool removed_any = false;
    std::size_t begin = 0;
    while (begin < res.reproducer.size()) {
      if (res.evaluations >= max_evaluations) return res;
      const std::size_t end =
          std::min(begin + chunk, res.reproducer.size());
      if (end - begin == res.reproducer.size()) break;  // never empty it
      topo::Deployment candidate = without_range(res.reproducer, begin, end);
      ConformanceReport r = run_conformance(candidate, opt, mutator);
      ++res.evaluations;
      if (!r.pass()) {
        res.reproducer = std::move(candidate);
        res.report = std::move(r);
        removed_any = true;
        // keep `begin`: the next block slid into this position
      } else {
        begin = end;
      }
    }
    if (chunk == 1 && !removed_any) break;
    chunk = removed_any ? chunk : chunk / 2;
  }
  return res;
}

void save_corpus_case(std::ostream& os, const CorpusCase& c) {
  os << "conformance v1 " << (c.name.empty() ? "unnamed" : c.name) << ' '
     << c.seed << '\n';
  os << "theta " << format_double(c.theta) << " delta "
     << format_double(c.delta) << '\n';
  topo::save_deployment(os, c.deployment);
}

bool save_corpus_case(const std::string& path, const CorpusCase& c) {
  std::ofstream os(path);
  if (!os) return false;
  save_corpus_case(os, c);
  return static_cast<bool>(os);
}

std::optional<CorpusCase> load_corpus_case(std::istream& is) {
  std::string magic, version;
  CorpusCase c;
  if (!(is >> magic >> version >> c.name >> c.seed)) return std::nullopt;
  if (magic != "conformance" || version != "v1") return std::nullopt;
  std::string kw_theta, kw_delta;
  if (!(is >> kw_theta >> c.theta >> kw_delta >> c.delta)) return std::nullopt;
  if (kw_theta != "theta" || kw_delta != "delta") return std::nullopt;
  std::optional<topo::Deployment> d = topo::load_deployment(is);
  if (!d) return std::nullopt;
  c.deployment = std::move(*d);
  return c;
}

std::optional<CorpusCase> load_corpus_case(const std::string& path) {
  std::ifstream is(path);
  if (!is) return std::nullopt;
  return load_corpus_case(is);
}

}  // namespace thetanet::verify
