#pragma once
// Zoo-wide conformance: run every registered TopologyBuilder over one
// deployment and audit each against exactly the guarantees it claims
// (topo::BuilderGuarantees), plus the shared structural contract every
// builder owes (normalized edge list, subgraph of G*, consistent weights).
// A final coverage check fails loudly if any registered builder was not
// audited — the harness can never silently skip a competitor.
//
// The routing dimension rides along: compass routing over G* must deliver
// adjacent pairs at length-ratio 1 (the oracle that catches the
// --plant-routing-bug tie-break mutation), and Θ₄ must stay under the 17x
// routing-ratio bound of Bose et al. on complete instances.

#include <string>
#include <vector>

#include "topology/builder.h"
#include "verify/conformance.h"
#include "verify/report.h"

namespace thetanet::verify {

struct ZooOptions {
  ConformanceOptions checks;  ///< thresholds shared with run_conformance

  /// Routing-ratio sampling per structure (ordered pairs; exhaustive when
  /// the instance is small enough).
  std::size_t routing_pairs = 512;
  std::uint64_t routing_seed = 1;
  /// Adjacent-pair compass audits per structure (edge budget).
  std::size_t compass_edges = 256;
  /// Theorem bound asserted for Θ₄ theta-routing on complete instances.
  double theta4_routing_ratio_bound = 17.0;

  /// Plant the wrong compass tie-break (test-only; see local_route.h). The
  /// gstar compass oracle must catch it on any instance with an exact
  /// angle tie (collinear triples).
  bool plant_routing_bug = false;

  /// Restrict the run to these builder names (empty: whole registry). An
  /// unknown name is a coverage violation, not a silent skip.
  std::vector<std::string> only;
};

/// Audit the whole zoo over one deployment. Check names are prefixed
/// "<builder>/", plus a trailing "zoo/coverage" check.
ConformanceReport run_zoo_conformance(const topo::Deployment& d,
                                      const ZooOptions& opt);

/// ddmin over the node set for a failing zoo run (same greedy chunked
/// removal as shrink_deployment, evaluating run_zoo_conformance).
ShrinkResult shrink_zoo_deployment(const topo::Deployment& failing,
                                   const ZooOptions& opt,
                                   std::size_t max_evaluations = 2000);

}  // namespace thetanet::verify
