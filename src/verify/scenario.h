#pragma once
// Seeded scenario generation for the conformance fuzzer: every scenario is a
// pure function of its spec (distribution family, n, seed, mobility), so a
// failing case is reproducible from the one line the driver prints. The
// families deliberately span the paper's regimes — uniform (Lemma 2.10's
// model), clustered, jittered grid, civilized / lambda-precision
// (Section 2.3), the adversarial hub ring, the non-civilized exponential
// chain and nested clusters, and fully coincident points (the degenerate
// input the unique-distance assumption excludes — construction must still
// not crash or hang on it).

#include <cstdint>
#include <string>
#include <vector>

#include "sim/dynamics.h"
#include "topology/deployment.h"

namespace thetanet::verify {

enum class Distribution : int {
  kUniform = 0,
  kClustered,
  kGridJitter,
  kCivilized,
  kHubRing,
  kExponentialChain,
  kNestedClusters,
  kCoincident,
  /// Exactly collinear chain: seeded gaps, identical y. Unlike exp_chain
  /// (which jitters y), bearings between chain nodes are bit-identical, so
  /// compass routing faces *exact* angle ties — the regime where the
  /// tie-break rule (nearest-first) carries the delivery proof, and the
  /// family the --plant-routing-bug mutation is caught on.
  kCollinearChain,
};

inline constexpr Distribution kAllDistributions[] = {
    Distribution::kUniform,          Distribution::kClustered,
    Distribution::kGridJitter,       Distribution::kCivilized,
    Distribution::kHubRing,          Distribution::kExponentialChain,
    Distribution::kNestedClusters,   Distribution::kCoincident,
    Distribution::kCollinearChain,
};

const char* distribution_name(Distribution d);

struct ScenarioSpec {
  Distribution dist = Distribution::kUniform;
  std::size_t n = 32;
  std::uint64_t seed = 1;
  double kappa = 2.0;
  double range_scale = 1.0;  ///< multiplies the family's default range
  int mobility_steps = 0;    ///< random-waypoint steps applied after placement
};

/// Stable label, e.g. "uniform-n32-seed7-k2-m0"; used in reports and corpus
/// file names, so it contains no spaces.
std::string scenario_name(const ScenarioSpec& spec);

/// Build the deployment for a spec. Total function: every distribution
/// handles n in {0, 1, 2} (the generators' small-n edge cases are part of
/// the conformance surface).
topo::Deployment build_scenario_deployment(const ScenarioSpec& spec);

// ---------------------------------------------------------------------------
// Churn scenarios: a placement family plus a seeded per-round event schedule
// (join / leave / crash / sleep / wake / correlated regional failure).
// Like ScenarioSpec, a ChurnSpec is a pure function of its fields, so a
// failing temporal case reproduces from the one line the driver prints.

struct ChurnSpec {
  ScenarioSpec base;            ///< placement family for round 0
  std::uint32_t rounds = 10;    ///< schedule length in rounds
  double events_per_round = 1.5;
  // Relative weights of the event kinds drawn each round (0 disables).
  double join_weight = 1.0;
  double leave_weight = 0.7;
  double crash_weight = 0.4;
  double sleep_weight = 1.0;
  double wake_weight = 1.2;
  double regional_weight = 0.0;
  double regional_radius = 0.25;  ///< failure-disk radius (arena units)
  bool duty_cycle = false;        ///< battery-driven sleep/wake on top
};

/// Stable label, e.g. "churn-uniform-n12-seed7-k2-m0-r10"; no spaces.
std::string churn_scenario_name(const ChurnSpec& spec);

/// Generate the event schedule for a spec (sorted by round). Targets are
/// drawn over the evolving id space (base nodes + joins so far), so a
/// schedule may legitimately address nodes that died earlier — the engine
/// treats those as counted no-ops (the shrinkability contract).
std::vector<sim::DynEvent> build_churn_schedule(const ChurnSpec& spec,
                                                std::size_t base_n);

/// Duty-cycle parameters used by churn scenarios when spec.duty_cycle is
/// set: sized so a ~10-round smoke schedule sees real sleep/wake/death
/// transitions, not just monotone drain.
sim::DutyCycleConfig churn_duty_config();

}  // namespace thetanet::verify
