#pragma once
// Seeded scenario generation for the conformance fuzzer: every scenario is a
// pure function of its spec (distribution family, n, seed, mobility), so a
// failing case is reproducible from the one line the driver prints. The
// families deliberately span the paper's regimes — uniform (Lemma 2.10's
// model), clustered, jittered grid, civilized / lambda-precision
// (Section 2.3), the adversarial hub ring, the non-civilized exponential
// chain and nested clusters, and fully coincident points (the degenerate
// input the unique-distance assumption excludes — construction must still
// not crash or hang on it).

#include <cstdint>
#include <string>

#include "topology/deployment.h"

namespace thetanet::verify {

enum class Distribution : int {
  kUniform = 0,
  kClustered,
  kGridJitter,
  kCivilized,
  kHubRing,
  kExponentialChain,
  kNestedClusters,
  kCoincident,
};

inline constexpr Distribution kAllDistributions[] = {
    Distribution::kUniform,          Distribution::kClustered,
    Distribution::kGridJitter,       Distribution::kCivilized,
    Distribution::kHubRing,          Distribution::kExponentialChain,
    Distribution::kNestedClusters,   Distribution::kCoincident,
};

const char* distribution_name(Distribution d);

struct ScenarioSpec {
  Distribution dist = Distribution::kUniform;
  std::size_t n = 32;
  std::uint64_t seed = 1;
  double kappa = 2.0;
  double range_scale = 1.0;  ///< multiplies the family's default range
  int mobility_steps = 0;    ///< random-waypoint steps applied after placement
};

/// Stable label, e.g. "uniform-n32-seed7-k2-m0"; used in reports and corpus
/// file names, so it contains no spaces.
std::string scenario_name(const ScenarioSpec& spec);

/// Build the deployment for a spec. Total function: every distribution
/// handles n in {0, 1, 2} (the generators' small-n edge cases are part of
/// the conformance surface).
topo::Deployment build_scenario_deployment(const ScenarioSpec& spec);

}  // namespace thetanet::verify
