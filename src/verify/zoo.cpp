#include "verify/zoo.h"

#include <algorithm>
#include <utility>

#include "core/theta_topology.h"
#include "graph/connectivity.h"
#include "routing/local_route.h"
#include "topology/transmission_graph.h"

namespace thetanet::verify {
namespace {

using graph::NodeId;

std::string edge_str(NodeId u, NodeId v) {
  return "(" + std::to_string(u) + ", " + std::to_string(v) + ")";
}

/// The shared edge-list contract (topology/normalize.h): u < v, strictly
/// increasing lexicographic order (hence duplicate-free), every edge within
/// range and weighted consistently with the deployment.
CheckReport check_structure(const graph::Graph& g, const topo::Deployment& d,
                            const graph::Graph& gstar) {
  CheckReport r;
  r.checker = "structure";
  std::pair<NodeId, NodeId> prev{0, 0};
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const graph::Edge ed = g.edge(e);
    ++r.checks;
    if (ed.u >= ed.v) {
      r.add_violation("zoo/edge-orientation",
                      "edge " + std::to_string(e) + " " +
                          edge_str(ed.u, ed.v) + " is not (min, max)");
      break;
    }
    if (e > 0 && std::pair(ed.u, ed.v) <= prev) {
      r.add_violation("zoo/edge-order",
                      "edge " + std::to_string(e) + " " +
                          edge_str(ed.u, ed.v) +
                          " breaks strict lexicographic order");
      break;
    }
    prev = {ed.u, ed.v};
    if (ed.length > d.max_range) {
      r.add_violation("zoo/edge-range",
                      "edge " + edge_str(ed.u, ed.v) + " has length " +
                          format_double(ed.length) + " > D = " +
                          format_double(d.max_range));
      break;
    }
    if (ed.length != d.distance(ed.u, ed.v) ||
        ed.cost != d.cost_of_length(ed.length)) {
      r.add_violation("zoo/edge-weights",
                      "edge " + edge_str(ed.u, ed.v) +
                          " weights disagree with the deployment");
      break;
    }
    if (gstar.find_edge(ed.u, ed.v) == graph::kInvalidEdge) {
      r.add_violation("zoo/not-subgraph",
                      "edge " + edge_str(ed.u, ed.v) + " is not in G*");
      break;
    }
  }
  return r;
}

CheckReport check_connectivity(const graph::Graph& g,
                               const graph::Graph& gstar, bool complete_only,
                               bool gstar_complete, bool unique_distances) {
  CheckReport r;
  r.checker = complete_only ? "connectivity-complete" : "connectivity";
  if (!unique_distances) {
    r.notes.push_back(
        "skipped: duplicate points void the unique-distance assumption");
    return r;
  }
  if (complete_only && !gstar_complete) {
    r.notes.push_back("skipped: claim requires a complete G*");
    return r;
  }
  ++r.checks;
  const std::size_t comps_g = graph::num_components(gstar);
  const std::size_t comps_n = graph::num_components(g);
  if (comps_n > comps_g)
    r.add_violation("zoo/connectivity",
                    "topology has " + std::to_string(comps_n) +
                        " components, G* has " + std::to_string(comps_g));
  return r;
}

CheckReport check_degree(const graph::Graph& g, double bound,
                         bool unique_distances) {
  CheckReport r;
  r.checker = "degree-bound";
  if (!unique_distances) {
    r.notes.push_back(
        "skipped: duplicate points void the unique-distance assumption");
    return r;
  }
  ++r.checks;
  const std::size_t deg = g.max_degree();
  if (static_cast<double>(deg) > bound)
    r.add_violation("zoo/degree",
                    "max degree " + std::to_string(deg) + " exceeds bound " +
                        format_double(bound));
  return r;
}

/// The compass unit-ratio oracle: over a structure where every angle-0 hop
/// provably stays adjacent to the target (G*), compass routing delivers
/// each adjacent pair with walked length == |st| (up to fp rounding of the
/// per-hop sum). This is the checker --plant-routing-bug must trip.
CheckReport check_compass_adjacent(const graph::Graph& g,
                                   const topo::Deployment& d,
                                   const ZooOptions& opt) {
  CheckReport r;
  r.checker = "compass-adjacent-unit";
  route::LocalRouteOptions lr;
  lr.policy = route::LocalPolicy::kCompass;
  lr.plant_wrong_tie_break = opt.plant_routing_bug;
  const std::size_t budget = std::min<std::size_t>(
      g.num_edges(), std::max<std::size_t>(opt.compass_edges, 1));
  for (graph::EdgeId e = 0; e < budget; ++e) {
    const graph::Edge ed = g.edge(e);
    if (ed.length == 0.0) continue;  // coincident pair: ratio undefined
    for (const auto [s, t] : {std::pair(ed.u, ed.v), std::pair(ed.v, ed.u)}) {
      ++r.checks;
      const route::LocalRouteResult res = route::local_route(g, d, s, t, lr);
      if (!res.delivered) {
        r.add_violation("routing/compass-no-delivery",
                        "compass failed to deliver adjacent pair " +
                            edge_str(s, t) + " (hops walked: " +
                            std::to_string(res.hops) + ")");
        return r;
      }
      const double ratio = res.length / ed.length;
      if (ratio > 1.0 + 1e-9) {
        r.add_violation("routing/compass-ratio",
                        "compass walked ratio " + format_double(ratio) +
                            " on adjacent pair " + edge_str(s, t) +
                            " (exactness oracle: 1)");
        return r;
      }
    }
  }
  return r;
}

}  // namespace

ConformanceReport run_zoo_conformance(const topo::Deployment& d,
                                      const ZooOptions& opt) {
  ConformanceReport rep;
  rep.scenario = "zoo-deployment-n" + std::to_string(d.size());

  if (d.size() < 2) {
    CheckReport trivial;
    trivial.checker = "zoo";
    trivial.checks = 1;
    trivial.notes.push_back("n < 2: every guarantee holds vacuously");
    rep.checks.push_back(std::move(trivial));
    return rep;
  }

  const graph::Graph gstar = topo::build_transmission_graph(d);
  const std::size_t n = d.size();
  const bool gstar_complete = gstar.num_edges() == n * (n - 1) / 2;
  const bool unique_distances = topo::min_max_pairwise_distance(d).first > 0.0;

  const auto wanted = [&](const std::string& name) {
    return opt.only.empty() ||
           std::find(opt.only.begin(), opt.only.end(), name) != opt.only.end();
  };

  std::vector<std::string> audited;
  for (const topo::TopologyBuilder& b : topo::builder_registry()) {
    if (!wanted(b.name)) continue;
    audited.push_back(b.name);
    const graph::Graph g = b.build(d);
    const auto add = [&](CheckReport c) {
      c.checker = b.name + "/" + c.checker;
      rep.checks.push_back(std::move(c));
    };

    add(check_structure(g, d, gstar));
    if (b.guarantees.connected || b.guarantees.connected_complete)
      add(check_connectivity(g, gstar, !b.guarantees.connected,
                             gstar_complete, unique_distances));
    if (b.guarantees.degree_bound > 0.0)
      add(check_degree(g, b.guarantees.degree_bound, unique_distances));
    if (b.guarantees.constant_energy_stretch) {
      if (!unique_distances) {
        CheckReport s;
        s.checker = "energy-stretch";
        s.notes.push_back(
            "skipped: duplicate points void the unique-distance assumption");
        add(std::move(s));
      } else {
        add(check_energy_stretch(g, d, gstar, opt.checks.max_energy_stretch));
      }
    }
    if (b.guarantees.theta_alg) {
      // The paper's N: audit the full Lemma 2.1 battery against a fresh
      // ThetaTopology, and pin the registry build to its graph exactly
      // (phase 2 lives in the topology layer; this equivalence is what
      // keeps the two call sites one implementation).
      const core::ThetaTopology tt(d, opt.checks.theta);
      add(check_theta_invariants(g, d, opt.checks.theta, gstar, &tt,
                                 unique_distances));
      CheckReport eq;
      eq.checker = "registry-equivalence";
      ++eq.checks;
      bool same = g.num_edges() == tt.graph().num_edges();
      if (same)
        for (graph::EdgeId e = 0; e < g.num_edges(); ++e)
          if (g.edge(e).u != tt.graph().edge(e).u ||
              g.edge(e).v != tt.graph().edge(e).v) {
            same = false;
            break;
          }
      if (!same)
        eq.add_violation("zoo/registry-equivalence",
                         "registry theta build differs from ThetaTopology (" +
                             std::to_string(g.num_edges()) + " vs " +
                             std::to_string(tt.graph().num_edges()) +
                             " edges)");
      add(std::move(eq));
    }
    if (b.guarantees.compass_adjacent_unit)
      add(check_compass_adjacent(g, d, opt));
    if (b.name == "theta4") {
      CheckReport t4;
      t4.checker = "routing-ratio-17x";
      if (!gstar_complete || !unique_distances) {
        t4.notes.push_back(
            "skipped: the 17x bound is proven for complete point sets");
      } else {
        ++t4.checks;
        route::LocalRouteOptions lr;
        lr.policy = route::LocalPolicy::kTheta;
        lr.scheme = topo::theta4_scheme();
        const route::RoutingRatioStats st = route::measure_routing_ratio(
            g, d, lr, opt.routing_pairs, opt.routing_seed);
        if (st.delivered < st.pairs)
          t4.add_violation("routing/theta4-delivery",
                           "theta routing delivered " +
                               std::to_string(st.delivered) + "/" +
                               std::to_string(st.pairs) +
                               " pairs on a complete instance");
        else if (st.max_ratio > opt.theta4_routing_ratio_bound)
          t4.add_violation("routing/theta4-ratio",
                           "empirical routing ratio " +
                               format_double(st.max_ratio) + " exceeds " +
                               format_double(opt.theta4_routing_ratio_bound));
        t4.notes.push_back("max ratio " + format_double(st.max_ratio) +
                           " over " + std::to_string(st.delivered) +
                           " delivered pairs");
      }
      add(std::move(t4));
    }
  }

  // Coverage: every requested builder was audited; every registered builder
  // was audited unless explicitly filtered out. A silently skipped
  // competitor is a harness bug, and it fails here, loudly.
  CheckReport cov;
  cov.checker = "zoo/coverage";
  for (const std::string& name : opt.only) {
    ++cov.checks;
    if (std::find(audited.begin(), audited.end(), name) == audited.end())
      cov.add_violation("zoo/unknown-builder",
                        "requested builder '" + name +
                            "' is not in the registry (" +
                            topo::builder_names() + ")");
  }
  if (opt.only.empty()) {
    for (const topo::TopologyBuilder& b : topo::builder_registry()) {
      ++cov.checks;
      if (std::find(audited.begin(), audited.end(), b.name) == audited.end())
        cov.add_violation("zoo/not-audited", "registered builder '" + b.name +
                                                 "' was silently skipped");
    }
  }
  cov.notes.push_back("audited " + std::to_string(audited.size()) +
                      " builders");
  rep.checks.push_back(std::move(cov));
  return rep;
}

ShrinkResult shrink_zoo_deployment(const topo::Deployment& failing,
                                   const ZooOptions& opt,
                                   std::size_t max_evaluations) {
  ShrinkResult res;
  res.reproducer = failing;
  res.report = run_zoo_conformance(failing, opt);
  res.evaluations = 1;
  TN_ASSERT_MSG(!res.report.pass(),
                "shrink_zoo_deployment() needs a failing instance to shrink");

  // Same greedy chunked ddmin as shrink_deployment, over the zoo run.
  std::size_t chunk = std::max<std::size_t>(1, res.reproducer.size() / 2);
  while (chunk >= 1) {
    bool removed_any = false;
    std::size_t begin = 0;
    while (begin < res.reproducer.size()) {
      if (res.evaluations >= max_evaluations) return res;
      const std::size_t end = std::min(begin + chunk, res.reproducer.size());
      if (end - begin == res.reproducer.size()) break;  // never empty it
      topo::Deployment candidate;
      candidate.max_range = res.reproducer.max_range;
      candidate.kappa = res.reproducer.kappa;
      candidate.positions.reserve(res.reproducer.size() - (end - begin));
      for (std::size_t i = 0; i < res.reproducer.size(); ++i)
        if (i < begin || i >= end)
          candidate.positions.push_back(res.reproducer.positions[i]);
      ConformanceReport r = run_zoo_conformance(candidate, opt);
      ++res.evaluations;
      if (!r.pass()) {
        res.reproducer = std::move(candidate);
        res.report = std::move(r);
        removed_any = true;
        // keep `begin`: the next block slid into this position
      } else {
        begin = end;
      }
    }
    if (chunk == 1 && !removed_any) break;
    chunk = removed_any ? chunk : chunk / 2;
  }
  return res;
}

}  // namespace thetanet::verify
