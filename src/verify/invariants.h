#pragma once
// One executable checker per paper guarantee. Each takes a concrete
// instance (topology + deployment) and returns a structured CheckReport;
// none of them asserts or aborts, so they are safe to run inside the fuzz
// driver, inside gtest, and on deliberately broken (mutated) topologies.
//
//   checker                     paper claim
//   ------------------------    -----------------------------------------
//   check_theta_invariants      Lemma 2.1  (connectivity, degree <= 4*pi/theta,
//                               N subset of G*, phase-2 admission structure)
//   check_energy_stretch        Theorem 2.2 (O(1) energy-stretch, kappa sweep)
//   check_replacement_reuse     Lemma 2.9  (theta-path replacement, <= 6 reuse)
//   check_interference_growth   Lemma 2.10 (I(N) = O(log n) on uniform sweeps)
//   check_router_bounds         Section 3  ((T,gamma)-balancing queue bounds)

#include <cstdint>
#include <span>

#include "core/balancing_router.h"
#include "core/theta_topology.h"
#include "interference/model.h"
#include "routing/adversary.h"
#include "sim/scenarios.h"
#include "verify/report.h"

namespace thetanet::verify {

/// Default ceiling for the empirical energy-stretch constant of Theorem 2.2
/// across arbitrary distributions and kappa in {2,3,4} (the theorem proves
/// O(1); existing suites observe < 6 at theta <= pi/6).
inline constexpr double kDefaultEnergyStretchBound = 8.0;

/// Lemma 2.9's proven constant.
inline constexpr std::uint32_t kDefaultReplacementReuseBound = 6;

/// Lemma 2.1 + structural sanity. `n` is the (possibly mutated) topology to
/// audit against the deployment and transmission graph. When `tt` is
/// non-null (an unmutated ThetaTopology whose graph() produced `n`), the
/// phase-2 admission structure is audited too: every admitted edge is
/// materialized, admitted nodes lie in the right sector and selected their
/// admitter in phase 1, and every N edge was admitted by at least one side.
/// Pass assume_unique_distances = false for inputs with duplicate points:
/// Lemma 2.1's connectivity claim presupposes unique pairwise distances and
/// is skipped (with a note) on degenerate instances.
CheckReport check_theta_invariants(const graph::Graph& n,
                                   const topo::Deployment& d, double theta,
                                   const graph::Graph& gstar,
                                   const core::ThetaTopology* tt = nullptr,
                                   bool assume_unique_distances = true);

/// Theorem 2.2: for each kappa in {2,3,4} recost both graphs with
/// |uv|^kappa and verify edge-stretch <= max_stretch (an upper bound on the
/// pairwise energy-stretch by the decomposition lemma). Also flags a
/// disconnected pair (a base edge whose endpoints H cannot join), which is a
/// Lemma 2.1 failure surfacing through the stretch oracle. Base edges of
/// zero weight (coincident points) are skipped and noted.
CheckReport check_energy_stretch(const graph::Graph& n,
                                 const topo::Deployment& d,
                                 const graph::Graph& gstar,
                                 double max_stretch = kDefaultEnergyStretchBound);

/// Lemma 2.9: build a greedy maximal non-interfering subset T of G*'s edges
/// under model `m`, replace each by its theta-path, and verify that (a)
/// every path is a connected u..v walk over N edges and (b) no N edge is
/// shared by more than `max_reuse` replacement paths. Requires the
/// unique-distance precondition; callers should skip degenerate inputs
/// (duplicate points) — see run_conformance.
CheckReport check_replacement_reuse(
    const core::ThetaTopology& tt, const graph::Graph& gstar,
    const interf::InterferenceModel& m,
    std::uint32_t max_reuse = kDefaultReplacementReuseBound);

/// One point of an n-sweep for Lemma 2.10.
struct InterferenceSample {
  std::size_t n = 0;                 ///< deployment size
  std::uint32_t interference = 0;    ///< I(N) measured at that n
};

/// Lemma 2.10: every sample must satisfy I <= max_per_log_n * log2(n), and
/// the sweep's growth from first to last sample must stay within
/// growth_slack times the growth of log2(n) — a super-logarithmic I(n)
/// violates both long before it reaches polynomial scaling.
CheckReport check_interference_growth(std::span<const InterferenceSample> samples,
                                      double max_per_log_n,
                                      double growth_slack = 3.0);

/// Section 3 (T,gamma)-balancing invariants for a finished run:
///   * packet conservation (offered = accepted + injection drops;
///     accepted = delivered + transit drops + leftover),
///   * peak buffer height <= H (the hard BufferBank cap),
///   * deliveries <= certified OPT deliveries,
///   * no in-transit deletions when T >= B + 2*(delta-1) (Theorem 3.1's
///     "only newly injected packets are ever deleted" regime),
///   * optionally (min_throughput_ratio > 0) a throughput floor, and
///   * expect_no_collisions for MAC-given runs (Scenario 1 has no medium).
struct RouterBoundsParams {
  double theorem31_delta = 1.0;      ///< the delta used to derive T
  double min_throughput_ratio = 0.0; ///< 0 disables the asymptotic check
  bool expect_no_collisions = false;
};

CheckReport check_router_bounds(const route::AdversaryTrace& trace,
                                const core::BalancingParams& params,
                                const sim::ScenarioResult& result,
                                const RouterBoundsParams& bounds = {});

}  // namespace thetanet::verify
