#pragma once
// The per-instance conformance run (all paper-guarantee checkers over one
// deployment), the temporal conformance run (the same checkers re-applied
// after every event batch of a churn schedule driven through the
// incremental ThetaMaintainer), the greedy shrinkers that minimize a
// failing instance — over the node set and, for temporal cases, over the
// event sequence as a second ddmin dimension — and the corpus format that
// persists shrunk reproducers as committed regression cases
// (tests/conformance/corpus/).

#include <functional>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "routing/adversary.h"
#include "sim/dynamics.h"
#include "topology/deployment.h"
#include "verify/invariants.h"
#include "verify/report.h"

namespace thetanet::verify {

/// Test-only hook: mutates a copy of the constructed topology N before the
/// checkers see it. Used to inject deliberate bugs (shrinker self-tests,
/// checker unit tests); production runs pass none.
using TopologyMutator =
    std::function<void(graph::Graph&, const topo::Deployment&)>;

struct ConformanceOptions {
  double theta = 0.3490658503988659;  ///< pi/9
  double delta = 1.0;                 ///< interference guard zone
  double max_energy_stretch = kDefaultEnergyStretchBound;
  std::uint32_t max_replacement_reuse = kDefaultReplacementReuseBound;

  bool run_stretch = true;
  bool run_replacement = true;
  bool run_router = true;

  // Router sub-run (a small certified trace over N).
  std::uint64_t trace_seed = 1;
  route::Time trace_horizon = 48;
  route::Time trace_drain = 48;
  double router_eps = 0.25;
};

/// Run every applicable checker on the deployment: builds G* and ThetaALG's
/// N, audits Lemma 2.1 / Theorem 2.2 / Lemma 2.9, then drives a certified
/// (T,gamma)-balancing run over N and audits the Section 3 bounds.
/// Degenerate inputs are handled, not rejected: n < 2 trivially passes, and
/// duplicate points (unique-distance violation) skip the replacement-path
/// checker with a note. `mutator`, when set, corrupts the audited copy of N
/// (never the ThetaTopology used to derive replacement paths).
ConformanceReport run_conformance(const topo::Deployment& d,
                                  const ConformanceOptions& opt,
                                  const TopologyMutator& mutator = {});

/// Greedy node-removal bisection (delta-debugging style): repeatedly delete
/// the largest chunk of nodes that keeps run_conformance failing, down to
/// single nodes. Returns the minimal reproducer together with its failing
/// report and the number of conformance evaluations spent.
struct ShrinkResult {
  topo::Deployment reproducer;
  ConformanceReport report;
  std::size_t evaluations = 0;
};

ShrinkResult shrink_deployment(const topo::Deployment& failing,
                               const ConformanceOptions& opt,
                               const TopologyMutator& mutator = {},
                               std::size_t max_evaluations = 2000);

// ---------------------------------------------------------------------------
// Temporal conformance: paper guarantees under churn. The maintained
// overlay must stay exactly ThetaALG's N of the *surviving* node set after
// every event batch (the §2.4 self-maintenance claim), and that N must keep
// satisfying Lemma 2.1 / Theorem 2.2 / Lemma 2.9 throughout the schedule.

struct ChurnOptions {
  ConformanceOptions checks;     ///< thresholds shared with the static run
  sim::DynamicsConfig dynamics;  ///< duty cycle, het ranges, planted bug
  std::uint64_t dynamics_seed = 1;
  std::uint32_t rounds = 0;      ///< 0: derived from the schedule
  std::uint32_t check_every = 1; ///< audit cadence in rounds (final always)
  /// The router sub-run costs more than every other checker combined, so
  /// temporal runs drive it once, over the final surviving topology, rather
  /// than per batch (checks.run_router gates it entirely).
  bool router_on_final_only = true;
};

/// check_maintenance_conformance: audit one maintainer state. (a) The
/// maintained overlay is edge-identical (under the compact-id mapping) to a
/// fresh ThetaTopology of the active sub-deployment — Lemma 2.1/2.9 rest on
/// N being *exactly* ThetaALG's output for the current node set; (b) the
/// dynamics energy ledger conserves (granted + harvested = drained +
/// remaining, exact u64). Used per batch by run_churn_conformance.
CheckReport check_maintenance_conformance(const core::ThetaMaintainer& m,
                                          const sim::DynamicsEngine* engine);

/// Drive the schedule through a fresh ThetaMaintainer + DynamicsEngine and
/// re-run the checkers after every check_every-th event batch (and after
/// the final one): check_maintenance_conformance plus the full static
/// battery of run_conformance over the surviving nodes, with the *audited*
/// topology replaced by the maintained one — so a maintenance bug surfaces
/// both as an equivalence diff and as concrete Lemma/Theorem violations.
/// Check names are prefixed "r<round>/" so reports stay deterministic and
/// self-describing.
ConformanceReport run_churn_conformance(const topo::Deployment& d0,
                                        std::span<const sim::DynEvent> events,
                                        const ChurnOptions& opt);

/// ddmin over both dimensions of a failing temporal case: alternate greedy
/// chunked removal over the event list and over the node set until neither
/// shrinks further. Node removal never invalidates the schedule — events
/// addressing dropped ids become counted no-ops by the engine's contract.
struct ChurnShrinkResult {
  topo::Deployment reproducer;
  std::vector<sim::DynEvent> events;
  ConformanceReport report;
  std::size_t evaluations = 0;
};

ChurnShrinkResult shrink_churn(const topo::Deployment& failing,
                               std::span<const sim::DynEvent> events,
                               const ChurnOptions& opt,
                               std::size_t max_evaluations = 4000);

/// A committed regression case: the shrunk deployment plus everything needed
/// to re-run the checkers that failed. Static cases serialize as
///
///   conformance v1 <name> <seed>
///   theta <theta> delta <delta>
///   deployment v1 <n> <max_range> <kappa>
///   <x> <y> ...
///
/// Temporal (churn) cases — any case with a non-empty event list — bump the
/// version and append the schedule:
///
///   conformance v2 <name> <seed>
///   theta <theta> delta <delta>
///   dynamics seed <dseed> rounds <rounds>
///   deployment v1 <n> <max_range> <kappa>
///   <x> <y> ...
///   events v1 <k>
///   <round> <kind> <node> <x> <y> <radius> ...
///
/// (<kind> is the dyn_event_kind_name token; replay drives the schedule
/// through run_churn_conformance with duty cycling off.) Loaders accept
/// both versions; savers emit v1 for event-free cases so the existing
/// corpus stays byte-stable.
struct CorpusCase {
  std::string name;        ///< scenario label (no spaces)
  std::uint64_t seed = 0;  ///< originating fuzz seed, for provenance
  double theta = 0.3490658503988659;
  double delta = 1.0;
  topo::Deployment deployment;
  std::vector<sim::DynEvent> events;  ///< non-empty: a temporal case
  std::uint64_t dynamics_seed = 1;
  std::uint32_t rounds = 0;  ///< schedule rounds (0: derived from events)
};

void save_corpus_case(std::ostream& os, const CorpusCase& c);
bool save_corpus_case(const std::string& path, const CorpusCase& c);
std::optional<CorpusCase> load_corpus_case(std::istream& is);
std::optional<CorpusCase> load_corpus_case(const std::string& path);

}  // namespace thetanet::verify
