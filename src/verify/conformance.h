#pragma once
// The per-instance conformance run (all paper-guarantee checkers over one
// deployment), the greedy node-removal shrinker that minimizes a failing
// instance, and the corpus format that persists shrunk reproducers as
// committed regression cases (tests/conformance/corpus/).

#include <functional>
#include <iosfwd>
#include <optional>
#include <string>

#include "routing/adversary.h"
#include "topology/deployment.h"
#include "verify/invariants.h"
#include "verify/report.h"

namespace thetanet::verify {

/// Test-only hook: mutates a copy of the constructed topology N before the
/// checkers see it. Used to inject deliberate bugs (shrinker self-tests,
/// checker unit tests); production runs pass none.
using TopologyMutator =
    std::function<void(graph::Graph&, const topo::Deployment&)>;

struct ConformanceOptions {
  double theta = 0.3490658503988659;  ///< pi/9
  double delta = 1.0;                 ///< interference guard zone
  double max_energy_stretch = kDefaultEnergyStretchBound;
  std::uint32_t max_replacement_reuse = kDefaultReplacementReuseBound;

  bool run_stretch = true;
  bool run_replacement = true;
  bool run_router = true;

  // Router sub-run (a small certified trace over N).
  std::uint64_t trace_seed = 1;
  route::Time trace_horizon = 48;
  route::Time trace_drain = 48;
  double router_eps = 0.25;
};

/// Run every applicable checker on the deployment: builds G* and ThetaALG's
/// N, audits Lemma 2.1 / Theorem 2.2 / Lemma 2.9, then drives a certified
/// (T,gamma)-balancing run over N and audits the Section 3 bounds.
/// Degenerate inputs are handled, not rejected: n < 2 trivially passes, and
/// duplicate points (unique-distance violation) skip the replacement-path
/// checker with a note. `mutator`, when set, corrupts the audited copy of N
/// (never the ThetaTopology used to derive replacement paths).
ConformanceReport run_conformance(const topo::Deployment& d,
                                  const ConformanceOptions& opt,
                                  const TopologyMutator& mutator = {});

/// Greedy node-removal bisection (delta-debugging style): repeatedly delete
/// the largest chunk of nodes that keeps run_conformance failing, down to
/// single nodes. Returns the minimal reproducer together with its failing
/// report and the number of conformance evaluations spent.
struct ShrinkResult {
  topo::Deployment reproducer;
  ConformanceReport report;
  std::size_t evaluations = 0;
};

ShrinkResult shrink_deployment(const topo::Deployment& failing,
                               const ConformanceOptions& opt,
                               const TopologyMutator& mutator = {},
                               std::size_t max_evaluations = 2000);

/// A committed regression case: the shrunk deployment plus everything needed
/// to re-run the checkers that failed. Serialized as
///
///   conformance v1 <name> <seed>
///   theta <theta> delta <delta>
///   deployment v1 <n> <max_range> <kappa>
///   <x> <y> ...
struct CorpusCase {
  std::string name;        ///< scenario label (no spaces)
  std::uint64_t seed = 0;  ///< originating fuzz seed, for provenance
  double theta = 0.3490658503988659;
  double delta = 1.0;
  topo::Deployment deployment;
};

void save_corpus_case(std::ostream& os, const CorpusCase& c);
bool save_corpus_case(const std::string& path, const CorpusCase& c);
std::optional<CorpusCase> load_corpus_case(std::istream& is);
std::optional<CorpusCase> load_corpus_case(const std::string& path);

}  // namespace thetanet::verify
