#include "verify/scenario.h"

#include <algorithm>
#include <cmath>

#include "geom/bbox.h"
#include "geom/rng.h"
#include "sim/mobility.h"
#include "topology/distributions.h"

namespace thetanet::verify {

const char* distribution_name(Distribution d) {
  switch (d) {
    case Distribution::kUniform:
      return "uniform";
    case Distribution::kClustered:
      return "clustered";
    case Distribution::kGridJitter:
      return "grid_jitter";
    case Distribution::kCivilized:
      return "civilized";
    case Distribution::kHubRing:
      return "hub_ring";
    case Distribution::kExponentialChain:
      return "exp_chain";
    case Distribution::kNestedClusters:
      return "nested_clusters";
    case Distribution::kCoincident:
      return "coincident";
    case Distribution::kCollinearChain:
      return "collinear";
  }
  return "unknown";
}

std::string scenario_name(const ScenarioSpec& spec) {
  return std::string(distribution_name(spec.dist)) + "-n" +
         std::to_string(spec.n) + "-seed" + std::to_string(spec.seed) + "-k" +
         std::to_string(static_cast<int>(spec.kappa)) + "-m" +
         std::to_string(spec.mobility_steps);
}

namespace {

/// The connectivity-threshold radius for n points in the unit square,
/// clamped into a range that keeps tiny and huge n usable.
double connectivity_range(std::size_t n) {
  if (n < 2) return 1.0;
  const double nn = static_cast<double>(n);
  return std::clamp(1.8 * std::sqrt(std::max(1.0, std::log(nn)) / nn), 0.15,
                    1.0);
}

}  // namespace

topo::Deployment build_scenario_deployment(const ScenarioSpec& spec) {
  geom::Rng rng(spec.seed * 0x9e3779b97f4a7c15ULL + spec.seed + 1);
  topo::Deployment d;
  d.kappa = spec.kappa;
  double range = connectivity_range(spec.n);

  switch (spec.dist) {
    case Distribution::kUniform:
      d.positions = topo::uniform_square(spec.n, 1.0, rng);
      break;
    case Distribution::kClustered:
      d.positions = topo::clustered(
          spec.n, std::max<std::size_t>(1, spec.n / 12), 0.04, 1.0, rng);
      topo::perturb(d.positions, 1e-9, rng);
      range *= 1.4;  // skewed occupancy needs slack to connect
      break;
    case Distribution::kGridJitter:
      d.positions = topo::grid_jitter(spec.n, 1.0, 0.02, rng);
      break;
    case Distribution::kCivilized: {
      // min_sep sized so dart throwing has generous slack for any n.
      const double min_sep = std::min(
          0.05, 0.55 / std::sqrt(static_cast<double>(std::max<std::size_t>(
                    spec.n, 1))));
      d.positions = topo::civilized(spec.n, 1.0, min_sep, rng);
      break;
    }
    case Distribution::kHubRing:
      d.positions = topo::hub_ring(spec.n, 0.35, rng);
      range = 0.85;  // hub plus adjacent rim arcs
      break;
    case Distribution::kExponentialChain:
      d.positions = topo::exponential_chain(spec.n, 0.01, 1.15, rng);
      range = 1.0;  // tail gaps exceed any range: G* legitimately splits
      break;
    case Distribution::kNestedClusters:
      d.positions = topo::nested_clusters(spec.n, 3, 4.0, 1.0, rng);
      range = 1.0;  // multi-scale gaps; keep the top split bridgeable
      break;
    case Distribution::kCoincident:
      d.positions.assign(spec.n, {0.5, 0.5});
      range = 1.0;
      break;
    case Distribution::kCollinearChain: {
      // Seeded gaps, identical y: bearings between chain nodes are
      // bit-identical, so compass routing sees *exact* angle ties (the
      // --plant-routing-bug regime). Gap spread keeps pairwise distances
      // unique; range covers a handful of hops in either direction so the
      // buggy farthest-first tie-break has overshoot candidates.
      d.positions.reserve(spec.n);
      double x = 0.0;
      for (std::size_t i = 0; i < spec.n; ++i) {
        d.positions.push_back({x, 0.35});
        x += 0.05 + 0.05 * rng.uniform();
      }
      range = 0.3;
      break;
    }
  }
  d.max_range = range * spec.range_scale;

  if (spec.mobility_steps > 0 && !d.positions.empty()) {
    const geom::BBox arena{{0.0, 0.0}, {1.0, 1.0}};
    sim::RandomWaypoint rw(arena, d.positions.size(), 0.05, 0.25, rng);
    for (int s = 0; s < spec.mobility_steps; ++s) rw.step(0.1, d, rng);
  }
  return d;
}

std::string churn_scenario_name(const ChurnSpec& spec) {
  return "churn-" + scenario_name(spec.base) + "-r" +
         std::to_string(spec.rounds) + (spec.duty_cycle ? "-duty" : "") +
         (spec.regional_weight > 0.0 ? "-reg" : "");
}

std::vector<sim::DynEvent> build_churn_schedule(const ChurnSpec& spec,
                                                std::size_t base_n) {
  // A distinct stream from the placement rng: the schedule must not change
  // when the placement generator's draw count does.
  geom::Rng rng(spec.base.seed * 0x9e3779b97f4a7c15ULL + 0x6a09e667f3bcc909ULL);
  const double weights[] = {spec.join_weight,  spec.leave_weight,
                            spec.crash_weight, spec.sleep_weight,
                            spec.wake_weight,  spec.regional_weight};
  constexpr sim::DynEventKind kinds[] = {
      sim::DynEventKind::kJoin,  sim::DynEventKind::kLeave,
      sim::DynEventKind::kCrash, sim::DynEventKind::kSleep,
      sim::DynEventKind::kWake,  sim::DynEventKind::kRegional};
  double total_weight = 0.0;
  for (const double w : weights) total_weight += w;

  std::vector<sim::DynEvent> out;
  if (total_weight <= 0.0) return out;
  std::size_t ids = base_n;  // evolving id space: base nodes + joins so far
  const auto whole = static_cast<std::uint32_t>(spec.events_per_round);
  const double frac = spec.events_per_round - whole;
  for (std::uint32_t r = 0; r < spec.rounds; ++r) {
    const std::uint32_t count = whole + (rng.bernoulli(frac) ? 1 : 0);
    for (std::uint32_t i = 0; i < count; ++i) {
      double pick = rng.uniform(0.0, total_weight);
      std::size_t k = 0;
      while (k + 1 < std::size(weights) && pick >= weights[k]) {
        pick -= weights[k];
        ++k;
      }
      sim::DynEvent e;
      e.round = r;
      e.kind = kinds[k];
      switch (e.kind) {
        case sim::DynEventKind::kJoin:
          e.pos = {rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)};
          ++ids;
          break;
        case sim::DynEventKind::kRegional:
          e.pos = {rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)};
          e.radius = spec.regional_radius * rng.uniform(0.5, 1.0);
          break;
        default:
          // Target over the whole evolving id space; ids that are dead or
          // in the wrong state by this round are counted no-ops.
          if (ids == 0) continue;
          e.node = static_cast<graph::NodeId>(rng.uniform_index(ids));
          break;
      }
      out.push_back(e);
    }
  }
  return out;  // rounds ascending by construction
}

sim::DutyCycleConfig churn_duty_config() {
  sim::DutyCycleConfig duty;
  duty.initial_battery = 64;
  duty.awake_drain = 9;
  duty.harvest = 16;
  duty.sleep_below = 28;
  duty.wake_above = 56;
  return duty;
}

}  // namespace thetanet::verify
