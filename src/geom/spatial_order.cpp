#include "geom/spatial_order.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "geom/bbox.h"
#include "geom/morton.h"

namespace thetanet::geom {

namespace {

bool parse_env_enabled() {
  const char* s = std::getenv("TN_MORTON");
  if (s == nullptr) return true;
  return !(std::strcmp(s, "0") == 0 || std::strcmp(s, "off") == 0 ||
           std::strcmp(s, "false") == 0);
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> enabled{parse_env_enabled()};
  return enabled;
}

}  // namespace

bool spatial_order_enabled() {
  return enabled_flag().load(std::memory_order_relaxed);
}

void set_spatial_order_enabled(bool enabled) {
  enabled_flag().store(enabled, std::memory_order_relaxed);
}

SpatialOrder::SpatialOrder(std::span<const Vec2> positions) {
  const std::size_t n = positions.size();
  to_orig_.resize(n);
  to_sorted_.resize(n);
  if (spatial_order_enabled() && n > 1) {
    // Sort ids by (Morton key, id): the id tie-break makes the permutation a
    // pure function of the point set, even with lattice collisions
    // (near-coincident points, degenerate extents).
    const BBox box = BBox::of(positions);
    std::vector<std::uint64_t> keys(n);
    for (std::size_t i = 0; i < n; ++i)
      keys[i] = morton_key(positions[i], box);
    for (std::size_t i = 0; i < n; ++i)
      to_orig_[i] = static_cast<std::uint32_t>(i);
    std::sort(to_orig_.begin(), to_orig_.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return keys[a] < keys[b] || (keys[a] == keys[b] && a < b);
              });
    identity_ = std::is_sorted(to_orig_.begin(), to_orig_.end());
  } else {
    for (std::size_t i = 0; i < n; ++i)
      to_orig_[i] = static_cast<std::uint32_t>(i);
    identity_ = true;
  }
  points_.resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    points_[s] = positions[to_orig_[s]];
    to_sorted_[to_orig_[s]] = static_cast<std::uint32_t>(s);
  }
}

}  // namespace thetanet::geom
