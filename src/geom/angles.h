#pragma once
// Angle utilities for sector (cone) arithmetic. ThetaALG (Section 2.1)
// partitions the space around each node into 2*pi/theta sectors; all sector
// bookkeeping in the library goes through these helpers so the half-open
// sector convention [i*theta, (i+1)*theta) is applied consistently.

#include <cmath>
#include <numbers>

#include "common/assert.h"
#include "geom/vec2.h"

namespace thetanet::geom {

inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Normalize an angle into [0, 2*pi).
inline double normalize_angle(double a) {
  a = std::fmod(a, kTwoPi);
  if (a < 0.0) a += kTwoPi;
  // fmod of a tiny negative can round back up to 2*pi exactly.
  if (a >= kTwoPi) a = 0.0;
  return a;
}

/// Polar angle of v in [0, 2*pi); angle of the zero vector is 0.
inline double angle_of(Vec2 v) {
  if (v.x == 0.0 && v.y == 0.0) return 0.0;
  return normalize_angle(std::atan2(v.y, v.x));
}

/// Polar angle of the ray from `from` towards `to`, in [0, 2*pi).
inline double bearing(Vec2 from, Vec2 to) { return angle_of(to - from); }

/// Counter-clockwise angular distance from a to b, in [0, 2*pi).
inline double ccw_delta(double a, double b) { return normalize_angle(b - a); }

/// Unsigned angle between the two bearings, in [0, pi].
inline double angle_between(double a, double b) {
  const double d = ccw_delta(a, b);
  return d <= std::numbers::pi ? d : kTwoPi - d;
}

/// Interior angle at vertex `apex` of triangle (a, apex, b), in [0, pi].
inline double interior_angle(Vec2 apex, Vec2 a, Vec2 b) {
  return angle_between(bearing(apex, a), bearing(apex, b));
}

/// Number of theta-sectors around a node: ceil(2*pi / theta).
/// The paper requires theta <= pi/3, i.e. at least 6 sectors.
inline int sector_count(double theta) {
  TN_ASSERT_MSG(theta > 0.0, "sector angle must be positive");
  const int k = static_cast<int>(std::ceil(kTwoPi / theta - 1e-12));
  TN_DCHECK(k >= 1);
  return k;
}

/// Index of the half-open sector [i*w, (i+1)*w) containing bearing(u, v),
/// where w = 2*pi / sector_count(theta). All nodes use a common axis-aligned
/// frame (the paper's algorithm is frame-agnostic; any fixed frame works).
inline int sector_index(Vec2 u, Vec2 v, double theta) {
  const int k = sector_count(theta);
  const double w = kTwoPi / k;
  int i = static_cast<int>(bearing(u, v) / w);
  if (i >= k) i = k - 1;  // guard against rounding at 2*pi
  return i;
}

/// Half-open angular extent [lo, hi) of sector i at a node, for theta.
struct SectorSpan {
  double lo = 0.0;
  double hi = 0.0;
};

inline SectorSpan sector_span(int i, double theta) {
  const int k = sector_count(theta);
  TN_ASSERT(i >= 0 && i < k);
  const double w = kTwoPi / k;
  return {static_cast<double>(i) * w, static_cast<double>(i + 1) * w};
}

}  // namespace thetanet::geom
