#pragma once
// Geometric predicates. Exact arithmetic is unnecessary at simulation scale;
// we use guarded double precision with explicit tolerances, which is the
// usual trade-off for network-topology workloads (node coordinates are
// random, never adversarially degenerate beyond what the tie-break rules in
// topology/ already handle).

#include <cmath>
#include <optional>

#include "geom/vec2.h"

namespace thetanet::geom {

/// Twice the signed area of triangle (a, b, c); >0 iff counter-clockwise.
constexpr double orient2d(Vec2 a, Vec2 b, Vec2 c) {
  return cross(b - a, c - a);
}

enum class Orientation { kClockwise, kCollinear, kCounterClockwise };

inline Orientation orientation(Vec2 a, Vec2 b, Vec2 c, double eps = 1e-12) {
  const double v = orient2d(a, b, c);
  if (v > eps) return Orientation::kCounterClockwise;
  if (v < -eps) return Orientation::kClockwise;
  return Orientation::kCollinear;
}

/// True iff p lies strictly inside the circumcircle of ccw triangle (a,b,c).
inline bool in_circumcircle(Vec2 a, Vec2 b, Vec2 c, Vec2 p) {
  const Vec2 A = a - p, B = b - p, C = c - p;
  const double det = (norm_sq(A)) * cross(B, C) - (norm_sq(B)) * cross(A, C) +
                     (norm_sq(C)) * cross(A, B);
  return det > 0.0;
}

/// True iff p lies strictly inside the open disk C(center, radius) — the
/// shape of the paper's interference regions (Section 2.4).
inline bool in_open_disk(Vec2 center, double radius, Vec2 p) {
  return dist_sq(center, p) < radius * radius;
}

/// True iff p lies in the closed disk.
inline bool in_closed_disk(Vec2 center, double radius, Vec2 p) {
  return dist_sq(center, p) <= radius * radius;
}

/// Gabriel-graph predicate: w lies in the closed disk with diameter (u, v).
/// The Gabriel graph keeps edge (u,v) iff no other node passes this test.
inline bool in_gabriel_disk(Vec2 u, Vec2 v, Vec2 w) {
  return in_closed_disk(midpoint(u, v), dist(u, v) / 2.0, w);
}

/// Relative-neighbourhood predicate: w is in the lune of (u, v), i.e. closer
/// to both endpoints than they are to each other.
inline bool in_rng_lune(Vec2 u, Vec2 v, Vec2 w) {
  const double d2 = dist_sq(u, v);
  return dist_sq(u, w) < d2 && dist_sq(v, w) < d2;
}

/// Proper intersection of segments (a1, a2) and (b1, b2); returns the
/// intersection point, or nullopt when the segments do not cross (touching
/// endpoints and collinear overlaps count as no crossing — the conservative
/// choice for the face-routing crossing rule, where a grazing contact must
/// not trigger a face change).
inline std::optional<Vec2> segment_intersection(Vec2 a1, Vec2 a2, Vec2 b1,
                                                Vec2 b2) {
  const Vec2 r = a2 - a1;
  const Vec2 s = b2 - b1;
  const double denom = cross(r, s);
  if (denom == 0.0) return std::nullopt;  // parallel or collinear
  const Vec2 d = b1 - a1;
  const double t = cross(d, s) / denom;
  const double u = cross(d, r) / denom;
  if (t <= 0.0 || t >= 1.0 || u <= 0.0 || u >= 1.0) return std::nullopt;
  return a1 + t * r;
}

}  // namespace thetanet::geom
