#include "geom/spatial_grid.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>

#include "common/assert.h"
#include "obs/span.h"

namespace thetanet::geom {

SpatialGrid::SpatialGrid(std::span<const Vec2> points, double cell_size)
    : points_(points), box_(BBox::of(points)), cell_(cell_size) {
  TN_ASSERT_MSG(cell_size > 0.0, "grid cell size must be positive");
  TN_OBS_SPAN("grid.build");
  TN_OBS_COUNT("grid.builds", 1);
  TN_OBS_COUNT("grid.points_indexed", points_.size());
  if (points_.empty()) {
    starts_.assign(2, 0);
    return;
  }
  // Cap the table at O(points) cells: a caller-supplied cell far smaller
  // than the bounding box (edge-length-driven sizing on a degenerate
  // layout) would otherwise allocate width/cell * height/cell entries.
  const auto dims = [&](double cell) {
    const auto nx = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::floor(box_.width() / cell)) + 1);
    const auto ny = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::floor(box_.height() / cell)) + 1);
    return std::pair<std::int64_t, std::int64_t>{nx, ny};
  };
  const std::int64_t max_cells =
      std::max<std::int64_t>(1024, 8 * static_cast<std::int64_t>(points_.size()));
  auto [nx, ny] = dims(cell_);
  while (nx * ny > max_cells) {
    cell_ *= 2.0;
    std::tie(nx, ny) = dims(cell_);
  }
  nx_ = static_cast<std::int32_t>(nx);
  ny_ = static_cast<std::int32_t>(ny);

  const std::size_t ncells =
      static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_);
  std::vector<std::uint32_t> counts(ncells, 0);
  std::vector<std::size_t> home(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const CellCoord c = cell_of(points_[i]);
    home[i] = cell_index(c.cx, c.cy);
    ++counts[home[i]];
  }
  starts_.assign(ncells + 1, 0);
  for (std::size_t c = 0; c < ncells; ++c) starts_[c + 1] = starts_[c] + counts[c];
  ids_.resize(points_.size());
  std::vector<std::uint32_t> cursor(starts_.begin(), starts_.end() - 1);
  for (std::size_t i = 0; i < points_.size(); ++i)
    ids_[cursor[home[i]]++] = static_cast<NodeId>(i);
  // Keep ids within each cell sorted so query output is deterministic.
  for (std::size_t c = 0; c < ncells; ++c)
    std::sort(ids_.begin() + starts_[c], ids_.begin() + starts_[c + 1]);
  // Cell-ordered coordinate copies: scans stream these instead of gathering
  // points_[id] (see the member comment in the header).
  xs_.resize(points_.size());
  ys_.resize(points_.size());
  for (std::size_t k = 0; k < ids_.size(); ++k) {
    xs_[k] = points_[ids_[k]].x;
    ys_[k] = points_[ids_[k]].y;
  }
}

SpatialGrid::CellCoord SpatialGrid::cell_of(Vec2 p) const {
  auto clamp = [](std::int32_t v, std::int32_t hi) {
    return std::clamp<std::int32_t>(v, 0, hi - 1);
  };
  const auto cx = static_cast<std::int32_t>(std::floor((p.x - box_.lo.x) / cell_));
  const auto cy = static_cast<std::int32_t>(std::floor((p.y - box_.lo.y) / cell_));
  return {clamp(cx, nx_), clamp(cy, ny_)};
}

std::size_t SpatialGrid::cell_index(std::int32_t cx, std::int32_t cy) const {
  return static_cast<std::size_t>(cy) * static_cast<std::size_t>(nx_) +
         static_cast<std::size_t>(cx);
}

bool SpatialGrid::for_each_within_until(
    Vec2 center, double radius, const std::function<bool(NodeId)>& visit) const {
  return for_each_within_until(center, radius,
                               [&](NodeId id) { return visit(id); });
}

void SpatialGrid::for_each_within(
    Vec2 center, double radius, const std::function<void(NodeId)>& visit) const {
  for_each_within(center, radius, [&](NodeId id) { visit(id); });
}

std::vector<SpatialGrid::NodeId> SpatialGrid::within(Vec2 center, double radius,
                                                     NodeId exclude) const {
  std::vector<NodeId> out;
  for_each_within(center, radius, [&](NodeId id) {
    if (id != exclude) out.push_back(id);
  });
  std::sort(out.begin(), out.end());
  return out;
}

SpatialGrid::NodeId SpatialGrid::nearest(Vec2 center, NodeId exclude) const {
  if (points_.empty()) return kNone;
  NodeId best = kNone;
  double best_d2 = std::numeric_limits<double>::infinity();
  // Expanding-ring search: examine cells in growing square shells until the
  // best candidate is provably closer than any unexamined shell.
  const CellCoord c0 = cell_of(center);
  const std::int32_t max_span = std::max(nx_, ny_);
  for (std::int32_t span = 0; span <= max_span; ++span) {
    if (best != kNone) {
      const double shell_min = (static_cast<double>(span) - 1.0) * cell_;
      if (shell_min > 0.0 && shell_min * shell_min > best_d2) break;
    }
    const std::int32_t x_lo = std::max(0, c0.cx - span);
    const std::int32_t x_hi = std::min(nx_ - 1, c0.cx + span);
    const std::int32_t y_lo = std::max(0, c0.cy - span);
    const std::int32_t y_hi = std::min(ny_ - 1, c0.cy + span);
    for (std::int32_t cy = y_lo; cy <= y_hi; ++cy) {
      for (std::int32_t cx = x_lo; cx <= x_hi; ++cx) {
        // Only the new shell, not the already-scanned interior.
        if (span > 0 && cx != x_lo && cx != x_hi && cy != y_lo && cy != y_hi)
          continue;
        const std::size_t c = cell_index(cx, cy);
        for (std::uint32_t k = starts_[c]; k < starts_[c + 1]; ++k) {
          const NodeId id = ids_[k];
          if (id == exclude) continue;
          const double d2 = dist_sq({xs_[k], ys_[k]}, center);
          if (d2 < best_d2 || (d2 == best_d2 && id < best)) {
            best_d2 = d2;
            best = id;
          }
        }
      }
    }
  }
  return best;
}

}  // namespace thetanet::geom
