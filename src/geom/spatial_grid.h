#pragma once
// Uniform-grid spatial index over a fixed point set. This is the workhorse
// for local neighbour discovery: transmission-graph construction (all nodes
// within range D), interference-set computation (nodes within (1+Delta)r),
// and Poisson-disk generation. Queries are O(points in the queried disk)
// when the cell size matches the query radius.
//
// The visitor entry points come in two flavours:
//   * header-only templates (`for_each_within(center, r, Visitor&&)` and
//     `for_each_within_until`) — zero-overhead fast path: the visitor is
//     inlined into the cell scan, no std::function construction, no
//     indirect call per point. All hot loops use these (a lambda argument
//     selects the template automatically).
//   * `std::function` overloads with the same names — thin wrappers over
//     the templates kept for ABI-stable callers (out-of-line, defined in
//     spatial_grid.cpp).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <span>
#include <type_traits>
#include <vector>

#include "geom/bbox.h"
#include "geom/vec2.h"
#include "obs/metrics.h"

namespace thetanet::geom {

class SpatialGrid {
 public:
  using NodeId = std::uint32_t;

  /// Build over `points` with the given cell size (typically the dominant
  /// query radius). Points are referenced by index; the caller keeps them
  /// alive for the lifetime of the grid. The cell size is grown as needed
  /// to keep the total cell count O(points): a tiny requested cell over a
  /// wide bounding box (degenerate inputs — one far outlier among
  /// near-coincident nodes) must not allocate an unbounded table.
  SpatialGrid(std::span<const Vec2> points, double cell_size);

  std::size_t size() const { return points_.size(); }

  /// The indexed point with the given id (ids are positions in the input
  /// span). Lets visitors reuse the coordinates the scan just compared
  /// against instead of re-reading the caller's point array.
  Vec2 point(NodeId id) const { return points_[id]; }

  /// Effective cell size — `>= ` the requested one when the cap kicked in.
  double cell_size() const { return cell_; }

  /// Ids of all points p with |p - center| <= radius, optionally excluding
  /// one id (a node never neighbours itself). Sorted ascending.
  std::vector<NodeId> within(Vec2 center, double radius,
                             NodeId exclude = kNone) const;

  /// Visit ids within radius without allocating. Fast path: the visitor is
  /// inlined into the scan, and coordinates come from the cell-ordered
  /// xs_/ys_ copies — a forward stream per cell, no indirection through the
  /// caller's point array. Enumeration order is cell-major (row by row),
  /// ascending id within a cell — callers needing a canonical order sort.
  /// A visitor invocable as `visit(id, d2)` additionally receives the
  /// squared distance the prefilter just computed (same value, same bits,
  /// as dist_sq(point(id), center)); `visit(id, d2, p)` also gets the
  /// point's coordinates (the scan just streamed them — callers that need
  /// them, like the sector classifier, skip a gather from their own point
  /// array). A plain `visit(id)` works unchanged.
  template <typename Visitor>
  void for_each_within(Vec2 center, double radius, Visitor&& visit) const {
    if (points_.empty()) return;
    const double r2 = radius * radius;
    const Extent e = extent_of(center, radius);
    std::uint64_t examined = 0;
    std::uint64_t hits = 0;
    for (std::int32_t cy = e.y_lo; cy <= e.y_hi; ++cy) {
      for (std::int32_t cx = e.x_lo; cx <= e.x_hi; ++cx) {
        const std::size_t c = cell_index(cx, cy);
        // Tally per cell, not per point: every point in the cell gets
        // distance-tested, and keeping the counter out of the inner loop
        // keeps the scan as tight as the uninstrumented one.
        examined += starts_[c + 1] - starts_[c];
        for (std::uint32_t k = starts_[c]; k < starts_[c + 1]; ++k) {
          const Vec2 p{xs_[k], ys_[k]};
          const double d2 = dist_sq(p, center);
          if (d2 <= r2) {
            ++hits;
            if constexpr (std::is_invocable_v<Visitor&, NodeId, double, Vec2>)
              visit(ids_[k], d2, p);
            else if constexpr (std::is_invocable_v<Visitor&, NodeId, double>)
              visit(ids_[k], d2);
            else
              visit(ids_[k]);
          }
        }
      }
    }
    record_scan(e, examined, hits);
  }

  /// Visit ids within `radius` of either center, each exactly once, in a
  /// single scan over the union of the two cell extents. The two disks of
  /// one interference query share most of their area (centers one edge
  /// length apart, radius a small multiple of it); two separate
  /// for_each_within calls would load the shared cells — the bulk of the
  /// scan — twice and force the caller to dedup. Same closed-disk
  /// prefilter and cell-major order as for_each_within. The visitor
  /// receives `(id, d1_sq, d2_sq)` — the squared distances to both
  /// centers the prefilter just computed — so callers refining with a
  /// different predicate (e.g. the open disk) pay no second distance
  /// evaluation.
  template <typename Visitor>
  void for_each_within_two(Vec2 c1, Vec2 c2, double radius,
                           Visitor&& visit) const {
    if (points_.empty()) return;
    const double r2 = radius * radius;
    const Extent e1 = extent_of(c1, radius);
    const Extent e2 = extent_of(c2, radius);
    const Extent e{std::min(e1.x_lo, e2.x_lo), std::max(e1.x_hi, e2.x_hi),
                   std::min(e1.y_lo, e2.y_lo), std::max(e1.y_hi, e2.y_hi)};
    std::uint64_t examined = 0;
    std::uint64_t hits = 0;
    for (std::int32_t cy = e.y_lo; cy <= e.y_hi; ++cy) {
      for (std::int32_t cx = e.x_lo; cx <= e.x_hi; ++cx) {
        const std::size_t c = cell_index(cx, cy);
        examined += starts_[c + 1] - starts_[c];  // per cell, see above
        for (std::uint32_t k = starts_[c]; k < starts_[c + 1]; ++k) {
          const Vec2 p{xs_[k], ys_[k]};
          const double d1 = dist_sq(p, c1);
          const double d2 = dist_sq(p, c2);
          if (d1 <= r2 || d2 <= r2) {
            ++hits;
            visit(ids_[k], d1, d2);
          }
        }
      }
    }
    record_scan(e, examined, hits);
  }

  /// As for_each_within, but the visitor returns false to stop the scan
  /// early (emptiness tests stop at the first witness instead of finishing
  /// the disk). Returns true iff the scan ran to completion.
  template <typename Visitor>
  bool for_each_within_until(Vec2 center, double radius,
                             Visitor&& visit) const {
    if (points_.empty()) return true;
    const double r2 = radius * radius;
    const Extent e = extent_of(center, radius);
    std::uint64_t examined = 0;
    std::uint64_t hits = 0;
    for (std::int32_t cy = e.y_lo; cy <= e.y_hi; ++cy) {
      for (std::int32_t cx = e.x_lo; cx <= e.x_hi; ++cx) {
        const std::size_t c = cell_index(cx, cy);
        for (std::uint32_t k = starts_[c]; k < starts_[c + 1]; ++k) {
          if (dist_sq({xs_[k], ys_[k]}, center) <= r2) {
            ++hits;
            if (!visit(ids_[k])) {
              // Early exit mid-cell: completed cells plus the slice of this
              // one up to and including the witness.
              record_scan(e, examined + (k - starts_[c] + 1), hits);
              return false;
            }
          }
        }
        examined += starts_[c + 1] - starts_[c];
      }
    }
    record_scan(e, examined, hits);
    return true;
  }

  /// ABI-stable wrappers over the templates (indirect call per point; keep
  /// for callers that store visitors as std::function).
  void for_each_within(Vec2 center, double radius,
                       const std::function<void(NodeId)>& visit) const;
  bool for_each_within_until(Vec2 center, double radius,
                             const std::function<bool(NodeId)>& visit) const;

  /// Nearest point to `center` excluding `exclude`; kNone when empty.
  NodeId nearest(Vec2 center, NodeId exclude = kNone) const;

  static constexpr NodeId kNone = static_cast<NodeId>(-1);

 private:
  struct CellCoord {
    std::int32_t cx;
    std::int32_t cy;
  };
  struct Extent {
    std::int32_t x_lo, x_hi, y_lo, y_hi;
  };
  CellCoord cell_of(Vec2 p) const;
  std::size_t cell_index(std::int32_t cx, std::int32_t cy) const;

  Extent extent_of(Vec2 center, double radius) const {
    const auto span = static_cast<std::int32_t>(std::ceil(radius / cell_));
    const CellCoord c0 = cell_of(center);
    return {std::max(0, c0.cx - span), std::min(nx_ - 1, c0.cx + span),
            std::max(0, c0.cy - span), std::min(ny_ - 1, c0.cy + span)};
  }

  // Scan instrumentation: one registry update per *query* (never per
  // point — the local tallies above flush here once) so benchmarks and
  // tests can read over-scan: points_examined / reported >> 1 means the
  // cell size does not match the query radius. Each query's tallies depend
  // only on the query itself (cell-major scan order is fixed), so all four
  // counters are stable across thread counts.
  void record_scan(const Extent& e, std::uint64_t examined,
                   std::uint64_t reported) const {
    if constexpr (obs::kTelemetryCompiled) {
      if (!obs::detail::recording()) return;
      const auto cells = static_cast<std::uint64_t>(e.x_hi - e.x_lo + 1) *
                         static_cast<std::uint64_t>(e.y_hi - e.y_lo + 1);
      TN_OBS_COUNT("grid.queries", 1);
      TN_OBS_COUNT("grid.cells_scanned", cells);
      TN_OBS_COUNT("grid.points_examined", examined);
      TN_OBS_COUNT("grid.reported", reported);
    } else {
      (void)e;
      (void)examined;
      (void)reported;
    }
  }

  std::span<const Vec2> points_;
  BBox box_;
  double cell_ = 1.0;
  std::int32_t nx_ = 1;
  std::int32_t ny_ = 1;
  // CSR layout: ids of points in cell c occupy starts_[c]..starts_[c+1).
  std::vector<std::uint32_t> starts_;
  std::vector<NodeId> ids_;
  // Coordinates in cell order (xs_[k] = points_[ids_[k]].x): the scan's
  // distance tests stream these arrays forward instead of gathering from
  // points_ by id, which is the difference between one cache line per point
  // and one per *pair of doubles* at large n. Bit-identical copies, so
  // distances match the points_-based values exactly.
  std::vector<double> xs_;
  std::vector<double> ys_;
};

}  // namespace thetanet::geom
