#pragma once
// Uniform-grid spatial index over a fixed point set. This is the workhorse
// for local neighbour discovery: transmission-graph construction (all nodes
// within range D), interference-set computation (nodes within (1+Delta)r),
// and Poisson-disk generation. Queries are O(points in the queried disk)
// when the cell size matches the query radius.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "geom/bbox.h"
#include "geom/vec2.h"

namespace thetanet::geom {

class SpatialGrid {
 public:
  using NodeId = std::uint32_t;

  /// Build over `points` with the given cell size (typically the dominant
  /// query radius). Points are referenced by index; the caller keeps them
  /// alive for the lifetime of the grid.
  SpatialGrid(std::span<const Vec2> points, double cell_size);

  std::size_t size() const { return points_.size(); }
  double cell_size() const { return cell_; }

  /// Ids of all points p with |p - center| <= radius, optionally excluding
  /// one id (a node never neighbours itself). Sorted ascending.
  std::vector<NodeId> within(Vec2 center, double radius,
                             NodeId exclude = kNone) const;

  /// Visit ids within radius without allocating.
  void for_each_within(Vec2 center, double radius,
                       const std::function<void(NodeId)>& visit) const;

  /// As for_each_within, but the visitor returns false to stop the scan
  /// early (emptiness tests stop at the first witness instead of finishing
  /// the disk). Returns true iff the scan ran to completion.
  bool for_each_within_until(Vec2 center, double radius,
                             const std::function<bool(NodeId)>& visit) const;

  /// Nearest point to `center` excluding `exclude`; kNone when empty.
  NodeId nearest(Vec2 center, NodeId exclude = kNone) const;

  static constexpr NodeId kNone = static_cast<NodeId>(-1);

 private:
  struct CellCoord {
    std::int32_t cx;
    std::int32_t cy;
  };
  CellCoord cell_of(Vec2 p) const;
  std::size_t cell_index(std::int32_t cx, std::int32_t cy) const;

  std::span<const Vec2> points_;
  BBox box_;
  double cell_ = 1.0;
  std::int32_t nx_ = 1;
  std::int32_t ny_ = 1;
  // CSR layout: ids of points in cell c occupy starts_[c]..starts_[c+1).
  std::vector<std::uint32_t> starts_;
  std::vector<NodeId> ids_;
};

}  // namespace thetanet::geom
