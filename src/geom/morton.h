#pragma once
// Morton (Z-order) keys for 2D points. Sorting a point set by Morton key
// places spatially-near points near each other in memory, which turns the
// SpatialGrid's cell scans into (mostly) forward streams over a few cache
// lines instead of pointer-chasing random rows of the input array — the
// enabling transform for the 10^6-node construction pipeline (see
// geom/spatial_order.h for the id-remap layer that keeps public outputs in
// original-id order).
//
// Keys are derived from coordinates quantized onto a 2^32 x 2^32 lattice
// over a caller-supplied bounding box. Keys only ever decide an internal
// *iteration order*; ties (distinct points in the same lattice cell) are
// broken by original id at the sort, so the permutation is deterministic.

#include <cstdint>

#include "geom/bbox.h"
#include "geom/vec2.h"

namespace thetanet::geom {

/// Spread the 32 bits of `v` so bit i lands at bit 2i of the result.
constexpr std::uint64_t morton_spread(std::uint32_t v) {
  std::uint64_t x = v;
  x = (x | (x << 16)) & 0x0000ffff0000ffffull;
  x = (x | (x << 8)) & 0x00ff00ff00ff00ffull;
  x = (x | (x << 4)) & 0x0f0f0f0f0f0f0f0full;
  x = (x | (x << 2)) & 0x3333333333333333ull;
  x = (x | (x << 1)) & 0x5555555555555555ull;
  return x;
}

/// Interleave: x occupies even bits, y odd bits.
constexpr std::uint64_t morton_interleave(std::uint32_t x, std::uint32_t y) {
  return morton_spread(x) | (morton_spread(y) << 1);
}

/// Quantize `v` (an offset into an extent of the given width) to the 32-bit
/// lattice. Degenerate extents (all points share the coordinate) map to 0.
inline std::uint32_t morton_quantize(double v, double extent) {
  if (!(extent > 0.0)) return 0;
  const double t = (v / extent) * 4294967295.0;
  if (!(t > 0.0)) return 0;
  if (t >= 4294967295.0) return 4294967295u;
  return static_cast<std::uint32_t>(t);
}

/// Z-order key of `p` relative to `box` (which must contain it).
inline std::uint64_t morton_key(Vec2 p, const BBox& box) {
  const std::uint32_t qx = morton_quantize(p.x - box.lo.x, box.width());
  const std::uint32_t qy = morton_quantize(p.y - box.lo.y, box.height());
  return morton_interleave(qx, qy);
}

}  // namespace thetanet::geom
