#pragma once
// Honeycomb subdivision of the plane (Figure 5 of the paper). The honeycomb
// algorithm of Section 3.4 partitions the 2-D space into regular hexagons of
// side length 3 + 2*Delta (diameter 2*(3 + 2*Delta)) and assigns each
// sender-receiver pair to the hexagon containing the sender. We use
// pointy-top hexagons in axial coordinates with exact cube rounding.

#include <cstdint>
#include <functional>

#include "geom/vec2.h"

namespace thetanet::geom {

/// Axial coordinate of one hexagonal cell.
struct HexCell {
  std::int32_t q = 0;
  std::int32_t r = 0;
  friend constexpr bool operator==(HexCell, HexCell) = default;
  friend constexpr auto operator<=>(HexCell, HexCell) = default;
};

struct HexCellHash {
  std::size_t operator()(HexCell c) const {
    const std::uint64_t k =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.q)) << 32) |
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.r));
    // splitmix64 finalizer
    std::uint64_t z = k + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};

class HexTiling {
 public:
  /// `side` is the hexagon side length (= circumradius = centre-to-corner).
  explicit HexTiling(double side);

  double side() const { return side_; }
  /// Hexagon diameter (corner to opposite corner) = 2 * side.
  double diameter() const { return 2.0 * side_; }
  /// Inradius (centre to edge midpoint) = side * sqrt(3)/2.
  double inradius() const;

  /// The cell containing point p (boundary ties resolved by cube rounding,
  /// deterministically).
  HexCell cell_of(Vec2 p) const;

  /// Centre of a cell.
  Vec2 center(HexCell c) const;

  /// The six neighbouring cells, in fixed ccw order.
  static void for_each_neighbor(HexCell c,
                                const std::function<void(HexCell)>& visit);

  /// Upper bound on the distance between any two points in the same cell.
  double max_intra_cell_distance() const { return diameter(); }

 private:
  double side_;
};

}  // namespace thetanet::geom
