#include "geom/kdtree.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/assert.h"

namespace thetanet::geom {

KdTree::KdTree(std::span<const Vec2> points)
    : points_(points.begin(), points.end()) {
  if (points_.empty()) return;
  std::vector<NodeId> ids(points_.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<NodeId>(i);
  nodes_.reserve(points_.size());
  root_ = build(ids, 0);
}

std::int32_t KdTree::build(std::span<NodeId> ids, int depth) {
  if (ids.empty()) return -1;
  const std::uint8_t axis = static_cast<std::uint8_t>(depth % 2);
  const std::size_t mid = ids.size() / 2;
  std::nth_element(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(mid),
                   ids.end(), [&](NodeId a, NodeId b) {
                     const double ka = axis == 0 ? points_[a].x : points_[a].y;
                     const double kb = axis == 0 ? points_[b].x : points_[b].y;
                     return ka < kb || (ka == kb && a < b);
                   });
  const std::int32_t self = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back({ids[mid], -1, -1, axis});
  const std::int32_t left = build(ids.subspan(0, mid), depth + 1);
  const std::int32_t right = build(ids.subspan(mid + 1), depth + 1);
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

template <typename Visit>
void KdTree::search(std::int32_t node, Vec2 query, double radius_sq,
                    const Visit& visit) const {
  if (node < 0) return;
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  const Vec2 p = points_[n.id];
  if (dist_sq(p, query) <= radius_sq) visit(n.id);
  const double delta = n.axis == 0 ? query.x - p.x : query.y - p.y;
  const std::int32_t near = delta < 0 ? n.left : n.right;
  const std::int32_t far = delta < 0 ? n.right : n.left;
  search(near, query, radius_sq, visit);
  if (delta * delta <= radius_sq) search(far, query, radius_sq, visit);
}

KdTree::NodeId KdTree::nearest(Vec2 query, NodeId exclude) const {
  const auto knn = k_nearest(query, 1, exclude);
  return knn.empty() ? kNone : knn.front();
}

std::vector<KdTree::NodeId> KdTree::k_nearest(Vec2 query, std::size_t k,
                                              NodeId exclude) const {
  std::vector<NodeId> out;
  if (k == 0 || points_.empty()) return out;
  // Max-heap of the best k candidates found so far, keyed by (dist, id) so
  // that ties resolve deterministically towards the smaller id.
  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry> heap;

  // Branch-and-bound descent.
  auto descend = [&](auto&& self, std::int32_t node) -> void {
    if (node < 0) return;
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    const Vec2 p = points_[n.id];
    if (n.id != exclude) {
      const double d2 = dist_sq(p, query);
      if (heap.size() < k) {
        heap.emplace(d2, n.id);
      } else if (d2 < heap.top().first ||
                 (d2 == heap.top().first && n.id < heap.top().second)) {
        heap.pop();
        heap.emplace(d2, n.id);
      }
    }
    const double delta = n.axis == 0 ? query.x - p.x : query.y - p.y;
    const std::int32_t near = delta < 0 ? n.left : n.right;
    const std::int32_t far = delta < 0 ? n.right : n.left;
    self(self, near);
    const double bound =
        heap.size() < k ? std::numeric_limits<double>::infinity() : heap.top().first;
    if (delta * delta <= bound) self(self, far);
  };
  descend(descend, root_);

  std::vector<Entry> entries;
  entries.reserve(heap.size());
  while (!heap.empty()) {
    entries.push_back(heap.top());
    heap.pop();
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.first < b.first || (a.first == b.first && a.second < b.second);
  });
  out.reserve(entries.size());
  for (const auto& [d2, id] : entries) out.push_back(id);
  return out;
}

std::vector<KdTree::NodeId> KdTree::within(Vec2 query, double radius,
                                           NodeId exclude) const {
  std::vector<NodeId> out;
  search(root_, query, radius * radius, [&](NodeId id) {
    if (id != exclude) out.push_back(id);
  });
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace thetanet::geom
