#include "geom/hex_tiling.h"

#include <array>
#include <cmath>

#include "common/assert.h"

namespace thetanet::geom {

namespace {
constexpr double kSqrt3 = 1.7320508075688772;
}

HexTiling::HexTiling(double side) : side_(side) {
  TN_ASSERT_MSG(side > 0.0, "hexagon side length must be positive");
}

double HexTiling::inradius() const { return side_ * kSqrt3 / 2.0; }

HexCell HexTiling::cell_of(Vec2 p) const {
  // Pointy-top axial coordinates (Red Blob Games convention).
  const double qf = (kSqrt3 / 3.0 * p.x - 1.0 / 3.0 * p.y) / side_;
  const double rf = (2.0 / 3.0 * p.y) / side_;
  // Cube rounding: round (q, r, s) with q + r + s = 0 and fix the component
  // with the largest rounding error.
  const double sf = -qf - rf;
  double q = std::round(qf), r = std::round(rf), s = std::round(sf);
  const double dq = std::abs(q - qf), dr = std::abs(r - rf), ds = std::abs(s - sf);
  if (dq > dr && dq > ds) {
    q = -r - s;
  } else if (dr > ds) {
    r = -q - s;
  }
  return {static_cast<std::int32_t>(q), static_cast<std::int32_t>(r)};
}

Vec2 HexTiling::center(HexCell c) const {
  const double x = side_ * kSqrt3 * (static_cast<double>(c.q) +
                                     static_cast<double>(c.r) / 2.0);
  const double y = side_ * 1.5 * static_cast<double>(c.r);
  return {x, y};
}

void HexTiling::for_each_neighbor(HexCell c,
                                  const std::function<void(HexCell)>& visit) {
  static constexpr std::array<std::array<std::int32_t, 2>, 6> kDirs = {
      {{1, 0}, {1, -1}, {0, -1}, {-1, 0}, {-1, 1}, {0, 1}}};
  for (const auto& d : kDirs) visit({c.q + d[0], c.r + d[1]});
}

}  // namespace thetanet::geom
