#pragma once
// Delaunay triangulation via Bowyer–Watson. Needed for the
// restricted-Delaunay baseline topology (Gao et al. [21] in the paper's
// related work): Delaunay edges no longer than the transmission range form a
// spanner, and we compare ThetaALG's topology against it in bench E10.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "geom/vec2.h"

namespace thetanet::geom {

/// Undirected Delaunay edge set over the input points, as (min_id, max_id)
/// pairs sorted lexicographically. Collinear/degenerate inputs are handled
/// by the in-circumcircle tolerance; duplicate points must not occur.
std::vector<std::pair<std::uint32_t, std::uint32_t>> delaunay_edges(
    std::span<const Vec2> points);

}  // namespace thetanet::geom
