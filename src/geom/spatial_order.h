#pragma once
// Morton-sorted view of a point set plus the id-remap layer. Construction
// kernels iterate nodes (and build their SpatialGrid) in this order so that
// neighbouring nodes — which a grid scan visits together — are adjacent in
// memory; every *output* (edges, sector tables, checksums, telemetry) is
// produced under original ids, so the reorder is invisible outside the
// kernel:
//
//   SpatialOrder ord(d.positions);
//   geom::SpatialGrid grid(ord.points(), r);   // grid over sorted points
//   ... iterate sorted index s, map ord.to_orig(s) for ties & outputs ...
//
// Determinism contract: the permutation is a pure function of the point set
// (Morton key, then original id on lattice ties) — independent of thread
// count. Coordinates are *copied bit-identically*, so any arithmetic a
// kernel performs on sorted-order points matches the original-order value
// exactly, and outputs canonicalized to original-id order are bit-identical
// with the ordering ON or OFF (tests/topology/spatial_order_test.cpp holds
// this property across TN_NUM_THREADS and the TN_MORTON toggle).
//
// TN_MORTON=0 (or set_spatial_order_enabled(false)) disables the reorder:
// the permutation degenerates to the identity and kernels behave exactly as
// the pre-reorder layout, which is the baseline the property tests compare
// against.

#include <cstdint>
#include <span>
#include <vector>

#include "geom/vec2.h"

namespace thetanet::geom {

/// Process-wide toggle, initialized from TN_MORTON (default on; "0", "off",
/// or "false" disable). Not thread-safe against concurrent kernel launches —
/// flip it between constructions, as the tests do.
bool spatial_order_enabled();
void set_spatial_order_enabled(bool enabled);

class SpatialOrder {
 public:
  /// Build the Morton permutation over `positions` (identity permutation
  /// when the toggle is off). Copies the coordinates into sorted order; the
  /// source span is not referenced afterwards.
  explicit SpatialOrder(std::span<const Vec2> positions);

  std::size_t size() const { return points_.size(); }

  /// The reordered coordinates: points()[s] == positions[to_orig(s)],
  /// bit-identical. Build grids and iterate over this span.
  std::span<const Vec2> points() const { return points_; }

  /// Sorted index -> original id.
  std::uint32_t to_orig(std::uint32_t sorted_id) const {
    return to_orig_[sorted_id];
  }
  std::span<const std::uint32_t> to_orig_map() const { return to_orig_; }

  /// Original id -> sorted index.
  std::uint32_t to_sorted(std::uint32_t orig_id) const {
    return to_sorted_[orig_id];
  }
  std::span<const std::uint32_t> to_sorted_map() const { return to_sorted_; }

  /// True when the permutation is the identity (toggle off or trivial n).
  bool identity() const { return identity_; }

 private:
  std::vector<Vec2> points_;
  std::vector<std::uint32_t> to_orig_;
  std::vector<std::uint32_t> to_sorted_;
  bool identity_ = true;
};

}  // namespace thetanet::geom
