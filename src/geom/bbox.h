#pragma once
// Axis-aligned bounding box, used by the spatial indexes and the hexagonal
// tiling to size their cell structures over a node deployment region.

#include <algorithm>
#include <limits>
#include <span>

#include "common/assert.h"
#include "geom/vec2.h"

namespace thetanet::geom {

struct BBox {
  Vec2 lo{std::numeric_limits<double>::infinity(),
          std::numeric_limits<double>::infinity()};
  Vec2 hi{-std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity()};

  bool empty() const { return lo.x > hi.x || lo.y > hi.y; }
  double width() const { return empty() ? 0.0 : hi.x - lo.x; }
  double height() const { return empty() ? 0.0 : hi.y - lo.y; }
  Vec2 center() const { return midpoint(lo, hi); }

  bool contains(Vec2 p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }

  void expand(Vec2 p) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }

  /// Grow symmetrically by margin m on all sides.
  BBox inflated(double m) const {
    TN_DCHECK(!empty());
    return {{lo.x - m, lo.y - m}, {hi.x + m, hi.y + m}};
  }

  /// Minimum squared distance from p to the box (0 if inside).
  double dist_sq_to(Vec2 p) const {
    const double dx = std::max({lo.x - p.x, 0.0, p.x - hi.x});
    const double dy = std::max({lo.y - p.y, 0.0, p.y - hi.y});
    return dx * dx + dy * dy;
  }

  static BBox of(std::span<const Vec2> pts) {
    BBox b;
    for (const Vec2 p : pts) b.expand(p);
    return b;
  }
};

}  // namespace thetanet::geom
