#pragma once
// 2-D vector/point type. The paper works entirely in the 2-dimensional
// Euclidean plane (Section 2), so this is the foundational value type.

#include <cmath>
#include <compare>
#include <ostream>

namespace thetanet::geom {

/// A point or displacement in the 2-D Euclidean plane.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend constexpr Vec2 operator*(double s, Vec2 a) { return {s * a.x, s * a.y}; }
  friend constexpr Vec2 operator*(Vec2 a, double s) { return {s * a.x, s * a.y}; }
  friend constexpr Vec2 operator/(Vec2 a, double s) { return {a.x / s, a.y / s}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }
  constexpr Vec2& operator+=(Vec2 b) { x += b.x; y += b.y; return *this; }
  constexpr Vec2& operator-=(Vec2 b) { x -= b.x; y -= b.y; return *this; }
  constexpr Vec2& operator*=(double s) { x *= s; y *= s; return *this; }

  friend constexpr bool operator==(Vec2, Vec2) = default;
  friend constexpr auto operator<=>(Vec2, Vec2) = default;

  friend std::ostream& operator<<(std::ostream& os, Vec2 v) {
    return os << '(' << v.x << ", " << v.y << ')';
  }
};

constexpr double dot(Vec2 a, Vec2 b) { return a.x * b.x + a.y * b.y; }

/// z-component of the 3-D cross product; >0 when b is counter-clockwise of a.
constexpr double cross(Vec2 a, Vec2 b) { return a.x * b.y - a.y * b.x; }

constexpr double norm_sq(Vec2 a) { return dot(a, a); }
inline double norm(Vec2 a) { return std::sqrt(norm_sq(a)); }

/// Squared Euclidean distance |ab|^2 (cheap; prefer when comparing).
constexpr double dist_sq(Vec2 a, Vec2 b) { return norm_sq(b - a); }

/// Euclidean distance |ab| as used throughout the paper.
inline double dist(Vec2 a, Vec2 b) { return norm(b - a); }

inline Vec2 normalized(Vec2 a) {
  const double n = norm(a);
  return n > 0.0 ? a / n : Vec2{0.0, 0.0};
}

/// Rotate `a` counter-clockwise by `radians`.
inline Vec2 rotated(Vec2 a, double radians) {
  const double c = std::cos(radians);
  const double s = std::sin(radians);
  return {c * a.x - s * a.y, s * a.x + c * a.y};
}

/// Midpoint of segment (a, b) — e.g. the circle centre O in Lemma 2.6.
constexpr Vec2 midpoint(Vec2 a, Vec2 b) { return {(a.x + b.x) / 2.0, (a.y + b.y) / 2.0}; }

}  // namespace thetanet::geom
