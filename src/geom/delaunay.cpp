#include "geom/delaunay.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>

#include "common/assert.h"
#include "geom/bbox.h"
#include "geom/predicates.h"

namespace thetanet::geom {
namespace {

struct Triangle {
  // Vertex ids; ids >= n_real refer to the three super-triangle vertices.
  std::array<std::uint32_t, 3> v;
  bool alive = true;
};

}  // namespace

std::vector<std::pair<std::uint32_t, std::uint32_t>> delaunay_edges(
    std::span<const Vec2> points) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  const std::uint32_t n = static_cast<std::uint32_t>(points.size());
  if (n < 2) return edges;
  if (n == 2) {
    edges.emplace_back(0, 1);
    return edges;
  }

  // Working vertex array = input points + super-triangle vertices.
  std::vector<Vec2> verts(points.begin(), points.end());
  const BBox box = BBox::of(points);
  const double span = std::max({box.width(), box.height(), 1.0});
  const Vec2 c = box.center();
  // A super-triangle comfortably containing every circumcircle of interest.
  verts.push_back({c.x - 40.0 * span, c.y - 20.0 * span});
  verts.push_back({c.x + 40.0 * span, c.y - 20.0 * span});
  verts.push_back({c.x, c.y + 40.0 * span});
  const std::uint32_t s0 = n, s1 = n + 1, s2 = n + 2;

  std::vector<Triangle> tris;
  tris.push_back({{s0, s1, s2}, true});

  auto ccw = [&](Triangle& t) {
    if (orient2d(verts[t.v[0]], verts[t.v[1]], verts[t.v[2]]) < 0.0)
      std::swap(t.v[1], t.v[2]);
  };

  // Insert points one at a time (Bowyer–Watson). O(n^2) worst case, fine for
  // the simulation scales used here (n <= ~16k).
  for (std::uint32_t p = 0; p < n; ++p) {
    const Vec2 pp = verts[p];
    // Find all triangles whose circumcircle contains p ("bad" triangles).
    std::map<std::pair<std::uint32_t, std::uint32_t>, int> boundary_count;
    std::vector<std::size_t> bad;
    for (std::size_t t = 0; t < tris.size(); ++t) {
      if (!tris[t].alive) continue;
      const auto& v = tris[t].v;
      if (in_circumcircle(verts[v[0]], verts[v[1]], verts[v[2]], pp)) {
        bad.push_back(t);
        for (int e = 0; e < 3; ++e) {
          std::uint32_t a = v[static_cast<std::size_t>(e)];
          std::uint32_t b = v[static_cast<std::size_t>((e + 1) % 3)];
          if (a > b) std::swap(a, b);
          ++boundary_count[{a, b}];
        }
      }
    }
    for (const std::size_t t : bad) tris[t].alive = false;
    // Polygon hole boundary = edges belonging to exactly one bad triangle.
    for (const auto& [edge, count] : boundary_count) {
      if (count != 1) continue;
      Triangle t{{edge.first, edge.second, p}, true};
      ccw(t);
      tris.push_back(t);
    }
  }

  // Collect edges not touching the super-triangle, dedup.
  for (const Triangle& t : tris) {
    if (!t.alive) continue;
    for (int e = 0; e < 3; ++e) {
      std::uint32_t a = t.v[static_cast<std::size_t>(e)];
      std::uint32_t b = t.v[static_cast<std::size_t>((e + 1) % 3)];
      if (a >= n || b >= n) continue;
      if (a > b) std::swap(a, b);
      edges.emplace_back(a, b);
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

}  // namespace thetanet::geom
