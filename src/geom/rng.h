#pragma once
// Deterministic random number generation. Every stochastic element of the
// library (node placement, randomized MAC coin flips, adversarial traces,
// Monte-Carlo repetitions) draws from this engine so that every experiment
// table is reproducible bit-for-bit from its seed. We implement the
// distributions ourselves because std::uniform_real_distribution et al. are
// implementation-defined and would break cross-platform reproducibility.

#include <array>
#include <cmath>
#include <cstdint>

#include "common/assert.h"

namespace thetanet::geom {

/// xoshiro256** by Blackman & Vigna, seeded via splitmix64. Satisfies
/// UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n) with rejection to avoid modulo bias.
  std::uint64_t uniform_index(std::uint64_t n) {
    TN_ASSERT(n > 0);
    const std::uint64_t threshold = (~n + 1) % n;  // = 2^64 mod n
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    TN_ASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    uniform_index(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Marsaglia's polar method (deterministic, no std::).
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    have_spare_ = true;
    return u * m;
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Derive an independent child stream (for per-trial / per-thread use).
  Rng fork() { return Rng((*this)() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace thetanet::geom
