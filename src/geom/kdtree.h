#pragma once
// Static k-d tree over a point set: k-nearest-neighbour and range queries.
// Complements SpatialGrid: the grid wins when the query radius is known and
// uniform (transmission range D), the tree wins for k-NN with unknown radius
// (k-nearest baseline topology, nearest-neighbour tie-break audits).

#include <cstdint>
#include <span>
#include <vector>

#include "geom/vec2.h"

namespace thetanet::geom {

class KdTree {
 public:
  using NodeId = std::uint32_t;
  static constexpr NodeId kNone = static_cast<NodeId>(-1);

  explicit KdTree(std::span<const Vec2> points);

  std::size_t size() const { return points_.size(); }

  /// Nearest neighbour of `query`, excluding `exclude`; kNone if none.
  NodeId nearest(Vec2 query, NodeId exclude = kNone) const;

  /// The k nearest neighbours of `query` (excluding `exclude`), ordered by
  /// increasing distance, ties broken by id. Returns fewer if the set is
  /// smaller than k.
  std::vector<NodeId> k_nearest(Vec2 query, std::size_t k,
                                NodeId exclude = kNone) const;

  /// All ids within `radius` of `query`, sorted ascending.
  std::vector<NodeId> within(Vec2 query, double radius,
                             NodeId exclude = kNone) const;

 private:
  struct Node {
    NodeId id;            // point stored at this tree node
    std::int32_t left;    // child indices into nodes_, -1 when absent
    std::int32_t right;
    std::uint8_t axis;    // 0 = x, 1 = y
  };

  std::int32_t build(std::span<NodeId> ids, int depth);

  template <typename Visit>
  void search(std::int32_t node, Vec2 query, double radius_sq,
              const Visit& visit) const;

  std::vector<Vec2> points_;
  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
};

}  // namespace thetanet::geom
