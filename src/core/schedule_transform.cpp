#include "core/schedule_transform.h"

#include <algorithm>
#include <unordered_set>

#include "common/assert.h"

namespace thetanet::core {

TransformResult transform_schedule(const ThetaTopology& topology,
                                   const graph::Graph& gstar,
                                   std::span<const GStarStep> schedule,
                                   const interf::InterferenceModel& model) {
  const topo::Deployment& d = topology.deployment();
  const graph::Graph& n_graph = topology.graph();
  TransformResult result;
  result.gstar_steps = schedule.size();

  // N's interference sets drive both the conflict checks and the reported I.
  const auto sets = interf::interference_sets(n_graph, d, model);
  for (const auto& s : sets)
    result.interference_number = std::max(
        result.interference_number, static_cast<std::uint32_t>(s.size()));

  // occupied[s] = N edges transmitting in produced step s.
  std::vector<std::unordered_set<graph::EdgeId>> occupied;
  const auto conflict_free = [&](std::size_t s, graph::EdgeId e) {
    const auto& step = occupied[s];
    if (step.count(e) != 0) return false;  // one packet per edge per step
    for (const graph::EdgeId other : sets[e])
      if (step.count(other) != 0) return false;
    return true;
  };
  const auto place = [&](graph::EdgeId e, std::size_t earliest) {
    std::size_t s = earliest;
    for (;; ++s) {
      if (s >= occupied.size()) occupied.resize(s + 1);
      if (conflict_free(s, e)) break;
    }
    occupied[s].insert(e);
    ++result.transmissions;
    return s;
  };

  // Causality barrier: every hop spawned by G* step k starts after all of
  // step k-1's hops finished.
  std::size_t barrier = 0;
  for (const GStarStep& gstep : schedule) {
    std::size_t step_completion = barrier;
    for (const graph::EdgeId ge : gstep) {
      const graph::Edge& edge = gstar.edge(ge);
      const std::vector<graph::EdgeId> path =
          topology.replacement_path(edge.u, edge.v);
      TN_DCHECK(!path.empty());
      std::size_t ready = barrier;  // hop j waits for hop j-1 (store & forward)
      for (const graph::EdgeId hop : path) {
        const std::size_t placed = place(hop, ready);
        ready = placed + 1;
      }
      step_completion = std::max(step_completion, ready);
    }
    barrier = step_completion;
  }

  result.n_steps = occupied.size();
  result.n_schedule.reserve(occupied.size());
  for (const auto& step : occupied) {
    std::vector<graph::EdgeId> edges(step.begin(), step.end());
    std::sort(edges.begin(), edges.end());
    result.n_schedule.push_back(std::move(edges));
  }
  return result;
}

std::vector<GStarStep> random_noninterfering_schedule(
    const graph::Graph& gstar, const topo::Deployment& d,
    const interf::InterferenceModel& model, std::size_t steps, geom::Rng& rng) {
  // Precompute G*'s interference sets once; each step is then a greedy
  // maximal independent set in the interference graph, built in a fresh
  // random scan order.
  const auto sets = interf::interference_sets(gstar, d, model);
  std::vector<GStarStep> schedule;
  schedule.reserve(steps);
  std::vector<graph::EdgeId> order(gstar.num_edges());
  for (graph::EdgeId e = 0; e < order.size(); ++e) order[e] = e;
  std::vector<bool> blocked(gstar.num_edges());
  for (std::size_t s = 0; s < steps; ++s) {
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.uniform_index(i)]);
    std::fill(blocked.begin(), blocked.end(), false);
    GStarStep step;
    for (const graph::EdgeId e : order) {
      if (blocked[e]) continue;
      step.push_back(e);
      blocked[e] = true;
      for (const graph::EdgeId other : sets[e]) blocked[other] = true;
    }
    std::sort(step.begin(), step.end());
    schedule.push_back(std::move(step));
  }
  return schedule;
}

}  // namespace thetanet::core
