#pragma once
// The distributed, message-passing formulation of ThetaALG (Section 2.1):
//
//   Round 1: every node broadcasts a Position message at maximum power P.
//   Round 2: every node u, having computed N(u) from the received positions,
//            sends a Neighborhood message containing N(u) to each v in N(u).
//   Round 3: every node u sends a Connection message to the nearest node v
//            (if any) in each sector with u in N(v); an edge (u, v) exists
//            iff u and v exchanged Connection messages.
//
// This module *simulates* the three rounds node-locally — each node acts only
// on messages it received — and checks that the resulting edge set equals
// the centralized ThetaTopology construction. It also reports the message
// complexity, demonstrating the "local algorithm" claim: O(1) rounds and
// O(n) total messages, versus the diameter-time postprocessing needed by the
// global edge-ranking spanner constructions discussed in Section 1.2.

#include <cstdint>
#include <vector>

#include "core/theta_topology.h"
#include "topology/deployment.h"

namespace thetanet::core {

struct ProtocolStats {
  std::uint64_t position_msgs = 0;      ///< round-1 broadcasts (one per node)
  std::uint64_t neighborhood_msgs = 0;  ///< round-2 unicasts (<= sectors per node)
  std::uint64_t connection_msgs = 0;    ///< round-3 unicasts (<= sectors per node)
  std::size_t edges = 0;                ///< resulting |E(N)|
  bool matches_centralized = false;     ///< equals ThetaTopology::graph()?
};

/// Run the three-round protocol and compare against the centralized result.
ProtocolStats run_local_protocol(const topo::Deployment& d, double theta);

}  // namespace thetanet::core
