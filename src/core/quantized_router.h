#pragma once
// Quantized height advertisement — the practical-implementation remark of
// Section 3.2: "we assume that nodes continuously exchange the buffer height
// values. In a practical implementation, we can reduce the amount of control
// information exchange for this purpose."
//
// This router runs the same (T, gamma)-balancing rule, but the *remote* side
// of every benefit computation uses the neighbour's last advertised height
// rather than its live height. A node re-advertises a buffer's height only
// when it has drifted by at least `quantum` since the last advertisement
// (one control message per re-advertisement). quantum = 1 reproduces the
// ideal router's behaviour message-efficiently (heights are integers, so
// every change is advertised); larger quanta trade staleness for fewer
// control messages. Bench E15 sweeps the trade-off.
//
// The local side of the rule (the sender's own height) is always live —
// that knowledge is free.
//
// The advertised table mirrors the buffer bank's SoA layout: per node a
// sorted destination array with a parallel height array (advertised heights
// are never 0 — a drained buffer's advertisement is retired — so presence
// in the array IS the advertisement). Plans are merged scans of the live
// bank against the advertised arrays; end_step reconciles the two sorted
// sequences in one pass and rebuilds a node's table only when a control
// message actually fired. No per-step allocations at steady state.

#include "core/balancing_router.h"

namespace thetanet::core {

class QuantizedHeightRouter {
 public:
  QuantizedHeightRouter(std::size_t num_nodes, const BalancingParams& params,
                        std::size_t quantum)
      : inner_(num_nodes, params),
        advertised_(num_nodes),
        quantum_(quantum) {
    TN_ASSERT(quantum >= 1);
  }

  const BalancingParams& params() const { return inner_.params(); }
  std::uint64_t control_messages() const { return control_messages_; }

  /// Control-plane bytes on the wire, under the fixed encoding of
  /// kAdvertiseBytes/kRetireBytes below. Deterministic — a pure function of
  /// the message sequence — so it can sit in telemetry dumps and power the
  /// flat-bandwidth-per-node gate of bench_compare.
  std::uint64_t control_bytes() const { return control_bytes_; }

  /// Deterministic wire-size model for the budget ledger: an advertisement
  /// carries (header, dest, height), a retirement (header, dest), 4 bytes
  /// each. A real MAC frame adds per-link overhead, but a *constant* one —
  /// flatness per node is what the gate checks, so the model only has to be
  /// proportional.
  static constexpr std::uint64_t kAdvertiseBytes = 12;
  static constexpr std::uint64_t kRetireBytes = 8;
  std::size_t packets_in_flight() const { return inner_.packets_in_flight(); }
  const route::BufferBank& buffers() const { return inner_.buffers(); }
  route::BufferBank& buffers_for_fault_injection() {
    return inner_.buffers_for_fault_injection();
  }

  /// Balancing plan against advertised remote heights.
  std::vector<PlannedTx> plan(const graph::Graph& topo,
                              std::span<const graph::EdgeId> active,
                              std::span<const double> costs) const;

  /// Allocation-free variant: fills `out` (cleared first) in ascending
  /// `active` order; reuse `out` across rounds.
  void plan_into(const graph::Graph& topo,
                 std::span<const graph::EdgeId> active,
                 std::span<const double> costs,
                 std::vector<PlannedTx>& out) const;

  void execute(std::span<const PlannedTx> txs, const std::vector<bool>& failed,
               std::span<const double> costs, route::Time now,
               route::RunMetrics& m) {
    inner_.execute(txs, failed, costs, now, m);
  }

  void inject(const route::Packet& p, route::RunMetrics& m) {
    inner_.inject(p, m);
  }

  /// End-of-step: refresh advertisements whose true height drifted by at
  /// least the quantum (counting one control message each), then record
  /// space metrics.
  void end_step(route::RunMetrics& m);

 private:
  // Sorted advertised-height table for one node. Heights are always >= 1:
  // retiring a drained buffer's advertisement removes the entry.
  struct AdvNode {
    std::vector<route::DestId> dests;
    std::vector<std::uint32_t> heights;
  };

  std::size_t advertised_height(graph::NodeId v, route::DestId d) const;

  BalancingRouter inner_;
  std::vector<AdvNode> advertised_;
  std::size_t quantum_;
  std::uint64_t control_messages_ = 0;
  std::uint64_t control_bytes_ = 0;
  // end_step rebuild scratch, reused across rounds.
  std::vector<route::DestId> scratch_dests_;
  std::vector<std::uint32_t> scratch_heights_;
};

}  // namespace thetanet::core
