#include "core/contention_protocol.h"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "core/theta_topology.h"
#include "geom/angles.h"
#include "geom/spatial_grid.h"
#include "topology/yao.h"

namespace thetanet::core {
namespace {

using graph::kInvalidNode;
using graph::NodeId;

/// Drives one logical round: every node u with a nonempty work list
/// transmits with probability p; `deliver(u)` is called when u's
/// transmission is the only one audible at u's current head target (round
/// semantics differ between broadcast and unicast, so delivery bookkeeping
/// is supplied by the caller through the two hooks).
struct Medium {
  const topo::Deployment& d;
  const std::vector<std::vector<NodeId>>& neighbors;  // in-range, per node
  double p;
  geom::Rng& rng;
  ContentionStats& stats;

  /// Runs slots until `done()` or the cap; per slot, `wants_tx(u)` gates
  /// participation and `on_clear(u, v)` fires for every receiver v that
  /// heard u alone.
  template <typename WantsTx, typename OnClear, typename Done>
  std::size_t run(const WantsTx& wants_tx, const OnClear& on_clear,
                  const Done& done, std::size_t max_slots) {
    const std::size_t n = d.size();
    std::vector<bool> tx(n);
    std::vector<NodeId> heard;  // per-receiver in-range transmitter scratch
    std::size_t slots = 0;
    while (!done() && slots < max_slots) {
      ++slots;
      bool any = false;
      for (NodeId u = 0; u < n; ++u) {
        tx[u] = wants_tx(u) && rng.bernoulli(p);
        if (tx[u]) {
          any = true;
          ++stats.transmissions;
        }
      }
      if (!any) continue;
      for (NodeId v = 0; v < n; ++v) {
        if (tx[v]) continue;  // half-duplex
        heard.clear();
        for (const NodeId u : neighbors[v])
          if (tx[u]) heard.push_back(u);
        if (heard.size() == 1) {
          on_clear(heard.front(), v);
        } else if (heard.size() > 1) {
          ++stats.collisions;
        }
      }
    }
    return slots;
  }
};

}  // namespace

ContentionStats run_contention_protocol(const topo::Deployment& d, double theta,
                                        double p, geom::Rng& rng,
                                        std::size_t max_slots_per_round) {
  TN_ASSERT(p > 0.0 && p <= 1.0);
  ContentionStats stats;
  const std::size_t n = d.size();
  if (n < 2) {
    stats.matches_centralized = true;
    return stats;
  }

  const geom::SpatialGrid grid(d.positions, std::max(d.max_range, 1e-9));
  std::vector<std::vector<NodeId>> neighbors(n);
  for (NodeId u = 0; u < n; ++u)
    neighbors[u] = grid.within(d.positions[u], d.max_range, u);

  Medium medium{d, neighbors, p, rng, stats};

  // ---- Round 1: Position broadcasts. u is done when every neighbour heard
  // it at least once.
  std::vector<std::set<NodeId>> await(n);  // neighbours yet to hear u
  std::size_t undelivered = 0;
  for (NodeId u = 0; u < n; ++u) {
    await[u].insert(neighbors[u].begin(), neighbors[u].end());
    undelivered += await[u].size();
  }
  stats.slots_round1 = medium.run(
      [&](NodeId u) { return !await[u].empty(); },
      [&](NodeId u, NodeId v) { undelivered -= await[u].erase(v); },
      [&]() { return undelivered == 0; }, max_slots_per_round);
  if (undelivered != 0) return stats;  // truncated

  // Each node now knows its neighbourhood and computes N(u) locally.
  const topo::SectorTable table = topo::compute_sector_table(d, theta);
  const int k = table.sectors();

  // ---- Round 2: Neighborhood unicasts u -> v for every v in N(u). A
  // transmission is a broadcast on the medium, but only the head target
  // consumes it.
  std::vector<std::vector<NodeId>> targets2(n);
  for (NodeId u = 0; u < n; ++u)
    for (int s = 0; s < k; ++s) {
      const NodeId v = table.nearest(u, s);
      if (v != kInvalidNode) targets2[u].push_back(v);
    }
  std::vector<std::vector<NodeId>> selectors(n);  // delivered: v learns u
  std::size_t remaining2 = 0;
  for (const auto& t : targets2) remaining2 += t.size();
  stats.slots_round2 = medium.run(
      [&](NodeId u) { return !targets2[u].empty(); },
      [&](NodeId u, NodeId v) {
        if (!targets2[u].empty() && targets2[u].back() == v) {
          targets2[u].pop_back();
          selectors[v].push_back(u);
          --remaining2;
        }
      },
      [&]() { return remaining2 == 0; }, max_slots_per_round);
  if (remaining2 != 0) return stats;

  // ---- Round 3: Connection unicasts — each node admits the nearest
  // selector per sector and notifies it.
  std::vector<std::vector<NodeId>> targets3(n);
  for (NodeId v = 0; v < n; ++v) {
    std::vector<NodeId> admit(static_cast<std::size_t>(k), kInvalidNode);
    for (const NodeId u : selectors[v]) {
      const int s = geom::sector_index(d.positions[v], d.positions[u], theta);
      NodeId& cur = admit[static_cast<std::size_t>(s)];
      if (topo::nearer(d, v, u, cur)) cur = u;
    }
    for (const NodeId u : admit)
      if (u != kInvalidNode) targets3[v].push_back(u);
  }
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::size_t remaining3 = 0;
  for (const auto& t : targets3) remaining3 += t.size();
  stats.slots_round3 = medium.run(
      [&](NodeId v) { return !targets3[v].empty(); },
      [&](NodeId v, NodeId u) {
        if (!targets3[v].empty() && targets3[v].back() == u) {
          targets3[v].pop_back();
          edges.push_back(std::minmax(v, u));
          --remaining3;
        }
      },
      [&]() { return remaining3 == 0; }, max_slots_per_round);
  if (remaining3 != 0) return stats;

  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  const ThetaTopology reference(d, theta);
  std::vector<std::pair<NodeId, NodeId>> ref;
  ref.reserve(reference.graph().num_edges());
  for (const graph::Edge& e : reference.graph().edges())
    ref.push_back(std::minmax(e.u, e.v));
  std::sort(ref.begin(), ref.end());
  stats.matches_centralized = (edges == ref);
  return stats;
}

}  // namespace thetanet::core
