#include "core/quantized_router.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace thetanet::core {

std::vector<PlannedTx> QuantizedHeightRouter::plan(
    const graph::Graph& topo, std::span<const graph::EdgeId> active,
    std::span<const double> costs) const {
  std::vector<PlannedTx> txs;
  txs.reserve(active.size());
  const auto& bufs = inner_.buffers();
  const double gamma = inner_.params().gamma;
  const double threshold = inner_.params().threshold;

  const auto best_dir = [&](graph::NodeId from, graph::NodeId to,
                            graph::EdgeId e,
                            double cost) -> std::optional<PlannedTx> {
    std::optional<PlannedTx> best;
    // Local height live, remote height as last advertised.
    bufs.for_each_destination(from, [&](route::DestId d, std::size_t h_from) {
      const double benefit = static_cast<double>(h_from) -
                             static_cast<double>(advertised_height(to, d)) -
                             gamma * cost;
      if (benefit <= threshold) return;
      if (!best || benefit > best->benefit)
        best = PlannedTx{e, from, to, d, benefit};
    });
    return best;
  };

  for (const graph::EdgeId e : active) {
    const graph::Edge& edge = topo.edge(e);
    const auto fwd = best_dir(edge.u, edge.v, e, costs[e]);
    const auto bwd = best_dir(edge.v, edge.u, e, costs[e]);
    if (fwd && (!bwd || fwd->benefit >= bwd->benefit)) {
      txs.push_back(*fwd);
    } else if (bwd) {
      txs.push_back(*bwd);
    }
  }
  return txs;
}

void QuantizedHeightRouter::end_step(route::RunMetrics& m) {
  const std::uint64_t before = control_messages_;
  const auto& bufs = inner_.buffers();
  for (graph::NodeId v = 0; v < advertised_.size(); ++v) {
    // Heights that rose or changed among live buffers.
    bufs.for_each_destination(v, [&](route::DestId d, std::size_t h) {
      const std::size_t adv = advertised_height(v, d);
      const std::size_t drift = h > adv ? h - adv : adv - h;
      if (drift >= quantum_) {
        advertised_[v][d] = h;
        ++control_messages_;
      }
    });
    // Buffers that drained to zero (no longer iterated above).
    auto& node = advertised_[v];
    for (auto it = node.begin(); it != node.end();) {
      const std::size_t h = bufs.height(v, it->first);
      if (h == 0 && it->second >= quantum_) {
        it = node.erase(it);
        ++control_messages_;
      } else {
        ++it;
      }
    }
  }
  TN_OBS_COUNT("router.control_messages", control_messages_ - before);
  // Recorded before the inner end_step advances the round clock, so the
  // control traffic of step t lands on round t like the other series.
  TN_OBS_SERIES_ADD("router.control_messages", inner_.round(),
                    control_messages_ - before);
  inner_.end_step(m);
}

}  // namespace thetanet::core
