#include "core/quantized_router.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace thetanet::core {

std::size_t QuantizedHeightRouter::advertised_height(graph::NodeId v,
                                                     route::DestId d) const {
  const AdvNode& node = advertised_[v];
  const auto it =
      std::lower_bound(node.dests.begin(), node.dests.end(), d);
  return (it != node.dests.end() && *it == d)
             ? node.heights[static_cast<std::size_t>(it - node.dests.begin())]
             : 0;
}

void QuantizedHeightRouter::plan_into(const graph::Graph& topo,
                                      std::span<const graph::EdgeId> active,
                                      std::span<const double> costs,
                                      std::vector<PlannedTx>& out) const {
  out.clear();
  const auto& bufs = inner_.buffers();
  const double gamma = inner_.params().gamma;
  const double threshold = inner_.params().threshold;

  // Local height live, remote height as last advertised: one forward pass
  // over the sender's sorted live buffers with a riding cursor into the
  // receiver's sorted advertised table (both ascend by destination).
  const auto best_dir = [&](graph::NodeId from, graph::NodeId to,
                            graph::EdgeId e,
                            double cost) -> std::optional<PlannedTx> {
    std::optional<PlannedTx> best;
    const std::span<const route::DestId> fd = bufs.dests(from);
    const std::span<const std::uint32_t> fh = bufs.heights(from);
    const AdvNode& adv = advertised_[to];
    std::size_t j = 0;
    for (std::size_t i = 0; i < fd.size(); ++i) {
      const std::uint32_t h_from = fh[i];
      if (h_from == 0) continue;  // tombstone
      const route::DestId d = fd[i];
      while (j < adv.dests.size() && adv.dests[j] < d) ++j;
      const std::size_t h_adv =
          (j < adv.dests.size() && adv.dests[j] == d) ? adv.heights[j] : 0;
      const double benefit = static_cast<double>(h_from) -
                             static_cast<double>(h_adv) - gamma * cost;
      if (benefit <= threshold) continue;
      if (!best || benefit > best->benefit)
        best = PlannedTx{e, from, to, d, benefit};
    }
    return best;
  };

  for (const graph::EdgeId e : active) {
    const graph::NodeId u = topo.edge_u(e);
    const graph::NodeId v = topo.edge_v(e);
    const auto fwd = best_dir(u, v, e, costs[e]);
    const auto bwd = best_dir(v, u, e, costs[e]);
    if (fwd && (!bwd || fwd->benefit >= bwd->benefit)) {
      out.push_back(*fwd);
    } else if (bwd) {
      out.push_back(*bwd);
    }
  }
}

std::vector<PlannedTx> QuantizedHeightRouter::plan(
    const graph::Graph& topo, std::span<const graph::EdgeId> active,
    std::span<const double> costs) const {
  std::vector<PlannedTx> txs;
  txs.reserve(active.size());
  plan_into(topo, active, costs, txs);
  return txs;
}

void QuantizedHeightRouter::end_step(route::RunMetrics& m) {
  const std::uint64_t before = control_messages_;
  const std::uint64_t bytes_before = control_bytes_;
  const auto& bufs = inner_.buffers();
  for (graph::NodeId v = 0; v < advertised_.size(); ++v) {
    AdvNode& adv = advertised_[v];
    if (bufs.live_destinations(v) == 0 && adv.dests.empty()) continue;
    const std::span<const route::DestId> bd = bufs.dests(v);
    const std::span<const std::uint32_t> bh = bufs.heights(v);
    // Reconcile the two sorted sequences in one merged pass:
    //   * live buffer, drift >= quantum  -> advertise the new height;
    //   * live buffer, small drift       -> keep the old advertisement
    //     (possibly none, when the height never reached the quantum);
    //   * drained buffer, adv >= quantum -> retire the advertisement;
    //   * drained buffer, adv < quantum  -> the stale small value lingers
    //     (drift below quantum), exactly as with live exchange.
    // Each advertise/retire is one control message. The node's table is
    // rebuilt only when a message fired; otherwise it is untouched.
    scratch_dests_.clear();
    scratch_heights_.clear();
    bool changed = false;
    std::size_t i = 0;
    std::size_t j = 0;
    const auto keep = [&](route::DestId d, std::uint32_t h) {
      scratch_dests_.push_back(d);
      scratch_heights_.push_back(h);
    };
    while (i < bd.size() || j < adv.dests.size()) {
      const bool take_bank =
          i < bd.size() && (j >= adv.dests.size() || bd[i] <= adv.dests[j]);
      const bool take_adv =
          j < adv.dests.size() && (i >= bd.size() || adv.dests[j] <= bd[i]);
      if (take_bank && take_adv) {
        const std::uint32_t h = bh[i];
        const std::uint32_t a = adv.heights[j];
        if (h == 0) {
          if (a >= quantum_) {
            ++control_messages_;
            control_bytes_ += kRetireBytes;
            changed = true;
          } else {
            keep(bd[i], a);
          }
        } else {
          const std::uint32_t drift = h > a ? h - a : a - h;
          if (drift >= quantum_) {
            keep(bd[i], h);
            ++control_messages_;
            control_bytes_ += kAdvertiseBytes;
            changed = true;
          } else {
            keep(bd[i], a);
          }
        }
        ++i;
        ++j;
      } else if (take_bank) {
        const std::uint32_t h = bh[i];  // no advertisement yet (adv = 0)
        if (h >= quantum_) {
          keep(bd[i], h);
          ++control_messages_;
          control_bytes_ += kAdvertiseBytes;
          changed = true;
        }
        ++i;
      } else {
        const std::uint32_t a = adv.heights[j];  // buffer drained (h = 0)
        if (a >= quantum_) {
          ++control_messages_;
          control_bytes_ += kRetireBytes;
          changed = true;
        } else {
          keep(adv.dests[j], a);
        }
        ++j;
      }
    }
    if (changed) {
      adv.dests.assign(scratch_dests_.begin(), scratch_dests_.end());
      adv.heights.assign(scratch_heights_.begin(), scratch_heights_.end());
    }
  }
  TN_OBS_COUNT("router.control_messages", control_messages_ - before);
  TN_OBS_COUNT("router.control_bytes", control_bytes_ - bytes_before);
  // Recorded before the inner end_step advances the round clock, so the
  // control traffic of step t lands on round t like the other series.
  TN_OBS_SERIES_ADD("router.control_messages", inner_.round(),
                    control_messages_ - before);
  TN_OBS_SERIES_ADD("router.control_bytes", inner_.round(),
                    control_bytes_ - bytes_before);
  inner_.end_step(m);
}

}  // namespace thetanet::core
