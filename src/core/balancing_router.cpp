#include "core/balancing_router.h"

#include <algorithm>

#include "common/assert.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace thetanet::core {

using route::DestId;
using route::Packet;
using route::RunMetrics;

BalancingParams theorem31_params(const route::OptStats& opt, double eps,
                                 double delta) {
  TN_ASSERT(eps > 0.0 && delta >= 1.0);
  const double b = std::max<double>(1.0, static_cast<double>(opt.max_buffer));
  const double lbar = std::max(1.0, opt.avg_path_length);
  const double cbar = std::max(1e-12, opt.avg_cost);
  BalancingParams p;
  p.threshold = b + 2.0 * (delta - 1.0);
  p.gamma = (p.threshold + b + delta) * lbar / cbar;
  const double s = 1.0 + 2.0 * (1.0 + (p.threshold + delta) / b) * lbar / eps;
  p.max_height = static_cast<std::size_t>(s * b) + 1;
  return p;
}

BalancingParams theorem33_params(const route::OptStats& opt, double eps) {
  TN_ASSERT(eps > 0.0);
  const double b = std::max<double>(1.0, static_cast<double>(opt.max_buffer));
  const double lbar = std::max(1.0, opt.avg_path_length);
  const double cbar = std::max(1e-12, opt.avg_cost);
  BalancingParams p;
  p.threshold = 2.0 * b + 1.0;
  p.gamma = (p.threshold + b) * lbar / cbar;
  const double s = 1.0 + 2.0 * (1.0 + p.threshold / b) * lbar / eps;
  p.max_height = static_cast<std::size_t>(s * b) + 1;
  return p;
}

std::optional<PlannedTx> BalancingRouter::best_for_pair(graph::NodeId from,
                                                        graph::NodeId to,
                                                        graph::EdgeId edge,
                                                        double cost) const {
  std::optional<PlannedTx> best;
  buffers_.for_each_destination(from, [&](DestId d, std::size_t h_from) {
    const double benefit = static_cast<double>(h_from) -
                           static_cast<double>(buffers_.height(to, d)) -
                           params_.gamma * cost;
    if (benefit <= params_.threshold) return;
    // Deterministic argmax: strictly larger benefit wins; ties keep the
    // first (smallest) destination from the sorted scan.
    if (!best || benefit > best->benefit)
      best = PlannedTx{edge, from, to, d, benefit};
  });
  return best;
}

std::vector<PlannedTx> BalancingRouter::plan(
    const graph::Graph& topo, std::span<const graph::EdgeId> active,
    std::span<const double> costs) const {
  std::vector<PlannedTx> txs;
  txs.reserve(active.size());
  for (const graph::EdgeId e : active) {
    const graph::Edge& edge = topo.edge(e);
    const double c = costs[e];
    const std::optional<PlannedTx> fwd = best_for_pair(edge.u, edge.v, e, c);
    const std::optional<PlannedTx> bwd = best_for_pair(edge.v, edge.u, e, c);
    // One packet per edge per step, in the better direction.
    if (fwd && (!bwd || fwd->benefit >= bwd->benefit)) {
      txs.push_back(*fwd);
    } else if (bwd) {
      txs.push_back(*bwd);
    }
  }
  TN_OBS_COUNT("router.planned_tx", txs.size());
  TN_OBS_SERIES_ADD("router.active_edges", round_, active.size());
  return txs;
}

void BalancingRouter::execute(std::span<const PlannedTx> txs,
                              const std::vector<bool>& failed,
                              std::span<const double> costs, route::Time now,
                              RunMetrics& m) {
  TN_ASSERT(failed.empty() || failed.size() == txs.size());
  // Registry tallies mirror the RunMetrics deltas of this call and flush
  // once at the end — one registry touch per step, not per packet.
  const RunMetrics before = m;
  // Phase 1 — departures. Planned txs operate on the step-start snapshot; a
  // buffer can be drained by an earlier tx of the same step, in which case
  // the later tx is skipped (a real node would simply not transmit).
  std::vector<std::pair<const PlannedTx*, Packet>> in_air;
  in_air.reserve(txs.size());
  for (std::size_t i = 0; i < txs.size(); ++i) {
    const PlannedTx& tx = txs[i];
    const double cost = costs[tx.edge];
    if (!failed.empty() && failed[i]) {
      // Collision: the sender transmitted (energy burnt) but the receiver
      // got nothing; the packet never left the buffer.
      ++m.attempted_tx;
      ++m.failed_tx;
      m.wasted_energy += cost;
      continue;
    }
    std::optional<Packet> p = buffers_.pop(tx.from, tx.dest);
    if (!p) {
      ++m.skipped_tx;
      continue;
    }
    ++m.attempted_tx;
    m.total_energy += cost;
    p->cost_spent += cost;
    ++p->hops;
    in_air.emplace_back(&tx, *p);
  }

  // Phase 2 — arrivals: absorb at destinations, store elsewhere, delete on
  // overflow (cannot happen for in-transit packets once T is set per
  // Theorem 3.1; the metric keeps us honest).
  for (auto& [tx, p] : in_air) {
    if (is_destination(tx->to, p.dst)) {
      ++m.deliveries;
      m.delivered_cost += p.cost_spent;
      m.total_hops_delivered += p.hops;
      m.sum_latency += now >= p.injected_at ? now - p.injected_at : 0;
      continue;
    }
    if (!buffers_.push(tx->to, p)) ++m.dropped_in_transit;
  }

  TN_OBS_COUNT("router.attempted_tx", m.attempted_tx - before.attempted_tx);
  TN_OBS_COUNT("router.failed_tx", m.failed_tx - before.failed_tx);
  TN_OBS_COUNT("router.skipped_tx", m.skipped_tx - before.skipped_tx);
  TN_OBS_COUNT("router.delivered", m.deliveries - before.deliveries);
  TN_OBS_COUNT("router.dropped_in_transit",
               m.dropped_in_transit - before.dropped_in_transit);
  TN_OBS_SERIES_ADD("router.tx_attempted", round_,
                    m.attempted_tx - before.attempted_tx);
  TN_OBS_SERIES_ADD("router.tx_failed", round_,
                    m.failed_tx - before.failed_tx);
  TN_OBS_SERIES_ADD("router.tx_skipped", round_,
                    m.skipped_tx - before.skipped_tx);
  TN_OBS_SERIES_ADD("router.deliveries", round_,
                    m.deliveries - before.deliveries);
  TN_OBS_SERIES_ADD("router.dropped_in_transit", round_,
                    m.dropped_in_transit - before.dropped_in_transit);
}

void BalancingRouter::inject(const Packet& p, RunMetrics& m) {
  TN_ASSERT_MSG(!is_destination(p.src, p.dst),
                "cannot inject a packet at its own destination");
  ++m.injected_offered;
  TN_OBS_COUNT("router.injected", 1);
  TN_OBS_SERIES_ADD("router.injections", round_, 1);
  if (buffers_.push(p.src, p)) {
    ++m.injected_accepted;
    TN_OBS_COUNT("router.accepted", 1);
  } else {
    ++m.dropped_at_injection;
    TN_OBS_COUNT("router.dropped_at_injection", 1);
  }
}

void BalancingRouter::end_step(RunMetrics& m) {
  // The single bookkeeping path for the §3 backlog bound: the per-round
  // peak is computed once here and feeds the telemetry distribution, the
  // peak_buffer series, AND RunMetrics::peak_buffer (which
  // check_router_bounds consumes). By construction m.peak_buffer equals
  // the max of the recorded series at any downsampling level (max-of-window
  // folds are lossless for the overall max).
  const std::size_t h = buffers_.peak_height();
  TN_OBS_RECORD("router.round_peak_buffer", h);
  TN_OBS_COUNT("router.rounds", 1);
  TN_OBS_SERIES_MAX("router.peak_buffer", round_, h);
  TN_OBS_SERIES_MAX("router.total_buffer", round_, buffers_.total_packets());
  m.peak_buffer = std::max(m.peak_buffer, h);
  ++round_;
}

}  // namespace thetanet::core
