#include "core/balancing_router.h"

#include <algorithm>

#include "common/assert.h"
#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace thetanet::core {

using route::DestId;
using route::Packet;
using route::RunMetrics;

namespace {

// Parallelize the plan edge scan only when the work amortizes the pool
// handoff; below this the serial path is faster and equally deterministic.
constexpr std::size_t kParallelPlanEdges = 4096;

}  // namespace

BalancingParams theorem31_params(const route::OptStats& opt, double eps,
                                 double delta) {
  TN_ASSERT(eps > 0.0 && delta >= 1.0);
  const double b = std::max<double>(1.0, static_cast<double>(opt.max_buffer));
  const double lbar = std::max(1.0, opt.avg_path_length);
  const double cbar = std::max(1e-12, opt.avg_cost);
  BalancingParams p;
  p.threshold = b + 2.0 * (delta - 1.0);
  p.gamma = (p.threshold + b + delta) * lbar / cbar;
  const double s = 1.0 + 2.0 * (1.0 + (p.threshold + delta) / b) * lbar / eps;
  p.max_height = static_cast<std::size_t>(s * b) + 1;
  return p;
}

BalancingParams theorem33_params(const route::OptStats& opt, double eps) {
  TN_ASSERT(eps > 0.0);
  const double b = std::max<double>(1.0, static_cast<double>(opt.max_buffer));
  const double lbar = std::max(1.0, opt.avg_path_length);
  const double cbar = std::max(1e-12, opt.avg_cost);
  BalancingParams p;
  p.threshold = 2.0 * b + 1.0;
  p.gamma = (p.threshold + b) * lbar / cbar;
  const double s = 1.0 + 2.0 * (1.0 + p.threshold / b) * lbar / eps;
  p.max_height = static_cast<std::size_t>(s * b) + 1;
  return p;
}

std::optional<PlannedTx> BalancingRouter::best_for_pair(graph::NodeId from,
                                                        graph::NodeId to,
                                                        graph::EdgeId edge,
                                                        double cost) const {
  std::optional<PlannedTx> best;
  buffers_.for_each_pair(
      from, to, [&](DestId d, std::uint32_t h_from, std::uint32_t h_to) {
        if (h_from == 0) return;  // nothing to send toward d
        const double benefit = static_cast<double>(h_from) -
                               static_cast<double>(h_to) -
                               params_.gamma * cost;
        if (benefit <= params_.threshold) return;
        // Deterministic argmax: strictly larger benefit wins; ties keep the
        // first (smallest) destination from the sorted scan.
        if (!best || benefit > best->benefit)
          best = PlannedTx{edge, from, to, d, benefit};
      });
  return best;
}

void BalancingRouter::eval_edge(const graph::Graph& topo, graph::EdgeId e,
                                double cost, PlannedTx* slot) const {
  const graph::NodeId u = topo.edge_u(e);
  const graph::NodeId v = topo.edge_v(e);
  // One merged scan covers both orientations: h_u > 0 feeds the forward
  // candidate, h_v > 0 the backward one. Benefit expression and tie rules
  // are exactly best_for_pair's, so the winner per direction matches the
  // directed evaluation destination-for-destination.
  bool have_f = false;
  bool have_b = false;
  double best_f = 0.0;
  double best_b = 0.0;
  DestId dest_f = graph::kInvalidNode;
  DestId dest_b = graph::kInvalidNode;
  buffers_.for_each_pair(
      u, v, [&](DestId d, std::uint32_t h_u, std::uint32_t h_v) {
        if (h_u != 0) {
          const double benefit = static_cast<double>(h_u) -
                                 static_cast<double>(h_v) -
                                 params_.gamma * cost;
          if (benefit > params_.threshold && (!have_f || benefit > best_f)) {
            have_f = true;
            best_f = benefit;
            dest_f = d;
          }
        }
        if (h_v != 0) {
          const double benefit = static_cast<double>(h_v) -
                                 static_cast<double>(h_u) -
                                 params_.gamma * cost;
          if (benefit > params_.threshold && (!have_b || benefit > best_b)) {
            have_b = true;
            best_b = benefit;
            dest_b = d;
          }
        }
      });
  // One packet per edge per step, in the better direction (forward wins
  // ties, matching the historical fwd/bwd evaluation order).
  if (have_f && (!have_b || best_f >= best_b)) {
    *slot = PlannedTx{e, u, v, dest_f, best_f};
  } else if (have_b) {
    *slot = PlannedTx{e, v, u, dest_b, best_b};
  } else {
    slot->edge = graph::kInvalidEdge;
  }
}

void BalancingRouter::plan_into(const graph::Graph& topo,
                                std::span<const graph::EdgeId> active,
                                std::span<const double> costs,
                                std::vector<PlannedTx>& out) const {
  out.clear();
  if (slots_.size() < active.size()) slots_.resize(active.size());
  const auto eval_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const graph::EdgeId e = active[i];
      eval_edge(topo, e, costs[e], &slots_[i]);
    }
  };
  // Per-index slots make the parallel scan write-disjoint; the serial
  // compaction below reads them in ascending edge order, so the resulting
  // plan is bit-identical for every TN_NUM_THREADS (PR 1 contract).
  if (active.size() >= kParallelPlanEdges && tn::num_threads() > 1) {
    tn::parallel_for(active.size(), /*grain=*/0, eval_range);
  } else {
    eval_range(0, active.size());
  }
  for (std::size_t i = 0; i < active.size(); ++i)
    if (slots_[i].edge != graph::kInvalidEdge) out.push_back(slots_[i]);
  TN_OBS_COUNT("router.planned_tx", out.size());
  TN_OBS_SERIES_ADD("router.active_edges", round_, active.size());
}

std::vector<PlannedTx> BalancingRouter::plan(
    const graph::Graph& topo, std::span<const graph::EdgeId> active,
    std::span<const double> costs) const {
  std::vector<PlannedTx> txs;
  txs.reserve(active.size());
  plan_into(topo, active, costs, txs);
  return txs;
}

std::span<const graph::EdgeId> BalancingRouter::candidate_edges(
    const graph::Graph& topo) const {
  if (edge_mark_.size() < topo.num_edges()) {
    edge_mark_.assign(topo.num_edges(), 0);
    mark_epoch_ = 0;
  }
  if (mark_epoch_ == 0xffffffffu) {  // epoch wrap: reset the stamps
    std::fill(edge_mark_.begin(), edge_mark_.end(), 0);
    mark_epoch_ = 0;
  }
  const std::uint32_t epoch = ++mark_epoch_;
  candidates_.clear();
  // Serial walk (neighbors() may lazily rebuild adjacency): collect every
  // edge with at least one buffering endpoint, each exactly once.
  buffers_.for_each_active_node([&](graph::NodeId v) {
    for (const graph::Half& h : topo.neighbors(v)) {
      if (edge_mark_[h.edge] != epoch) {
        edge_mark_[h.edge] = epoch;
        candidates_.push_back(h.edge);
      }
    }
  });
  // Active-node order is arbitrary; sorting restores the canonical
  // ascending-edge-id plan order (and with it cross-thread bit-identity).
  std::sort(candidates_.begin(), candidates_.end());
  return candidates_;
}

void BalancingRouter::plan_all_edges_into(const graph::Graph& topo,
                                          std::span<const double> costs,
                                          std::vector<PlannedTx>& out) const {
  // An edge whose endpoints both buffer nothing has h = 0 on every
  // destination, so no benefit can exceed T (plan() would emit nothing for
  // it); restricting to buffer-incident edges is therefore exact.
  plan_into(topo, candidate_edges(topo), costs, out);
}

void BalancingRouter::execute(std::span<const PlannedTx> txs,
                              const std::vector<bool>& failed,
                              std::span<const double> costs, route::Time now,
                              RunMetrics& m) {
  TN_ASSERT(failed.empty() || failed.size() == txs.size());
  // Registry tallies mirror the RunMetrics deltas of this call and flush
  // once at the end — one registry touch per step, not per packet. Deltas
  // are accumulated locally (no RunMetrics snapshot copy per step).
  std::uint64_t attempted = 0;
  std::uint64_t failed_cnt = 0;
  std::uint64_t skipped = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  // Phase 1 — departures. Planned txs operate on the step-start snapshot; a
  // buffer can be drained by an earlier tx of the same step, in which case
  // the later tx is skipped (a real node would simply not transmit).
  in_air_.clear();
  for (std::size_t i = 0; i < txs.size(); ++i) {
    const PlannedTx& tx = txs[i];
    const double cost = costs[tx.edge];
    if (!failed.empty() && failed[i]) {
      // Collision: the sender transmitted (energy burnt) but the receiver
      // got nothing; the packet never left the buffer.
      ++attempted;
      ++failed_cnt;
      m.wasted_energy += cost;
      continue;
    }
    std::optional<Packet> p = buffers_.pop(tx.from, tx.dest);
    if (!p) {
      ++skipped;
      continue;
    }
    ++attempted;
    m.total_energy += cost;
    p->cost_spent += cost;
    ++p->hops;
    in_air_.push_back(InAir{*p, tx.to});
  }

  // Phase 2 — arrivals: absorb at destinations, store elsewhere, delete on
  // overflow (cannot happen for in-transit packets once T is set per
  // Theorem 3.1; the metric keeps us honest). The unicast fast path skips
  // the std::function indirection entirely.
  if (!is_dest_) {
    for (const InAir& a : in_air_) {
      if (a.to == a.p.dst) {
        ++delivered;
        m.delivered_cost += a.p.cost_spent;
        m.total_hops_delivered += a.p.hops;
        m.sum_latency += now >= a.p.injected_at ? now - a.p.injected_at : 0;
        continue;
      }
      if (!buffers_.push(a.to, a.p)) ++dropped;
    }
  } else {
    for (const InAir& a : in_air_) {
      if (is_dest_(a.to, a.p.dst)) {
        ++delivered;
        m.delivered_cost += a.p.cost_spent;
        m.total_hops_delivered += a.p.hops;
        m.sum_latency += now >= a.p.injected_at ? now - a.p.injected_at : 0;
        continue;
      }
      if (!buffers_.push(a.to, a.p)) ++dropped;
    }
  }

  m.attempted_tx += attempted;
  m.failed_tx += failed_cnt;
  m.skipped_tx += skipped;
  m.deliveries += delivered;
  m.dropped_in_transit += dropped;

  TN_OBS_COUNT("router.attempted_tx", attempted);
  TN_OBS_COUNT("router.failed_tx", failed_cnt);
  TN_OBS_COUNT("router.skipped_tx", skipped);
  TN_OBS_COUNT("router.delivered", delivered);
  TN_OBS_COUNT("router.dropped_in_transit", dropped);
  TN_OBS_SERIES_ADD("router.tx_attempted", round_, attempted);
  TN_OBS_SERIES_ADD("router.tx_failed", round_, failed_cnt);
  TN_OBS_SERIES_ADD("router.tx_skipped", round_, skipped);
  TN_OBS_SERIES_ADD("router.deliveries", round_, delivered);
  TN_OBS_SERIES_ADD("router.dropped_in_transit", round_, dropped);
}

void BalancingRouter::inject(const Packet& p, RunMetrics& m) {
  TN_ASSERT_MSG(!is_destination(p.src, p.dst),
                "cannot inject a packet at its own destination");
  ++m.injected_offered;
  TN_OBS_COUNT("router.injected", 1);
  TN_OBS_SERIES_ADD("router.injections", round_, 1);
  if (buffers_.push(p.src, p)) {
    ++m.injected_accepted;
    TN_OBS_COUNT("router.accepted", 1);
  } else {
    ++m.dropped_at_injection;
    TN_OBS_COUNT("router.dropped_at_injection", 1);
  }
}

void BalancingRouter::end_step(RunMetrics& m) {
  // The single bookkeeping path for the §3 backlog bound: the per-round
  // peak is computed once here and feeds the telemetry distribution, the
  // peak_buffer series, AND RunMetrics::peak_buffer (which
  // check_router_bounds consumes). By construction m.peak_buffer equals
  // the max of the recorded series at any downsampling level (max-of-window
  // folds are lossless for the overall max). peak_height / total_packets
  // are O(1) in the SoA bank, so end_step no longer scans the bank.
  const std::size_t h = buffers_.peak_height();
  TN_OBS_RECORD("router.round_peak_buffer", h);
  TN_OBS_COUNT("router.rounds", 1);
  TN_OBS_SERIES_MAX("router.peak_buffer", round_, h);
  TN_OBS_SERIES_MAX("router.total_buffer", round_, buffers_.total_packets());
  m.peak_buffer = std::max(m.peak_buffer, h);
  ++round_;
}

}  // namespace thetanet::core
