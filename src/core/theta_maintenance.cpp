#include "core/theta_maintenance.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "geom/angles.h"
#include "geom/spatial_grid.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace thetanet::core {

using graph::kInvalidNode;
using graph::NodeId;

namespace {

std::vector<std::pair<NodeId, NodeId>> edge_pairs(const graph::Graph& g) {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(g.num_edges());
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e)
    out.emplace_back(g.edge(e).u, g.edge(e).v);
  return out;  // already sorted: rebuild_graph_from_table adds sorted pairs
}

/// |A Δ B| for two sorted pair lists — edges added plus edges removed.
std::size_t symmetric_difference_size(
    const std::vector<std::pair<NodeId, NodeId>>& a,
    const std::vector<std::pair<NodeId, NodeId>>& b) {
  std::size_t diff = 0, i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++i, ++j;
    } else if (a[i] < b[j]) {
      ++diff, ++i;
    } else {
      ++diff, ++j;
    }
  }
  return diff + (a.size() - i) + (b.size() - j);
}

}  // namespace

ThetaMaintainer::ThetaMaintainer(topo::Deployment d, double theta)
    : d_(std::move(d)),
      theta_(theta),
      table_(topo::compute_sector_table(d_, theta)) {
  rebuild_graph_from_table();
}

void ThetaMaintainer::recompute_table_row(NodeId u,
                                          const geom::SpatialGrid& grid) {
  for (int s = 0; s < table_.sectors(); ++s)
    table_.set_nearest(u, s, kInvalidNode);
  grid.for_each_within(d_.positions[u], d_.max_range, [&](std::uint32_t v) {
    if (v == u) return;
    const int s = geom::sector_index(d_.positions[u], d_.positions[v], theta_);
    if (topo::nearer(d_, u, v, table_.nearest(u, s)))
      table_.set_nearest(u, s, v);
  });
}

std::size_t ThetaMaintainer::move_node(NodeId v, geom::Vec2 p) {
  TN_ASSERT(v < d_.size());
  const geom::Vec2 old = d_.positions[v];
  d_.positions[v] = p;

  // Affected nodes: anything in range of the old or the new position (their
  // neighbourhood gained or lost v, or v's distance to them changed), plus
  // v itself. Phase 2 is re-derived globally from the tables, which is
  // cheap, so table rows are the only per-node cost.
  const geom::SpatialGrid grid(d_.positions, std::max(d_.max_range, 1e-9));
  std::vector<NodeId> affected{v};
  grid.for_each_within(old, d_.max_range,
                       [&](std::uint32_t u) { affected.push_back(u); });
  grid.for_each_within(p, d_.max_range,
                       [&](std::uint32_t u) { affected.push_back(u); });
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());

  const std::vector<std::pair<NodeId, NodeId>> before = edge_pairs(n_);
  for (const NodeId u : affected) recompute_table_row(u, grid);
  rebuild_graph_from_table();

  // Per-move telemetry: the round index is the move number, so the
  // edge-churn series reads as rewiring per mobility step.
  const std::size_t churn = symmetric_difference_size(before, edge_pairs(n_));
  TN_OBS_COUNT("maintenance.moves", 1);
  TN_OBS_COUNT("maintenance.edge_churn_total", churn);
  TN_OBS_SERIES_ADD("maintenance.edge_churn", moves_, churn);
  TN_OBS_SERIES_ADD("maintenance.tables_recomputed", moves_, affected.size());
  ++moves_;
  return affected.size();
}

void ThetaMaintainer::rebuild_graph_from_table() {
  // Phase 2 from the tables (identical to ThetaTopology::build): every
  // selection u -> v files u as an incoming candidate at v; v admits the
  // nearest candidate per sector.
  const std::size_t n = d_.size();
  const int k = table_.sectors();
  std::vector<NodeId> admitted(n * static_cast<std::size_t>(k), kInvalidNode);
  const auto slot = [&](NodeId v, int s) {
    return static_cast<std::size_t>(v) * static_cast<std::size_t>(k) +
           static_cast<std::size_t>(s);
  };
  for (NodeId u = 0; u < n; ++u) {
    for (int s = 0; s < k; ++s) {
      const NodeId v = table_.nearest(u, s);
      if (v == kInvalidNode) continue;
      const int sv = geom::sector_index(d_.positions[v], d_.positions[u], theta_);
      NodeId& cur = admitted[slot(v, sv)];
      if (topo::nearer(d_, v, u, cur)) cur = u;
    }
  }
  n_ = graph::Graph(n);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (NodeId v = 0; v < n; ++v)
    for (int s = 0; s < k; ++s) {
      const NodeId w = admitted[slot(v, s)];
      if (w != kInvalidNode) pairs.push_back(std::minmax(v, w));
    }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  for (const auto& [a, b] : pairs) {
    const double len = d_.distance(a, b);
    n_.add_edge(a, b, len, d_.cost_of_length(len));
  }
  n_.finalize();
}

bool ThetaMaintainer::matches_full_rebuild() const {
  const ThetaTopology fresh(d_, theta_);
  if (fresh.graph().num_edges() != n_.num_edges()) return false;
  for (graph::EdgeId e = 0; e < n_.num_edges(); ++e) {
    if (fresh.graph().edge(e).u != n_.edge(e).u ||
        fresh.graph().edge(e).v != n_.edge(e).v)
      return false;
  }
  return true;
}

}  // namespace thetanet::core
