#include "core/theta_maintenance.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "geom/angles.h"
#include "geom/spatial_grid.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace thetanet::core {

using graph::kInvalidNode;
using graph::NodeId;

namespace {

std::vector<std::pair<NodeId, NodeId>> edge_pairs(const graph::Graph& g) {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(g.num_edges());
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e)
    out.emplace_back(g.edge(e).u, g.edge(e).v);
  return out;  // already sorted: rebuild_graph_from_table adds sorted pairs
}

/// |A Δ B| for two sorted pair lists — edges added plus edges removed.
std::size_t symmetric_difference_size(
    const std::vector<std::pair<NodeId, NodeId>>& a,
    const std::vector<std::pair<NodeId, NodeId>>& b) {
  std::size_t diff = 0, i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++i, ++j;
    } else if (a[i] < b[j]) {
      ++diff, ++i;
    } else {
      ++diff, ++j;
    }
  }
  return diff + (a.size() - i) + (b.size() - j);
}

}  // namespace

ThetaMaintainer::ThetaMaintainer(topo::Deployment d, double theta)
    : d_(std::move(d)),
      theta_(theta),
      table_(topo::compute_sector_table(d_, theta)),
      active_(d_.size(), 1),
      num_active_(d_.size()) {
  rebuild_graph_from_table();
}

void ThetaMaintainer::recompute_table_row(NodeId u,
                                          const geom::SpatialGrid& grid) {
  TN_DCHECK(active_[u]);
  for (int s = 0; s < table_.sectors(); ++s)
    table_.set_nearest(u, s, kInvalidNode);
  grid.for_each_within(d_.positions[u], d_.max_range, [&](std::uint32_t v) {
    if (v == u || !active_[v]) return;
    const int s = geom::sector_index(d_.positions[u], d_.positions[v], theta_);
    if (topo::nearer(d_, u, v, table_.nearest(u, s)))
      table_.set_nearest(u, s, v);
  });
}

std::vector<NodeId> ThetaMaintainer::affected_near(
    const geom::SpatialGrid& grid, geom::Vec2 center) const {
  std::vector<NodeId> out;
  grid.for_each_within(center, d_.max_range, [&](std::uint32_t u) {
    if (active_[u]) out.push_back(u);
  });
  return out;
}

void ThetaMaintainer::finish_op(
    const std::vector<std::pair<NodeId, NodeId>>& edges_before,
    std::size_t tables_recomputed) {
  // Per-operation telemetry: the round index is the operation number, so
  // the edge-churn series reads as rewiring per topology change.
  const std::size_t churn =
      symmetric_difference_size(edges_before, edge_pairs(n_));
  TN_OBS_COUNT("maintenance.moves", 1);
  TN_OBS_COUNT("maintenance.edge_churn_total", churn);
  TN_OBS_SERIES_ADD("maintenance.edge_churn", ops_, churn);
  TN_OBS_SERIES_ADD("maintenance.tables_recomputed", ops_, tables_recomputed);
  ++ops_;
}

std::size_t ThetaMaintainer::move_node(NodeId v, geom::Vec2 p) {
  TN_ASSERT(v < d_.size());
  const geom::Vec2 old = d_.positions[v];
  d_.positions[v] = p;
  if (!active_[v]) return 0;  // position bookkeeping only; no overlay change

  // Affected nodes: anything active in range of the old or the new position
  // (their neighbourhood gained or lost v, or v's distance to them changed),
  // plus v itself. Phase 2 is re-derived globally from the tables, which is
  // cheap, so table rows are the only per-node cost.
  const geom::SpatialGrid grid(d_.positions, std::max(d_.max_range, 1e-9));
  std::vector<NodeId> affected{v};
  for (const NodeId u : affected_near(grid, old)) affected.push_back(u);
  for (const NodeId u : affected_near(grid, p)) affected.push_back(u);
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());

  const std::vector<std::pair<NodeId, NodeId>> before = edge_pairs(n_);
  for (const NodeId u : affected) recompute_table_row(u, grid);
  rebuild_graph_from_table();
  finish_op(before, affected.size());
  return affected.size();
}

NodeId ThetaMaintainer::add_node(geom::Vec2 p) {
  const NodeId v = static_cast<NodeId>(d_.size());
  d_.positions.push_back(p);
  table_.resize(d_.size());
  active_.push_back(0);
  // Activation does the table work; the new row starts empty and inactive
  // so the grid scan below sees a consistent state.
  apply_liveness_change(v, /*make_active=*/true, /*recompute_neighbors=*/true);
  return v;
}

std::size_t ThetaMaintainer::deactivate_node(NodeId v) {
  TN_ASSERT(v < d_.size());
  if (!active_[v]) return 0;
  return apply_liveness_change(v, /*make_active=*/false,
                               /*recompute_neighbors=*/true);
}

std::size_t ThetaMaintainer::activate_node(NodeId v,
                                           bool recompute_neighbors) {
  TN_ASSERT(v < d_.size());
  if (active_[v]) return 0;
  return apply_liveness_change(v, /*make_active=*/true, recompute_neighbors);
}

std::size_t ThetaMaintainer::apply_liveness_change(NodeId v, bool make_active,
                                                   bool recompute_neighbors) {
  const geom::SpatialGrid grid(d_.positions, std::max(d_.max_range, 1e-9));
  active_[v] = make_active ? 1 : 0;
  if (make_active)
    ++num_active_;
  else
    --num_active_;

  // Affected rows: every active node in range of v's position (their
  // neighbourhood gained or lost v), plus v's own row. A deactivated node's
  // row is cleared so no stale selection survives.
  std::vector<NodeId> affected;
  if (make_active) affected.push_back(v);
  if (recompute_neighbors) {
    for (const NodeId u : affected_near(grid, d_.positions[v]))
      if (u != v) affected.push_back(u);
  }
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());

  const std::vector<std::pair<NodeId, NodeId>> before = edge_pairs(n_);
  if (!make_active)
    for (int s = 0; s < table_.sectors(); ++s)
      table_.set_nearest(v, s, kInvalidNode);
  for (const NodeId u : affected) recompute_table_row(u, grid);
  rebuild_graph_from_table();
  finish_op(before, affected.size());
  return affected.size();
}

void ThetaMaintainer::rebuild_graph_from_table() {
  // Phase 2 from the tables (identical to ThetaTopology::build): every
  // selection u -> v files u as an incoming candidate at v; v admits the
  // nearest candidate per sector. Inactive rows are empty, and active rows
  // never reference inactive nodes, so inactive nodes stay isolated.
  const std::size_t n = d_.size();
  const int k = table_.sectors();
  std::vector<NodeId> admitted(n * static_cast<std::size_t>(k), kInvalidNode);
  const auto slot = [&](NodeId v, int s) {
    return static_cast<std::size_t>(v) * static_cast<std::size_t>(k) +
           static_cast<std::size_t>(s);
  };
  for (NodeId u = 0; u < n; ++u) {
    for (int s = 0; s < k; ++s) {
      const NodeId v = table_.nearest(u, s);
      if (v == kInvalidNode) continue;
      const int sv = geom::sector_index(d_.positions[v], d_.positions[u], theta_);
      NodeId& cur = admitted[slot(v, sv)];
      if (topo::nearer(d_, v, u, cur)) cur = u;
    }
  }
  n_ = graph::Graph(n);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (NodeId v = 0; v < n; ++v)
    for (int s = 0; s < k; ++s) {
      const NodeId w = admitted[slot(v, s)];
      if (w != kInvalidNode) pairs.push_back(std::minmax(v, w));
    }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  for (const auto& [a, b] : pairs) {
    const double len = d_.distance(a, b);
    n_.add_edge(a, b, len, d_.cost_of_length(len));
  }
  n_.finalize();
}

topo::Deployment ThetaMaintainer::active_deployment(
    std::vector<NodeId>* ids) const {
  topo::Deployment out;
  out.max_range = d_.max_range;
  out.kappa = d_.kappa;
  out.positions.reserve(num_active_);
  if (ids) {
    ids->clear();
    ids->reserve(num_active_);
  }
  for (NodeId v = 0; v < d_.size(); ++v)
    if (active_[v]) {
      out.positions.push_back(d_.positions[v]);
      if (ids) ids->push_back(v);
    }
  return out;
}

bool ThetaMaintainer::matches_full_rebuild() const {
  std::vector<NodeId> ids;
  const topo::Deployment compact = active_deployment(&ids);
  if (compact.size() < 2) return n_.num_edges() == 0;
  const ThetaTopology fresh(compact, theta_);
  if (fresh.graph().num_edges() != n_.num_edges()) return false;
  // ids is ascending, so mapping fresh's compact endpoints preserves both
  // the per-edge (min, max) orientation and the sorted edge order.
  std::vector<std::pair<NodeId, NodeId>> fresh_pairs;
  fresh_pairs.reserve(fresh.graph().num_edges());
  for (graph::EdgeId e = 0; e < fresh.graph().num_edges(); ++e)
    fresh_pairs.emplace_back(ids[fresh.graph().edge(e).u],
                             ids[fresh.graph().edge(e).v]);
  std::sort(fresh_pairs.begin(), fresh_pairs.end());
  return fresh_pairs == edge_pairs(n_);
}

}  // namespace thetanet::core
