#pragma once
// The honeycomb algorithm of Section 3.4: medium access for nodes with the
// same *fixed* transmission strength (range normalized to 1).
//
// The plane is tiled by hexagons of side length 3 + 2*Delta (Figure 5).
// Every directed sender-receiver pair (s, t) with |st| <= 1 is assigned to
// the hexagon containing s and carries a *benefit* — the maximum buffer
// height difference over all destinations (the balancing benefit). Within
// each hexagon the pair of maximum benefit becomes a *contestant* if its
// benefit exceeds T; each contestant transmits with probability p_t <= 1/6,
// which by Lemma 3.7 lets every contestant succeed with probability >= 1/2.
// The honeycomb algorithm is the contestant selection plus the
// (T, gamma, 3)-balancing rule applied to contestants (Theorem 3.8 —
// constant-competitive throughput).

#include <span>
#include <vector>

#include "core/balancing_router.h"
#include "geom/hex_tiling.h"
#include "geom/rng.h"
#include "graph/graph.h"
#include "topology/deployment.h"

namespace thetanet::core {

struct HoneycombParams {
  double delta = 1.0;      ///< guard zone Delta (> 0)
  double p_t = 1.0 / 6.0;  ///< contestant transmission probability (<= 1/6)
  /// Ablation hook: override the hexagon side (paper value 3 + 2*Delta when
  /// 0). Shrinking the side below the paper's value violates Lemma 3.7's
  /// independence precondition — bench E9b measures the resulting collision
  /// inflation. The guard distance used by resolve() stays 1 + delta.
  double side_override = 0.0;
};

class HoneycombMac {
 public:
  /// `unit_graph` must be the transmission graph of `d` with max_range = 1
  /// (the fixed transmission radius).
  HoneycombMac(const topo::Deployment& d, const graph::Graph& unit_graph,
               const HoneycombParams& params);

  const geom::HexTiling& tiling() const { return tiling_; }
  const HoneycombParams& params() const { return params_; }

  /// Per-step outcome statistics for Lemmas 3.6/3.7 instrumentation.
  struct SelectionStats {
    std::size_t candidate_pairs = 0;  ///< directed pairs with benefit > T
    std::size_t contestants = 0;      ///< hexagon winners
    double contestant_benefit_sum = 0.0;
    double candidate_benefit_sum = 0.0;
  };

  /// Contestant selection: per hexagon, the max-benefit pair (if its benefit
  /// clears the router's threshold T), then a p_t coin per contestant.
  std::vector<PlannedTx> select(const BalancingRouter& router,
                                std::span<const double> costs, geom::Rng& rng,
                                SelectionStats* stats = nullptr) const;

  /// Fixed-strength interference: transmission (s_i, t_i) fails iff some
  /// node of another transmitting pair is within distance 1 + Delta of s_i
  /// or t_i.
  std::vector<bool> resolve(std::span<const PlannedTx> txs) const;

 private:
  const topo::Deployment* deployment_;
  const graph::Graph* unit_graph_;
  HoneycombParams params_;
  geom::HexTiling tiling_;
};

}  // namespace thetanet::core
