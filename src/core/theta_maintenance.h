#pragma once
// Incremental maintenance of ThetaALG's topology under node motion — the
// "maintain" half of the paper's abstract ("a simple local algorithm allows
// to establish AND MAINTAIN a connected constant degree overlay network").
//
// When a node moves, only nodes within transmission range of its old or new
// position can change their phase-1 sector tables (nearest-per-sector is a
// function of the in-range neighbourhood only). The maintainer recomputes
// exactly those tables and re-derives phase 2 — the admission pass is O(n·k)
// table scanning, negligible next to the neighbourhood scans. The
// `tables_recomputed` return value is the locality witness: for local moves
// it is ~ the neighbourhood size, not n (bench E18 measures the ratio).

#include <cstdint>

#include "core/theta_topology.h"
#include "geom/spatial_grid.h"

namespace thetanet::core {

class ThetaMaintainer {
 public:
  /// Takes ownership of a copy of the deployment (positions evolve inside).
  ThetaMaintainer(topo::Deployment d, double theta);

  const topo::Deployment& deployment() const { return d_; }
  double theta() const { return theta_; }

  /// The current topology N (rebuilt from the tables after each move).
  const graph::Graph& graph() const { return n_; }

  /// Move node v to `p`, updating only the affected sector tables.
  /// Returns the number of per-node table recomputations performed (the
  /// full rebuild would always perform n).
  std::size_t move_node(graph::NodeId v, geom::Vec2 p);

  /// Moves applied so far. Each move is one round of the
  /// `maintenance.edge_churn` telemetry series (edges added + removed by
  /// that move — the overlay's rewiring rate under mobility).
  std::uint64_t moves() const { return moves_; }

  /// Audit: does the incrementally maintained topology equal a from-scratch
  /// ThetaTopology of the current deployment?
  bool matches_full_rebuild() const;

 private:
  void recompute_table_row(graph::NodeId u, const geom::SpatialGrid& grid);
  void rebuild_graph_from_table();

  topo::Deployment d_;
  double theta_;
  topo::SectorTable table_;
  graph::Graph n_;
  std::uint64_t moves_ = 0;
};

}  // namespace thetanet::core
