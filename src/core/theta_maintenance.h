#pragma once
// Incremental maintenance of ThetaALG's topology under node motion AND
// membership change — the "maintain" half of the paper's abstract ("a simple
// local algorithm allows to establish AND MAINTAIN a connected constant
// degree overlay network"). Section 2.4 argues the maintenance cost of any
// single change is local; Lemma 2.9's replacement machinery presupposes the
// overlay tracks the *current* node set, so joins, departures, crashes, and
// duty-cycle sleep/wake are first-class operations here, not rebuilds.
//
// When a node moves, joins, or changes liveness, only nodes within
// transmission range of its old or new position can change their phase-1
// sector tables (nearest-per-sector is a function of the in-range *active*
// neighbourhood only). The maintainer recomputes exactly those tables and
// re-derives phase 2 — the admission pass is O(n·k) table scanning,
// negligible next to the neighbourhood scans. The `tables_recomputed`
// return value is the locality witness: for local changes it is ~ the
// neighbourhood size, not n (bench E18 measures the ratio).
//
// Liveness model: every node is active or inactive. Inactive nodes keep a
// slot (ids are stable — the dynamics layer and its event schedules address
// nodes by id) but are invisible to the overlay: their table rows are empty,
// no active row references them, and the maintained graph never carries an
// edge into one. Leave, crash, and sleep all map to deactivate_node();
// wake maps to activate_node(); join appends via add_node(). The semantic
// difference (permanent vs temporary) is the caller's bookkeeping
// (sim::DynamicsEngine tracks it).

#include <cstdint>
#include <vector>

#include "core/theta_topology.h"
#include "geom/spatial_grid.h"

namespace thetanet::core {

class ThetaMaintainer {
 public:
  /// Takes ownership of a copy of the deployment (positions evolve inside).
  /// Every node starts active.
  ThetaMaintainer(topo::Deployment d, double theta);

  const topo::Deployment& deployment() const { return d_; }
  double theta() const { return theta_; }

  /// The current topology N over the active nodes (rebuilt from the tables
  /// after each operation). Node ids span the whole deployment; inactive
  /// nodes are isolated.
  const graph::Graph& graph() const { return n_; }

  bool active(graph::NodeId v) const { return active_[v] != 0; }
  std::size_t num_active() const { return num_active_; }

  /// Move node v to `p`, updating only the affected sector tables.
  /// Returns the number of per-node table recomputations performed (the
  /// full rebuild would always perform num_active). Moving an inactive node
  /// just updates its stored position (0 recomputations, no overlay change).
  std::size_t move_node(graph::NodeId v, geom::Vec2 p);

  /// Append a new active node at `p` (a join). Returns its id.
  graph::NodeId add_node(geom::Vec2 p);

  /// Remove node v from the overlay (leave / crash / sleep). Its slot and
  /// position survive so it can be re-activated. No-op if already inactive.
  /// Returns table recomputations performed.
  std::size_t deactivate_node(graph::NodeId v);

  /// Re-insert node v at its current position (wake / rejoin). No-op if
  /// already active. `recompute_neighbors = false` is a TEST-ONLY hook that
  /// deliberately skips the neighbourhood-row updates — the planted
  /// maintenance bug the conformance-under-churn mutation tests must catch;
  /// production callers always use the default.
  std::size_t activate_node(graph::NodeId v, bool recompute_neighbors = true);

  /// Compact copy of the active nodes (ascending id order). When `ids` is
  /// non-null it receives, per compact index, the original node id.
  topo::Deployment active_deployment(
      std::vector<graph::NodeId>* ids = nullptr) const;

  /// Topology operations applied so far (moves + joins + liveness flips).
  /// Each is one round of the `maintenance.edge_churn` telemetry series
  /// (edges added + removed by that operation — the overlay's rewiring rate
  /// under dynamics).
  std::uint64_t ops() const { return ops_; }

  /// Audit: does the incrementally maintained topology equal a from-scratch
  /// ThetaTopology of the *active* sub-deployment? (Edge-identical under
  /// the compact-id mapping; the temporal conformance checkers re-run this
  /// after every event batch.)
  bool matches_full_rebuild() const;

 private:
  void recompute_table_row(graph::NodeId u, const geom::SpatialGrid& grid);
  void rebuild_graph_from_table();
  std::size_t apply_liveness_change(graph::NodeId v, bool make_active,
                                    bool recompute_neighbors);
  std::vector<graph::NodeId> affected_near(const geom::SpatialGrid& grid,
                                           geom::Vec2 center) const;
  void finish_op(const std::vector<std::pair<graph::NodeId, graph::NodeId>>&
                     edges_before,
                 std::size_t tables_recomputed);

  topo::Deployment d_;
  double theta_;
  topo::SectorTable table_;
  graph::Graph n_;
  std::vector<std::uint8_t> active_;
  std::size_t num_active_ = 0;
  std::uint64_t ops_ = 0;
};

}  // namespace thetanet::core
