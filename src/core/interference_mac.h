#pragma once
// The randomized symmetry-breaking MAC of Section 3.3. Every edge e of the
// topology knows an upper bound
//
//     I_e = max { |I(e')| : e' in I(e) or e' = e }
//
// on the interference number of any edge it interferes with, and
// self-activates each step with probability 1/(2 * I_e). Lemma 3.2: an
// active edge then collides with other active edges with probability at
// most 1/2. Active edges are handed to the (T, gamma)-balancing router;
// the combination is the (T, gamma, I)-balancing algorithm of Theorem 3.3.

#include <span>
#include <vector>

#include "core/balancing_router.h"
#include "geom/rng.h"
#include "graph/graph.h"
#include "interference/model.h"
#include "topology/deployment.h"

namespace thetanet::core {

class RandomizedMac {
 public:
  RandomizedMac(const graph::Graph& topo, const topo::Deployment& d,
                const interf::InterferenceModel& model);

  /// I = max_e I_e (the worst bound any edge uses).
  std::uint32_t interference_bound() const { return max_bound_; }

  /// The per-edge activation probability 1/(2 * I_e).
  double activation_prob(graph::EdgeId e) const {
    return 1.0 / (2.0 * static_cast<double>(bounds_[e]));
  }

  /// Sample this step's active edge set.
  std::vector<graph::EdgeId> activate(geom::Rng& rng) const;

  /// Collision outcome for the transmissions the router actually makes:
  /// tx i fails iff some other transmitting edge interferes with it
  /// (Section 2.4 success condition).
  std::vector<bool> resolve(std::span<const PlannedTx> txs) const;

 private:
  const graph::Graph* topo_;
  const topo::Deployment* deployment_;
  interf::InterferenceModel model_;
  std::vector<std::uint32_t> bounds_;  ///< I_e per edge (>= 1)
  std::uint32_t max_bound_ = 1;
};

/// Ablation baseline: interference-oblivious slotted ALOHA. Every edge
/// self-activates with the same fixed probability p, ignoring the
/// interference structure entirely. Contrast with RandomizedMac: without
/// the 1/(2*I_e) scaling, Lemma 3.2's <= 1/2 collision guarantee evaporates
/// — at p anywhere near the ALOHA throughput optimum, dense regions jam
/// (bench E7b measures the collapse).
class SlottedAlohaMac {
 public:
  SlottedAlohaMac(const graph::Graph& topo, const topo::Deployment& d,
                  const interf::InterferenceModel& model, double p)
      : topo_(&topo), deployment_(&d), model_(model), p_(p) {
    TN_ASSERT(p > 0.0 && p <= 1.0);
  }

  double activation_prob() const { return p_; }

  std::vector<graph::EdgeId> activate(geom::Rng& rng) const {
    std::vector<graph::EdgeId> active;
    for (graph::EdgeId e = 0; e < topo_->num_edges(); ++e)
      if (rng.bernoulli(p_)) active.push_back(e);
    return active;
  }

  std::vector<bool> resolve(std::span<const PlannedTx> txs) const {
    std::vector<graph::EdgeId> edges;
    edges.reserve(txs.size());
    for (const PlannedTx& tx : txs) edges.push_back(tx.edge);
    return interf::failed_transmissions(edges, *topo_, *deployment_, model_);
  }

 private:
  const graph::Graph* topo_;
  const topo::Deployment* deployment_;
  interf::InterferenceModel model_;
  double p_;
};

}  // namespace thetanet::core
