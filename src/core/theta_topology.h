#pragma once
// ThetaALG (Section 2.1): the paper's local topology-control algorithm,
// originally proposed by Li et al. [32]. Phase 1 computes, per node u, the
// set N(u) of nearest in-range neighbours per theta-sector (the Yao graph
// N_1). Phase 2 bounds in-degree: each node admits, per sector, only the
// *shortest* incoming phase-1 edge. The resulting topology N is connected
// with maximum degree <= 4*pi/theta (Lemma 2.1), has O(1) energy-stretch on
// arbitrary deployments (Theorem 2.2), and O(1) distance-stretch on
// civilized deployments (Theorem 2.7).
//
// This class also provides the theta-path replacement of Lemma 2.9 /
// Theorem 2.8: any transmission-graph edge maps to a short path in N such
// that, over any non-interfering edge set T, each N edge is reused at most a
// constant number of times (the paper proves <= 6 per theta-path family).

#include <span>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "topology/deployment.h"
#include "topology/yao.h"

namespace thetanet::core {

class ThetaTopology {
 public:
  /// Run ThetaALG on the deployment with sector angle theta (<= pi/3).
  ThetaTopology(const topo::Deployment& d, double theta);

  double theta() const { return theta_; }
  int sectors() const { return table_.sectors(); }
  const topo::Deployment& deployment() const { return *deployment_; }

  /// The topology N produced by phase 2.
  const graph::Graph& graph() const { return n_; }

  /// The phase-1 Yao graph N_1 (materialized on demand).
  graph::Graph yao_graph() const;

  /// Phase-1 sector table: nearest in-range node per sector.
  const topo::SectorTable& sector_table() const { return table_; }

  /// Phase-2 admission: the node w whose incoming edge node v admitted in
  /// v's sector s (kInvalidNode if no selector in that sector). Edge (v, w)
  /// is guaranteed to be in N.
  graph::NodeId admitted(graph::NodeId v, int s) const {
    return admitted_[static_cast<std::size_t>(v) *
                         static_cast<std::size_t>(table_.sectors()) +
                     static_cast<std::size_t>(s)];
  }

  /// True iff u selected v in phase 1 (v in N(u)).
  bool selects(graph::NodeId u, graph::NodeId v) const {
    return table_.selects(u, v, *deployment_, theta_);
  }

  /// The replacement path of Lemma 2.9: a sequence of N edge ids forming a
  /// connected u..v path, defined for any G* edge (u, v) (|uv| <= D). The
  /// recursion mirrors the constructive proof of Theorem 2.8.
  std::vector<graph::EdgeId> replacement_path(graph::NodeId u,
                                              graph::NodeId v) const;

  /// Max number of distinct replacement paths (one per edge of `matching`)
  /// that share any single N edge — the empirical constant of Lemma 2.9.
  std::uint32_t max_replacement_reuse(
      std::span<const std::pair<graph::NodeId, graph::NodeId>> matching) const;

 private:
  void build();
  void replacement_path_rec(graph::NodeId u, graph::NodeId v,
                            std::vector<graph::EdgeId>& out, int depth) const;

  const topo::Deployment* deployment_;
  double theta_;
  topo::SectorTable table_;
  std::vector<graph::NodeId> admitted_;  ///< node x sector, row-major
  graph::Graph n_;
};

}  // namespace thetanet::core
