#include "core/honeycomb.h"

#include <algorithm>
#include <unordered_map>

#include "common/assert.h"

namespace thetanet::core {

HoneycombMac::HoneycombMac(const topo::Deployment& d,
                           const graph::Graph& unit_graph,
                           const HoneycombParams& params)
    : deployment_(&d),
      unit_graph_(&unit_graph),
      params_(params),
      tiling_(params.side_override > 0.0 ? params.side_override
                                         : 3.0 + 2.0 * params.delta) {
  TN_ASSERT_MSG(params.delta > 0.0, "guard zone Delta must be positive");
  TN_ASSERT_MSG(params.p_t > 0.0 && params.p_t <= 1.0 / 6.0 + 1e-12,
                "Lemma 3.7 requires p_t <= 1/6");
}

std::vector<PlannedTx> HoneycombMac::select(const BalancingRouter& router,
                                            std::span<const double> costs,
                                            geom::Rng& rng,
                                            SelectionStats* stats) const {
  // Per-hexagon maximum-benefit pair. Pairs are scanned in deterministic
  // (edge id, direction) order; strictly larger benefit wins, so ties keep
  // the earliest pair — "breaking ties in an arbitrary way" per the paper.
  std::unordered_map<geom::HexCell, PlannedTx, geom::HexCellHash> winner;
  SelectionStats local;
  for (graph::EdgeId e = 0; e < unit_graph_->num_edges(); ++e) {
    const graph::Edge& edge = unit_graph_->edge(e);
    for (const bool forward : {true, false}) {
      const graph::NodeId s = forward ? edge.u : edge.v;
      const graph::NodeId t = forward ? edge.v : edge.u;
      const std::optional<PlannedTx> tx =
          router.best_for_pair(s, t, e, costs[e]);
      if (!tx) continue;
      ++local.candidate_pairs;
      local.candidate_benefit_sum += tx->benefit;
      const geom::HexCell cell = tiling_.cell_of(deployment_->positions[s]);
      const auto it = winner.find(cell);
      if (it == winner.end() || tx->benefit > it->second.benefit)
        winner[cell] = *tx;
    }
  }

  std::vector<PlannedTx> chosen;
  chosen.reserve(winner.size());
  for (const auto& [cell, tx] : winner) {
    ++local.contestants;
    local.contestant_benefit_sum += tx.benefit;
    if (rng.bernoulli(params_.p_t)) chosen.push_back(tx);
  }
  // Deterministic execution order regardless of hash-map iteration.
  std::sort(chosen.begin(), chosen.end(),
            [](const PlannedTx& a, const PlannedTx& b) {
              return a.edge < b.edge || (a.edge == b.edge && a.from < b.from);
            });
  if (stats != nullptr) *stats = local;
  return chosen;
}

std::vector<bool> HoneycombMac::resolve(std::span<const PlannedTx> txs) const {
  const double guard = 1.0 + params_.delta;
  const double guard_sq = guard * guard;
  std::vector<bool> failed(txs.size(), false);
  for (std::size_t i = 0; i < txs.size(); ++i) {
    const geom::Vec2 si = deployment_->positions[txs[i].from];
    const geom::Vec2 ti = deployment_->positions[txs[i].to];
    for (std::size_t j = 0; j < txs.size() && !failed[i]; ++j) {
      if (i == j) continue;
      const geom::Vec2 sj = deployment_->positions[txs[j].from];
      const geom::Vec2 tj = deployment_->positions[txs[j].to];
      // (s_i, t_i) succeeds only if every node of every other pair keeps a
      // distance of more than 1 + Delta from both s_i and t_i.
      if (geom::dist_sq(sj, si) <= guard_sq || geom::dist_sq(sj, ti) <= guard_sq ||
          geom::dist_sq(tj, si) <= guard_sq || geom::dist_sq(tj, ti) <= guard_sq)
        failed[i] = true;
    }
  }
  return failed;
}

}  // namespace thetanet::core
