#pragma once
// ThetaALG's three-round construction under medium contention. Section 2.1
// closes with: "the three rounds of message exchanges may take a variable
// amount of time due to the interference and confliction." This module
// quantifies that remark: the Position / Neighborhood / Connection messages
// are delivered over a slotted random-access medium where simultaneous
// transmissions within range of a receiver collide, and we count how many
// slots each logical round actually needs.
//
// Medium model (slotted ALOHA with receiver-side collisions):
//   * per slot, every node with pending outgoing messages transmits with
//     probability p (broadcast at max power, range D);
//   * receiver v gets the message iff exactly one node within distance D of
//     v transmitted in that slot and v itself stayed silent (half-duplex);
//   * round k+1 starts only after round k completed network-wide (the
//     conservative synchronous reading of the paper's description).

#include <cstdint>

#include "geom/rng.h"
#include "topology/deployment.h"

namespace thetanet::core {

struct ContentionStats {
  std::size_t slots_round1 = 0;  ///< Position broadcasts complete
  std::size_t slots_round2 = 0;  ///< Neighborhood unicasts complete
  std::size_t slots_round3 = 0;  ///< Connection unicasts complete
  std::size_t transmissions = 0; ///< total transmission attempts
  std::size_t collisions = 0;    ///< receiver-side losses observed
  bool matches_centralized = false;  ///< resulting edge set equals ThetaTopology
  std::size_t total_slots() const {
    return slots_round1 + slots_round2 + slots_round3;
  }
};

/// Run the contention simulation. `p` is the per-slot transmission
/// probability (the interesting regime is p ~ 1/(expected neighbourhood
/// size); bench E13 sweeps it). `max_slots_per_round` aborts pathological
/// parameterizations (stats then report the truncated counts and
/// matches_centralized = false).
ContentionStats run_contention_protocol(const topo::Deployment& d, double theta,
                                        double p, geom::Rng& rng,
                                        std::size_t max_slots_per_round = 200000);

}  // namespace thetanet::core
