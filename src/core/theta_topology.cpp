#include "core/theta_topology.h"

#include <algorithm>
#include <limits>

#include "common/arena.h"
#include "common/parallel.h"
#include "geom/angles.h"
#include "geom/spatial_grid.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace thetanet::core {

using graph::kInvalidNode;
using graph::NodeId;

ThetaTopology::ThetaTopology(const topo::Deployment& d, double theta)
    : deployment_(&d), theta_(theta) {
  TN_OBS_SPAN("theta.build");
  {
    // Phase 1: every node picks its nearest in-range neighbour per sector.
    TN_OBS_SPAN("theta.phase1");
    table_ = topo::compute_sector_table(d, theta);
  }
  {
    TN_OBS_SPAN("theta.phase2");
    build();
  }
}

void ThetaTopology::build() {
  const topo::Deployment& d = *deployment_;
  const std::size_t n = d.size();
  const int k = table_.sectors();
  admitted_.assign(n * static_cast<std::size_t>(k), kInvalidNode);

  // Phase 2: every phase-1 selection u -> v (v = nearest to u in some sector
  // of u) is an *incoming candidate* at v, filed under v's sector containing
  // u; v admits only the nearest candidate per sector.
  const auto slot = [&](NodeId v, int s) {
    return static_cast<std::size_t>(v) * static_cast<std::size_t>(k) +
           static_cast<std::size_t>(s);
  };
  // Candidate discovery (the sector_index trigonometry) runs in parallel
  // over selectors u; the admission min-merge is a serial fold. The fold is
  // order-insensitive anyway — topo::nearer is a strict total order, so the
  // admitted candidate per slot is the unique minimum — but chunk-ordered
  // concatenation makes the merge sequence itself deterministic too. Each
  // candidate carries its squared distance (the discovery loop has both
  // endpoints in hand anyway), so the fold is a pure compare against the
  // per-slot running minimum instead of two position gathers per candidate.
  struct Candidate {
    std::uint32_t slot;
    NodeId u;
    double d2;  // dist_sq(positions[v], positions[u]), as topo::nearer uses
  };
  TN_DCHECK(n * static_cast<std::size_t>(k) <= 0xffffffffu);
  const std::vector<Candidate> candidates = tn::parallel_reduce(
      n, 256, std::vector<Candidate>{},
      [&](std::size_t begin, std::size_t end) {
        std::vector<Candidate> out;
        for (std::size_t ui = begin; ui < end; ++ui) {
          const auto u = static_cast<NodeId>(ui);
          for (int s = 0; s < k; ++s) {
            const NodeId v = table_.nearest(u, s);
            if (v == kInvalidNode) continue;
            const int sv =
                geom::sector_index(d.positions[v], d.positions[u], theta_);
            out.push_back({static_cast<std::uint32_t>(slot(v, sv)), u,
                           geom::dist_sq(d.positions[v], d.positions[u])});
          }
        }
        return out;
      },
      [](std::vector<Candidate> acc, std::vector<Candidate> part) {
        acc.insert(acc.end(), part.begin(), part.end());
        return acc;
      });
  TN_OBS_COUNT("theta.candidates", candidates.size());
  {
    // Arena-backed per-slot minimum distance, recycled across builds.
    tn::ScratchScope scope;
    std::span<double> best_d2 =
        scope.arena().alloc_span<double>(n * static_cast<std::size_t>(k));
    std::fill(best_d2.begin(), best_d2.end(),
              std::numeric_limits<double>::infinity());
    for (const Candidate& c : candidates) {
      NodeId& cur = admitted_[c.slot];
      double& bd = best_d2[c.slot];
      // Same (dist_sq, id) strict order as topo::nearer; an empty slot has
      // bd == inf, which any finite candidate beats.
      if (c.d2 < bd || (c.d2 == bd && c.u < cur)) {
        bd = c.d2;
        cur = c.u;
      }
    }
  }

  // Materialize N: one edge per admission, deduplicated (an edge can be
  // admitted from both sides).
  n_ = graph::Graph(n);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (NodeId v = 0; v < n; ++v) {
    for (int s = 0; s < k; ++s) {
      const NodeId w = admitted_[slot(v, s)];
      if (w == kInvalidNode) continue;
      pairs.push_back(std::minmax(v, w));
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  TN_OBS_COUNT("theta.edges", pairs.size());
  n_.reserve_edges(pairs.size());
  for (const auto& [a, b] : pairs) {
    const double len = d.distance(a, b);
    n_.add_edge(a, b, len, d.cost_of_length(len));
  }
  n_.finalize();
}

graph::Graph ThetaTopology::yao_graph() const {
  return topo::yao_graph(*deployment_, theta_, table_);
}

std::vector<graph::EdgeId> ThetaTopology::replacement_path(NodeId u,
                                                           NodeId v) const {
  TN_ASSERT(u != v);
  TN_ASSERT_MSG(deployment_->in_range(u, v),
                "replacement_path requires a transmission-graph edge");
  std::vector<graph::EdgeId> out;
  replacement_path_rec(u, v, out, 0);
  return out;
}

void ThetaTopology::replacement_path_rec(NodeId u, NodeId v,
                                         std::vector<graph::EdgeId>& out,
                                         int depth) const {
  // Recursion strictly decreases |uv| over a finite set of pairs; the depth
  // guard is a safety net against degenerate inputs (e.g. duplicate points,
  // which violate the unique-distance precondition). Dense clusters can
  // legitimately produce long case-1 chains, so the guard is generous.
  TN_ASSERT_MSG(depth < 65536, "theta-path recursion too deep");
  const topo::Deployment& d = *deployment_;

  const graph::EdgeId direct = n_.find_edge(u, v);
  if (direct != graph::kInvalidEdge) {
    out.push_back(direct);
    return;
  }

  if (selects(u, v)) {
    // u -> v selected but not admitted: v admitted a nearer selector w in
    // the sector of v containing u; (v, w) is an N edge and |uw| < |uv|.
    const int sv = geom::sector_index(d.positions[v], d.positions[u], theta_);
    const NodeId w = admitted(v, sv);
    TN_ASSERT(w != kInvalidNode && w != u);
    replacement_path_rec(u, w, out, depth + 1);
    const graph::EdgeId e = n_.find_edge(w, v);
    TN_ASSERT(e != graph::kInvalidEdge);
    out.push_back(e);
    return;
  }
  if (selects(v, u)) {
    // Mirror image: u admitted a nearer selector w in u's sector towards v.
    const int su = geom::sector_index(d.positions[u], d.positions[v], theta_);
    const NodeId w = admitted(u, su);
    TN_ASSERT(w != kInvalidNode && w != v);
    const graph::EdgeId e = n_.find_edge(u, w);
    TN_ASSERT(e != graph::kInvalidEdge);
    out.push_back(e);
    replacement_path_rec(w, v, out, depth + 1);
    return;
  }

  // v is not u's nearest in S(u, v): hop to that nearest node w, then close
  // the (shorter) gap w -> v recursively.
  const int su = geom::sector_index(d.positions[u], d.positions[v], theta_);
  const NodeId w = table_.nearest(u, su);
  TN_ASSERT(w != kInvalidNode && w != v);
  replacement_path_rec(u, w, out, depth + 1);
  replacement_path_rec(w, v, out, depth + 1);
}

std::uint32_t ThetaTopology::max_replacement_reuse(
    std::span<const std::pair<NodeId, NodeId>> matching) const {
  std::vector<std::uint32_t> uses(n_.num_edges(), 0);
  std::uint32_t best = 0;
  std::vector<bool> counted(n_.num_edges(), false);
  for (const auto& [u, v] : matching) {
    const std::vector<graph::EdgeId> path = replacement_path(u, v);
    // A path may revisit an edge; a single replacement path counts once per
    // edge (the lemma counts paths, not traversals).
    std::fill(counted.begin(), counted.end(), false);
    for (const graph::EdgeId e : path) {
      if (counted[e]) continue;
      counted[e] = true;
      best = std::max(best, ++uses[e]);
    }
  }
  return best;
}

}  // namespace thetanet::core
