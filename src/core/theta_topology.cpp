#include "core/theta_topology.h"

#include <algorithm>
#include <utility>

#include "geom/angles.h"
#include "obs/span.h"

namespace thetanet::core {

using graph::kInvalidNode;
using graph::NodeId;

ThetaTopology::ThetaTopology(const topo::Deployment& d, double theta)
    : deployment_(&d), theta_(theta) {
  TN_OBS_SPAN("theta.build");
  {
    // Phase 1: every node picks its nearest in-range neighbour per sector.
    TN_OBS_SPAN("theta.phase1");
    table_ = topo::compute_sector_table(d, theta);
  }
  {
    TN_OBS_SPAN("theta.phase2");
    build();
  }
}

void ThetaTopology::build() {
  // Phase 2 lives in the topology layer (topo::theta_phase2) so the builder
  // registry can construct N without a core dependency; this class keeps the
  // admission table for the replacement-path machinery.
  topo::ThetaAdmission adm = topo::theta_phase2(*deployment_, theta_, table_);
  admitted_ = std::move(adm.admitted);
  n_ = std::move(adm.n);
}

graph::Graph ThetaTopology::yao_graph() const {
  return topo::yao_graph(*deployment_, theta_, table_);
}

std::vector<graph::EdgeId> ThetaTopology::replacement_path(NodeId u,
                                                           NodeId v) const {
  TN_ASSERT(u != v);
  TN_ASSERT_MSG(deployment_->in_range(u, v),
                "replacement_path requires a transmission-graph edge");
  std::vector<graph::EdgeId> out;
  replacement_path_rec(u, v, out, 0);
  return out;
}

void ThetaTopology::replacement_path_rec(NodeId u, NodeId v,
                                         std::vector<graph::EdgeId>& out,
                                         int depth) const {
  // Recursion strictly decreases |uv| over a finite set of pairs; the depth
  // guard is a safety net against degenerate inputs (e.g. duplicate points,
  // which violate the unique-distance precondition). Dense clusters can
  // legitimately produce long case-1 chains, so the guard is generous.
  TN_ASSERT_MSG(depth < 65536, "theta-path recursion too deep");
  const topo::Deployment& d = *deployment_;

  const graph::EdgeId direct = n_.find_edge(u, v);
  if (direct != graph::kInvalidEdge) {
    out.push_back(direct);
    return;
  }

  if (selects(u, v)) {
    // u -> v selected but not admitted: v admitted a nearer selector w in
    // the sector of v containing u; (v, w) is an N edge and |uw| < |uv|.
    const int sv = geom::sector_index(d.positions[v], d.positions[u], theta_);
    const NodeId w = admitted(v, sv);
    TN_ASSERT(w != kInvalidNode && w != u);
    replacement_path_rec(u, w, out, depth + 1);
    const graph::EdgeId e = n_.find_edge(w, v);
    TN_ASSERT(e != graph::kInvalidEdge);
    out.push_back(e);
    return;
  }
  if (selects(v, u)) {
    // Mirror image: u admitted a nearer selector w in u's sector towards v.
    const int su = geom::sector_index(d.positions[u], d.positions[v], theta_);
    const NodeId w = admitted(u, su);
    TN_ASSERT(w != kInvalidNode && w != v);
    const graph::EdgeId e = n_.find_edge(u, w);
    TN_ASSERT(e != graph::kInvalidEdge);
    out.push_back(e);
    replacement_path_rec(w, v, out, depth + 1);
    return;
  }

  // v is not u's nearest in S(u, v): hop to that nearest node w, then close
  // the (shorter) gap w -> v recursively.
  const int su = geom::sector_index(d.positions[u], d.positions[v], theta_);
  const NodeId w = table_.nearest(u, su);
  TN_ASSERT(w != kInvalidNode && w != v);
  replacement_path_rec(u, w, out, depth + 1);
  replacement_path_rec(w, v, out, depth + 1);
}

std::uint32_t ThetaTopology::max_replacement_reuse(
    std::span<const std::pair<NodeId, NodeId>> matching) const {
  std::vector<std::uint32_t> uses(n_.num_edges(), 0);
  std::uint32_t best = 0;
  std::vector<bool> counted(n_.num_edges(), false);
  for (const auto& [u, v] : matching) {
    const std::vector<graph::EdgeId> path = replacement_path(u, v);
    // A path may revisit an edge; a single replacement path counts once per
    // edge (the lemma counts paths, not traversals).
    std::fill(counted.begin(), counted.end(), false);
    for (const graph::EdgeId e : path) {
      if (counted[e]) continue;
      counted[e] = true;
      best = std::max(best, ++uses[e]);
    }
  }
  return best;
}

}  // namespace thetanet::core
