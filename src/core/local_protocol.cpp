#include "core/local_protocol.h"

#include <algorithm>
#include <utility>

#include "geom/angles.h"
#include "geom/spatial_grid.h"
#include "topology/yao.h"

namespace thetanet::core {

using graph::kInvalidNode;
using graph::NodeId;

ProtocolStats run_local_protocol(const topo::Deployment& d, double theta) {
  ProtocolStats stats;
  const std::size_t n = d.size();
  const int k = geom::sector_count(theta);
  const geom::SpatialGrid grid(d.positions, std::max(d.max_range, 1e-9));

  // Round 1 — Position broadcasts. Node u learns the position of every node
  // whose broadcast it can hear (distance <= D; symmetric ranges).
  std::vector<std::vector<NodeId>> heard(n);
  for (NodeId u = 0; u < n; ++u) {
    ++stats.position_msgs;
    heard[u] = grid.within(d.positions[u], d.max_range, u);
  }

  // Round 2 — each node computes N(u) purely from what it heard and sends a
  // Neighborhood message to every member of N(u).
  std::vector<std::vector<NodeId>> selectors(n);  // selectors[v] = {u : v in N(u)}
  for (NodeId u = 0; u < n; ++u) {
    std::vector<NodeId> nearest_per_sector(static_cast<std::size_t>(k),
                                           kInvalidNode);
    for (const NodeId v : heard[u]) {
      const int s = geom::sector_index(d.positions[u], d.positions[v], theta);
      NodeId& cur = nearest_per_sector[static_cast<std::size_t>(s)];
      if (topo::nearer(d, u, v, cur)) cur = v;
    }
    for (const NodeId v : nearest_per_sector) {
      if (v == kInvalidNode) continue;
      ++stats.neighborhood_msgs;
      selectors[v].push_back(u);  // message delivery: v learns u selected it
    }
  }

  // Round 3 — each node v admits, per sector, the nearest node that selected
  // it, and sends that node a Connection message.
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 0; v < n; ++v) {
    std::vector<NodeId> admit(static_cast<std::size_t>(k), kInvalidNode);
    for (const NodeId u : selectors[v]) {
      const int s = geom::sector_index(d.positions[v], d.positions[u], theta);
      NodeId& cur = admit[static_cast<std::size_t>(s)];
      if (topo::nearer(d, v, u, cur)) cur = u;
    }
    for (const NodeId u : admit) {
      if (u == kInvalidNode) continue;
      ++stats.connection_msgs;
      edges.push_back(std::minmax(v, u));
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  stats.edges = edges.size();

  // Cross-check against the centralized construction.
  const ThetaTopology reference(d, theta);
  std::vector<std::pair<NodeId, NodeId>> ref_edges;
  ref_edges.reserve(reference.graph().num_edges());
  for (const graph::Edge& e : reference.graph().edges())
    ref_edges.push_back(std::minmax(e.u, e.v));
  std::sort(ref_edges.begin(), ref_edges.end());
  stats.matches_centralized = (edges == ref_edges);
  return stats;
}

}  // namespace thetanet::core
