#pragma once
// The (T, gamma)-balancing algorithm of Section 3.2 — the paper's local
// routing rule. Per step, for every usable edge e = (v, w), the router finds
// the destination d maximizing the *benefit*
//
//     h_{(v,d)} - h_{(w,d)} - gamma * c(e)
//
// over both orientations of e, and moves one packet of that destination
// across e when the benefit exceeds the threshold T. Packets reaching their
// destination buffer are absorbed; a packet arriving at a full buffer is
// deleted (with T >= B + 2*(delta-1), Theorem 3.1, only newly injected
// packets are ever deleted — the experiments verify this).
//
// The router is MAC-agnostic: callers supply the usable edges each step
// (adversarial sets for Section 3.2, randomized interference-aware
// activation for Section 3.3, honeycomb contestants for Section 3.4) and
// report back which planned transmissions the medium actually carried.
//
// The step loop is allocation-free at steady state: `plan_into` evaluates
// edges into caller-owned / reusable scratch (parallelized over edges with
// per-index slots compacted in edge order, so the plan is bit-identical for
// any TN_NUM_THREADS — the PR 1 contract), `execute` stages in-air packets
// in a member scratch vector, and the sparse entry point
// `plan_all_edges_into` derives the candidate edge set from the buffer
// bank's active nodes instead of scanning every edge of a large graph.

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "routing/adversary.h"
#include "routing/buffers.h"
#include "routing/metrics.h"
#include "routing/packet.h"

namespace thetanet::core {

/// Absorption test: is node v a valid delivery point for destination d?
/// Defaults to v == d (unicast). Anycast installs a group-membership test
/// (routing/anycast.h) — the balancing rule itself is unchanged, exactly as
/// in the anycasting framework [10] the paper builds on.
using DestinationPredicate =
    std::function<bool(graph::NodeId, route::DestId)>;

struct BalancingParams {
  double threshold = 1.0;      ///< T
  double gamma = 0.0;          ///< cost weight (gamma = 0: cost-blind variant)
  std::size_t max_height = 64; ///< H, the buffer capacity
};

/// One transmission the balancing rule decided to make.
struct PlannedTx {
  graph::EdgeId edge = graph::kInvalidEdge;
  graph::NodeId from = graph::kInvalidNode;
  graph::NodeId to = graph::kInvalidNode;
  route::DestId dest = graph::kInvalidNode;
  double benefit = 0.0;
};

/// Parameter recipes from the theorems, given a certified trace's exact
/// optimum (B = opt.max_buffer, L-bar, C-bar):
///
///   Theorem 3.1 (MAC given):  T >= B + 2*(delta - 1),
///                             gamma >= (T + B + delta) * Lbar / Cbar,
///                             H = (1 + 2*(1 + (T+delta)/B) * Lbar / eps) * B.
BalancingParams theorem31_params(const route::OptStats& opt, double eps,
                                 double delta = 1.0);

///   Theorem 3.3 (randomized MAC): T >= 2B + 1,
///                                 gamma >= (T + B) * Lbar / Cbar,
///                                 H = (1 + 2*(1 + T/B) * Lbar / eps) * B.
BalancingParams theorem33_params(const route::OptStats& opt, double eps);

class BalancingRouter {
 public:
  BalancingRouter(std::size_t num_nodes, const BalancingParams& params)
      : params_(params), buffers_(num_nodes, params.max_height) {}

  /// Install an anycast-style absorption test (default: v == d).
  void set_destination_predicate(DestinationPredicate pred) {
    is_dest_ = std::move(pred);
  }

  const BalancingParams& params() const { return params_; }
  const route::BufferBank& buffers() const { return buffers_; }

  /// Mutable bank access for fault-injection harnesses (the soak watchdog's
  /// planted-leak mutation plants BufferBank::plant_pool_leak through it).
  /// Production code must use the const accessor.
  route::BufferBank& buffers_for_fault_injection() { return buffers_; }

  /// The (T, gamma) rule over `active` edges with per-edge costs `costs`
  /// (indexed by edge id of `topo`). Returns at most one transmission per
  /// edge, deterministically. Allocating convenience wrapper of plan_into.
  std::vector<PlannedTx> plan(const graph::Graph& topo,
                              std::span<const graph::EdgeId> active,
                              std::span<const double> costs) const;

  /// Allocation-free plan: evaluates `active` edges into `out` (cleared,
  /// then filled in ascending `active` order — reuse `out` across rounds to
  /// amortize its capacity away). The edge scan runs under tn::parallel_for
  /// when large enough; per-edge results land in index-addressed slots and
  /// are compacted serially in edge order, so the planned transmissions are
  /// bit-identical for every TN_NUM_THREADS value.
  void plan_into(const graph::Graph& topo,
                 std::span<const graph::EdgeId> active,
                 std::span<const double> costs,
                 std::vector<PlannedTx>& out) const;

  /// Sustained-load fast path: plan over every edge of `topo` without
  /// touching the empty part of the graph. The candidate set — all edges
  /// incident to a node that currently buffers packets, ascending by edge
  /// id — provably plans the same transmissions as passing all edges, since
  /// an edge with both endpoint banks empty never clears benefit > T >= 0.
  /// The router.active_edges telemetry series records the candidate count.
  void plan_all_edges_into(const graph::Graph& topo,
                           std::span<const double> costs,
                           std::vector<PlannedTx>& out) const;

  /// The candidate edge set used by plan_all_edges_into (exposed for the
  /// quantized router and tests): edges incident to buffer-active nodes,
  /// deduplicated, sorted ascending. Valid until the next call.
  std::span<const graph::EdgeId> candidate_edges(
      const graph::Graph& topo) const;

  /// Benefit evaluation for one directed pair (used by the honeycomb MAC of
  /// Section 3.4, where contestants are sender-receiver pairs rather than
  /// pre-activated edges). nullopt when no destination clears benefit > T.
  std::optional<PlannedTx> best_for_pair(graph::NodeId from, graph::NodeId to,
                                         graph::EdgeId edge, double cost) const;

  /// Execute planned transmissions. failed[i] == true means the MAC reports
  /// a collision: the packet stays put and the transmission energy is
  /// wasted. Deliveries, drops and energy are accumulated into `m`.
  void execute(std::span<const PlannedTx> txs, const std::vector<bool>& failed,
               std::span<const double> costs, route::Time now,
               route::RunMetrics& m);

  /// Offer a newly injected packet to its source buffer (step 2 of the
  /// algorithm: stored if space remains, deleted otherwise).
  void inject(const route::Packet& p, route::RunMetrics& m);

  /// Record end-of-step space metrics and advance the round clock.
  void end_step(route::RunMetrics& m);

  /// Rounds completed (end_step calls). Events recorded by plan / execute /
  /// inject during a step are attributed to this round index, so the
  /// per-round telemetry series line up with the step loop.
  std::uint64_t round() const { return round_; }

  /// Packets still buffered (typically evaluated at the end of a run).
  std::size_t packets_in_flight() const { return buffers_.total_packets(); }

 private:
  // Both orientations of one edge in a single merged buffer scan; the
  // winning direction (or a kInvalidEdge sentinel) lands in *slot.
  void eval_edge(const graph::Graph& topo, graph::EdgeId e, double cost,
                 PlannedTx* slot) const;

  bool is_destination(graph::NodeId v, route::DestId d) const {
    return is_dest_ ? is_dest_(v, d) : v == d;
  }

  BalancingParams params_;
  route::BufferBank buffers_;
  DestinationPredicate is_dest_;
  std::uint64_t round_ = 0;
  // Reusable scratch (plan slots, candidate edges + epoch-stamped dedup
  // marks, in-air staging). Mutable: plan is logically const; scratch reuse
  // is what makes the steady-state loop allocation-free. Not thread-safe
  // across router instances sharing nothing — each slot_ index is written
  // by exactly one parallel chunk.
  struct InAir {
    route::Packet p;
    graph::NodeId to;
  };
  mutable std::vector<PlannedTx> slots_;
  mutable std::vector<graph::EdgeId> candidates_;
  mutable std::vector<std::uint32_t> edge_mark_;
  mutable std::uint32_t mark_epoch_ = 0;
  std::vector<InAir> in_air_;
};

}  // namespace thetanet::core
