#include "core/interference_mac.h"

#include <algorithm>

#include "common/assert.h"

namespace thetanet::core {

RandomizedMac::RandomizedMac(const graph::Graph& topo,
                             const topo::Deployment& d,
                             const interf::InterferenceModel& model)
    : topo_(&topo), deployment_(&d), model_(model) {
  const auto sets = interf::interference_sets(topo, d, model);
  std::vector<std::uint32_t> sizes(sets.size());
  for (std::size_t e = 0; e < sets.size(); ++e)
    sizes[e] = static_cast<std::uint32_t>(sets[e].size());
  bounds_.resize(sets.size());
  for (std::size_t e = 0; e < sets.size(); ++e) {
    std::uint32_t b = std::max<std::uint32_t>(1, sizes[e]);
    for (const graph::EdgeId ep : sets[e]) b = std::max(b, sizes[ep]);
    bounds_[e] = b;
    max_bound_ = std::max(max_bound_, b);
  }
}

std::vector<graph::EdgeId> RandomizedMac::activate(geom::Rng& rng) const {
  std::vector<graph::EdgeId> active;
  for (graph::EdgeId e = 0; e < bounds_.size(); ++e)
    if (rng.bernoulli(activation_prob(e))) active.push_back(e);
  return active;
}

std::vector<bool> RandomizedMac::resolve(std::span<const PlannedTx> txs) const {
  std::vector<graph::EdgeId> edges;
  edges.reserve(txs.size());
  for (const PlannedTx& tx : txs) edges.push_back(tx.edge);
  return interf::failed_transmissions(edges, *topo_, *deployment_, model_);
}

}  // namespace thetanet::core
