#pragma once
// The schedule transformation behind Theorem 2.8: any transmission schedule
// on G* — a sequence of pairwise non-interfering edge sets T_1, T_2, ... —
// can be simulated on ThetaALG's topology N with O(I) slowdown, where I is
// N's interference number.
//
// Construction (Section 2.4): replace every G* edge by its theta-path in N
// (Lemma 2.9 bounds per-edge congestion by 6), then schedule the resulting
// N transmissions greedily under N's own interference constraints. This
// module implements exactly that pipeline and reports the measured
// slowdown, giving the empirical side of
//
//   Theorem 2.8:  W deliverable on G* in t steps  =>  deliverable on N in
//                 O(t * I + n^2) steps.

#include <cstdint>
#include <span>
#include <vector>

#include "core/theta_topology.h"
#include "geom/rng.h"
#include "interference/model.h"

namespace thetanet::core {

/// One step of a G* schedule: edges that transmit simultaneously (the
/// caller guarantees they are pairwise non-interfering on G*).
using GStarStep = std::vector<graph::EdgeId>;

struct TransformResult {
  std::size_t gstar_steps = 0;     ///< t: length of the input schedule
  std::size_t n_steps = 0;         ///< makespan of the produced N schedule
  std::size_t transmissions = 0;   ///< total N edge activations scheduled
  std::uint32_t interference_number = 0;  ///< I of N under the given model
  double slowdown() const {
    return gstar_steps == 0 ? 0.0
                            : static_cast<double>(n_steps) /
                                  static_cast<double>(gstar_steps);
  }
  /// The theorem's predicted budget per G* step, up to constants.
  double slowdown_per_interference() const {
    return interference_number == 0
               ? 0.0
               : slowdown() / static_cast<double>(interference_number);
  }

  /// The produced schedule: per N step, the N edge ids transmitting. Within
  /// each step the set is pairwise non-interfering under the model.
  std::vector<std::vector<graph::EdgeId>> n_schedule;
};

/// Transform a G* schedule onto N. Each G* transmission (u, v) in step k
/// becomes the ordered theta-path hops of replacement_path(u, v); hop j of
/// a path may only be scheduled after hop j-1 (store-and-forward), and all
/// transmissions originating from G* step k only after every transmission
/// of step k-1 completed (preserving the input schedule's causality, as the
/// theorem's simulation argument requires). Greedy list scheduling packs
/// hops into the earliest N step where they don't interfere with anything
/// already placed.
TransformResult transform_schedule(const ThetaTopology& topology,
                                   const graph::Graph& gstar,
                                   std::span<const GStarStep> schedule,
                                   const interf::InterferenceModel& model);

/// Helper for experiments: build a `steps`-long random G* schedule in which
/// every step is a greedy maximal set of pairwise non-interfering edges
/// (scanning edges in random order).
std::vector<GStarStep> random_noninterfering_schedule(
    const graph::Graph& gstar, const topo::Deployment& d,
    const interf::InterferenceModel& model, std::size_t steps, geom::Rng& rng);

}  // namespace thetanet::core
