#pragma once
// Soak runs: the sustained-load injection engine driven for N*10^5 rounds
// with periodic telemetry stream frames and the drift watchdog attached —
// the "turn one-shot benches into soak tests" half of ROADMAP item 5.
//
// Determinism contract: the frame stream written to `frames_out` is a pure
// function of the spec — byte-identical across TN_NUM_THREADS (the
// soak_determinism ctest pins {1,2,4}) — because it only carries merged
// kStable telemetry. Watchdog inputs (RSS, wall time) stay out of the
// stream by construction.
//
// Replica shards: `shards` > 1 steps that many same-seed copies of the
// whole router+injector stack in lockstep. Replicas run with telemetry
// recording suspended (shard 0 owns the dump), and their planned-tx FNV
// checksums feed the watchdog's determinism check each interval.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "routing/injection.h"
#include "serve/watchdog.h"

namespace thetanet::serve {

struct SoakSpec {
  std::size_t n = 512;            ///< deployment size
  std::uint64_t topo_seed = 1;    ///< deployment seed (retried until connected)
  std::uint64_t rounds = 200000;  ///< total simulation rounds
  std::uint64_t interval = 5000;  ///< rounds between stream frames / samples
  int shards = 2;                 ///< same-seed replicas (>= 1)

  route::InjectionSpec inject;  ///< traffic process (seed inside)

  // Router parameters (bench_router's sustained-load defaults).
  double threshold = 0.5;
  double gamma = 0.0;
  std::size_t max_height = 32;

  /// 0: plain BalancingRouter. >= 1: QuantizedHeightRouter with this
  /// advertisement quantum — the configuration whose control ledgers the
  /// watchdog's flat-rate check monitors.
  std::size_t quantum = 0;

  bool fold_check = false;  ///< re-parse + fold the stream, byte-compare
  bool plant_leak = false;  ///< fault injection: BufferBank::plant_pool_leak

  WatchdogConfig watchdog;
};

struct SoakResult {
  bool ok = false;        ///< no watchdog violations and fold check passed
  bool fold_ok = true;    ///< fold-of-frames byte-equals the final dump
  std::uint64_t frames = 0;
  std::uint64_t rounds = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t injected_accepted = 0;
  std::uint64_t leftover = 0;
  std::uint64_t checksum = 0;  ///< shard-0 planned-tx FNV
  double warm_rss_mb = 0.0;
  double peak_rss_mb = 0.0;
  std::vector<std::string> violations;
  std::string final_dump;  ///< thetanet-telemetry/2 document of the run
};

/// Run the soak. Stream frames are written to `frames_out` as emitted;
/// everything else lands in the result. Resets the global telemetry
/// registries at entry so the stream describes exactly this run.
SoakResult run_soak(const SoakSpec& spec, std::ostream& frames_out);

}  // namespace thetanet::serve
