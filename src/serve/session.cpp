#include "serve/session.h"

#include <charconv>
#include <cmath>
#include <istream>
#include <locale>
#include <ostream>
#include <sstream>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "routing/local_route.h"
#include "topology/deployment.h"
#include "topology/distributions.h"

namespace thetanet::serve {

namespace {

constexpr std::string_view kServeSchema = "thetanet-serve/1";

std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> toks;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t') ++j;
    if (j > i) toks.push_back(line.substr(i, j - i));
    i = j;
  }
  return toks;
}

bool parse_u64(std::string_view s, std::uint64_t* out) {
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc{} && p == s.data() + s.size();
}

bool parse_f64(std::string_view s, double* out) {
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc{} && p == s.data() + s.size();
}

void err(std::ostream& out, std::string_view msg) {
  TN_OBS_COUNT("serve.errors", 1);
  out << "err " << msg << "\n";
}

}  // namespace

ServeSession::ServeSession() = default;
ServeSession::~ServeSession() = default;

void ServeSession::emit_frame(std::ostream& out) {
  out << streamer_.next_frame();
  out.flush();
}

bool ServeSession::handle_line(const std::string& line, std::ostream& out) {
  const auto toks = tokenize(line);
  if (toks.empty()) return true;  // blank line: no response, no count
  ++commands_;
  TN_OBS_COUNT("serve.commands", 1);
  const std::string_view cmd = toks[0];
  bool keep_going = true;

  if (cmd == "version") {
    out << "ok " << kServeSchema << " telemetry " << obs::kStreamSchema
        << "\n";
  } else if (cmd == "gen") {
    std::uint64_t n = 0, seed = 0, cones = 18;
    if (toks.size() < 3 || toks.size() > 4 || !parse_u64(toks[1], &n) ||
        !parse_u64(toks[2], &seed) ||
        (toks.size() == 4 && !parse_u64(toks[3], &cones)) || n < 2 ||
        cones < 7) {
      err(out, "usage: gen <n>=2.. <seed> [cones>=7]");
    } else {
      topo::Deployment d;
      geom::Rng rng(0x5e47eull + seed);
      d.positions = topo::uniform_square(n, 1.0, rng);
      d.max_range = 1.6 * std::sqrt(std::log(static_cast<double>(n)) /
                                    static_cast<double>(n));
      d.kappa = 2.0;
      const double theta =
          2.0 * 3.14159265358979323846 / static_cast<double>(cones);
      maint_ = std::make_unique<core::ThetaMaintainer>(std::move(d), theta);
      out << "ok n=" << n << " edges=" << maint_->graph().num_edges()
          << " active=" << maint_->num_active() << "\n";
    }
  } else if (cmd == "add" || cmd == "move" || cmd == "leave" ||
             cmd == "wake") {
    if (!maint_) {
      err(out, "no topology (run `gen` first)");
    } else if (cmd == "add") {
      geom::Vec2 p;
      if (toks.size() != 3 || !parse_f64(toks[1], &p.x) ||
          !parse_f64(toks[2], &p.y)) {
        err(out, "usage: add <x> <y>");
      } else {
        const graph::NodeId id = maint_->add_node(p);
        out << "ok id=" << id << " edges=" << maint_->graph().num_edges()
            << "\n";
      }
    } else {
      std::uint64_t id = 0;
      geom::Vec2 p;
      const bool is_move = cmd == "move";
      const std::size_t want = is_move ? 4u : 2u;
      if (toks.size() != want || !parse_u64(toks[1], &id) ||
          id >= maint_->deployment().size() ||
          (is_move &&
           (!parse_f64(toks[2], &p.x) || !parse_f64(toks[3], &p.y)))) {
        err(out, is_move ? "usage: move <id> <x> <y>"
                         : "usage: leave|wake <id>");
      } else {
        const auto v = static_cast<graph::NodeId>(id);
        std::size_t rec = 0;
        if (is_move)
          rec = maint_->move_node(v, p);
        else if (cmd == "leave")
          rec = maint_->deactivate_node(v);
        else
          rec = maint_->activate_node(v);
        out << "ok recomputed=" << rec
            << " edges=" << maint_->graph().num_edges()
            << " active=" << maint_->num_active() << "\n";
      }
    }
  } else if (cmd == "route") {
    std::uint64_t s = 0, t = 0;
    route::LocalRouteOptions opt;
    bool bad = toks.size() < 3 || toks.size() > 4 || !parse_u64(toks[1], &s) ||
               !parse_u64(toks[2], &t);
    if (!bad && toks.size() == 4) {
      if (toks[3] == "theta")
        opt.policy = route::LocalPolicy::kTheta;
      else if (toks[3] != "compass")
        bad = true;
    }
    if (bad) {
      err(out, "usage: route <s> <t> [compass|theta]");
    } else if (!maint_) {
      err(out, "no topology (run `gen` first)");
    } else if (s >= maint_->deployment().size() ||
               t >= maint_->deployment().size() ||
               !maint_->active(static_cast<graph::NodeId>(s)) ||
               !maint_->active(static_cast<graph::NodeId>(t))) {
      err(out, "route endpoints must be active node ids");
    } else {
      TN_OBS_COUNT("serve.route_queries", 1);
      const route::LocalRouteResult r = route::local_route(
          maint_->graph(), maint_->deployment(),
          static_cast<graph::NodeId>(s), static_cast<graph::NodeId>(t), opt);
      std::ostringstream len;  // fixed formatting, locale-independent
      len.imbue(std::locale::classic());
      len.precision(6);
      len << std::fixed << r.length;
      out << "ok delivered=" << (r.delivered ? 1 : 0) << " hops=" << r.hops
          << " length=" << len.str() << "\n";
    }
  } else if (cmd == "telemetry") {
    if (toks.size() != 1) {
      err(out, "usage: telemetry");
    } else {
      out << "ok frame seq=" << streamer_.frames_emitted() << "\n";
      emit_frame(out);
    }
  } else if (cmd == "subscribe") {
    std::uint64_t k = 0;
    if (toks.size() != 3 || toks[1] != "telemetry" ||
        !parse_u64(toks[2], &k) || k == 0) {
      err(out, "usage: subscribe telemetry <interval>=1..");
    } else {
      subscribe_interval_ = k;
      commands_at_subscribe_ = commands_;
      out << "ok subscribed interval=" << k << "\n";
    }
  } else if (cmd == "unsubscribe") {
    if (toks.size() != 2 || toks[1] != "telemetry") {
      err(out, "usage: unsubscribe telemetry");
    } else {
      subscribe_interval_ = 0;
      out << "ok unsubscribed\n";
    }
  } else if (cmd == "stats") {
    if (!maint_) {
      out << "ok nodes=0 active=0 edges=0 ops=0 commands=" << commands_
          << "\n";
    } else {
      out << "ok nodes=" << maint_->deployment().size()
          << " active=" << maint_->num_active()
          << " edges=" << maint_->graph().num_edges()
          << " ops=" << maint_->ops() << " commands=" << commands_ << "\n";
    }
  } else if (cmd == "help") {
    out << "ok commands: version gen add move leave wake route telemetry "
           "subscribe unsubscribe stats help quit\n";
  } else if (cmd == "quit") {
    out << "ok bye\n";
    keep_going = false;
  } else {
    err(out, "unknown command (try `help`)");
  }

  // Subscription frames ride after the response of every interval-th
  // command since `subscribe` — including the final `quit`, so a scripted
  // session never loses the tail of the stream.
  if (subscribe_interval_ > 0 &&
      (commands_ - commands_at_subscribe_) % subscribe_interval_ == 0)
    emit_frame(out);
  out.flush();
  return keep_going;
}

std::uint64_t run_serve(std::istream& in, std::ostream& out) {
  ServeSession session;
  std::string line;
  while (std::getline(in, line)) {
    if (!session.handle_line(line, out)) break;
  }
  return session.commands_handled();
}

}  // namespace thetanet::serve
