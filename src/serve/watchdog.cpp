#include "serve/watchdog.h"

#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <utility>

#include "obs/metrics.h"

namespace thetanet::serve {

void Fnv::mix_double(double d) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof d);
  std::memcpy(&bits, &d, sizeof bits);
  mix(bits);
}

double peak_rss_mb() {
  rusage u{};
  getrusage(RUSAGE_SELF, &u);
  return static_cast<double>(u.ru_maxrss) / 1024.0;  // ru_maxrss is KiB
}

DriftWatchdog::DriftWatchdog(WatchdogConfig cfg, std::uint64_t total_rounds)
    : cfg_(std::move(cfg)), total_rounds_(total_rounds) {
  warmup_rounds_ = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(cfg_.warmup_frac *
                                    static_cast<double>(total_rounds_)));
  for (const std::string& name : cfg_.rate_counters)
    rates_.push_back({name, {}, 0});
}

void DriftWatchdog::sample(std::uint64_t rounds_done, double rss_mb,
                           std::span<const std::uint64_t> shard_checksums) {
  // Determinism: every same-seed shard must report the same planned-tx
  // checksum. Report the first divergence only — one drifting shard would
  // otherwise flood the violation list at every later sample.
  if (!drift_tripped_) {
    for (std::size_t i = 1; i < shard_checksums.size(); ++i) {
      if (shard_checksums[i] != shard_checksums[0]) {
        drift_tripped_ = true;
        violations_.push_back(
            "determinism drift at round " + std::to_string(rounds_done) +
            ": shard " + std::to_string(i) + " checksum " +
            std::to_string(shard_checksums[i]) + " != shard 0 checksum " +
            std::to_string(shard_checksums[0]));
        break;
      }
    }
  }

  // Flat-memory envelope, armed at the first post-warm-up sample.
  if (!rss_armed_ && rounds_done >= warmup_rounds_) {
    rss_armed_ = true;
    warm_rss_mb_ = rss_mb;
  } else if (rss_armed_ && !rss_tripped_) {
    const double envelope =
        warm_rss_mb_ +
        std::max(cfg_.rss_allowance_mb, cfg_.rss_growth_frac * warm_rss_mb_);
    if (rss_mb > envelope) {
      rss_tripped_ = true;
      char line[160];
      std::snprintf(line, sizeof line,
                    "rss grew past the flat-memory envelope at round %llu: "
                    "%.1f MiB > %.1f MiB (warm %.1f MiB)",
                    static_cast<unsigned long long>(rounds_done), rss_mb,
                    envelope, warm_rss_mb_);
      violations_.push_back(line);
    }
  }

  // Counter rates: record the per-round rate of each configured counter over
  // the window since the previous sample; only post-warm-up windows feed the
  // trend check in finish().
  const std::uint64_t window =
      rounds_done > last_sample_round_ ? rounds_done - last_sample_round_ : 0;
  for (RateTrack& t : rates_) {
    const std::uint64_t value =
        obs::MetricsRegistry::global().counter_value(t.counter);
    if (window > 0 && last_sample_round_ >= warmup_rounds_)
      t.window_rates.push_back(static_cast<double>(value - t.last_value) /
                               static_cast<double>(window));
    t.last_value = value;
  }
  last_sample_round_ = rounds_done;
}

void DriftWatchdog::finish() {
  // A growing per-round rate at fixed n is the in-run half of the
  // flat-control-plane claim; compare the mean of the last half of the
  // post-warm-up windows against the first half.
  for (const RateTrack& t : rates_) {
    const std::size_t k = t.window_rates.size();
    if (k < 4) continue;  // too few windows for a trend
    const std::size_t half = k / 2;
    const double early =
        std::accumulate(t.window_rates.begin(),
                        t.window_rates.begin() + static_cast<long>(half),
                        0.0) /
        static_cast<double>(half);
    const double late =
        std::accumulate(t.window_rates.begin() + static_cast<long>(half),
                        t.window_rates.end(), 0.0) /
        static_cast<double>(k - half);
    const double bound =
        early * (1.0 + cfg_.rate_growth_tol) + cfg_.rate_slack_per_round;
    if (late > bound) {
      char line[200];
      std::snprintf(line, sizeof line,
                    "%s rate grew over the run: late mean %.2f/round > "
                    "%.2f/round (early mean %.2f, tol %.0f%%)",
                    t.counter.c_str(), late, bound, early,
                    cfg_.rate_growth_tol * 100.0);
      violations_.push_back(line);
    }
  }
}

}  // namespace thetanet::serve
