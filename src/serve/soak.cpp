#include "serve/soak.h"

#include <cmath>
#include <memory>
#include <ostream>

#include "core/balancing_router.h"
#include "core/quantized_router.h"
#include "graph/connectivity.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timeseries.h"
#include "obs/stream.h"
#include "obs/trace_sink.h"
#include "topology/distributions.h"
#include "topology/transmission_graph.h"

namespace thetanet::serve {

namespace {

topo::Deployment soak_deployment(std::size_t n, std::uint64_t seed) {
  topo::Deployment d;
  geom::Rng rng(0x50a1u + seed);
  d.positions = topo::uniform_square(n, 1.0, rng);
  d.max_range = 1.6 * std::sqrt(std::log(static_cast<double>(n)) /
                                static_cast<double>(n));
  d.kappa = 2.0;
  return d;
}

/// One same-seed replica of the full stack. Shard 0 records telemetry;
/// replicas step with recording suspended and only contribute checksums.
struct Shard {
  std::unique_ptr<core::BalancingRouter> balancing;
  std::unique_ptr<core::QuantizedHeightRouter> quantized;
  std::unique_ptr<route::InjectionEngine> engine;
  route::RunMetrics m;
  Fnv checksum;
  std::vector<core::PlannedTx> txs;
  std::vector<route::Packet> arrivals;
};

void mix_txs(Fnv& f, const std::vector<core::PlannedTx>& txs) {
  f.mix(txs.size());
  for (const core::PlannedTx& tx : txs) {
    f.mix(tx.edge);
    f.mix(tx.from);
    f.mix(tx.dest);
    f.mix_double(tx.benefit);
  }
}

void step_shard(Shard& s, const graph::Graph& g,
                std::span<const double> costs,
                std::span<const graph::EdgeId> all_edges, std::uint64_t t) {
  const auto now = static_cast<route::Time>(t);
  const std::vector<bool> no_failures;
  if (s.quantized) {
    s.quantized->plan_into(g, all_edges, costs, s.txs);
    mix_txs(s.checksum, s.txs);
    s.quantized->execute(s.txs, no_failures, costs, now, s.m);
    s.engine->step(now, s.m, s.arrivals);
    for (const route::Packet& p : s.arrivals) s.quantized->inject(p, s.m);
    s.quantized->end_step(s.m);
  } else {
    s.balancing->plan_all_edges_into(g, costs, s.txs);
    mix_txs(s.checksum, s.txs);
    s.balancing->execute(s.txs, no_failures, costs, now, s.m);
    s.engine->step(now, s.m, s.arrivals);
    for (const route::Packet& p : s.arrivals) s.balancing->inject(p, s.m);
    s.balancing->end_step(s.m);
  }
}

}  // namespace

SoakResult run_soak(const SoakSpec& spec, std::ostream& frames_out) {
  SoakResult out;
  // The stream must describe exactly this run: drop whatever the process
  // recorded before (CLI argument handling, generation, earlier commands).
  obs::MetricsRegistry::global().reset();
  obs::SeriesRegistry::global().reset();
  obs::reset_spans();

  // Deterministic connected deployment: bump the seed until the
  // transmission graph is connected (uniform placements at the soak's
  // default density almost always connect on the first try).
  topo::Deployment d = soak_deployment(spec.n, spec.topo_seed);
  graph::Graph g = topo::build_transmission_graph(d);
  for (std::uint64_t retry = 1; !graph::is_connected(g) && retry < 32;
       ++retry) {
    d = soak_deployment(spec.n, spec.topo_seed + (retry << 16));
    g = topo::build_transmission_graph(d);
  }

  std::vector<double> costs(g.num_edges());
  for (graph::EdgeId e = 0; e < costs.size(); ++e) costs[e] = g.edge(e).cost;
  std::vector<graph::EdgeId> all_edges;
  if (spec.quantum >= 1) {
    all_edges.resize(g.num_edges());
    for (graph::EdgeId e = 0; e < all_edges.size(); ++e) all_edges[e] = e;
  }

  const core::BalancingParams params{spec.threshold, spec.gamma,
                                     spec.max_height};
  const int num_shards = spec.shards < 1 ? 1 : spec.shards;
  std::vector<Shard> shards(static_cast<std::size_t>(num_shards));
  for (Shard& s : shards) {
    if (spec.quantum >= 1) {
      s.quantized = std::make_unique<core::QuantizedHeightRouter>(
          g.num_nodes(), params, spec.quantum);
      if (spec.plant_leak)
        s.quantized->buffers_for_fault_injection().plant_pool_leak(true);
    } else {
      s.balancing =
          std::make_unique<core::BalancingRouter>(g.num_nodes(), params);
      if (spec.plant_leak)
        s.balancing->buffers_for_fault_injection().plant_pool_leak(true);
    }
    s.engine = std::make_unique<route::InjectionEngine>(g, spec.inject);
  }

  DriftWatchdog watchdog(spec.watchdog, spec.rounds);
  obs::TelemetryStreamer streamer;
  std::string stream_copy;  // only filled under fold_check
  std::vector<std::uint64_t> checksums(shards.size());

  const std::uint64_t interval = std::max<std::uint64_t>(1, spec.interval);
  for (std::uint64_t t = 0; t < spec.rounds; ++t) {
    step_shard(shards[0], g, costs, all_edges, t);
    if (shards.size() > 1) {
      // Replicas re-execute the identical round; suspending recording keeps
      // the dump describing exactly one run's worth of events.
      obs::set_recording(false);
      for (std::size_t i = 1; i < shards.size(); ++i)
        step_shard(shards[i], g, costs, all_edges, t);
      obs::set_recording(true);
    }
    if ((t + 1) % interval == 0 || t + 1 == spec.rounds) {
      const std::string frame = streamer.next_frame();
      frames_out << frame;
      if (spec.fold_check) stream_copy += frame;
      for (std::size_t i = 0; i < shards.size(); ++i)
        checksums[i] = shards[i].checksum.h;
      watchdog.sample(t + 1, peak_rss_mb(), checksums);
    }
  }
  watchdog.finish();

  // The last frame was captured after the final round, with nothing
  // recorded since — so the one-shot dump of the same state is exactly the
  // fold of the stream.
  out.final_dump = obs::to_json(streamer.last_snapshot(), false);
  if (spec.fold_check) {
    std::string err;
    const auto frames = obs::parse_telemetry_stream(stream_copy, &err);
    out.fold_ok = false;
    if (frames) {
      obs::StreamFolder folder;
      bool folded = true;
      for (const obs::ParsedFrame& f : *frames)
        folded = folded && folder.fold(f, &err);
      out.fold_ok = folded && folder.to_dump_json() == out.final_dump;
    }
    if (!out.fold_ok)
      out.violations.push_back(
          "stream fold does not reproduce the final dump" +
          (err.empty() ? std::string() : " (" + err + ")"));
  }

  const Shard& s0 = shards[0];
  out.frames = streamer.frames_emitted();
  out.rounds = spec.rounds;
  out.deliveries = s0.m.deliveries;
  out.injected_accepted = s0.m.injected_accepted;
  out.leftover =
      s0.quantized ? s0.quantized->packets_in_flight()
                   : s0.balancing->packets_in_flight();
  out.checksum = s0.checksum.h;
  out.warm_rss_mb = watchdog.warm_rss_mb();
  out.peak_rss_mb = peak_rss_mb();
  for (const std::string& v : watchdog.violations())
    out.violations.push_back(v);
  out.ok = out.violations.empty();
  return out;
}

}  // namespace thetanet::serve
