#pragma once
// `thetanet_cli serve` — the interactive half of the live observability
// plane (ROADMAP item 5). A ServeSession speaks a line-based text protocol
// over any istream/ostream pair (stdio when run from the CLI, a pipe in the
// serve_smoke ctest), in the tradition of plain-text control sockets:
// one command per line, one `ok ...` or `err ...` response line per command.
//
// Telemetry frames (`FRAME <seq> <nbytes>` + canonical JSON body, schema
// thetanet-telemetry-stream/1) are interleaved into the same output stream;
// they are self-delimiting, so a client can always split responses from
// frames. `subscribe telemetry <interval>` emits a frame after every
// <interval> processed commands — command count, not wall time, so a
// scripted session replays byte-identically.
//
// Protocol (see docs/serving.md for the worked quickstart):
//
//   version                      -> ok thetanet-serve/1 ...
//   gen <n> <seed> [cones]       -> build a uniform-square deployment and a
//                                   ThetaMaintainer overlay (theta = 2pi/cones,
//                                   default 18 cones = pi/9)
//   add <x> <y>                  -> join a node (ok id=...)
//   move <id> <x> <y>            -> move a node
//   leave <id>                   -> deactivate (leave/crash/sleep)
//   wake <id>                    -> reactivate
//   route <s> <t> [compass|theta]-> local-route a query over the overlay
//   telemetry                    -> emit one stream frame now
//   subscribe telemetry <k>      -> frame after every k commands
//   unsubscribe telemetry        -> stop streaming
//   stats                        -> ok nodes=... active=... edges=... ops=...
//   help                         -> command list
//   quit                         -> ok bye (session ends)

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "core/theta_maintenance.h"
#include "obs/stream.h"

namespace thetanet::serve {

class ServeSession {
 public:
  ServeSession();
  ~ServeSession();

  /// Handle one protocol line, writing the response (and any due telemetry
  /// frame) to `out`. Returns false when the session should end (`quit`).
  bool handle_line(const std::string& line, std::ostream& out);

  std::uint64_t commands_handled() const { return commands_; }

 private:
  void emit_frame(std::ostream& out);

  std::unique_ptr<core::ThetaMaintainer> maint_;
  obs::TelemetryStreamer streamer_;
  std::uint64_t commands_ = 0;
  std::uint64_t subscribe_interval_ = 0;  ///< 0 = not subscribed
  std::uint64_t commands_at_subscribe_ = 0;
};

/// Read lines from `in` until EOF or `quit`, dispatching each through a
/// fresh ServeSession. Returns the number of commands handled.
std::uint64_t run_serve(std::istream& in, std::ostream& out);

}  // namespace thetanet::serve
