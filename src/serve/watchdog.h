#pragma once
// In-process drift watchdog for long soak runs. Sampled once per snapshot
// interval, it guards the three invariants a healthy steady-state run must
// keep (ROADMAP item 5: "assert no memory or determinism drift"):
//
//   * flat memory — after a warm-up fraction of the run, peak RSS must stay
//     inside a fixed envelope above the warm-up figure (the same criterion
//     as bench_router's rss_flat, but checked continuously);
//   * determinism — same-seed replica shards stepped in lockstep must agree
//     on a rolling FNV-1a checksum of the planned-transmission stream at
//     every sample (the first divergent sample names the round);
//   * flat control plane — per-round rates of the configured counters
//     (router.control_messages / router.control_bytes by default) must not
//     grow over the run: the late-window mean rate is compared against the
//     early post-warm-up mean at finish(). The companion check — that the
//     *per-node* rate stays flat as n grows — spans multiple runs and lives
//     in tools/bench_compare.py's control_plane gate.
//
// The watchdog only observes: it never writes telemetry (RSS is
// nondeterministic and must stay out of the frame stream), and violations
// are collected rather than thrown so a soak can report all of them.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace thetanet::serve {

/// Rolling FNV-1a mix — the planned-tx checksum shared by the soak loop,
/// bench_router, and the drift check.
struct Fnv {
  std::uint64_t h = 1469598103934665603ull;
  void mix(std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  void mix_double(double d);
};

/// Current peak RSS of the process in MiB (getrusage; monotone).
double peak_rss_mb();

struct WatchdogConfig {
  /// Flat-memory envelope: peak RSS may exceed the warm-up peak by at most
  /// max(rss_allowance_mb, rss_growth_frac * warm). Matches bench_router's
  /// rss_flat shape; the soak mutation test tightens allowance to make the
  /// planted leak trip fast.
  double rss_allowance_mb = 48.0;
  double rss_growth_frac = 0.10;

  /// Fraction of the run treated as warm-up: pool growth, stride doubling,
  /// and allocator steady-stating are all expected before this point.
  double warmup_frac = 0.25;

  /// Rate-growth tolerance: late mean per-round rate may exceed the early
  /// post-warm-up mean by at most this fraction (plus an absolute slack of
  /// rate_slack_per_round, so near-silent counters never trip).
  double rate_growth_tol = 0.25;
  double rate_slack_per_round = 1.0;

  /// Counters whose per-round rate must stay flat. Missing counters (e.g.
  /// control ledgers when the run uses the plain balancing router) read 0
  /// and never trip.
  std::vector<std::string> rate_counters = {"router.control_messages",
                                            "router.control_bytes"};
};

class DriftWatchdog {
 public:
  DriftWatchdog(WatchdogConfig cfg, std::uint64_t total_rounds);

  /// One sample at `rounds_done` completed rounds: process RSS, the current
  /// merged values of the configured rate counters, and the per-shard
  /// planned-tx checksums (all shards must agree). RSS and drift violations
  /// are detected immediately; rate trends are judged at finish().
  void sample(std::uint64_t rounds_done, double rss_mb,
              std::span<const std::uint64_t> shard_checksums);

  /// End-of-run checks (counter-rate growth). Call exactly once.
  void finish();

  bool tripped() const { return !violations_.empty(); }
  const std::vector<std::string>& violations() const { return violations_; }

  double warm_rss_mb() const { return warm_rss_mb_; }

 private:
  struct RateTrack {
    std::string counter;
    std::vector<double> window_rates;  ///< post-warm-up per-round rates
    std::uint64_t last_value = 0;
  };

  WatchdogConfig cfg_;
  std::uint64_t total_rounds_;
  std::uint64_t warmup_rounds_;
  std::uint64_t last_sample_round_ = 0;
  double warm_rss_mb_ = 0.0;
  bool rss_armed_ = false;
  bool rss_tripped_ = false;
  bool drift_tripped_ = false;
  std::vector<RateTrack> rates_;
  std::vector<std::string> violations_;
};

}  // namespace thetanet::serve
