#pragma once
// Run-level metrics: the three measures the paper analyses — throughput
// (deliveries), space overhead (peak buffer height), and energy (total
// transmission cost) — plus supporting diagnostics.

#include <cstdint>

namespace thetanet::route {

struct RunMetrics {
  // Injections.
  std::size_t injected_offered = 0;    ///< injection events presented
  std::size_t injected_accepted = 0;   ///< stored at the source
  std::size_t dropped_at_injection = 0;

  // Deliveries (throughput).
  std::size_t deliveries = 0;
  std::uint64_t total_hops_delivered = 0;
  std::uint64_t sum_latency = 0;       ///< delivery_time - injected_at, summed
  double delivered_cost = 0.0;         ///< energy charged to delivered packets

  // Energy.
  double total_energy = 0.0;   ///< energy of all successful transmissions
  double wasted_energy = 0.0;  ///< energy of collided (failed) transmissions

  // Transmissions.
  std::size_t attempted_tx = 0;
  std::size_t failed_tx = 0;   ///< MAC collisions
  std::size_t skipped_tx = 0;  ///< planned but source buffer already drained

  // Space overhead.
  std::size_t dropped_in_transit = 0;  ///< arrivals lost to a full buffer
  std::size_t peak_buffer = 0;         ///< max height of any Q_{v,d} observed
  std::size_t leftover_packets = 0;    ///< still buffered when the run ended

  double avg_cost_per_delivery() const {
    return deliveries == 0
               ? 0.0
               : (total_energy + wasted_energy) / static_cast<double>(deliveries);
  }
  double avg_delivered_cost() const {
    return deliveries == 0 ? 0.0
                           : delivered_cost / static_cast<double>(deliveries);
  }
  double avg_latency() const {
    return deliveries == 0 ? 0.0
                           : static_cast<double>(sum_latency) /
                                 static_cast<double>(deliveries);
  }
  double avg_hops() const {
    return deliveries == 0 ? 0.0
                           : static_cast<double>(total_hops_delivered) /
                                 static_cast<double>(deliveries);
  }
};

}  // namespace thetanet::route
