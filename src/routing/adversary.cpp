#include "routing/adversary.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/assert.h"
#include "graph/shortest_paths.h"

namespace thetanet::route {

std::vector<double> AdversaryTrace::costs_at(Time t) const {
  TN_ASSERT(topology != nullptr);
  std::vector<double> costs(topology->num_edges());
  for (graph::EdgeId e = 0; e < costs.size(); ++e)
    costs[e] = topology->edge(e).cost;
  if (t < steps.size())
    for (const auto& [e, c] : steps[t].cost_overrides) costs[e] = c;
  return costs;
}

AdversaryTrace make_certified_trace(const graph::Graph& topo,
                                    const TraceParams& params, geom::Rng& rng) {
  AdversaryTrace trace;
  trace.topology = &topo;
  const Time total = params.horizon + params.drain;
  trace.steps.resize(total);

  const std::size_t n = topo.num_nodes();
  TN_ASSERT(n >= 2);
  std::vector<std::set<Time>> reserved(topo.num_edges());
  std::uint64_t next_packet_id = 1;

  // Optional endpoint pools (traffic concentration).
  const auto pick_pool = [&](std::size_t k) {
    std::vector<graph::NodeId> pool;
    if (k == 0 || k >= n) {
      pool.resize(n);
      for (graph::NodeId v = 0; v < n; ++v) pool[v] = v;
    } else {
      std::set<graph::NodeId> chosen;
      while (chosen.size() < k)
        chosen.insert(static_cast<graph::NodeId>(rng.uniform_index(n)));
      pool.assign(chosen.begin(), chosen.end());
    }
    return pool;
  };
  const std::vector<graph::NodeId> sources =
      params.source_pool.empty() ? pick_pool(params.num_sources)
                                 : params.source_pool;
  const std::vector<graph::NodeId> dests = params.dest_pool.empty()
                                               ? pick_pool(params.num_destinations)
                                               : params.dest_pool;

  // Cache shortest-path trees per source on demand (costs are the base costs;
  // jittered overrides below stay within a bounded factor of them).
  std::map<graph::NodeId, graph::ShortestPathTree> trees;
  const graph::Weight weight =
      params.route_min_cost ? graph::Weight::kCost : graph::Weight::kHops;
  const auto tree_for = [&](graph::NodeId s) -> const graph::ShortestPathTree& {
    auto it = trees.find(s);
    if (it == trees.end())
      it = trees.emplace(s, graph::dijkstra(topo, s, weight)).first;
    return it->second;
  };

  for (Time t = 0; t < params.horizon; ++t) {
    // Expected injections_per_step attempts: fixed part + Bernoulli remainder.
    const double rate = params.injections_per_step;
    std::size_t attempts = static_cast<std::size_t>(rate);
    if (rng.bernoulli(rate - static_cast<double>(attempts))) ++attempts;

    for (std::size_t a = 0; a < attempts; ++a) {
      const graph::NodeId s = sources[rng.uniform_index(sources.size())];
      const graph::NodeId d = dests[rng.uniform_index(dests.size())];
      if (s == d) continue;
      const auto& tree = tree_for(s);
      const std::vector<graph::NodeId> path = tree.path_to(d);
      if (path.empty()) continue;  // unreachable; attempt discarded

      // Greedy conflict-free booking along the path.
      Schedule sched;
      sched.t0 = t;
      Time cur = t;
      bool ok = true;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const graph::EdgeId e = topo.find_edge(path[i], path[i + 1]);
        TN_DCHECK(e != graph::kInvalidEdge);
        Time slot = cur + 1;
        while (slot < total && reserved[e].count(slot) != 0) ++slot;
        if (slot >= total || slot > cur + 1 + params.max_schedule_slack) {
          ok = false;
          break;
        }
        sched.hops.emplace_back(e, slot);
        cur = slot;
      }
      if (!ok) continue;  // could not be booked: the adversary never injects it

      for (const auto& [e, slot] : sched.hops) reserved[e].insert(slot);
      Injection inj;
      inj.packet = Packet{next_packet_id++, s, d, t, 0.0, 0};
      inj.schedule = std::move(sched);
      trace.steps[t].injections.push_back(std::move(inj));
    }
  }

  // Active edge sets: exactly the reserved slots, plus optional noise.
  for (graph::EdgeId e = 0; e < reserved.size(); ++e)
    for (const Time slot : reserved[e]) trace.steps[slot].active.push_back(e);
  if (params.extra_active_fraction > 0.0 && topo.num_edges() > 0) {
    const auto extras = static_cast<std::size_t>(
        params.extra_active_fraction * static_cast<double>(topo.num_edges()));
    for (Time t = 0; t < total; ++t)
      for (std::size_t i = 0; i < extras; ++i)
        trace.steps[t].active.push_back(
            static_cast<graph::EdgeId>(rng.uniform_index(topo.num_edges())));
  }
  for (auto& step : trace.steps) {
    std::sort(step.active.begin(), step.active.end());
    step.active.erase(std::unique(step.active.begin(), step.active.end()),
                      step.active.end());
  }

  // Per-step cost jitter (the adversary's prerogative to change edge costs).
  if (params.cost_jitter_pct > 0) {
    const double j = static_cast<double>(params.cost_jitter_pct) / 100.0;
    for (auto& step : trace.steps) {
      step.cost_overrides.reserve(step.active.size());
      for (const graph::EdgeId e : step.active)
        step.cost_overrides.emplace_back(
            e, topo.edge(e).cost * (1.0 + rng.uniform(-j, j)));
    }
  }

  trace.opt = replay_schedules(trace);
  return trace;
}

OptStats replay_schedules(const AdversaryTrace& trace) {
  TN_ASSERT(trace.topology != nullptr);
  const graph::Graph& topo = *trace.topology;
  OptStats opt;

  // Audit: no edge is used by two schedules at the same time.
  std::set<std::pair<graph::EdgeId, Time>> used;
  // Buffer-height events per (node, destination): +1 when a packet starts
  // occupying Q_{v,d} at the start of a step, -1 after it leaves.
  std::map<std::pair<graph::NodeId, DestId>, std::vector<std::pair<Time, int>>>
      events;

  // Per-step cost tables are materialized lazily (only steps with overrides
  // differ from base costs).
  const auto cost_of = [&](graph::EdgeId e, Time t) {
    if (t < trace.steps.size())
      for (const auto& [oe, c] : trace.steps[t].cost_overrides)
        if (oe == e) return c;
    return topo.edge(e).cost;
  };

  std::size_t total_hops = 0;
  for (const StepSpec& step : trace.steps) {
    for (const Injection& inj : step.injections) {
      const Schedule& s = inj.schedule;
      TN_ASSERT_MSG(!s.hops.empty(), "certified schedule must reach its destination");
      graph::NodeId at = inj.packet.src;
      Time prev = s.t0;
      double cost = 0.0;
      for (std::size_t i = 0; i < s.hops.size(); ++i) {
        const auto [e, ti] = s.hops[i];
        TN_ASSERT_MSG(ti > prev || (i == 0 && ti > s.t0),
                      "schedule times must be strictly increasing");
        TN_ASSERT_MSG(used.insert({e, ti}).second,
                      "two schedules use the same edge at the same time");
        const graph::Edge& edge = topo.edge(e);
        TN_ASSERT_MSG(edge.u == at || edge.v == at,
                      "schedule path is not connected");
        const graph::NodeId next = edge.other(at);
        // Occupies Q_{at, dst} from the step after arrival (or injection)
        // through the step it departs.
        events[{at, inj.packet.dst}].push_back({prev + 1, +1});
        events[{at, inj.packet.dst}].push_back({ti + 1, -1});
        cost += cost_of(e, ti);
        at = next;
        prev = ti;
      }
      TN_ASSERT_MSG(at == inj.packet.dst, "schedule must end at the destination");
      ++opt.deliveries;
      opt.total_cost += cost;
      total_hops += s.hops.size();
      opt.makespan = std::max(opt.makespan, prev);
    }
  }

  for (auto& [key, evs] : events) {
    std::sort(evs.begin(), evs.end());
    long h = 0;
    for (const auto& [t, delta] : evs) {
      h += delta;
      opt.max_buffer = std::max(opt.max_buffer, static_cast<std::size_t>(
                                                    std::max(0L, h)));
    }
  }
  if (opt.deliveries > 0) {
    opt.avg_cost = opt.total_cost / static_cast<double>(opt.deliveries);
    opt.avg_path_length =
        static_cast<double>(total_hops) / static_cast<double>(opt.deliveries);
  }
  return opt;
}

}  // namespace thetanet::route
