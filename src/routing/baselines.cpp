#include "routing/baselines.h"

#include <algorithm>
#include <array>
#include <deque>
#include <limits>
#include <map>

#include "common/assert.h"
#include "geom/angles.h"
#include "geom/predicates.h"
#include "graph/shortest_paths.h"

namespace thetanet::route {
namespace {

/// Cycles through the trace's activation pattern during the drain window,
/// mirroring run_mac_given's behaviour so the comparisons are fair.
const StepSpec& step_at(const AdversaryTrace& trace, Time t) {
  const Time h = trace.horizon();
  TN_ASSERT(h > 0);
  return trace.steps[t < h ? t : t % h];
}

}  // namespace

BaselineResult run_greedy_geographic(const AdversaryTrace& trace,
                                     const topo::Deployment& d,
                                     const graph::Graph& topo,
                                     std::size_t queue_cap, Time extra_drain) {
  BaselineResult result;
  result.opt = trace.opt;
  RunMetrics& m = result.metrics;

  std::vector<std::deque<Packet>> queue(topo.num_nodes());
  std::vector<bool> edge_used(topo.num_edges(), false);
  std::vector<bool> active(topo.num_edges(), false);
  const Time total = trace.horizon() + extra_drain;

  for (Time t = 0; t < total; ++t) {
    const StepSpec& step = step_at(trace, t);
    for (const graph::EdgeId e : step.active) active[e] = true;
    std::fill(edge_used.begin(), edge_used.end(), false);

    // Forwarding pass: nodes in id order, head packet only, synchronous
    // arrival staging (a packet moves at most one hop per step).
    std::vector<std::pair<graph::NodeId, Packet>> arrivals;
    for (graph::NodeId u = 0; u < topo.num_nodes(); ++u) {
      if (queue[u].empty()) continue;
      Packet p = queue[u].front();
      // Greedy next hop over the full topology: the neighbour strictly
      // closest to the destination.
      graph::NodeId best = graph::kInvalidNode;
      graph::EdgeId best_edge = graph::kInvalidEdge;
      double best_d = geom::dist_sq(d.positions[u], d.positions[p.dst]);
      for (const graph::Half& h : topo.neighbors(u)) {
        const double dd = geom::dist_sq(d.positions[h.to], d.positions[p.dst]);
        if (dd < best_d || (dd == best_d && h.to < best)) {
          best_d = dd;
          best = h.to;
          best_edge = h.edge;
        }
      }
      if (best == graph::kInvalidNode) {
        // Local minimum: greedy has no closer neighbour; the packet is lost.
        queue[u].pop_front();
        ++result.local_minimum_drops;
        continue;
      }
      if (!active[best_edge] || edge_used[best_edge]) continue;  // wait
      edge_used[best_edge] = true;
      queue[u].pop_front();
      ++m.attempted_tx;
      const double cost = topo.edge(best_edge).cost;
      m.total_energy += cost;
      p.cost_spent += cost;
      ++p.hops;
      arrivals.emplace_back(best, p);
    }
    for (auto& [v, p] : arrivals) {
      if (v == p.dst) {
        ++m.deliveries;
        m.delivered_cost += p.cost_spent;
        m.total_hops_delivered += p.hops;
        m.sum_latency += t >= p.injected_at ? t - p.injected_at : 0;
      } else if (queue[v].size() < queue_cap) {
        queue[v].push_back(p);
      } else {
        ++m.dropped_in_transit;
      }
    }

    if (t < trace.horizon()) {
      for (const Injection& inj : step.injections) {
        ++m.injected_offered;
        if (queue[inj.packet.src].size() < queue_cap) {
          ++m.injected_accepted;
          queue[inj.packet.src].push_back(inj.packet);
        } else {
          ++m.dropped_at_injection;
        }
      }
    }
    for (const graph::EdgeId e : step.active) active[e] = false;
    std::size_t peak = 0;
    for (const auto& q : queue) peak = std::max(peak, q.size());
    m.peak_buffer = std::max(m.peak_buffer, peak);
  }
  for (const auto& q : queue) m.leftover_packets += q.size();
  return result;
}

GpsrResult run_gpsr(const AdversaryTrace& trace, const topo::Deployment& d,
                    const graph::Graph& topo, const graph::Graph& planar,
                    std::size_t queue_cap, Time extra_drain) {
  TN_ASSERT(topo.num_nodes() == planar.num_nodes());
  GpsrResult result;
  result.opt = trace.opt;
  RunMetrics& m = result.metrics;

  // Counter-clockwise neighbour cycles of the planar graph (for the
  // right-hand rule).
  const std::size_t n = planar.num_nodes();
  std::vector<std::vector<graph::Half>> ccw(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    ccw[v].assign(planar.neighbors(v).begin(), planar.neighbors(v).end());
    std::sort(ccw[v].begin(), ccw[v].end(),
              [&](const graph::Half& a, const graph::Half& b) {
                return geom::bearing(d.positions[v], d.positions[a.to]) <
                       geom::bearing(d.positions[v], d.positions[b.to]);
              });
  }
  // Next planar neighbour counterclockwise after `from`, as seen from v.
  const auto ccw_next = [&](graph::NodeId v,
                            graph::NodeId from) -> const graph::Half& {
    const auto& cyc = ccw[v];
    TN_DCHECK(!cyc.empty());
    const double a_from = geom::bearing(d.positions[v], d.positions[from]);
    std::size_t best = 0;
    double best_gap = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < cyc.size(); ++i) {
      double gap = geom::ccw_delta(a_from, geom::bearing(d.positions[v],
                                                         d.positions[cyc[i].to]));
      if (cyc[i].to == from || gap == 0.0) gap = geom::kTwoPi;  // full turn
      if (gap < best_gap) {
        best_gap = gap;
        best = i;
      }
    }
    return cyc[best];
  };

  struct Flight {
    Packet packet;
    bool perimeter = false;
    geom::Vec2 entry{};           // L_p: where perimeter mode was entered
    double cross_dist = 0.0;      // |crossing -> dst| of the best crossing
    graph::NodeId came_from = graph::kInvalidNode;
    graph::NodeId e0_from = graph::kInvalidNode;  // first edge of this face
    graph::NodeId e0_to = graph::kInvalidNode;
  };

  std::vector<std::deque<Flight>> queue(n);
  std::vector<bool> active(topo.num_edges(), false);
  std::vector<bool> planar_active(planar.num_edges(), false);
  std::vector<bool> edge_used(topo.num_edges(), false);
  std::vector<bool> planar_used(planar.num_edges(), false);

  // An activation in the trace refers to `topo` edge ids; a planar edge is
  // active iff the corresponding topo edge is (planar is a subgraph).
  std::vector<graph::EdgeId> planar_to_topo(planar.num_edges(),
                                            graph::kInvalidEdge);
  for (graph::EdgeId e = 0; e < planar.num_edges(); ++e)
    planar_to_topo[e] = topo.find_edge(planar.edge(e).u, planar.edge(e).v);

  const Time total = trace.horizon() + extra_drain;
  for (Time t = 0; t < total; ++t) {
    const StepSpec& step = step_at(trace, t);
    for (const graph::EdgeId e : step.active) active[e] = true;
    for (graph::EdgeId pe = 0; pe < planar.num_edges(); ++pe)
      planar_active[pe] = planar_to_topo[pe] != graph::kInvalidEdge &&
                          active[planar_to_topo[pe]];
    std::fill(edge_used.begin(), edge_used.end(), false);
    std::fill(planar_used.begin(), planar_used.end(), false);

    std::vector<std::pair<graph::NodeId, Flight>> arrivals;
    for (graph::NodeId u = 0; u < n; ++u) {
      if (queue[u].empty()) continue;
      Flight f = queue[u].front();  // working copy; persisted only on forward
      const geom::Vec2 dst_pos = d.positions[f.packet.dst];

      // Perimeter -> greedy recovery (persist: idempotent and monotone).
      if (f.perimeter && geom::dist_sq(d.positions[u], dst_pos) <
                             geom::dist_sq(f.entry, dst_pos)) {
        f.perimeter = false;
        queue[u].front() = f;
      }

      graph::NodeId next = graph::kInvalidNode;
      graph::EdgeId via_topo = graph::kInvalidEdge;
      graph::EdgeId via_planar = graph::kInvalidEdge;
      bool drop = false;
      bool perimeter_hop = false;

      if (!f.perimeter) {
        // Greedy over the full topology.
        double best_d = geom::dist_sq(d.positions[u], dst_pos);
        for (const graph::Half& h : topo.neighbors(u)) {
          const double dd = geom::dist_sq(d.positions[h.to], dst_pos);
          if (dd < best_d || (dd == best_d && h.to < next)) {
            best_d = dd;
            next = h.to;
            via_topo = h.edge;
          }
        }
        if (next == graph::kInvalidNode) {
          if (ccw[u].empty()) {
            drop = true;  // isolated on the planar graph: no recovery
          } else {
            // Enter perimeter mode (persist: idempotent).
            if (f.came_from != graph::kInvalidNode || !f.perimeter) {
              ++result.perimeter_entries;
            }
            f.perimeter = true;
            f.entry = d.positions[u];
            f.cross_dist = geom::dist(f.entry, dst_pos);
            f.came_from = graph::kInvalidNode;
            queue[u].front() = f;
          }
        }
      }

      if (!drop && f.perimeter) {
        perimeter_hop = true;
        graph::Half cand{graph::kInvalidNode, graph::kInvalidEdge};
        bool new_face = false;
        if (f.came_from == graph::kInvalidNode) {
          // At the entry node: first face edge = smallest ccw angle from the
          // direction towards the destination (GPSR's starting rule).
          const double a0 = geom::bearing(d.positions[u], dst_pos);
          double best_gap = std::numeric_limits<double>::infinity();
          for (const graph::Half& h : ccw[u]) {
            const double gap = geom::ccw_delta(
                a0, geom::bearing(d.positions[u], d.positions[h.to]));
            if (gap < best_gap) {
              best_gap = gap;
              cand = h;
            }
          }
          new_face = true;
        } else {
          cand = ccw_next(u, f.came_from);
          // Face-change rule: rotate past edges crossing (entry, dst) at a
          // point closer to the destination than the best crossing so far.
          for (std::size_t rot = 0; rot < ccw[u].size(); ++rot) {
            const auto x = geom::segment_intersection(
                d.positions[u], d.positions[cand.to], f.entry, dst_pos);
            if (!x) break;
            const double xd = geom::dist(*x, dst_pos);
            if (xd >= f.cross_dist) break;
            f.cross_dist = xd;  // applied to the forwarded copy only
            new_face = true;
            cand = ccw_next(u, cand.to);
          }
        }
        if (cand.to == graph::kInvalidNode) {
          drop = true;
        } else if (!new_face && u == f.e0_from && cand.to == f.e0_to) {
          // Completed the face without progress: unreachable on the planar
          // graph.
          drop = true;
        } else {
          if (new_face) {
            f.e0_from = u;
            f.e0_to = cand.to;
          }
          next = cand.to;
          via_planar = cand.edge;
        }
      }

      if (drop) {
        queue[u].pop_front();
        ++result.local_minimum_drops;
        continue;
      }
      if (next == graph::kInvalidNode) continue;

      // Gate by activation and per-step edge capacity. Nothing about the
      // flight was persisted beyond the idempotent mode switch, so a gated
      // hop simply retries next step.
      if (via_planar != graph::kInvalidEdge) {
        if (!planar_active[via_planar] || planar_used[via_planar]) continue;
        planar_used[via_planar] = true;
        via_topo = planar_to_topo[via_planar];
        if (via_topo != graph::kInvalidEdge) edge_used[via_topo] = true;
      } else {
        if (!active[via_topo] || edge_used[via_topo]) continue;
        edge_used[via_topo] = true;
      }

      queue[u].pop_front();
      ++m.attempted_tx;
      const double cost = via_topo != graph::kInvalidEdge
                              ? topo.edge(via_topo).cost
                              : planar.edge(via_planar).cost;
      m.total_energy += cost;
      f.packet.cost_spent += cost;
      ++f.packet.hops;
      if (perimeter_hop) {
        ++result.perimeter_hops;
        f.came_from = u;
      }
      arrivals.emplace_back(next, std::move(f));
    }

    for (auto& [v, f] : arrivals) {
      if (v == f.packet.dst) {
        ++m.deliveries;
        m.delivered_cost += f.packet.cost_spent;
        m.total_hops_delivered += f.packet.hops;
        m.sum_latency += t >= f.packet.injected_at ? t - f.packet.injected_at : 0;
      } else if (queue[v].size() < queue_cap) {
        queue[v].push_back(std::move(f));
      } else {
        ++m.dropped_in_transit;
      }
    }

    if (t < trace.horizon()) {
      for (const Injection& inj : step.injections) {
        ++m.injected_offered;
        if (queue[inj.packet.src].size() < queue_cap) {
          ++m.injected_accepted;
          Flight f;
          f.packet = inj.packet;
          queue[inj.packet.src].push_back(std::move(f));
        } else {
          ++m.dropped_at_injection;
        }
      }
    }
    for (const graph::EdgeId e : step.active) active[e] = false;
    std::size_t peak = 0;
    for (const auto& q : queue) peak = std::max(peak, q.size());
    m.peak_buffer = std::max(m.peak_buffer, peak);
  }
  for (const auto& q : queue) m.leftover_packets += q.size();
  return result;
}

BaselineResult run_source_routing(const AdversaryTrace& trace,
                                  const graph::Graph& topo,
                                  graph::Weight path_metric,
                                  std::size_t queue_cap, Time extra_drain) {
  BaselineResult result;
  result.opt = trace.opt;
  RunMetrics& m = result.metrics;

  // Packet state: remaining path (edge ids) + current position index.
  struct Flight {
    Packet packet;
    std::vector<graph::EdgeId> path;
    std::size_t next = 0;  ///< index into path
  };
  // Per (edge, direction) FIFO of flights waiting to cross.
  // direction 0: u -> v, 1: v -> u.
  std::vector<std::array<std::deque<Flight>, 2>> waiting(topo.num_edges());
  std::vector<std::size_t> node_load(topo.num_nodes(), 0);

  // Shortest-path trees are cached per destination (reverse tree; the graph
  // is undirected so dist/parents from the destination give paths to it).
  std::map<graph::NodeId, graph::ShortestPathTree> trees;
  const auto tree_for = [&](graph::NodeId dst) -> const graph::ShortestPathTree& {
    auto it = trees.find(dst);
    if (it == trees.end())
      it = trees.emplace(dst, graph::dijkstra(topo, dst, path_metric)).first;
    return it->second;
  };

  const auto enqueue = [&](Flight&& f, graph::NodeId at) {
    TN_DCHECK(f.next < f.path.size());
    const graph::EdgeId e = f.path[f.next];
    const graph::Edge& edge = topo.edge(e);
    const int dir = edge.u == at ? 0 : 1;
    TN_DCHECK(edge.u == at || edge.v == at);
    waiting[e][static_cast<std::size_t>(dir)].push_back(std::move(f));
    ++node_load[at];
  };

  const Time total = trace.horizon() + extra_drain;
  for (Time t = 0; t < total; ++t) {
    const StepSpec& step = step_at(trace, t);

    // One packet per active edge per direction.
    std::vector<std::pair<graph::NodeId, Flight>> arrivals;
    for (const graph::EdgeId e : step.active) {
      for (int dir = 0; dir < 2; ++dir) {
        auto& q = waiting[e][static_cast<std::size_t>(dir)];
        if (q.empty()) continue;
        Flight f = std::move(q.front());
        q.pop_front();
        const graph::Edge& edge = topo.edge(e);
        const graph::NodeId from = dir == 0 ? edge.u : edge.v;
        const graph::NodeId to = dir == 0 ? edge.v : edge.u;
        --node_load[from];
        ++m.attempted_tx;
        const double cost = edge.cost;
        m.total_energy += cost;
        f.packet.cost_spent += cost;
        ++f.packet.hops;
        ++f.next;
        arrivals.emplace_back(to, std::move(f));
      }
    }
    for (auto& [v, f] : arrivals) {
      if (v == f.packet.dst) {
        ++m.deliveries;
        m.delivered_cost += f.packet.cost_spent;
        m.total_hops_delivered += f.packet.hops;
        m.sum_latency += t >= f.packet.injected_at ? t - f.packet.injected_at : 0;
        continue;
      }
      TN_DCHECK(f.next < f.path.size());
      if (node_load[v] < queue_cap) {
        enqueue(std::move(f), v);
      } else {
        ++m.dropped_in_transit;
      }
    }

    if (t < trace.horizon()) {
      for (const Injection& inj : step.injections) {
        ++m.injected_offered;
        const auto& tree = tree_for(inj.packet.dst);
        // Walk from src towards dst along the reverse tree.
        if (tree.dist[inj.packet.src] == graph::kUnreachable ||
            node_load[inj.packet.src] >= queue_cap) {
          ++m.dropped_at_injection;
          continue;
        }
        Flight f;
        f.packet = inj.packet;
        for (graph::NodeId at = inj.packet.src; at != inj.packet.dst;
             at = tree.parent[at])
          f.path.push_back(tree.via_edge[at]);
        TN_DCHECK(!f.path.empty());
        ++m.injected_accepted;
        enqueue(std::move(f), inj.packet.src);
      }
    }
    std::size_t peak = 0;
    for (const std::size_t l : node_load) peak = std::max(peak, l);
    m.peak_buffer = std::max(m.peak_buffer, peak);
  }
  for (const std::size_t l : node_load) m.leftover_packets += l;
  return result;
}

}  // namespace thetanet::route
