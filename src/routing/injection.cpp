#include "routing/injection.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/assert.h"

namespace thetanet::route {

namespace {

/// First `k` nodes of a deterministic shuffle of [0, n) — a sample without
/// replacement that depends only on (rng state, n, k).
std::vector<graph::NodeId> sample_nodes(std::size_t n, std::size_t k,
                                        geom::Rng& rng) {
  std::vector<graph::NodeId> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = static_cast<graph::NodeId>(i);
  if (k >= n) return all;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + rng.uniform_index(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  std::sort(all.begin(), all.end());  // canonical order for reproducibility
  return all;
}

graph::NodeId max_degree_node(const graph::Graph& g) {
  graph::NodeId best = 0;
  std::size_t best_deg = 0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const std::size_t d = g.degree(v);
    if (d > best_deg) {  // strictly greater: smallest id wins ties
      best_deg = d;
      best = v;
    }
  }
  return best;
}

}  // namespace

bool parse_injection_process(const char* name, InjectionSpec::Process* out) {
  using P = InjectionSpec::Process;
  if (std::strcmp(name, "poisson") == 0) *out = P::kPoisson;
  else if (std::strcmp(name, "bursty") == 0) *out = P::kBursty;
  else if (std::strcmp(name, "hotspot") == 0) *out = P::kHotspot;
  else if (std::strcmp(name, "adversarial") == 0) *out = P::kAdversarialCut;
  else return false;
  return true;
}

const char* injection_process_name(InjectionSpec::Process p) {
  switch (p) {
    case InjectionSpec::Process::kPoisson: return "poisson";
    case InjectionSpec::Process::kBursty: return "bursty";
    case InjectionSpec::Process::kHotspot: return "hotspot";
    case InjectionSpec::Process::kAdversarialCut: return "adversarial";
  }
  return "?";
}

InjectionEngine::InjectionEngine(const graph::Graph& topo,
                                 const InjectionSpec& spec)
    : spec_(spec), rng_(spec.seed) {
  TN_ASSERT(topo.num_nodes() >= 2);
  const std::size_t n = topo.num_nodes();
  using P = InjectionSpec::Process;

  // Destination pool first (so the adversarial target can be excluded from
  // the source pool).
  switch (spec_.process) {
    case P::kAdversarialCut:
      dests_ = {max_degree_node(topo)};
      break;
    case P::kHotspot:
      dests_ = sample_nodes(n, std::max<std::size_t>(1, spec_.num_destinations),
                            rng_);
      break;
    case P::kPoisson:
    case P::kBursty:
      dests_ = sample_nodes(
          n, spec_.num_destinations == 0 ? n : spec_.num_destinations, rng_);
      break;
  }

  sources_ =
      sample_nodes(n, spec_.num_sources == 0 ? n : spec_.num_sources, rng_);
  // A single-sink process must not draw the sink as a source (the router
  // asserts against injecting at the destination).
  if (dests_.size() == 1) {
    const auto it = std::find(sources_.begin(), sources_.end(), dests_[0]);
    if (it != sources_.end()) sources_.erase(it);
    TN_ASSERT(!sources_.empty());
  }

  rate_per_round_ =
      spec_.process == P::kAdversarialCut
          ? spec_.rate * static_cast<double>(topo.degree(dests_[0]))
          : spec_.rate;
}

std::uint64_t InjectionEngine::poisson(double mean) {
  // Knuth's product method — exact and branch-cheap for the per-round means
  // used here (mean <~ 32). Deterministic given the engine RNG stream.
  if (mean <= 0.0) return 0;
  const double limit = std::exp(-mean);
  std::uint64_t k = 0;
  double prod = rng_.uniform();
  while (prod > limit) {
    ++k;
    prod *= rng_.uniform();
  }
  return k;
}

void InjectionEngine::step(Time now, const RunMetrics& m,
                           std::vector<Packet>& out) {
  out.clear();
  using P = InjectionSpec::Process;

  double mean = rate_per_round_;
  if (spec_.process == P::kBursty) {
    const std::uint64_t period = spec_.burst_len + spec_.gap_len;
    const std::uint64_t phase = period == 0 ? 0 : now % period;
    if (phase >= spec_.burst_len) return;  // gap: silent round
    mean *= spec_.burst_multiplier;
  }

  std::uint64_t arrivals = poisson(mean);
  if (spec_.window > 0) {
    // Closed loop: never exceed `window` packets outstanding. Offered-but-
    // dropped injections are not outstanding (they never entered a buffer).
    const std::size_t in_network =
        m.injected_accepted - m.deliveries - m.dropped_in_transit;
    const std::uint64_t room =
        in_network >= spec_.window
            ? 0
            : static_cast<std::uint64_t>(spec_.window - in_network);
    arrivals = std::min(arrivals, room);
  }

  for (std::uint64_t a = 0; a < arrivals; ++a) {
    graph::NodeId src = sources_[rng_.uniform_index(sources_.size())];
    const DestId dst = dests_[rng_.uniform_index(dests_.size())];
    if (src == dst) {
      if (sources_.size() == 1) continue;  // degenerate spec: skip arrival
      // Deterministic remap instead of a rejection loop.
      const auto it = std::lower_bound(sources_.begin(), sources_.end(), src);
      const std::size_t idx = static_cast<std::size_t>(it - sources_.begin());
      src = sources_[(idx + 1) % sources_.size()];
    }
    Packet p;
    p.id = next_id_++;
    p.src = src;
    p.dst = dst;
    p.injected_at = now;
    out.push_back(p);
  }
}

}  // namespace thetanet::route
