#pragma once
// Packet bookkeeping for the adversarial routing model of Section 3.1.

#include <cstdint>

#include "graph/graph.h"

namespace thetanet::route {

using Time = std::uint32_t;
using DestId = graph::NodeId;

struct Packet {
  std::uint64_t id = 0;
  graph::NodeId src = graph::kInvalidNode;
  DestId dst = graph::kInvalidNode;
  Time injected_at = 0;
  double cost_spent = 0.0;  ///< energy charged to this packet so far
  std::uint32_t hops = 0;
};

}  // namespace thetanet::route
