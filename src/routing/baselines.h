#pragma once
// Routing baselines from the paper's related-work discussion (Section 1.2):
//
//  * Greedy geographic forwarding — the greedy mode of GPSR [30] and of the
//    geometric routing line of work [25]: forward to the neighbour closest
//    to the destination; a packet reaching a *local minimum* (no neighbour
//    closer) is lost. No buffers pile up, no global state — but also no
//    delivery guarantee, which is precisely the contrast the paper draws
//    with the balancing approach.
//
//  * Oracle source routing — each packet is pinned at injection to a
//    min-cost path (computed with full topology knowledge) and forwarded
//    FIFO along it whenever its next edge is active. This is the strongest
//    "heuristic with perfect information" baseline: it cannot adapt to
//    congestion or to the adversary's edge activations.
//
// Both run under the MAC-given scenario (Section 3.2): the adversary's
// per-step active edge sets gate which hops can happen, exactly as for the
// balancing router, so bench E12's comparison is apples-to-apples.

#include "geom/vec2.h"
#include "graph/graph.h"
#include "routing/adversary.h"
#include "routing/metrics.h"
#include "topology/deployment.h"

namespace thetanet::route {

struct BaselineResult {
  RunMetrics metrics;
  OptStats opt;  ///< copied from the trace

  /// Packets dropped at a greedy local minimum (greedy baseline only).
  std::size_t local_minimum_drops = 0;

  double throughput_ratio() const {
    return opt.deliveries == 0 ? 0.0
                               : static_cast<double>(metrics.deliveries) /
                                     static_cast<double>(opt.deliveries);
  }
  double cost_ratio() const {
    return opt.avg_cost == 0.0 ? 0.0
                               : metrics.avg_cost_per_delivery() / opt.avg_cost;
  }
};

/// Greedy geographic forwarding over `topo` (node positions from `d`).
/// Per step, every node may forward the head packet of its FIFO queue to
/// its geographically-best neighbour, provided the connecting edge is
/// active this step and not already used; a packet whose best topological
/// neighbour is not closer to the destination is dropped (local minimum).
/// Per-node queue capacity `queue_cap` bounds the space overhead.
BaselineResult run_greedy_geographic(const AdversaryTrace& trace,
                                     const topo::Deployment& d,
                                     const graph::Graph& topo,
                                     std::size_t queue_cap,
                                     Time extra_drain = 0);

/// GPSR [30] proper: greedy forwarding over `topo` with *perimeter-mode*
/// recovery on the planar subgraph `planar` (GPSR planarizes via the
/// Gabriel subgraph; pass topo::gabriel_graph(d) or any planar connected
/// subgraph sharing the node ids). A packet stuck at a greedy local minimum
/// switches to perimeter mode: it walks faces of the planar graph by the
/// right-hand rule, changing faces where edges cross the line towards the
/// destination, and returns to greedy as soon as it reaches a node closer
/// to the destination than where it got stuck. On a connected planar
/// subgraph this guarantees delivery (the `perimeter_hops` metric shows the
/// price). `local_minimum_drops` then counts only packets whose perimeter
/// walk wrapped around without progress (disconnected destination).
struct GpsrResult : BaselineResult {
  std::size_t perimeter_entries = 0;  ///< times a packet entered perimeter mode
  std::uint64_t perimeter_hops = 0;   ///< hops taken in perimeter mode
};
GpsrResult run_gpsr(const AdversaryTrace& trace, const topo::Deployment& d,
                    const graph::Graph& topo, const graph::Graph& planar,
                    std::size_t queue_cap, Time extra_drain = 0);

/// Oracle source routing over `topo`: packets follow their injection-time
/// min-`path_metric` path, one packet per edge per direction per step,
/// FIFO per hop. Packets arriving at a node whose queue is full are
/// dropped in transit.
BaselineResult run_source_routing(const AdversaryTrace& trace,
                                  const graph::Graph& topo,
                                  graph::Weight path_metric,
                                  std::size_t queue_cap, Time extra_drain = 0);

}  // namespace thetanet::route
