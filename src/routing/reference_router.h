#pragma once
// Brute-force oracle for the (T, gamma)-balancing rule — the pre-SoA
// implementation kept verbatim as an executable specification:
//
//   * the buffer bank is the original map-of-vectors
//     (std::map<DestId, std::vector<Packet>> per node), every height lookup
//     a tree probe;
//   * plan() is the naive O(E * D) double loop: for each active edge and
//     each direction, scan every destination buffered at the sender and
//     probe the receiver's height.
//
// Tests compare the SoA fast path against this oracle transmission-for-
// transmission (same plans, same metrics); bench_router runs it at matched
// workload to measure the speedup the SoA rework buys. It records no
// telemetry — goldens only watch the production path.

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "routing/metrics.h"
#include "routing/packet.h"

namespace thetanet::route {

/// Mirror of core::PlannedTx (routing cannot depend on core; tests convert
/// field-for-field).
struct ReferenceTx {
  graph::EdgeId edge = graph::kInvalidEdge;
  graph::NodeId from = graph::kInvalidNode;
  graph::NodeId to = graph::kInvalidNode;
  DestId dest = graph::kInvalidNode;
  double benefit = 0.0;
};

class ReferenceRouter {
 public:
  ReferenceRouter(std::size_t num_nodes, double threshold, double gamma,
                  std::size_t max_height)
      : buffers_(num_nodes),
        threshold_(threshold),
        gamma_(gamma),
        max_height_(max_height) {}

  std::vector<ReferenceTx> plan(const graph::Graph& topo,
                                std::span<const graph::EdgeId> active,
                                std::span<const double> costs) const;

  /// Unicast-only execute (delivery test is to == dst), with the exact
  /// two-phase departure/arrival semantics of the production router.
  void execute(std::span<const ReferenceTx> txs,
               const std::vector<bool>& failed, std::span<const double> costs,
               Time now, RunMetrics& m);

  void inject(const Packet& p, RunMetrics& m);
  void end_step(RunMetrics& m);

  std::size_t height(graph::NodeId v, DestId d) const;
  std::size_t packets_in_flight() const;
  std::size_t peak_height() const;
  std::uint64_t round() const { return round_; }

 private:
  std::optional<ReferenceTx> best_for_pair(graph::NodeId from,
                                           graph::NodeId to, graph::EdgeId e,
                                           double cost) const;
  bool push(graph::NodeId v, const Packet& p);
  std::optional<Packet> pop(graph::NodeId v, DestId d);

  std::vector<std::map<DestId, std::vector<Packet>>> buffers_;
  double threshold_;
  double gamma_;
  std::size_t max_height_;
  std::uint64_t round_ = 0;
};

}  // namespace thetanet::route
