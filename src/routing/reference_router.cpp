#include "routing/reference_router.h"

#include <algorithm>

#include "common/assert.h"

namespace thetanet::route {

std::size_t ReferenceRouter::height(graph::NodeId v, DestId d) const {
  const auto& node = buffers_[v];
  const auto it = node.find(d);
  return it == node.end() ? 0 : it->second.size();
}

bool ReferenceRouter::push(graph::NodeId v, const Packet& p) {
  auto& q = buffers_[v][p.dst];
  if (q.size() >= max_height_) {
    if (q.empty()) buffers_[v].erase(p.dst);
    return false;
  }
  q.push_back(p);
  return true;
}

std::optional<Packet> ReferenceRouter::pop(graph::NodeId v, DestId d) {
  auto& node = buffers_[v];
  const auto it = node.find(d);
  if (it == node.end() || it->second.empty()) return std::nullopt;
  Packet p = it->second.back();
  it->second.pop_back();
  if (it->second.empty()) node.erase(it);
  return p;
}

std::optional<ReferenceTx> ReferenceRouter::best_for_pair(graph::NodeId from,
                                                          graph::NodeId to,
                                                          graph::EdgeId e,
                                                          double cost) const {
  std::optional<ReferenceTx> best;
  for (const auto& [d, q] : buffers_[from]) {
    const double benefit = static_cast<double>(q.size()) -
                           static_cast<double>(height(to, d)) - gamma_ * cost;
    if (benefit <= threshold_) continue;
    if (!best || benefit > best->benefit)
      best = ReferenceTx{e, from, to, d, benefit};
  }
  return best;
}

std::vector<ReferenceTx> ReferenceRouter::plan(
    const graph::Graph& topo, std::span<const graph::EdgeId> active,
    std::span<const double> costs) const {
  std::vector<ReferenceTx> txs;
  for (const graph::EdgeId e : active) {
    const graph::NodeId u = topo.edge_u(e);
    const graph::NodeId v = topo.edge_v(e);
    const std::optional<ReferenceTx> fwd = best_for_pair(u, v, e, costs[e]);
    const std::optional<ReferenceTx> bwd = best_for_pair(v, u, e, costs[e]);
    if (fwd && (!bwd || fwd->benefit >= bwd->benefit)) {
      txs.push_back(*fwd);
    } else if (bwd) {
      txs.push_back(*bwd);
    }
  }
  return txs;
}

void ReferenceRouter::execute(std::span<const ReferenceTx> txs,
                              const std::vector<bool>& failed,
                              std::span<const double> costs, Time now,
                              RunMetrics& m) {
  TN_ASSERT(failed.empty() || failed.size() == txs.size());
  std::vector<std::pair<Packet, graph::NodeId>> in_air;
  in_air.reserve(txs.size());
  for (std::size_t i = 0; i < txs.size(); ++i) {
    const ReferenceTx& tx = txs[i];
    const double cost = costs[tx.edge];
    if (!failed.empty() && failed[i]) {
      ++m.attempted_tx;
      ++m.failed_tx;
      m.wasted_energy += cost;
      continue;
    }
    std::optional<Packet> p = pop(tx.from, tx.dest);
    if (!p) {
      ++m.skipped_tx;
      continue;
    }
    ++m.attempted_tx;
    m.total_energy += cost;
    p->cost_spent += cost;
    ++p->hops;
    in_air.emplace_back(*p, tx.to);
  }
  for (auto& [p, to] : in_air) {
    if (to == p.dst) {
      ++m.deliveries;
      m.delivered_cost += p.cost_spent;
      m.total_hops_delivered += p.hops;
      m.sum_latency += now >= p.injected_at ? now - p.injected_at : 0;
      continue;
    }
    if (!push(to, p)) ++m.dropped_in_transit;
  }
}

void ReferenceRouter::inject(const Packet& p, RunMetrics& m) {
  TN_ASSERT_MSG(p.src != p.dst,
                "cannot inject a packet at its own destination");
  ++m.injected_offered;
  if (push(p.src, p)) {
    ++m.injected_accepted;
  } else {
    ++m.dropped_at_injection;
  }
}

void ReferenceRouter::end_step(RunMetrics& m) {
  m.peak_buffer = std::max(m.peak_buffer, peak_height());
  ++round_;
}

std::size_t ReferenceRouter::packets_in_flight() const {
  std::size_t total = 0;
  for (const auto& node : buffers_)
    for (const auto& [d, q] : node) total += q.size();
  return total;
}

std::size_t ReferenceRouter::peak_height() const {
  std::size_t h = 0;
  for (const auto& node : buffers_)
    for (const auto& [d, q] : node) h = std::max(h, q.size());
  return h;
}

}  // namespace thetanet::route
