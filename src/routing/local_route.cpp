#include "routing/local_route.h"

#include <algorithm>

#include "common/parallel.h"
#include "geom/angles.h"
#include "geom/rng.h"

namespace thetanet::route {
namespace {

using graph::NodeId;

NodeId compass_step(const graph::Graph& g, const topo::Deployment& d,
                    NodeId cur, NodeId target, bool wrong_tie_break) {
  const geom::Vec2 pc = d.positions[cur];
  const double to_target = geom::bearing(pc, d.positions[target]);
  NodeId best = graph::kInvalidNode;
  double best_angle = 0.0;
  double best_d2 = 0.0;
  // The target is NOT short-circuited: it competes as an ordinary angle-0
  // candidate under the same strict key, so the step is a pure function of
  // the candidate set (not of adjacency order) and the planted tie-break
  // mutation expresses even when the target is adjacent.
  for (const graph::Half& h : g.neighbors(cur)) {
    const NodeId v = h.to;
    const double d2 = geom::dist_sq(pc, d.positions[v]);
    if (d2 == 0.0) {
      if (v == target) return v;  // coincident target: free delivery
      continue;                   // coincident non-target: bearing undefined
    }
    // For v == target this is exactly 0 (identical bearings).
    const double angle =
        geom::angle_between(to_target, geom::bearing(pc, d.positions[v]));
    bool wins;
    if (best == graph::kInvalidNode) {
      wins = true;
    } else if (angle != best_angle) {
      wins = angle < best_angle;
    } else if (d2 != best_d2) {
      // The planted mutation: prefer the farther neighbor on an exact
      // angle tie. On collinear chains this overshoots the target and
      // ping-pongs; the correct nearer-first rule walks the segment.
      wins = wrong_tie_break ? d2 > best_d2 : d2 < best_d2;
    } else {
      wins = v < best;
    }
    if (wins) {
      best = v;
      best_angle = angle;
      best_d2 = d2;
    }
  }
  return best;
}

NodeId theta_step(const graph::Graph& g, const topo::Deployment& d, NodeId cur,
                  NodeId target, const topo::ConeScheme& scheme,
                  bool wrong_tie_break) {
  const geom::Vec2 pc = d.positions[cur];
  const geom::Vec2 pt = d.positions[target];
  const int cone = scheme.cone_of(pc, pt);
  NodeId best = graph::kInvalidNode;
  double best_proj = 0.0;
  double best_d2 = 0.0;
  for (const graph::Half& h : g.neighbors(cur)) {
    const NodeId v = h.to;
    if (v == target) return v;
    const geom::Vec2 pv = d.positions[v];
    const double d2 = geom::dist_sq(pc, pv);
    if (d2 == 0.0) continue;
    if (scheme.cone_of(pc, pv) != cone) continue;
    const double proj = scheme.projection(cone, pc, pv);
    const bool wins =
        best == graph::kInvalidNode || proj < best_proj ||
        (proj == best_proj && (d2 < best_d2 || (d2 == best_d2 && v < best)));
    if (wins) {
      best = v;
      best_proj = proj;
      best_d2 = d2;
    }
  }
  // Empty cone (range restriction can starve it): compass fallback keeps
  // the walk moving without extra state.
  if (best == graph::kInvalidNode)
    return compass_step(g, d, cur, target, wrong_tie_break);
  return best;
}

}  // namespace

NodeId local_route_step(const graph::Graph& g, const topo::Deployment& d,
                        NodeId cur, NodeId target,
                        const LocalRouteOptions& opt) {
  TN_ASSERT(cur != target);
  switch (opt.policy) {
    case LocalPolicy::kCompass:
      return compass_step(g, d, cur, target, opt.plant_wrong_tie_break);
    case LocalPolicy::kTheta:
      return theta_step(g, d, cur, target, opt.scheme,
                        opt.plant_wrong_tie_break);
  }
  TN_ASSERT_MSG(false, "unreachable");
  return graph::kInvalidNode;
}

LocalRouteResult local_route(const graph::Graph& g, const topo::Deployment& d,
                             NodeId s, NodeId t,
                             const LocalRouteOptions& opt) {
  LocalRouteResult r;
  if (s == t) {
    r.delivered = true;
    return r;
  }
  const std::size_t budget =
      opt.max_hops != 0 ? opt.max_hops : 4 * d.size() + 16;
  NodeId cur = s;
  while (r.hops < budget) {
    const NodeId next = local_route_step(g, d, cur, t, opt);
    if (next == graph::kInvalidNode) return r;  // dead end
    r.length += d.distance(cur, next);
    ++r.hops;
    cur = next;
    if (cur == t) {
      r.delivered = true;
      return r;
    }
  }
  return r;  // budget exhausted: a cycle (only broken policies cycle)
}

RoutingRatioStats measure_routing_ratio(const graph::Graph& g,
                                        const topo::Deployment& d,
                                        const LocalRouteOptions& opt,
                                        std::size_t max_pairs,
                                        std::uint64_t seed) {
  RoutingRatioStats stats;
  const std::size_t n = d.size();
  if (n < 2 || max_pairs == 0) return stats;
  // Deterministic pair selection: exhaustive when the ordered-pair count
  // fits the budget, seeded sampling otherwise. The list is built serially;
  // routing is the expensive part and runs parallel below.
  std::vector<std::pair<NodeId, NodeId>> pairs;
  if (n * (n - 1) <= max_pairs) {
    pairs.reserve(n * (n - 1));
    for (NodeId s = 0; s < n; ++s)
      for (NodeId t = 0; t < n; ++t)
        if (s != t) pairs.emplace_back(s, t);
  } else {
    geom::Rng rng(seed);
    pairs.reserve(max_pairs);
    for (std::size_t i = 0; i < max_pairs; ++i) {
      const auto s = static_cast<NodeId>(rng.uniform_index(n));
      auto t = static_cast<NodeId>(rng.uniform_index(n - 1));
      if (t >= s) ++t;
      pairs.emplace_back(s, t);
    }
  }
  struct Acc {
    std::size_t routed = 0;
    std::size_t delivered = 0;
    double max_ratio = 0.0;
    double sum_ratio = 0.0;
  };
  const Acc acc = tn::parallel_reduce(
      pairs.size(), 64, Acc{},
      [&](std::size_t begin, std::size_t end) {
        Acc a;
        for (std::size_t i = begin; i < end; ++i) {
          const auto [s, t] = pairs[i];
          const double direct = d.distance(s, t);
          if (direct == 0.0) continue;
          ++a.routed;
          const LocalRouteResult r = local_route(g, d, s, t, opt);
          if (!r.delivered) continue;
          ++a.delivered;
          const double ratio = r.length / direct;
          a.max_ratio = std::max(a.max_ratio, ratio);
          a.sum_ratio += ratio;
        }
        return a;
      },
      [](Acc a, Acc b) {
        a.routed += b.routed;
        a.delivered += b.delivered;
        a.max_ratio = std::max(a.max_ratio, b.max_ratio);
        a.sum_ratio += b.sum_ratio;
        return a;
      });
  stats.pairs = acc.routed;
  stats.delivered = acc.delivered;
  stats.max_ratio = acc.max_ratio;
  stats.mean_ratio =
      acc.delivered == 0 ? 0.0 : acc.sum_ratio / static_cast<double>(acc.delivered);
  return stats;
}

}  // namespace thetanet::route
