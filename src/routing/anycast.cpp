#include "routing/anycast.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

#include "common/assert.h"
#include "graph/shortest_paths.h"

namespace thetanet::route {

AnycastGroups::AnycastGroups(std::vector<std::vector<graph::NodeId>> members)
    : members_(std::move(members)) {
  for (auto& g : members_) {
    std::sort(g.begin(), g.end());
    g.erase(std::unique(g.begin(), g.end()), g.end());
    TN_ASSERT_MSG(!g.empty(), "anycast group must have at least one member");
  }
}

bool AnycastGroups::contains(DestId g, graph::NodeId v) const {
  TN_ASSERT(g < members_.size());
  return std::binary_search(members_[g].begin(), members_[g].end(), v);
}

namespace {

/// Multi-source Dijkstra from all members of a group (cost weights): the
/// resulting tree gives, for every node, a min-cost path *to* its nearest
/// member (the graph is undirected, so the reversed tree path serves).
graph::ShortestPathTree group_tree(const graph::Graph& topo,
                                   const std::vector<graph::NodeId>& members,
                                   graph::Weight weight) {
  const std::size_t n = topo.num_nodes();
  graph::ShortestPathTree t;
  t.dist.assign(n, graph::kUnreachable);
  t.parent.assign(n, graph::kInvalidNode);
  t.via_edge.assign(n, graph::kInvalidEdge);
  using Entry = std::pair<double, graph::NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (const graph::NodeId m : members) {
    t.dist[m] = 0.0;
    heap.emplace(0.0, m);
  }
  std::vector<bool> done(n, false);
  while (!heap.empty()) {
    const auto [dd, u] = heap.top();
    heap.pop();
    if (done[u]) continue;
    done[u] = true;
    for (const graph::Half& h : topo.neighbors(u)) {
      const double w = graph::edge_weight(topo.edge(h.edge), weight);
      if (dd + w < t.dist[h.to]) {
        t.dist[h.to] = dd + w;
        t.parent[h.to] = u;
        t.via_edge[h.to] = h.edge;
        heap.emplace(dd + w, h.to);
      }
    }
  }
  return t;
}

}  // namespace

AdversaryTrace make_anycast_trace(const graph::Graph& topo,
                                  const AnycastGroups& groups,
                                  const TraceParams& params, geom::Rng& rng) {
  AdversaryTrace trace;
  trace.topology = &topo;
  const Time total = params.horizon + params.drain;
  trace.steps.resize(total);
  const std::size_t n = topo.num_nodes();
  TN_ASSERT(n >= 2 && groups.size() >= 1);

  std::vector<graph::NodeId> sources = params.source_pool;
  if (sources.empty()) {
    if (params.num_sources == 0 || params.num_sources >= n) {
      sources.resize(n);
      for (graph::NodeId v = 0; v < n; ++v) sources[v] = v;
    } else {
      std::set<graph::NodeId> chosen;
      while (chosen.size() < params.num_sources)
        chosen.insert(static_cast<graph::NodeId>(rng.uniform_index(n)));
      sources.assign(chosen.begin(), chosen.end());
    }
  }

  const graph::Weight weight =
      params.route_min_cost ? graph::Weight::kCost : graph::Weight::kHops;
  std::vector<graph::ShortestPathTree> trees;
  trees.reserve(groups.size());
  for (DestId g = 0; g < groups.size(); ++g)
    trees.push_back(group_tree(topo, groups.members(g), weight));

  std::vector<std::set<Time>> reserved(topo.num_edges());
  std::uint64_t next_packet_id = 1;
  for (Time t = 0; t < params.horizon; ++t) {
    std::size_t attempts = static_cast<std::size_t>(params.injections_per_step);
    if (rng.bernoulli(params.injections_per_step -
                      static_cast<double>(attempts)))
      ++attempts;
    for (std::size_t a = 0; a < attempts; ++a) {
      const graph::NodeId s = sources[rng.uniform_index(sources.size())];
      const DestId g = static_cast<DestId>(rng.uniform_index(groups.size()));
      if (groups.contains(g, s)) continue;  // already satisfied
      const auto& tree = trees[g];
      if (tree.dist[s] == graph::kUnreachable) continue;

      // Walk towards the nearest member, booking conflict-free slots.
      Schedule sched;
      sched.t0 = t;
      Time cur = t;
      bool ok = true;
      for (graph::NodeId at = s; tree.parent[at] != graph::kInvalidNode;
           at = tree.parent[at]) {
        const graph::EdgeId e = tree.via_edge[at];
        Time slot = cur + 1;
        while (slot < total && reserved[e].count(slot) != 0) ++slot;
        if (slot >= total || slot > cur + 1 + params.max_schedule_slack) {
          ok = false;
          break;
        }
        sched.hops.emplace_back(e, slot);
        cur = slot;
      }
      if (!ok || sched.hops.empty()) continue;
      for (const auto& [e, slot] : sched.hops) reserved[e].insert(slot);
      Injection inj;
      inj.packet = Packet{next_packet_id++, s, g, t, 0.0, 0};
      inj.schedule = std::move(sched);
      trace.steps[t].injections.push_back(std::move(inj));
    }
  }
  for (graph::EdgeId e = 0; e < reserved.size(); ++e)
    for (const Time slot : reserved[e]) trace.steps[slot].active.push_back(e);
  for (auto& step : trace.steps) {
    std::sort(step.active.begin(), step.active.end());
    step.active.erase(std::unique(step.active.begin(), step.active.end()),
                      step.active.end());
  }
  trace.opt = replay_anycast_schedules(trace, groups);
  return trace;
}

OptStats replay_anycast_schedules(const AdversaryTrace& trace,
                                  const AnycastGroups& groups) {
  TN_ASSERT(trace.topology != nullptr);
  const graph::Graph& topo = *trace.topology;
  OptStats opt;
  std::set<std::pair<graph::EdgeId, Time>> used;
  std::size_t total_hops = 0;
  for (const StepSpec& step : trace.steps) {
    for (const Injection& inj : step.injections) {
      const Schedule& s = inj.schedule;
      TN_ASSERT(!s.hops.empty());
      graph::NodeId at = inj.packet.src;
      Time prev = s.t0;
      double cost = 0.0;
      for (const auto& [e, ti] : s.hops) {
        TN_ASSERT_MSG(ti > prev, "schedule times must increase");
        TN_ASSERT_MSG(used.insert({e, ti}).second, "edge slot reused");
        const graph::Edge& edge = topo.edge(e);
        TN_ASSERT(edge.u == at || edge.v == at);
        at = edge.other(at);
        cost += edge.cost;
        prev = ti;
      }
      TN_ASSERT_MSG(groups.contains(inj.packet.dst, at),
                    "anycast schedule must end at a group member");
      ++opt.deliveries;
      opt.total_cost += cost;
      total_hops += s.hops.size();
      opt.makespan = std::max(opt.makespan, prev);
    }
  }
  if (opt.deliveries > 0) {
    opt.avg_cost = opt.total_cost / static_cast<double>(opt.deliveries);
    opt.avg_path_length =
        static_cast<double>(total_hops) / static_cast<double>(opt.deliveries);
  }
  // Buffer accounting mirrors the unicast replay.
  std::map<std::pair<graph::NodeId, DestId>, std::vector<std::pair<Time, int>>>
      events;
  for (const StepSpec& step : trace.steps) {
    for (const Injection& inj : step.injections) {
      graph::NodeId at = inj.packet.src;
      Time prev = inj.schedule.t0;
      for (const auto& [e, ti] : inj.schedule.hops) {
        events[{at, inj.packet.dst}].push_back({prev + 1, +1});
        events[{at, inj.packet.dst}].push_back({ti + 1, -1});
        at = topo.edge(e).other(at);
        prev = ti;
      }
    }
  }
  for (auto& [key, evs] : events) {
    std::sort(evs.begin(), evs.end());
    long h = 0;
    for (const auto& [t, delta] : evs) {
      h += delta;
      opt.max_buffer =
          std::max(opt.max_buffer, static_cast<std::size_t>(std::max(0L, h)));
    }
  }
  return opt;
}

}  // namespace thetanet::route
