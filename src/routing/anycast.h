#pragma once
// Anycast extension. The paper's routing results generalize the anycasting
// framework of Awerbuch, Brinkmann and Scheideler [10] ("Anycasting in
// adversarial systems", ICALP'03), where a packet is satisfied by delivery
// to *any* member of a destination group — the natural model for sink
// fields, service replicas, or gateway sets in ad hoc networks.
//
// The balancing algorithm needs no structural change: buffers are keyed by
// group id, group members absorb on arrival (their buffer height for the
// own group is identically 0), and the height-difference rule drains
// towards whichever member the gradient finds first. This module supplies
// the group bookkeeping and a certified anycast adversary whose schedules
// deliver to the cheapest reachable member, so OPT stays exact.

#include <vector>

#include "geom/rng.h"
#include "graph/graph.h"
#include "routing/adversary.h"

namespace thetanet::route {

class AnycastGroups {
 public:
  /// Groups indexed 0..size()-1; members are node ids (deduplicated,
  /// sorted). A packet with dst = g is absorbed by any member of group g.
  explicit AnycastGroups(std::vector<std::vector<graph::NodeId>> members);

  std::size_t size() const { return members_.size(); }
  const std::vector<graph::NodeId>& members(DestId g) const {
    TN_ASSERT(g < members_.size());
    return members_[g];
  }
  bool contains(DestId g, graph::NodeId v) const;

 private:
  std::vector<std::vector<graph::NodeId>> members_;
};

/// Certified anycast trace: injections carry schedules to the *min-cost
/// reachable member* of their group (multi-source Dijkstra), booked
/// conflict-free exactly like the unicast generator. Packet.dst holds the
/// group id. Endpoint pools in `params` are ignored except source_pool;
/// groups are drawn uniformly.
AdversaryTrace make_anycast_trace(const graph::Graph& topo,
                                  const AnycastGroups& groups,
                                  const TraceParams& params, geom::Rng& rng);

/// Replay audit for anycast traces (schedules must end at *a member* of the
/// packet's group).
OptStats replay_anycast_schedules(const AdversaryTrace& trace,
                                  const AnycastGroups& groups);

}  // namespace thetanet::route
