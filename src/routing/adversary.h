#pragma once
// The adversarial model of Section 3.1 and the *certified adversary* used by
// the competitive-ratio experiments.
//
// In the paper's model the adversary controls, per step: the set of active
// (usable, non-interfering) edges, per-edge costs, and packet injections.
// For each packet it counts towards OPT, a best possible algorithm can name
// a *schedule* S = (t0, (e1,t1), ..., (el,tl)) — a time-respecting path with
// no two schedules sharing an edge at the same step.
//
// Finding OPT for an arbitrary trace is NP-hard (Adler & Scheideler [1]), so
// the experiment harness builds traces *with the certificate attached*: the
// generator reserves conflict-free schedules while injecting, which makes
// the optimal throughput, average cost and buffer requirement of the trace
// known exactly by construction (see DESIGN.md, "OPT surrogates").

#include <cstdint>
#include <utility>
#include <vector>

#include "geom/rng.h"
#include "graph/graph.h"
#include "routing/packet.h"

namespace thetanet::route {

/// A feasible delivery plan for one packet: injected at t0, traverses hop
/// edges at strictly increasing times t0 < t1 < ... < tl.
struct Schedule {
  Time t0 = 0;
  std::vector<std::pair<graph::EdgeId, Time>> hops;
};

struct Injection {
  Packet packet;
  Schedule schedule;  ///< the adversary's certificate (hidden from routers)
};

/// One time step of the trace.
struct StepSpec {
  std::vector<graph::EdgeId> active;  ///< edges usable this step
  std::vector<std::pair<graph::EdgeId, double>> cost_overrides;
  std::vector<Injection> injections;
};

/// Exact optimum of a certified trace, computed by replaying the schedules.
struct OptStats {
  std::size_t deliveries = 0;
  double total_cost = 0.0;
  double avg_cost = 0.0;        ///< C-bar: total cost / deliveries
  double avg_path_length = 0.0; ///< L-bar: mean schedule hop count
  std::size_t max_buffer = 0;   ///< B: peak height of any Q_{v,d} under OPT
  Time makespan = 0;            ///< last delivery time
};

struct AdversaryTrace {
  const graph::Graph* topology = nullptr;  ///< edge id space for the trace
  std::vector<StepSpec> steps;
  OptStats opt;  ///< filled by the certified generators / replay

  Time horizon() const { return static_cast<Time>(steps.size()); }

  /// Per-step effective edge costs (base cost with overrides applied).
  std::vector<double> costs_at(Time t) const;
};

/// Parameters for the certified trace generators.
struct TraceParams {
  Time horizon = 512;             ///< steps with injections
  Time drain = 512;               ///< trailing steps with no injections
  double injections_per_step = 2; ///< expected injection attempts per step
  Time max_schedule_slack = 64;   ///< max queueing delay per hop the adversary tolerates
  double extra_active_fraction = 0.0;  ///< noise edges activated beyond schedules
  bool route_min_cost = true;     ///< schedule along min-cost (else min-hop) paths
  std::uint32_t cost_jitter_pct = 0;  ///< per-step random cost overrides, +-pct

  // Traffic concentration. 0 means "all nodes". The balancing algorithm's
  // competitive guarantee is asymptotic (the additive slack r in the
  // definition of (t,s,c)-competitive absorbs a per-(node,destination)
  // warm-up of height ~T+gamma*c per buffer); concentrating traffic onto few
  // destinations is how the experiments reach the asymptotic regime at
  // laptop scale.
  std::size_t num_sources = 0;
  std::size_t num_destinations = 0;

  /// Explicit endpoint pools (override num_sources / num_destinations when
  /// non-empty). Lets experiments pin representative endpoints — e.g. the
  /// node nearest the field centre — instead of gambling on random draws.
  std::vector<graph::NodeId> source_pool;
  std::vector<graph::NodeId> dest_pool;
};

/// Build a certified trace over `topo`: random source/destination pairs are
/// injected and greedily booked onto conflict-free schedules along shortest
/// paths; injections that cannot be booked within the slack are discarded
/// (they never existed). Every injected packet is thus deliverable and the
/// trace's OptStats are exact.
AdversaryTrace make_certified_trace(const graph::Graph& topo,
                                    const TraceParams& params, geom::Rng& rng);

/// Replay the schedules of a trace and recompute its OptStats (also used as
/// an independent audit that generated schedules are conflict-free).
OptStats replay_schedules(const AdversaryTrace& trace);

}  // namespace thetanet::route
