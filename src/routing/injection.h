#pragma once
// Sustained-load injection processes for the (T, gamma)-balancing driver
// (ROADMAP item: millions of packets over 10^6+ rounds under O(capacity)
// memory). The adversarial-trace machinery (adversary.h) certifies a
// *finite* trace against its exact optimum; this engine instead generates
// an endless arrival stream round by round, so a run's length is bounded
// by the clock, not by a precomputed trace in memory.
//
// Four processes, all deterministic given the spec (the engine owns its
// RNG; nothing depends on thread count):
//
//   * kPoisson        — open-loop Poisson(rate) arrivals per round, sources
//                       and destinations uniform over configured subsets.
//   * kBursty         — on/off Poisson: `burst_len` rounds at
//                       rate * burst_multiplier, then `gap_len` silent
//                       rounds. Stresses backlog drain.
//   * kHotspot        — Poisson(rate) arrivals all destined to a small hot
//                       set; the convergecast-like pattern that maximizes
//                       buffer contention near the sinks.
//   * kAdversarialCut — near-capacity convergecast onto the single
//                       max-degree node d*: rate scales with deg(d*), the
//                       capacity of the cut around d*, pushing the router
//                       against the Theorem 3.1 envelope.
//
// A nonzero `window` switches any process to closed loop: arrivals beyond
// `window` outstanding (accepted minus delivered minus lost) packets are
// withheld, which is what keeps steady-state memory O(window) regardless
// of run length.

#include <cstdint>
#include <vector>

#include "geom/rng.h"
#include "graph/graph.h"
#include "routing/metrics.h"
#include "routing/packet.h"

namespace thetanet::route {

struct InjectionSpec {
  enum class Process : std::uint8_t {
    kPoisson,
    kBursty,
    kHotspot,
    kAdversarialCut,
  };

  Process process = Process::kPoisson;
  double rate = 1.0;  ///< expected arrivals per round (per-node for kAdversarialCut's cut scaling)

  /// Source / destination pools, sampled without replacement from the
  /// graph's nodes. 0 means "all nodes". kHotspot treats 0 destinations as
  /// a single hot sink; kAdversarialCut ignores the destination pool (the
  /// target is always the smallest-id maximum-degree node).
  std::uint32_t num_sources = 0;
  std::uint32_t num_destinations = 0;

  // kBursty duty cycle.
  std::uint32_t burst_len = 64;
  std::uint32_t gap_len = 192;
  double burst_multiplier = 4.0;

  /// Closed-loop window: > 0 caps packets outstanding in the network (the
  /// O(capacity) memory knob). 0 = open loop.
  std::uint32_t window = 0;

  std::uint64_t seed = 1;
};

/// Parse "poisson" / "bursty" / "hotspot" / "adversarial" (CLI surface of
/// bench_router). Returns false on an unknown name.
bool parse_injection_process(const char* name, InjectionSpec::Process* out);
const char* injection_process_name(InjectionSpec::Process p);

class InjectionEngine {
 public:
  InjectionEngine(const graph::Graph& topo, const InjectionSpec& spec);

  /// Generate this round's arrivals into `out` (cleared first; reuse the
  /// vector across rounds). `m` supplies the closed-loop feedback; pass the
  /// run's metrics struct. Packets carry injected_at = now and unique ids.
  void step(Time now, const RunMetrics& m, std::vector<Packet>& out);

  /// Packets generated so far (offered, before any router-side drop).
  std::uint64_t emitted() const { return next_id_; }

  /// The convergecast target (kAdversarialCut / single-sink kHotspot);
  /// kInvalidNode otherwise.
  graph::NodeId hot_target() const {
    return dests_.size() == 1 ? dests_[0] : graph::kInvalidNode;
  }

  const InjectionSpec& spec() const { return spec_; }

 private:
  std::uint64_t poisson(double mean);

  InjectionSpec spec_;
  geom::Rng rng_;
  std::vector<graph::NodeId> sources_;
  std::vector<graph::NodeId> dests_;
  double rate_per_round_ = 0.0;
  std::uint64_t next_id_ = 0;
};

}  // namespace thetanet::route
