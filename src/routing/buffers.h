#pragma once
// Per-destination buffers Q_{v,d} (Section 3.1). Every node v keeps one
// buffer per destination d; h_{(v,d)} is its height, capped at H. A packet
// reaching Q_{d,d} is absorbed (the destination buffer always has height 0).
// Buffers are LIFO — the balancing analysis depends only on heights, never
// on which packet of a buffer moves.

#include <map>
#include <optional>
#include <vector>

#include "common/assert.h"
#include "routing/packet.h"

namespace thetanet::route {

class BufferBank {
 public:
  BufferBank(std::size_t num_nodes, std::size_t max_height)
      : buffers_(num_nodes), max_height_(max_height) {}

  std::size_t num_nodes() const { return buffers_.size(); }
  std::size_t max_height() const { return max_height_; }

  /// h_{(v,d)}: current height of buffer Q_{v,d}.
  std::size_t height(graph::NodeId v, DestId d) const {
    const auto& node = buffers_[v];
    const auto it = node.find(d);
    return it == node.end() ? 0 : it->second.size();
  }

  bool has_space(graph::NodeId v, DestId d) const {
    return height(v, d) < max_height_;
  }

  /// Store a packet; fails (returns false) when the buffer is full.
  /// Deliveries are absorbed by the caller before push (under anycast the
  /// destination id is a group id, so no node-id comparison is made here).
  bool push(graph::NodeId v, const Packet& p) {
    auto& q = buffers_[v][p.dst];
    if (q.size() >= max_height_) {
      if (q.empty()) buffers_[v].erase(p.dst);
      return false;
    }
    q.push_back(p);
    return true;
  }

  /// Remove and return the top packet of Q_{v,d}; nullopt when empty.
  std::optional<Packet> pop(graph::NodeId v, DestId d) {
    auto& node = buffers_[v];
    const auto it = node.find(d);
    if (it == node.end() || it->second.empty()) return std::nullopt;
    Packet p = it->second.back();
    it->second.pop_back();
    if (it->second.empty()) node.erase(it);
    return p;
  }

  /// Destinations with at least one packet queued at v, ascending (the
  /// deterministic iteration order the balancing rule scans).
  std::vector<DestId> destinations_at(graph::NodeId v) const {
    std::vector<DestId> out;
    out.reserve(buffers_[v].size());
    for (const auto& [d, q] : buffers_[v])
      if (!q.empty()) out.push_back(d);
    return out;
  }

  /// Allocation-free scan of (destination, height) pairs at v, ascending by
  /// destination — the hot path of the balancing rule.
  template <typename Fn>
  void for_each_destination(graph::NodeId v, const Fn& fn) const {
    for (const auto& [d, q] : buffers_[v])
      if (!q.empty()) fn(d, q.size());
  }

  /// Total packets currently buffered anywhere.
  std::size_t total_packets() const {
    std::size_t s = 0;
    for (const auto& node : buffers_)
      for (const auto& [d, q] : node) s += q.size();
    return s;
  }

  /// Highest buffer currently in the bank (space-overhead metric).
  std::size_t peak_height() const {
    std::size_t s = 0;
    for (const auto& node : buffers_)
      for (const auto& [d, q] : node) s = q.size() > s ? q.size() : s;
    return s;
  }

 private:
  // map keyed by destination for deterministic scans.
  std::vector<std::map<DestId, std::vector<Packet>>> buffers_;
  std::size_t max_height_;
};

}  // namespace thetanet::route
