#pragma once
// Per-destination buffers Q_{v,d} (Section 3.1). Every node v keeps one
// buffer per destination d; h_{(v,d)} is its height, capped at H. A packet
// reaching Q_{d,d} is absorbed (the destination buffer always has height 0).
// Buffers are LIFO — the balancing analysis depends only on heights, never
// on which packet of a buffer moves.
//
// Storage is struct-of-arrays, sized for sustained heavy traffic (10^6+
// rounds, millions of packets):
//
//   * per node, the live destinations sit in a SORTED flat array with a
//     parallel height array — h_{(v,d)} is a branch-light binary probe, and
//     the balancing rule's benefit scan over a node pair is a single merged
//     two-pointer pass (`for_each_pair`) instead of one red-black-tree probe
//     per destination;
//   * packets live in a pooled slot arena with an intrusive freelist: each
//     buffer is a linked LIFO stack threaded through the pool, so pushes and
//     pops are pointer swings and ZERO per-packet heap allocations happen at
//     steady state (the pool grows geometrically and recycles forever);
//   * total_packets() and peak_height() are O(1): a running total plus a
//     height histogram (buffers move between adjacent height buckets, so the
//     current max is maintained incrementally);
//   * a node whose last buffer drains leaves a height-0 tombstone entry
//     (probes read 0, scans skip it); tombstones are compacted away once
//     they outnumber live entries, keeping scans dense without per-pop
//     memmoves.
//
// The bank also tracks which nodes currently buffer anything
// (`for_each_active_node`), which is what lets the router's sustained-load
// plan skip the empty region of a large graph entirely.
//
// Not thread-safe: all mutation (and the active-node list compaction) is
// serial; concurrent *reads* (height probes, pair scans) are safe once
// mutation stops, which is the contract the parallel plan scan relies on.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/assert.h"
#include "routing/packet.h"

namespace thetanet::route {

class BufferBank {
 public:
  BufferBank(std::size_t num_nodes, std::size_t max_height)
      : nodes_(num_nodes),
        in_active_list_(num_nodes, 0),
        max_height_(max_height) {}

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t max_height() const { return max_height_; }

  /// h_{(v,d)}: current height of buffer Q_{v,d}.
  std::size_t height(graph::NodeId v, DestId d) const {
    const Node& node = nodes_[v];
    const std::size_t i = lower_bound(node.dests, d);
    return (i < node.dests.size() && node.dests[i] == d) ? node.heights[i] : 0;
  }

  bool has_space(graph::NodeId v, DestId d) const {
    return height(v, d) < max_height_;
  }

  /// Store a packet; fails (returns false) when the buffer is full.
  /// Deliveries are absorbed by the caller before push (under anycast the
  /// destination id is a group id, so no node-id comparison is made here).
  bool push(graph::NodeId v, const Packet& p) {
    Node& node = nodes_[v];
    std::size_t i = lower_bound(node.dests, p.dst);
    const bool found = i < node.dests.size() && node.dests[i] == p.dst;
    const std::uint32_t h = found ? node.heights[i] : 0;
    if (h >= max_height_) return false;
    if (!found) {
      node.dests.insert(node.dests.begin() + static_cast<std::ptrdiff_t>(i),
                        p.dst);
      node.heights.insert(node.heights.begin() + static_cast<std::ptrdiff_t>(i),
                          0);
      node.heads.insert(node.heads.begin() + static_cast<std::ptrdiff_t>(i),
                        kNil);
    }
    // Slot from the freelist, or grow the pool (amortized; recycled forever).
    std::uint32_t s;
    if (free_head_ != kNil) {
      s = free_head_;
      free_head_ = pool_next_[s];
    } else {
      s = static_cast<std::uint32_t>(pool_.size());
      pool_.emplace_back();
      pool_next_.push_back(kNil);
    }
    pool_[s] = p;
    pool_next_[s] = node.heads[i];
    node.heads[i] = s;
    node.heights[i] = h + 1;
    if (h == 0) {
      ++node.live;
      if (!in_active_list_[v]) {
        in_active_list_[v] = 1;
        active_nodes_.push_back(v);
      }
    }
    ++total_;
    raise_height(h + 1);
    return true;
  }

  /// Remove and return the top packet of Q_{v,d}; nullopt when empty.
  std::optional<Packet> pop(graph::NodeId v, DestId d) {
    Node& node = nodes_[v];
    const std::size_t i = lower_bound(node.dests, d);
    if (i >= node.dests.size() || node.dests[i] != d || node.heights[i] == 0)
      return std::nullopt;
    const std::uint32_t s = node.heads[i];
    Packet p = pool_[s];
    node.heads[i] = pool_next_[s];
    if (!leak_pool_slots_) {
      pool_next_[s] = free_head_;
      free_head_ = s;
    }
    const std::uint32_t h = node.heights[i]--;
    --total_;
    lower_height(h);
    if (h == 1) {
      --node.live;
      maybe_compact(node);
    }
    return p;
  }

  /// Allocation-free scan of (destination, height) pairs at v, ascending by
  /// destination — the deterministic iteration order the balancing rule
  /// scans. Tombstone (drained) entries are skipped.
  template <typename Fn>
  void for_each_destination(graph::NodeId v, const Fn& fn) const {
    const Node& node = nodes_[v];
    for (std::size_t i = 0; i < node.dests.size(); ++i)
      if (node.heights[i] != 0)
        fn(node.dests[i], static_cast<std::size_t>(node.heights[i]));
  }

  /// Merged scan over the sorted destination arrays of two nodes: fn(d,
  /// h_from, h_to) for every destination buffered at either endpoint, in
  /// ascending destination order. This is the hot path of the balancing
  /// rule's benefit argmax — one linear pass instead of a probe per
  /// destination. Destinations with zero height on both sides (tombstones)
  /// are skipped.
  template <typename Fn>
  void for_each_pair(graph::NodeId from, graph::NodeId to,
                     const Fn& fn) const {
    const Node& a = nodes_[from];
    const Node& b = nodes_[to];
    const std::size_t na = a.dests.size();
    const std::size_t nb = b.dests.size();
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < na && j < nb) {
      const DestId da = a.dests[i];
      const DestId db = b.dests[j];
      if (da < db) {
        if (a.heights[i] != 0) fn(da, a.heights[i], std::uint32_t{0});
        ++i;
      } else if (db < da) {
        if (b.heights[j] != 0) fn(db, std::uint32_t{0}, b.heights[j]);
        ++j;
      } else {
        if ((a.heights[i] | b.heights[j]) != 0)
          fn(da, a.heights[i], b.heights[j]);
        ++i;
        ++j;
      }
    }
    for (; i < na; ++i)
      if (a.heights[i] != 0) fn(a.dests[i], a.heights[i], std::uint32_t{0});
    for (; j < nb; ++j)
      if (b.heights[j] != 0) fn(b.dests[j], std::uint32_t{0}, b.heights[j]);
  }

  /// Raw sorted views for external merged scans (e.g. the quantized router's
  /// advertised-height table). Parallel arrays; entries with height 0 are
  /// tombstones and must be treated as absent.
  std::span<const DestId> dests(graph::NodeId v) const {
    return nodes_[v].dests;
  }
  std::span<const std::uint32_t> heights(graph::NodeId v) const {
    return nodes_[v].heights;
  }
  /// Number of non-empty buffers at v (live entries, excluding tombstones).
  std::uint32_t live_destinations(graph::NodeId v) const {
    return nodes_[v].live;
  }

  /// Visit every node currently buffering at least one packet (order is an
  /// implementation detail — callers needing determinism must sort what they
  /// derive). Nodes that drained since the last visit are dropped from the
  /// list in passing, so the walk stays O(#active).
  template <typename Fn>
  void for_each_active_node(const Fn& fn) const {
    std::size_t w = 0;
    for (std::size_t r = 0; r < active_nodes_.size(); ++r) {
      const graph::NodeId v = active_nodes_[r];
      if (nodes_[v].live == 0) {
        in_active_list_[v] = 0;
        continue;
      }
      active_nodes_[w++] = v;
      fn(v);
    }
    active_nodes_.resize(w);
  }

  /// Total packets currently buffered anywhere. O(1).
  std::size_t total_packets() const { return total_; }

  /// Packet-arena slots ever allocated (live + freelist). Flat at steady
  /// state once the pool warmed up — the working-set figure the soak
  /// watchdog's memory envelope tracks.
  std::size_t pool_slots() const { return pool_.size(); }

  /// FAULT INJECTION (soak_watchdog_mutation): stop recycling popped slots
  /// into the freelist, so the arena grows by one slot per push forever —
  /// the planted steady-state leak the drift watchdog must catch via its
  /// RSS envelope. Never set in production code.
  void plant_pool_leak(bool on) { leak_pool_slots_ = on; }

  /// Highest buffer currently in the bank (space-overhead metric). O(1):
  /// maintained incrementally from the height histogram.
  std::size_t peak_height() const { return cur_max_; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Node {
    std::vector<DestId> dests;            // sorted ascending
    std::vector<std::uint32_t> heights;   // parallel; 0 = tombstone
    std::vector<std::uint32_t> heads;     // parallel; top-of-stack pool slot
    std::uint32_t live = 0;               // entries with height > 0
  };

  /// Branch-light lower bound over a sorted destination array.
  static std::size_t lower_bound(const std::vector<DestId>& a, DestId d) {
    const DestId* base = a.data();
    std::size_t n = a.size();
    if (n == 0) return 0;
    while (n > 1) {
      const std::size_t half = n / 2;
      base += (base[half - 1] < d) ? half : 0;
      n -= half;
    }
    return static_cast<std::size_t>(base - a.data()) + (*base < d ? 1 : 0);
  }

  // A buffer moved from height h-1 to h / from h to h-1: shift it between
  // adjacent histogram buckets and maintain the running max.
  void raise_height(std::uint32_t h) {
    if (h >= counts_.size()) counts_.resize(h + 1, 0);
    if (h > 1) --counts_[h - 1];
    ++counts_[h];
    if (h > cur_max_) cur_max_ = h;
  }
  void lower_height(std::uint32_t h) {
    --counts_[h];
    if (h > 1) ++counts_[h - 1];
    while (cur_max_ > 0 && counts_[cur_max_] == 0) --cur_max_;
  }

  // Erase tombstones once they outnumber live entries (amortized O(1) per
  // drain; keeps scans dense). Entry order is preserved.
  static void maybe_compact(Node& node) {
    const std::size_t dead = node.dests.size() - node.live;
    if (dead <= node.live + 8) return;
    std::size_t w = 0;
    for (std::size_t r = 0; r < node.dests.size(); ++r) {
      if (node.heights[r] == 0) continue;
      node.dests[w] = node.dests[r];
      node.heights[w] = node.heights[r];
      node.heads[w] = node.heads[r];
      ++w;
    }
    node.dests.resize(w);
    node.heights.resize(w);
    node.heads.resize(w);
  }

  std::vector<Node> nodes_;
  // Packet pool (index = slot id) with the intrusive LIFO links alongside.
  std::vector<Packet> pool_;
  std::vector<std::uint32_t> pool_next_;
  std::uint32_t free_head_ = kNil;
  bool leak_pool_slots_ = false;  // fault injection; see plant_pool_leak
  // Active-node bookkeeping (mutable: compacted lazily from const scans).
  mutable std::vector<graph::NodeId> active_nodes_;
  mutable std::vector<std::uint8_t> in_active_list_;
  // Height histogram: counts_[h] = #buffers at height h (h >= 1).
  std::vector<std::uint32_t> counts_;
  std::uint32_t cur_max_ = 0;
  std::size_t total_ = 0;
  std::size_t max_height_;
};

}  // namespace thetanet::route
