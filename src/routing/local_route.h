#pragma once
// O(1)-memory online geometric routing. A packet at node `cur` bound for
// `target` sees only cur's position, target's position, and cur's neighbor
// list in the routed topology — no routing tables, no visited sets, no
// per-packet state beyond the target. This is the locality regime of the
// source paper's Section 1 (nodes know only their neighbourhood) and the
// model in which Bose et al. prove the Θ₄ routing ratio of 17: the zoo
// scoreboard measures each structure's empirical ratio under exactly this
// constraint, and the routing_ratio_bound ctest pins Θ₄ under 17x.
//
// Two forwarding policies:
//
//   compass — forward to the neighbor minimizing the angle to the target
//     (ties: nearer, then smaller id). On the transmission graph G* this
//     delivers every adjacent pair with length-ratio exactly 1: the target
//     itself is an angle-0 candidate, so the winner lies on the segment
//     toward the target and keeps the target in range. That exactness is
//     the oracle the --plant-routing-bug mutation (prefer the *farther*
//     neighbor on an exact angle tie — overshoots collinear chains and
//     ping-pongs forever) is caught against.
//
//   theta — forward to the neighbor inside the current node's cone
//     containing the target that minimizes the projection onto the cone
//     bisector (the Θ-routing step), falling back to a compass step when
//     the cone holds no neighbor.
//
// Determinism: every step minimizes a strict (metric, distance, id) key, so
// routes — and hence measured ratios — are bit-identical across thread
// counts and Morton on/off (measurement loops are embarrassingly parallel
// over pairs with a chunk-ordered reduce).

#include <cstdint>

#include "graph/graph.h"
#include "topology/cones.h"
#include "topology/deployment.h"

namespace thetanet::route {

enum class LocalPolicy : std::uint8_t {
  kCompass,
  kTheta,
};

struct LocalRouteOptions {
  LocalPolicy policy = LocalPolicy::kCompass;
  /// Cone scheme for the theta policy (ignored by compass).
  topo::ConeScheme scheme = topo::theta4_scheme();
  /// Hop budget; 0 derives 4*n + 16 (a correct policy never cycles, so the
  /// budget only exists to terminate broken ones).
  std::size_t max_hops = 0;
  /// Planted mutation for the routing-ratio checker's self-test: on an
  /// exact angle tie, compass prefers the farther neighbor. Never set
  /// outside --plant-routing-bug runs.
  bool plant_wrong_tie_break = false;
};

/// One forwarding decision from `cur` toward `target` (cur != target):
/// the chosen next hop, or graph::kInvalidNode when cur has no usable
/// neighbor. Coincident neighbors (zero distance) are never chosen unless
/// they are the target itself.
graph::NodeId local_route_step(const graph::Graph& g,
                               const topo::Deployment& d, graph::NodeId cur,
                               graph::NodeId target,
                               const LocalRouteOptions& opt = {});

struct LocalRouteResult {
  bool delivered = false;
  std::size_t hops = 0;
  double length = 0.0;  ///< Euclidean length actually walked
};

/// Walk local_route_step from s until t, a dead end, or the hop budget.
LocalRouteResult local_route(const graph::Graph& g, const topo::Deployment& d,
                             graph::NodeId s, graph::NodeId t,
                             const LocalRouteOptions& opt = {});

/// Empirical routing ratio of a topology under a policy: route a
/// deterministic sample of ordered pairs (seeded; all pairs when the count
/// allows) and aggregate walked-length / Euclidean-distance over delivered
/// pairs. Pairs at zero distance are skipped.
struct RoutingRatioStats {
  std::size_t pairs = 0;      ///< routed pairs (after skips)
  std::size_t delivered = 0;  ///< pairs that reached the target
  double max_ratio = 0.0;     ///< worst delivered ratio
  double mean_ratio = 0.0;    ///< mean delivered ratio
};

RoutingRatioStats measure_routing_ratio(const graph::Graph& g,
                                        const topo::Deployment& d,
                                        const LocalRouteOptions& opt,
                                        std::size_t max_pairs,
                                        std::uint64_t seed);

}  // namespace thetanet::route
