#pragma once
// LSD radix sort for 64-bit keys. The construction kernels sort packed
// (u, v) edge keys and per-set interference lists whose sizes reach 10^7 at
// the million-node scale; std::sort's comparison overhead dominates there,
// while an 8-bit-per-pass counting sort is a handful of linear scans. All
// eight histograms are filled in ONE pass over the input (the scan is
// memory-bound; the extra shifts are free), and passes whose byte is
// constant across all keys are skipped — for keys packing two node ids
// below 2^25 that drops 8 passes to ~6.
//
// The caller supplies the staging buffer (same length as the input),
// typically from the thread's scratch arena, so repeated sorts fault no new
// pages. The sort is not stable ACROSS equal keys' original order — callers
// here only ever sort unique keys or accept any order of duplicates.

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

#include "common/assert.h"

namespace thetanet::tn {

inline void radix_sort_u64(std::span<std::uint64_t> keys,
                           std::span<std::uint64_t> scratch) {
  const std::size_t n = keys.size();
  if (n < 2) return;
  TN_ASSERT_MSG(scratch.size() >= n, "radix staging buffer too small");
  TN_DCHECK(n <= 0xffffffffu);

  std::array<std::array<std::uint32_t, 256>, 8> hist{};
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = keys[i];
    for (std::size_t p = 0; p < 8; ++p)
      ++hist[p][(k >> (8 * p)) & 0xffu];
  }

  std::uint64_t* src = keys.data();
  std::uint64_t* dst = scratch.data();
  for (std::size_t p = 0; p < 8; ++p) {
    std::array<std::uint32_t, 256>& h = hist[p];
    // A pass whose byte is constant over all keys is the identity.
    if (h[(src[0] >> (8 * p)) & 0xffu] == n) continue;
    std::uint32_t sum = 0;
    for (std::uint32_t& c : h) {
      const std::uint32_t count = c;
      c = sum;
      sum += count;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t k = src[i];
      dst[h[(k >> (8 * p)) & 0xffu]++] = k;
    }
    std::swap(src, dst);
  }
  if (src != keys.data()) std::memcpy(keys.data(), src, n * sizeof(keys[0]));
}

}  // namespace thetanet::tn
