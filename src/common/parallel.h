#pragma once
// Shared deterministic parallel-execution layer. One threading model for the
// whole repo: a lazily-initialized persistent thread pool behind two
// primitives, `tn::parallel_for` and `tn::parallel_reduce`.
//
// Determinism contract
// --------------------
// The iteration space [0, n) is split into fixed chunks of `grain` indices.
// The chunking depends only on (n, grain) — never on the thread count — and
// reductions combine per-chunk partials sequentially in ascending chunk
// order on the calling thread. Therefore:
//
//   * parallel_for is bit-deterministic whenever distinct indices write to
//     disjoint state (the per-node / per-edge independence that all the
//     topology-construction kernels have);
//   * parallel_reduce is bit-deterministic unconditionally: the combine
//     order is the same as a serial left fold over the chunks, so even
//     non-associative floating-point accumulations give identical results
//     for any thread count, including 1.
//
// Thread count comes from the TN_NUM_THREADS environment variable (default
// std::thread::hardware_concurrency), overridable at runtime with
// set_num_threads. With 1 thread every chunk runs inline on the calling
// thread and the pool is never touched — a guaranteed serial fallback.
//
// Exceptions thrown by chunk bodies cancel the remaining chunks and are
// rethrown on the calling thread (the recorded exception is the one from
// the lowest-indexed chunk observed to fail).

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace thetanet::tn {

/// Configured worker count (TN_NUM_THREADS env, default hardware
/// concurrency, overridable via set_num_threads). Always >= 1.
int num_threads();

/// Override the thread count for subsequent parallel calls (tests, benches,
/// tools). Must be >= 1. Not safe to call concurrently with a running
/// parallel_for/parallel_reduce.
void set_num_threads(int n);

/// std::thread::hardware_concurrency, clamped to >= 1.
int hardware_threads();

namespace detail {

/// Chunk size actually used: `grain` clamped to >= 1, or an automatic size
/// (~8 chunks per thread) when grain == 0.
std::size_t resolve_grain(std::size_t n, std::size_t grain);

/// Execute chunk(0) .. chunk(num_chunks - 1), each exactly once, across the
/// pool; blocks until all complete. Serial (inline, in ascending order) when
/// the configured thread count is 1, when num_chunks == 1, or when called
/// from inside another run_chunks (no nested parallelism).
void run_chunks(std::size_t num_chunks,
                const std::function<void(std::size_t)>& chunk);

}  // namespace detail

/// Run fn(begin, end) over disjoint subranges covering [0, n). fn may run
/// concurrently on pool threads; writes must be disjoint across indices for
/// a deterministic result (see contract above).
template <typename Fn>
void parallel_for(std::size_t n, std::size_t grain, Fn&& fn) {
  if (n == 0) return;
  const std::size_t g = detail::resolve_grain(n, grain);
  const std::size_t chunks = (n + g - 1) / g;
  detail::run_chunks(chunks, [&](std::size_t c) {
    const std::size_t begin = c * g;
    const std::size_t end = begin + g < n ? begin + g : n;
    fn(begin, end);
  });
}

/// Deterministic map/reduce over [0, n): map(begin, end) -> T per chunk,
/// then acc = combine(std::move(acc), std::move(partial)) left-folded over
/// the chunks in ascending order, starting from `identity`. The fold runs
/// on the calling thread, so combine needs no synchronization and the
/// result is bit-identical for any thread count.
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::size_t n, std::size_t grain, T identity, Map&& map,
                  Combine&& combine) {
  if (n == 0) return identity;
  const std::size_t g = detail::resolve_grain(n, grain);
  const std::size_t chunks = (n + g - 1) / g;
  // Default-constructed (not copied from identity): every slot is
  // overwritten by map() before the fold, and requiring only default-
  // construction + move lets partials hold move-only types.
  std::vector<T> partials(chunks);
  detail::run_chunks(chunks, [&](std::size_t c) {
    const std::size_t begin = c * g;
    const std::size_t end = begin + g < n ? begin + g : n;
    partials[c] = map(begin, end);
  });
  T acc = std::move(identity);
  for (T& p : partials) acc = combine(std::move(acc), std::move(p));
  return acc;
}

}  // namespace thetanet::tn
