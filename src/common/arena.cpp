#include "common/arena.h"

#include <algorithm>

namespace thetanet::tn {

namespace {
constexpr std::size_t kMinBlock = 64 * 1024;
}

void Arena::grow(std::size_t min_bytes) {
  // Next block: at least min_bytes, at least double the largest existing
  // block (geometric growth keeps the block count logarithmic in total
  // footprint, so allocate()'s slow path stays rare).
  std::size_t want = std::max(min_bytes, kMinBlock);
  for (const Block& b : blocks_) want = std::max(want, 2 * b.size);
  Block nb;
  nb.data = std::make_unique<std::byte[]>(want);
  nb.size = want;
  blocks_.push_back(std::move(nb));
}

void* Arena::allocate_slow(std::size_t bytes, std::size_t align) {
  // Retire the current block (its tail is wasted — bounded by one
  // allocation's size per block) and move to the next block, growing until
  // one fits. Terminates: grow() always appends a block of at least
  // bytes + align, which satisfies the fast path's padded request.
  while (true) {
    if (block_ < blocks_.size()) {
      block_base_in_use_ += cursor_;
      ++block_;
      cursor_ = 0;
    }
    if (block_ >= blocks_.size()) grow(bytes + align);
    std::byte* const base = blocks_[block_].data.get();
    const auto addr = reinterpret_cast<std::uintptr_t>(base);
    const std::size_t pad = (align - (addr & (align - 1))) & (align - 1);
    if (pad + bytes <= blocks_[block_].size) {
      cursor_ = pad + bytes;
      in_use_ = block_base_in_use_ + cursor_;
      if (in_use_ > high_water_) high_water_ = in_use_;
      return base + pad;
    }
  }
}

Arena& scratch_arena() {
  static thread_local Arena arena;
  return arena;
}

}  // namespace thetanet::tn
