#pragma once

// Best-effort transparent-huge-page hint for large, hot buffers.
//
// The construction kernels stream and scatter over multi-GB arrays; with
// 4 KB pages the scatter passes spend a measurable fraction of their time
// in dTLB walks and first-touch faults. madvise(MADV_HUGEPAGE) asks the
// kernel to back the region with 2 MB pages at fault time (honored when
// THP runs in "madvise" or "always" mode), cutting both costs ~500x. The
// hint must land BEFORE the pages are first touched — advise freshly
// reserved memory, then fill it.

#include <cstddef>
#include <cstdint>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace thetanet::tn {

/// Hint that [p, p + bytes) should use huge pages. Rounds inward to 2 MB
/// boundaries (madvise needs aligned full pages); silently a no-op when
/// the range spans no aligned 2 MB block, on madvise failure, and on
/// non-Linux builds. Purely advisory: never affects results, only layout.
inline void advise_huge(void* p, std::size_t bytes) {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  constexpr std::uintptr_t kHuge = std::uintptr_t{2} << 20;
  const std::uintptr_t base = reinterpret_cast<std::uintptr_t>(p);
  const std::uintptr_t lo = (base + kHuge - 1) & ~(kHuge - 1);
  const std::uintptr_t hi = (base + bytes) & ~(kHuge - 1);
  if (hi > lo)
    (void)madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_HUGEPAGE);
#else
  (void)p;
  (void)bytes;
#endif
}

}  // namespace thetanet::tn
