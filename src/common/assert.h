#pragma once
// Lightweight contract checking in the spirit of the C++ Core Guidelines'
// Expects/Ensures (I.6, I.8). TN_ASSERT is always on (simulation correctness
// beats the last few percent of speed); TN_DCHECK compiles out in release.

#include <cstdio>
#include <cstdlib>

namespace thetanet::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "thetanet assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace thetanet::detail

#define TN_ASSERT(expr)                                                       \
  ((expr) ? static_cast<void>(0)                                              \
          : ::thetanet::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr))

#define TN_ASSERT_MSG(expr, msg)                                              \
  ((expr) ? static_cast<void>(0)                                              \
          : ::thetanet::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)))

#if defined(NDEBUG)
#define TN_DCHECK(expr) static_cast<void>(0)
#else
#define TN_DCHECK(expr) TN_ASSERT(expr)
#endif
