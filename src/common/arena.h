#pragma once
// Bump-pointer arena for per-phase scratch memory. The construction kernels
// (ThetaALG phase 1/2, interference discovery, the per-set radix sort) need
// short-lived buffers inside tn::parallel_for chunk bodies; allocating them
// from the heap per chunk costs a malloc/free pair — and, for the large
// buffers of the 10^6-node regime, a fresh mmap whose pages fault in on
// first touch — once per chunk. An Arena hands out memory by advancing a
// cursor through geometrically-grown blocks and recycles all of it on
// reset(): after the first chunk on a worker, every later chunk's scratch
// is served from already-faulted pages.
//
// Determinism: arenas only ever hold *scratch* (stamp arrays, candidate
// buffers, radix staging). Allocation addresses and block boundaries never
// influence kernel output, so arena reuse is invisible to the bit-identity
// contracts. Arena itself is not thread-safe; use one per thread (see
// scratch_arena()).

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "common/assert.h"

namespace thetanet::tn {

class Arena {
 public:
  Arena() = default;
  /// Pre-reserve `initial_bytes` in the first block (rounded up internally).
  explicit Arena(std::size_t initial_bytes) { reserve(initial_bytes); }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Raw allocation: `bytes` bytes aligned to `align` (a power of two,
  /// at most alignof(std::max_align_t) blocks are guaranteed to satisfy;
  /// stricter alignments are honoured by padding). Never returns nullptr
  /// for bytes == 0 (hands back a distinct valid pointer).
  void* allocate(std::size_t bytes,
                 std::size_t align = alignof(std::max_align_t)) {
    TN_ASSERT_MSG((align & (align - 1)) == 0, "alignment must be a power of 2");
    if (block_ < blocks_.size()) {
      std::byte* const base = blocks_[block_].data.get();
      const auto addr = reinterpret_cast<std::uintptr_t>(base) + cursor_;
      const std::size_t pad = (align - (addr & (align - 1))) & (align - 1);
      const std::size_t off = cursor_ + pad;
      if (off + bytes <= blocks_[block_].size) {
        cursor_ = off + bytes;
        in_use_ = block_base_in_use_ + cursor_;
        if (in_use_ > high_water_) high_water_ = in_use_;
        return base + off;
      }
    }
    return allocate_slow(bytes, align);
  }

  /// Typed uninitialized span of `count` elements. T must be trivially
  /// destructible — the arena never runs destructors.
  template <typename T>
  std::span<T> alloc_span(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without destructors");
    T* p = static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
    return {p, count};
  }

  /// Typed zero-filled span.
  template <typename T>
  std::span<T> alloc_zeroed(std::size_t count) {
    auto s = alloc_span<T>(count);
    std::memset(s.data(), 0, s.size_bytes());
    return s;
  }

  /// Drop every allocation but keep the blocks: the next allocation reuses
  /// the same (already-faulted) pages. This is the per-phase recycle point.
  void reset() {
    block_ = 0;
    cursor_ = 0;
    block_base_in_use_ = 0;
    in_use_ = 0;
  }

  /// Cursor snapshot for scoped reuse: allocations made after mark() are
  /// dropped by rewind(mark), everything before it stays valid. This is what
  /// lets ScratchScopes nest (outer phase holds buffers across an inner
  /// scope's lifetime).
  struct Marker {
    std::size_t block = 0;
    std::size_t cursor = 0;
    std::size_t block_base_in_use = 0;
  };
  Marker mark() const { return {block_, cursor_, block_base_in_use_}; }
  void rewind(Marker m) {
    block_ = m.block;
    cursor_ = m.cursor;
    block_base_in_use_ = m.block_base_in_use;
    in_use_ = block_base_in_use_ + cursor_;
  }

  /// Release all memory back to the heap (reset + free blocks).
  void release() {
    blocks_.clear();
    reset();
  }

  /// Make sure at least `bytes` are available contiguously without a new
  /// block allocation mid-phase.
  void reserve(std::size_t bytes) {
    if (block_ < blocks_.size() &&
        cursor_ + bytes <= blocks_[block_].size)
      return;
    grow(bytes);
  }

  /// Bytes currently handed out (including alignment padding).
  std::size_t bytes_in_use() const { return in_use_; }
  /// Max bytes_in_use() ever observed — the sizing feedback for reserve().
  std::size_t high_water() const { return high_water_; }
  /// Total bytes owned across all blocks.
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void grow(std::size_t min_bytes);
  void* allocate_slow(std::size_t bytes, std::size_t align);

  std::vector<Block> blocks_;
  std::size_t block_ = 0;   // index of the block the cursor lives in
  std::size_t cursor_ = 0;  // offset of the next free byte in blocks_[block_]
  std::size_t block_base_in_use_ = 0;  // in-use bytes in blocks before block_
  std::size_t in_use_ = 0;
  std::size_t high_water_ = 0;
};

/// The calling thread's scratch arena (one per thread, lazily created,
/// retained for the thread's lifetime so its high-water pages stay warm
/// across kernel invocations). Pool workers and the main thread each get
/// their own, which is exactly the per-chunk-body isolation parallel_for
/// scratch needs.
Arena& scratch_arena();

/// RAII scratch phase: snapshots the calling thread's arena cursor on entry
/// and rewinds to it on destruction, so everything allocated inside the
/// scope is recycled while allocations made before it survive. Scopes nest
/// (a serial phase holding buffers can dispatch work whose chunk bodies
/// open their own scopes on the same thread).
class ScratchScope {
 public:
  ScratchScope() : arena_(scratch_arena()), mark_(arena_.mark()) {}
  explicit ScratchScope(std::size_t reserve_bytes)
      : arena_(scratch_arena()), mark_(arena_.mark()) {
    arena_.reserve(reserve_bytes);
  }
  ~ScratchScope() { arena_.rewind(mark_); }
  ScratchScope(const ScratchScope&) = delete;
  ScratchScope& operator=(const ScratchScope&) = delete;

  Arena& arena() { return arena_; }

 private:
  Arena& arena_;
  Arena::Marker mark_;
};

}  // namespace thetanet::tn
