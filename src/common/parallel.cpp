#include "common/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "common/assert.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace thetanet::tn {
namespace {

int parse_env_threads() {
  if (const char* s = std::getenv("TN_NUM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end != s && v >= 1) return static_cast<int>(v < 1024 ? v : 1024);
  }
  return hardware_threads();
}

// Each in-flight run() claims chunk indices from a shared atomic counter;
// the calling thread participates alongside the workers. Workers are spawned
// lazily on the first parallel run and persist for the process lifetime
// (resized upward if set_num_threads raises the count; surplus workers
// simply sit out jobs that need fewer).
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  int threads() {
    std::lock_guard<std::mutex> lk(mu_);
    return target_threads_;
  }

  void set_threads(int n) {
    TN_ASSERT_MSG(n >= 1, "thread count must be >= 1");
    std::lock_guard<std::mutex> lk(mu_);
    target_threads_ = n;
  }

  void run(std::size_t num_chunks, const std::function<void(std::size_t)>& fn) {
    if (num_chunks == 0) return;
    // parallel.jobs is stable (one per dispatched loop, independent of the
    // schedule); chunk counts are timing-class because the automatic grain
    // targets ~8 chunks per thread and thus varies with TN_NUM_THREADS.
    TN_OBS_COUNT("parallel.jobs", 1);
    TN_OBS_COUNT_TIMING("parallel.chunks", num_chunks);
    int nthreads;
    {
      std::lock_guard<std::mutex> lk(mu_);
      nthreads = target_threads_;
    }
    // Serial fallback: one configured thread, a single chunk, or a nested
    // call from inside a chunk body (no nested pools — inner loops run
    // inline, which keeps the chunk schedule flat and deadlock-free).
    if (nthreads == 1 || num_chunks == 1 || in_run_) {
      TN_OBS_COUNT_TIMING("parallel.chunks_inline", num_chunks);
      for (std::size_t c = 0; c < num_chunks; ++c) fn(c);
      return;
    }

    // One job at a time: concurrent top-level callers take turns. (Nested
    // calls never reach here — the in_run_ check above runs them inline.)
    std::lock_guard<std::mutex> run_lk(run_mu_);
    {
      std::unique_lock<std::mutex> lk(mu_);
      const std::size_t want =
          static_cast<std::size_t>(nthreads) - 1;  // caller participates
      while (workers_.size() < want)
        workers_.emplace_back(&Pool::worker, this, job_id_);
      job_fn_ = &fn;
      job_chunks_ = num_chunks;
      // Hand the caller's span context to the workers so spans opened inside
      // chunk bodies nest under the dispatching phase, keeping the span-tree
      // structure identical for any thread count.
      job_span_ = obs::current_span();
      job_next_.store(0, std::memory_order_relaxed);
      job_err_ = nullptr;
      job_err_chunk_ = 0;
      job_participants_ = want < workers_.size() ? want : workers_.size();
      claimed_ = 0;
      workers_running_ = job_participants_;
      ++job_id_;
      cv_work_.notify_all();
    }

    work(fn, num_chunks, /*is_worker=*/false);

    std::exception_ptr err;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_done_.wait(lk, [&] { return workers_running_ == 0; });
      job_fn_ = nullptr;
      err = job_err_;
    }
    if (err) std::rethrow_exception(err);
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      shutdown_ = true;
      cv_work_.notify_all();
    }
    for (std::thread& t : workers_) t.join();
  }

 private:
  Pool() : target_threads_(parse_env_threads()) {}

  // Claim and execute chunks until the counter runs out. On an exception the
  // lowest failing chunk index wins (deterministic choice when several
  // chunks fail) and the counter is exhausted to cancel unstarted chunks.
  // Marks the thread as inside a chunk body for the whole loop — on workers
  // and caller alike — so nested parallel calls run inline instead of
  // blocking on the (held) dispatch lock.
  void work(const std::function<void(std::size_t)>& fn, std::size_t chunks,
            bool is_worker) {
    struct InRunGuard {
      InRunGuard() { in_run_ = true; }
      ~InRunGuard() { in_run_ = false; }
    } guard;
    std::size_t executed = 0;
    for (;;) {
      const std::size_t c = job_next_.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) break;
      ++executed;
      try {
        fn(c);
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);
        if (!job_err_ || c < job_err_chunk_) {
          job_err_ = std::current_exception();
          job_err_chunk_ = c;
        }
        job_next_.store(chunks, std::memory_order_relaxed);
      }
    }
    // How evenly the claim race spread this job; inherently schedule-
    // dependent, hence timing-class.
    if (executed > 0) {
      TN_OBS_RECORD_TIMING("parallel.chunks_per_thread", executed);
      if (is_worker) TN_OBS_COUNT_TIMING("parallel.chunks_stolen", executed);
    }
  }

  void worker(std::uint64_t seen) {
    for (;;) {
      const std::function<void(std::size_t)>* fn = nullptr;
      std::size_t chunks = 0;
      obs::SpanNode* span = nullptr;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_work_.wait(lk, [&] { return shutdown_ || job_id_ != seen; });
        if (shutdown_) return;
        seen = job_id_;
        // A slot is claimed for good: claimed_ resets only at the next
        // dispatch, so a straggler waking after the job drained cannot
        // claim (and double-release) an already-finished job.
        if (claimed_ >= job_participants_) continue;  // job needs fewer hands
        ++claimed_;
        fn = job_fn_;
        chunks = job_chunks_;
        span = job_span_;
      }
      {
        obs::SpanContextScope span_scope(span);
        work(*fn, chunks, /*is_worker=*/true);
      }
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (--workers_running_ == 0) cv_done_.notify_all();
      }
    }
  }

  std::mutex run_mu_;  // serializes top-level run() invocations
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<std::thread> workers_;
  int target_threads_;
  bool shutdown_ = false;

  // Current job (guarded by mu_ except the atomic chunk counter).
  std::uint64_t job_id_ = 0;
  const std::function<void(std::size_t)>* job_fn_ = nullptr;
  std::size_t job_chunks_ = 0;
  obs::SpanNode* job_span_ = nullptr;  // dispatcher's span context
  std::size_t job_participants_ = 0;
  std::size_t claimed_ = 0;
  std::size_t workers_running_ = 0;
  std::atomic<std::size_t> job_next_{0};
  std::exception_ptr job_err_;
  std::size_t job_err_chunk_ = 0;

  // True while this thread is inside a chunk body (nested-call detection).
  static thread_local bool in_run_;
};

thread_local bool Pool::in_run_ = false;

}  // namespace

int hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int num_threads() { return Pool::instance().threads(); }

void set_num_threads(int n) { Pool::instance().set_threads(n); }

namespace detail {

std::size_t resolve_grain(std::size_t n, std::size_t grain) {
  if (grain > 0) return grain;
  const std::size_t target =
      static_cast<std::size_t>(num_threads()) * 8;  // ~8 chunks per thread
  const std::size_t g = n / target;
  return g > 0 ? g : 1;
}

void run_chunks(std::size_t num_chunks,
                const std::function<void(std::size_t)>& chunk) {
  Pool::instance().run(num_chunks, chunk);
}

}  // namespace detail

}  // namespace thetanet::tn
