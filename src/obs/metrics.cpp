#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "common/assert.h"

namespace thetanet::obs {

namespace detail {

namespace {

bool recording_from_env() {
  if (const char* s = std::getenv("TN_TELEMETRY"))
    if (s[0] == '0' && s[1] == '\0') return false;
  return true;
}

}  // namespace

std::atomic<bool> g_recording{recording_from_env()};

Shard& local_shard() {
  thread_local Shard* shard = MetricsRegistry::global().create_shard();
  return *shard;
}

}  // namespace detail

void set_recording(bool on) {
  detail::g_recording.store(on, std::memory_order_relaxed);
}

namespace {

enum class Kind : std::uint8_t { kCounter, kDistribution };

struct MetricDesc {
  std::string name;
  Kind kind;
  Stability stability;
  std::uint32_t slot;  ///< index into the per-kind shard arrays
};

/// Deterministic quantile estimate: the upper bound of the power-of-two
/// bucket containing the rank-th sample (rank = ceil(q * count)). Exact for
/// values 0 and 1, bucket-resolution above.
std::uint64_t bucket_quantile(const std::uint64_t (&buckets)[detail::kNumBuckets],
                              std::uint64_t count, double q) {
  if (count == 0) return 0;
  const auto rank = static_cast<std::uint64_t>(
      std::max<double>(1.0, std::ceil(q * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < detail::kNumBuckets; ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      if (b == 0) return 0;
      if (b >= 64) return ~0ull;
      return (1ull << b) - 1;
    }
  }
  return ~0ull;  // unreachable when buckets sum to count
}

}  // namespace

struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  std::vector<MetricDesc> metrics;          // registration order
  std::uint32_t num_counters = 0;
  std::uint32_t num_dists = 0;
  // Shards in creation (thread-registration) order; never removed, so a
  // finished thread's final values stay in the merge.
  std::vector<std::unique_ptr<detail::Shard>> shards;
};

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  static Impl instance;
  return instance;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

detail::Shard* MetricsRegistry::create_shard() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  im.shards.push_back(std::make_unique<detail::Shard>());
  return im.shards.back().get();
}

namespace {

std::uint32_t register_metric(MetricsRegistry::Impl& im, std::string_view name,
                              Kind kind, Stability s, std::uint32_t& next_slot,
                              std::size_t capacity) {
  std::lock_guard<std::mutex> lk(im.mu);
  for (const MetricDesc& m : im.metrics)
    if (m.name == name) {
      TN_ASSERT_MSG(m.kind == kind,
                    "metric re-registered with a different kind");
      return m.slot;
    }
  TN_ASSERT_MSG(next_slot < capacity, "telemetry metric capacity exhausted");
  im.metrics.push_back(
      {std::string(name), kind, s, next_slot});
  return next_slot++;
}

}  // namespace

std::uint32_t MetricsRegistry::register_counter(std::string_view name,
                                                Stability s) {
  Impl& im = impl();
  return register_metric(im, name, Kind::kCounter, s, im.num_counters,
                         detail::kMaxCounters);
}

std::uint32_t MetricsRegistry::register_distribution(std::string_view name,
                                                     Stability s) {
  Impl& im = impl();
  return register_metric(im, name, Kind::kDistribution, s, im.num_dists,
                         detail::kMaxDistributions);
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  for (const MetricDesc& m : im.metrics) {
    if (m.kind != Kind::kCounter || m.name != name) continue;
    std::uint64_t total = 0;
    for (const auto& shard : im.shards)
      total += shard->counters[m.slot].load(std::memory_order_relaxed);
    return total;
  }
  return 0;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  MetricsSnapshot out;
  for (const MetricDesc& m : im.metrics) {
    if (m.kind == Kind::kCounter) {
      std::uint64_t total = 0;
      for (const auto& shard : im.shards)
        total += shard->counters[m.slot].load(std::memory_order_relaxed);
      out.counters.push_back({m.name, m.stability, total});
      continue;
    }
    // Distribution: merge shards in creation order (all integer folds, so
    // the order is immaterial to the value — it is fixed anyway).
    DistributionSnapshot d;
    d.name = m.name;
    d.stability = m.stability;
    std::uint64_t min = ~0ull;
    std::uint64_t buckets[detail::kNumBuckets] = {};
    for (const auto& shard : im.shards) {
      const detail::Shard::Dist& sd = shard->dists[m.slot];
      d.count += sd.count.load(std::memory_order_relaxed);
      d.sum += sd.sum.load(std::memory_order_relaxed);
      min = std::min(min, sd.min.load(std::memory_order_relaxed));
      d.max = std::max(d.max, sd.max.load(std::memory_order_relaxed));
      for (std::size_t b = 0; b < detail::kNumBuckets; ++b)
        buckets[b] += sd.buckets[b].load(std::memory_order_relaxed);
    }
    d.min = d.count == 0 ? 0 : min;
    d.p50 = bucket_quantile(buckets, d.count, 0.50);
    d.p99 = bucket_quantile(buckets, d.count, 0.99);
    out.distributions.push_back(d);
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(out.counters.begin(), out.counters.end(), by_name);
  std::sort(out.distributions.begin(), out.distributions.end(), by_name);
  return out;
}

void MetricsRegistry::reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  for (const auto& shard : im.shards) {
    for (auto& c : shard->counters) c.store(0, std::memory_order_relaxed);
    for (auto& d : shard->dists) {
      d.count.store(0, std::memory_order_relaxed);
      d.sum.store(0, std::memory_order_relaxed);
      d.min.store(~0ull, std::memory_order_relaxed);
      d.max.store(0, std::memory_order_relaxed);
      for (auto& b : d.buckets) b.store(0, std::memory_order_relaxed);
    }
  }
}

Counter::Counter(std::string_view name, Stability s)
    : id_(MetricsRegistry::global().register_counter(name, s)) {}

Distribution::Distribution(std::string_view name, Stability s)
    : id_(MetricsRegistry::global().register_distribution(name, s)) {}

}  // namespace thetanet::obs
