#pragma once
// Deterministic, thread-aware telemetry: a process-wide MetricsRegistry of
// named monotonic counters and value distributions. The design goal is the
// same bit-determinism contract the parallel layer gives kernels: for a
// deterministic workload, the merged telemetry values are identical for any
// TN_NUM_THREADS — so a telemetry dump can sit next to a conformance report
// in a byte-for-byte thread-diff test.
//
// How determinism is achieved
// ---------------------------
//   * Every metric value is an unsigned 64-bit integer (counts, not wall
//     time — timing lives in obs::Span and is excluded from deterministic
//     output). Integer addition commutes, so the merge over threads cannot
//     depend on scheduling.
//   * Each thread owns a private shard (plain relaxed atomics, written only
//     by the owner — no contention, no RMW). Shards are registered in
//     creation order and merged in that order at snapshot time.
//   * Metrics declare a stability class at registration. kStable metrics
//     promise thread-count-invariant values (per-item counts accumulated
//     under the parallel layer's fixed chunking); kTiming metrics (chunks
//     per thread, pool bookkeeping) are excluded from deterministic dumps.
//
// Distributions use fixed power-of-two buckets (bucket = bit_width(value)),
// exposing count/min/max/sum plus p50/p99 estimated as the upper bound of
// the bucket holding the quantile rank — all integers, all deterministic.
//
// Instrumentation sites use the TN_OBS_* macros (metrics_macros section
// below); configuring with -DTHETANET_TELEMETRY=OFF defines
// THETANET_TELEMETRY_DISABLED and compiles them to no-ops. The registry API
// itself is always compiled, so mixed-mode TUs still link.

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace thetanet::obs {

#if defined(THETANET_TELEMETRY_DISABLED)
inline constexpr bool kTelemetryCompiled = false;
#else
inline constexpr bool kTelemetryCompiled = true;
#endif

/// Stability class declared at registration and carried into snapshots.
enum class Stability : std::uint8_t {
  kStable,  ///< thread-count invariant by contract; in deterministic dumps
  kTiming,  ///< scheduling-dependent (pool bookkeeping); timing dumps only
};

namespace detail {

// Fixed shard capacities: registration asserts against them. Generous for
// the repo's catalogue (see docs/observability.md) without making shards
// large enough to matter (one shard is ~40 KiB).
inline constexpr std::size_t kMaxCounters = 256;
inline constexpr std::size_t kMaxDistributions = 64;
// Bucket index is bit_width(value): 0 for 0, else 1..64.
inline constexpr std::size_t kNumBuckets = 65;

/// Per-thread metric storage. Written only by the owning thread (relaxed
/// load+store, no RMW); read by snapshotting threads with relaxed loads.
struct Shard {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  struct Dist {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{~0ull};
    std::atomic<std::uint64_t> max{0};
    std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets{};
  };
  std::array<Dist, kMaxDistributions> dists{};

  void add(std::uint32_t id, std::uint64_t delta) {
    auto& c = counters[id];
    c.store(c.load(std::memory_order_relaxed) + delta,
            std::memory_order_relaxed);
  }
  void record(std::uint32_t id, std::uint64_t value) {
    Dist& d = dists[id];
    const auto bump = [](std::atomic<std::uint64_t>& a, std::uint64_t by) {
      a.store(a.load(std::memory_order_relaxed) + by,
              std::memory_order_relaxed);
    };
    bump(d.count, 1);
    bump(d.sum, value);
    if (value < d.min.load(std::memory_order_relaxed))
      d.min.store(value, std::memory_order_relaxed);
    if (value > d.max.load(std::memory_order_relaxed))
      d.max.store(value, std::memory_order_relaxed);
    bump(d.buckets[static_cast<std::size_t>(std::bit_width(value))], 1);
  }
};

/// The calling thread's shard, registered with the global registry on first
/// use (shards persist for the process lifetime; a thread that exits leaves
/// its final values behind for the merge).
Shard& local_shard();

/// Global recording switch (initialized from TN_TELEMETRY, "0" disables;
/// togglable at runtime for overhead measurement). Checked on every record.
extern std::atomic<bool> g_recording;
inline bool recording() {
  return g_recording.load(std::memory_order_relaxed);
}

}  // namespace detail

/// Enable/disable metric recording at runtime (spans honour it too). The
/// compile-time OFF switch removes the instrumentation entirely; this one
/// just makes recorded sites early-return, which is what the telemetry
/// overhead bench compares against.
void set_recording(bool on);

/// A registered monotonic counter. Construction registers (or looks up) the
/// name; instances are cheap handles and typically function-local statics —
/// see TN_OBS_COUNT.
class Counter {
 public:
  explicit Counter(std::string_view name, Stability s = Stability::kStable);
  void add(std::uint64_t delta = 1) const {
    if (!detail::recording()) return;
    detail::local_shard().add(id_, delta);
  }

 private:
  std::uint32_t id_;
};

/// A registered value distribution (u64 samples into power-of-two buckets).
class Distribution {
 public:
  explicit Distribution(std::string_view name,
                        Stability s = Stability::kStable);
  void record(std::uint64_t value) const {
    if (!detail::recording()) return;
    detail::local_shard().record(id_, value);
  }

 private:
  std::uint32_t id_;
};

// ---------------------------------------------------------------------------
// Snapshot types (plain data; also constructible by tests and sinks).

struct CounterSnapshot {
  std::string name;
  Stability stability = Stability::kStable;
  std::uint64_t value = 0;
};

struct DistributionSnapshot {
  std::string name;
  Stability stability = Stability::kStable;
  std::uint64_t count = 0;
  std::uint64_t min = 0;  ///< 0 when count == 0
  std::uint64_t max = 0;
  std::uint64_t sum = 0;
  std::uint64_t p50 = 0;  ///< bucket-resolution upper-bound estimate
  std::uint64_t p99 = 0;
};

struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;            ///< sorted by name
  std::vector<DistributionSnapshot> distributions;  ///< sorted by name
};

class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  /// Register (or look up) a metric. Re-registering an existing name
  /// returns the same id; the stability class of the first registration
  /// wins. Asserts when the shard capacity is exhausted.
  std::uint32_t register_counter(std::string_view name, Stability s);
  std::uint32_t register_distribution(std::string_view name, Stability s);

  /// Merged value of one counter (0 when the name was never registered).
  std::uint64_t counter_value(std::string_view name) const;

  /// Merge all shards in creation (thread-registration) order into one
  /// snapshot, sorted by metric name.
  MetricsSnapshot snapshot() const;

  /// Zero every shard (counters, distributions). Only call while no other
  /// thread is recording — between runs, not during them.
  void reset();

  // Internal: called by detail::local_shard on a thread's first record.
  detail::Shard* create_shard();

  struct Impl;  // defined in metrics.cpp; the public name keeps it reachable
                // from the implementation's file-local helpers

 private:
  MetricsRegistry() = default;
  Impl& impl() const;
};

// ---------------------------------------------------------------------------
// Instrumentation macros. These are the only pieces removed by
// THETANET_TELEMETRY_DISABLED; the API above always exists.

#if !defined(THETANET_TELEMETRY_DISABLED)

/// Add `delta` to the stable counter `name` (a string literal).
#define TN_OBS_COUNT(name, delta)                                 \
  do {                                                            \
    static const ::thetanet::obs::Counter tn_obs_counter_{name};  \
    tn_obs_counter_.add(static_cast<std::uint64_t>(delta));       \
  } while (0)

/// Add `delta` to the timing-stability counter `name` (excluded from
/// deterministic dumps — values may depend on scheduling).
#define TN_OBS_COUNT_TIMING(name, delta)                          \
  do {                                                            \
    static const ::thetanet::obs::Counter tn_obs_counter_{        \
        name, ::thetanet::obs::Stability::kTiming};               \
    tn_obs_counter_.add(static_cast<std::uint64_t>(delta));       \
  } while (0)

/// Record one sample into the stable distribution `name`.
#define TN_OBS_RECORD(name, value)                                \
  do {                                                            \
    static const ::thetanet::obs::Distribution tn_obs_dist_{name}; \
    tn_obs_dist_.record(static_cast<std::uint64_t>(value));       \
  } while (0)

/// Record one sample into a timing-stability distribution.
#define TN_OBS_RECORD_TIMING(name, value)                         \
  do {                                                            \
    static const ::thetanet::obs::Distribution tn_obs_dist_{      \
        name, ::thetanet::obs::Stability::kTiming};               \
    tn_obs_dist_.record(static_cast<std::uint64_t>(value));       \
  } while (0)

#else  // THETANET_TELEMETRY_DISABLED

#define TN_OBS_COUNT(name, delta) \
  do {                            \
    (void)sizeof(delta);          \
  } while (0)
#define TN_OBS_COUNT_TIMING(name, delta) \
  do {                                   \
    (void)sizeof(delta);                 \
  } while (0)
#define TN_OBS_RECORD(name, value) \
  do {                             \
    (void)sizeof(value);           \
  } while (0)
#define TN_OBS_RECORD_TIMING(name, value) \
  do {                                    \
    (void)sizeof(value);                  \
  } while (0)

#endif  // THETANET_TELEMETRY_DISABLED

}  // namespace thetanet::obs
