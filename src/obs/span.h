#pragma once
// RAII phase timers forming a process-wide span tree, e.g.
//
//   theta.build
//   ├─ theta.phase1
//   │  └─ grid.build
//   └─ theta.phase2
//
// A Span opened while another is active on the same logical task becomes its
// child; nodes are keyed by (parent, name), so repeated executions of the
// same phase aggregate into one node (count + total wall time). Wall time is
// inherently nondeterministic and is therefore excluded from deterministic
// telemetry dumps; the tree *structure* and the per-node open counts are
// deterministic for a deterministic workload and are included.
//
// Thread-awareness: the current span is thread-local, and the parallel pool
// propagates the dispatching thread's span context to its workers for the
// duration of a job (SpanContextScope), so spans opened inside parallel
// chunks attach under the caller's phase instead of starting parentless
// per-worker trees. Do not open spans *per chunk* when the grain is
// automatic — chunk counts depend on the thread count, which would break
// the deterministic open counts. Per call site is the intended granularity.

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace thetanet::obs {

class SpanNode;  // opaque outside span.cpp

/// Aggregated view of one span-tree node.
struct SpanSnapshot {
  std::string name;
  std::uint64_t count = 0;    ///< times a Span opened this node
  std::uint64_t wall_ns = 0;  ///< total closed-span wall time (timing only)
  std::vector<SpanSnapshot> children;  ///< sorted by name
};

/// Roots of the span tree (sorted by name). Counts and structure are
/// deterministic; wall_ns is not and is dropped by deterministic sinks.
std::vector<SpanSnapshot> span_snapshot();

/// Delete the whole span tree. Only call while no Span is alive anywhere
/// (between runs); live spans would be left dangling otherwise.
void reset_spans();

/// The calling thread's innermost open span (nullptr at root). Opaque;
/// meant for SpanContextScope hand-off across the pool boundary.
SpanNode* current_span();

/// Install a foreign span context on this thread for the current scope —
/// the pool wraps each job's chunk loop in one of these so worker-side
/// spans nest under the dispatcher's phase.
class SpanContextScope {
 public:
  explicit SpanContextScope(SpanNode* context);
  ~SpanContextScope();
  SpanContextScope(const SpanContextScope&) = delete;
  SpanContextScope& operator=(const SpanContextScope&) = delete;

 private:
  SpanNode* prev_;
};

/// RAII span: opening finds/creates the child node of the current span with
/// this name, bumps its count, and makes it current; closing adds the
/// elapsed wall time and restores the parent. When recording is disabled
/// (obs::set_recording(false) or TN_TELEMETRY=0) construction is a no-op.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  SpanNode* node_ = nullptr;  ///< nullptr when recording was off at open
  SpanNode* prev_ = nullptr;
  std::chrono::steady_clock::time_point start_{};
};

#if !defined(THETANET_TELEMETRY_DISABLED)

#define TN_OBS_SPAN_CAT2(a, b) a##b
#define TN_OBS_SPAN_CAT(a, b) TN_OBS_SPAN_CAT2(a, b)
/// Open a span for the rest of the enclosing scope.
#define TN_OBS_SPAN(name) \
  ::thetanet::obs::Span TN_OBS_SPAN_CAT(tn_obs_span_, __LINE__) { name }

#else

#define TN_OBS_SPAN(name) \
  do {                    \
  } while (0)

#endif  // THETANET_TELEMETRY_DISABLED

}  // namespace thetanet::obs
