#include "obs/trace_sink.h"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <string>

namespace thetanet::obs {

namespace {

constexpr const char* kSchema = "thetanet-telemetry/2";

const char* agg_name(SeriesAgg a) {
  return a == SeriesAgg::kSum ? "sum" : "max";
}

}  // namespace

namespace detail {

/// Shortest decimal round-trip — the same bits always print the same bytes,
/// so f64 series stay inside the canonical-document contract.
void append_f64(std::string& out, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_indent(std::string& out, int depth) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
}

void append_span_json(std::string& out, const SpanSnapshot& s,
                      bool include_timing, int depth) {
  append_indent(out, depth);
  out += "{\n";
  append_indent(out, depth + 1);
  out += "\"children\": [";
  for (std::size_t i = 0; i < s.children.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    append_span_json(out, s.children[i], include_timing, depth + 2);
  }
  if (!s.children.empty()) {
    out += '\n';
    append_indent(out, depth + 1);
  }
  out += "],\n";
  append_indent(out, depth + 1);
  out += "\"count\": " + std::to_string(s.count) + ",\n";
  append_indent(out, depth + 1);
  out += "\"name\": ";
  append_escaped(out, s.name);
  if (include_timing) {
    out += ",\n";
    append_indent(out, depth + 1);
    out += "\"wall_ns\": " + std::to_string(s.wall_ns);
  }
  out += '\n';
  append_indent(out, depth);
  out += '}';
}

}  // namespace detail

using detail::append_escaped;
using detail::append_f64;
using detail::append_span_json;

TelemetrySnapshot capture_telemetry() {
  TelemetrySnapshot snap;
  snap.metrics = MetricsRegistry::global().snapshot();
  snap.series = SeriesRegistry::global().snapshot();
  snap.spans = span_snapshot();
  return snap;
}

std::string to_json(const TelemetrySnapshot& snap, bool include_timing) {
  const auto keep = [&](Stability s) {
    return include_timing || s == Stability::kStable;
  };
  std::string out;
  out += "{\n";

  // Keys at every level in sorted order: counters, distributions, schema,
  // spans — so the document is canonical without a post-pass.
  out += "  \"counters\": {";
  bool first = true;
  for (const CounterSnapshot& c : snap.metrics.counters) {
    if (!keep(c.stability)) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_escaped(out, c.name);
    out += ": " + std::to_string(c.value);
  }
  if (!first) out += "\n  ";
  out += "},\n";

  out += "  \"distributions\": {";
  first = true;
  for (const DistributionSnapshot& d : snap.metrics.distributions) {
    if (!keep(d.stability)) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_escaped(out, d.name);
    out += ": {\"count\": " + std::to_string(d.count) +
           ", \"max\": " + std::to_string(d.max) +
           ", \"min\": " + std::to_string(d.min) +
           ", \"p50\": " + std::to_string(d.p50) +
           ", \"p99\": " + std::to_string(d.p99) +
           ", \"sum\": " + std::to_string(d.sum) + "}";
  }
  if (!first) out += "\n  ";
  out += "},\n";

  out += "  \"schema\": ";
  append_escaped(out, kSchema);
  out += ",\n";

  out += "  \"series\": {";
  first = true;
  for (const SeriesSnapshot& s : snap.series) {
    if (!keep(s.stability)) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_escaped(out, s.name);
    out += ": {\"agg\": \"";
    out += agg_name(s.agg);
    out += "\", \"kind\": \"";
    out += s.kind == SeriesKind::kU64 ? "u64" : "f64";
    out += "\", \"points\": [";
    if (s.kind == SeriesKind::kU64) {
      for (std::size_t i = 0; i < s.upoints.size(); ++i) {
        if (i != 0) out += ", ";
        out += std::to_string(s.upoints[i]);
      }
    } else {
      for (std::size_t i = 0; i < s.fpoints.size(); ++i) {
        if (i != 0) out += ", ";
        append_f64(out, s.fpoints[i]);
      }
    }
    out += "], \"rounds\": " + std::to_string(s.rounds) +
           ", \"stride\": " + std::to_string(s.stride) + "}";
  }
  if (!first) out += "\n  ";
  out += "},\n";

  out += "  \"spans\": [";
  for (std::size_t i = 0; i < snap.spans.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    append_span_json(out, snap.spans[i], include_timing, 2);
  }
  if (!snap.spans.empty()) out += "\n  ";
  out += "]\n";

  out += "}\n";
  return out;
}

namespace {

void append_span_text(std::string& out, const SpanSnapshot& s, int depth) {
  char line[160];
  std::snprintf(line, sizeof line, "  %-*s%-*s %10llu %12.3f\n", depth * 2, "",
                40 - depth * 2, s.name.c_str(),
                static_cast<unsigned long long>(s.count),
                static_cast<double>(s.wall_ns) / 1e6);
  out += line;
  for (const SpanSnapshot& c : s.children) append_span_text(out, c, depth + 1);
}

}  // namespace

std::string to_text(const TelemetrySnapshot& snap) {
  std::string out;
  char line[160];
  out += "counters\n";
  for (const CounterSnapshot& c : snap.metrics.counters) {
    std::snprintf(line, sizeof line, "  %-40s %14llu%s\n", c.name.c_str(),
                  static_cast<unsigned long long>(c.value),
                  c.stability == Stability::kTiming ? "  (timing)" : "");
    out += line;
  }
  out += "distributions                              count        min        "
         "max        p50        p99\n";
  for (const DistributionSnapshot& d : snap.metrics.distributions) {
    std::snprintf(line, sizeof line,
                  "  %-40s %6llu %10llu %10llu %10llu %10llu%s\n",
                  d.name.c_str(), static_cast<unsigned long long>(d.count),
                  static_cast<unsigned long long>(d.min),
                  static_cast<unsigned long long>(d.max),
                  static_cast<unsigned long long>(d.p50),
                  static_cast<unsigned long long>(d.p99),
                  d.stability == Stability::kTiming ? "  (timing)" : "");
    out += line;
  }
  out += "series                                      agg    rounds     stride"
         "     points\n";
  for (const SeriesSnapshot& s : snap.series) {
    std::snprintf(line, sizeof line, "  %-40s %6s %10llu %10llu %10zu%s\n",
                  s.name.c_str(), agg_name(s.agg),
                  static_cast<unsigned long long>(s.rounds),
                  static_cast<unsigned long long>(s.stride),
                  s.kind == SeriesKind::kU64 ? s.upoints.size()
                                             : s.fpoints.size(),
                  s.stability == Stability::kTiming ? "  (timing)" : "");
    out += line;
  }
  out += "spans                                           count      wall_ms\n";
  for (const SpanSnapshot& s : snap.spans) append_span_text(out, s, 1);
  return out;
}

bool write_telemetry_json(const std::string& path, bool include_timing) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  const std::string doc = to_json(capture_telemetry(), include_timing);
  f.write(doc.data(), static_cast<std::streamsize>(doc.size()));
  return static_cast<bool>(f);
}

}  // namespace thetanet::obs
