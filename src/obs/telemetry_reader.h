#pragma once
// Reader for telemetry dumps: parses a thetanet-telemetry/1 or /2 JSON
// document (obs::write_telemetry_json output) back into plain structures,
// so tools — the `thetanet_cli report` subcommand foremost — can ingest
// dumps without a JSON dependency. The embedded parser handles the JSON
// subset the sink emits (objects, arrays, strings, numbers, bools, null)
// and is tolerant of extra keys, so future schema additions stay readable.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace thetanet::obs {

struct ParsedDistribution {
  std::uint64_t count = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::uint64_t sum = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p99 = 0;
};

struct ParsedSeries {
  std::string agg;   ///< "sum" or "max"
  std::string kind;  ///< "u64" or "f64"
  std::uint64_t stride = 1;
  std::uint64_t rounds = 0;
  std::vector<double> points;  ///< f64 view regardless of kind
};

struct ParsedSpan {
  std::string name;
  std::uint64_t count = 0;
  std::vector<ParsedSpan> children;
};

struct ParsedTelemetry {
  std::string schema;  ///< "thetanet-telemetry/1" or ".../2"
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, ParsedDistribution> distributions;
  std::map<std::string, ParsedSeries> series;  ///< empty for /1 documents
  std::vector<ParsedSpan> spans;
};

/// Parse a telemetry document. On failure returns nullopt and, when
/// `error` is non-null, a one-line diagnostic (offset + reason for syntax
/// errors, section + reason for shape errors).
std::optional<ParsedTelemetry> parse_telemetry_json(const std::string& text,
                                                    std::string* error);

/// Convenience: read the file, then parse_telemetry_json.
std::optional<ParsedTelemetry> load_telemetry_file(const std::string& path,
                                                   std::string* error);

// ---------------------------------------------------------------------------
// Stream frames ("thetanet-telemetry-stream/1", obs/stream.h). The reader
// parses the wire form back into deltas; obs::StreamFolder folds them.

/// One series entry of a frame. u64 series carry sparse window replacements
/// (ascending window index) at the frame's stride; f64 series carry a full
/// replacement array. Exactly one of uwindows/fpoints is populated, by kind.
struct ParsedSeriesDelta {
  std::string agg;   ///< "sum" or "max"
  std::string kind;  ///< "u64" or "f64"
  std::uint64_t stride = 1;
  std::uint64_t rounds = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> uwindows;
  std::vector<double> fpoints;
};

/// One parsed frame body. Counters are deltas; distributions are cumulative
/// replacements; spans (when present) replace the whole forest.
struct ParsedFrame {
  std::uint64_t frame = 0;  ///< sequence number
  std::string schema;       ///< "thetanet-telemetry-stream/1"
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, ParsedDistribution> distributions;
  std::map<std::string, ParsedSeriesDelta> series;
  bool has_spans = false;
  std::vector<ParsedSpan> spans;
};

/// Parse one frame body (the JSON document after a FRAME header line).
std::optional<ParsedFrame> parse_stream_frame(const std::string& body,
                                              std::string* error);

/// Split a concatenation of framed deltas ("FRAME <seq> <nbytes>\n" + body)
/// and parse every body. Validates header shape, byte counts, and that
/// sequence numbers run 0, 1, 2, ... with no gaps.
std::optional<std::vector<ParsedFrame>> parse_telemetry_stream(
    const std::string& text, std::string* error);

/// Convenience: read the file, then parse_telemetry_stream.
std::optional<std::vector<ParsedFrame>> load_telemetry_stream(
    const std::string& path, std::string* error);

}  // namespace thetanet::obs
