#pragma once
// Reader for telemetry dumps: parses a thetanet-telemetry/1 or /2 JSON
// document (obs::write_telemetry_json output) back into plain structures,
// so tools — the `thetanet_cli report` subcommand foremost — can ingest
// dumps without a JSON dependency. The embedded parser handles the JSON
// subset the sink emits (objects, arrays, strings, numbers, bools, null)
// and is tolerant of extra keys, so future schema additions stay readable.

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace thetanet::obs {

struct ParsedDistribution {
  std::uint64_t count = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::uint64_t sum = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p99 = 0;
};

struct ParsedSeries {
  std::string agg;   ///< "sum" or "max"
  std::string kind;  ///< "u64" or "f64"
  std::uint64_t stride = 1;
  std::uint64_t rounds = 0;
  std::vector<double> points;  ///< f64 view regardless of kind
};

struct ParsedSpan {
  std::string name;
  std::uint64_t count = 0;
  std::vector<ParsedSpan> children;
};

struct ParsedTelemetry {
  std::string schema;  ///< "thetanet-telemetry/1" or ".../2"
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, ParsedDistribution> distributions;
  std::map<std::string, ParsedSeries> series;  ///< empty for /1 documents
  std::vector<ParsedSpan> spans;
};

/// Parse a telemetry document. On failure returns nullopt and, when
/// `error` is non-null, a one-line diagnostic (offset + reason for syntax
/// errors, section + reason for shape errors).
std::optional<ParsedTelemetry> parse_telemetry_json(const std::string& text,
                                                    std::string* error);

/// Convenience: read the file, then parse_telemetry_json.
std::optional<ParsedTelemetry> load_telemetry_file(const std::string& path,
                                                   std::string* error);

}  // namespace thetanet::obs
