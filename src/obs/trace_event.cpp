#include "obs/trace_event.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>

namespace thetanet::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_f64(std::string& out, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

struct Emitter {
  std::string out;
  bool first = true;

  void event_prefix() {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
  }
};

/// Aggregate duration of a span node in microseconds on the chosen clock.
/// Virtual clock: 1 us of self time plus the children. Wall clock: the
/// node's recorded time, floored at the children's span so the layout
/// stays nested (a parallel phase's children can out-sum their parent).
std::uint64_t span_dur_us(const SpanSnapshot& s, bool include_timing) {
  std::uint64_t children = 0;
  for (const SpanSnapshot& c : s.children)
    children += span_dur_us(c, include_timing);
  if (!include_timing) return 1 + children;
  return std::max(s.wall_ns / 1000, children);
}

/// DFS layout: the node's event starts at `ts`, children follow
/// sequentially inside it (sorted order — the snapshot's child order is
/// already deterministic).
void emit_span(Emitter& e, const SpanSnapshot& s, std::uint64_t ts,
               bool include_timing) {
  const std::uint64_t dur = span_dur_us(s, include_timing);
  e.event_prefix();
  e.out += "{\"args\": {\"count\": " + std::to_string(s.count) +
           "}, \"cat\": \"span\", \"dur\": " + std::to_string(dur) +
           ", \"name\": ";
  append_escaped(e.out, s.name);
  e.out += ", \"ph\": \"X\", \"pid\": 1, \"tid\": 1, \"ts\": " +
           std::to_string(ts) + "}";
  std::uint64_t child_ts = ts;
  for (const SpanSnapshot& c : s.children) {
    emit_span(e, c, child_ts, include_timing);
    child_ts += span_dur_us(c, include_timing);
  }
}

void emit_series(Emitter& e, const SeriesSnapshot& s) {
  const std::size_t npoints =
      s.kind == SeriesKind::kU64 ? s.upoints.size() : s.fpoints.size();
  for (std::size_t i = 0; i < npoints; ++i) {
    e.event_prefix();
    // The round-clock: a point covering rounds [i*stride, (i+1)*stride)
    // is stamped at its window start, 1 round == 1 us.
    e.out += "{\"args\": {\"value\": ";
    if (s.kind == SeriesKind::kU64)
      e.out += std::to_string(s.upoints[i]);
    else
      append_f64(e.out, s.fpoints[i]);
    e.out += "}, \"cat\": \"series\", \"name\": ";
    append_escaped(e.out, s.name);
    e.out += ", \"ph\": \"C\", \"pid\": 2, \"ts\": " +
             std::to_string(i * s.stride) + "}";
  }
}

}  // namespace

std::string to_trace_event_json(const TelemetrySnapshot& snap,
                                bool include_timing) {
  Emitter e;
  e.out += "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
  std::uint64_t ts = 0;
  for (const SpanSnapshot& s : snap.spans) {
    emit_span(e, s, ts, include_timing);
    ts += span_dur_us(s, include_timing);
  }
  for (const SeriesSnapshot& s : snap.series) {
    if (!include_timing && s.stability != Stability::kStable) continue;
    emit_series(e, s);
  }
  if (!e.first) e.out += "\n  ";
  e.out += "]\n}\n";
  return e.out;
}

bool write_trace_event_json(const std::string& path, bool include_timing) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  const std::string doc =
      to_trace_event_json(capture_telemetry(), include_timing);
  f.write(doc.data(), static_cast<std::streamsize>(doc.size()));
  return static_cast<bool>(f);
}

}  // namespace thetanet::obs
