#include "obs/span.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>

#include "obs/metrics.h"

namespace thetanet::obs {

// One node of the global span tree. Structure (children) is mutex-guarded —
// touched only when a name is first seen under a parent — while the hot
// per-open/per-close updates are owner-agnostic relaxed atomic adds (counts
// commute; wall time is timing-only so contention-order is irrelevant).
class SpanNode {
 public:
  SpanNode(std::string name, SpanNode* parent)
      : name_(std::move(name)), parent_(parent) {}

  SpanNode* parent() const { return parent_; }
  const std::string& name() const { return name_; }

  SpanNode* child(const char* name) {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& c : children_)
      if (c->name() == name) return c.get();
    children_.push_back(std::make_unique<SpanNode>(name, this));
    return children_.back().get();
  }

  void open() { count_.fetch_add(1, std::memory_order_relaxed); }
  void close(std::uint64_t elapsed_ns) {
    wall_ns_.fetch_add(elapsed_ns, std::memory_order_relaxed);
  }

  SpanSnapshot snapshot() const {
    SpanSnapshot out;
    out.name = name_;
    out.count = count_.load(std::memory_order_relaxed);
    out.wall_ns = wall_ns_.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& c : children_) out.children.push_back(c->snapshot());
    std::sort(out.children.begin(), out.children.end(),
              [](const SpanSnapshot& a, const SpanSnapshot& b) {
                return a.name < b.name;
              });
    return out;
  }

 private:
  const std::string name_;
  SpanNode* const parent_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> wall_ns_{0};
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<SpanNode>> children_;
};

namespace {

// A synthetic root holding the top-level phases as children; never appears
// in snapshots itself. reset_spans() swaps in a fresh one.
struct Tree {
  std::mutex mu;
  std::unique_ptr<SpanNode> root = std::make_unique<SpanNode>("", nullptr);
};

Tree& tree() {
  static Tree t;
  return t;
}

SpanNode* root() {
  Tree& t = tree();
  std::lock_guard<std::mutex> lk(t.mu);
  return t.root.get();
}

thread_local SpanNode* t_current = nullptr;

}  // namespace

SpanNode* current_span() { return t_current; }

SpanContextScope::SpanContextScope(SpanNode* context) : prev_(t_current) {
  t_current = context;
}

SpanContextScope::~SpanContextScope() { t_current = prev_; }

Span::Span(const char* name) {
  if (!detail::recording()) return;
  SpanNode* parent = t_current ? t_current : root();
  node_ = parent->child(name);
  node_->open();
  prev_ = t_current;
  t_current = node_;
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (node_ == nullptr) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  node_->close(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
  t_current = prev_;
}

std::vector<SpanSnapshot> span_snapshot() {
  return root()->snapshot().children;
}

void reset_spans() {
  Tree& t = tree();
  std::lock_guard<std::mutex> lk(t.mu);
  t.root = std::make_unique<SpanNode>("", nullptr);
}

}  // namespace thetanet::obs
