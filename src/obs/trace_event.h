#pragma once
// Chrome trace-event export: the span tree and per-round series rendered as
// a Trace Event Format JSON document loadable in chrome://tracing and
// Perfetto (legacy JSON ingestion).
//
//   * Span nodes become complete ("ph": "X") events. The span tree stores
//     aggregates (open count + total wall time), not individual intervals,
//     so each node appears once with its aggregate duration; children are
//     laid out sequentially inside the parent, which preserves nesting for
//     the viewer.
//   * Series become counter ("ph": "C") events — one per retained point,
//     timestamped by the round the point's window starts at. Loading the
//     trace shows e.g. router.peak_buffer as a track evolving across the
//     run — the paper's Section 3 dynamics at a glance.
//
// Clocks. Trace timestamps are microseconds. In deterministic mode
// (include_timing = false, the default) wall-clock values are excluded
// entirely and a *virtual clock* is used: every span node occupies
// 1 us plus its children, assigned in DFS order, and a series point at
// round r is stamped ts = r. The document is then byte-identical across
// runs and thread counts, like the telemetry JSON. With
// include_timing = true span durations are real wall time (clamped up to
// the sum of children, which can exceed the parent under parallelism).

#include <string>

#include "obs/trace_sink.h"

namespace thetanet::obs {

/// Render the snapshot as a Trace Event Format JSON document
/// (a {"displayTimeUnit": ..., "traceEvents": [...]} object).
std::string to_trace_event_json(const TelemetrySnapshot& snap,
                                bool include_timing = false);

/// capture_telemetry() + to_trace_event_json() + write to `path`
/// (overwrites). Returns false when the file cannot be opened.
bool write_trace_event_json(const std::string& path,
                            bool include_timing = false);

}  // namespace thetanet::obs
