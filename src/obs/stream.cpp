#include "obs/stream.h"

#include <algorithm>
#include <cstring>

#include "common/assert.h"

namespace thetanet::obs {

namespace {

const char* agg_name(SeriesAgg a) {
  return a == SeriesAgg::kSum ? "sum" : "max";
}

bool spans_equal(const std::vector<SpanSnapshot>& a,
                 const std::vector<SpanSnapshot>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].name != b[i].name || a[i].count != b[i].count ||
        !spans_equal(a[i].children, b[i].children))
      return false;
  }
  return true;
}

/// Pairwise window fold — the same operation SeriesRegistry's downsampler
/// applies when a stride doubles. Sum and max are associative over u64, so
/// re-windowed values are exactly the registry's values at the wider stride.
std::vector<std::uint64_t> rewindow_u64(const std::vector<std::uint64_t>& pts,
                                        std::uint64_t from_stride,
                                        std::uint64_t to_stride,
                                        SeriesAgg agg) {
  std::vector<std::uint64_t> out = pts;
  std::uint64_t s = from_stride;
  while (s < to_stride) {
    std::vector<std::uint64_t> half((out.size() + 1) / 2, 0);
    for (std::size_t i = 0; i < out.size(); ++i) {
      std::uint64_t& slot = half[i / 2];
      slot = agg == SeriesAgg::kSum ? slot + out[i] : std::max(slot, out[i]);
    }
    out = std::move(half);
    s *= 2;
  }
  return out;
}

/// Body sections mirror the dump's indentation so a frame reads like a /2
/// document fragment. `first` tracks comma placement across entries.
void open_section(std::string& out, const char* key, char bracket) {
  out += "  \"";
  out += key;
  out += "\": ";
  out += bracket;
}

void close_section(std::string& out, bool any, char bracket, bool last) {
  if (any) out += "\n  ";
  out += bracket;
  out += last ? "\n" : ",\n";
}

}  // namespace

std::string render_stream_frame(const TelemetrySnapshot& prev,
                                const TelemetrySnapshot& cur,
                                std::uint64_t seq) {
  const auto stable = [](Stability s) { return s == Stability::kStable; };
  std::string body;
  body += "{\n";

  // counters — additive deltas; new registrations appear even at 0 so the
  // folder's key set tracks the dump's.
  open_section(body, "counters", '{');
  bool any = false;
  {
    std::size_t j = 0;
    for (const CounterSnapshot& c : cur.metrics.counters) {
      if (!stable(c.stability)) continue;
      while (j < prev.metrics.counters.size() &&
             prev.metrics.counters[j].name < c.name)
        ++j;
      const bool known = j < prev.metrics.counters.size() &&
                         prev.metrics.counters[j].name == c.name;
      const std::uint64_t before = known ? prev.metrics.counters[j].value : 0;
      if (known && before == c.value) continue;
      body += any ? ",\n" : "\n";
      any = true;
      body += "    ";
      detail::append_escaped(body, c.name);
      body += ": " + std::to_string(c.value - before);
    }
  }
  close_section(body, any, '}', false);

  // distributions — cumulative replacement for changed-or-new entries.
  open_section(body, "distributions", '{');
  any = false;
  {
    std::size_t j = 0;
    for (const DistributionSnapshot& d : cur.metrics.distributions) {
      if (!stable(d.stability)) continue;
      while (j < prev.metrics.distributions.size() &&
             prev.metrics.distributions[j].name < d.name)
        ++j;
      const DistributionSnapshot* before =
          j < prev.metrics.distributions.size() &&
                  prev.metrics.distributions[j].name == d.name
              ? &prev.metrics.distributions[j]
              : nullptr;
      if (before != nullptr && before->count == d.count &&
          before->min == d.min && before->max == d.max &&
          before->sum == d.sum && before->p50 == d.p50 &&
          before->p99 == d.p99)
        continue;
      body += any ? ",\n" : "\n";
      any = true;
      body += "    ";
      detail::append_escaped(body, d.name);
      body += ": {\"count\": " + std::to_string(d.count) +
              ", \"max\": " + std::to_string(d.max) +
              ", \"min\": " + std::to_string(d.min) +
              ", \"p50\": " + std::to_string(d.p50) +
              ", \"p99\": " + std::to_string(d.p99) +
              ", \"sum\": " + std::to_string(d.sum) + "}";
    }
  }
  close_section(body, any, '}', false);

  body += "  \"frame\": " + std::to_string(seq) + ",\n";
  body += "  \"schema\": ";
  detail::append_escaped(body, kStreamSchema);
  body += ",\n";

  // series — u64: sparse window replacement at the current stride; f64:
  // full-array replacement (float addition is order-sensitive, so only
  // wholesale replacement keeps the fold bit-exact).
  open_section(body, "series", '{');
  any = false;
  {
    std::size_t j = 0;
    for (const SeriesSnapshot& s : cur.series) {
      if (!stable(s.stability)) continue;
      while (j < prev.series.size() && prev.series[j].name < s.name) ++j;
      const SeriesSnapshot* before =
          j < prev.series.size() && prev.series[j].name == s.name
              ? &prev.series[j]
              : nullptr;
      const bool meta_changed = before == nullptr ||
                                before->stride != s.stride ||
                                before->rounds != s.rounds;
      std::string pts;
      bool changed = false;
      if (s.kind == SeriesKind::kU64) {
        TN_ASSERT(before == nullptr || s.stride % before->stride == 0);
        const std::vector<std::uint64_t> base =
            before == nullptr
                ? std::vector<std::uint64_t>{}
                : rewindow_u64(before->upoints, before->stride, s.stride,
                               s.agg);
        pts += '{';
        bool first_pt = true;
        for (std::size_t w = 0; w < s.upoints.size(); ++w) {
          const bool differs = w < base.size() ? s.upoints[w] != base[w]
                                               : s.upoints[w] != 0;
          if (!differs) continue;
          if (!first_pt) pts += ", ";
          first_pt = false;
          pts += '"' + std::to_string(w) + "\": " + std::to_string(s.upoints[w]);
        }
        pts += '}';
        changed = !first_pt;
      } else {
        const bool same =
            before != nullptr && !meta_changed &&
            before->fpoints.size() == s.fpoints.size() &&
            (s.fpoints.empty() ||
             std::memcmp(before->fpoints.data(), s.fpoints.data(),
                         s.fpoints.size() * sizeof(double)) == 0);
        pts += '[';
        if (!same) {
          for (std::size_t i = 0; i < s.fpoints.size(); ++i) {
            if (i != 0) pts += ", ";
            detail::append_f64(pts, s.fpoints[i]);
          }
        }
        pts += ']';
        changed = !same && !s.fpoints.empty();
      }
      if (!meta_changed && !changed) continue;
      body += any ? ",\n" : "\n";
      any = true;
      body += "    ";
      detail::append_escaped(body, s.name);
      body += ": {\"agg\": \"";
      body += agg_name(s.agg);
      body += "\", \"kind\": \"";
      body += s.kind == SeriesKind::kU64 ? "u64" : "f64";
      body += "\", \"points\": " + pts +
              ", \"rounds\": " + std::to_string(s.rounds) +
              ", \"stride\": " + std::to_string(s.stride) + "}";
    }
  }

  // spans — full deterministic forest, only in frames where it changed.
  const bool spans_changed = !spans_equal(prev.spans, cur.spans);
  close_section(body, any, '}', !spans_changed);
  if (spans_changed) {
    open_section(body, "spans", '[');
    for (std::size_t i = 0; i < cur.spans.size(); ++i) {
      body += i == 0 ? "\n" : ",\n";
      detail::append_span_json(body, cur.spans[i], /*include_timing=*/false,
                               2);
    }
    close_section(body, !cur.spans.empty(), ']', true);
  }
  body += "}\n";

  std::string out = "FRAME " + std::to_string(seq) + ' ' +
                    std::to_string(body.size()) + '\n';
  out += body;
  return out;
}

std::string TelemetryStreamer::next_frame() {
  return frame_from(capture_telemetry());
}

std::string TelemetryStreamer::frame_from(const TelemetrySnapshot& cur) {
  std::string out = render_stream_frame(prev_, cur, seq_);
  prev_ = cur;
  ++seq_;
  return out;
}

// ---------------------------------------------------------------------------
// Folder.

bool StreamFolder::fold(const ParsedFrame& frame, std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (frame.frame != next_seq_)
    return fail("expected frame " + std::to_string(next_seq_) + ", got " +
                std::to_string(frame.frame));
  ++next_seq_;

  for (const auto& [name, delta] : frame.counters) counters_[name] += delta;
  for (const auto& [name, d] : frame.distributions) dists_[name] = d;

  for (const auto& [name, sd] : frame.series) {
    SeriesState& st = series_[name];
    if (sd.agg == "sum") {
      st.agg = SeriesAgg::kSum;
    } else if (sd.agg == "max") {
      st.agg = SeriesAgg::kMax;
    } else {
      return fail("series '" + name + "' has unknown agg '" + sd.agg + "'");
    }
    if (sd.kind == "u64") {
      st.kind = SeriesKind::kU64;
    } else if (sd.kind == "f64") {
      st.kind = SeriesKind::kF64;
    } else {
      return fail("series '" + name + "' has unknown kind '" + sd.kind + "'");
    }
    if (sd.stride < st.stride || sd.stride % st.stride != 0 || sd.stride == 0)
      return fail("series '" + name + "' stride regressed (" +
                  std::to_string(st.stride) + " -> " +
                  std::to_string(sd.stride) + ")");
    if (st.kind == SeriesKind::kU64) {
      if (sd.stride > st.stride)
        st.upoints = rewindow_u64(st.upoints, st.stride, sd.stride, st.agg);
      const std::size_t windows =
          sd.rounds == 0
              ? 0
              : static_cast<std::size_t>((sd.rounds - 1) / sd.stride) + 1;
      st.upoints.resize(windows, 0);
      for (const auto& [w, v] : sd.uwindows) {
        if (w >= windows)
          return fail("series '" + name + "' window " + std::to_string(w) +
                      " out of range");
        st.upoints[w] = v;
      }
    } else {
      st.fpoints = sd.fpoints;
    }
    st.stride = sd.stride;
    st.rounds = sd.rounds;
  }

  if (frame.has_spans) {
    // Replace the whole forest (the frame carried it because it changed).
    struct Conv {
      static SpanSnapshot run(const ParsedSpan& p) {
        SpanSnapshot s;
        s.name = p.name;
        s.count = p.count;
        for (const ParsedSpan& c : p.children) s.children.push_back(run(c));
        return s;
      }
    };
    spans_.clear();
    for (const ParsedSpan& p : frame.spans) spans_.push_back(Conv::run(p));
  }
  return true;
}

TelemetrySnapshot StreamFolder::snapshot() const {
  TelemetrySnapshot snap;
  for (const auto& [name, value] : counters_)
    snap.metrics.counters.push_back({name, Stability::kStable, value});
  for (const auto& [name, d] : dists_)
    snap.metrics.distributions.push_back({name, Stability::kStable, d.count,
                                          d.min, d.max, d.sum, d.p50, d.p99});
  for (const auto& [name, st] : series_) {
    SeriesSnapshot s;
    s.name = name;
    s.agg = st.agg;
    s.kind = st.kind;
    s.stability = Stability::kStable;
    s.stride = st.stride;
    s.rounds = st.rounds;
    s.upoints = st.upoints;
    s.fpoints = st.fpoints;
    snap.series.push_back(std::move(s));
  }
  snap.spans = spans_;
  return snap;
}

std::string StreamFolder::to_dump_json() const {
  return to_json(snapshot(), /*include_timing=*/false);
}

}  // namespace thetanet::obs
