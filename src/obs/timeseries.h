#pragma once
// Deterministic per-round time series: the dynamics companion to the
// endpoint counters of obs/metrics.h. A series is a named sequence of
// samples indexed by *round* (a simulation step, a maintenance move, a
// mobility tick — any caller-supplied monotone index), aggregated per round
// with a commutative fold (sum for event counts, max for gauges). Section 3
// of the paper makes statements about evolution across rounds under an
// adversary — the (T, gamma) gradient ramp, the Theorem 3.1 peak-buffer
// bound — and a series is exactly the artifact that makes those dynamics
// inspectable after the run.
//
// Determinism contract (same as MetricsRegistry):
//   * A sample is (round, value); the per-round fold is sum or max, both
//     commutative and associative, so the merged series cannot depend on
//     which thread recorded which sample or in what order.
//   * Each thread owns a private shard, registered in creation order and
//     merged in that order at snapshot time.
//   * Downsampling is a pure function of (capacity, highest round seen):
//     each retained point covers a window of `stride` consecutive rounds,
//     and when a round index would land past the capacity the stride
//     doubles and adjacent points merge pairwise. Sum-of-window and
//     max-of-window survive the merge losslessly, so e.g. the max over the
//     `router.peak_buffer` series equals RunMetrics::peak_buffer at ANY
//     downsampling level, and memory stays O(capacity) for million-round
//     runs.
//
// Values are u64 (counts, heights) or f64 (energies, displacements). f64
// series are deterministic for a fixed seed when recorded from one logical
// site per round — the repo's convention; see docs/observability.md.
//
// Instrumentation sites use the TN_OBS_SERIES_* macros below; configuring
// with -DTHETANET_TELEMETRY=OFF compiles them to no-ops like the other
// TN_OBS_* macros. The registry API is always compiled.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace thetanet::obs {

/// Per-round fold applied to samples sharing a round, to window contents
/// under downsampling, and to the cross-shard merge. Both are commutative
/// with identity 0 (series values are non-negative by convention).
enum class SeriesAgg : std::uint8_t {
  kSum,  ///< event counts: injections, transmissions, deliveries
  kMax,  ///< gauges: buffer heights, queue depths
};

/// Sample type declared at registration.
enum class SeriesKind : std::uint8_t { kU64, kF64 };

/// Merged view of one series. points[i] aggregates rounds
/// [i * stride, (i + 1) * stride); exactly one of upoints/fpoints is
/// populated, by kind. rounds == highest recorded round + 1 (0: empty).
struct SeriesSnapshot {
  std::string name;
  SeriesAgg agg = SeriesAgg::kSum;
  SeriesKind kind = SeriesKind::kU64;
  Stability stability = Stability::kStable;
  std::uint64_t stride = 1;
  std::uint64_t rounds = 0;
  std::vector<std::uint64_t> upoints;
  std::vector<double> fpoints;
};

class SeriesRegistry {
 public:
  static SeriesRegistry& global();

  /// Register (or look up) a series. Re-registering an existing name
  /// returns the same id; kind/agg of the first registration win (a
  /// mismatch asserts — one name, one meaning).
  std::uint32_t register_series(std::string_view name, SeriesKind kind,
                                SeriesAgg agg,
                                Stability s = Stability::kStable);

  /// Fold `value` into `round` of the series on the calling thread's shard.
  void record_u64(std::uint32_t id, std::uint64_t round, std::uint64_t value);
  void record_f64(std::uint32_t id, std::uint64_t round, double value);

  /// Merge all shards (creation order) into per-series snapshots, sorted by
  /// name. Every shard is normalized to the common final stride first, so
  /// the result is a pure function of the recorded (round, value) multiset.
  std::vector<SeriesSnapshot> snapshot() const;

  /// Retained points per series before the stride doubles. Applies to
  /// samples recorded after the call; set it before the run (the golden
  /// fixtures and bench --telemetry-series do). Minimum 2.
  void set_capacity(std::size_t points);
  std::size_t capacity() const;

  /// Drop all recorded samples (registrations survive). Only call between
  /// runs, like MetricsRegistry::reset().
  void reset();

 private:
  SeriesRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

/// Cheap registered handle, typically a function-local static — the series
/// analogue of obs::Counter. Recording honours the global recording switch.
class Series {
 public:
  Series(std::string_view name, SeriesKind kind, SeriesAgg agg,
         Stability s = Stability::kStable)
      : id_(SeriesRegistry::global().register_series(name, kind, agg, s)) {}

  void add(std::uint64_t round, std::uint64_t delta) const {
    if (!detail::recording()) return;
    SeriesRegistry::global().record_u64(id_, round, delta);
  }
  void max(std::uint64_t round, std::uint64_t value) const {
    if (!detail::recording()) return;
    SeriesRegistry::global().record_u64(id_, round, value);
  }
  void add_f64(std::uint64_t round, double value) const {
    if (!detail::recording()) return;
    SeriesRegistry::global().record_f64(id_, round, value);
  }

 private:
  std::uint32_t id_;
};

// ---------------------------------------------------------------------------
// Instrumentation macros, compiled out under THETANET_TELEMETRY_DISABLED.

#if !defined(THETANET_TELEMETRY_DISABLED)

/// Add `delta` to round `round` of the u64 sum-series `name`.
#define TN_OBS_SERIES_ADD(name, round, delta)                          \
  do {                                                                 \
    static const ::thetanet::obs::Series tn_obs_series_{               \
        name, ::thetanet::obs::SeriesKind::kU64,                       \
        ::thetanet::obs::SeriesAgg::kSum};                             \
    tn_obs_series_.add(static_cast<std::uint64_t>(round),              \
                       static_cast<std::uint64_t>(delta));             \
  } while (0)

/// Fold `value` into round `round` of the u64 max-series `name`.
#define TN_OBS_SERIES_MAX(name, round, value)                          \
  do {                                                                 \
    static const ::thetanet::obs::Series tn_obs_series_{               \
        name, ::thetanet::obs::SeriesKind::kU64,                       \
        ::thetanet::obs::SeriesAgg::kMax};                             \
    tn_obs_series_.max(static_cast<std::uint64_t>(round),              \
                       static_cast<std::uint64_t>(value));             \
  } while (0)

/// Add `value` to round `round` of the f64 sum-series `name`.
#define TN_OBS_SERIES_ADD_F64(name, round, value)                      \
  do {                                                                 \
    static const ::thetanet::obs::Series tn_obs_series_{               \
        name, ::thetanet::obs::SeriesKind::kF64,                       \
        ::thetanet::obs::SeriesAgg::kSum};                             \
    tn_obs_series_.add_f64(static_cast<std::uint64_t>(round),          \
                           static_cast<double>(value));                \
  } while (0)

#else  // THETANET_TELEMETRY_DISABLED

#define TN_OBS_SERIES_ADD(name, round, delta) \
  do {                                        \
    (void)sizeof(round);                      \
    (void)sizeof(delta);                      \
  } while (0)
#define TN_OBS_SERIES_MAX(name, round, value) \
  do {                                        \
    (void)sizeof(round);                      \
    (void)sizeof(value);                      \
  } while (0)
#define TN_OBS_SERIES_ADD_F64(name, round, value) \
  do {                                            \
    (void)sizeof(round);                          \
    (void)sizeof(value);                          \
  } while (0)

#endif  // THETANET_TELEMETRY_DISABLED

}  // namespace thetanet::obs
