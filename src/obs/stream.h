#pragma once
// Incremental telemetry: framed delta snapshots ("thetanet-telemetry-stream/1")
// between consecutive captures of the global registries, plus the folder that
// reconstructs the one-shot document from a frame sequence.
//
// Wire format — one frame is a one-line header followed by a canonical JSON
// body of exactly `nbytes` bytes (newline included):
//
//   FRAME <seq> <nbytes>\n
//   { ... }\n
//
// Body contract (keys at every level in sorted order, like the /2 dump):
//   * "counters": additive u64 deltas since the previous frame. A counter
//     appears when its value changed or it registered since the last frame
//     (newly registered counters appear even at delta 0, so the folder's key
//     set matches the dump's).
//   * "distributions": replacement semantics — the full cumulative
//     {count, max, min, p50, p99, sum} object for every distribution that
//     changed or is new (p50/p99 are not delta-composable).
//   * "frame": the sequence number, starting at 0.
//   * "schema": "thetanet-telemetry-stream/1".
//   * "series": per changed series {agg, kind, points, rounds, stride}.
//     u64 series carry a sparse replacement map {"<window>": value} at the
//     *current* stride — the folder re-windows its accumulated points
//     pairwise when the stride grew (sum and max are associative, so the
//     re-windowed values are exact). f64 series carry the full points array
//     (float addition is not associative; replacement keeps the fold
//     bit-exact). A series also appears, with no points, when only its
//     stride/rounds advanced or when it registered empty.
//   * "spans": the full deterministic span forest (name/count/children),
//     present only in frames where it changed.
//   Only kStable metrics/series are streamed — same rule as the
//   deterministic dump.
//
// Composability contract: folding frames 0..k yields byte-for-byte the
// to_json(capture, /*include_timing=*/false) document of the state frame k
// was captured from, for any TN_NUM_THREADS. Frames themselves are
// bit-identical across thread counts for a deterministic workload, because
// they are pure functions of consecutive merged snapshots.

#include <cstdint>
#include <string>

#include "obs/telemetry_reader.h"
#include "obs/trace_sink.h"

namespace thetanet::obs {

inline constexpr const char* kStreamSchema = "thetanet-telemetry-stream/1";

/// Render one frame (header + body) describing the change from `prev` to
/// `cur`. Both snapshots must come from capture_telemetry() (or equivalent);
/// `prev` may be default-constructed for frame 0.
std::string render_stream_frame(const TelemetrySnapshot& prev,
                                const TelemetrySnapshot& cur,
                                std::uint64_t seq);

/// Stateful frame emitter: every next_frame() captures the global telemetry
/// state and renders the delta against the previous capture. Frames are
/// emitted unconditionally (an idle interval yields a small frame with empty
/// sections) so consumers can use them as liveness ticks.
class TelemetryStreamer {
 public:
  /// Capture + render. The capture is retained as the new baseline.
  std::string next_frame();

  /// Render a frame from an externally captured snapshot — serve/soak
  /// capture once per interval and reuse the snapshot for watchdog checks
  /// and the final dump.
  std::string frame_from(const TelemetrySnapshot& cur);

  std::uint64_t frames_emitted() const { return seq_; }

  /// The baseline the next frame will diff against (the last capture).
  const TelemetrySnapshot& last_snapshot() const { return prev_; }

 private:
  TelemetrySnapshot prev_;
  std::uint64_t seq_ = 0;
};

/// Reconstructs the cumulative telemetry state from a parsed frame sequence.
/// After folding frames 0..k, to_dump_json() byte-equals the /2 dump of the
/// state frame k described.
class StreamFolder {
 public:
  /// Fold one frame. Returns false (with a one-line reason in `error` when
  /// non-null) on contract violations: out-of-order sequence numbers, a
  /// shrinking stride, malformed points, an unknown agg/kind.
  bool fold(const ParsedFrame& frame, std::string* error);

  /// Frames folded so far (the expected next sequence number).
  std::uint64_t frames_folded() const { return next_seq_; }

  /// The reconstructed cumulative state, as a snapshot or as the canonical
  /// /2 document.
  TelemetrySnapshot snapshot() const;
  std::string to_dump_json() const;

 private:
  struct SeriesState {
    SeriesAgg agg = SeriesAgg::kSum;
    SeriesKind kind = SeriesKind::kU64;
    std::uint64_t stride = 1;
    std::uint64_t rounds = 0;
    std::vector<std::uint64_t> upoints;
    std::vector<double> fpoints;
  };

  std::uint64_t next_seq_ = 0;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, ParsedDistribution> dists_;
  std::map<std::string, SeriesState> series_;
  std::vector<SpanSnapshot> spans_;
};

}  // namespace thetanet::obs
