#pragma once
// Serialization of the telemetry state: one stable JSON document plus a
// compact text table.
//
// JSON contract (schema "thetanet-telemetry/2"):
//   * top-level and nested object keys are emitted in sorted order,
//   * all values are unsigned integers or strings, except the "points"
//     arrays of f64 series, which are shortest-round-trip decimal floats
//     (std::to_chars) — still bit-stable for identical doubles,
//   * by default (include_timing = false) the document contains only
//     deterministic data: kStable metrics/series and span
//     {name, count, children}. Two runs of the same deterministic workload
//     — at any TN_NUM_THREADS — serialize byte-identically, so dumps can
//     be compared with cmp(1).
//   * include_timing = true adds kTiming metrics and per-span "wall_ns";
//     such dumps are for humans and profiling, never for diff tests.
//
// Schema history: /1 had no "series" section; /2 (this repo) adds it —
// per-round time series from obs/timeseries.h. tools/telemetry_diff.py
// consumes both.

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timeseries.h"

namespace thetanet::obs {

/// Everything a sink serializes; capture_telemetry() fills it from the
/// global registry, series registry, and span tree; tests may also
/// construct one by hand.
struct TelemetrySnapshot {
  MetricsSnapshot metrics;
  std::vector<SeriesSnapshot> series;  ///< sorted by name
  std::vector<SpanSnapshot> spans;
};

TelemetrySnapshot capture_telemetry();

namespace detail {
// Canonical-document building blocks shared by the one-shot sink and the
// delta streamer (obs/stream.h) — one renderer, so a folded stream can be
// byte-compared against a dump.
void append_f64(std::string& out, double v);  ///< shortest round-trip decimal
void append_escaped(std::string& out, const std::string& s);
void append_span_json(std::string& out, const SpanSnapshot& s,
                      bool include_timing, int depth);
}  // namespace detail

/// Render the snapshot as the schema-versioned JSON document described
/// above, terminated by a single newline.
std::string to_json(const TelemetrySnapshot& snap, bool include_timing = false);

/// Human-oriented fixed-width table: counters, distributions, then the span
/// tree (with wall time in ms). Not covered by any stability contract.
std::string to_text(const TelemetrySnapshot& snap);

/// capture_telemetry() + to_json() + write to `path` (overwrites). Returns
/// false (and writes nothing else) when the file cannot be opened.
bool write_telemetry_json(const std::string& path, bool include_timing = false);

}  // namespace thetanet::obs
