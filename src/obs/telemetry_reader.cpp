#include "obs/telemetry_reader.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string_view>
#include <variant>

namespace thetanet::obs {

namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser. Covers everything the sinks emit
// (and standard JSON generally, minus \uXXXX surrogate pairs, which no
// telemetry name contains). Depth-capped so a hostile file cannot blow the
// stack.

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

/// Numbers keep the exact u64 value alongside the double when the token was
/// a plain non-negative integer that fits — counter values and series
/// windows above 2^53 must survive the round trip bit-exactly (the stream
/// folder's byte-equality contract depends on it).
struct JsonNumber {
  double d = 0.0;
  std::uint64_t u = 0;
  bool exact_u64 = false;
};

struct JsonValue {
  std::variant<std::nullptr_t, bool, JsonNumber, std::string, JsonArray,
               JsonObject>
      v;

  bool is_object() const { return std::holds_alternative<JsonObject>(v); }
  bool is_array() const { return std::holds_alternative<JsonArray>(v); }
  bool is_number() const { return std::holds_alternative<JsonNumber>(v); }
  bool is_string() const { return std::holds_alternative<std::string>(v); }
  const JsonObject& object() const { return std::get<JsonObject>(v); }
  const JsonArray& array() const { return std::get<JsonArray>(v); }
  double number() const { return std::get<JsonNumber>(v).d; }
  const JsonNumber& num() const { return std::get<JsonNumber>(v); }
  const std::string& string() const { return std::get<std::string>(v); }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    std::optional<JsonValue> v = value(0);
    if (v) {
      skip_ws();
      if (pos_ != s_.size()) fail("trailing characters after document");
    }
    if (!err_.empty()) {
      if (error != nullptr) {
        std::ostringstream ss;
        ss << "offset " << pos_ << ": " << err_;
        *error = ss.str();
      }
      return std::nullopt;
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void fail(const std::string& why) {
    if (err_.empty()) err_ = why;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::optional<JsonValue> value(int depth) {
    if (depth > kMaxDepth) {
      fail("nesting too deep");
      return std::nullopt;
    }
    skip_ws();
    if (pos_ >= s_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = s_[pos_];
    if (c == '{') return object(depth);
    if (c == '[') return array(depth);
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return bool_value();
    if (c == 'n') return null_value();
    return number_value();
  }

  std::optional<JsonValue> object(int depth) {
    ++pos_;  // '{'
    JsonObject obj;
    skip_ws();
    if (consume('}')) return JsonValue{obj};
    while (true) {
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != '"') {
        fail("expected object key string");
        return std::nullopt;
      }
      std::optional<JsonValue> key = string_value();
      if (!key) return std::nullopt;
      if (!consume(':')) {
        fail("expected ':' after object key");
        return std::nullopt;
      }
      std::optional<JsonValue> val = value(depth + 1);
      if (!val) return std::nullopt;
      obj.emplace(key->string(), std::move(*val));
      if (consume(',')) continue;
      if (consume('}')) return JsonValue{std::move(obj)};
      fail("expected ',' or '}' in object");
      return std::nullopt;
    }
  }

  std::optional<JsonValue> array(int depth) {
    ++pos_;  // '['
    JsonArray arr;
    skip_ws();
    if (consume(']')) return JsonValue{arr};
    while (true) {
      std::optional<JsonValue> val = value(depth + 1);
      if (!val) return std::nullopt;
      arr.push_back(std::move(*val));
      if (consume(',')) continue;
      if (consume(']')) return JsonValue{std::move(arr)};
      fail("expected ',' or ']' in array");
      return std::nullopt;
    }
  }

  std::optional<JsonValue> string_value() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return JsonValue{std::move(out)};
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) break;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) {
            fail("truncated \\u escape");
            return std::nullopt;
          }
          unsigned code = 0;
          const auto res =
              std::from_chars(s_.data() + pos_, s_.data() + pos_ + 4, code, 16);
          if (res.ec != std::errc() || res.ptr != s_.data() + pos_ + 4) {
            fail("bad \\u escape");
            return std::nullopt;
          }
          pos_ += 4;
          // The sink only escapes control characters; anything in the BMP
          // below 0x80 round-trips, the rest is passed through as '?'.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          fail("unknown escape character");
          return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<JsonValue> bool_value() {
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return JsonValue{true};
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return JsonValue{false};
    }
    fail("bad literal");
    return std::nullopt;
  }

  std::optional<JsonValue> null_value() {
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue{nullptr};
    }
    fail("bad literal");
    return std::nullopt;
  }

  std::optional<JsonValue> number_value() {
    JsonNumber n;
    const auto res =
        std::from_chars(s_.data() + pos_, s_.data() + s_.size(), n.d);
    if (res.ec != std::errc()) {
      fail("bad number");
      return std::nullopt;
    }
    const std::size_t end = static_cast<std::size_t>(res.ptr - s_.data());
    const std::string_view token(s_.data() + pos_, end - pos_);
    if (token.find_first_not_of("0123456789") == std::string_view::npos) {
      const auto ures =
          std::from_chars(token.data(), token.data() + token.size(), n.u);
      n.exact_u64 =
          ures.ec == std::errc() && ures.ptr == token.data() + token.size();
    }
    pos_ = end;
    return JsonValue{n};
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::string err_;
};

// ---------------------------------------------------------------------------
// Shape extraction.

bool shape_fail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return false;
}

std::uint64_t as_u64(const JsonValue& v) {
  if (!v.is_number()) return 0;
  const JsonNumber& n = v.num();
  if (n.exact_u64) return n.u;
  return n.d >= 0.0 ? static_cast<std::uint64_t>(n.d) : 0;
}

bool extract_spans(const JsonArray& arr, std::vector<ParsedSpan>& out,
                   std::string* error) {
  for (const JsonValue& v : arr) {
    if (!v.is_object()) return shape_fail(error, "span entry is not an object");
    const JsonObject& o = v.object();
    ParsedSpan span;
    if (const auto it = o.find("name"); it != o.end() && it->second.is_string())
      span.name = it->second.string();
    if (const auto it = o.find("count"); it != o.end())
      span.count = as_u64(it->second);
    if (const auto it = o.find("children");
        it != o.end() && it->second.is_array()) {
      if (!extract_spans(it->second.array(), span.children, error))
        return false;
    }
    out.push_back(std::move(span));
  }
  return true;
}

bool extract(const JsonValue& root, ParsedTelemetry& out, std::string* error) {
  if (!root.is_object())
    return shape_fail(error, "top level is not a JSON object");
  const JsonObject& doc = root.object();

  const auto schema_it = doc.find("schema");
  if (schema_it == doc.end() || !schema_it->second.is_string())
    return shape_fail(error, "missing 'schema' string");
  out.schema = schema_it->second.string();
  if (out.schema != "thetanet-telemetry/1" &&
      out.schema != "thetanet-telemetry/2")
    return shape_fail(error, "unsupported schema '" + out.schema + "'");

  const auto counters_it = doc.find("counters");
  if (counters_it == doc.end() || !counters_it->second.is_object())
    return shape_fail(error, "missing 'counters' object");
  for (const auto& [name, v] : counters_it->second.object()) {
    if (!v.is_number())
      return shape_fail(error, "counter '" + name + "' is not a number");
    out.counters[name] = as_u64(v);
  }

  const auto dists_it = doc.find("distributions");
  if (dists_it == doc.end() || !dists_it->second.is_object())
    return shape_fail(error, "missing 'distributions' object");
  for (const auto& [name, v] : dists_it->second.object()) {
    if (!v.is_object())
      return shape_fail(error, "distribution '" + name + "' is not an object");
    const JsonObject& o = v.object();
    ParsedDistribution d;
    const auto field = [&](const char* key, std::uint64_t& dst) {
      const auto it = o.find(key);
      if (it != o.end()) dst = as_u64(it->second);
    };
    field("count", d.count);
    field("min", d.min);
    field("max", d.max);
    field("sum", d.sum);
    field("p50", d.p50);
    field("p99", d.p99);
    out.distributions[name] = d;
  }

  if (const auto it = doc.find("series");
      it != doc.end() && it->second.is_object()) {
    for (const auto& [name, v] : it->second.object()) {
      if (!v.is_object())
        return shape_fail(error, "series '" + name + "' is not an object");
      const JsonObject& o = v.object();
      ParsedSeries s;
      if (const auto f = o.find("agg"); f != o.end() && f->second.is_string())
        s.agg = f->second.string();
      if (const auto f = o.find("kind"); f != o.end() && f->second.is_string())
        s.kind = f->second.string();
      if (const auto f = o.find("stride"); f != o.end())
        s.stride = as_u64(f->second);
      if (const auto f = o.find("rounds"); f != o.end())
        s.rounds = as_u64(f->second);
      const auto pts = o.find("points");
      if (pts == o.end() || !pts->second.is_array())
        return shape_fail(error, "series '" + name + "' has no points array");
      for (const JsonValue& p : pts->second.array()) {
        if (!p.is_number())
          return shape_fail(error,
                            "series '" + name + "' has a non-numeric point");
        s.points.push_back(p.number());
      }
      out.series[name] = std::move(s);
    }
  }

  if (const auto it = doc.find("spans");
      it != doc.end() && it->second.is_array()) {
    if (!extract_spans(it->second.array(), out.spans, error)) return false;
  }
  return true;
}

}  // namespace

std::optional<ParsedTelemetry> parse_telemetry_json(const std::string& text,
                                                    std::string* error) {
  Parser p(text);
  const std::optional<JsonValue> root = p.parse(error);
  if (!root) return std::nullopt;
  ParsedTelemetry out;
  if (!extract(*root, out, error)) return std::nullopt;
  return out;
}

std::optional<ParsedTelemetry> load_telemetry_file(const std::string& path,
                                                   std::string* error) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse_telemetry_json(ss.str(), error);
}

// ---------------------------------------------------------------------------
// Stream frames.

namespace {

bool extract_frame(const JsonValue& root, ParsedFrame& out,
                   std::string* error) {
  if (!root.is_object())
    return shape_fail(error, "frame body is not a JSON object");
  const JsonObject& doc = root.object();

  const auto schema_it = doc.find("schema");
  if (schema_it == doc.end() || !schema_it->second.is_string())
    return shape_fail(error, "frame missing 'schema' string");
  out.schema = schema_it->second.string();
  if (out.schema != "thetanet-telemetry-stream/1")
    return shape_fail(error, "unsupported frame schema '" + out.schema + "'");

  const auto frame_it = doc.find("frame");
  if (frame_it == doc.end() || !frame_it->second.is_number())
    return shape_fail(error, "frame missing 'frame' number");
  out.frame = as_u64(frame_it->second);

  if (const auto it = doc.find("counters");
      it != doc.end() && it->second.is_object()) {
    for (const auto& [name, v] : it->second.object()) {
      if (!v.is_number())
        return shape_fail(error, "counter delta '" + name + "' not a number");
      out.counters[name] = as_u64(v);
    }
  }

  if (const auto it = doc.find("distributions");
      it != doc.end() && it->second.is_object()) {
    for (const auto& [name, v] : it->second.object()) {
      if (!v.is_object())
        return shape_fail(error, "distribution '" + name + "' not an object");
      const JsonObject& o = v.object();
      ParsedDistribution d;
      const auto field = [&](const char* key, std::uint64_t& dst) {
        const auto f = o.find(key);
        if (f != o.end()) dst = as_u64(f->second);
      };
      field("count", d.count);
      field("min", d.min);
      field("max", d.max);
      field("sum", d.sum);
      field("p50", d.p50);
      field("p99", d.p99);
      out.distributions[name] = d;
    }
  }

  if (const auto it = doc.find("series");
      it != doc.end() && it->second.is_object()) {
    for (const auto& [name, v] : it->second.object()) {
      if (!v.is_object())
        return shape_fail(error, "series '" + name + "' not an object");
      const JsonObject& o = v.object();
      ParsedSeriesDelta s;
      if (const auto f = o.find("agg"); f != o.end() && f->second.is_string())
        s.agg = f->second.string();
      if (const auto f = o.find("kind"); f != o.end() && f->second.is_string())
        s.kind = f->second.string();
      if (const auto f = o.find("stride"); f != o.end())
        s.stride = as_u64(f->second);
      if (const auto f = o.find("rounds"); f != o.end())
        s.rounds = as_u64(f->second);
      const auto pts = o.find("points");
      if (pts == o.end())
        return shape_fail(error, "series '" + name + "' has no points");
      if (s.kind == "f64") {
        if (!pts->second.is_array())
          return shape_fail(error,
                            "f64 series '" + name + "' points not an array");
        for (const JsonValue& p : pts->second.array()) {
          if (!p.is_number())
            return shape_fail(error,
                              "series '" + name + "' has a non-numeric point");
          s.fpoints.push_back(p.number());
        }
      } else {
        if (!pts->second.is_object())
          return shape_fail(error,
                            "u64 series '" + name + "' points not an object");
        for (const auto& [idx, p] : pts->second.object()) {
          std::uint64_t w = 0;
          const auto res =
              std::from_chars(idx.data(), idx.data() + idx.size(), w);
          if (res.ec != std::errc() || res.ptr != idx.data() + idx.size())
            return shape_fail(
                error, "series '" + name + "' has a bad window key '" + idx +
                           "'");
          if (!p.is_number())
            return shape_fail(error,
                              "series '" + name + "' has a non-numeric point");
          s.uwindows.emplace_back(w, as_u64(p));
        }
        std::sort(s.uwindows.begin(), s.uwindows.end());
      }
      out.series[name] = std::move(s);
    }
  }

  if (const auto it = doc.find("spans");
      it != doc.end() && it->second.is_array()) {
    out.has_spans = true;
    if (!extract_spans(it->second.array(), out.spans, error)) return false;
  }
  return true;
}

}  // namespace

std::optional<ParsedFrame> parse_stream_frame(const std::string& body,
                                              std::string* error) {
  Parser p(body);
  const std::optional<JsonValue> root = p.parse(error);
  if (!root) return std::nullopt;
  ParsedFrame out;
  if (!extract_frame(*root, out, error)) return std::nullopt;
  return out;
}

std::optional<std::vector<ParsedFrame>> parse_telemetry_stream(
    const std::string& text, std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  std::vector<ParsedFrame> frames;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos)
      return fail("truncated FRAME header at offset " + std::to_string(pos));
    const std::string_view header(text.data() + pos, eol - pos);
    std::uint64_t seq = 0;
    std::uint64_t nbytes = 0;
    {
      if (header.substr(0, 6) != "FRAME ")
        return fail("expected FRAME header at offset " + std::to_string(pos));
      const char* b = header.data() + 6;
      const char* e = header.data() + header.size();
      auto res = std::from_chars(b, e, seq);
      if (res.ec != std::errc() || res.ptr == e || *res.ptr != ' ')
        return fail("bad FRAME sequence number at offset " +
                    std::to_string(pos));
      res = std::from_chars(res.ptr + 1, e, nbytes);
      if (res.ec != std::errc() || res.ptr != e)
        return fail("bad FRAME byte count at offset " + std::to_string(pos));
    }
    if (seq != frames.size())
      return fail("frame sequence gap: expected " +
                  std::to_string(frames.size()) + ", got " +
                  std::to_string(seq));
    const std::size_t body_begin = eol + 1;
    if (body_begin + nbytes > text.size())
      return fail("frame " + std::to_string(seq) + " body truncated");
    const std::string body = text.substr(body_begin, nbytes);
    if (body.empty() || body.back() != '\n')
      return fail("frame " + std::to_string(seq) +
                  " body does not end in a newline");
    std::string ferr;
    std::optional<ParsedFrame> f = parse_stream_frame(body, &ferr);
    if (!f) return fail("frame " + std::to_string(seq) + ": " + ferr);
    if (f->frame != seq)
      return fail("frame " + std::to_string(seq) +
                  " header/body sequence mismatch");
    frames.push_back(std::move(*f));
    pos = body_begin + nbytes;
  }
  return frames;
}

std::optional<std::vector<ParsedFrame>> load_telemetry_stream(
    const std::string& path, std::string* error) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse_telemetry_stream(ss.str(), error);
}

}  // namespace thetanet::obs
