#include "obs/timeseries.h"

#include <algorithm>
#include <memory>
#include <mutex>

#include "common/assert.h"

namespace thetanet::obs {

namespace {

constexpr std::size_t kDefaultCapacity = 512;

struct SeriesDesc {
  std::string name;
  SeriesKind kind;
  SeriesAgg agg;
  Stability stability;
};

template <typename T>
T fold(SeriesAgg agg, T a, T b) {
  return agg == SeriesAgg::kSum ? a + b : std::max(a, b);
}

/// One series' storage on one shard. pts[i] covers rounds
/// [i * stride, (i + 1) * stride); unrecorded windows hold the identity 0.
template <typename T>
struct Buf {
  std::uint64_t stride = 1;
  std::uint64_t rounds = 0;  ///< highest recorded round + 1
  std::vector<T> pts;

  void record(std::uint64_t round, T value, SeriesAgg agg, std::size_t cap) {
    while (round / stride >= cap) halve(agg);
    const std::size_t idx = static_cast<std::size_t>(round / stride);
    if (idx >= pts.size()) pts.resize(idx + 1, T{});
    pts[idx] = fold(agg, pts[idx], value);
    rounds = std::max(rounds, round + 1);
  }

  /// Double the stride: adjacent windows merge pairwise. Sum-of-window and
  /// max-of-window are preserved exactly, which is what makes downsampling
  /// invisible to the series' aggregate claims (total, peak).
  void halve(SeriesAgg agg) {
    std::vector<T> merged((pts.size() + 1) / 2, T{});
    for (std::size_t i = 0; i < pts.size(); ++i)
      merged[i / 2] = fold(agg, merged[i / 2], pts[i]);
    pts = std::move(merged);
    stride *= 2;
  }

  /// This buf's points re-windowed to `stride_out` (a multiple of stride).
  std::vector<T> at_stride(std::uint64_t stride_out, SeriesAgg agg) const {
    TN_ASSERT(stride_out % stride == 0);
    const std::uint64_t factor = stride_out / stride;
    std::vector<T> out(
        static_cast<std::size_t>((pts.size() + factor - 1) / factor), T{});
    for (std::size_t i = 0; i < pts.size(); ++i)
      out[i / factor] = fold(agg, out[i / factor], pts[i]);
    return out;
  }
};

/// Per-thread storage: one Buf per registered series, allocated on first
/// record. Guarded by a shard-local mutex — series record at per-round
/// granularity (not per item), so the uncontended lock is noise next to
/// the round's work, and it lets snapshots read live shards safely.
struct SeriesShard {
  std::mutex mu;
  std::vector<Buf<std::uint64_t>> ubufs;
  std::vector<Buf<double>> fbufs;
};

}  // namespace

struct SeriesRegistry::Impl {
  mutable std::mutex mu;
  std::vector<SeriesDesc> series;  // registration order; index == id
  std::size_t cap = kDefaultCapacity;
  // Creation (thread-registration) order, like MetricsRegistry's shards.
  std::vector<std::unique_ptr<SeriesShard>> shards;

  SeriesShard* create_shard() {
    std::lock_guard<std::mutex> lk(mu);
    shards.push_back(std::make_unique<SeriesShard>());
    return shards.back().get();
  }
};

SeriesRegistry::Impl& SeriesRegistry::impl() const {
  static Impl instance;
  return instance;
}

SeriesRegistry& SeriesRegistry::global() {
  static SeriesRegistry registry;
  return registry;
}

std::uint32_t SeriesRegistry::register_series(std::string_view name,
                                              SeriesKind kind, SeriesAgg agg,
                                              Stability s) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  for (std::uint32_t id = 0; id < im.series.size(); ++id) {
    const SeriesDesc& d = im.series[id];
    if (d.name != name) continue;
    TN_ASSERT_MSG(d.kind == kind && d.agg == agg,
                  "series re-registered with a different kind or fold");
    return id;
  }
  im.series.push_back({std::string(name), kind, agg, s});
  return static_cast<std::uint32_t>(im.series.size() - 1);
}

namespace {

// The calling thread's shard, created on first record and owned by the
// registry so a finished thread's samples stay in the merge.
thread_local SeriesShard* t_shard = nullptr;

}  // namespace

void SeriesRegistry::record_u64(std::uint32_t id, std::uint64_t round,
                                std::uint64_t value) {
  Impl& im = impl();
  if (t_shard == nullptr) t_shard = im.create_shard();
  SeriesAgg agg;
  std::size_t cap;
  {
    std::lock_guard<std::mutex> lk(im.mu);
    agg = im.series[id].agg;
    cap = im.cap;
  }
  std::lock_guard<std::mutex> lk(t_shard->mu);
  if (id >= t_shard->ubufs.size()) t_shard->ubufs.resize(id + 1);
  t_shard->ubufs[id].record(round, value, agg, cap);
}

void SeriesRegistry::record_f64(std::uint32_t id, std::uint64_t round,
                                double value) {
  Impl& im = impl();
  if (t_shard == nullptr) t_shard = im.create_shard();
  SeriesAgg agg;
  std::size_t cap;
  {
    std::lock_guard<std::mutex> lk(im.mu);
    agg = im.series[id].agg;
    cap = im.cap;
  }
  std::lock_guard<std::mutex> lk(t_shard->mu);
  if (id >= t_shard->fbufs.size()) t_shard->fbufs.resize(id + 1);
  t_shard->fbufs[id].record(round, value, agg, cap);
}

void SeriesRegistry::set_capacity(std::size_t points) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  im.cap = std::max<std::size_t>(2, points);
}

std::size_t SeriesRegistry::capacity() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  return im.cap;
}

namespace {

/// Merge one series across shards: normalize every shard to the common
/// final stride (the smallest power of two fitting the global round count
/// into the capacity — the same stride a single-thread run would reach),
/// then fold pointwise. The result depends only on the recorded
/// (round, value) multiset, never on which shard holds which sample.
template <typename T>
void merge_series(const std::vector<std::unique_ptr<SeriesShard>>& shards,
                  std::uint32_t id, SeriesAgg agg, std::size_t cap,
                  std::vector<Buf<T>> SeriesShard::* member,
                  std::uint64_t& stride_out, std::uint64_t& rounds_out,
                  std::vector<T>& pts_out) {
  std::uint64_t rounds = 0;
  std::uint64_t stride = 1;
  for (const auto& shard : shards) {
    std::lock_guard<std::mutex> lk(shard->mu);
    const auto& bufs = (*shard).*member;
    if (id >= bufs.size()) continue;
    rounds = std::max(rounds, bufs[id].rounds);
    stride = std::max(stride, bufs[id].stride);
  }
  if (rounds == 0) {
    stride_out = 1;
    rounds_out = 0;
    pts_out.clear();
    return;
  }
  while ((rounds - 1) / stride >= cap) stride *= 2;
  std::vector<T> merged(static_cast<std::size_t>((rounds - 1) / stride) + 1,
                        T{});
  for (const auto& shard : shards) {
    std::lock_guard<std::mutex> lk(shard->mu);
    const auto& bufs = (*shard).*member;
    if (id >= bufs.size() || bufs[id].rounds == 0) continue;
    const std::vector<T> norm = bufs[id].at_stride(stride, agg);
    for (std::size_t i = 0; i < norm.size(); ++i)
      merged[i] = fold(agg, merged[i], norm[i]);
  }
  stride_out = stride;
  rounds_out = rounds;
  pts_out = std::move(merged);
}

}  // namespace

std::vector<SeriesSnapshot> SeriesRegistry::snapshot() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  std::vector<SeriesSnapshot> out;
  out.reserve(im.series.size());
  for (std::uint32_t id = 0; id < im.series.size(); ++id) {
    const SeriesDesc& d = im.series[id];
    SeriesSnapshot s;
    s.name = d.name;
    s.agg = d.agg;
    s.kind = d.kind;
    s.stability = d.stability;
    if (d.kind == SeriesKind::kU64) {
      merge_series(im.shards, id, d.agg, im.cap, &SeriesShard::ubufs,
                   s.stride, s.rounds, s.upoints);
    } else {
      merge_series(im.shards, id, d.agg, im.cap, &SeriesShard::fbufs,
                   s.stride, s.rounds, s.fpoints);
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const SeriesSnapshot& a, const SeriesSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

void SeriesRegistry::reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  for (const auto& shard : im.shards) {
    std::lock_guard<std::mutex> slk(shard->mu);
    shard->ubufs.clear();
    shard->fbufs.clear();
  }
}

}  // namespace thetanet::obs
